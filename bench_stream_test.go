package freephish_test

// Streaming benchmarks: the same fetch → classify → apply workload run
// once with the old per-cycle barrier (fan out each phase, wait for all,
// then start the next) and once through the internal/pipe streaming
// engine at several queue depths. Fetch latency is injected so the
// streamed variant's phase overlap — classify and apply proceed while
// later fetches are still in flight — shows up as wall-clock, not just as
// a claim. TestWriteStreamBenchBaseline snapshots the numbers as
// machine-readable JSON (BENCH_pipeline.json) for bench-compare.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"freephish/internal/obs"
	"freephish/internal/par"
	"freephish/internal/pipe"
	"freephish/internal/simclock"
)

const (
	streamItems   = 96
	streamWorkers = 4
)

// streamDelays is the deterministic per-item fetch latency schedule:
// 1–3ms of jitter, the shape a remote snapshot endpoint produces.
func streamDelays(n int) []time.Duration {
	rng := simclock.NewRNG(7, "bench.stream")
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(1000+rng.Intn(2000)) * time.Microsecond
	}
	return out
}

// streamFetch simulates the I/O phase: sleep the scheduled latency, then
// hand back a payload derived from the index.
func streamFetch(d time.Duration, i int) uint64 {
	time.Sleep(d)
	return uint64(i)*2654435761 + 1
}

// streamClassify simulates the CPU phase with a fixed-cost mixing loop
// sized so the classify phase costs about as much as the fetch phase —
// the regime where phase overlap matters.
func streamClassify(v uint64) uint64 {
	for k := 0; k < 1<<20; k++ {
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
	}
	return v
}

// streamWant is the checksum every variant must produce: the workload is
// only a fair benchmark if barrier and stream do identical work.
func streamWant() uint64 {
	var sum uint64
	for i := 0; i < streamItems; i++ {
		sum += streamClassify(uint64(i)*2654435761 + 1)
	}
	return sum
}

// barrierBench is the pre-streaming shape of core.pollOnce: fan out the
// fetch phase and wait for every item, fan out the classify phase and
// wait again, then apply sequentially.
func barrierBench(b *testing.B) {
	delays := streamDelays(streamItems)
	idx := make([]int, streamItems)
	for i := range idx {
		idx[i] = i
	}
	want := streamWant()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		fetched, err := par.MapOrdered(streamWorkers, idx, func(_ int, i int) (uint64, error) {
			return streamFetch(delays[i], i), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		classified, err := par.MapOrdered(streamWorkers, fetched, func(_ int, v uint64) (uint64, error) {
			return streamClassify(v), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		var sum uint64
		for _, v := range classified {
			sum += v
		}
		if sum != want {
			b.Fatalf("checksum %d, want %d", sum, want)
		}
	}
}

// streamBench is the same workload on the streaming engine: items flow
// straight from fetch into classify into the ordered apply, bounded by
// the queue depth.
func streamBench(depth int) func(*testing.B) {
	return func(b *testing.B) {
		delays := streamDelays(streamItems)
		want := streamWant()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			p := pipe.New(context.Background(), pipe.Options{Name: "bench"})
			fetched := pipe.Stage(pipe.Range(p, depth, streamItems), "fetch", streamWorkers, depth,
				func(_ int, i int) (uint64, error) {
					return streamFetch(delays[i], i), nil
				})
			classified := pipe.Stage(fetched, "classify", streamWorkers, depth,
				func(_ int, v uint64) (uint64, error) {
					return streamClassify(v), nil
				})
			var sum uint64
			err := pipe.Drain(classified, func(_ int, v uint64) error {
				sum += v
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if sum != want {
				b.Fatalf("checksum %d, want %d", sum, want)
			}
		}
	}
}

// BenchmarkPipelineStream compares the per-phase barrier against the
// streamed pipeline under injected fetch latency. The streamed variants
// should win wall-clock because classify and apply overlap the remaining
// fetches; depth sweeps show how small a reorder window sustains it.
func BenchmarkPipelineStream(b *testing.B) {
	b.Run("barrier", barrierBench)
	for _, d := range []int{1, 4, 64} {
		b.Run(fmt.Sprintf("stream/depth=%d", d), streamBench(d))
	}
}

// streamTracedBench is streamBench at depth 4 with the journal's OnEmit
// hook in the state tracing leaves it: nil when disabled (the default for
// every study run without -journal/-dash), recording ops events into the
// bounded ring when enabled.
func streamTracedBench(traced bool) func(*testing.B) {
	return func(b *testing.B) {
		const depth = 4
		delays := streamDelays(streamItems)
		want := streamWant()
		var journal *obs.Journal
		var onEmit func(stage string, seq int, err error)
		if traced {
			journal = obs.NewJournal(nil, 0)
			onEmit = func(stage string, seq int, err error) {
				journal.RecordOps("", obs.EvStage, "pipe", "bench", "stage", stage)
			}
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			p := pipe.New(context.Background(), pipe.Options{Name: "bench", OnEmit: onEmit})
			fetched := pipe.Stage(pipe.Range(p, depth, streamItems), "fetch", streamWorkers, depth,
				func(_ int, i int) (uint64, error) {
					return streamFetch(delays[i], i), nil
				})
			classified := pipe.Stage(fetched, "classify", streamWorkers, depth,
				func(_ int, v uint64) (uint64, error) {
					return streamClassify(v), nil
				})
			var sum uint64
			err := pipe.Drain(classified, func(_ int, v uint64) error {
				sum += v
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if sum != want {
				b.Fatalf("checksum %d, want %d", sum, want)
			}
		}
	}
}

// BenchmarkPipelineStreamTraced quantifies the lifecycle-tracing tax on
// the streaming engine: "off" is the disabled state every untraced run
// pays (a nil hook — the acceptance bound is ≤2% over the untraced
// BenchmarkPipelineStream baseline), "on" adds one ring-buffered ops
// event per stage emission.
func BenchmarkPipelineStreamTraced(b *testing.B) {
	b.Run("off", streamTracedBench(false))
	b.Run("on", streamTracedBench(true))
}

// TestWriteStreamBenchBaseline runs the streaming benchmarks
// programmatically and writes machine-readable JSON, the same shape as
// TestWriteBenchBaseline, so bench-compare can diff barrier-vs-stream
// cost across commits:
//
//	BENCH_PIPELINE_JSON=BENCH_pipeline.json go test -run TestWriteStreamBenchBaseline .
func TestWriteStreamBenchBaseline(t *testing.T) {
	path := os.Getenv("BENCH_PIPELINE_JSON")
	if path == "" {
		t.Skip("set BENCH_PIPELINE_JSON=<path> to write the streaming baseline")
	}
	benches := []struct {
		Name string
		Fn   func(*testing.B)
	}{
		{"PipelineStream/barrier", barrierBench},
		{"PipelineStream/stream/depth=1", streamBench(1)},
		{"PipelineStream/stream/depth=4", streamBench(4)},
		{"PipelineStream/stream/depth=64", streamBench(64)},
		{"PipelineStreamTraced/off", streamTracedBench(false)},
		{"PipelineStreamTraced/on", streamTracedBench(true)},
	}
	type row struct {
		Name        string  `json:"name"`
		N           int     `json:"n"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	}
	rows := make([]row, 0, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.Fn)
		if r.N == 0 {
			t.Fatalf("benchmark %s did not run", bench.Name)
		}
		rows = append(rows, row{
			Name:        bench.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		t.Logf("%-32s %12.1f ns/op %8d B/op %6d allocs/op",
			bench.Name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d benchmark rows to %s", len(rows), path)
}
