// Package freephish is a from-scratch Go reproduction of "Phishing in the
// Free Waters: A Study of Phishing Attacks Created using Free Website
// Building Services" (Saha Roy, Karanjit, Nilizadeh — IMC 2023).
//
// The FreePhish framework and every substrate it depends on — the 17 FWB
// hosting services, the social platforms, WHOIS, certificate-transparency
// logs, four blocklists, a 76-engine browser-protection fleet, gradient
// boosting / random forests / two-layer stacking, an HTML parser, and the
// paper's three baseline detectors — live under internal/, with runnable
// binaries in cmd/ and worked examples in examples/.
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results for every table and figure.
package freephish
