package freephish

// The public API façade. Downstream users import "freephish" and get the
// paper's three capabilities without reaching into internal packages:
//
//   - Detector: classify a (URL, HTML) page as FWB phishing.
//   - Study: run the six-month measurement study and read its results.
//   - Blocker: the web-extension-equivalent URL checker for proxies.
//
// Everything here is a thin, stable wrapper over the internal
// implementation; see README.md for the architecture.

import (
	"fmt"
	"io"
	"log/slog"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/baselines"
	"freephish/internal/core"
	"freephish/internal/faults"
	"freephish/internal/features"
	"freephish/internal/fwb"
	"freephish/internal/proxy"
	"freephish/internal/urlx"
	"freephish/internal/webgen"
)

// Page is one captured website: its URL and HTML source.
type Page struct {
	URL  string
	HTML string
}

// Label marks a training page as phishing or benign.
type Label int

// Training labels.
const (
	Benign   Label = 0
	Phishing Label = 1
)

// Sample is one labeled training page.
type Sample struct {
	Page  Page
	Label Label
}

// Detector classifies FWB-hosted pages with the paper's augmented
// two-layer stacking model (Section 4.2). Construct with NewDetector,
// train with Train or TrainSynthetic, then call Score or Classify.
type Detector struct {
	model *baselines.StackDetector
	seed  int64
}

// NewDetector returns an untrained detector.
func NewDetector(seed int64) *Detector {
	return &Detector{model: baselines.NewFreePhishModel(seed), seed: seed}
}

// SetParallelism bounds how many workers Train and TrainSynthetic may use
// for the stacked model's k-fold × base-learner fits; 0 means one worker
// per CPU. The trained model is bit-identical at every setting.
func (d *Detector) SetParallelism(n int) { d.model.SetParallelism(n) }

// Train fits the detector on labeled pages.
func (d *Detector) Train(samples []Sample) error {
	conv := make([]baselines.LabeledPage, len(samples))
	for i, s := range samples {
		conv[i] = baselines.LabeledPage{
			Page:  features.Page{URL: s.Page.URL, HTML: s.Page.HTML},
			Label: int(s.Label),
		}
	}
	return d.model.Train(conv)
}

// TrainSynthetic fits the detector on a generated ground-truth corpus of
// pairsPerClass phishing and benign FWB sites — the turnkey path when no
// labeled corpus is available.
func (d *Detector) TrainSynthetic(pairsPerClass int) error {
	if pairsPerClass < 20 {
		pairsPerClass = 20
	}
	g := webgen.NewGenerator(d.seed, nil, nil)
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	var samples []Sample
	for i := 0; i < pairsPerClass; i++ {
		p := g.PhishingFWBSite(g.PickService(), epoch)
		samples = append(samples, Sample{Page: Page{URL: p.URL, HTML: p.HTML}, Label: Phishing})
		b := g.BenignFWBSite(g.PickServiceUniform(), epoch)
		samples = append(samples, Sample{Page: Page{URL: b.URL, HTML: b.HTML}, Label: Benign})
	}
	return d.Train(samples)
}

// Score returns P(phishing) for the page.
func (d *Detector) Score(p Page) (float64, error) {
	return d.model.Score(features.Page{URL: p.URL, HTML: p.HTML})
}

// Classify thresholds Score at 0.5.
func (d *Detector) Classify(p Page) (bool, error) {
	s, err := d.Score(p)
	return s >= 0.5, err
}

// IsFWBHosted reports whether the URL is hosted on one of the 17 free
// website building services the paper studies, and which one.
func IsFWBHosted(rawURL string) (service string, ok bool) {
	u, err := urlx.Parse(rawURL)
	if err != nil {
		return "", false
	}
	if svc := fwb.Identify(u.Host, u.Path); svc != nil {
		return svc.Name, true
	}
	return "", false
}

// FWBServices returns the display names of the 17 studied services.
func FWBServices() []string {
	all := fwb.All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}

// StudyConfig parameterizes a measurement study run.
type StudyConfig struct {
	// Seed makes the whole study reproducible. Default 1.
	Seed int64
	// Scale in (0, 1] shrinks the paper's 62,810-URL populations. Default
	// 0.02 (≈1,250 URLs, seconds of wall-clock).
	Scale float64
	// TrainPerClass is the classifier's ground-truth size. Default scaled
	// from the paper's 4,656.
	TrainPerClass int
	// Workers bounds the study pipeline's probe pool and the trainers'
	// parallelism; 0 means one worker per CPU. Results are bit-identical
	// at every setting — parallelism only trades wall-clock for cores.
	Workers int
	// QueueDepth bounds the streaming pipeline's per-stage queues and its
	// reorder window, so per-cycle memory is O(Workers + QueueDepth) and a
	// stalled fetch backpressures the stream instead of buffering it; 0
	// picks the engine default. Like Workers, results are bit-identical at
	// every setting.
	QueueDepth int
	// Backend selects how the pipeline reaches the simulated world:
	// "inproc" (the default) binds it directly, "http" serves every
	// component on real loopback listeners and goes through the wire. The
	// resulting study is bit-identical either way.
	Backend string
	// Faults selects a chaos profile injected into the world boundary:
	// "" / "off" disable injection, "default" / "on" enable the standard
	// soak profile, and a comma-separated k=v spec tunes individual fault
	// rates (see the -faults flag documentation). The unified retry layer
	// absorbs the default profile completely — the study output is
	// byte-identical to a fault-free run.
	Faults string
	// Journal enables per-URL lifecycle tracing: every observed URL's
	// transitions (posted → observed-in-CT → polled → fetched → classified
	// → reported → takedown/re-check) are recorded and retrievable with
	// StudyResult.WriteJournal. The journal is deterministic: byte-
	// identical across Workers, QueueDepth, Backend, and Faults settings.
	Journal bool
	// Cascade selects the tiered classification cascade: "" / "off"
	// disable it, "on" / "default" enable the calibrated thresholds, and
	// an explicit "benignBelow,phishAbove" pair tunes the confident band.
	// With the cascade on, a fetch-free URL-lexical triage stage runs
	// ahead of fetch and confidently scored URLs short-circuit with a
	// verdict — they are never snapshotted. For any fixed threshold pair
	// the study keeps the same determinism contract as every other knob;
	// the degenerate pair "0,1" reproduces the cascade-off study exactly.
	Cascade string
	// Shards, when > 1, splits the study across N deterministic
	// sub-stream shards, each running its own pipeline against its own
	// simulated world; the shard results merge into records, journal,
	// and stats byte-identical to a 1-shard run. 0 and 1 run the study
	// in a single pipeline.
	Shards int
	// ShardWorkers lists remote shard-worker endpoints ("host:port",
	// serving the freephish-worker protocol). When set alongside Shards,
	// shards dispatch to the workers round-robin behind a per-endpoint
	// circuit breaker, falling back to in-process execution when no
	// worker is reachable. Placement never changes the study's bytes.
	ShardWorkers []string
	// Progress, when set, is invoked after every streaming poll cycle —
	// the hook by which long study runs narrate themselves.
	Progress func(Progress)
	// Logger, when set, receives structured "poll cycle" slog events at
	// roughly one-simulated-day granularity.
	Logger *slog.Logger
}

// Progress is one poll-cycle progress report from a running study.
type Progress struct {
	// SimTime is the virtual clock; Frac is the fraction of the
	// measurement window elapsed, in [0, 1].
	SimTime time.Time
	Frac    float64
	// Wall is real time elapsed since the run started.
	Wall time.Duration
	// Cumulative pipeline counters.
	Polls, PostsSeen, URLsScanned, Flagged, Reports, Records int
}

// StudyResult exposes the measurement study's headline artifacts plus the
// renderers for every table and figure.
type StudyResult struct {
	study *analysis.Study
	fp    *core.FreePhish
}

// RunStudy executes the six-month measurement study (Sections 5.1–5.5).
func RunStudy(cfg StudyConfig) (*StudyResult, error) {
	c := core.DefaultConfig()
	if cfg.Seed != 0 {
		c.Seed = cfg.Seed
	}
	c.Scale = 0.02
	if cfg.Scale > 0 {
		c.Scale = cfg.Scale
	}
	if cfg.TrainPerClass > 0 {
		c.TrainPerClass = cfg.TrainPerClass
	}
	c.Workers = cfg.Workers
	c.QueueDepth = cfg.QueueDepth
	c.Backend = cfg.Backend
	c.Shards = cfg.Shards
	c.ShardWorkers = cfg.ShardWorkers
	prof, err := faults.ParseProfile(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("freephish: bad fault profile: %w", err)
	}
	c.Faults = prof
	c.Journal = cfg.Journal
	cascade, err := core.ParseCascade(cfg.Cascade)
	if err != nil {
		return nil, fmt.Errorf("freephish: bad cascade spec: %w", err)
	}
	c.Cascade = cascade
	if cfg.Progress != nil {
		hook := cfg.Progress
		c.Progress = func(ev core.ProgressEvent) {
			hook(Progress{
				SimTime: ev.SimTime, Frac: ev.Frac, Wall: ev.Wall,
				Polls: ev.Polls, PostsSeen: ev.PostsSeen, URLsScanned: ev.URLsScanned,
				Flagged: ev.Flagged, Reports: ev.Reports, Records: ev.Records,
			})
		}
	}
	c.Logger = cfg.Logger
	fp := core.New(c)
	study, err := fp.Run()
	if err != nil {
		return nil, fmt.Errorf("freephish: study failed: %w", err)
	}
	return &StudyResult{study: study, fp: fp}, nil
}

// URLCount reports how many URLs came under longitudinal observation.
func (r *StudyResult) URLCount() int { return len(r.study.Records) }

// WriteMetrics writes the run's full metrics registry — poller, fetcher,
// classifier, reporter, and monitor families — in the Prometheus text
// exposition format.
func (r *StudyResult) WriteMetrics(w io.Writer) error {
	return r.fp.Metrics.Registry.WritePrometheus(w)
}

// WriteJournal writes the run's per-URL lifecycle journal as JSONL: one
// event per line, in canonical order, byte-identical for a given seed at
// every concurrency and backend setting. It errors unless the study ran
// with StudyConfig.Journal enabled.
func (r *StudyResult) WriteJournal(w io.Writer) error {
	if r.fp.Metrics.Journal == nil {
		return fmt.Errorf("freephish: study ran without StudyConfig.Journal")
	}
	return r.fp.Metrics.Journal.WriteJSONL(w)
}

// StageTiming summarizes one pipeline stage of the completed run in both
// time domains: wall-clock cost and placement in the simulated window.
type StageTiming struct {
	Stage   string
	Count   uint64
	Errors  uint64
	Wall    time.Duration
	AvgWall time.Duration
	MaxWall time.Duration
	// SimSpan is the virtual-time window the stage's work covered;
	// PerSimHour is its throughput against the simulation clock.
	SimSpan    time.Duration
	PerSimHour float64
}

// StageTimings returns per-stage tracing aggregates, sorted by stage.
func (r *StudyResult) StageTimings() []StageTiming {
	stats := r.fp.Metrics.Tracer.Snapshot()
	out := make([]StageTiming, len(stats))
	for i, st := range stats {
		out[i] = StageTiming{
			Stage: st.Stage, Count: st.Count, Errors: st.Errors,
			Wall: st.Wall, AvgWall: st.AvgWall, MaxWall: st.MaxWall,
			SimSpan: st.SimSpan, PerSimHour: st.PerSimHour,
		}
	}
	return out
}

// CoverageRow is one entity's coverage and response-time summary.
type CoverageRow struct {
	Entity   string
	Cohort   string // "fwb" or "self-hosted"
	Coverage float64
	Median   time.Duration
}

// Coverage returns Table 3: every entity × cohort at the one-week horizon.
func (r *StudyResult) Coverage() []CoverageRow {
	var out []CoverageRow
	week := 7 * 24 * time.Hour
	for _, e := range []string{"PhishTank", "OpenPhish", "GSB", "eCrimeX", "platform", "host"} {
		fr := r.study.Coverage(e, analysis.FWBCohort, week)
		sr := r.study.Coverage(e, analysis.SelfHostedCohort, week)
		out = append(out,
			CoverageRow{Entity: e, Cohort: "fwb", Coverage: fr.Coverage, Median: fr.Median},
			CoverageRow{Entity: e, Cohort: "self-hosted", Coverage: sr.Coverage, Median: sr.Median})
	}
	return out
}

// RenderAll returns the full evaluation (every table and figure) as text.
func (r *StudyResult) RenderAll() string {
	return core.RenderStats(r.fp.Stats()) + "\n" +
		core.RenderSection3(r.study) + "\n" +
		core.RenderTable3(r.study) + "\n" +
		core.RenderFigure6(r.study) + "\n" +
		core.RenderFigure7(r.study) + "\n" +
		core.RenderFigure8(r.study) + "\n" +
		core.RenderTable4(r.study) + "\n" +
		core.RenderFigure9(r.study) + "\n" +
		core.RenderFigure5(r.study, 15) + "\n" +
		core.RenderSection55(r.study)
}

// Blocker is the user-protection checker behind the freephish-proxy binary
// (the paper's web extension). It combines a static blocklist with an
// optional live detector.
type Blocker struct {
	list *proxy.ListChecker
	live *proxy.LiveChecker
}

// NewBlocker returns a Blocker with an empty blocklist. Pass a trained
// detector and a fetch function to enable live classification of unknown
// FWB URLs; both may be nil for blocklist-only operation.
func NewBlocker(d *Detector, fetch func(url string) (Page, int, error)) *Blocker {
	b := &Blocker{list: &proxy.ListChecker{}}
	if d != nil && fetch != nil {
		b.live = proxy.NewLiveChecker(d.model, func(url string) (features.Page, int, error) {
			p, status, err := fetch(url)
			return features.Page{URL: p.URL, HTML: p.HTML}, status, err
		})
	}
	return b
}

// Block adds a URL to the static blocklist.
func (b *Blocker) Block(url string) { b.list.Add(url) }

// Check reports whether navigation to the URL should be blocked.
func (b *Blocker) Check(url string) (block bool, reason string) {
	if block, reason = b.list.Check(url); block {
		return block, reason
	}
	if b.live != nil {
		return b.live.Check(url)
	}
	return false, ""
}

// Save writes the trained detector to w as JSON, so the expensive stacking
// fit happens once and the model ships to consumers (e.g. the proxy).
func (d *Detector) Save(w io.Writer) error { return d.model.Save(w) }

// LoadDetector restores a detector previously written with Save,
// including its seed, so a restored detector's TrainSynthetic regenerates
// the same corpus the original would have.
func LoadDetector(r io.Reader) (*Detector, error) {
	m, err := baselines.LoadStackDetector(r)
	if err != nil {
		return nil, err
	}
	return &Detector{model: m, seed: m.Seed()}, nil
}
