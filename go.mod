module freephish

go 1.22
