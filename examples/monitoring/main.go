// Monitoring: the observability layer watching the §4.4 active measurement
// loop. A compressed study runs with the monitor enabled and a Progress
// hook attached; every poll cycle updates a live single-line ticker, and
// when the run completes the example prints a per-stage dashboard straight
// from the metrics registry and stage tracer — the same data the daemons
// serve on /metrics.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"freephish/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Seed = 9
	cfg.Scale = 0.003
	cfg.TrainPerClass = 100
	cfg.MonitorInterval = 6 * time.Hour

	// Live ticker: one carriage-return line per poll cycle, throttled to
	// simulated-daily updates so the output stays readable when piped.
	last := -1
	cfg.Progress = func(ev core.ProgressEvent) {
		day := int(ev.Frac * cfg.Duration.Hours() / 24)
		if day == last {
			return
		}
		last = day
		fmt.Printf("\r[%-30s] day %3d  polls=%-5d urls=%-4d flagged=%-4d reports=%-4d",
			bar(ev.Frac, 30), day, ev.Polls, ev.URLsScanned, ev.Flagged, ev.Reports)
	}

	fp := core.New(cfg)
	fmt.Println("running a monitored study (probes every 6 virtual hours)...")
	study, err := fp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := fp.Verify(); err != nil {
		log.Fatal(err)
	}

	// Per-stage dashboard from the tracer: wall-clock cost next to
	// placement in the simulated six-month window.
	fmt.Println("\npipeline stages (wall-clock vs simulated time):")
	fmt.Printf("  %-10s %8s %6s %10s %10s %12s %12s\n",
		"stage", "count", "errs", "wall", "avg", "sim-span", "per-sim-hour")
	for _, st := range fp.Metrics.Tracer.Snapshot() {
		fmt.Printf("  %-10s %8d %6d %10v %10v %12v %12.2f\n",
			st.Stage, st.Count, st.Errors,
			st.Wall.Round(time.Millisecond), st.AvgWall.Round(time.Microsecond),
			st.SimSpan.Round(time.Hour), st.PerSimHour)
	}

	// Headline counters from the registry, grouped by pipeline position.
	fmt.Println("\nmetric families (non-zero counters):")
	samples := fp.Metrics.Registry.Snapshot()
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	for _, s := range samples {
		if s.Buckets != nil || s.Value == 0 || !strings.HasSuffix(s.Name, "_total") {
			continue
		}
		name := s.Name
		if len(s.Labels) > 0 {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = k + "=" + s.Labels[k]
			}
			name += "{" + strings.Join(parts, ",") + "}"
		}
		fmt.Printf("  %-52s %10.0f\n", name, s.Value)
	}

	// The §4.4 comparison the example always made: did the external
	// observation agree with the scheduled events?
	probes, observedDown, observedListings := 0, 0, 0
	var worstLag time.Duration
	for _, r := range study.Records {
		o := fp.Observations()[r.Target.URL]
		if o == nil {
			continue
		}
		probes += o.Probes
		if !o.HostDownAt.IsZero() {
			observedDown++
			if r.HostRemoved {
				if lag := o.HostDownAt.Sub(r.HostRemovedAt); lag > worstLag {
					worstLag = lag
				}
			}
		}
		observedListings += len(o.Listings)
	}
	fmt.Printf("\nmonitored %d URLs with %d HTTP probes\n", len(study.Records), probes)
	fmt.Printf("observed %d site takedowns and %d blocklist listings over live HTTP\n",
		observedDown, observedListings)
	fmt.Printf("worst observation lag: %v (must be <= one monitor interval, %v)\n",
		worstLag.Round(time.Minute), cfg.MonitorInterval)

	// Finally, the full Prometheus exposition — what /metrics would serve.
	fmt.Println("\nfull exposition (FREEPHISH_DUMP_METRICS=1 to print):")
	if os.Getenv("FREEPHISH_DUMP_METRICS") != "" {
		if err := fp.Metrics.Registry.WritePrometheus(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		var b strings.Builder
		if err := fp.Metrics.Registry.WritePrometheus(&b); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d bytes, %d samples across the poller, fetcher, classifier, reporter and monitor\n",
			b.Len(), len(samples))
	}
}

// bar renders a width-wide progress bar for frac in [0, 1].
func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("=", n) + strings.Repeat(" ", width-n)
}
