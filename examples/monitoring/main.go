// Monitoring: the §4.4 active measurement loop in miniature. A compressed
// study runs with the monitor enabled; every flagged URL is re-probed over
// HTTP and checked against the blocklists' lookup APIs at a fixed cadence,
// and the observed state transitions are compared with the scheduled ones.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"time"

	"freephish/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Seed = 9
	cfg.Scale = 0.003
	cfg.TrainPerClass = 100
	cfg.MonitorInterval = 6 * time.Hour

	fp := core.New(cfg)
	fmt.Println("running a monitored study (probes every 6 virtual hours)...")
	study, err := fp.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := fp.Verify(); err != nil {
		log.Fatal(err)
	}

	probes, observedDown, observedListings := 0, 0, 0
	var worstLag time.Duration
	for _, r := range study.Records {
		obs := fp.Observations[r.Target.URL]
		if obs == nil {
			continue
		}
		probes += obs.Probes
		if !obs.HostDownAt.IsZero() {
			observedDown++
			if r.HostRemoved {
				if lag := obs.HostDownAt.Sub(r.HostRemovedAt); lag > worstLag {
					worstLag = lag
				}
			}
		}
		observedListings += len(obs.Listings)
	}
	fmt.Printf("\nmonitored %d URLs with %d HTTP probes\n", len(study.Records), probes)
	fmt.Printf("observed %d site takedowns and %d blocklist listings over live HTTP\n",
		observedDown, observedListings)
	fmt.Printf("worst observation lag: %v (must be <= one monitor interval, %v)\n",
		worstLag.Round(time.Minute), cfg.MonitorInterval)

	fmt.Println()
	fmt.Println(core.RenderSummary(study))
}
