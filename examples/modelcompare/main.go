// Modelcompare: the Table 2 bake-off. Trains all five detection models on
// one ground-truth corpus and compares quality and per-URL runtime —
// reproducing the paper's model-selection argument: URLNet is fastest but
// weakest, PhishIntention is accurate but slow, and the augmented
// StackModel gives the best accuracy/latency trade-off.
//
//	go run ./examples/modelcompare [n]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"freephish/internal/baselines"
	"freephish/internal/core"
	"freephish/internal/features"
	"freephish/internal/simclock"
	"freephish/internal/webgen"
)

func main() {
	n := 600
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil && v > 20 {
			n = v
		}
	}
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	gen := webgen.NewGenerator(17, nil, nil)

	fmt.Printf("building %d-sample ground truth (balanced, Table 4 service mix)...\n", n)
	var all []baselines.LabeledPage
	for i := 0; i < n/2; i++ {
		p := gen.PhishingFWBSite(gen.PickService(), epoch)
		all = append(all, baselines.LabeledPage{Page: features.Page{URL: p.URL, HTML: p.HTML}, Label: 1})
		b := gen.BenignFWBSite(gen.PickServiceUniform(), epoch)
		all = append(all, baselines.LabeledPage{Page: features.Page{URL: b.URL, HTML: b.HTML}})
	}
	rng := simclock.NewRNG(17, "example.split")
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	cut := int(float64(len(all)) * 0.7)
	train, test := all[:cut], all[cut:]

	detectors := []baselines.Detector{
		baselines.NewVisualPhishNet(),
		baselines.NewPhishIntention(17),
		baselines.NewURLNet(17),
		baselines.NewBaseStackModel(17),
		baselines.NewFreePhishModel(17),
	}
	var results []baselines.Result
	for _, d := range detectors {
		fmt.Printf("  training %s...\n", d.Name())
		if err := d.Train(train); err != nil {
			log.Fatal(err)
		}
		r, err := baselines.Evaluate(d, test)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
	}
	fmt.Println()
	fmt.Println(core.RenderTable2(results))
	fmt.Println("paper's Table 2 for reference:")
	fmt.Println("  VisualPhishNet  0.76/0.78/0.72/0.75  median 5.1s")
	fmt.Println("  PhishIntention  0.96/0.98/0.94/0.96  median 11.3s")
	fmt.Println("  URLNet          0.68/0.70/0.67/0.68  median 1.9s")
	fmt.Println("  Base StackModel 0.88/0.89/0.87/0.88  median 2.4s")
	fmt.Println("  Our Model       0.97/0.96/0.97/0.96  median 2.8s")
	fmt.Println("\n(absolute runtimes differ — the originals run deep networks on GPUs —")
	fmt.Println(" but the ordering URLNet < StackModel < ours < VisualPhishNet < PhishIntention holds)")
}
