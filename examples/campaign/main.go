// Campaign: run a compressed FreePhish measurement study and watch the
// anti-phishing ecosystem respond — the workload the paper's Section 5
// motivates. An attacker shares FWB and self-hosted phishing across Twitter
// and Facebook over six virtual months; FreePhish streams, classifies,
// reports, and measures.
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.Scale = 0.01 // ~630 URLs: seconds, not minutes
	cfg.TrainPerClass = 300

	fp := core.New(cfg)
	fmt.Println("training classifiers...")
	if err := fp.Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("running the campaign (six virtual months)...")
	start := time.Now()
	study, err := fp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v wall-clock\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(core.RenderStats(fp.Stats()))

	// A campaign debrief: the first handful of attacks and their fates.
	recs := study.Select(analysis.FWBCohort)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Target.SharedAt.Before(recs[j].Target.SharedAt) })
	fmt.Println("first five FWB attacks observed:")
	for _, r := range recs[:min(5, len(recs))] {
		fmt.Printf("\n  %s\n    brand=%s kind=%s shared=%s on %s\n",
			r.Target.URL, r.Target.Brand, r.Target.Kind,
			r.Target.SharedAt.Format("2006-01-02 15:04"), r.Target.Platform)
		for _, name := range []string{"PhishTank", "OpenPhish", "GSB", "eCrimeX"} {
			v := r.Blocklist[name]
			if v.Detected {
				fmt.Printf("    %-10s listed after %v\n", name, v.At.Sub(r.Target.SharedAt).Round(time.Minute))
			} else {
				fmt.Printf("    %-10s never listed\n", name)
			}
		}
		if r.HostRemoved {
			fmt.Printf("    host       removed after %v\n", r.HostRemovedAt.Sub(r.Target.SharedAt).Round(time.Minute))
		} else {
			fmt.Printf("    host       still up after two weeks\n")
		}
		if r.PlatformRemoved {
			fmt.Printf("    platform   post removed after %v\n", r.PlatformRemovedAt.Sub(r.Target.SharedAt).Round(time.Minute))
		} else {
			fmt.Printf("    platform   post stayed up\n")
		}
	}

	fmt.Println()
	fmt.Println(core.RenderTable3(study))
	fmt.Println(core.RenderFigure5(study, 10))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
