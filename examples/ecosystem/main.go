// Ecosystem: the anti-phishing plumbing working together over live HTTP —
// a blocklist feed (the GSB-style lookup API), the platform link shim with
// Twitter's Figure 10 warning page, and the FreePhish protective proxy,
// all fronting one simulated FWB web.
//
//	go run ./examples/ecosystem
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"freephish/internal/blocklist"
	"freephish/internal/fwb"
	"freephish/internal/proxy"
	"freephish/internal/social"
	"freephish/internal/webgen"
)

func main() {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	now := epoch

	// 1. A simulated web: one phishing and one benign site on Weebly.
	host := fwb.NewHost(func() time.Time { return now })
	gen := webgen.NewGenerator(7, nil, nil)
	weebly, _ := fwb.ByKey("weebly")
	phish := gen.PhishingFWBSiteOf(weebly, fwb.KindPhishing, epoch)
	benign := gen.BenignFWBSite(weebly, epoch)
	must(host.Publish(phish))
	must(host.Publish(benign))
	web := httptest.NewServer(host)
	defer web.Close()
	fmt.Printf("simulated web:      %s\n", web.URL)
	fmt.Printf("  phishing site:    %s\n", phish.URL)
	fmt.Printf("  benign site:      %s\n\n", benign.URL)

	// 2. A blocklist feed: GSB lists the phishing URL an hour in.
	feed := blocklist.NewFeed("GSB", func() time.Time { return now })
	feed.List(phish.URL, epoch.Add(time.Hour))
	feedSrv := httptest.NewServer(feed)
	defer feedSrv.Close()
	feedClient := blocklist.NewClient(feedSrv.URL)
	fmt.Printf("GSB feed API:       %s\n", feedSrv.URL)

	// Before the listing time the lookup misses; after, it hits.
	listed, _ := feedClient.IsListed(phish.URL)
	fmt.Printf("  t=+0h  listed=%v\n", listed)
	now = epoch.Add(2 * time.Hour)
	listed, _ = feedClient.IsListed(phish.URL)
	fmt.Printf("  t=+2h  listed=%v\n\n", listed)

	// 3. The platform link shim: clicks on the phishing link now hit the
	// Figure 10 warning page.
	shim := social.NewLinkShim("Twitter", func(url string) bool {
		hit, err := feedClient.IsListed(url)
		return err == nil && hit
	})
	phishPath := shim.Wrap(phish.URL)
	benignPath := shim.Wrap(benign.URL)
	shimSrv := httptest.NewServer(shim)
	defer shimSrv.Close()
	fmt.Printf("Twitter link shim:  %s\n", shimSrv.URL)
	fmt.Printf("  click %-6s → %s\n", phishPath, describe(get(shimSrv.URL+phishPath)))
	fmt.Printf("  click %-6s → %s\n\n", benignPath, describe(get(shimSrv.URL+benignPath)))

	// 4. The FreePhish proxy: blocklist-backed blocking at the browser.
	var list proxy.ListChecker
	list.Add(phish.URL)
	px := proxy.New(&list, nil)
	pxSrv := httptest.NewServer(px)
	defer pxSrv.Close()
	fmt.Printf("FreePhish proxy:    %s\n", pxSrv.URL)
	fmt.Printf("  GET phishing URL  → %s\n", describe(proxyGet(pxSrv.URL, phish.URL)))
	blocked, passed := px.Counts()
	fmt.Printf("  proxy counters: blocked=%d passed=%d\n", blocked, passed)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func get(url string) (*http.Response, string) {
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func proxyGet(proxyURL, target string) (*http.Response, string) {
	req, err := http.NewRequest(http.MethodGet, target, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Issue an absolute-form request through the proxy by dialing it
	// directly and rewriting the request URI.
	req.URL.Scheme = "http"
	pr, err := http.NewRequest(http.MethodGet, proxyURL, nil)
	if err != nil {
		log.Fatal(err)
	}
	pr.URL.Path = ""
	pr.URL.Opaque = target // absolute-form
	resp, err := http.DefaultTransport.RoundTrip(pr)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func describe(resp *http.Response, body string) string {
	switch {
	case resp.StatusCode == http.StatusFound:
		return fmt.Sprintf("302 redirect to %s", resp.Header.Get("Location"))
	case strings.Contains(body, "potentially spammy or unsafe"):
		return "200 warning interstitial (Figure 10)"
	case strings.Contains(body, "FreePhish blocked this page"):
		return "403 FreePhish warning page (Figure 13)"
	default:
		return fmt.Sprintf("%d (%d bytes)", resp.StatusCode, len(body))
	}
}
