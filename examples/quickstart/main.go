// Quickstart: classify FWB URLs end to end with the public FreePhish
// pipeline — generate a small world, train the augmented stacking model,
// and score a phishing page and a benign page.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"freephish/internal/baselines"
	"freephish/internal/features"
	"freephish/internal/fwb"
	"freephish/internal/webgen"
)

func main() {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	gen := webgen.NewGenerator(42, nil, nil)

	// 1. Build a ground-truth corpus: phishing and benign sites across the
	//    17 FWB services, with the paper's evasion mix.
	fmt.Println("building ground truth...")
	var corpus []baselines.LabeledPage
	for i := 0; i < 300; i++ {
		p := gen.PhishingFWBSite(gen.PickService(), epoch)
		corpus = append(corpus, baselines.LabeledPage{
			Page: features.Page{URL: p.URL, HTML: p.HTML}, Label: 1,
		})
		b := gen.BenignFWBSite(gen.PickServiceUniform(), epoch)
		corpus = append(corpus, baselines.LabeledPage{
			Page: features.Page{URL: b.URL, HTML: b.HTML},
		})
	}

	// 2. Train the augmented FreePhish model (StackModel + FWB features).
	fmt.Println("training the FreePhish classifier...")
	model := baselines.NewFreePhishModel(42)
	if err := model.Train(corpus); err != nil {
		log.Fatal(err)
	}

	// 3. Classify fresh zero-day pages.
	weebly, _ := fwb.ByKey("weebly")
	phish := gen.PhishingFWBSiteOf(weebly, fwb.KindPhishing, epoch)
	benign := gen.BenignFWBSite(weebly, epoch)

	for _, site := range []*fwb.Site{phish, benign} {
		score, err := model.Score(features.Page{URL: site.URL, HTML: site.HTML})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "BENIGN"
		if score >= 0.5 {
			verdict = "PHISHING"
		}
		fmt.Printf("\n%s\n  truth=%s  score=%.3f  verdict=%s\n", site.URL, site.Kind, score, verdict)

		// Show the FWB-specific features the paper added (Section 4.2).
		m, err := features.Extract(features.Page{URL: site.URL, HTML: site.HTML})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  obfuscated_banner=%.0f noindex=%.0f has_login_form=%.0f brand_in_url=%.0f\n",
			m[features.FObfuscatedBanner], m[features.FNoindex],
			m[features.FHasLoginForm], m[features.FBrandInURL])
	}
}
