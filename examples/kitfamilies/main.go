// Kitfamilies: recover phishing-kit families from crawled pages alone.
// 60% of the generated self-hosted attacks come from a five-kit market;
// clustering their markup signatures (CSS class vocabularies + fixed
// resource includes) rebuilds the families across unrelated attacker
// domains — the analysis behind the kit-detection literature the paper
// builds on (§6).
//
//	go run ./examples/kitfamilies
package main

import (
	"fmt"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/webgen"
)

func main() {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	gen := webgen.NewGenerator(23, nil, nil)

	fmt.Printf("kit market: %v + hand-rolled pages\n\n", webgen.KitNames())

	// Crawl a corpus of self-hosted phishing pages.
	const n = 150
	var sigs []map[string]bool
	var truth []string
	for i := 0; i < n; i++ {
		site, family := gen.SelfHostedAttack(epoch)
		sigs = append(sigs, analysis.PageSignature(site.HTML))
		truth = append(truth, family)
	}

	// Cluster by markup-signature similarity.
	clusters := analysis.ClusterSignatures(sigs, 0.5)
	purity := analysis.ClusterPurity(clusters, truth)

	fmt.Printf("clustered %d pages into %d families (purity %.2f)\n\n", n, len(clusters), purity)
	fmt.Printf("%-8s %-14s %s\n", "pages", "majority kit", "signature sample")
	for _, c := range clusters {
		if len(c) < 3 {
			continue
		}
		counts := map[string]int{}
		for _, i := range c {
			counts[truth[i]]++
		}
		major, best := "", 0
		for k, v := range counts {
			if v > best {
				major, best = k, v
			}
		}
		sample := ""
		for k := range sigs[c[0]] {
			if len(k) > 2 && k[0] == 'r' { // a resource fingerprint
				sample = k[2:]
				break
			}
		}
		fmt.Printf("%-8d %-14s %s\n", len(c), major, sample)
	}

	fmt.Println("\nsingleton/small clusters are the hand-rolled pages — fully random")
	fmt.Println("markup clusters with nothing, exactly as it should.")
}
