// Similarity: the Appendix A website code-similarity study. Shows the
// tag-wise Levenshtein algorithm on two concrete pages, then regenerates
// Table 1's per-FWB medians — the §3 evidence that FWB templates make
// phishing pages structurally indistinguishable from benign ones.
//
//	go run ./examples/similarity
package main

import (
	"fmt"
	"time"

	"freephish/internal/core"
	"freephish/internal/fwb"
	"freephish/internal/htmlx"
	"freephish/internal/textsim"
	"freephish/internal/webgen"
)

func main() {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	gen := webgen.NewGenerator(11, nil, nil)

	// Two sites on the same service: a benign bakery and a phishing page.
	weebly, _ := fwb.ByKey("weebly")
	benign := gen.BenignFWBSite(weebly, epoch)
	phish := gen.PhishingFWBSiteOf(weebly, fwb.KindPhishing, epoch)

	tagsBenign := htmlx.Parse(benign.HTML).TagStrings()
	tagsPhish := htmlx.Parse(phish.HTML).TagStrings()

	fmt.Println("Appendix A site similarity, step by step")
	fmt.Printf("  benign site:   %s (%d tag elements)\n", benign.URL, len(tagsBenign))
	fmt.Printf("  phishing site: %s (%d tag elements)\n", phish.URL, len(tagsPhish))
	fmt.Println("\n  first benign tags:")
	for _, tag := range tagsBenign[:min(4, len(tagsBenign))] {
		fmt.Printf("    %s\n", truncate(tag, 90))
	}
	fmt.Println("  first phishing tags:")
	for _, tag := range tagsPhish[:min(4, len(tagsPhish))] {
		fmt.Printf("    %s\n", truncate(tag, 90))
	}

	sim := textsim.SiteSimilarity(tagsBenign, tagsPhish)
	fmt.Printf("\n  sim(A,B) = mean(median best-match similarities both ways) = %.1f%%\n", 100*sim)
	fmt.Println("  (same-service pages share the builder's template boilerplate, so a")
	fmt.Println("   source-code comparison cannot separate phishing from benign — §3)")

	// Contrast: the same phishing page against a self-hosted one.
	self := gen.SelfHostedPhishing(epoch)
	crossSim := textsim.SiteSimilarity(tagsPhish, htmlx.Parse(self.HTML).TagStrings())
	fmt.Printf("\n  same phishing page vs a self-hosted phishing page: %.1f%%\n", 100*crossSim)

	fmt.Println("\n" + core.RenderTable1(11, 15))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
