package freephish_test

// The benchmark harness: one benchmark per table and figure in the paper's
// evaluation. Each benchmark regenerates its artifact from a shared
// small-scale measurement study (the expensive end-to-end run happens once)
// and reports the regeneration cost; BenchmarkEndToEndStudy measures the
// full pipeline itself. Run everything with:
//
//	go test -bench=. -benchmem .

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"freephish/internal/ablation"
	"freephish/internal/analysis"
	"freephish/internal/baselines"
	"freephish/internal/core"
	"freephish/internal/features"
	"freephish/internal/fwb"
	"freephish/internal/obs"
	"freephish/internal/simclock"
	"freephish/internal/threat"
	"freephish/internal/vtsim"
	"freephish/internal/webgen"
	"freephish/internal/whois"

	"freephish/internal/blocklist"
	"freephish/internal/ctlog"
)

var (
	studyOnce sync.Once
	studyVal  *analysis.Study
	studyFP   *core.FreePhish
	studyErr  error
)

// sharedStudy runs one small end-to-end study for the aggregation benches.
func sharedStudy(b *testing.B) (*core.FreePhish, *analysis.Study) {
	b.Helper()
	studyOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Seed = 3
		cfg.Scale = 0.02
		cfg.TrainPerClass = 300
		fp := core.New(cfg)
		studyVal, studyErr = fp.Run()
		studyFP = fp
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studyFP, studyVal
}

func requireOutput(b *testing.B, out string) {
	b.Helper()
	if len(out) < 60 || !strings.Contains(out, "\n") {
		b.Fatalf("artifact output suspiciously small:\n%s", out)
	}
}

// BenchmarkFigure1HistoricalTrend regenerates the 2020–2022 quarterly FWB
// phishing series with its 80%-mass service sets (Figure 1).
func BenchmarkFigure1HistoricalTrend(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := core.RenderFigure1(core.HistoricalStudy(3))
		requireOutput(b, out)
	}
}

// BenchmarkTable1CodeSimilarity regenerates the per-FWB phishing↔benign
// code-similarity medians via the Appendix A algorithm (Table 1).
func BenchmarkTable1CodeSimilarity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := core.RenderTable1(3, 4)
		requireOutput(b, out)
	}
}

// BenchmarkTable2ModelComparison trains and evaluates all five detection
// models on a fresh ground-truth corpus (Table 2).
func BenchmarkTable2ModelComparison(b *testing.B) {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		g := webgen.NewGenerator(3, nil, nil)
		var all []baselines.LabeledPage
		for j := 0; j < 120; j++ {
			p := g.PhishingFWBSite(g.PickService(), epoch)
			all = append(all, baselines.LabeledPage{Page: features.Page{URL: p.URL, HTML: p.HTML}, Label: 1})
			bn := g.BenignFWBSite(g.PickServiceUniform(), epoch)
			all = append(all, baselines.LabeledPage{Page: features.Page{URL: bn.URL, HTML: bn.HTML}})
		}
		rng := simclock.NewRNG(3, "bench.split")
		rng.Shuffle(len(all), func(x, y int) { all[x], all[y] = all[y], all[x] })
		cut := int(float64(len(all)) * 0.7)
		var results []baselines.Result
		for _, d := range []baselines.Detector{
			baselines.NewVisualPhishNet(),
			baselines.NewPhishIntention(3),
			baselines.NewURLNet(3),
			baselines.NewBaseStackModel(3),
			baselines.NewFreePhishModel(3),
		} {
			if err := d.Train(all[:cut]); err != nil {
				b.Fatal(err)
			}
			r, err := baselines.Evaluate(d, all[cut:])
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, r)
		}
		requireOutput(b, core.RenderTable2(results))
	}
}

// BenchmarkTable3BlocklistPerformance regenerates the blocklist/platform/
// host coverage and response-time table over both cohorts (Table 3).
func BenchmarkTable3BlocklistPerformance(b *testing.B) {
	_, study := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireOutput(b, core.RenderTable3(study))
	}
}

// BenchmarkTable4PerFWBCountermeasures regenerates the per-FWB
// countermeasure table (Table 4).
func BenchmarkTable4PerFWBCountermeasures(b *testing.B) {
	_, study := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireOutput(b, core.RenderTable4(study))
	}
}

// BenchmarkFigure5TargetedBrands regenerates the targeted-organization
// histogram (Figure 5).
func BenchmarkFigure5TargetedBrands(b *testing.B) {
	_, study := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireOutput(b, core.RenderFigure5(study, 15))
	}
}

// BenchmarkFigure6CoverageOverTime regenerates the blocklist
// coverage-over-time curves (Figure 6).
func BenchmarkFigure6CoverageOverTime(b *testing.B) {
	_, study := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireOutput(b, core.RenderFigure6(study))
	}
}

// BenchmarkFigure7DetectionCDF regenerates the engine-detection CDF after
// one week for the four cohorts (Figure 7).
func BenchmarkFigure7DetectionCDF(b *testing.B) {
	_, study := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireOutput(b, core.RenderFigure7(study))
	}
}

// BenchmarkFigure8DetectionsOverDays regenerates the per-day detection
// accumulation series (Figure 8).
func BenchmarkFigure8DetectionsOverDays(b *testing.B) {
	_, study := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireOutput(b, core.RenderFigure8(study))
	}
}

// BenchmarkFigure9PlatformCoverage regenerates the platform removal curves
// (Figure 9).
func BenchmarkFigure9PlatformCoverage(b *testing.B) {
	_, study := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireOutput(b, core.RenderFigure9(study))
	}
}

// BenchmarkSection3Characterization regenerates the §3 characterization
// statistics (domain ages, .com share, noindex, CT invisibility).
func BenchmarkSection3Characterization(b *testing.B) {
	_, study := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireOutput(b, core.RenderSection3(study))
	}
}

// BenchmarkSection55EvasiveAttacks regenerates the §5.5 evasive-attack
// census.
func BenchmarkSection55EvasiveAttacks(b *testing.B) {
	_, study := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireOutput(b, core.RenderSection55(study))
	}
}

// BenchmarkEndToEndStudy measures a complete (tiny) six-month study:
// streaming, snapshotting, classification, reporting, and assessment.
func BenchmarkEndToEndStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(100 + i)
		cfg.Scale = 0.005
		cfg.TrainPerClass = 120
		fp := core.New(cfg)
		if _, err := fp.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlocklistAssess measures one blocklist assessment of one target.
func BenchmarkBlocklistAssess(b *testing.B) {
	var db whois.DB
	var ct ctlog.Log
	g := webgen.NewGenerator(3, &db, &ct)
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	g.RegisterInfrastructure(epoch)
	rng := simclock.NewRNG(3, "bench.assess")
	site := g.PhishingFWBSite(g.PickService(), epoch)
	tg := threat.Derive(site, epoch, threat.Twitter, "p", &db, &ct, rng)
	gsb := blocklist.Standard()[2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gsb.Assess(tg, rng)
	}
}

// BenchmarkVTScan measures a 76-engine scan of one target.
func BenchmarkVTScan(b *testing.B) {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	svc, _ := fwb.ByKey("weebly")
	tg := &threat.Target{SharedAt: epoch, Service: svc, HasCredentialFields: true}
	s := vtsim.NewScanner()
	rng := simclock.NewRNG(3, "bench.vt")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Assess(tg, rng)
	}
}

// Ablation benchmarks: each quantifies one design choice or evasion
// mechanism the paper argues for (see internal/ablation).

// BenchmarkAblationFeatureSet re-runs the §4.2 feature-set ablation.
func BenchmarkAblationFeatureSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ablation.FeatureAblation(3, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStacking compares the two-layer stack to its base
// learners.
func BenchmarkAblationStacking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ablation.StackingAblation(3, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCTInvisibility measures the §3 CT-invisibility
// counterfactual (FWB sites with their own logged certificates).
func BenchmarkAblationCTInvisibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ablation.CTCounterfactual(3, 600)
		if r.Counterfactual <= r.BaselineCov {
			b.Fatal("counterfactual did not raise coverage")
		}
	}
}

// BenchmarkAblationNoindex measures the noindex/search-invisibility
// counterfactual.
func BenchmarkAblationNoindex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ablation.NoindexCounterfactual(3, 600)
		if r.Counterfactual < r.BaselineCov {
			b.Fatal("counterfactual reduced coverage")
		}
	}
}

// BenchmarkAblationResponsiveness measures the §5.3 all-responsive-FWB
// takedown counterfactual.
func BenchmarkAblationResponsiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ablation.ResponsivenessCounterfactual(3, 600)
		if r.AllResponsiveRemoval <= r.BaselineRemoval {
			b.Fatal("counterfactual did not raise removal")
		}
	}
}

// BenchmarkSection2D1Pipeline re-runs the D1 construction (VirusTotal
// labeling + Dynamic-DNS exclusion).
func BenchmarkSection2D1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.BuildD1(3, 0.01)
		if s.FWBPhishing == 0 {
			b.Fatal("empty D1")
		}
	}
}

// BenchmarkSection3CoderStudy re-runs the two-coder qualitative protocol.
func BenchmarkSection3CoderStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.RunCoderStudy(3, 2000)
		if s.Kappa <= 0 {
			b.Fatal("degenerate kappa")
		}
	}
}

// Observability-layer micro-benchmarks: the per-event cost every pipeline
// stage pays. The instruments are lock-free, so these bound the metrics
// overhead of the instrumented hot paths.

// BenchmarkObsCounterInc measures one counter increment.
func BenchmarkObsCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_events_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsCounterVecWith measures a labeled increment including the
// series lookup — the shape the per-platform and per-recipient counters use.
func BenchmarkObsCounterVecWith(b *testing.B) {
	v := obs.NewRegistry().CounterVec("bench_labeled_total", "bench", "kind")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("fetch").Inc()
	}
}

// BenchmarkObsHistogramObserve measures one latency observation.
func BenchmarkObsHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench_seconds", "bench", obs.DefBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// BenchmarkObsTracerSpan measures a full start/end span, the unit of stage
// tracing wrapped around every poll, fetch, classify and report.
func BenchmarkObsTracerSpan(b *testing.B) {
	tr := obs.NewTracer(obs.NewRegistry(), "bench", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Start("stage").End()
	}
}

// BenchmarkObsJournalRecord measures one canonical lifecycle event — the
// unit the ordered apply phase pays per traced URL milestone.
func BenchmarkObsJournalRecord(b *testing.B) {
	j := obs.NewJournal(nil, 0)
	at := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record("http://bench.weebly.com/", obs.EvFetched, at, "status", "200")
	}
}

// BenchmarkObsJournalRecordOps measures one ring-buffered ops event — the
// unit the concurrent hooks (stage emissions, retries, port calls) pay.
func BenchmarkObsJournalRecordOps(b *testing.B) {
	j := obs.NewJournal(nil, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.RecordOps("", obs.EvStage, "pipe", "poll", "stage", "fetch")
	}
}

// BenchmarkObsJournalRecordDisabled measures the same call on a nil
// journal — the disabled-tracing fast path every untraced run takes.
func BenchmarkObsJournalRecordDisabled(b *testing.B) {
	var j *obs.Journal
	at := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record("http://bench.weebly.com/", obs.EvFetched, at, "status", "200")
	}
}

// BenchmarkObsWritePrometheus measures a full /metrics scrape of a
// study-sized registry.
func BenchmarkObsWritePrometheus(b *testing.B) {
	fp, _ := sharedStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := fp.Metrics.Registry.WritePrometheus(&sb); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWriteBenchBaseline runs a representative benchmark subset
// programmatically and writes the results as machine-readable JSON, so CI
// can diff pipeline and metrics-layer cost across commits:
//
//	BENCH_JSON=BENCH_obs.json go test -run TestWriteBenchBaseline .
func TestWriteBenchBaseline(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to write the benchmark baseline")
	}
	benches := []struct {
		Name string
		Fn   func(*testing.B)
	}{
		{"EndToEndStudy", BenchmarkEndToEndStudy},
		{"Table3BlocklistPerformance", BenchmarkTable3BlocklistPerformance},
		{"BlocklistAssess", BenchmarkBlocklistAssess},
		{"VTScan", BenchmarkVTScan},
		{"ObsCounterInc", BenchmarkObsCounterInc},
		{"ObsCounterVecWith", BenchmarkObsCounterVecWith},
		{"ObsHistogramObserve", BenchmarkObsHistogramObserve},
		{"ObsTracerSpan", BenchmarkObsTracerSpan},
		{"ObsJournalRecord", BenchmarkObsJournalRecord},
		{"ObsJournalRecordOps", BenchmarkObsJournalRecordOps},
		{"ObsJournalRecordDisabled", BenchmarkObsJournalRecordDisabled},
		{"ObsWritePrometheus", BenchmarkObsWritePrometheus},
	}
	type row struct {
		Name        string  `json:"name"`
		N           int     `json:"n"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	}
	rows := make([]row, 0, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.Fn)
		if r.N == 0 {
			t.Fatalf("benchmark %s did not run", bench.Name)
		}
		rows = append(rows, row{
			Name:        bench.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		t.Logf("%-28s %12.1f ns/op %8d B/op %6d allocs/op",
			bench.Name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d benchmark rows to %s", len(rows), path)
}
