package freephish_test

// Shard benchmarks: the fetch → classify workload run as one pipeline
// and as N concurrent sub-stream shards, each shard a private pipeline
// over its residue class of the item ordinals (the same `ord % N`
// partition core's sharded study uses), with the per-shard results
// merged at the end. Fetch latency is injected so the win is structural:
// every shard owns a full pipeline graph — its own worker pool and queue
// discipline — so shards multiply phase overlap instead of sharing one
// pool. TestWriteShardBenchBaseline snapshots the scaling curve as
// BENCH_shard.json for bench-compare and enforces the ≥2× floor at 4
// shards that the sharded study is sold on.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"freephish/internal/pipe"
	"freephish/internal/simclock"
)

// shardOut carries one classified item back to the merge step.
type shardOut struct {
	idx     int
	payload uint64
}

// shardDelays is the shard benchmark's fetch latency schedule: 2–6ms per
// item, the fetch-bound regime sharding exists for. Unlike the streaming
// benchmark — which balances fetch and classify to show phase overlap —
// the shard benchmark keeps classify light (shardClassify), because the
// structural win of sharding is concurrent fetch capacity: each shard
// brings its own fetch worker pool, and sleeps overlap regardless of
// core count.
func shardDelays(n int) []time.Duration {
	rng := simclock.NewRNG(7, "bench.shard")
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(2000+rng.Intn(4000)) * time.Microsecond
	}
	return out
}

// shardClassify is the shard benchmark's CPU phase: a short mixing loop
// (~1/16 of streamClassify) so the workload stays fetch-bound.
func shardClassify(v uint64) uint64 {
	for k := 0; k < 1<<16; k++ {
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
	}
	return v
}

// shardWant is the checksum every shard count must produce.
func shardWant() uint64 {
	var sum uint64
	for i := 0; i < streamItems; i++ {
		sum += shardClassify(uint64(i)*2654435761 + 1)
	}
	return sum
}

// shardBench runs the streaming fetch → classify workload split across
// the given shard count and merges the shard outputs in canonical
// (ordinal) order — the benchmark-scale image of core's runSharded.
func shardBench(shards int) func(*testing.B) {
	return func(b *testing.B) {
		delays := shardDelays(streamItems)
		want := shardWant()
		const depth = 4
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			perShard := make([][]shardOut, shards)
			var wg sync.WaitGroup
			errs := make([]error, shards)
			for s := 0; s < shards; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					// This shard's residue class of the global ordinals.
					var items []int
					for i := s; i < streamItems; i += shards {
						items = append(items, i)
					}
					p := pipe.New(context.Background(), pipe.Options{Name: fmt.Sprintf("shard%d", s)})
					fetched := pipe.Stage(pipe.Range(p, depth, len(items)), "fetch", streamWorkers, depth,
						func(_ int, k int) (shardOut, error) {
							i := items[k]
							return shardOut{idx: i, payload: streamFetch(delays[i], i)}, nil
						})
					classified := pipe.Stage(fetched, "classify", streamWorkers, depth,
						func(_ int, it shardOut) (shardOut, error) {
							it.payload = shardClassify(it.payload)
							return it, nil
						})
					errs[s] = pipe.Drain(classified, func(_ int, it shardOut) error {
						perShard[s] = append(perShard[s], it)
						return nil
					})
				}(s)
			}
			wg.Wait()
			for s, err := range errs {
				if err != nil {
					b.Fatalf("shard %d: %v", s, err)
				}
			}
			// Merge: concatenate and restore canonical ordinal order, then
			// checksum — every shard count must have done identical work.
			var merged []shardOut
			for _, part := range perShard {
				merged = append(merged, part...)
			}
			sort.Slice(merged, func(i, j int) bool { return merged[i].idx < merged[j].idx })
			var sum uint64
			for _, it := range merged {
				sum += it.payload
			}
			if len(merged) != streamItems || sum != want {
				b.Fatalf("shards=%d merged %d items checksum %d, want %d items checksum %d",
					shards, len(merged), sum, streamItems, want)
			}
		}
	}
}

// BenchmarkPipelineSharded sweeps the shard count over the same workload.
// Each shard brings its own worker pool, so wall-clock should fall
// roughly linearly until the per-item work is exhausted.
func BenchmarkPipelineSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), shardBench(shards))
	}
}

// TestWriteShardBenchBaseline snapshots the shard scaling curve as
// machine-readable JSON for bench-compare:
//
//	BENCH_SHARD_JSON=BENCH_shard.json go test -run TestWriteShardBenchBaseline .
//
// Latency rows are the per-shard-count pipeline timings; the quality row
// carries the 4-shard speedup as a higher-is-better value, so a change
// that serializes the shards (a shared lock, a lost worker pool) fails
// the same CI gate as a latency regression. The ≥2× floor at 4 shards is
// enforced directly.
func TestWriteShardBenchBaseline(t *testing.T) {
	path := os.Getenv("BENCH_SHARD_JSON")
	if path == "" {
		t.Skip("set BENCH_SHARD_JSON=<path> to write the shard baseline")
	}
	type row struct {
		Name           string  `json:"name"`
		N              int     `json:"n,omitempty"`
		NsPerOp        float64 `json:"ns_per_op,omitempty"`
		BytesPerOp     int64   `json:"bytes_per_op,omitempty"`
		AllocsPerOp    int64   `json:"allocs_per_op,omitempty"`
		Value          float64 `json:"value,omitempty"`
		Unit           string  `json:"unit,omitempty"`
		HigherIsBetter bool    `json:"higher_is_better,omitempty"`
	}
	var rows []row
	nsPerOp := map[int]float64{}
	for _, shards := range []int{1, 2, 4, 8} {
		r := testing.Benchmark(shardBench(shards))
		if r.N == 0 {
			t.Fatalf("shards=%d benchmark did not run", shards)
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		nsPerOp[shards] = ns
		rows = append(rows, row{
			Name:        fmt.Sprintf("PipelineSharded/shards=%d", shards),
			N:           r.N,
			NsPerOp:     ns,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		t.Logf("%-28s %12.1f ns/op %8d B/op %6d allocs/op",
			fmt.Sprintf("PipelineSharded/shards=%d", shards), ns, r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	speedup := nsPerOp[1] / nsPerOp[4]
	t.Logf("4-shard speedup: %.2fx (1 shard %.2fms, 4 shards %.2fms)",
		speedup, nsPerOp[1]/1e6, nsPerOp[4]/1e6)
	if speedup < 2.0 {
		t.Errorf("4-shard speedup = %.2fx, want >= 2x", speedup)
	}
	rows = append(rows, row{
		Name: "ShardScaling/speedup_4_shards", Value: speedup,
		Unit: "x", HigherIsBetter: true,
	})

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d rows to %s", len(rows), path)
}
