package freephish_test

// Cascade benchmarks: the fetch → classify workload run once with every
// URL taking the full path and once behind the URL-only lexical triage
// stage, under the same injected fetch latency as the streaming
// benchmarks. Confidently triaged URLs skip both the fetch sleep and the
// classify mixing loop, so the cascade's win shows up as wall-clock.
// TestWriteCascadeBenchBaseline snapshots the timings plus the quality
// trade-off (fetches avoided, cascade F1 vs full-model F1 on a held-out
// mixed FWB + self-hosted corpus) as BENCH_cascade.json for
// bench-compare, and logs the threshold sweep behind EXPERIMENTS.md.

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"freephish/internal/baselines"
	"freephish/internal/features"
	"freephish/internal/pipe"
	"freephish/internal/simclock"
	"freephish/internal/world"
)

// cascadeCorpus builds the same mixed corpus core.Train sees — n
// FWB pairs plus the matched self-hosted cohort from the seeded world —
// shuffled and split 70/30 into train and held-out test.
func cascadeCorpus(seed int64, n int) (train, test []baselines.LabeledPage) {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	sim := world.NewSim(seed, epoch, simclock.New(epoch))
	fwb, self := sim.GroundTruthCorpus(n)
	var all []baselines.LabeledPage
	for _, s := range append(fwb, self...) {
		all = append(all, baselines.LabeledPage{
			Page:  features.Page{URL: s.URL, HTML: s.HTML},
			Label: s.Label,
		})
	}
	rng := simclock.NewRNG(seed, "bench.cascade")
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	cut := int(float64(len(all)) * 0.7)
	return all[:cut], all[cut:]
}

// cascadeItem flows through the benchmark pipeline: short-circuited
// items carry their tier past the fetch and classify stages untouched.
type cascadeItem struct {
	idx     int
	tier    baselines.Tier
	payload uint64
}

var cascadeBenchState struct {
	once sync.Once
	urls []string
	casc *baselines.Cascade
}

// cascadeBenchData trains the lexical scorer once and pins the benchmark
// URL set: streamItems held-out URLs from the mixed corpus.
func cascadeBenchData() ([]string, *baselines.Cascade) {
	cascadeBenchState.once.Do(func() {
		train, test := cascadeCorpus(7, 120)
		lex := baselines.NewLexicalScorer(7)
		if err := lex.Train(train); err != nil {
			panic(err)
		}
		urls := make([]string, 0, streamItems)
		for i := 0; len(urls) < streamItems; i++ {
			urls = append(urls, test[i%len(test)].Page.URL)
		}
		cascadeBenchState.urls = urls
		cascadeBenchState.casc = &baselines.Cascade{
			Scorer:      lex,
			BenignBelow: baselines.DefaultBenignBelow,
			PhishAbove:  baselines.DefaultPhishAbove,
		}
	})
	return cascadeBenchState.urls, cascadeBenchState.casc
}

// cascadeBench runs the fetch → classify pipeline over the benchmark URL
// set. With the cascade on, the graph grows the triage stage core.pollOnce
// prepends, and confidently triaged items skip the fetch sleep and the
// classify loop — exactly the short-circuit the study pipeline takes.
func cascadeBench(on bool) func(*testing.B) {
	return func(b *testing.B) {
		urls, casc := cascadeBenchData()
		delays := streamDelays(len(urls))
		const depth = 4
		fetchStage := func(_ int, it cascadeItem) (cascadeItem, error) {
			if it.tier == baselines.TierFull {
				it.payload = streamFetch(delays[it.idx], it.idx)
			}
			return it, nil
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			p := pipe.New(context.Background(), pipe.Options{Name: "bench"})
			var fetched *pipe.Flow[cascadeItem]
			if on {
				triaged := pipe.Stage(pipe.Range(p, depth, len(urls)), "triage", streamWorkers, depth,
					func(_ int, i int) (cascadeItem, error) {
						_, tier := casc.Triage(urls[i])
						return cascadeItem{idx: i, tier: tier}, nil
					})
				fetched = pipe.Stage(triaged, "fetch", streamWorkers, depth, fetchStage)
			} else {
				fetched = pipe.Stage(pipe.Range(p, depth, len(urls)), "fetch", streamWorkers, depth,
					func(_ int, i int) (cascadeItem, error) {
						return fetchStage(0, cascadeItem{idx: i})
					})
			}
			classified := pipe.Stage(fetched, "classify", streamWorkers, depth,
				func(_ int, it cascadeItem) (cascadeItem, error) {
					if it.tier == baselines.TierFull {
						it.payload = streamClassify(it.payload)
					}
					return it, nil
				})
			count, short := 0, 0
			err := pipe.Drain(classified, func(_ int, it cascadeItem) error {
				count++
				if it.tier != baselines.TierFull {
					short++
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if count != len(urls) {
				b.Fatalf("drained %d items, want %d", count, len(urls))
			}
			if on && short == 0 {
				b.Fatal("cascade-on run short-circuited nothing; thresholds miscalibrated for the benchmark corpus")
			}
		}
	}
}

// BenchmarkPipelineCascade compares the always-fetch pipeline against the
// triage-first cascade at the calibrated default thresholds. The cascade
// variant should win wall-clock roughly in proportion to the fraction of
// URLs the confident tiers absorb.
func BenchmarkPipelineCascade(b *testing.B) {
	b.Run("off", cascadeBench(false))
	b.Run("on", cascadeBench(true))
}

// TestWriteCascadeBenchBaseline snapshots the cascade's cost AND quality
// as machine-readable JSON for bench-compare:
//
//	BENCH_CASCADE_JSON=BENCH_cascade.json go test -run TestWriteCascadeBenchBaseline .
//
// Latency rows are the off/on pipeline timings; quality rows carry the
// fetches-avoided percentage and the cascade-vs-full F1 on a held-out
// mixed corpus as higher-is-better values, so a threshold change that
// trades too much accuracy for speed fails the same CI gate as a latency
// regression. The test also enforces the calibration contract directly:
// ≥40% fetches avoided at ≤1 point of F1 loss.
func TestWriteCascadeBenchBaseline(t *testing.T) {
	path := os.Getenv("BENCH_CASCADE_JSON")
	if path == "" {
		t.Skip("set BENCH_CASCADE_JSON=<path> to write the cascade baseline")
	}
	type row struct {
		Name           string  `json:"name"`
		N              int     `json:"n,omitempty"`
		NsPerOp        float64 `json:"ns_per_op,omitempty"`
		BytesPerOp     int64   `json:"bytes_per_op,omitempty"`
		AllocsPerOp    int64   `json:"allocs_per_op,omitempty"`
		Value          float64 `json:"value,omitempty"`
		Unit           string  `json:"unit,omitempty"`
		HigherIsBetter bool    `json:"higher_is_better,omitempty"`
	}
	var rows []row

	for _, bench := range []struct {
		Name string
		Fn   func(*testing.B)
	}{
		{"PipelineCascade/off", cascadeBench(false)},
		{"PipelineCascade/on", cascadeBench(true)},
	} {
		r := testing.Benchmark(bench.Fn)
		if r.N == 0 {
			t.Fatalf("benchmark %s did not run", bench.Name)
		}
		rows = append(rows, row{
			Name:        bench.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		t.Logf("%-32s %12.1f ns/op %8d B/op %6d allocs/op",
			bench.Name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	// Quality: train on the mixed corpus and evaluate the cascade against
	// the full model on the held-out 30%, sweeping the threshold band to
	// show the trade-off curve (the EXPERIMENTS.md table).
	const seed = 7
	train, test := cascadeCorpus(seed, 400)
	full := baselines.NewFreePhishModel(seed)
	if err := full.Train(train); err != nil {
		t.Fatal(err)
	}
	lex := baselines.NewLexicalScorer(seed)
	if err := lex.Train(train); err != nil {
		t.Fatal(err)
	}
	t.Logf("threshold sweep on %d held-out samples (train %d):", len(test), len(train))
	t.Logf("%-14s %14s %8s %8s %8s", "thresholds", "fetches avoided", "f1 full", "f1 casc", "f1 loss")
	var def baselines.CascadeResult
	for _, th := range [][2]float64{
		{0, 1}, {0.01, 0.99}, {0.02, 0.98}, {0.05, 0.95},
		{0.1, 0.9}, {0.2, 0.8}, {0.3, 0.7}, {0.4, 0.6},
	} {
		c := &baselines.Cascade{Scorer: lex, BenignBelow: th[0], PhishAbove: th[1]}
		r, err := baselines.EvaluateCascade(c, full, test)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%5.2f,%5.2f %14.1f%% %8.4f %8.4f %+8.4f",
			th[0], th[1], 100*r.FetchesAvoided, r.FullMetrics.F1, r.Metrics.F1,
			r.FullMetrics.F1-r.Metrics.F1)
		if th[0] == baselines.DefaultBenignBelow && th[1] == baselines.DefaultPhishAbove {
			def = r
		}
	}
	if def.SampleCount == 0 {
		t.Fatalf("default thresholds (%g, %g) missing from the sweep",
			baselines.DefaultBenignBelow, baselines.DefaultPhishAbove)
	}
	// The calibration contract the defaults were chosen to satisfy.
	if def.FetchesAvoided < 0.40 {
		t.Errorf("default thresholds avoid %.1f%% of fetches, want >= 40%%", 100*def.FetchesAvoided)
	}
	if loss := def.FullMetrics.F1 - def.Metrics.F1; loss > 0.01 {
		t.Errorf("default thresholds lose %.4f F1, want <= 0.01", loss)
	}
	rows = append(rows,
		row{Name: "CascadeQuality/fetches_avoided_pct", Value: 100 * def.FetchesAvoided,
			Unit: "pct", HigherIsBetter: true},
		row{Name: "CascadeQuality/f1_full", Value: def.FullMetrics.F1,
			Unit: "f1", HigherIsBetter: true},
		row{Name: "CascadeQuality/f1_cascade", Value: def.Metrics.F1,
			Unit: "f1", HigherIsBetter: true},
	)

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d rows to %s", len(rows), path)
}
