# FreePhish build and CI entry points. Everything is pure-stdlib Go; the
# only tool required is the go toolchain itself.

GO ?= go

.PHONY: all build test race vet ci bench bench-baseline bench-compare fmt-check verify-backends verify-chaos verify-stream verify-journal verify-cascade verify-shards verify-resume verify-remote-shards verify-adoption clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled run exercises the observability layer's concurrency
# contract: /metrics scrapes race against the pipeline by design.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# ci is the gate: formatting, static analysis, and the full test suite
# under the race detector.
ci: fmt-check vet race

# verify-backends proves the ports-and-adapters boundary: the same seed
# through the inproc and http backends must yield a byte-identical study.
verify-backends:
	$(GO) test ./internal/core -run TestCrossBackendEquivalence -count=1 -v

# verify-chaos proves the resilience layer: a study soaked in the default
# fault profile (latency, 5xx bursts, resets, corrupted bodies) on both
# backends must be byte-identical to the fault-free run.
verify-chaos:
	$(GO) test ./internal/core -run 'TestStudyUnderFaultsDeterministic|TestBlackoutSurvivedAndObserved' -count=1 -v

# verify-stream proves the streaming engine's determinism contract: the
# same seed at every (workers × queue-depth × backend) combination must
# yield a byte-identical study, and a failed poll must end the run at once.
verify-stream:
	$(GO) test ./internal/core -run 'TestStudyDeterminismAcrossQueueDepths|TestRunEndsImmediatelyOnPollError' -count=1 -v

# verify-journal proves the lifecycle journal's determinism contract: the
# same seed must yield a byte-identical event journal at every (workers ×
# queue-depth × backend) setting — including soaked in the default fault
# profile — and the journal must agree with the study's own records.
verify-journal:
	$(GO) test ./internal/core -run 'TestJournalDeterminism|TestJournalMatchesResultAPI' -count=1 -v

# verify-cascade proves the tiered cascade's determinism contract: with
# the cascade on, the same seed must yield byte-identical records,
# journal, and stats at every (workers × queue-depth × backend) setting
# including under chaos, and the degenerate (0,1) cascade must reproduce
# the cascade-off study exactly.
verify-cascade:
	$(GO) test ./internal/core -run 'TestCascadeDeterminism|TestCascadeDegenerateEquivalence' -count=1 -v

# verify-shards proves the sharded study's merge contract: the same seed
# split across 1, 2, 4, and 8 sub-stream shards must merge into
# byte-identical records, journal, and stats — across backends, with
# pipeline parallelism inside each shard, under the default chaos
# profile, and through the coordinator's shard-retry path.
verify-shards:
	$(GO) test ./internal/core -run 'TestShardDeterminism|TestShardRetryReplaysExactly|TestShardRetryExhaustionFails' -count=1 -v

# verify-resume proves the checkpoint/resume contract: a run killed at
# any ordered-apply cut point and resumed from its checkpoint must yield
# byte-identical records, journal, and stats — at every worker count, on
# both backends, under the default chaos profile — and a failed shard
# attempt must be fully closed and surfaced (counter + ops event), never
# leaked.
verify-resume:
	$(GO) test ./internal/core -run 'TestResumeByteIdentical|TestResumeFromCheckpointFile|TestResumeRejectsFingerprintMismatch|TestCheckpointRejectedWithShards|TestShardRetryDoesNotLeak|TestShardCoordinatorFailureClosesSiblings' -count=1 -v

# verify-remote-shards proves the shard-dispatch boundary is
# transport-agnostic: shards dispatched to a remote worker daemon over
# the shardrpc wire protocol must yield records, journal, and stats
# byte-identical to in-process dispatch — at shards 2 and 4, on both
# backends, under the default chaos profile — and a dead endpoint must
# fail over to local dispatch through the per-worker circuit breaker.
verify-remote-shards:
	$(GO) test ./internal/core -run 'TestRemoteShardDeterminism|TestWorkerBreakerFailover' -count=1 -v

# verify-adoption proves failover by checkpoint adoption: a shard
# runner killed mid-run (local panic or remote connection death) must
# be replaced by a runner that resumes from the dead runner's last
# streamed checkpoint — never from scratch — and the adopted study must
# be byte-identical to the undisturbed one.
verify-adoption:
	$(GO) test ./internal/core -run 'TestShardAdoptionByteIdentical|TestRemoteShardAdoptionByteIdentical' -count=1 -v

bench:
	$(GO) test -bench=. -benchmem .

# bench-baseline writes BENCH_obs.json, BENCH_parallel.json,
# BENCH_pipeline.json, BENCH_cascade.json, and BENCH_shard.json —
# machine-readable snapshots of pipeline, metrics-layer, worker-pool,
# barrier-vs-stream, cascade cost/quality, and shard scaling for diffing
# across commits.
bench-baseline:
	BENCH_JSON=BENCH_obs.json $(GO) test -run TestWriteBenchBaseline -v .
	BENCH_PARALLEL_JSON=BENCH_parallel.json $(GO) test -run TestWriteParallelBenchBaseline -v .
	BENCH_PIPELINE_JSON=BENCH_pipeline.json $(GO) test -run TestWriteStreamBenchBaseline -v .
	BENCH_CASCADE_JSON=BENCH_cascade.json $(GO) test -run TestWriteCascadeBenchBaseline -v .
	BENCH_SHARD_JSON=BENCH_shard.json $(GO) test -run TestWriteShardBenchBaseline -v .

# bench-compare diffs a saved baseline against a fresh run:
#   make bench-compare OLD=BENCH_parallel.json NEW=BENCH_parallel.new.json
OLD ?= BENCH_parallel.json
NEW ?= BENCH_parallel.new.json
bench-compare:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

clean:
	rm -f BENCH_obs.json BENCH_parallel.json BENCH_parallel.new.json BENCH_pipeline.json BENCH_pipeline.new.json BENCH_cascade.json BENCH_cascade.new.json BENCH_shard.json BENCH_shard.new.json
	$(GO) clean ./...
