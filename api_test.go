package freephish_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	freephish "freephish"
	"freephish/internal/fwb"
	"freephish/internal/webgen"
)

func TestDetectorLifecycle(t *testing.T) {
	d := freephish.NewDetector(7)
	if err := d.TrainSynthetic(150); err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	g := webgen.NewGenerator(99, nil, nil)
	svc, _ := fwb.ByKey("weebly")

	phish := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, epoch)
	isPhish, err := d.Classify(freephish.Page{URL: phish.URL, HTML: phish.HTML})
	if err != nil {
		t.Fatal(err)
	}
	if !isPhish {
		t.Error("phishing page classified benign")
	}

	benign := g.BenignFWBSite(svc, epoch)
	isPhish, err = d.Classify(freephish.Page{URL: benign.URL, HTML: benign.HTML})
	if err != nil {
		t.Fatal(err)
	}
	if isPhish {
		t.Error("benign page classified phishing")
	}

	score, err := d.Score(freephish.Page{URL: phish.URL, HTML: phish.HTML})
	if err != nil || score < 0 || score > 1 {
		t.Fatalf("score = %v, err = %v", score, err)
	}
}

func TestDetectorTrainExplicitSamples(t *testing.T) {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	g := webgen.NewGenerator(5, nil, nil)
	var samples []freephish.Sample
	for i := 0; i < 120; i++ {
		p := g.PhishingFWBSite(g.PickService(), epoch)
		samples = append(samples, freephish.Sample{
			Page: freephish.Page{URL: p.URL, HTML: p.HTML}, Label: freephish.Phishing,
		})
		b := g.BenignFWBSite(g.PickServiceUniform(), epoch)
		samples = append(samples, freephish.Sample{
			Page: freephish.Page{URL: b.URL, HTML: b.HTML}, Label: freephish.Benign,
		})
	}
	d := freephish.NewDetector(5)
	if err := d.Train(samples); err != nil {
		t.Fatal(err)
	}
}

func TestIsFWBHosted(t *testing.T) {
	if svc, ok := freephish.IsFWBHosted("https://free-gift.weebly.com/login"); !ok || svc != "Weebly" {
		t.Fatalf("IsFWBHosted = %q, %v", svc, ok)
	}
	if svc, ok := freephish.IsFWBHosted("https://sites.google.com/view/abc"); !ok || svc != "Google Sites" {
		t.Fatalf("path-based IsFWBHosted = %q, %v", svc, ok)
	}
	if _, ok := freephish.IsFWBHosted("https://example.com/x"); ok {
		t.Fatal("non-FWB URL identified as FWB")
	}
	if _, ok := freephish.IsFWBHosted("http://bad url"); ok {
		t.Fatal("unparseable URL identified as FWB")
	}
}

func TestFWBServicesList(t *testing.T) {
	svcs := freephish.FWBServices()
	if len(svcs) != 17 {
		t.Fatalf("services = %d, want 17", len(svcs))
	}
}

func TestRunStudyAPI(t *testing.T) {
	res, err := freephish.RunStudy(freephish.StudyConfig{Seed: 11, Scale: 0.005, TrainPerClass: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.URLCount() < 100 {
		t.Fatalf("URLCount = %d", res.URLCount())
	}
	rows := res.Coverage()
	if len(rows) != 12 {
		t.Fatalf("coverage rows = %d, want 12 (6 entities x 2 cohorts)", len(rows))
	}
	byKey := map[string]freephish.CoverageRow{}
	for _, r := range rows {
		byKey[r.Entity+"/"+r.Cohort] = r
	}
	if byKey["GSB/fwb"].Coverage >= byKey["GSB/self-hosted"].Coverage {
		t.Error("API coverage rows lost the FWB gap")
	}
	out := res.RenderAll()
	for _, want := range []string{"Table 3", "Figure 7", "Section 5.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
}

func TestBlockerAPI(t *testing.T) {
	b := freephish.NewBlocker(nil, nil)
	b.Block("https://evil.weebly.com/")
	if block, _ := b.Check("https://evil.weebly.com/"); !block {
		t.Fatal("blocklisted URL not blocked")
	}
	if block, _ := b.Check("https://fine.weebly.com/"); block {
		t.Fatal("clean URL blocked without a live detector")
	}
}

func TestBlockerWithLiveDetector(t *testing.T) {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	g := webgen.NewGenerator(13, nil, nil)
	svc, _ := fwb.ByKey("weebly")
	phish := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, epoch)

	d := freephish.NewDetector(13)
	if err := d.TrainSynthetic(120); err != nil {
		t.Fatal(err)
	}
	fetch := func(url string) (freephish.Page, int, error) {
		if url == phish.URL {
			return freephish.Page{URL: url, HTML: phish.HTML}, 200, nil
		}
		return freephish.Page{}, 404, nil
	}
	b := freephish.NewBlocker(d, fetch)
	if block, reason := b.Check(phish.URL); !block {
		t.Fatalf("live detector did not block phishing page (%s)", reason)
	}
}

func TestDetectorSaveLoadAPI(t *testing.T) {
	d := freephish.NewDetector(21)
	if err := d.TrainSynthetic(80); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := freephish.LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	g := webgen.NewGenerator(22, nil, nil)
	svc, _ := fwb.ByKey("weebly")
	site := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, epoch)
	page := freephish.Page{URL: site.URL, HTML: site.HTML}
	a, err1 := d.Score(page)
	b, err2 := restored.Score(page)
	if err1 != nil || err2 != nil || a != b {
		t.Fatalf("API round trip diverged: %v/%v", a, b)
	}
}

// TestLoadDetectorRestoresSeed checks that Save/Load preserves the seed,
// so a restored detector's TrainSynthetic rebuilds the same synthetic
// corpus (and therefore the same model) as retraining the original.
func TestLoadDetectorRestoresSeed(t *testing.T) {
	d := freephish.NewDetector(37)
	if err := d.TrainSynthetic(60); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := freephish.LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Retrain both from scratch on the synthetic corpus: with the seed
	// restored they must land on identical models.
	if err := d.TrainSynthetic(60); err != nil {
		t.Fatal(err)
	}
	if err := restored.TrainSynthetic(60); err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	g := webgen.NewGenerator(38, nil, nil)
	svc, _ := fwb.ByKey("wix")
	site := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, epoch)
	page := freephish.Page{URL: site.URL, HTML: site.HTML}
	a, err1 := d.Score(page)
	b, err2 := restored.Score(page)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a != b {
		t.Fatalf("restored detector diverged after TrainSynthetic: %v vs %v (seed dropped)", a, b)
	}
}

// TestStudyObservabilitySurface exercises the public Progress hook,
// WriteMetrics, and StageTimings.
func TestStudyObservabilitySurface(t *testing.T) {
	var events int
	res, err := freephish.RunStudy(freephish.StudyConfig{
		Seed: 3, Scale: 0.003, TrainPerClass: 60,
		Progress: func(p freephish.Progress) {
			events++
			if p.SimTime.IsZero() || p.Frac < 0 || p.Frac > 1 {
				t.Errorf("bad progress event: %+v", p)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("Progress hook never fired")
	}
	var buf bytes.Buffer
	if err := res.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE freephish_urls_streamed_total counter",
		"freephish_reports_total{",
		"freephish_fetch_seconds_bucket{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteMetrics missing %q", want)
		}
	}
	timings := res.StageTimings()
	seen := map[string]bool{}
	for _, st := range timings {
		seen[st.Stage] = true
	}
	for _, want := range []string{"poll", "fetch", "classify", "report"} {
		if !seen[want] {
			t.Errorf("StageTimings missing stage %q (got %v)", want, seen)
		}
	}
}

// TestStudyJournalAPI covers the public journal surface: StudyConfig.Journal
// turns tracing on, WriteJournal emits the canonical JSONL, and running
// without the knob yields a clear error.
func TestStudyJournalAPI(t *testing.T) {
	res, err := freephish.RunStudy(freephish.StudyConfig{
		Seed: 11, Scale: 0.003, TrainPerClass: 60, Journal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJournal(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if out == "" {
		t.Fatal("WriteJournal produced no events")
	}
	for _, want := range []string{`"type":"posted"`, `"type":"classified"`, `"sim":`} {
		if !strings.Contains(out, want) {
			t.Errorf("journal missing %s", want)
		}
	}
	if strings.Contains(out, `"wall"`) {
		t.Error("canonical journal must not contain wall-clock timestamps")
	}

	// Without the knob the method fails loudly instead of writing nothing.
	res2, err := freephish.RunStudy(freephish.StudyConfig{Seed: 11, Scale: 0.003, TrainPerClass: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.WriteJournal(&buf); err == nil || !strings.Contains(err.Error(), "Journal") {
		t.Fatalf("WriteJournal without StudyConfig.Journal = %v, want a descriptive error", err)
	}
}
