package freephish_test

// Godoc examples for the public API. These compile and run under go test,
// so the documented usage can never rot.

import (
	"fmt"

	freephish "freephish"
)

// ExampleIsFWBHosted shows the streaming module's first question about any
// URL: is it hosted on one of the 17 free website building services?
func ExampleIsFWBHosted() {
	for _, url := range []string{
		"https://free-gift-card.weebly.com/login",
		"https://sites.google.com/view/account-verify",
		"https://www.example.com/shop",
	} {
		if svc, ok := freephish.IsFWBHosted(url); ok {
			fmt.Printf("%s -> %s\n", url, svc)
		} else {
			fmt.Printf("%s -> not FWB-hosted\n", url)
		}
	}
	// Output:
	// https://free-gift-card.weebly.com/login -> Weebly
	// https://sites.google.com/view/account-verify -> Google Sites
	// https://www.example.com/shop -> not FWB-hosted
}

// ExampleDetector trains the augmented stacking classifier on a synthetic
// ground-truth corpus and scores a page.
func ExampleDetector() {
	d := freephish.NewDetector(1)
	if err := d.TrainSynthetic(60); err != nil {
		fmt.Println("train:", err)
		return
	}
	phishing := freephish.Page{
		URL: "https://paypal-account-verify.weebly.com/login",
		HTML: `<html><head><title>PayPal - Sign In</title>
<meta name="robots" content="noindex"></head><body>
<div id="weebly-banner" class="weebly-footer" style="visibility:hidden">Powered by Weebly</div>
<form action="https://collect.evil-site.xyz/gate" method="post">
<input type="email" name="email"><input type="password" name="password">
<button>Sign In</button></form></body></html>`,
	}
	isPhish, err := d.Classify(phishing)
	if err != nil {
		fmt.Println("classify:", err)
		return
	}
	fmt.Println("phishing:", isPhish)
	// Output:
	// phishing: true
}

// ExampleBlocker shows the web-extension-equivalent checker in blocklist
// mode.
func ExampleBlocker() {
	b := freephish.NewBlocker(nil, nil)
	b.Block("https://evil-login.weebly.com/")
	block, reason := b.Check("https://evil-login.weebly.com/")
	fmt.Println(block, "-", reason)
	block, _ = b.Check("https://rose-bakery.weebly.com/")
	fmt.Println(block)
	// Output:
	// true - URL is on the FreePhish blocklist
	// false
}

// ExampleFWBServices lists the studied services.
func ExampleFWBServices() {
	svcs := freephish.FWBServices()
	fmt.Println(len(svcs), "services, first three:", svcs[0], "/", svcs[1], "/", svcs[2])
	// Output:
	// 17 services, first three: Weebly / 000webhost / Blogspot
}
