// Command freephish runs the full FreePhish reproduction study and prints
// every table and figure from the paper's evaluation:
//
//	freephish [-scale 0.05] [-seed 1] [-workers N] [-backend inproc|http] [-table2 600] [-skip-table2]
//	          [-checkpoint study.ckpt [-checkpoint-every N]] [-resume study.ckpt]
//	          [-shards N [-shard-workers host:port,...]]
//
// At -scale 1.0 it streams the paper's full populations (31,405 FWB +
// 31,405 self-hosted URLs over six virtual months); the default scale keeps
// a laptop run under a minute while preserving every distributional shape.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"freephish/internal/baselines"
	"freephish/internal/core"
	"freephish/internal/faults"
	"freephish/internal/features"
	"freephish/internal/obs"
	"freephish/internal/simclock"
	"freephish/internal/state"
	"freephish/internal/webgen"
)

func main() {
	var (
		scale      = flag.Float64("scale", 0.05, "population scale in (0,1]; 1.0 = the paper's 62,810 URLs")
		seed       = flag.Int64("seed", 1, "run seed (all results are reproducible per seed)")
		table2N    = flag.Int("table2", 800, "ground-truth pairs for the Table 2 model bake-off")
		skipTable2 = flag.Bool("skip-table2", false, "skip the Table 2 model comparison (the slowest step)")
		table1N    = flag.Int("table1", 15, "site pairs per FWB for Table 1")
		workers    = flag.Int("workers", 0, "pipeline/training worker pool size; 0 = one per CPU (results identical at every setting)")
		queueDepth = flag.Int("queue-depth", 0, "streaming pipeline per-stage queue and reorder-window bound; 0 = engine default (results identical at every setting)")
		backend    = flag.String("backend", core.BackendInproc, "world backend: inproc (in-process dispatch) or http (real loopback servers); results identical either way")
		shards     = flag.Int("shards", 1, "split the study across N deterministic sub-stream shards, each with its own pipeline and world; records, journal, and stats are byte-identical at every N")
		shardWk    = flag.String("shard-workers", "", "with -shards, comma-separated freephish-worker endpoints (host:port,...) to dispatch shards to; a dead worker fails over — to a peer or a local child — by adopting the shard's last streamed checkpoint, byte-identically")
		faultSpec  = flag.String("faults", "", "chaos profile injected into the world boundary: off, default, or k=v spec (latency=0.1,5xx=0.2,reset=0.05,truncate=0.02,malform=0.02,burst=2,blackout=web:24h:6h); the retry layer absorbs the default profile with byte-identical results")
		cascade    = flag.String("cascade", "", "tiered classification cascade: off, on (calibrated thresholds), or benignBelow,phishAbove — a fetch-free URL-lexical triage stage short-circuits confident URLs ahead of fetch; 0,1 reproduces the cascade-off study exactly")
		ckptPath   = flag.String("checkpoint", "", "write a resumable checkpoint to this file (atomically, temp+rename) at ordered-apply boundaries during the study")
		ckptEvery  = flag.Int("checkpoint-every", 144, "with -checkpoint, minimum poll intervals of virtual time between checkpoints (the default is one virtual day at the default 10-minute poll interval)")
		resumePath = flag.String("resume", "", "resume the study from this checkpoint file (must match the run's seed/scale/window/faults configuration; resumes byte-identically)")
		outPath    = flag.String("out", "", "write the study's records as JSONL to this file")
		journal    = flag.String("journal", "", "write the per-URL lifecycle journal as JSONL to this file (enables tracing)")
		opsAddr    = flag.String("ops", "", "serve /metrics, /healthz, /version, /debug/vars and /debug/pprof on this address while the study runs")
		dash       = flag.Bool("dash", false, "with -ops, serve the live dashboard on /dash (enables lifecycle tracing)")
		linger     = flag.Bool("linger", false, "with -ops, keep serving the ops endpoints after the study completes")
	)
	flag.Parse()

	// The study's framework is assembled up front — before the ops listener
	// — so the dashboard can watch the same journal the run writes to.
	// Training and execution still happen later, in their printed order.
	reg := obs.NewRegistry()
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.Workers = *workers
	cfg.QueueDepth = *queueDepth
	cfg.Backend = *backend
	cfg.Shards = *shards
	if *shardWk != "" {
		for _, ep := range strings.Split(*shardWk, ",") {
			if ep = strings.TrimSpace(ep); ep != "" {
				cfg.ShardWorkers = append(cfg.ShardWorkers, ep)
			}
		}
	}
	cfg.Registry = reg
	cfg.Journal = *journal != "" || *dash
	prof, err := faults.ParseProfile(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Faults = prof
	casc, err := core.ParseCascade(*cascade)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Cascade = casc
	cfg.CheckpointPath = *ckptPath
	cfg.CheckpointEvery = *ckptEvery
	if *resumePath != "" {
		chk, err := state.ReadCheckpoint(*resumePath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Resume = chk
	}
	fp := core.New(cfg)

	// The ops listener scrapes the same registry the study writes to, so
	// `curl <ops>/metrics` mid-run shows the pipeline advancing live.
	info := obs.RegisterBuildInfo(reg, *seed)
	var studyDone atomic.Bool
	if *opsAddr != "" {
		opts := obs.OpsOptions{
			Healthz: func() error {
				if !*linger && studyDone.Load() {
					return fmt.Errorf("study complete")
				}
				return nil
			},
			Info: info,
		}
		if *dash {
			opts.Dash = &obs.Dash{
				Reg: reg, Journal: fp.Metrics.Journal,
				Title: "freephish study", Info: info,
			}
		}
		mux := obs.NewOps(reg, opts)
		go func() {
			srv := &http.Server{Addr: *opsAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			log.Fatalf("ops listener: %v", srv.ListenAndServe())
		}()
		fmt.Printf("ops endpoints on http://%s (/metrics, /healthz, /version, /debug/vars, /debug/pprof", *opsAddr)
		if *dash {
			fmt.Print(", /dash")
		}
		fmt.Print(")\n\n")
	}

	fmt.Println("FreePhish reproduction study")
	fmt.Printf("seed=%d scale=%.3f\n\n", *seed, *scale)

	if *resumePath != "" {
		// The preamble studies (Figures 1/D1, the coder study, Tables 1-2)
		// are pure functions of the seed: the interrupted run already
		// printed them, so a resume goes straight to the measurement study.
		fmt.Printf("resuming from %s (checkpoint at %s, %d poll cycles done); skipping the seed-deterministic preamble studies\n\n",
			*resumePath, cfg.Resume.SimNow.Format(time.RFC3339), cfg.Resume.Cycles)
	} else {
		// Section 2 / Figure 1: the 2020-2022 historical pervasiveness study.
		fmt.Println(core.RenderFigure1(core.HistoricalStudy(*seed)))

		// Section 2: the D1 construction pipeline (VirusTotal labeling).
		fmt.Println(core.RenderD1(core.BuildD1(*seed, *scale)))

		// Section 3: the two-coder qualitative evaluation.
		fmt.Println(core.RenderCoderStudy(core.RunCoderStudy(*seed, 5000)))

		// Section 3 / Table 1: code similarity.
		start := time.Now()
		fmt.Println(core.RenderTable1(*seed, *table1N))
		fmt.Printf("(table 1 computed in %v)\n\n", time.Since(start).Round(time.Millisecond))

		// Section 4.2 / Table 2: model comparison.
		if !*skipTable2 {
			fmt.Println(renderTable2(*seed, *table2N))
		}
	}

	// Sections 5.1-5.5: the six-month measurement study.
	if prof != nil {
		fmt.Printf("fault injection enabled: %s\n\n", *faultSpec)
	}
	fmt.Println("training classifiers on the ground-truth corpus...")
	if err := fp.Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("running the six-month measurement study...")
	start := time.Now()
	study, err := fp.Run()
	if err != nil {
		log.Fatal(err)
	}
	studyDone.Store(true)
	fmt.Printf("study complete in %v: %d URLs under observation\n\n",
		time.Since(start).Round(time.Millisecond), len(study.Records))
	if err := fp.Verify(); err != nil {
		log.Fatalf("study failed verification: %v", err)
	}

	if *outPath != "" {
		fh, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := study.WriteJSONL(fh); err != nil {
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d records to %s\n\n", len(study.Records), *outPath)
	}

	if *journal != "" {
		fh, err := os.Create(*journal)
		if err != nil {
			log.Fatal(err)
		}
		if err := fp.Metrics.Journal.WriteJSONL(fh); err != nil {
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d lifecycle events to %s\n\n", fp.Metrics.Journal.Len(), *journal)
	}

	fmt.Println("classifier feature importance (top 8):")
	for i, rf := range fp.Model.Importance() {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-22s %.3f\n", rf.Name, rf.Importance)
	}
	fmt.Println()

	fmt.Println(core.RenderStats(fp.Stats()))
	fmt.Println(core.RenderSummary(study))
	fmt.Println(core.RenderTimeline(study))
	fmt.Println(core.RenderSection3(study))
	fmt.Println(core.RenderTable3(study))
	fmt.Println(core.RenderTable3CI(study, *seed))
	fmt.Println(core.RenderFigure6(study))
	fmt.Println(core.RenderFigure7(study))
	fmt.Println(core.RenderFigure8(study))
	fmt.Println(core.RenderTable4(study))
	fmt.Println(core.RenderFigure9(study))
	fmt.Println(core.RenderFigure5(study, 15))
	fmt.Println(core.RenderCategories(study))
	fmt.Println(core.RenderSection55(study))
	fmt.Println(core.RenderUptime(study))
	fmt.Println(core.RenderExposure(study, *seed))
	fmt.Println(core.RenderKitFamilies(study))

	if *opsAddr != "" && *linger {
		fmt.Printf("-linger: ops endpoints stay up on http://%s (ctrl-c to exit)\n", *opsAddr)
		select {}
	}
}

// renderTable2 runs the five-model bake-off on a fresh ground-truth corpus.
func renderTable2(seed int64, n int) string {
	g := webgen.NewGenerator(seed, nil, nil)
	at := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	var all []baselines.LabeledPage
	for i := 0; i < n/2; i++ {
		p := g.PhishingFWBSite(g.PickService(), at)
		all = append(all, baselines.LabeledPage{Page: features.Page{URL: p.URL, HTML: p.HTML}, Label: 1})
		b := g.BenignFWBSite(g.PickServiceUniform(), at)
		all = append(all, baselines.LabeledPage{Page: features.Page{URL: b.URL, HTML: b.HTML}})
	}
	rng := simclock.NewRNG(seed, "cmd.table2")
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	cut := int(float64(len(all)) * 0.7)
	train, test := all[:cut], all[cut:]

	detectors := []baselines.Detector{
		baselines.NewVisualPhishNet(),
		baselines.NewPhishIntention(seed),
		baselines.NewURLNet(seed),
		baselines.NewBaseStackModel(seed),
		baselines.NewFreePhishModel(seed),
	}
	var results []baselines.Result
	for _, d := range detectors {
		if err := d.Train(train); err != nil {
			fmt.Fprintf(os.Stderr, "table2: train %s: %v\n", d.Name(), err)
			continue
		}
		r, err := baselines.Evaluate(d, test)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table2: eval %s: %v\n", d.Name(), err)
			continue
		}
		results = append(results, r)
	}
	return core.RenderTable2(results)
}
