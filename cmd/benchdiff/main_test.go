package main

import "testing"

// TestRegressionDirection pins benchdiff's gating logic: latency rows
// regress when the metric rises, higher-is-better quality rows (F1,
// fetches avoided, shard speedup) regress when it falls, and movement in
// the good direction never trips the gate no matter how large.
func TestRegressionDirection(t *testing.T) {
	lat := func(ns float64) row { return row{Name: "Pipeline", NsPerOp: ns} }
	qual := func(v float64) row {
		return row{Name: "Quality/f1", Value: v, HigherIsBetter: true}
	}
	cases := []struct {
		name      string
		old, new  row
		threshold float64
		want      bool
	}{
		{"latency regression", lat(100), lat(120), 0.10, true},
		{"latency within threshold", lat(100), lat(105), 0.10, false},
		{"latency improvement never gates", lat(100), lat(10), 0.10, false},
		{"quality regression", qual(0.90), qual(0.70), 0.10, true},
		{"quality within threshold", qual(0.90), qual(0.86), 0.10, false},
		{"quality improvement never gates", qual(0.50), qual(0.99), 0.10, false},
		{"threshold zero disables gating", lat(100), lat(500), 0, false},
		{"zero old metric cannot regress", lat(0), lat(500), 0.10, false},
	}
	for _, c := range cases {
		if got := regressed(c.old, c.new, c.threshold); got != c.want {
			t.Errorf("%s: regressed(old=%.2f, new=%.2f, thr=%.2f) = %v, want %v",
				c.name, c.old.metric(), c.new.metric(), c.threshold, got, c.want)
		}
	}
}

// TestRegressionDirectionFlip covers a row whose kind changes between
// baselines — a latency row renamed into a quality row or vice versa.
// The NEW row's HigherIsBetter flag decides the direction, so the gate
// judges the row by what it now measures.
func TestRegressionDirectionFlip(t *testing.T) {
	// Old row was latency (lower better); new row is quality (higher
	// better). The metric fell 50%: under the old kind that would be an
	// improvement, under the new kind it is a regression — and the new
	// kind must win.
	oldLat := row{Name: "X", NsPerOp: 100}
	newQual := row{Name: "X", Value: 50, HigherIsBetter: true}
	if !regressed(oldLat, newQual, 0.10) {
		t.Error("metric fell on a now-higher-is-better row: want regression")
	}
	// The reverse flip: metric rose on a now-lower-is-better row.
	oldQual := row{Name: "Y", Value: 100, HigherIsBetter: true}
	newLat := row{Name: "Y", NsPerOp: 150}
	if !regressed(oldQual, newLat, 0.10) {
		t.Error("metric rose on a now-lower-is-better row: want regression")
	}
	// And a flip where the movement is good under the new kind.
	if regressed(row{Name: "Z", NsPerOp: 100}, row{Name: "Z", Value: 200, HigherIsBetter: true}, 0.10) {
		t.Error("metric rose on a now-higher-is-better row: want no regression")
	}
}

// TestMetricPrefersQualityValue pins the join metric: a row carrying a
// quality value compares on it even when latency fields are also set.
func TestMetricPrefersQualityValue(t *testing.T) {
	r := row{NsPerOp: 1000, Value: 0.95}
	if got := r.metric(); got != 0.95 {
		t.Errorf("metric() = %v, want the quality value 0.95", got)
	}
	if got := (row{NsPerOp: 1000}).metric(); got != 1000 {
		t.Errorf("metric() = %v, want ns/op 1000", got)
	}
}
