// Command benchdiff compares two machine-readable benchmark baselines
// (the JSON written by TestWriteBenchBaseline / TestWriteParallelBenchBaseline):
//
//	benchdiff OLD.json NEW.json
//
// Rows are joined by benchmark name; for each common row it prints the
// old and new metric with the relative delta, and it lists rows present in
// only one file. The metric is ns/op for latency rows and the "value"
// field for quality rows (BENCH_cascade.json carries fetches-avoided and
// F1 rows with higher_is_better set). With -threshold set, the exit
// status is 1 when any common row regressed by more than the given
// fraction (e.g. 0.10 = 10%), which is what lets CI gate on drift in
// either direction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type row struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Quality rows (e.g. BENCH_cascade.json's fetches_avoided_pct or F1
	// scores) carry an arbitrary value instead of a latency; for those,
	// HigherIsBetter flips the regression direction.
	Value          float64 `json:"value,omitempty"`
	Unit           string  `json:"unit,omitempty"`
	HigherIsBetter bool    `json:"higher_is_better,omitempty"`
}

// metric is the number a row is compared on: the quality value when one is
// set, ns/op otherwise.
func (r row) metric() float64 {
	if r.Value != 0 {
		return r.Value
	}
	return r.NsPerOp
}

// delta is the relative change from o to n on the compared metric
// (0 when the old metric is zero — no baseline to compare against).
func delta(o, n row) float64 {
	if o.metric() == 0 {
		return 0
	}
	return (n.metric() - o.metric()) / o.metric()
}

// regressed reports whether n regressed past the threshold relative to
// o. Direction depends on the row kind: latency rows regress upward (a
// positive delta is slower), higher-is-better quality rows (F1, fetches
// avoided, shard speedup) regress downward. The NEW row's flag decides —
// a row whose kind flips between baselines is judged by what it now
// measures. threshold <= 0 disables gating.
func regressed(o, n row, threshold float64) bool {
	if threshold <= 0 {
		return false
	}
	d := delta(o, n)
	if n.HigherIsBetter {
		return d < -threshold
	}
	return d > threshold
}

func load(path string) (map[string]row, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rows []row
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]row, len(rows))
	names := make([]string, 0, len(rows))
	for _, r := range rows {
		if _, dup := m[r.Name]; !dup {
			names = append(names, r.Name)
		}
		m[r.Name] = r
	}
	return m, names, nil
}

func main() {
	threshold := flag.Float64("threshold", 0, "fail (exit 1) if any row regresses by more than this fraction; 0 disables")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRows, _, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newRows, newNames, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("%-32s %14s %14s %9s %9s\n", "benchmark", "old", "new", "delta", "allocs Δ")
	anyRegressed := false
	for _, name := range newNames {
		n := newRows[name]
		o, ok := oldRows[name]
		if !ok {
			fmt.Printf("%-32s %14s %14.1f %9s %9s\n", name, "-", n.metric(), "new", "-")
			continue
		}
		fmt.Printf("%-32s %14.1f %14.1f %+8.1f%% %+9d\n",
			name, o.metric(), n.metric(), delta(o, n)*100, n.AllocsPerOp-o.AllocsPerOp)
		if regressed(o, n, *threshold) {
			anyRegressed = true
		}
	}
	var removed []string
	for name := range oldRows {
		if _, ok := newRows[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Printf("%-32s %14.1f %14s %9s %9s\n", name, oldRows[name].metric(), "-", "removed", "-")
	}
	if anyRegressed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression above %.0f%% threshold\n", *threshold*100)
		os.Exit(1)
	}
}
