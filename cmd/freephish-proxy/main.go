// Command freephish-proxy runs the FreePhish protective proxy — the Go
// counterpart of the paper's Chromium web extension (Figure 13):
//
//	freephish-proxy [-addr 127.0.0.1:8899] [-train 400] [-seed 1] [-upstream URL] [-backend http|inproc]
//
// The proxy trains the FreePhish classifier on a generated ground-truth
// corpus at startup and then blocks navigation to FWB pages it classifies
// as phishing. Point a browser (or curl -x) at it, with -upstream set to a
// running fwbhost instance so the simulated domains resolve:
//
//	fwbhost -addr 127.0.0.1:8800 &
//	freephish-proxy -addr 127.0.0.1:8899 -upstream http://127.0.0.1:8800
//	curl -x http://127.0.0.1:8899 'http://paypal-login-3.weebly.com/'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"freephish/internal/baselines"
	"freephish/internal/crawler"
	"freephish/internal/faults"
	"freephish/internal/features"
	"freephish/internal/fwb"
	"freephish/internal/obs"
	"freephish/internal/proxy"
	"freephish/internal/webgen"
	"freephish/internal/world"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8899", "proxy listen address")
		trainN     = flag.Int("train", 400, "ground-truth pairs to train the classifier on")
		seed       = flag.Int64("seed", 1, "seed")
		upstream   = flag.String("upstream", "", "base URL all fetches are routed to (an fwbhost instance); empty = the real network")
		modelPath  = flag.String("model", "", "load a trained model instead of training (see -save-model)")
		savePath   = flag.String("save-model", "", "after training, write the model here for future -model runs")
		opsAddr    = flag.String("ops", "", "serve /metrics, /healthz, /version, /debug/vars and /debug/pprof on this separate address")
		dashFlag   = flag.Bool("dash", false, "with -ops, serve the live dashboard on /dash (enables request tracing)")
		journalOut = flag.String("journal", "", "stream per-request trace events as JSONL to this file (enables request tracing)")
		workers    = flag.Int("workers", 0, "training worker pool size; 0 = one per CPU (the trained model is identical at every setting)")
		queueDepth = flag.Int("queue-depth", 0, "max concurrent live classifications (fetch + score); bursts beyond it queue; 0 = unbounded")
		cacheSize  = flag.Int("snapshot-cache", 0, "parsed-snapshot LRU capacity; 0 = default, negative disables")
		cacheTTL   = flag.Duration("cache-ttl", 0, "expire cached verdicts older than this at lookup time (cleaned-up or newly compromised pages get re-scored); 0 = never expire")
		cascadeStr = flag.String("cascade", "", "tiered cascade: off, on (calibrated thresholds), or benignBelow,phishAbove — confidently triaged URLs are answered from the URL string alone, before any fetch")
		backend    = flag.String("backend", "http", "how fetches reach the web: http (via -upstream or the real network) or inproc (serve a seeded simulated FWB web in this process; no fwbhost needed)")
		faultSpec  = flag.String("faults", "", "with -backend inproc, inject chaos into the simulated web: off, default, or a k=v spec (see freephish -faults); exercises the proxy's retry path")
	)
	flag.Parse()

	faultProf, err := faults.ParseProfile(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	benignBelow, phishAbove, cascadeOn, err := baselines.ParseCascadeThresholds(*cascadeStr)
	if err != nil {
		log.Fatal(err)
	}

	// The cascade's lexical scorer trains on the same ground-truth pairs as
	// the full model, so the pairs are generated even when -model skips the
	// full training run.
	var train []baselines.LabeledPage
	if *modelPath == "" || cascadeOn {
		g := webgen.NewGenerator(*seed, nil, nil)
		epoch := time.Now()
		for i := 0; i < *trainN; i++ {
			p := g.PhishingFWBSite(g.PickService(), epoch)
			train = append(train, baselines.LabeledPage{Page: features.Page{URL: p.URL, HTML: p.HTML}, Label: 1})
			b := g.BenignFWBSite(g.PickServiceUniform(), epoch)
			train = append(train, baselines.LabeledPage{Page: features.Page{URL: b.URL, HTML: b.HTML}})
		}
	}

	var model *baselines.StackDetector
	if *modelPath != "" {
		fh, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err = baselines.LoadStackDetector(fh)
		fh.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded trained model from %s", *modelPath)
	} else {
		log.Printf("training the FreePhish classifier on %d pairs...", *trainN)
		model = baselines.NewFreePhishModel(*seed)
		model.SetParallelism(*workers)
		if err := model.Train(train); err != nil {
			log.Fatal(err)
		}
		if *savePath != "" {
			fh, err := os.Create(*savePath)
			if err != nil {
				log.Fatal(err)
			}
			if err := model.Save(fh); err != nil {
				log.Fatal(err)
			}
			if err := fh.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("saved trained model to %s", *savePath)
		}
	}

	fetcher := crawler.NewFetcher(*upstream)
	var transport http.RoundTripper
	switch *backend {
	case "http":
		if faultProf != nil {
			log.Fatalf("-faults requires -backend inproc (chaos is injected into the simulated web)")
		}
		if *upstream != "" {
			transport = fetchTransport{crawler.NewFetcher(*upstream)}
		}
	case "inproc":
		// The fwbhost demo, minus the process: a seeded simulated web is
		// built here and every fetch dispatches to it in-process.
		host, nSites, nPhish := simWeb(*seed)
		rt := world.NewHandlerTransport()
		var webHandler http.Handler = host
		if faultProf != nil {
			inj := faults.NewInjector(*seed, *faultProf)
			webHandler = inj.Middleware("web", false, host)
			log.Printf("fault injection enabled on the simulated web: %s", *faultSpec)
		}
		rt.Handle("web.inproc", webHandler)
		client := &http.Client{Transport: rt, Timeout: 10 * time.Second}
		fetcher.Base = "http://web.inproc"
		fetcher.Client = client
		pass := crawler.NewFetcher("http://web.inproc")
		pass.Client = client
		transport = fetchTransport{pass}
		log.Printf("inproc backend: %d simulated FWB sites served in-process (%d phishing)", nSites, nPhish)
		for i, site := range host.Sites() {
			if i >= 5 {
				log.Printf("  ... and %d more", len(host.Sites())-i)
				break
			}
			log.Printf("  [%-12s] curl -x http://%s '%s'", site.Kind, *addr, site.URL)
		}
	default:
		log.Fatalf("unknown -backend %q (want http or inproc)", *backend)
	}
	var snapCache *crawler.SnapshotCache
	if *cacheSize >= 0 {
		// Users revisit pages; the LRU makes the second check of an
		// unchanged page skip the HTML re-parse (the fetch still happens,
		// so takedowns are observed live).
		snapCache = crawler.NewSnapshotCache(*cacheSize)
		fetcher.Cache = snapCache
	}
	checker := proxy.NewLiveChecker(model, fetcher.Snapshot)
	checker.SetMaxInFlight(*queueDepth)
	if *cacheTTL > 0 {
		checker.SetCacheTTL(*cacheTTL, nil)
		log.Printf("verdict cache TTL %v: stale verdicts are re-scored on next check", *cacheTTL)
	}
	if cascadeOn {
		log.Printf("training the lexical cascade scorer on %d pairs...", len(train))
		lex := baselines.NewLexicalScorer(*seed)
		if err := lex.Train(train); err != nil {
			log.Fatal(err)
		}
		checker.SetCascade(&baselines.Cascade{Scorer: lex, BenignBelow: benignBelow, PhishAbove: phishAbove})
		log.Printf("cascade enabled (benign<%g, phish>%g): confidently triaged URLs are answered without a fetch", benignBelow, phishAbove)
	}
	px := proxy.New(checker, transport)

	// Per-request decision and latency metrics; the ops listener is
	// separate from the proxy port so scrapes never route through the
	// proxy's own check path.
	reg := obs.NewRegistry()
	info := obs.RegisterBuildInfo(reg, *seed)
	decisions := reg.CounterVec("freephish_proxy_requests_total",
		"Proxied requests by decision (block or pass).", "decision")
	checkLat := reg.Histogram("freephish_proxy_request_seconds",
		"Wall-clock time to check and serve one proxied request.", obs.DefBuckets)
	// The journal gives each proxied request a trace event; a daemon has
	// no sim clock, so events are stamped with wall time.
	var journal *obs.Journal
	if *dashFlag || *journalOut != "" {
		journal = obs.NewJournal(nil, 0)
		if *journalOut != "" {
			fh, err := os.Create(*journalOut)
			if err != nil {
				log.Fatal(err)
			}
			journal.SetSink(fh)
			log.Printf("streaming trace events to %s", *journalOut)
		}
	}
	px.Observe = func(url string, blocked bool, wall time.Duration) {
		d := "pass"
		if blocked {
			d = "block"
		}
		decisions.With(d).Inc()
		checkLat.Observe(wall.Seconds())
		journal.Record(url, "checked", time.Now(),
			"decision", d, "wall_ms", fmt.Sprintf("%.2f", float64(wall)/float64(time.Millisecond)))
	}
	if snapCache != nil {
		reg.GaugeFunc("freephish_snapshot_cache_hits_total",
			"Live checks that reused a cached parse (unchanged body).", func() float64 {
				return float64(snapCache.Hits())
			})
		reg.GaugeFunc("freephish_snapshot_cache_misses_total",
			"Live checks that parsed a new or changed body.", func() float64 {
				return float64(snapCache.Misses())
			})
	}
	// The verdict cache is bounded (LRU); these counters make its churn
	// visible so an undersized cache shows up as an eviction rate.
	reg.GaugeFunc("freephish_proxy_cache_hits_total",
		"Checks answered from the bounded verdict cache.", func() float64 {
			hits, _, _, _ := checker.CacheStats()
			return float64(hits)
		})
	reg.GaugeFunc("freephish_proxy_cache_misses_total",
		"Checks that had to classify (lexically or live).", func() float64 {
			_, misses, _, _ := checker.CacheStats()
			return float64(misses)
		})
	reg.GaugeFunc("freephish_proxy_cache_evictions_total",
		"Verdicts dropped by the LRU bound.", func() float64 {
			_, _, evictions, _ := checker.CacheStats()
			return float64(evictions)
		})
	reg.GaugeFunc("freephish_proxy_cache_expired_total",
		"Cached verdicts dropped by TTL expiry.", func() float64 {
			return float64(checker.CacheExpired())
		})
	if *opsAddr != "" {
		opts := obs.OpsOptions{Info: info}
		if *dashFlag {
			opts.Dash = &obs.Dash{Reg: reg, Journal: journal, Title: "freephish-proxy", Info: info}
		}
		go func() {
			srv := &http.Server{
				Addr:              *opsAddr,
				Handler:           obs.NewOps(reg, opts),
				ReadHeaderTimeout: 5 * time.Second,
			}
			log.Fatalf("ops listener: %v", srv.ListenAndServe())
		}()
		log.Printf("ops endpoints on http://%s (/metrics, /healthz, /version, /debug/pprof)", *opsAddr)
	}

	// /proxy.pac routes only the 17 FWB hosting domains through the proxy;
	// all other traffic stays direct.
	var fwbDomains []string
	for _, svc := range fwb.All() {
		fwbDomains = append(fwbDomains, svc.Domain)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/proxy.pac", func(w http.ResponseWriter, r *http.Request) {
		proxy.ServePAC(w, *addr, fwbDomains)
	})
	handler := http.Handler(px)
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/proxy.pac" && !r.URL.IsAbs() {
			mux.ServeHTTP(w, r)
			return
		}
		handler.ServeHTTP(w, r)
	})

	fmt.Printf("freephish-proxy listening on %s (upstream=%s, PAC at /proxy.pac)\n", *addr, orDirect(*upstream))
	srv := &http.Server{Addr: *addr, Handler: wrapped, ReadHeaderTimeout: 5 * time.Second}
	log.Fatal(srv.ListenAndServe())
}

func orDirect(s string) string {
	if s == "" {
		return "direct"
	}
	return s
}

// fetchTransport routes passed-through requests via a Fetcher (pointed at
// the upstream fwbhost or the in-process simulated web) while preserving
// the virtual Host header.
type fetchTransport struct{ f *crawler.Fetcher }

func (t fetchTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	page, status, err := t.f.Snapshot(r.URL.String())
	if err != nil {
		return nil, err
	}
	rec := newBodyResponse(status, page.HTML, r)
	return rec, nil
}

// simWeb builds the seeded simulated FWB web the inproc backend serves —
// the same population cmd/fwbhost publishes.
func simWeb(seed int64) (*fwb.Host, int, int) {
	const sites = 40
	const phishFrac = 0.4
	host := fwb.NewHost(time.Now)
	g := webgen.NewGenerator(seed, nil, nil)
	epoch := time.Now()
	nPhish := int(sites * phishFrac)
	for i := 0; i < sites; i++ {
		var site *fwb.Site
		if i < nPhish {
			site = g.PhishingFWBSite(g.PickService(), epoch)
		} else {
			site = g.BenignFWBSite(g.PickServiceUniform(), epoch)
		}
		if err := host.Publish(site); err != nil {
			continue
		}
	}
	return host, sites, nPhish
}
