package main

import (
	"io"
	"net/http"
	"strings"
)

// newBodyResponse builds a minimal *http.Response around a string body.
func newBodyResponse(status int, body string, req *http.Request) *http.Response {
	return &http.Response{
		StatusCode:    status,
		Status:        http.StatusText(status),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/html; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
