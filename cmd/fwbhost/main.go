// Command fwbhost serves a simulated FWB ecosystem over HTTP for
// inspection and for driving the freephish-proxy demo:
//
//	fwbhost [-addr 127.0.0.1:8800] [-sites 40] [-phish 0.4] [-seed 1]
//
// Every simulated domain (shop.weebly.com, sites.google.com/view/..., and
// so on) is served from the one listener; request them with a Host header
// or through a proxy, e.g.:
//
//	curl -H 'Host: shop-1.weebly.com' http://127.0.0.1:8800/
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"freephish/internal/fwb"
	"freephish/internal/obs"
	socialpkg "freephish/internal/social"
	"freephish/internal/threat"
	"freephish/internal/urlx"
	"freephish/internal/webgen"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8800", "listen address")
		sites    = flag.Int("sites", 40, "number of sites to generate")
		phishFrc = flag.Float64("phish", 0.4, "fraction of sites that are phishing attacks")
		seed     = flag.Int64("seed", 1, "generation seed")
		social   = flag.Bool("social", false, "also publish every site in a post and serve the platform APIs under /twitter and /facebook")
		ops      = flag.Bool("ops", true, "serve /metrics, /healthz, /version and /debug/pprof on the same listener")
		dash     = flag.Bool("dash", false, "with -ops, serve the live dashboard on /dash (enables request tracing)")
		journal  = flag.String("journal", "", "stream publish/request trace events as JSONL to this file (enables request tracing)")
	)
	flag.Parse()

	now := time.Now
	host := fwb.NewHost(now)
	g := webgen.NewGenerator(*seed, nil, nil)
	epoch := time.Now()

	// The journal traces the simulated ecosystem: one lifecycle event per
	// published site, ring-only ops events per served request.
	var jr *obs.Journal
	if *dash || *journal != "" {
		jr = obs.NewJournal(nil, 0)
		if *journal != "" {
			fh, err := os.Create(*journal)
			if err != nil {
				log.Fatal(err)
			}
			jr.SetSink(fh)
			fmt.Printf("streaming trace events to %s\n", *journal)
		}
	}

	nPhish := int(float64(*sites) * *phishFrc)
	fmt.Printf("simulated FWB web on http://%s (%d sites, %d phishing)\n\n", *addr, *sites, nPhish)
	for i := 0; i < *sites; i++ {
		var site *fwb.Site
		if i < nPhish {
			site = g.PhishingFWBSite(g.PickService(), epoch)
		} else {
			site = g.BenignFWBSite(g.PickServiceUniform(), epoch)
		}
		if err := host.Publish(site); err != nil {
			continue
		}
		jr.Record(site.URL, "published", time.Now(),
			"kind", string(site.Kind), "service", site.Service.Key)
		p, err := urlx.Parse(site.URL)
		if err != nil {
			continue
		}
		fmt.Printf("  [%-12s] %-10s curl -H 'Host: %s' 'http://%s%s'\n",
			site.Kind, site.Service.Key, p.Host, *addr, pathOrRoot(p.Path))
	}
	handler := http.Handler(host)
	if *social {
		tw := socialpkg.NewNetwork(threat.Twitter, time.Now)
		fb := socialpkg.NewNetwork(threat.Facebook, time.Now)
		i := 0
		for _, site := range host.Sites() {
			nw := tw
			if i%3 == 0 {
				nw = fb
			}
			if site.Kind.IsMalicious() {
				nw.Publish(g.LureText(site.URL), epoch)
			} else {
				nw.Publish(g.BenignPostText(site.URL), epoch)
			}
			i++
		}
		mux := http.NewServeMux()
		mux.Handle("/twitter/", http.StripPrefix("/twitter", tw))
		mux.Handle("/facebook/", http.StripPrefix("/facebook", fb))
		mux.Handle("/", host)
		handler = mux
		fmt.Printf("\nplatform APIs: http://%s/twitter/posts and http://%s/facebook/posts\n", *addr, *addr)
	}
	if *ops {
		reg := obs.NewRegistry()
		info := obs.RegisterBuildInfo(reg, *seed)
		reg.Gauge("freephish_fwbhost_sites", "Sites currently published on the simulated web.").
			Set(float64(len(host.Sites())))
		reqs := reg.CounterVec("freephish_fwbhost_requests_total",
			"HTTP requests served, by response status code.", "code")
		lat := reg.Histogram("freephish_fwbhost_request_seconds",
			"Wall-clock time to serve one request.", obs.DefBuckets)
		opts := obs.OpsOptions{Info: info}
		if *dash {
			opts.Dash = &obs.Dash{Reg: reg, Journal: jr, Title: "fwbhost", Info: info}
		}
		opsMux := obs.NewOps(reg, opts)
		app := handler
		// Ops routes ride the application listener; requests carrying a
		// simulated Host header never collide with them because the split
		// is by path, before virtual-host dispatch.
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if obs.OpsPaths(r.URL.Path) {
				opsMux.ServeHTTP(w, r)
				return
			}
			start := time.Now()
			sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
			app.ServeHTTP(sw, r)
			reqs.With(strconv.Itoa(sw.code)).Inc()
			lat.Observe(time.Since(start).Seconds())
			jr.RecordOps("http://"+r.Host+r.URL.Path, "request",
				"code", strconv.Itoa(sw.code))
		})
		fmt.Printf("\nops endpoints: http://%s/metrics /healthz /version /debug/pprof/\n", *addr)
	}
	fmt.Println("\nserving... (ctrl-c to stop)")
	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	log.Fatal(srv.ListenAndServe())
}

// statusWriter records the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func pathOrRoot(p string) string {
	if p == "" {
		return "/"
	}
	return p
}
