// Command freephish-worker runs study shards on behalf of a remote
// freephish coordinator — the worker side of the shard-dispatch boundary
// (internal/shard, internal/shardrpc):
//
//	freephish-worker [-listen 127.0.0.1:7001] [-workers N]
//
// The coordinator POSTs a shard spec to /run; the worker rebuilds the
// shard's complete framework from it (retraining the models
// bit-identically from the spec's seed, cached across shards of the same
// study), runs it, streams periodic checkpoint envelopes back, and
// finishes the response with the shard's final state snapshot. A
// two-terminal session:
//
//	freephish-worker -listen 127.0.0.1:7001 &
//	freephish -shards 4 -shard-workers 127.0.0.1:7001
//
// The study's records, journal, and stats are byte-identical whether its
// shards run here or in the coordinator's own process — and if this
// worker dies mid-shard, the coordinator adopts the last streamed
// checkpoint into a replacement runner instead of replaying the shard
// from scratch.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"time"

	"freephish/internal/core"
	"freephish/internal/obs"
	"freephish/internal/shardrpc"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7001", "address to serve shard dispatches on")
		workers = flag.Int("workers", 0, "probe/training worker pool size on this machine; 0 = one per CPU (shard output is byte-identical at every setting)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	runner := core.NewSpecRunner()
	runner.Workers = *workers
	runner.Logger = logger

	reg := obs.NewRegistry()
	info := obs.RegisterBuildInfo(reg, 0)
	mux := obs.NewOps(reg, obs.OpsOptions{Info: info})
	mux.Handle("/run", &shardrpc.Server{Runner: runner, Logger: logger})

	srv := &http.Server{
		Addr: *listen, Handler: mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("freephish-worker serving shard dispatches on http://%s/run (/metrics, /healthz, /version alongside)\n", *listen)
	log.Fatal(srv.ListenAndServe())
}
