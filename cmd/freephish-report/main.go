// Command freephish-report loads a persisted study (the JSONL written by
// `freephish -out study.jsonl`) and re-renders the evaluation tables and
// figures from it — the offline-analysis path for a shared dataset (§8:
// "our initial dataset will be available upon request").
//
//	freephish -scale 0.05 -out study.jsonl
//	freephish-report study.jsonl
package main

import (
	"fmt"
	"log"
	"os"

	"freephish/internal/analysis"
	"freephish/internal/core"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: freephish-report <study.jsonl>")
		os.Exit(2)
	}
	fh, err := os.Open(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	defer fh.Close()
	study, err := analysis.ReadJSONL(fh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records (%d FWB, %d self-hosted)\n\n",
		len(study.Records),
		len(study.Select(analysis.FWBCohort)),
		len(study.Select(analysis.SelfHostedCohort)))

	fmt.Println(core.RenderSection3(study))
	fmt.Println(core.RenderTable3(study))
	fmt.Println(core.RenderFigure6(study))
	fmt.Println(core.RenderFigure7(study))
	fmt.Println(core.RenderFigure8(study))
	fmt.Println(core.RenderTable4(study))
	fmt.Println(core.RenderFigure9(study))
	fmt.Println(core.RenderFigure5(study, 15))
	fmt.Println(core.RenderSection55(study))
	fmt.Println(core.RenderUptime(study))
	fmt.Println(core.RenderKitFamilies(study))
}
