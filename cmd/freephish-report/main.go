// Command freephish-report loads a persisted study (the JSONL written by
// `freephish -out study.jsonl`) and re-renders the evaluation tables and
// figures from it — the offline-analysis path for a shared dataset (§8:
// "our initial dataset will be available upon request").
//
//	freephish -scale 0.05 -out study.jsonl
//	freephish-report study.jsonl
//
// With -timeline it instead reads a lifecycle journal (the JSONL written
// by `freephish -journal trace.jsonl`) and prints one URL's full
// lifecycle — posted, polled, fetched, classified, reported, takedown,
// monitor observations — in order:
//
//	freephish -scale 0.05 -journal trace.jsonl
//	freephish-report -timeline 'http://…' trace.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"freephish/internal/analysis"
	"freephish/internal/core"
	"freephish/internal/obs"
)

func main() {
	timeline := flag.String("timeline", "", "print this URL's lifecycle from a journal file instead of rendering a study")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: freephish-report <study.jsonl>")
		fmt.Fprintln(os.Stderr, "       freephish-report -timeline <url> <journal.jsonl>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	fh, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer fh.Close()

	if *timeline != "" {
		events, err := obs.ReadJournal(fh)
		if err != nil {
			log.Fatal(err)
		}
		printTimeline(*timeline, events)
		return
	}

	study, err := analysis.ReadJSONL(fh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records (%d FWB, %d self-hosted)\n\n",
		len(study.Records),
		len(study.Select(analysis.FWBCohort)),
		len(study.Select(analysis.SelfHostedCohort)))

	fmt.Println(core.RenderSection3(study))
	fmt.Println(core.RenderTable3(study))
	fmt.Println(core.RenderFigure6(study))
	fmt.Println(core.RenderFigure7(study))
	fmt.Println(core.RenderFigure8(study))
	fmt.Println(core.RenderTable4(study))
	fmt.Println(core.RenderFigure9(study))
	fmt.Println(core.RenderFigure5(study, 15))
	fmt.Println(core.RenderSection55(study))
	fmt.Println(core.RenderUptime(study))
	fmt.Println(core.RenderKitFamilies(study))
}

// printTimeline renders one URL's lifecycle, ordered by the virtual time
// each event describes (seq breaks ties), with attrs inline.
func printTimeline(url string, events []obs.Event) {
	var mine []obs.Event
	for _, ev := range events {
		if ev.URL == url {
			mine = append(mine, ev)
		}
	}
	if len(mine) == 0 {
		fmt.Fprintf(os.Stderr, "freephish-report: no events for %s in the journal\n", url)
		os.Exit(1)
	}
	sort.SliceStable(mine, func(i, j int) bool {
		if !mine[i].Sim.Equal(mine[j].Sim) {
			return mine[i].Sim.Before(mine[j].Sim)
		}
		return mine[i].Seq < mine[j].Seq
	})
	fmt.Printf("lifecycle of %s (%d events)\n\n", url, len(mine))
	for _, ev := range mine {
		var attrs []string
		keys := make([]string, 0, len(ev.Attrs))
		for k := range ev.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			attrs = append(attrs, k+"="+ev.Attrs[k])
		}
		fmt.Printf("  %s  %-12s %s\n",
			ev.Sim.Format("2006-01-02 15:04:05"), ev.Type, strings.Join(attrs, " "))
	}
}
