package freephish_test

// Parallelism benchmarks: the same pipeline and trainer workloads at
// several worker-pool sizes, so the speedup (or, on a single-core CI
// machine, the overhead) of the internal/par fan-out is a measured number
// rather than a claim. TestWriteParallelBenchBaseline snapshots them as
// machine-readable JSON (BENCH_parallel.json) for bench-compare.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"freephish/internal/core"
	"freephish/internal/ml"
	"freephish/internal/simclock"
)

// pipelineBench runs a complete tiny study at a fixed Workers setting.
// Results are bit-identical across settings; only wall-clock may differ.
func pipelineBench(workers int) func(*testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			cfg.Seed = int64(200 + i)
			cfg.Scale = 0.005
			cfg.TrainPerClass = 120
			cfg.Workers = workers
			fp := core.New(cfg)
			if _, err := fp.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPipelineParallel measures the end-to-end study (streaming,
// snapshotting, classification, reporting) across probe-pool sizes.
func BenchmarkPipelineParallel(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), pipelineBench(w))
	}
}

// forestDataset builds a deterministic synthetic binary dataset with
// enough signal that the forest grows real (non-stump) trees.
func forestDataset(n int, seed int64) *ml.Dataset {
	rng := simclock.NewRNG(seed, "bench.forest")
	d := &ml.Dataset{Names: []string{"f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"}}
	for i := 0; i < n; i++ {
		y := i % 2
		x := make([]float64, len(d.Names))
		for j := range x {
			x[j] = rng.Float64() + float64(y)*0.3*float64(j%3)
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

// forestFitBench fits the random forest at a fixed tree-pool size.
func forestFitBench(workers int) func(*testing.B) {
	return func(b *testing.B) {
		d := forestDataset(2000, 11)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rf := ml.NewRandomForest(11)
			rf.Config.Parallelism = workers
			if err := rf.Fit(d); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkForestFitParallel measures parallel tree construction.
func BenchmarkForestFitParallel(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), forestFitBench(w))
	}
}

// TestWriteParallelBenchBaseline runs the parallelism benchmarks
// programmatically and writes machine-readable JSON, the same shape as
// TestWriteBenchBaseline, so bench-compare can diff worker-count scaling
// across commits:
//
//	BENCH_PARALLEL_JSON=BENCH_parallel.json go test -run TestWriteParallelBenchBaseline .
func TestWriteParallelBenchBaseline(t *testing.T) {
	path := os.Getenv("BENCH_PARALLEL_JSON")
	if path == "" {
		t.Skip("set BENCH_PARALLEL_JSON=<path> to write the parallelism baseline")
	}
	benches := []struct {
		Name string
		Fn   func(*testing.B)
	}{
		{"PipelineParallel/workers=1", pipelineBench(1)},
		{"PipelineParallel/workers=4", pipelineBench(4)},
		{"PipelineParallel/workers=8", pipelineBench(8)},
		{"ForestFitParallel/workers=1", forestFitBench(1)},
		{"ForestFitParallel/workers=4", forestFitBench(4)},
		{"ForestFitParallel/workers=8", forestFitBench(8)},
	}
	type row struct {
		Name        string  `json:"name"`
		N           int     `json:"n"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	}
	rows := make([]row, 0, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.Fn)
		if r.N == 0 {
			t.Fatalf("benchmark %s did not run", bench.Name)
		}
		rows = append(rows, row{
			Name:        bench.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		t.Logf("%-28s %12.1f ns/op %8d B/op %6d allocs/op",
			bench.Name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d benchmark rows to %s", len(rows), path)
}
