package faults

import (
	"time"

	"freephish/internal/blocklist"
	"freephish/internal/report"
	"freephish/internal/threat"
	"freephish/internal/world"
)

// WrapWorld decorates every stateful port of w with pre-call injected
// failures drawn from inj. The fault fires before the inner port runs,
// so a retried call applies its real side effects exactly once. Stream
// and Snap are left untouched — the poller and fetcher meet chaos at the
// HTTP layer via Middleware. A nil injector returns w unchanged.
func WrapWorld(w world.World, inj *Injector) world.World {
	if inj == nil {
		return w
	}
	out := w
	if w.Intel != nil {
		out.Intel = &faultIntel{w.Intel, inj}
	}
	if w.Feeds != nil {
		out.Feeds = &faultFeeds{w.Feeds, inj}
	}
	if w.Platform != nil {
		out.Platform = &faultPlatform{w.Platform, inj}
	}
	if w.Reports != nil {
		out.Reports = &faultReports{w.Reports, inj}
	}
	if w.Oracle != nil {
		out.Oracle = &faultOracle{w.Oracle, inj}
	}
	return out
}

type faultIntel struct {
	w   world.SiteIntel
	inj *Injector
}

func (f *faultIntel) Resolve(url string) (world.SiteInfo, error) {
	if err := f.inj.PortFault("intel", "intel.resolve|"+url); err != nil {
		return world.SiteInfo{}, err
	}
	return f.w.Resolve(url)
}

func (f *faultIntel) Profile(req world.ProfileRequest) (*threat.Target, error) {
	if err := f.inj.PortFault("intel", "intel.profile|"+req.URL); err != nil {
		return nil, err
	}
	return f.w.Profile(req)
}

type faultFeeds struct {
	w   world.ThreatFeeds
	inj *Injector
}

func (f *faultFeeds) Assess(t *threat.Target) (map[string]blocklist.Verdict, []time.Time, error) {
	if err := f.inj.PortFault("feeds", "feeds.assess|"+t.URL); err != nil {
		return nil, nil, err
	}
	return f.w.Assess(t)
}

func (f *faultFeeds) Listed(entity, url string) (bool, error) {
	if err := f.inj.PortFault("feeds", "feeds.listed|"+entity+"|"+url); err != nil {
		return false, err
	}
	return f.w.Listed(entity, url)
}

func (f *faultFeeds) FeedNames() []string { return f.w.FeedNames() }

type faultPlatform struct {
	w   world.PlatformOps
	inj *Injector
}

func (f *faultPlatform) AssessModeration(t *threat.Target) (bool, time.Time, error) {
	if err := f.inj.PortFault("platform", "platform.moderation|"+t.URL); err != nil {
		return false, time.Time{}, err
	}
	return f.w.AssessModeration(t)
}

func (f *faultPlatform) RemovePost(platform threat.Platform, postID string, at time.Time) error {
	if err := f.inj.PortFault("platform", "platform.remove|"+postID); err != nil {
		return err
	}
	return f.w.RemovePost(platform, postID, at)
}

func (f *faultPlatform) LookupPost(platform threat.Platform, postID string) (world.PostStatus, error) {
	if err := f.inj.PortFault("platform", "platform.lookup|"+postID); err != nil {
		return world.PostStatus{}, err
	}
	return f.w.LookupPost(platform, postID)
}

type faultReports struct {
	w   world.ReportChannel
	inj *Injector
}

func (f *faultReports) Disclose(t *threat.Target, at time.Time) (report.Outcome, error) {
	if err := f.inj.PortFault("reports", "reports.disclose|"+t.URL); err != nil {
		return report.Outcome{}, err
	}
	return f.w.Disclose(t, at)
}

type faultOracle struct {
	w   world.Oracle
	inj *Injector
}

func (f *faultOracle) Truth(url string) (world.GroundTruth, error) {
	if err := f.inj.PortFault("oracle", "oracle.truth|"+url); err != nil {
		return world.GroundTruth{}, err
	}
	return f.w.Truth(url)
}

func (f *faultOracle) Release(url string) error {
	if err := f.inj.PortFault("oracle", "oracle.release|"+url); err != nil {
		return err
	}
	return f.w.Release(url)
}
