package faults

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"freephish/internal/retry"
	"freephish/internal/threat"
	"freephish/internal/world"
)

// okHandler answers every request with a fixed JSON body.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true,"pad":"0123456789012345678901234567890123456789"}`)
	})
}

// classify issues one request through mw and names what the client saw.
func classify(t *testing.T, client *http.Client, method, url string) string {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	// Pin the virtual host: fault keys include it, and the ephemeral
	// httptest port must not perturb the schedule across servers.
	req.Host = "api.test"
	resp, err := client.Do(req)
	if err != nil {
		return "transport-error"
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case rerr != nil:
		return "short-body"
	case resp.StatusCode == http.StatusServiceUnavailable:
		return "503"
	case resp.StatusCode != http.StatusOK:
		return "other-status"
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		return "malformed-json"
	}
	return "ok"
}

// TestMiddlewareDeterministic: two injectors with the same seed make
// identical fault decisions over the same request sequence; a different
// seed diverges somewhere.
func TestMiddlewareDeterministic(t *testing.T) {
	prof := Profile{ServerErrP: 0.2, ResetP: 0.1, TruncateP: 0.1, MalformP: 0.1, MaxConsecutive: 100}
	run := func(seed int64) []string {
		inj := NewInjector(seed, prof)
		srv := httptest.NewServer(inj.Middleware("api", true, okHandler()))
		defer srv.Close()
		var got []string
		for i := 0; i < 40; i++ {
			got = append(got, classify(t, srv.Client(), http.MethodGet, srv.URL+"/x"))
		}
		return got
	}
	a, b, c := run(1), run(1), run(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: same seed diverged: %q vs %q", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 40-request schedules")
	}
	kinds := map[string]bool{}
	for _, k := range a {
		kinds[k] = true
	}
	for _, want := range []string{"503", "ok"} {
		if !kinds[want] {
			t.Fatalf("40 requests at these rates should include %q; saw %v", want, kinds)
		}
	}
}

// TestBurstCapForcesPassThrough: at ServerErrP=1 every request wants to
// fail, but the cap guarantees a healthy response after MaxConsecutive
// faults — the invariant that keeps chaos inside the retry budget.
func TestBurstCapForcesPassThrough(t *testing.T) {
	inj := NewInjector(1, Profile{ServerErrP: 1, MaxConsecutive: 2})
	srv := httptest.NewServer(inj.Middleware("api", true, okHandler()))
	defer srv.Close()
	var got []string
	for i := 0; i < 9; i++ {
		got = append(got, classify(t, srv.Client(), http.MethodGet, srv.URL+"/x"))
	}
	want := []string{"503", "503", "ok", "503", "503", "ok", "503", "503", "ok"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d = %q, want %q (full sequence %v)", i, got[i], want[i], got)
		}
	}
}

// TestMiddlewareFaultKinds checks each kind's client-observable shape
// over a real server: reset drops the connection, truncate yields a
// short body, malform breaks JSON decoding.
func TestMiddlewareFaultKinds(t *testing.T) {
	cases := []struct {
		name string
		prof Profile
		want string
	}{
		{"reset", Profile{ResetP: 1, MaxConsecutive: 1}, "transport-error"},
		{"truncate", Profile{TruncateP: 1, MaxConsecutive: 1}, "short-body"},
		{"malform", Profile{MalformP: 1, MaxConsecutive: 1}, "malformed-json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := NewInjector(1, tc.prof)
			srv := httptest.NewServer(inj.Middleware("api", true, okHandler()))
			defer srv.Close()
			if got := classify(t, srv.Client(), http.MethodGet, srv.URL+"/x"); got != tc.want {
				t.Fatalf("first GET = %q, want %q", got, tc.want)
			}
			if got := classify(t, srv.Client(), http.MethodGet, srv.URL+"/x"); got != "ok" {
				t.Fatalf("second GET = %q, want ok (burst cap 1)", got)
			}
			if counts := inj.Counts(); counts[tc.name] == 0 {
				t.Fatalf("counts = %v, want %s > 0", counts, tc.name)
			}
		})
	}
}

// TestCorruptionNeverHitsWrites: truncate/malform apply to GETs only, so
// a retried POST can never observe a corrupted (or double-applied) write.
func TestCorruptionNeverHitsWrites(t *testing.T) {
	inj := NewInjector(1, Profile{TruncateP: 1, MalformP: 1, MaxConsecutive: 1000})
	srv := httptest.NewServer(inj.Middleware("api", true, okHandler()))
	defer srv.Close()
	for i := 0; i < 20; i++ {
		if got := classify(t, srv.Client(), http.MethodPost, srv.URL+"/x"); got != "ok" {
			t.Fatalf("POST %d = %q, want ok (corruption must be GET-only)", i, got)
		}
	}
}

// TestBlackoutWindow: inside the window every request 503s regardless of
// the burst cap; outside it traffic is clean.
func TestBlackoutWindow(t *testing.T) {
	epoch := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	now := epoch
	inj := NewInjector(1, Profile{
		MaxConsecutive: 1,
		Blackouts:      []Blackout{{Endpoint: "api", Start: time.Hour, Length: time.Hour}},
	})
	inj.SetClock(func() time.Time { return now }, epoch)
	srv := httptest.NewServer(inj.Middleware("api", true, okHandler()))
	defer srv.Close()

	if got := classify(t, srv.Client(), http.MethodGet, srv.URL+"/x"); got != "ok" {
		t.Fatalf("before window = %q, want ok", got)
	}
	now = epoch.Add(90 * time.Minute)
	for i := 0; i < 4; i++ {
		if got := classify(t, srv.Client(), http.MethodGet, srv.URL+"/x"); got != "503" {
			t.Fatalf("inside window request %d = %q, want 503 (no burst cap)", i, got)
		}
	}
	now = epoch.Add(3 * time.Hour)
	if got := classify(t, srv.Client(), http.MethodGet, srv.URL+"/x"); got != "ok" {
		t.Fatalf("after window = %q, want ok", got)
	}
	if inj.Counts()[KindBlackout] != 4 {
		t.Fatalf("blackout count = %d, want 4", inj.Counts()[KindBlackout])
	}
}

// TestParseProfile covers the flag grammar.
func TestParseProfile(t *testing.T) {
	for _, off := range []string{"", "off", "none"} {
		if p, err := ParseProfile(off); err != nil || p != nil {
			t.Fatalf("ParseProfile(%q) = %v, %v; want nil, nil", off, p, err)
		}
	}
	p, err := ParseProfile("default")
	if err != nil || p == nil || p.ServerErrP != DefaultProfile().ServerErrP {
		t.Fatalf("ParseProfile(default) = %+v, %v", p, err)
	}
	p, err = ParseProfile("5xx=0.5,reset=0.1,latency=0.2,latency-max=3ms,burst=4,blackout=web:24h:6h")
	if err != nil {
		t.Fatal(err)
	}
	if p.ServerErrP != 0.5 || p.ResetP != 0.1 || p.LatencyP != 0.2 ||
		p.LatencyMax != 3*time.Millisecond || p.MaxConsecutive != 4 {
		t.Fatalf("parsed profile = %+v", p)
	}
	if len(p.Blackouts) != 1 || p.Blackouts[0] != (Blackout{Endpoint: "web", Start: 24 * time.Hour, Length: 6 * time.Hour}) {
		t.Fatalf("blackouts = %+v", p.Blackouts)
	}
	for _, bad := range []string{"nope", "5xx", "5xx=x", "blackout=web:24h", "unknown=1"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Fatalf("ParseProfile(%q) should fail", bad)
		}
	}
}

// stubIntel is a minimal SiteIntel port for composition tests.
type stubIntel struct{ calls int }

func (s *stubIntel) Resolve(url string) (world.SiteInfo, error) {
	s.calls++
	return world.SiteInfo{Hosted: true}, nil
}

func (s *stubIntel) Profile(req world.ProfileRequest) (*threat.Target, error) {
	return &threat.Target{URL: req.URL}, nil
}

// TestWrapWorldWithRetryAlwaysSucceeds is the composed invariant the
// chaos-soak study relies on: with fault bursts capped below the retry
// budget, every port call eventually returns the real answer, and the
// inner port's side effects (here: its call count) fire once per
// successful operation plus the injected failures.
func TestWrapWorldWithRetryAlwaysSucceeds(t *testing.T) {
	intel := &stubIntel{}
	inj := NewInjector(3, Profile{ServerErrP: 0.5, ResetP: 0.3, MaxConsecutive: 2})
	pol := &retry.Policy{MaxAttempts: 4, Sleep: retry.NoSleep}
	w := world.WithRetry(WrapWorld(world.World{Intel: intel}, inj), pol)

	for i := 0; i < 50; i++ {
		info, err := w.Intel.Resolve("http://example.test/" + string(rune('a'+i%26)))
		if err != nil {
			t.Fatalf("call %d: %v (retry budget must absorb capped bursts)", i, err)
		}
		if !info.Hosted {
			t.Fatalf("call %d: lost the real answer", i)
		}
	}
	if intel.calls != 50 {
		t.Fatalf("inner port ran %d times, want exactly 50 (faults fire pre-call)", intel.calls)
	}
	counts := inj.Counts()
	if counts[KindServerErr]+counts[KindReset] == 0 {
		t.Fatalf("counts = %v: no faults injected, the test proved nothing", counts)
	}
}

// TestPortFaultMarksTransient: injected port errors carry the transient
// marker so any policy will retry them.
func TestPortFaultMarksTransient(t *testing.T) {
	inj := NewInjector(1, Profile{ServerErrP: 1, MaxConsecutive: 1000})
	err := inj.PortFault("intel", "intel.resolve|u")
	if err == nil {
		t.Fatal("want injected error")
	}
	if !retry.IsTransient(err) {
		t.Fatalf("injected error %v must be transient", err)
	}
}

// TestHandlerTransportFaultParity: the same middleware behind the inproc
// HandlerTransport produces the same client-side failures a real server
// does — reset becomes a transport error, truncation an unexpected EOF.
func TestHandlerTransportFaultParity(t *testing.T) {
	inj := NewInjector(1, Profile{ResetP: 1, MaxConsecutive: 1})
	rt := world.NewHandlerTransport()
	rt.Handle("api.inproc", inj.Middleware("api", true, okHandler()))
	client := &http.Client{Transport: rt}

	if _, err := client.Get("http://api.inproc/x"); err == nil {
		t.Fatal("reset through HandlerTransport should be a transport error")
	}
	resp, err := client.Get("http://api.inproc/x")
	if err != nil {
		t.Fatalf("post-burst request: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(body), "ok") {
		t.Fatalf("clean request: body=%q err=%v", body, err)
	}

	trunc := NewInjector(1, Profile{TruncateP: 1, MaxConsecutive: 1})
	rt2 := world.NewHandlerTransport()
	rt2.Handle("api.inproc", trunc.Middleware("api", true, okHandler()))
	resp, err = (&http.Client{Transport: rt2}).Get("http://api.inproc/x")
	if err != nil {
		t.Fatalf("truncated response should deliver headers: %v", err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read of truncated inproc body = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestClockSkewDeterministicAndBounded pins the clock-skew fault: for a
// fixed (seed, key) the skew sequence replays exactly, every draw stays
// within ±SkewMax, the firing rate tracks SkewP, and each firing bumps
// the counter and the Observe hook with KindClockSkew.
func TestClockSkewDeterministic(t *testing.T) {
	prof := Profile{SkewP: 0.3, SkewMax: 30 * time.Minute}
	draw := func() []time.Duration {
		inj := NewInjector(42, prof)
		out := make([]time.Duration, 200)
		for i := range out {
			out[i] = inj.ClockSkew("monitor.probe", "http://x.weebly.com")
		}
		return out
	}
	a, b := draw(), draw()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverges across replays: %v vs %v", i, a[i], b[i])
		}
		if a[i] < -prof.SkewMax || a[i] > prof.SkewMax {
			t.Fatalf("draw %d = %v exceeds ±%v", i, a[i], prof.SkewMax)
		}
		if a[i] != 0 {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Fatalf("skew fired %d/200 times at p=0.3; schedule is miscalibrated", fired)
	}

	inj := NewInjector(42, prof)
	var observed uint64
	inj.Observe = func(kind, endpoint, key string) {
		if kind != KindClockSkew {
			t.Fatalf("observed kind %q, want %q", kind, KindClockSkew)
		}
		if endpoint != "feed.gsb" || key != "http://y.weebly.com" {
			t.Fatalf("observed (%q, %q)", endpoint, key)
		}
		observed++
	}
	for i := 0; i < 200; i++ {
		inj.ClockSkew("feed.gsb", "http://y.weebly.com")
	}
	if got := inj.Counts()[KindClockSkew]; got == 0 || got != observed {
		t.Fatalf("counter = %d, observe hook fired %d times; want equal and > 0", got, observed)
	}
}

// TestClockSkewKeyedPerURL pins the shard-invariance property: the skew
// an endpoint sees for a URL depends only on (seed, URL, per-URL draw
// ordinal) — never on which other URLs were probed in between — so a
// shard probing a subset of URLs replays the same skew schedule the
// 1-shard run produced for them.
func TestClockSkewKeyedPerURL(t *testing.T) {
	prof := Profile{SkewP: 0.5, SkewMax: time.Hour}
	solo := NewInjector(7, prof)
	var want []time.Duration
	for i := 0; i < 50; i++ {
		want = append(want, solo.ClockSkew("monitor.probe", "http://a.weebly.com"))
	}
	interleaved := NewInjector(7, prof)
	var got []time.Duration
	for i := 0; i < 50; i++ {
		got = append(got, interleaved.ClockSkew("monitor.probe", "http://a.weebly.com"))
		interleaved.ClockSkew("monitor.probe", "http://other.wixsite.com")
		interleaved.ClockSkew("feed.gsb", "http://third.weebly.com")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d for a.weebly.com changed when other URLs interleaved: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestClockSkewOffByDefault pins the compatibility contract: the default
// chaos profile injects no skew (skew perturbs observation timestamps,
// which would break the chaos byte-identity gate), and a zero-probability
// profile never draws.
func TestClockSkewOffByDefault(t *testing.T) {
	if p := DefaultProfile(); p.SkewP != 0 {
		t.Fatalf("DefaultProfile().SkewP = %v, want 0 (skew is opt-in)", p.SkewP)
	}
	inj := NewInjector(1, DefaultProfile())
	for i := 0; i < 100; i++ {
		if d := inj.ClockSkew("monitor.probe", "http://x.weebly.com"); d != 0 {
			t.Fatalf("default profile skewed by %v", d)
		}
	}
	if inj.Counts()[KindClockSkew] != 0 {
		t.Fatalf("default profile counted %d skews", inj.Counts()[KindClockSkew])
	}
}

// TestDNSFailTransportAbort pins the client-observable shape of a DNS
// resolution failure: the request dies at the transport with no response
// bytes (indistinguishable from a reset), the burst cap forces the next
// request through, and the firing is counted and reported to Observe.
func TestDNSFailTransportAbort(t *testing.T) {
	inj := NewInjector(1, Profile{DNSFailP: 1, MaxConsecutive: 1})
	var observed uint64
	inj.Observe = func(kind, endpoint, key string) {
		if kind != KindDNSFail {
			t.Fatalf("observed kind %q, want %q", kind, KindDNSFail)
		}
		if endpoint != "api" {
			t.Fatalf("observed endpoint %q, want api", endpoint)
		}
		observed++
	}
	srv := httptest.NewServer(inj.Middleware("api", true, okHandler()))
	defer srv.Close()
	if got := classify(t, srv.Client(), http.MethodGet, srv.URL+"/x"); got != "transport-error" {
		t.Fatalf("first GET = %q, want transport-error (dnsfail aborts pre-response)", got)
	}
	if got := classify(t, srv.Client(), http.MethodGet, srv.URL+"/x"); got != "ok" {
		t.Fatalf("second GET = %q, want ok (burst cap 1)", got)
	}
	if got := inj.Counts()[KindDNSFail]; got == 0 || got != observed {
		t.Fatalf("counter = %d, observe hook fired %d times; want equal and > 0", got, observed)
	}
}

// TestDNSFailStreamIndependent pins the schedule-isolation property:
// turning DNSFailP on must not re-deal any other fault's decisions,
// because dnsfail draws from its own "dns|"-prefixed stream. At every
// ordinal where dnsfail did not fire, the injected kind matches the
// dnsfail-free profile's kind exactly.
func TestDNSFailStreamIndependent(t *testing.T) {
	base := Profile{ServerErrP: 0.2, ResetP: 0.1, TruncateP: 0.1, MaxConsecutive: 1 << 30}
	withDNS := base
	withDNS.DNSFailP = 0.3
	a := NewInjector(9, base)
	b := NewInjector(9, withDNS)
	dnsFired := 0
	for n := 0; n < 200; n++ {
		ka, _ := a.decide("api", "api|GET|h|/u", true, false)
		kb, _ := b.decide("api", "api|GET|h|/u", true, false)
		if kb == KindDNSFail {
			dnsFired++
			continue
		}
		if ka != kb {
			t.Fatalf("ordinal %d: kind %q with dnsfail enabled vs %q without — schedules re-dealt", n, kb, ka)
		}
	}
	if dnsFired < 30 || dnsFired > 90 {
		t.Fatalf("dnsfail fired %d/200 times at p=0.3; schedule is miscalibrated", dnsFired)
	}
}

// TestDNSFailSharesBurstCap: dnsfail joins the key's shared fault streak,
// so even with every fault class at probability 1 the joint burst never
// exceeds MaxConsecutive — the invariant that keeps the retry budget
// sufficient and dnsfail-bearing chaos byte-transparent.
func TestDNSFailSharesBurstCap(t *testing.T) {
	inj := NewInjector(1, Profile{DNSFailP: 1, ServerErrP: 1, MaxConsecutive: 2})
	srv := httptest.NewServer(inj.Middleware("api", true, okHandler()))
	defer srv.Close()
	// Fresh connection per request: on a reused keep-alive connection the
	// Go transport silently retries an aborted GET, which would consume an
	// extra decide ordinal and blur the streak being pinned here.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer client.CloseIdleConnections()
	var got []string
	for i := 0; i < 9; i++ {
		got = append(got, classify(t, client, http.MethodGet, srv.URL+"/x"))
	}
	want := []string{"transport-error", "transport-error", "ok",
		"transport-error", "transport-error", "ok",
		"transport-error", "transport-error", "ok"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d = %q, want %q (full sequence %v)", i, got[i], want[i], got)
		}
	}
}

// TestDNSFailKeyedPerKey pins shard invariance: a key's dnsfail schedule
// depends only on (seed, key, per-key ordinal), never on interleaved
// traffic for other keys — so a shard probing a subset of URLs replays
// exactly the resolution failures the 1-shard run dealt them.
func TestDNSFailKeyedPerKey(t *testing.T) {
	prof := Profile{DNSFailP: 0.5, MaxConsecutive: 1 << 30}
	solo := NewInjector(7, prof)
	var want []string
	for i := 0; i < 50; i++ {
		k, _ := solo.decide("intel", "port|http://a.weebly.com", false, false)
		want = append(want, k)
	}
	interleaved := NewInjector(7, prof)
	for i := 0; i < 50; i++ {
		k, _ := interleaved.decide("intel", "port|http://a.weebly.com", false, false)
		interleaved.decide("intel", "port|http://other.wixsite.com", false, false)
		interleaved.decide("web", "port|http://third.weebly.com", false, false)
		if k != want[i] {
			t.Fatalf("draw %d for a.weebly.com changed when other keys interleaved: %q vs %q", i, k, want[i])
		}
	}
}

// TestDNSFailOffByDefault: the default chaos profile injects no
// resolution failures (dnsfail is opt-in like skew and blackouts), and
// the flag grammar round-trips the key.
func TestDNSFailOffByDefault(t *testing.T) {
	if p := DefaultProfile(); p.DNSFailP != 0 {
		t.Fatalf("DefaultProfile().DNSFailP = %v, want 0 (dnsfail is opt-in)", p.DNSFailP)
	}
	p, err := ParseProfile("dnsfail=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if p.DNSFailP != 0.05 {
		t.Fatalf("parsed DNSFailP = %v, want 0.05", p.DNSFailP)
	}
	if _, err := ParseProfile("dnsfail=x"); err == nil {
		t.Fatal(`ParseProfile("dnsfail=x") should fail`)
	}
}

// TestParseProfileSkew covers the skew flag grammar: explicit keys, the
// 30-minute default magnitude, and rejection of malformed values.
func TestParseProfileSkew(t *testing.T) {
	p, err := ParseProfile("skew=0.2,skew-max=10m")
	if err != nil {
		t.Fatal(err)
	}
	if p.SkewP != 0.2 || p.SkewMax != 10*time.Minute {
		t.Fatalf("parsed profile = %+v", p)
	}
	p, err = ParseProfile("skew=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p.SkewMax != 30*time.Minute {
		t.Fatalf("skew without skew-max defaulted to %v, want 30m", p.SkewMax)
	}
	for _, bad := range []string{"skew=x", "skew-max=x"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Fatalf("ParseProfile(%q) should fail", bad)
		}
	}
}
