package faults

import "sort"

// This file is the chaos layer's contribution to checkpoint/resume. Every
// fault decision is a pure hash of (seed, key, request ordinal), so the
// injector's only mutable state is the per-key ordinal and streak plus the
// per-kind counters. Capturing them in a checkpoint and restoring them on
// resume makes the post-resume fault schedule pick up exactly where the
// interrupted run left off — in particular the clock-skew stream, whose
// per-URL draws are the one fault kind that lands in study output.

// KeyCursor is one request key's decision cursor: how many requests the
// key has seen and how deep its current fault streak is.
type KeyCursor struct {
	Key    string `json:"key"`
	N      uint64 `json:"n"`
	Consec int    `json:"consec"`
}

// Cursors is the injector's serializable decision state. Keys are sorted
// so the encoding is deterministic.
type Cursors struct {
	Keys   []KeyCursor       `json:"keys"`
	Counts map[string]uint64 `json:"counts"`
}

// Cursors captures the injector's decision state.
func (i *Injector) Cursors() *Cursors {
	i.mu.Lock()
	defer i.mu.Unlock()
	c := &Cursors{
		Keys:   make([]KeyCursor, 0, len(i.streak)),
		Counts: make(map[string]uint64, len(i.counts)),
	}
	for k, st := range i.streak {
		c.Keys = append(c.Keys, KeyCursor{Key: k, N: st.n, Consec: st.consec})
	}
	sort.Slice(c.Keys, func(a, b int) bool { return c.Keys[a].Key < c.Keys[b].Key })
	for k, v := range i.counts {
		c.Counts[k] = v
	}
	return c
}

// RestoreCursors rewinds the injector to a captured decision state.
func (i *Injector) RestoreCursors(c *Cursors) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.streak = make(map[string]*keyState, len(c.Keys))
	for _, kc := range c.Keys {
		i.streak[kc.Key] = &keyState{n: kc.N, consec: kc.Consec}
	}
	i.counts = make(map[string]uint64, len(c.Counts))
	for k, v := range c.Counts {
		i.counts[k] = v
	}
}
