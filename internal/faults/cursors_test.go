package faults

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// The resume contract: an injector restored from captured cursors must
// emit exactly the fault sequence the uninterrupted injector would have
// emitted from that point — same verdicts, same streak caps, same skew
// offsets, same cumulative counts.

func cursorProfile() Profile {
	return Profile{
		ServerErrP:     0.30,
		ResetP:         0.20,
		SkewP:          0.50,
		SkewMax:        time.Hour,
		MaxConsecutive: 3,
	}
}

// drive issues requests [lo, hi) against a fixed small key population and
// records each outcome as a string, so two runs can be diffed directly.
func drive(i *Injector, lo, hi int) []string {
	var out []string
	for n := lo; n < hi; n++ {
		url := fmt.Sprintf("http://site-%d.example", n%3)
		verdict := "ok"
		if err := i.PortFault("api", url); err != nil {
			verdict = err.Error()
		}
		skew := i.ClockSkew("feed.a", url)
		out = append(out, fmt.Sprintf("%s %s %s", url, verdict, skew))
	}
	return out
}

func TestCursorsContinuationMatchesUninterrupted(t *testing.T) {
	const n, m = 48, 48
	full := NewInjector(7, cursorProfile())
	want := drive(full, 0, n+m)

	first := NewInjector(7, cursorProfile())
	if got := drive(first, 0, n); !reflect.DeepEqual(got, want[:n]) {
		t.Fatal("same-seed injectors diverged before the cut — determinism broken")
	}
	resumed := NewInjector(7, cursorProfile())
	resumed.RestoreCursors(first.Cursors())
	got := drive(resumed, n, n+m)
	for i := range got {
		if got[i] != want[n+i] {
			t.Fatalf("post-resume request %d: got %q, want %q", n+i, got[i], want[n+i])
		}
	}
	if !reflect.DeepEqual(resumed.Counts(), full.Counts()) {
		t.Fatalf("cumulative counts diverged: resumed %v, uninterrupted %v", resumed.Counts(), full.Counts())
	}
}

func TestCursorsCaptureIsDeterministic(t *testing.T) {
	i := NewInjector(3, cursorProfile())
	drive(i, 0, 30)
	a, b := i.Cursors(), i.Cursors()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two captures of the same state differ")
	}
	for k := 1; k < len(a.Keys); k++ {
		if a.Keys[k-1].Key >= a.Keys[k].Key {
			t.Fatalf("cursor keys not sorted: %q before %q", a.Keys[k-1].Key, a.Keys[k].Key)
		}
	}
}

func TestCursorsEmptyRoundTrip(t *testing.T) {
	fresh := NewInjector(5, cursorProfile())
	restored := NewInjector(5, cursorProfile())
	restored.RestoreCursors(fresh.Cursors())
	a, b := drive(fresh, 0, 20), drive(restored, 0, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("empty-cursor restore changed the fault stream")
	}
}
