// Package faults is the deterministic fault-injection substrate: it
// decorates the simulation's HTTP handlers and world ports with seeded,
// configurable failures — injected latency, 5xx bursts, connection
// resets, truncated and malformed bodies, DNS resolution failures, and
// per-endpoint blackouts — so every failure path in the pipeline is
// exercised on purpose.
//
// Every decision is a pure hash of (seed, key, per-key request ordinal),
// never a draw from shared RNG state, so a chaos run is exactly
// reproducible and concurrent requests on different keys cannot perturb
// each other's fault schedule.
//
// The injector upholds two invariants that make a chaos-soak study
// byte-identical to the fault-free run:
//
//   - Failure faults (5xx, reset, dnsfail, blackout) fire BEFORE the
//     inner handler runs, so a retried POST executes its real side
//     effects exactly once. Body corruption (truncate/malform) applies
//     only to GETs, which the simulation serves read-only.
//   - MaxConsecutive caps each key's fault burst; after the cap the real
//     response must pass through. With a retry budget larger than the
//     cap, every logical operation eventually receives the same healthy
//     bytes the fault-free run saw. (Blackouts deliberately break this —
//     they persist for their whole window — which is why the default
//     profile has none.)
package faults

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"

	"freephish/internal/retry"
)

// Fault kinds, as counted and reported to Observe.
const (
	KindLatency   = "latency"
	KindServerErr = "5xx"
	KindReset     = "reset"
	KindTruncate  = "truncate"
	KindMalform   = "malform"
	KindBlackout  = "blackout"
	KindClockSkew = "clock_skew"
	KindDNSFail   = "dnsfail"
)

// Profile configures fault intensities. Probabilities are per request in
// [0, 1] and are mutually exclusive per request (at most one failure
// fault fires; latency composes with any of them).
type Profile struct {
	// LatencyP injects a wall-clock delay up to LatencyMax.
	LatencyP   float64
	LatencyMax time.Duration
	// ServerErrP answers 503 without invoking the real handler.
	ServerErrP float64
	// ResetP aborts the connection mid-response (http.ErrAbortHandler).
	ResetP float64
	// TruncateP delivers only half the declared body (GETs only), which a
	// faithful client observes as an unexpected EOF.
	TruncateP float64
	// MalformP prefixes the body with JSON-breaking garbage (GETs on
	// JSON endpoints only).
	MalformP float64
	// SkewP makes an endpoint report timestamps shifted by a seeded
	// offset uniform in [-SkewMax, +SkewMax] — the clock-skew fault the
	// active monitor consumes (a feed whose wall clock drifts reports
	// listing times that disagree with the simulation clock). Zero in
	// the default profile: skew perturbs observed timestamps, so it is
	// deliberately NOT byte-transparent the way the transient faults
	// are.
	SkewP   float64
	SkewMax time.Duration
	// DNSFailP makes the virtual host's name resolution fail: the request
	// aborts at the transport before any bytes of response, exactly like
	// NXDOMAIN/SERVFAIL on a flaky resolver. Decisions draw from a
	// dedicated "dns|"-prefixed per-key ordinal stream (like clock skew),
	// so enabling it never re-deals any other fault's schedule — but a
	// fired resolution failure shares the key's MaxConsecutive burst cap
	// with the other failure faults, so the retry budget still absorbs it
	// and the study stays byte-identical.
	DNSFailP float64
	// MaxConsecutive caps a key's fault burst; <= 0 means 2. Keep it
	// below the retry budget or chaos stops being transparent.
	MaxConsecutive int
	// Blackouts are per-endpoint outage windows in simulation time. A
	// blacked-out endpoint answers 503 for the whole window, ignoring
	// the burst cap — this is the fault class that exercises the circuit
	// breaker, and it is NOT part of the default profile because an
	// outage longer than the retry budget shifts work to later cycles.
	Blackouts []Blackout
}

// Blackout is one endpoint outage window, offset from the study epoch.
type Blackout struct {
	Endpoint string
	Start    time.Duration
	Length   time.Duration
}

// DefaultProfile returns the chaos-soak intensities: every transient
// fault class at a rate the retry budget fully absorbs.
func DefaultProfile() Profile {
	return Profile{
		LatencyP:       0.05,
		LatencyMax:     2 * time.Millisecond,
		ServerErrP:     0.05,
		ResetP:         0.03,
		TruncateP:      0.02,
		MalformP:       0.02,
		MaxConsecutive: 2,
	}
}

// ParseProfile parses a -faults flag value. "" / "off" / "none" disable
// injection (nil profile); "default" / "on" return DefaultProfile. Any
// other value is a comma-separated k=v spec starting from a zero profile
// (burst cap still defaults to 2):
//
//	latency=0.1,latency-max=5ms,5xx=0.2,reset=0.05,truncate=0.02,malform=0.02,dnsfail=0.05,skew=0.1,skew-max=30m,burst=2,blackout=web:24h:6h
func ParseProfile(spec string) (*Profile, error) {
	switch strings.TrimSpace(spec) {
	case "", "off", "none":
		return nil, nil
	case "default", "on":
		p := DefaultProfile()
		return &p, nil
	}
	p := Profile{MaxConsecutive: 2}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad spec element %q (want k=v)", kv)
		}
		var err error
		switch k {
		case "latency":
			p.LatencyP, err = strconv.ParseFloat(v, 64)
		case "latency-max":
			p.LatencyMax, err = time.ParseDuration(v)
		case "5xx":
			p.ServerErrP, err = strconv.ParseFloat(v, 64)
		case "reset":
			p.ResetP, err = strconv.ParseFloat(v, 64)
		case "truncate":
			p.TruncateP, err = strconv.ParseFloat(v, 64)
		case "malform":
			p.MalformP, err = strconv.ParseFloat(v, 64)
		case "dnsfail":
			p.DNSFailP, err = strconv.ParseFloat(v, 64)
		case "skew":
			p.SkewP, err = strconv.ParseFloat(v, 64)
		case "skew-max":
			p.SkewMax, err = time.ParseDuration(v)
		case "burst":
			p.MaxConsecutive, err = strconv.Atoi(v)
		case "blackout":
			var b Blackout
			b, err = parseBlackout(v)
			p.Blackouts = append(p.Blackouts, b)
		default:
			return nil, fmt.Errorf("faults: unknown spec key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad value for %q: %w", k, err)
		}
	}
	if p.LatencyP > 0 && p.LatencyMax <= 0 {
		p.LatencyMax = 2 * time.Millisecond
	}
	if p.SkewP > 0 && p.SkewMax <= 0 {
		p.SkewMax = 30 * time.Minute
	}
	return &p, nil
}

func parseBlackout(v string) (Blackout, error) {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return Blackout{}, fmt.Errorf("want endpoint:start:length, got %q", v)
	}
	start, err := time.ParseDuration(parts[1])
	if err != nil {
		return Blackout{}, err
	}
	length, err := time.ParseDuration(parts[2])
	if err != nil {
		return Blackout{}, err
	}
	return Blackout{Endpoint: parts[0], Start: start, Length: length}, nil
}

// Injector makes the fault decisions. One injector serves a whole run;
// it is safe for concurrent use.
type Injector struct {
	seed int64
	prof Profile

	// now/epoch drive blackout windows (sim time); nil now disables them.
	now   func() time.Time
	epoch time.Time
	// sleep serves injected latency; defaults to time.Sleep.
	sleep func(time.Duration)

	// Observe, when set, receives each injected fault's kind plus the
	// endpoint and request key it hit — the hook the metrics layer counts
	// through and the journal records fault events from, so chaos runs
	// are explainable per call site. Must be cheap and concurrency-safe.
	// Set it before serving traffic.
	Observe func(kind, endpoint, key string)

	mu     sync.Mutex
	streak map[string]*keyState
	counts map[string]uint64
}

// keyState is one key's request ordinal and current fault streak.
type keyState struct {
	n      uint64
	consec int
}

// NewInjector returns an injector for the profile, with all decisions
// derived from seed.
func NewInjector(seed int64, prof Profile) *Injector {
	if prof.MaxConsecutive <= 0 {
		prof.MaxConsecutive = 2
	}
	return &Injector{
		seed:   seed,
		prof:   prof,
		sleep:  time.Sleep,
		streak: make(map[string]*keyState),
		counts: make(map[string]uint64),
	}
}

// SetClock supplies the simulation clock and epoch; required for
// Blackouts to take effect.
func (i *Injector) SetClock(now func() time.Time, epoch time.Time) {
	i.now, i.epoch = now, epoch
}

// SetSleep overrides how injected latency is served (tests pass a no-op).
func (i *Injector) SetSleep(fn func(time.Duration)) { i.sleep = fn }

// Counts returns a copy of the per-kind injection counters.
func (i *Injector) Counts() map[string]uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]uint64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// decide picks the fault (if any) for one request on key. corruptible
// gates truncate faults, jsonBody additionally gates malform.
func (i *Injector) decide(endpoint, key string, corruptible, jsonBody bool) (kind string, latency time.Duration) {
	i.mu.Lock()
	st := i.streak[key]
	if st == nil {
		st = &keyState{}
		i.streak[key] = st
	}
	n := st.n
	st.n++
	if i.now != nil {
		at := i.now().Sub(i.epoch)
		for _, b := range i.prof.Blackouts {
			if b.Endpoint == endpoint && at >= b.Start && at < b.Start+b.Length {
				i.counts[KindBlackout]++
				obs := i.Observe
				i.mu.Unlock()
				if obs != nil {
					obs(KindBlackout, endpoint, key)
				}
				return KindBlackout, 0
			}
		}
	}
	if i.prof.LatencyP > 0 && unitAt(i.seed, key, n, 1) < i.prof.LatencyP {
		latency = time.Duration(unitAt(i.seed, key, n, 2) * float64(i.prof.LatencyMax))
	}
	// DNS resolution failure draws from its own "dns|"-prefixed stream
	// (like clock skew) so toggling DNSFailP never re-deals the other
	// faults' schedules. A fired dnsfail pre-empts the shared pick below
	// and flows into the same streak accounting, keeping the joint burst
	// within MaxConsecutive.
	if i.prof.DNSFailP > 0 {
		dk := "dns|" + key
		dst := i.streak[dk]
		if dst == nil {
			dst = &keyState{}
			i.streak[dk] = dst
		}
		dn := dst.n
		dst.n++
		if unitAt(i.seed, dk, dn, 5) < i.prof.DNSFailP {
			kind = KindDNSFail
		}
	}
	if kind == "" {
		u := unitAt(i.seed, key, n, 0)
		t1 := i.prof.ServerErrP
		t2 := t1 + i.prof.ResetP
		t3, t4 := t2, t2
		if corruptible {
			t3 = t2 + i.prof.TruncateP
			t4 = t3
			if jsonBody {
				t4 = t3 + i.prof.MalformP
			}
		}
		switch {
		case u < t1:
			kind = KindServerErr
		case u < t2:
			kind = KindReset
		case u < t3:
			kind = KindTruncate
		case u < t4:
			kind = KindMalform
		}
	}
	if kind != "" && st.consec >= i.prof.MaxConsecutive {
		// Burst cap: force a healthy pass-through so the retry budget is
		// always sufficient and chaos stays invisible in study output.
		kind = ""
	}
	if kind != "" {
		st.consec++
		i.counts[kind]++
	} else {
		st.consec = 0
	}
	if latency > 0 {
		i.counts[KindLatency]++
	}
	obs := i.Observe
	i.mu.Unlock()
	if obs != nil {
		if latency > 0 {
			obs(KindLatency, endpoint, key)
		}
		if kind != "" {
			obs(kind, endpoint, key)
		}
	}
	return kind, latency
}

// unitAt derives a uniform [0,1) value from (seed, key, ordinal, fold).
func unitAt(seed int64, key string, n, fold uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	var b [24]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:16], n)
	binary.LittleEndian.PutUint64(b[16:], fold)
	h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// ClockSkew returns the seeded clock-skew offset for one timestamp the
// caller is about to consume from endpoint, or zero when the skew fault
// does not fire. Decisions hash (seed, key, per-key ordinal) exactly
// like decide — per-key ordinals make the schedule independent of other
// keys' traffic, so a sharded study observes the same skews as a
// single-process run — and each fired skew is counted and reported
// through Observe as KindClockSkew.
func (i *Injector) ClockSkew(endpoint, key string) time.Duration {
	if i.prof.SkewP <= 0 || i.prof.SkewMax <= 0 {
		return 0
	}
	sk := "skew|" + key
	i.mu.Lock()
	st := i.streak[sk]
	if st == nil {
		st = &keyState{}
		i.streak[sk] = st
	}
	n := st.n
	st.n++
	if unitAt(i.seed, sk, n, 3) >= i.prof.SkewP {
		i.mu.Unlock()
		return 0
	}
	d := time.Duration((unitAt(i.seed, sk, n, 4)*2 - 1) * float64(i.prof.SkewMax))
	i.counts[KindClockSkew]++
	obs := i.Observe
	i.mu.Unlock()
	if obs != nil {
		obs(KindClockSkew, endpoint, key)
	}
	return d
}

// PortFault decides whether one world-port call fails, using the
// profile's ServerErrP + ResetP as the combined error rate. Injected
// errors are marked retry.Transient so the unified policy absorbs them;
// endpoint names the port family for blackout matching.
func (i *Injector) PortFault(endpoint, key string) error {
	kind, latency := i.decide(endpoint, "port|"+key, false, false)
	if latency > 0 {
		i.sleep(latency)
	}
	switch kind {
	case "":
		return nil
	case KindBlackout:
		return retry.Transient(fmt.Errorf("faults: %s blacked out: %w", endpoint, &retry.StatusError{Code: http.StatusServiceUnavailable}))
	default:
		return retry.Transient(fmt.Errorf("faults: injected %s on %s", kind, key))
	}
}

// Middleware decorates h with injected faults. endpoint names the
// decorated server (blackout matching and per-endpoint accounting);
// jsonBody marks servers whose GET responses are JSON, enabling
// malformed-body corruption.
//
// Failure faults (5xx, reset, dnsfail, blackout) fire before the inner
// handler, so retried POSTs never double-apply side effects; body
// corruption wraps GETs only.
func (i *Injector) Middleware(endpoint string, jsonBody bool, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := endpoint + "|" + r.Method + "|" + r.Host + "|" + r.URL.RequestURI()
		kind, latency := i.decide(endpoint, key, r.Method == http.MethodGet, jsonBody)
		if latency > 0 {
			i.sleep(latency)
		}
		switch kind {
		case "":
			h.ServeHTTP(w, r)
		case KindServerErr, KindBlackout:
			http.Error(w, "injected fault: service unavailable", http.StatusServiceUnavailable)
		case KindReset, KindDNSFail:
			// A failed resolution and a reset connection look identical from
			// the client's side of the socket: the request dies at the
			// transport with no response bytes.
			panic(http.ErrAbortHandler)
		case KindTruncate:
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if len(body) < 2 {
				// Nothing to truncate; degrade to a plain 503.
				http.Error(w, "injected fault: service unavailable", http.StatusServiceUnavailable)
				return
			}
			copyHeader(w.Header(), rec.Header())
			// Declare the full length, deliver half: the client's read
			// fails with unexpected EOF, exactly like a dropped link.
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(rec.Code)
			w.Write(body[:len(body)/2])
		case KindMalform:
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			// The unclosed object guarantees a decode error no matter
			// what the real body was.
			body := append([]byte(`{"faults-injected-garbage":`), rec.Body.Bytes()...)
			copyHeader(w.Header(), rec.Header())
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(rec.Code)
			w.Write(body)
		}
	})
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
