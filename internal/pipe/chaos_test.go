package pipe

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"freephish/internal/faults"
	"freephish/internal/retry"
)

// fetchUnderChaos models the pipeline's fetch stage: one world-port call
// per item through the fault injector, with the transient failures
// absorbed by a bounded retry loop the way the unified policy does.
func fetchUnderChaos(inj *faults.Injector, i, v int) (int, error) {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if err = inj.PortFault("fetch", fmt.Sprintf("url-%d", i)); err == nil {
			return v * 3, nil
		}
		if !retry.IsTransient(err) {
			break
		}
	}
	return 0, err
}

// TestChaosUnderStreamingDeterministic: the default fault profile injected
// into a streamed fetch stage must not change the ordered output at any
// (workers, queue-depth) setting — the streaming analogue of the study's
// chaos soak.
func TestChaosUnderStreamingDeterministic(t *testing.T) {
	const n = 400
	want := make([]int, n)
	for i := range want {
		want[i] = i * 3
	}
	for _, workers := range []int{1, 8} {
		for _, depth := range []int{1, 64} {
			prof := faults.DefaultProfile()
			inj := faults.NewInjector(11, prof)
			inj.SetSleep(func(time.Duration) {}) // chaos, not slowness
			p := New(context.Background(), Options{})
			src := Range(p, depth, n)
			st := Stage(src, "fetch", workers, depth, func(i, v int) (int, error) {
				return fetchUnderChaos(inj, i, v)
			})
			got, err := Collect(st)
			if err != nil {
				t.Fatalf("workers=%d depth=%d: %v", workers, depth, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d depth=%d: chaos changed the ordered output", workers, depth)
			}
			total := uint64(0)
			for _, c := range inj.Counts() {
				total += c
			}
			if total == 0 {
				t.Fatalf("workers=%d depth=%d: no faults injected; the test proved nothing", workers, depth)
			}
		}
	}
}

// TestStalledFetchBackpressuresAndDrainsOnCancel: injected latency stalls
// every fetch worker on a gate (a blackout that outlives any retry
// budget). The source must stop within the backpressure bound instead of
// buffering the cycle, and once the run is cancelled and the in-flight
// calls return, the whole pipeline must drain without deadlock.
func TestStalledFetchBackpressuresAndDrainsOnCancel(t *testing.T) {
	const n, workers, depth = 50000, 4, 8
	gate := make(chan struct{})
	inj := faults.NewInjector(7, faults.Profile{LatencyP: 1, LatencyMax: time.Millisecond})
	inj.SetSleep(func(time.Duration) { <-gate })

	ctx, cancel := context.WithCancel(context.Background())
	var sourced atomic.Int64
	p := New(ctx, Options{})
	src := Range(p, depth, n)
	counted := Stage(src, "count", 1, depth, func(i, v int) (int, error) {
		sourced.Add(1)
		return v, nil
	})
	stalled := Stage(counted, "fetch", workers, depth, func(i, v int) (int, error) {
		_ = inj.PortFault("fetch", fmt.Sprintf("url-%d", i))
		return v, nil
	})
	done := make(chan error, 1)
	go func() {
		done <- Drain(stalled, func(i, v int) error { return nil })
	}()
	time.Sleep(50 * time.Millisecond)
	bound := int64(4*workers + 4*depth + 8)
	if got := sourced.Load(); got > bound {
		t.Fatalf("stalled fetch let %d items through the source; bound is %d", got, bound)
	}
	cancel()
	close(gate) // the blackout ends; in-flight calls return
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("drain returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline failed to drain after cancellation")
	}
}
