package pipe

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"freephish/internal/obs"
)

// runSweepCase pushes n items through a two-stage pipeline with
// completion-order jitter and returns the ordered drain output.
func runSweepCase(t *testing.T, n, workers, depth int) []int {
	t.Helper()
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	p := New(context.Background(), Options{Name: "sweep"})
	src := Source(p, depth, items)
	// Stagger completion so later items routinely finish before earlier
	// ones and the reorder buffer has real work to do.
	st1 := Stage(src, "square", workers, depth, func(i, v int) (int, error) {
		if i%5 == 0 {
			time.Sleep(time.Duration(i%4) * 100 * time.Microsecond)
		}
		return v * v, nil
	})
	st2 := Stage(st1, "negate", workers, depth, func(i, v int) (int, error) {
		if i%7 == 0 {
			time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
		}
		return -v, nil
	})
	out, err := Collect(st2)
	if err != nil {
		t.Fatalf("workers=%d depth=%d: %v", workers, depth, err)
	}
	return out
}

// TestDeterminismSweep is the engine's core contract: the same input
// through every (workers, queue-depth) combination produces the identical
// ordered output.
func TestDeterminismSweep(t *testing.T) {
	const n = 300
	want := make([]int, n)
	for i := range want {
		want[i] = -(i * i)
	}
	for _, workers := range []int{1, 2, 8} {
		for _, depth := range []int{1, 4, 64} {
			got := runSweepCase(t, n, workers, depth)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d depth=%d: output diverges from sequential order", workers, depth)
			}
		}
	}
}

func TestFailFastLowestIndexError(t *testing.T) {
	items := make([]int, 128)
	p := New(context.Background(), Options{})
	src := Source(p, 4, items)
	st := Stage(src, "work", 8, 4, func(i, v int) (int, error) {
		if i == 17 || i == 90 {
			return 0, fmt.Errorf("item %d failed", i)
		}
		return i, nil
	})
	applied := 0
	err := Drain(st, func(i, v int) error {
		applied++
		return nil
	})
	if err == nil || err.Error() != "item 17 failed" {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
	// Fail-fast: everything before the failed item was applied, nothing at
	// or after it.
	if applied != 17 {
		t.Fatalf("applied %d items, want exactly the 17 preceding the failure", applied)
	}
}

func TestContinueOnErrorAttemptsAll(t *testing.T) {
	items := make([]int, 64)
	var attempts atomic.Int64
	p := New(context.Background(), Options{ContinueOnError: true})
	src := Source(p, 4, items)
	st := Stage(src, "work", 4, 4, func(i, v int) (int, error) {
		attempts.Add(1)
		if i == 9 || i == 41 {
			return -1, fmt.Errorf("item %d failed", i)
		}
		return i, nil
	})
	out, err := Collect(st)
	if err == nil || err.Error() != "item 9 failed" {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
	if got := attempts.Load(); got != 64 {
		t.Fatalf("attempted %d items, want all 64", got)
	}
	if len(out) != 64 || out[40] != 40 || out[63] != 63 || out[9] != -1 {
		t.Fatalf("continue-on-error results corrupted: len=%d", len(out))
	}
}

func TestSinkErrorCancelsUpstream(t *testing.T) {
	var produced atomic.Int64
	p := New(context.Background(), Options{})
	src := Range(p, 2, 100000)
	st := Stage(src, "work", 2, 2, func(i, v int) (int, error) {
		produced.Add(1)
		return v, nil
	})
	wantErr := errors.New("sink rejects item 5")
	err := Drain(st, func(i, v int) error {
		if i == 5 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	// The source must have stopped near the failure, not run to 100k.
	if got := produced.Load(); got > 64 {
		t.Fatalf("upstream produced %d items after a sink error at 5", got)
	}
}

func TestWorkerPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Value != "boom" {
			t.Fatalf("panic value = %v, want boom", pe.Value)
		}
	}()
	p := New(context.Background(), Options{})
	src := Range(p, 4, 64)
	st := Stage(src, "work", 4, 4, func(i, v int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return v, nil
	})
	_, _ = Collect(st)
}

func TestExternalCancelDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	p := New(ctx, Options{})
	src := Range(p, 2, 10000)
	st := Stage(src, "stall", 2, 2, func(i, v int) (int, error) {
		if i == 3 {
			<-release // stalls until cancellation
		}
		return v, nil
	})
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
		close(release)
	}()
	err := Drain(st, func(i, v int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStalledStageBackpressures proves the bounded-memory half of the
// design: with the head-of-line item stalled in the middle stage, the
// source may run at most (stage workers + queues + reorder window) ahead —
// never the whole input.
func TestStalledStageBackpressures(t *testing.T) {
	const n, workers, depth = 100000, 4, 8
	var pulled atomic.Int64
	release := make(chan struct{})
	p := New(context.Background(), Options{})
	src := Range(p, depth, n)
	counted := Stage(src, "count", 1, depth, func(i, v int) (int, error) {
		pulled.Add(1)
		return v, nil
	})
	stalled := Stage(counted, "stall", workers, depth, func(i, v int) (int, error) {
		if i == 0 {
			<-release
		}
		return v, nil
	})
	done := make(chan error, 1)
	go func() {
		done <- Drain(stalled, func(i, v int) error { return nil })
	}()
	time.Sleep(50 * time.Millisecond)
	// Upper bound on how far the flow can advance past a stalled head:
	// every queue full plus every worker and reorder slot occupied.
	bound := int64(4*workers + 4*depth + 8)
	if got := pulled.Load(); got > bound {
		t.Fatalf("stalled pipeline pulled %d items; backpressure bound is %d", got, bound)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	if got := pulled.Load(); got != n {
		t.Fatalf("only %d/%d items flowed after release", got, n)
	}
}

func TestNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		p := New(context.Background(), Options{})
		src := Range(p, 4, 50)
		st := Stage(src, "work", 8, 4, func(i, v int) (int, error) {
			if i%13 == 0 {
				return 0, errors.New("planned failure")
			}
			return v, nil
		})
		if err := Drain(st, func(int, int) error { return nil }); err == nil {
			t.Fatal("expected an error")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: started with %d, now %d", base, runtime.NumGoroutine())
}

func TestStageMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(context.Background(), Options{Name: "poll", Registry: reg})
	src := Source(p, 4, []int{1, 2, 3, 4, 5})
	st := Stage(src, "fetch", 2, 4, func(i, v int) (int, error) {
		if i == 2 {
			return 0, errors.New("one failure")
		}
		return v, nil
	})
	p2 := Stage(st, "classify", 2, 4, func(i, v int) (int, error) { return v, nil })
	// ContinueOnError keeps the failed item flowing so counts are exact.
	p.continueOnError = true
	if _, err := Collect(p2); err == nil {
		t.Fatal("expected the injected failure")
	}
	snap := map[string]float64{}
	for _, s := range reg.Snapshot() {
		snap[s.Name+"|"+s.Labels["pipe"]+"|"+s.Labels["stage"]] += s.Value
	}
	if got := snap["freephish_pipe_items_total|poll|fetch"]; got != 5 {
		t.Fatalf("fetch items_total = %v, want 5 (snapshot: %v)", got, snap)
	}
	if got := snap["freephish_pipe_errors_total|poll|fetch"]; got != 1 {
		t.Fatalf("fetch errors_total = %v, want 1", got)
	}
	// The failed item skips the downstream stage's fn.
	if got := snap["freephish_pipe_items_total|poll|classify"]; got != 4 {
		t.Fatalf("classify items_total = %v, want 4", got)
	}
}

func TestDepthAndWorkerResolution(t *testing.T) {
	if DepthOrDefault(0) != DefaultDepth || DepthOrDefault(-2) != DefaultDepth || DepthOrDefault(3) != 3 {
		t.Fatal("DepthOrDefault broken")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(5) != 5 {
		t.Fatal("Workers broken")
	}
}

// TestOnEmitOrderedPerStage is the hook contract behind lifecycle tracing:
// OnEmit fires once per item per stage in input order within each stage
// (stages interleave freely), carries the item's error, and the drain
// point reports under stage "drain". With the hook unset nothing extra
// runs at all.
func TestOnEmitOrderedPerStage(t *testing.T) {
	const n = 200
	type emit struct {
		stage string
		seq   int
		err   error
	}
	var mu sync.Mutex
	perStage := map[string][]emit{}
	p := New(context.Background(), Options{
		Name:            "traced",
		ContinueOnError: true,
		OnEmit: func(stage string, seq int, err error) {
			mu.Lock()
			perStage[stage] = append(perStage[stage], emit{stage, seq, err})
			mu.Unlock()
		},
	})
	wantErr := errors.New("boom")
	src := Range(p, 4, n)
	st1 := Stage(src, "a", 8, 4, func(i, v int) (int, error) {
		if i%5 == 0 {
			time.Sleep(time.Duration(i%4) * 50 * time.Microsecond)
		}
		if i == 17 {
			return 0, wantErr
		}
		return v, nil
	})
	st2 := Stage(st1, "b", 8, 4, func(i, v int) (int, error) { return v, nil })
	if err := Drain(st2, func(i, v int) error { return nil }); !errors.Is(err, wantErr) {
		t.Fatalf("Drain = %v, want the injected error", err)
	}

	for _, stage := range []string{"a", "b", "drain"} {
		emits := perStage[stage]
		if len(emits) != n {
			t.Fatalf("stage %q emitted %d times, want %d", stage, len(emits), n)
		}
		for i, e := range emits {
			if e.seq != i {
				t.Fatalf("stage %q emission %d has seq %d: OnEmit must follow input order", stage, i, e.seq)
			}
			if (e.seq == 17) != (e.err != nil) {
				t.Fatalf("stage %q seq %d err = %v", stage, e.seq, e.err)
			}
		}
	}
}
