// Package pipe is the repository's staged-dataflow engine: pipelines
// composed of stages connected by bounded channels, each stage running its
// own worker pool, with a sequence-numbered reorder buffer so results are
// emitted downstream in input order the moment the head-of-line item
// completes. Item i+k can still be in flight while a downstream consumer
// is already applying item i — the property that turns the per-cycle batch
// barrier of the old par.MapOrdered-then-apply loop into a stream whose
// memory is bounded by (workers + queue depth), never by input size.
//
// The engine carries the repository's established concurrency contracts,
// inherited from internal/par (which is now the single-stage degenerate
// case of this package):
//
//   - Determinism: the output order is the input order at every (workers,
//     queue-depth) setting. Parallelism trades wall-clock for cores and
//     changes nothing observable.
//   - Lowest-index error: the error returned by Drain/Collect is the one
//     the equivalent sequential loop would have hit first. In the default
//     fail-fast mode the pipeline cancels as soon as the ordered drain
//     point reaches a failed item; with Options.ContinueOnError every item
//     is still attempted (the par.MapOrdered contract) and the lowest-index
//     error is reported after the fact.
//   - Panic propagation: a panicking worker cancels the pipeline, all
//     goroutines drain (no leaks), and the lowest-index panic is re-raised
//     on the draining goroutine wrapped in *PanicError.
//   - Cancellation: cancelling the context passed to New stops every stage;
//     Drain returns the context's error after a graceful drain.
//
// When Options.Registry is set, every stage auto-registers its
// freephish_pipe_* instruments: queue depth, worker occupancy, per-item
// stage latency, and item/error counters, labeled by (pipe, stage).
package pipe

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"freephish/internal/obs"
)

// DefaultDepth is the per-stage queue bound used when a depth knob is left
// at zero. Deep enough to keep worker pools busy across stage-latency
// jitter, small enough that a cycle's in-flight memory stays trivial.
const DefaultDepth = 16

// DepthOrDefault resolves a queue-depth knob: n itself when positive,
// otherwise DefaultDepth. Every QueueDepth option in the repository routes
// through this, so "0 = default" is uniform.
func DepthOrDefault(n int) int {
	if n > 0 {
		return n
	}
	return DefaultDepth
}

// Workers resolves a worker-count knob: n itself when positive, otherwise
// runtime.GOMAXPROCS(0). internal/par's N delegates here.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a value recovered from a stage-worker panic so it can
// be re-raised on the draining goroutine with the worker's stack attached.
// internal/par's PanicError is an alias of this type.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("pipe: worker panic: %v\n%s", p.Value, p.Stack)
}

// Options parameterizes a Pipeline.
type Options struct {
	// Name labels the pipeline's metrics ("pipe" when empty).
	Name string
	// Registry, when non-nil, auto-registers per-stage freephish_pipe_*
	// instruments (queue depth, occupancy, latency, items, errors).
	Registry *obs.Registry
	// ContinueOnError selects the par.MapOrdered error contract: every
	// item is attempted even when some fail, failed items keep flowing
	// (carrying their error and whatever value the stage returned), and
	// Drain reports the lowest-index error at the end. The default is
	// fail-fast: the pipeline cancels when the ordered drain point reaches
	// the first failed item — exactly where a sequential loop would stop.
	ContinueOnError bool
	// OnEmit, when non-nil, observes every in-order emission: it fires on
	// each stage's reorder-buffer output (so per-stage calls arrive in
	// input order) and at the drain point with stage "drain". Stages emit
	// concurrently with each other, so calls for different stages
	// interleave nondeterministically — OnEmit feeds operational tracing
	// (the obs journal's ring), never canonical output. It must be safe
	// for concurrent use and cheap: it runs on the emitter goroutines.
	OnEmit func(stage string, seq int, err error)
}

// Pipeline is one dataflow instance: the shared control plane every stage
// of a Source → Stage… → Drain chain hangs off. Build one per run with
// New; a Pipeline is single-use (one source, one drain).
type Pipeline struct {
	name            string
	parent          context.Context
	ctx             context.Context
	cancel          context.CancelFunc
	reg             *obs.Registry
	continueOnError bool
	onEmit          func(stage string, seq int, err error)
	wg              sync.WaitGroup

	mu     sync.Mutex
	panics []seqPanic
}

type seqPanic struct {
	seq int
	err *PanicError
}

// New returns an empty pipeline. Cancelling ctx stops every stage; pass
// context.Background() for a pipeline only its drain point terminates.
func New(ctx context.Context, opts Options) *Pipeline {
	if ctx == nil {
		ctx = context.Background()
	}
	name := opts.Name
	if name == "" {
		name = "pipe"
	}
	derived, cancel := context.WithCancel(ctx)
	return &Pipeline{
		name:            name,
		parent:          ctx,
		ctx:             derived,
		cancel:          cancel,
		reg:             opts.Registry,
		continueOnError: opts.ContinueOnError,
		onEmit:          opts.OnEmit,
	}
}

// goRun tracks a pipeline goroutine so Drain can join everything before
// returning — the no-leak half of the panic/cancel contract.
func (p *Pipeline) goRun(fn func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		fn()
	}()
}

// recordPanic notes a worker panic and cancels the pipeline: queued work
// is skipped, in-flight work drains, and the lowest-index panic is
// re-raised at the drain point.
func (p *Pipeline) recordPanic(seq int, pe *PanicError) {
	p.mu.Lock()
	p.panics = append(p.panics, seqPanic{seq: seq, err: pe})
	p.mu.Unlock()
	p.cancel()
}

// lowestPanic returns the recorded panic with the smallest sequence
// number, or nil. Only meaningful after the pipeline's goroutines joined.
func (p *Pipeline) lowestPanic() *PanicError {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *PanicError
	bestSeq := -1
	for _, sp := range p.panics {
		if bestSeq < 0 || sp.seq < bestSeq {
			bestSeq, best = sp.seq, sp.err
		}
	}
	return best
}

// item is one sequence-numbered unit of flow. err carries the first stage
// failure the item hit; later stages pass failed items through untouched
// so ordering (and lowest-index error selection) is preserved.
type item[T any] struct {
	seq int
	val T
	err error
}

// Flow is a typed edge between stages: a bounded channel of sequenced
// items plus the owning pipeline.
type Flow[T any] struct {
	p     *Pipeline
	ch    chan item[T]
	depth *obs.Gauge // queue occupancy of ch; nil without a registry
}

func newFlow[T any](p *Pipeline, stage string, depth int) *Flow[T] {
	f := &Flow[T]{p: p, ch: make(chan item[T], DepthOrDefault(depth))}
	if p.reg != nil {
		f.depth = p.reg.GaugeVec("freephish_pipe_queue_depth",
			"Items buffered in the stage's output queue.", "pipe", "stage").
			With(p.name, stage)
	}
	return f
}

// send delivers an item downstream, honoring cancellation. It reports
// false when the pipeline stopped.
func (f *Flow[T]) send(it item[T]) bool {
	select {
	case f.ch <- it:
		if f.depth != nil {
			f.depth.Set(float64(len(f.ch)))
		}
		return true
	case <-f.p.ctx.Done():
		return false
	}
}

// recv takes the next item, honoring cancellation. ok is false when the
// flow is exhausted or the pipeline stopped.
func (f *Flow[T]) recv() (it item[T], ok bool) {
	select {
	case it, ok = <-f.ch:
		if ok && f.depth != nil {
			f.depth.Set(float64(len(f.ch)))
		}
		return it, ok
	case <-f.p.ctx.Done():
		return item[T]{}, false
	}
}

// Source feeds a slice into the pipeline, one sequence number per element
// starting at 0, through a queue of the given depth (0 = DefaultDepth).
func Source[T any](p *Pipeline, depth int, items []T) *Flow[T] {
	f := newFlow[T](p, "source", depth)
	p.goRun(func() {
		defer close(f.ch)
		for i, v := range items {
			if !f.send(item[T]{seq: i, val: v}) {
				return
			}
		}
	})
	return f
}

// Range feeds the integers [0, n) into the pipeline — the index-space
// source par.Do is built on.
func Range(p *Pipeline, depth, n int) *Flow[int] {
	f := newFlow[int](p, "source", depth)
	p.goRun(func() {
		defer close(f.ch)
		for i := 0; i < n; i++ {
			if !f.send(item[int]{seq: i, val: i}) {
				return
			}
		}
	})
	return f
}

// stageInstruments bundles one stage's auto-registered metrics.
type stageInstruments struct {
	occupancy *obs.Gauge
	latency   *obs.Histogram
	items     *obs.Counter
	errors    *obs.Counter
}

func (p *Pipeline) instruments(stage string) *stageInstruments {
	if p.reg == nil {
		return nil
	}
	return &stageInstruments{
		occupancy: p.reg.GaugeVec("freephish_pipe_occupancy",
			"Stage workers currently executing an item.", "pipe", "stage").
			With(p.name, stage),
		latency: p.reg.HistogramVec("freephish_pipe_stage_seconds",
			"Per-item stage latency.", nil, "pipe", "stage").
			With(p.name, stage),
		items: p.reg.CounterVec("freephish_pipe_items_total",
			"Items the stage finished processing.", "pipe", "stage").
			With(p.name, stage),
		errors: p.reg.CounterVec("freephish_pipe_errors_total",
			"Items whose stage function returned an error.", "pipe", "stage").
			With(p.name, stage),
	}
}

// Stage attaches a worker pool of the given size (0 = one per CPU) that
// applies fn to every item of in and emits results downstream in input
// order through a queue of the given depth (0 = DefaultDepth). Workers
// receive items in input order and complete out of order; the reorder
// buffer re-sequences them, holding at most (workers + queue depth) items,
// so a slow item stalls emission but never unbounded memory. Items that
// already failed an earlier stage skip fn and pass through, preserving
// order and lowest-index error selection. fn runs concurrently with other
// items — it must only touch thread-safe or read-only state.
func Stage[In, Out any](in *Flow[In], stage string, workers, depth int, fn func(i int, v In) (Out, error)) *Flow[Out] {
	p := in.p
	w := Workers(workers)
	out := newFlow[Out](p, stage, depth)
	inst := p.instruments(stage)
	// results is the unordered fan-in edge between the workers and the
	// reorder buffer.
	results := make(chan item[Out], w)
	// credits bound the reorder window: a worker takes a credit before
	// pulling an item and the emitter returns it when the item leaves in
	// order, so at most (workers + queue depth) pulled-but-unemitted items
	// ever exist — this is what keeps a stalled head-of-line item from
	// buffering the whole input. The credit must be acquired BEFORE recv:
	// the input channel is FIFO, so whichever worker holds the head item
	// already holds a credit and the window cannot deadlock.
	window := w + DepthOrDefault(depth)
	credits := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		credits <- struct{}{}
	}
	var workersDone sync.WaitGroup
	for g := 0; g < w; g++ {
		workersDone.Add(1)
		p.goRun(func() {
			defer workersDone.Done()
			for {
				select {
				case <-credits:
				case <-p.ctx.Done():
					return
				}
				it, ok := in.recv()
				if !ok {
					return
				}
				o := item[Out]{seq: it.seq, err: it.err}
				if it.err == nil {
					o.val, o.err = runItem(p, inst, it.seq, it.val, fn)
				}
				select {
				case results <- o:
				case <-p.ctx.Done():
					return
				}
			}
		})
	}
	p.goRun(func() {
		workersDone.Wait()
		close(results)
	})
	// The reorder emitter: buffer out-of-order completions, emit the head
	// of line the moment it lands.
	p.goRun(func() {
		defer close(out.ch)
		buf := make(map[int]item[Out], w)
		next := 0
		for {
			it, ok := <-results
			if !ok {
				break
			}
			buf[it.seq] = it
			for {
				head, exists := buf[next]
				if !exists {
					break
				}
				delete(buf, next)
				if !out.send(head) {
					return
				}
				if p.onEmit != nil {
					p.onEmit(stage, head.seq, head.err)
				}
				credits <- struct{}{}
				next++
			}
		}
		// Input exhausted. Flush any buffered stragglers in sequence
		// order; gaps can exist only after a panic or cancellation, and
		// the drain point stops at the first one.
		rest := make([]int, 0, len(buf))
		for seq := range buf {
			rest = append(rest, seq)
		}
		sort.Ints(rest)
		for _, seq := range rest {
			if !out.send(buf[seq]) {
				return
			}
			if p.onEmit != nil {
				p.onEmit(stage, seq, buf[seq].err)
			}
		}
	})
	return out
}

// runItem executes fn for one item under the panic guard, with the
// stage's instruments around it.
func runItem[In, Out any](p *Pipeline, inst *stageInstruments, seq int, v In, fn func(i int, v In) (Out, error)) (out Out, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			p.recordPanic(seq, &PanicError{Value: r, Stack: buf})
			err = p.ctx.Err()
		}
	}()
	if p.ctx.Err() != nil {
		return out, p.ctx.Err()
	}
	if inst == nil {
		return fn(seq, v)
	}
	inst.occupancy.Add(1)
	start := time.Now()
	out, err = fn(seq, v)
	inst.latency.Observe(time.Since(start).Seconds())
	inst.occupancy.Add(-1)
	inst.items.Inc()
	if err != nil {
		inst.errors.Inc()
	}
	return out, err
}

// Drain is the pipeline's ordered sink: it consumes the flow in input
// order, applying fn sequentially — the stage where stateful effects
// belong. In fail-fast mode the first failed item (or fn error) cancels
// the pipeline and is returned; with ContinueOnError every item reaches
// fn and the lowest-index error is returned at the end. Drain blocks
// until every pipeline goroutine has exited, re-raises the lowest-index
// worker panic if one occurred, and otherwise returns the context's error
// when the pipeline was cancelled externally.
func Drain[T any](f *Flow[T], fn func(i int, v T) error) error {
	p := f.p
	var firstErr error
	next := 0
loop:
	for {
		it, ok := f.recv()
		if !ok {
			break
		}
		if it.seq != next {
			// A gap means an upstream abort (panic or cancellation)
			// swallowed an item; the sequential loop would have stopped
			// there, so stop applying here.
			break
		}
		next++
		if p.onEmit != nil {
			p.onEmit("drain", it.seq, it.err)
		}
		switch {
		case it.err != nil && !p.continueOnError:
			firstErr = it.err
			break loop
		case it.err != nil:
			if firstErr == nil {
				firstErr = it.err
			}
			// The par.MapOrdered contract: the collector still sees the
			// value the stage returned alongside the error. An fn error
			// here is subordinate — the item's stage error came first.
			_ = fn(it.seq, it.val)
		default:
			if err := fn(it.seq, it.val); err != nil {
				if !p.continueOnError {
					firstErr = err
					break loop
				}
				if firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	p.cancel()
	p.wg.Wait()
	if pe := p.lowestPanic(); pe != nil {
		panic(pe)
	}
	if firstErr != nil {
		return firstErr
	}
	return p.parent.Err()
}

// Collect drains the flow into a slice, preserving input order.
func Collect[T any](f *Flow[T]) ([]T, error) {
	var out []T
	err := Drain(f, func(i int, v T) error {
		out = append(out, v)
		return nil
	})
	return out, err
}
