// Package core wires the FreePhish framework together (Figure 4): the
// streaming module polls the simulated Twitter/Facebook APIs every 10
// minutes, the pre-processing module snapshots each shared website over
// HTTP and extracts its features, the classification module runs the
// augmented stacking model, the reporting module discloses confirmed
// attacks to the hosting FWB, and the analysis module longitudinally
// records how every anti-phishing entity responds. It also contains the
// six-month measurement-study driver behind Tables 3–4 and Figures 5–9 and
// the 2020–2022 historical study behind Figure 1.
package core

import (
	"fmt"
	"log/slog"
	"math"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/baselines"
	"freephish/internal/blocklist"
	"freephish/internal/crawler"
	"freephish/internal/ctlog"
	"freephish/internal/features"
	"freephish/internal/fwb"
	"freephish/internal/obs"
	"freephish/internal/par"
	"freephish/internal/report"
	"freephish/internal/simclock"
	"freephish/internal/social"
	"freephish/internal/threat"
	"freephish/internal/vtsim"
	"freephish/internal/webgen"
	"freephish/internal/whois"
)

// Config parameterizes a measurement study. The defaults reproduce the
// paper's six-month run; Scale shrinks every population proportionally for
// fast experimentation.
type Config struct {
	Seed  int64
	Epoch time.Time
	// Duration of the measurement window (paper: six months).
	Duration time.Duration
	// Population sizes at Scale 1.0 (paper: 19,724 + 11,681 FWB URLs and a
	// matched self-hosted sample with the same platform split).
	FWBTwitter   int
	FWBFacebook  int
	SelfTwitter  int
	SelfFacebook int
	// BenignPerPhish is the ratio of benign FWB posts mixed into the
	// stream — the noise the classifier must reject in the wild.
	BenignPerPhish float64
	// Scale in (0, 1] multiplies every population.
	Scale float64
	// PollInterval is the streaming module's cadence (paper: 10 minutes).
	PollInterval time.Duration
	// TrainPerClass is the ground-truth corpus size per class (paper:
	// 4,656 manually verified per class).
	TrainPerClass int
	// GrowthExponent >1 makes the posting rate rise over the window,
	// matching the upward trend of Figure 1.
	GrowthExponent float64
	// MonitorInterval, when non-zero, enables the §4.4 active monitor:
	// every flagged URL is re-probed over HTTP and checked against the
	// blocklist lookup APIs at this cadence for a week. The paper uses 10
	// minutes; 6h keeps full-scale runs tractable.
	MonitorInterval time.Duration
	// ReshareRate is the expected number of additional posts re-sharing
	// each phishing URL (retweets/cross-posts). The analysis keys on a
	// URL's FIRST appearance, so reshares exercise the dedup path without
	// inflating the record set.
	ReshareRate float64
	// Registry receives the run's metrics. nil gives each FreePhish a
	// private registry, so concurrent studies never collide; pass a
	// shared registry to expose the run on a daemon's /metrics endpoint.
	Registry *obs.Registry
	// Progress, when set, is invoked after every poll cycle — the hook
	// long study runs narrate themselves through.
	Progress func(ProgressEvent)
	// Logger, when set, receives structured "poll cycle" events every
	// LogEvery cycles (default: one simulated day's worth of polls).
	Logger *slog.Logger
	// LogEvery is the poll-cycle stride between Logger events.
	LogEvery int
	// PollQuota, when > 0, installs an API rate limiter on the poller:
	// a bucket of PollQuota requests refilled at PollQuotaRate per
	// second of simulated time. Zero disables limiting (the default).
	PollQuota     int
	PollQuotaRate float64
	// Workers bounds the pipeline's probe pool (snapshot + feature
	// extraction + inference run concurrently across a cycle's fresh URLs)
	// and the trainers' parallelism; 0 means runtime.GOMAXPROCS(0). Every
	// study output is bit-identical at every setting: probes are pure, and
	// all stateful effects — stats, RNG draws, reporting, record admission
	// — are applied single-threaded in stream order (see pollOnce).
	Workers int
	// SnapshotCacheSize bounds the crawler's parsed-snapshot LRU; 0 means
	// crawler.DefaultSnapshotCacheSize, negative disables the cache.
	SnapshotCacheSize int
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Epoch:          time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC),
		Duration:       182 * 24 * time.Hour,
		FWBTwitter:     19724,
		FWBFacebook:    11681,
		SelfTwitter:    19724,
		SelfFacebook:   11681,
		BenignPerPhish: 0.5,
		Scale:          1.0,
		PollInterval:   10 * time.Minute,
		TrainPerClass:  4656,
		GrowthExponent: 1.6,
		ReshareRate:    0.4,
	}
}

// scaled applies Scale to a population.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Stats are the framework's operational counters.
type Stats struct {
	Polls          int
	PostsSeen      int
	URLsScanned    int
	FlaggedFWB     int
	FlaggedSelf    int
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	ReportsSent    int
}

// FreePhish is the assembled framework plus its simulated world.
type FreePhish struct {
	Config Config
	Clock  *simclock.Clock
	Whois  *whois.DB
	CT     *ctlog.Log
	Host   *fwb.Host
	Gen    *webgen.Generator

	Networks   map[threat.Platform]*social.Network
	Model      *baselines.StackDetector // augmented FreePhish classifier
	BaseModel  *baselines.StackDetector // base StackModel (self-hosted cohort)
	Entities   []*blocklist.Entity
	Scanner    *vtsim.Scanner
	Moderation map[threat.Platform]*social.Moderation
	Reporter   *report.Reporter
	Study      *analysis.Study
	Stats      Stats
	// Metrics is the run's observability surface: every pipeline stage
	// reports into its registry and tracer (see metrics.go).
	Metrics *Metrics
	// Feeds are the blocklists' queryable lookup APIs, populated as
	// entities detect URLs during the run.
	Feeds map[string]*blocklist.Feed
	// Observations holds the active monitor's per-URL findings, keyed by
	// URL (populated only when Config.MonitorInterval > 0).
	Observations map[string]*Observation
	// seenURLs dedups the stream: a URL enters the study at its first
	// appearance only, no matter how many posts re-share it.
	seenURLs map[string]bool

	fetcher     *crawler.Fetcher
	poller      *crawler.Poller
	snapCache   *crawler.SnapshotCache
	servers     []*webServer
	feedClients map[string]*blocklist.Client
	runStart    time.Time

	assessRNG *simclock.RNG
	worldRNG  *simclock.RNG
}

// New assembles the framework and its world. Call Train before Run, or let
// Run train lazily.
func New(cfg Config) *FreePhish {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Minute
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.GrowthExponent <= 0 {
		cfg.GrowthExponent = 1.6
	}
	clock := simclock.New(cfg.Epoch)
	f := &FreePhish{
		Config:     cfg,
		Clock:      clock,
		Whois:      &whois.DB{},
		CT:         &ctlog.Log{},
		Study:      &analysis.Study{},
		Entities:   blocklist.Standard(),
		Scanner:    vtsim.NewScanner(),
		Moderation: social.StandardModeration(),
		Reporter:   report.NewReporter(cfg.Seed),
		assessRNG:  simclock.NewRNG(cfg.Seed, "core.assess"),
		worldRNG:   simclock.NewRNG(cfg.Seed, "core.world"),
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f.Metrics = newMetrics(reg, clock.Now, cfg.Epoch)
	f.Observations = make(map[string]*Observation)
	f.seenURLs = make(map[string]bool)
	f.Feeds = make(map[string]*blocklist.Feed, len(f.Entities))
	for _, e := range f.Entities {
		f.Feeds[e.Name] = blocklist.NewFeed(e.Name, clock.Now)
	}
	f.Host = fwb.NewHost(clock.Now)
	f.Gen = webgen.NewGenerator(cfg.Seed, f.Whois, f.CT)
	f.Gen.RegisterInfrastructure(cfg.Epoch)
	// Host the second-stage pages behind two-step/iframe attacks so the
	// full Figure 11 chain is crawlable (name collisions are impossible —
	// slugs carry a generation sequence number).
	f.Gen.OnSecondary = func(site *fwb.Site) { _ = f.Host.Publish(site) }
	f.Networks = map[threat.Platform]*social.Network{
		threat.Twitter:  social.NewNetwork(threat.Twitter, clock.Now),
		threat.Facebook: social.NewNetwork(threat.Facebook, clock.Now),
	}
	return f
}

// Train builds the ground-truth corpus (§4.2) and fits both the augmented
// FreePhish model and the base StackModel used to select the self-hosted
// comparison cohort.
func (f *FreePhish) Train() error {
	n := f.Config.scaled(f.Config.TrainPerClass)
	if n < 40 {
		n = 40
	}
	var fwbSamples, selfSamples []baselines.LabeledPage
	for i := 0; i < n; i++ {
		p := f.Gen.PhishingFWBSite(f.Gen.PickService(), f.Config.Epoch)
		fwbSamples = append(fwbSamples, baselines.LabeledPage{
			Page: features.Page{URL: p.URL, HTML: p.HTML}, Label: 1,
		})
		b := f.Gen.BenignFWBSite(f.Gen.PickServiceUniform(), f.Config.Epoch)
		benign := baselines.LabeledPage{Page: features.Page{URL: b.URL, HTML: b.HTML}}
		fwbSamples = append(fwbSamples, benign)

		s, _ := f.Gen.SelfHostedAttack(f.Config.Epoch)
		selfSamples = append(selfSamples, baselines.LabeledPage{
			Page: features.Page{URL: s.URL, HTML: s.HTML}, Label: 1,
		}, benign)
		// Every other benign self-hosted sample keeps the base model from
		// equating own-domain hosting with phishing.
		if i%2 == 0 {
			bs := f.Gen.BenignSelfHosted(f.Config.Epoch)
			selfSamples = append(selfSamples, baselines.LabeledPage{
				Page: features.Page{URL: bs.URL, HTML: bs.HTML},
			})
		}
	}
	f.Model = baselines.NewFreePhishModel(f.Config.Seed)
	f.Model.SetParallelism(f.Config.Workers)
	if err := f.Model.Train(fwbSamples); err != nil {
		return fmt.Errorf("core: train FreePhish model: %w", err)
	}
	f.BaseModel = baselines.NewBaseStackModel(f.Config.Seed)
	f.BaseModel.SetParallelism(f.Config.Workers)
	if err := f.BaseModel.Train(selfSamples); err != nil {
		return fmt.Errorf("core: train base model: %w", err)
	}
	return nil
}

// Run executes the measurement study and returns the analysis record set.
func (f *FreePhish) Run() (*analysis.Study, error) {
	f.runStart = time.Now()
	if f.Model == nil || f.BaseModel == nil {
		sp := f.Metrics.Tracer.Start("train")
		err := f.Train()
		sp.EndErr(err)
		if err != nil {
			return nil, err
		}
	}
	if err := f.startServers(); err != nil {
		return nil, err
	}
	defer f.stopServers()

	f.schedulePosts()
	var pollErr error
	stop := f.Clock.Every(f.Config.PollInterval, f.Config.Epoch.Add(f.Config.Duration), "freephish.poll", func(now time.Time) {
		if pollErr != nil {
			return
		}
		if err := f.pollOnce(now); err != nil {
			pollErr = err
		}
	})
	defer stop()

	// Run the window plus one week of trailing observation.
	f.Clock.RunUntil(f.Config.Epoch.Add(f.Config.Duration + 7*24*time.Hour))
	if pollErr != nil {
		return nil, pollErr
	}
	return f.Study, nil
}

// schedulePosts lays out every attacker and benign posting event across the
// window, with the posting rate rising as t^GrowthExponent.
func (f *FreePhish) schedulePosts() {
	type spec struct {
		platform threat.Platform
		kind     string // "fwb", "self", "benign"
		count    int
	}
	specs := []spec{
		{threat.Twitter, "fwb", f.Config.scaled(f.Config.FWBTwitter)},
		{threat.Facebook, "fwb", f.Config.scaled(f.Config.FWBFacebook)},
		{threat.Twitter, "self", f.Config.scaled(f.Config.SelfTwitter)},
		{threat.Facebook, "self", f.Config.scaled(f.Config.SelfFacebook)},
		{threat.Twitter, "benign", f.Config.scaled(int(float64(f.Config.FWBTwitter) * f.Config.BenignPerPhish))},
		{threat.Facebook, "benign", f.Config.scaled(int(float64(f.Config.FWBFacebook) * f.Config.BenignPerPhish))},
	}
	for _, sp := range specs {
		sp := sp
		for i := 0; i < sp.count; i++ {
			// Inverse-CDF of a rising rate: density ∝ t^(g-1).
			u := (float64(i) + f.worldRNG.Float64()) / float64(sp.count)
			frac := math.Pow(u, 1/f.Config.GrowthExponent)
			at := f.Config.Epoch.Add(time.Duration(frac * float64(f.Config.Duration)))
			f.Clock.Schedule(at, "post."+sp.kind, func(now time.Time) {
				f.createAndPost(sp.platform, sp.kind, now)
			})
		}
	}
}

// createAndPost generates a site, publishes it, and shares it.
func (f *FreePhish) createAndPost(platform threat.Platform, kind string, now time.Time) {
	var site *fwb.Site
	var text string
	switch kind {
	case "fwb":
		site = f.Gen.PhishingFWBSite(f.Gen.PickService(), now)
		text = f.Gen.LureText(site.URL)
	case "self":
		site, _ = f.Gen.SelfHostedAttack(now)
		text = f.Gen.LureText(site.URL)
	default:
		// Benign background noise: mostly FWB sites, with a slice of
		// ordinary self-hosted small-business sites so "own domain" is not
		// a phishing oracle for the base model.
		if f.worldRNG.Bool(0.3) {
			site = f.Gen.BenignSelfHosted(now)
		} else {
			site = f.Gen.BenignFWBSite(f.Gen.PickServiceUniform(), now)
		}
		text = f.Gen.BenignPostText(site.URL)
	}
	if err := f.Host.Publish(site); err != nil {
		// Name collision: drop the event (vanishingly rare).
		return
	}
	f.Networks[platform].Publish(text, now)
	// Reshares: additional posts spread the same URL over the following
	// hours. Only malicious URLs get amplified (lure campaigns repost).
	if kind != "benign" && f.Config.ReshareRate > 0 {
		n := f.worldRNG.Poisson(f.Config.ReshareRate)
		for i := 0; i < n; i++ {
			delay := time.Duration(f.worldRNG.ExpFloat64() * float64(6*time.Hour))
			f.Clock.Schedule(now.Add(delay), "post.reshare", func(at time.Time) {
				f.Networks[platform].Publish(f.Gen.LureText(site.URL), at)
			})
		}
	}
}

// pollOnce is one streaming-module cycle: poll both platforms, snapshot and
// classify every new URL, and register flagged URLs for longitudinal
// observation.
//
// The cycle is a fan-out/fan-in: dedup runs first, single-threaded in
// stream order (so intra-cycle reshares resolve deterministically), then
// the fresh URLs are probed — fetched, feature-extracted, and scored — on
// a bounded worker pool, and finally the probe results are applied
// single-threaded in the original stream order. Probes touch only
// read-only or thread-safe state; every stateful effect, including all
// assessRNG draws, happens in the ordered apply phase, which is what makes
// the study bit-identical at every Config.Workers setting.
func (f *FreePhish) pollOnce(now time.Time) (err error) {
	sp := f.Metrics.Tracer.Start("poll")
	defer func() {
		sp.EndErr(err)
		if err == nil {
			f.observeProgress(now)
		}
	}()
	f.Stats.Polls++
	f.Metrics.Polls.Inc()
	urls, err := f.poller.Poll(now)
	if err != nil {
		return err
	}
	var fresh []crawler.StreamedURL
	for _, su := range urls {
		f.Stats.PostsSeen++
		// First appearance wins: reshared URLs are already in the study (or
		// already rejected) and are not re-fetched.
		if f.seenURLs[su.URL] {
			f.Metrics.URLsDeduped.Inc()
			continue
		}
		f.seenURLs[su.URL] = true
		fresh = append(fresh, su)
	}
	probes, _ := par.MapOrdered(f.workers(), fresh, func(i int, su crawler.StreamedURL) (*probeResult, error) {
		return f.probeURL(su), nil
	})
	for _, p := range probes {
		if err := f.applyProbe(p, now); err != nil {
			return err
		}
	}
	return nil
}

// workers resolves Config.Workers to a concrete pool size.
func (f *FreePhish) workers() int { return par.N(f.Config.Workers) }

// probeResult carries everything a probe learned about one streamed URL
// into the ordered apply phase.
type probeResult struct {
	su     crawler.StreamedURL
	page   features.Page
	status int
	site   *fwb.Site
	isFWB  bool
	cohort string
	score  float64
	err    error // terminal: snapshot or classification failure
}

// probeURL is the parallel half of URL processing: snapshot the page,
// resolve the hosting site, and score it. It must not mutate framework
// state — it runs concurrently with other probes — so it only touches the
// fetcher (whose cache is internally synchronized), the read-locked host
// registry, the trained (read-only) models, and atomic metrics.
func (f *FreePhish) probeURL(su crawler.StreamedURL) *probeResult {
	p := &probeResult{su: su}
	fsp := f.Metrics.Tracer.Start("fetch")
	page, status, err := f.fetcher.Snapshot(su.URL)
	fsp.EndErr(err)
	if err != nil {
		p.err = fmt.Errorf("core: snapshot %q: %w", su.URL, err)
		return p
	}
	p.page, p.status = page, status
	if status != 200 {
		return p // already gone by the time we crawled it
	}
	p.site = f.Host.Lookup(su.URL)
	if p.site == nil {
		return p
	}
	p.isFWB = p.site.Service != nil
	p.cohort = "self-hosted"
	if p.isFWB {
		p.cohort = "fwb"
	}
	csp := f.Metrics.Tracer.Start("classify")
	c0 := time.Now()
	if p.isFWB {
		p.score, err = f.Model.Score(page)
	} else {
		p.score, err = f.BaseModel.Score(page)
	}
	f.Metrics.ClassifySeconds.With(p.cohort).Observe(time.Since(c0).Seconds())
	csp.EndErr(err)
	if err != nil {
		p.err = err
		return p
	}
	f.Metrics.Scores.With(p.cohort).Observe(p.score)
	return p
}

// applyProbe is the sequential half: it consumes one probe in stream order
// and performs every stateful effect — counters, blocklist/VT/moderation
// assessments (all assessRNG draws live here), reporting, and record
// admission. Keeping this single-threaded in input order is the
// determinism contract of the parallel pipeline.
func (f *FreePhish) applyProbe(p *probeResult, now time.Time) error {
	if p.err != nil {
		return p.err
	}
	if p.status != 200 {
		return nil
	}
	f.Stats.URLsScanned++
	if p.site == nil {
		return nil
	}
	su, page, site, isFWB, cohort, score := p.su, p.page, p.site, p.isFWB, p.cohort, p.score
	flagged := score >= 0.5
	truth := site.Kind.IsMalicious()
	switch {
	case flagged && truth:
		f.Stats.TruePositives++
		f.Metrics.Decisions.With(cohort, "tp").Inc()
	case flagged && !truth:
		f.Stats.FalsePositives++
		f.Metrics.Decisions.With(cohort, "fp").Inc()
	case !flagged && truth:
		f.Stats.FalseNegatives++
		f.Metrics.Decisions.With(cohort, "fn").Inc()
	default:
		f.Metrics.Decisions.With(cohort, "tn").Inc()
	}
	// Free the page body: nothing re-fetches a processed site, and the
	// full-scale study would otherwise hold ~100k page bodies in memory.
	site.HTML = ""
	if !flagged {
		return nil
	}
	if isFWB {
		f.Stats.FlaggedFWB++
	} else {
		f.Stats.FlaggedSelf++
	}

	asp := f.Metrics.Tracer.Start("assess")
	target := threat.DeriveFromPage(site, page.HTML, su.At, su.Platform, su.PostID, f.Whois, f.CT, f.assessRNG)
	rec := &analysis.Record{
		Target:          target,
		ClassifierScore: score,
		Classified:      true,
		ClassifiedAt:    now,
		Blocklist:       make(map[string]blocklist.Verdict, len(f.Entities)),
		Signature:       analysis.PageSignature(page.HTML),
	}
	for _, e := range f.Entities {
		v := e.Assess(target, f.assessRNG)
		rec.Blocklist[e.Name] = v
		if v.Detected {
			f.Feeds[e.Name].List(target.URL, v.At)
		}
	}
	rec.VTDetections = f.Scanner.Assess(target, f.assessRNG)
	if removed, at := f.Moderation[su.Platform].Assess(target, f.assessRNG); removed {
		rec.PlatformRemoved = true
		rec.PlatformRemovedAt = at
		f.Metrics.Takedowns.With("platform").Inc()
		if post := f.Networks[su.Platform].Lookup(su.PostID); post != nil {
			post.Remove(at)
		}
	}
	asp.End()
	// Reporting module (§4.3): disclose FWB attacks to the service; the
	// hosting provider handles self-hosted ones. Blocklists are never
	// reported to — that would contaminate the measurement.
	rsp := f.Metrics.Tracer.Start("report")
	var outcome report.Outcome
	var recipient string
	if isFWB {
		outcome = f.Reporter.ReportToFWB(target, now)
		f.Stats.ReportsSent++
		recipient = target.Service.Name
	} else {
		outcome = f.Reporter.SelfHostedTakedown(target)
		recipient = "hosting-provider"
	}
	rsp.End()
	f.Metrics.Reports.With(recipient).Inc()
	if outcome.Acknowledged {
		f.Metrics.ReportAcks.With(recipient).Inc()
	}
	rec.Report = outcome
	if outcome.Removed {
		rec.HostRemoved = true
		rec.HostRemovedAt = outcome.RemovedAt
		site.TakeDown(outcome.RemovedAt, "host")
		f.Metrics.Takedowns.With("host").Inc()
	}
	f.Study.Add(rec)
	f.Metrics.Records.Inc()
	if f.Config.MonitorInterval > 0 {
		f.scheduleMonitor(rec)
	}
	return nil
}
