// Package core wires the FreePhish framework together (Figure 4): the
// streaming module polls the Twitter/Facebook APIs every 10 minutes, the
// pre-processing module snapshots each shared website over HTTP and
// extracts its features, the classification module runs the augmented
// stacking model, the reporting module discloses confirmed attacks to the
// hosting FWB, and the analysis module longitudinally records how every
// anti-phishing entity responds. It also contains the six-month
// measurement-study driver behind Tables 3–4 and Figures 5–9 and the
// 2020–2022 historical study behind Figure 1.
//
// The pipeline touches the outside world only through internal/world's
// ports; Config.Backend selects whether those ports are wired in-process
// or over real HTTP servers. Both backends produce bit-identical studies.
package core

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/baselines"
	"freephish/internal/crawler"
	"freephish/internal/faults"
	"freephish/internal/features"
	"freephish/internal/obs"
	"freephish/internal/pipe"
	"freephish/internal/retry"
	"freephish/internal/simclock"
	"freephish/internal/state"
	"freephish/internal/world"
)

// Config parameterizes a measurement study. The defaults reproduce the
// paper's six-month run; Scale shrinks every population proportionally for
// fast experimentation.
type Config struct {
	Seed  int64
	Epoch time.Time
	// Duration of the measurement window (paper: six months).
	Duration time.Duration
	// Population sizes at Scale 1.0 (paper: 19,724 + 11,681 FWB URLs and a
	// matched self-hosted sample with the same platform split).
	FWBTwitter   int
	FWBFacebook  int
	SelfTwitter  int
	SelfFacebook int
	// BenignPerPhish is the ratio of benign FWB posts mixed into the
	// stream — the noise the classifier must reject in the wild.
	BenignPerPhish float64
	// Scale in (0, 1] multiplies every population.
	Scale float64
	// PollInterval is the streaming module's cadence (paper: 10 minutes).
	PollInterval time.Duration
	// TrainPerClass is the ground-truth corpus size per class (paper:
	// 4,656 manually verified per class).
	TrainPerClass int
	// GrowthExponent >1 makes the posting rate rise over the window,
	// matching the upward trend of Figure 1.
	GrowthExponent float64
	// MonitorInterval, when non-zero, enables the §4.4 active monitor:
	// every flagged URL is re-probed over HTTP and checked against the
	// blocklist lookup APIs at this cadence for a week. The paper uses 10
	// minutes; 6h keeps full-scale runs tractable.
	MonitorInterval time.Duration
	// ReshareRate is the expected number of additional posts re-sharing
	// each phishing URL (retweets/cross-posts). The analysis keys on a
	// URL's FIRST appearance, so reshares exercise the dedup path without
	// inflating the record set.
	ReshareRate float64
	// Registry receives the run's metrics. nil gives each FreePhish a
	// private registry, so concurrent studies never collide; pass a
	// shared registry to expose the run on a daemon's /metrics endpoint.
	Registry *obs.Registry
	// Progress, when set, is invoked after every poll cycle — the hook
	// long study runs narrate themselves through.
	Progress func(ProgressEvent)
	// Logger, when set, receives structured "poll cycle" events every
	// LogEvery cycles (default: one simulated day's worth of polls) and
	// any server-shutdown errors at the end of a run.
	Logger *slog.Logger
	// LogEvery is the poll-cycle stride between Logger events.
	LogEvery int
	// PollQuota, when > 0, installs an API rate limiter on the poller:
	// a bucket of PollQuota requests refilled at PollQuotaRate per
	// second of simulated time. Zero disables limiting (the default).
	PollQuota     int
	PollQuotaRate float64
	// Workers bounds the pipeline's probe pool (snapshot + feature
	// extraction + inference run concurrently across a cycle's fresh URLs)
	// and the trainers' parallelism; 0 means runtime.GOMAXPROCS(0). Every
	// study output is bit-identical at every setting: probes are pure, and
	// all stateful effects — stats, RNG draws, reporting, record admission
	// — are applied single-threaded in stream order (see pollOnce).
	Workers int
	// QueueDepth bounds the streaming pipeline's per-stage queues and the
	// reorder window (see internal/pipe): memory per cycle is O(Workers +
	// QueueDepth), never O(cycle size), and a stalled fetch backpressures
	// the stream instead of buffering it. 0 means pipe.DefaultDepth. Like
	// Workers, the study is bit-identical at every setting.
	QueueDepth int
	// SnapshotCacheSize bounds the crawler's parsed-snapshot LRU; 0 means
	// crawler.DefaultSnapshotCacheSize, negative disables the cache.
	SnapshotCacheSize int
	// Backend selects how the pipeline reaches the world: BackendInproc
	// (the default; handler dispatch, zero sockets) or BackendHTTP (real
	// loopback servers for the web, the platform APIs, the blocklist
	// feeds, and the SimAPI). The study is bit-identical either way.
	Backend string
	// Faults, when non-nil, injects seeded chaos — latency, 5xx bursts,
	// connection resets, corrupted bodies, endpoint blackouts — into every
	// world boundary. The unified retry layer absorbs the default profile
	// completely: the study stays byte-identical to a fault-free run.
	Faults *faults.Profile
	// Journal enables per-URL lifecycle tracing: every URL's transitions
	// (posted → observed-in-CT → polled → fetched → classified → reported
	// → takedown/re-check) are recorded in Metrics.Journal, with the
	// canonical sequence byte-identical across Workers × QueueDepth ×
	// Backend × chaos — the same invariant as the study itself. Off (the
	// default), the hot path pays only nil checks.
	Journal bool
	// JournalRing bounds the journal's in-memory ops/tail ring (0 =
	// obs.DefaultJournalRing). Lifecycle events are retained in full.
	JournalRing int
	// Cascade, when non-nil, enables the tiered classification cascade: a
	// fetch-free URL-lexical triage stage runs ahead of fetch, and URLs
	// with confident lexical verdicts short-circuit without ever being
	// snapshotted (see cascade.go). Like every other scaling knob the
	// study stays byte-identical across Workers × QueueDepth × Backend ×
	// chaos for any fixed threshold pair.
	Cascade *CascadeConfig
	// Shards, when > 1, splits the study across N independent sub-streams:
	// the posting schedule is partitioned by global event ordinal, each
	// shard runs its own full pipeline (clock, world, servers, pipe
	// graphs) over its residue class, and the coordinator merges the
	// shard snapshots (see internal/state) into records, observations,
	// stats, and a canonical journal byte-identical to the 1-shard run.
	// 0 and 1 mean an ordinary single-process study.
	Shards int
	// ShardWorkers lists remote shard-worker endpoints ("host:port" or
	// http:// URLs) the coordinator may dispatch shards to (see
	// dispatch.go). Dispatch goes through the unified retry policy with a
	// per-endpoint circuit breaker; a worker that dies or blacks out fails
	// the shard over — to another worker or to a local child — resuming
	// from the shard's last streamed checkpoint. The study is byte-identical
	// whether shards run locally, remotely, or in any failover mix. Empty
	// (the default) runs every shard in-process.
	ShardWorkers []string
	// CheckpointPath, when non-empty, enables periodic checkpointing: a
	// state.Checkpoint is written atomically (temp file + rename) to this
	// path at ordered-apply boundaries — after a poll cycle or monitor
	// tick, with no other event pending at the same instant — so a killed
	// run resumes from the last cut instead of restarting the window.
	// Not supported with Shards > 1: the shard coordinator streams and
	// adopts per-shard checkpoints itself (see dispatch.go), and an
	// operator file would capture only one shard's slice of the study.
	CheckpointPath string
	// CheckpointEvery is the poll-cycle stride between checkpoints; 0 or 1
	// checkpoints at every eligible boundary. With Shards > 1 it instead
	// sets the stride of the checkpoints each shard streams back to the
	// coordinator for failover adoption (default: one simulated day).
	CheckpointEvery int
	// Resume, when non-nil, resumes the study from a checkpoint instead of
	// starting at the epoch: the posting schedule replays deterministically
	// to the checkpoint instant, recorded outcomes are re-applied to the
	// world, and the state, journal, cursors, and in-flight monitor
	// schedules are restored (see checkpoint.go). The checkpoint's config
	// fingerprint must match this Config or Run fails loudly. The resumed
	// run's records, journal, and stats are byte-identical to the
	// uninterrupted run's.
	Resume *state.Checkpoint
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Epoch:          time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC),
		Duration:       182 * 24 * time.Hour,
		FWBTwitter:     19724,
		FWBFacebook:    11681,
		SelfTwitter:    19724,
		SelfFacebook:   11681,
		BenignPerPhish: 0.5,
		Scale:          1.0,
		PollInterval:   10 * time.Minute,
		TrainPerClass:  4656,
		GrowthExponent: 1.6,
		ReshareRate:    0.4,
		Backend:        BackendInproc,
	}
}

// scaled applies Scale to a population.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Stats are the framework's operational counters. They live in
// internal/state (the mergeable study-state layer); the alias keeps the
// historical core.Stats name working for renderers and callers.
type Stats = state.Stats

// Observation is what the active monitor saw for one URL (aliased from
// internal/state, which owns all study-state mutation).
type Observation = state.Observation

// FreePhish is the assembled framework plus its simulated world.
type FreePhish struct {
	Config Config
	Clock  *simclock.Clock
	// Sim is the simulated world substrate. It always lives in-process —
	// Config.Backend only selects whether the pipeline reaches it through
	// direct calls or through its HTTP servers.
	Sim *world.Sim

	Model     *baselines.StackDetector // augmented FreePhish classifier
	BaseModel *baselines.StackDetector // base StackModel (self-hosted cohort)
	// Lexical is the cascade's URL-only triage scorer, trained alongside
	// the full models when Config.Cascade is set (nil otherwise).
	Lexical *baselines.LexicalScorer
	// State is the run's mutable outcome — counters, record set, monitor
	// observations, and the stream dedup set. Every stateful effect goes
	// through its apply points (internal/state owns the mutation surface);
	// read results through the Stats/Study/Observations methods.
	State *state.StudyState
	// Metrics is the run's observability surface: every pipeline stage
	// reports into its registry and tracer (see metrics.go).
	Metrics *Metrics

	// world is the backend-selected port set the pipeline consumes.
	world world.World
	// eval is the harness-side evaluation component — the only consumer
	// of ground-truth labels (via the oracle port).
	eval *evaluator

	fetcher   *crawler.Fetcher
	poller    *crawler.Poller
	snapCache *crawler.SnapshotCache
	servers   []*webServer
	runStart  time.Time
	// retryPol is the run's unified retry policy; every world-facing call
	// (poller, fetcher, adapters) shares it, so backoff and breaker state
	// are observed in one place.
	retryPol *retry.Policy
	// injector is the chaos source when Config.Faults is set (nil
	// otherwise); tests read its counts to assert faults actually fired.
	injector *faults.Injector
	// listen is the server bind hook; tests inject failures through it.
	listen listenFunc
	// streamWrap, when set, decorates the URL stream after backend wiring;
	// tests inject poll failures through it.
	streamWrap func(world.URLStream) world.URLStream
	// cascade pairs Lexical with Config.Cascade's thresholds (nil when the
	// cascade is off). Read-only once trained — stage workers share it.
	cascade *baselines.Cascade

	// Sharding (see shard.go). shardIndex/shardCount partition the posting
	// schedule when this FreePhish is one shard of a larger study;
	// sharedModels marks the trained models as borrowed from the
	// coordinator (so wiring skips their observers — they are shared
	// read-only across shards); shards retains the completed shard
	// frameworks so Verify can audit their worlds; shardHook is a test
	// seam invoked before each shard attempt.
	shardIndex   int
	shardCount   int
	sharedModels bool
	shards       []*FreePhish
	// remoteShards marks that at least one shard ran on a remote worker, so
	// no local child framework holds its world — Verify skips the
	// world-existence probes for records it cannot see (see verify.go).
	remoteShards bool
	shardHook    func(shard, attempt int) error
	// shardPrep is a test seam invoked on each freshly built shard child
	// before it runs, so tests can arrange mid-run failures inside the
	// child (e.g. a failing stream wrapper).
	shardPrep func(child *FreePhish, shard, attempt int)

	// checkpointSink is a test seam: when set, every checkpoint's encoded
	// bytes are also delivered here (checkpointing is active whenever the
	// sink or Config.CheckpointPath is set). Tests use it to capture every
	// cut point of a run without funneling them through one file.
	checkpointSink func(data []byte) error
}

// Stats returns the run's operational counters.
func (f *FreePhish) Stats() Stats { return f.State.Stats() }

// Study returns the accumulated analysis record set.
func (f *FreePhish) Study() *analysis.Study { return f.State.Study() }

// Observations returns the active monitor's per-URL findings, keyed by
// URL (populated only when Config.MonitorInterval > 0).
func (f *FreePhish) Observations() map[string]*Observation { return f.State.Observations() }

// New assembles the framework and its world. Call Train before Run, or let
// Run train lazily.
func New(cfg Config) *FreePhish {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Minute
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.GrowthExponent <= 0 {
		cfg.GrowthExponent = 1.6
	}
	clock := simclock.New(cfg.Epoch)
	f := &FreePhish{
		Config: cfg,
		Clock:  clock,
		Sim:    world.NewSim(cfg.Seed, cfg.Epoch, clock),
		State:  state.New(),
		listen: defaultListen,
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f.Metrics = newMetrics(reg, clock.Now, cfg.Epoch)
	if cfg.Journal {
		f.Metrics.Journal = obs.NewJournal(clock.Now, cfg.JournalRing)
	}
	return f
}

// Train builds the ground-truth corpus (§4.2) and fits both the augmented
// FreePhish model and the base StackModel used to select the self-hosted
// comparison cohort.
func (f *FreePhish) Train() error {
	n := f.Config.scaled(f.Config.TrainPerClass)
	if n < 40 {
		n = 40
	}
	fwbCorpus, selfCorpus := f.Sim.GroundTruthCorpus(n)
	f.Model = baselines.NewFreePhishModel(f.Config.Seed)
	f.Model.SetParallelism(f.Config.Workers)
	if err := f.Model.Train(labeledPages(fwbCorpus)); err != nil {
		return fmt.Errorf("core: train FreePhish model: %w", err)
	}
	f.BaseModel = baselines.NewBaseStackModel(f.Config.Seed)
	f.BaseModel.SetParallelism(f.Config.Workers)
	if err := f.BaseModel.Train(labeledPages(selfCorpus)); err != nil {
		return fmt.Errorf("core: train base model: %w", err)
	}
	if f.Config.Cascade != nil {
		// The triage scorer sees both cohorts' URLs (it must rank FWB and
		// self-hosted traffic alike) and trains on its own keyed RNG
		// stream, so enabling the cascade perturbs no other draw — which
		// is what makes the degenerate (0, 1) cascade byte-identical to
		// running without one.
		f.Lexical = baselines.NewLexicalScorer(f.Config.Seed)
		corpus := append(labeledPages(fwbCorpus), labeledPages(selfCorpus)...)
		if err := f.Lexical.Train(corpus); err != nil {
			return fmt.Errorf("core: train lexical scorer: %w", err)
		}
		f.cascade = &baselines.Cascade{
			Scorer:      f.Lexical,
			BenignBelow: f.Config.Cascade.BenignBelow,
			PhishAbove:  f.Config.Cascade.PhishAbove,
		}
	}
	return nil
}

// labeledPages converts the world's ground-truth samples for the trainers.
func labeledPages(samples []world.Sample) []baselines.LabeledPage {
	out := make([]baselines.LabeledPage, len(samples))
	for i, s := range samples {
		out[i] = baselines.LabeledPage{
			Page: features.Page{URL: s.URL, HTML: s.HTML}, Label: s.Label,
		}
	}
	return out
}

// Run executes the measurement study and returns the analysis record
// set. With Config.Shards > 1 the study fans out across N sub-stream
// shards and merges their snapshots (see shard.go); either way the
// returned record set and the journal are in canonical order.
func (f *FreePhish) Run() (*analysis.Study, error) {
	if f.Config.Shards > 1 {
		if f.Config.CheckpointPath != "" || f.Config.Resume != nil || f.checkpointSink != nil {
			return nil, fmt.Errorf("core: checkpoint/resume is not supported with Shards > 1 (the coordinator streams and adopts per-shard checkpoints itself — a dead shard resumes from its last cut, and an operator file would hold only one shard's slice)")
		}
		return f.runSharded()
	}
	return f.runLocal()
}

// runLocal executes the study in this process over this framework's own
// posting partition (the full schedule unless this FreePhish is a shard).
func (f *FreePhish) runLocal() (*analysis.Study, error) {
	f.runStart = time.Now()
	if f.Model == nil || f.BaseModel == nil {
		sp := f.Metrics.Tracer.Start("train")
		err := f.Train()
		sp.EndErr(err)
		if err != nil {
			return nil, err
		}
	}
	if err := f.startServers(); err != nil {
		return nil, err
	}
	defer f.stopServers()

	f.Sim.SchedulePosts(world.PostingPlan{
		FWBTwitter:     f.Config.scaled(f.Config.FWBTwitter),
		FWBFacebook:    f.Config.scaled(f.Config.FWBFacebook),
		SelfTwitter:    f.Config.scaled(f.Config.SelfTwitter),
		SelfFacebook:   f.Config.scaled(f.Config.SelfFacebook),
		BenignTwitter:  f.Config.scaled(int(float64(f.Config.FWBTwitter) * f.Config.BenignPerPhish)),
		BenignFacebook: f.Config.scaled(int(float64(f.Config.FWBFacebook) * f.Config.BenignPerPhish)),
		Duration:       f.Config.Duration,
		GrowthExponent: f.Config.GrowthExponent,
		ReshareRate:    f.Config.ReshareRate,
		Shard:          f.shardIndex,
		Shards:         f.shardCount,
	})
	var pollErr error
	stop := func() {}
	pollTick := func(now time.Time) {
		if pollErr != nil {
			return
		}
		if err := f.pollOnce(now); err != nil {
			pollErr = err
			// A failed study cannot recover: cancel the poll subscription so
			// no further cycles fire while the driver below unwinds.
			stop()
		}
	}
	pollUntil := f.Config.Epoch.Add(f.Config.Duration)
	if f.Config.Resume != nil {
		// Resume: replay the world to the checkpoint instant and restore
		// the state, journal, cursors, and monitor schedules, then rejoin
		// the original poll schedule at its next tick.
		if err := f.restoreRun(f.Config.Resume); err != nil {
			return nil, err
		}
		if next, ok := f.nextPollAfter(f.Config.Resume.SimNow, pollUntil); ok {
			stop = f.Clock.EveryAt(next, f.Config.PollInterval, pollUntil, "freephish.poll", pollTick)
		}
	} else {
		stop = f.Clock.Every(f.Config.PollInterval, pollUntil, "freephish.poll", pollTick)
	}
	defer func() { stop() }()

	cp, err := f.newCheckpointer()
	if err != nil {
		return nil, err
	}

	// Run the window plus one week of trailing observation, one event at a
	// time so a poll failure ends the study at the failing cycle instead of
	// ticking out the rest of the window and the tail.
	horizon := f.Config.Epoch.Add(f.Config.Duration + 7*24*time.Hour)
	for pollErr == nil && f.Clock.StepUntil(horizon) {
		if cp != nil {
			if err := cp.maybe(f); err != nil {
				// A checkpoint that cannot be written is a loud failure: the
				// operator asked for resumability and silently losing it
				// defeats the point.
				return nil, err
			}
		}
	}
	if pollErr != nil {
		return nil, pollErr
	}
	f.finishRun()
	return f.State.Study(), nil
}

// finishRun puts the completed study into canonical order: records sort
// by (classification time, URL) and the journal rebuilds into the
// canonical (Ord, URL, Seq) sequence. Every successful run — sharded or
// not — passes through here, which is what makes an N-shard merge
// byte-identical to the 1-shard output.
func (f *FreePhish) finishRun() {
	f.State.SortRecords()
	if j := f.Metrics.Journal; j != nil {
		f.Metrics.Journal = obs.RebuildJournal(
			f.Clock.Now, f.Config.JournalRing, obs.SortCanonical(j.Events()))
	}
}

// pollOnce is one streaming-module cycle: poll both platforms, snapshot and
// classify every new URL, and register flagged URLs for longitudinal
// observation.
//
// The cycle is a streamed dataflow: dedup runs first, single-threaded in
// stream order (so intra-cycle reshares resolve deterministically), then
// the fresh URLs flow through a poll → fetch → classify → ordered-apply
// pipeline (internal/pipe). Fetch and classify each run on their own
// worker pool connected by bounded queues, so network wait overlaps CPU
// scoring and one slow fetch backpressures instead of buffering the cycle;
// the reorder buffer hands results to apply in stream order the moment the
// head-of-line item completes, which bounds per-cycle memory by (Workers +
// QueueDepth), never by cycle size. Stage functions touch only read-only
// or thread-safe state; every stateful effect, including all world-side
// RNG draws, happens in the ordered apply phase, which is what makes the
// study bit-identical at every Config.Workers and Config.QueueDepth
// setting — and, because the apply phase issues its port calls strictly in
// stream order, at every Config.Backend setting too.
func (f *FreePhish) pollOnce(now time.Time) (err error) {
	sp := f.Metrics.Tracer.Start("poll")
	defer func() {
		sp.EndErr(err)
		if err == nil {
			f.observeProgress(now)
		}
	}()
	f.State.AddPoll()
	f.Metrics.Polls.Inc()
	urls, err := f.world.Stream.Poll(now)
	if err != nil {
		return err
	}
	var fresh []crawler.StreamedURL
	for _, su := range urls {
		f.State.AddPostSeen()
		// First appearance wins: reshared URLs are already in the study (or
		// already rejected) and are not re-fetched.
		if !f.State.MarkSeen(su.URL) {
			f.Metrics.URLsDeduped.Inc()
			continue
		}
		fresh = append(fresh, su)
	}
	p := pipe.New(context.Background(), pipe.Options{
		Name: "poll", Registry: f.Metrics.Registry,
		OnEmit: journalEmit(f.Metrics.Journal, "poll"),
	})
	depth := f.queueDepth()
	// With the cascade on, a triage stage scores every fresh URL from its
	// string alone ahead of fetch; confident verdicts short-circuit the
	// fetch stage entirely (fetchProbe passes them through untouched).
	// With it off, the graph is exactly the historical fetch → classify
	// pair — triage is not in the pipeline at all.
	var fetched *pipe.Flow[*probeResult]
	if f.cascade != nil {
		triaged := pipe.Stage(pipe.Source(p, depth, fresh), "triage", f.workers(), depth,
			func(i int, su crawler.StreamedURL) (*probeResult, error) {
				return f.triageURL(su), nil
			})
		fetched = pipe.Stage(triaged, "fetch", f.workers(), depth,
			func(i int, pr *probeResult) (*probeResult, error) {
				return f.fetchProbe(pr), nil
			})
	} else {
		fetched = pipe.Stage(pipe.Source(p, depth, fresh), "fetch", f.workers(), depth,
			func(i int, su crawler.StreamedURL) (*probeResult, error) {
				return f.fetchURL(su), nil
			})
	}
	classified := pipe.Stage(fetched, "classify", f.workers(), depth,
		func(i int, pr *probeResult) (*probeResult, error) {
			return f.classifyURL(pr), nil
		})
	return pipe.Drain(classified, func(i int, pr *probeResult) error {
		return f.applyProbe(pr, now)
	})
}

// workers resolves Config.Workers to a concrete pool size.
func (f *FreePhish) workers() int { return pipe.Workers(f.Config.Workers) }

// queueDepth resolves Config.QueueDepth to a concrete per-stage bound.
func (f *FreePhish) queueDepth() int { return pipe.DepthOrDefault(f.Config.QueueDepth) }

// probeResult carries everything a probe learned about one streamed URL
// into the ordered apply phase.
type probeResult struct {
	su     crawler.StreamedURL
	page   features.Page
	status int
	info   world.SiteInfo
	cohort string
	score  float64
	// tier is the cascade's triage verdict; its zero value is
	// baselines.TierFull, so with the cascade off every probe takes the
	// full fetch + classify path. lexScore is the triage tier's URL-only
	// score (meaningful only when tier != TierFull).
	tier     baselines.Tier
	lexScore float64
	contrib  []baselines.Contribution // top features; only with the journal on
	err      error                    // terminal: snapshot, resolve, or classification failure
}

// triageURL is the cascade's triage stage: score the URL string with the
// lexical tier and assign a short-circuit verdict or fall-through. Pure
// like the other stage functions — the trained scorer is read-only and
// the metrics are atomic — so it runs at full worker parallelism.
func (f *FreePhish) triageURL(su crawler.StreamedURL) *probeResult {
	p := &probeResult{su: su}
	tsp := f.Metrics.Tracer.Start("triage")
	p.lexScore, p.tier = f.cascade.Triage(su.URL)
	tsp.End()
	f.Metrics.CascadeTriaged.With(p.tier.String()).Inc()
	return p
}

// fetchURL adapts the fetch stage to raw streamed URLs (the cascade-off
// pipeline, the historical graph).
func (f *FreePhish) fetchURL(su crawler.StreamedURL) *probeResult {
	return f.fetchProbe(&probeResult{su: su})
}

// fetchProbe is the pipeline's fetch stage: snapshot the page over the
// snapshot port — unless the triage tier already resolved the URL, in
// which case the probe passes through untouched and the fetch is counted
// as avoided. It must not mutate framework state — it runs concurrently
// with other fetches — so it only touches the (thread-safe) snapshot port
// and atomic metrics. A failed snapshot is carried in probeResult.err for
// the ordered apply phase to surface; it never aborts sibling items early.
func (f *FreePhish) fetchProbe(p *probeResult) *probeResult {
	if p.tier != baselines.TierFull {
		f.Metrics.CascadeFetchesAvoided.Inc()
		return p
	}
	fsp := f.Metrics.Tracer.Start("fetch")
	page, status, err := f.world.Snap.Snapshot(p.su.URL)
	fsp.EndErr(err)
	if err != nil {
		p.err = fmt.Errorf("core: snapshot %q: %w", p.su.URL, err)
		return p
	}
	p.page, p.status = page, status
	return p
}

// classifyURL is the pipeline's classify stage: resolve the hosting
// attribution and score the page with the cohort's model. Splitting it
// from fetchURL lets CPU scoring of item i overlap the network wait of
// item i+k. Like fetchURL it touches only thread-safe state: the intel
// port, the trained (read-only) models, and atomic metrics. Items that
// already failed or vanished (status != 200) pass through untouched.
func (f *FreePhish) classifyURL(p *probeResult) *probeResult {
	if p.err != nil {
		return p
	}
	if p.tier != baselines.TierFull {
		// Short-circuited by the triage tier: the page was never fetched,
		// so there is nothing to score — but the hosting attribution is
		// still resolved (the intel port's lookup is read-only, like the
		// full path's) so the apply phase can attribute the cohort.
		var err error
		p.info, err = f.world.Intel.Resolve(p.su.URL)
		if err != nil {
			p.err = fmt.Errorf("core: resolve %q: %w", p.su.URL, err)
			return p
		}
		if p.info.Hosted {
			p.cohort = "self-hosted"
			if p.info.IsFWB {
				p.cohort = "fwb"
			}
		}
		return p
	}
	if p.status != 200 {
		return p // already gone by the time we crawled it
	}
	var err error
	p.info, err = f.world.Intel.Resolve(p.su.URL)
	if err != nil {
		p.err = fmt.Errorf("core: resolve %q: %w", p.su.URL, err)
		return p
	}
	if !p.info.Hosted {
		return p
	}
	p.cohort = "self-hosted"
	if p.info.IsFWB {
		p.cohort = "fwb"
	}
	model := f.BaseModel
	if p.info.IsFWB {
		model = f.Model
	}
	csp := f.Metrics.Tracer.Start("classify")
	c0 := time.Now()
	if f.Metrics.Journal != nil {
		// The journal's classified event carries a verdict explanation, so
		// pay for the top-contribution ranking only when tracing is on.
		p.score, p.contrib, err = model.ScoreExplained(p.page, journalTopFeatures)
	} else {
		p.score, err = model.Score(p.page)
	}
	f.Metrics.ClassifySeconds.With(p.cohort).Observe(time.Since(c0).Seconds())
	csp.EndErr(err)
	if err != nil {
		p.err = err
		return p
	}
	f.Metrics.Scores.With(p.cohort).Observe(p.score)
	return p
}

// applyProbe is the sequential half: it consumes one probe in stream order
// and performs every stateful effect — counters, evaluation, blocklist/VT/
// moderation assessments, reporting, and record admission — through the
// world ports. Keeping this single-threaded in input order is the
// determinism contract of the parallel pipeline and of the http backend.
func (f *FreePhish) applyProbe(p *probeResult, now time.Time) error {
	if p.err != nil {
		return p.err
	}
	// Lifecycle tracing records here — the single-threaded, stream-ordered
	// apply point — never from the concurrent stages, which is what keeps
	// the canonical journal byte-identical at every concurrency setting.
	j := f.Metrics.Journal
	if j != nil {
		j.Record(p.su.URL, obs.EvPosted, p.su.At,
			"platform", string(p.su.Platform), "post", p.su.PostID)
		j.Record(p.su.URL, obs.EvPolled, now)
	}
	if p.tier != baselines.TierFull {
		return f.applyLexical(p, now)
	}
	if j != nil {
		j.Record(p.su.URL, obs.EvFetched, now, "status", statusLabel(p.status))
	}
	if p.status != 200 {
		return nil
	}
	f.State.AddScanned()
	if !p.info.Hosted {
		return nil
	}
	su, cohort, score := p.su, p.cohort, p.score
	flagged := score >= 0.5
	if j != nil {
		verdict := "benign"
		if flagged {
			verdict = "phishing"
		}
		j.Record(su.URL, obs.EvClassified, now,
			"cohort", cohort,
			"score", strconv.FormatFloat(score, 'g', -1, 64),
			"verdict", verdict,
			"top", topAttr(p.contrib))
	}
	if err := f.eval.observe(su.URL, cohort, flagged); err != nil {
		return err
	}
	if !flagged {
		return nil
	}
	f.State.AddFlagged(p.info.IsFWB)
	return f.admitRecord(p, score, "", now)
}

// applyLexical is the apply phase for a cascade short-circuit: the URL
// was resolved by the triage tier alone and never fetched, so there is no
// fetched event, no page signature, and no scanned-URL count — but the
// lexical verdict is evaluated, reported, and admitted to the study
// through exactly the same ordered machinery as a full classification.
func (f *FreePhish) applyLexical(p *probeResult, now time.Time) error {
	f.State.AddLexical(p.tier == baselines.TierPhish)
	if !p.info.Hosted {
		return nil
	}
	su, cohort := p.su, p.cohort
	flagged := p.tier == baselines.TierPhish
	if j := f.Metrics.Journal; j != nil {
		verdict := "benign"
		if flagged {
			verdict = "phishing"
		}
		// The lexical verdict gets its own lifecycle event type: a trace
		// must show either fetched+classified or classified_lexical,
		// never a classification without a fetch.
		j.Record(su.URL, obs.EvClassifiedLexical, now,
			"cohort", cohort,
			"score", strconv.FormatFloat(p.lexScore, 'g', -1, 64),
			"tier", p.tier.String(),
			"verdict", verdict)
	}
	if err := f.eval.observe(su.URL, cohort, flagged); err != nil {
		return err
	}
	if !flagged {
		return nil
	}
	f.State.AddFlagged(p.info.IsFWB)
	return f.admitRecord(p, p.lexScore, "lexical", now)
}

// admitRecord is the shared admission tail for a flagged URL: profile the
// target, collect blocklist/VT/moderation assessments, disclose through
// the reporting module, add the analysis record, and register it with the
// §4.4 monitor. For cascade short-circuits (tier "lexical") the page HTML
// is empty — the profile and signature work from the URL alone — and the
// record carries the tier so the analysis can separate lexical admissions
// from full-model ones.
func (f *FreePhish) admitRecord(p *probeResult, score float64, tier string, now time.Time) error {
	su, page := p.su, p.page
	j := f.Metrics.Journal
	asp := f.Metrics.Tracer.Start("assess")
	target, err := f.world.Intel.Profile(world.ProfileRequest{
		URL: su.URL, HTML: page.HTML, SharedAt: su.At,
		Platform: su.Platform, PostID: su.PostID,
	})
	if err != nil {
		asp.EndErr(err)
		return fmt.Errorf("core: profile %q: %w", su.URL, err)
	}
	if j != nil && target.InCTLog {
		j.Record(su.URL, obs.EvObservedCT, now, "cert", string(target.CertType))
	}
	rec := &analysis.Record{
		Target:          target,
		ClassifierScore: score,
		Classified:      true,
		ClassifiedAt:    now,
		Tier:            tier,
		Signature:       analysis.PageSignature(page.HTML),
	}
	verdicts, vt, err := f.world.Feeds.Assess(target)
	if err != nil {
		asp.EndErr(err)
		return fmt.Errorf("core: assess %q: %w", su.URL, err)
	}
	rec.Blocklist = verdicts
	rec.VTDetections = vt
	removed, at, err := f.world.Platform.AssessModeration(target)
	if err != nil {
		asp.EndErr(err)
		return fmt.Errorf("core: moderation %q: %w", su.URL, err)
	}
	if removed {
		rec.PlatformRemoved = true
		rec.PlatformRemovedAt = at
		f.Metrics.Takedowns.With("platform").Inc()
		if err := f.world.Platform.RemovePost(su.Platform, su.PostID, at); err != nil {
			asp.EndErr(err)
			return fmt.Errorf("core: remove post %q: %w", su.PostID, err)
		}
		if j != nil {
			j.Record(su.URL, obs.EvTakedown, at, "via", "platform")
		}
	}
	asp.End()
	// Reporting module (§4.3): disclose FWB attacks to the service; the
	// hosting provider handles self-hosted ones. Blocklists are never
	// reported to — that would contaminate the measurement. A failed
	// delivery surfaces in Outcome.Error, not as a pipeline error.
	rsp := f.Metrics.Tracer.Start("report")
	outcome, err := f.world.Reports.Disclose(target, now)
	rsp.EndErr(err)
	if err != nil {
		return fmt.Errorf("core: disclose %q: %w", su.URL, err)
	}
	recipient := "hosting-provider"
	if target.IsFWB() {
		f.State.AddReportSent()
		recipient = target.Service.Name
	}
	f.Metrics.Reports.With(recipient).Inc()
	if outcome.Acknowledged {
		f.Metrics.ReportAcks.With(recipient).Inc()
	}
	if j != nil {
		ack := "false"
		if outcome.Acknowledged {
			ack = "true"
		}
		if outcome.Error != "" {
			j.Record(su.URL, obs.EvReported, now,
				"recipient", recipient, "ack", ack, "err", outcome.Error)
		} else {
			j.Record(su.URL, obs.EvReported, now, "recipient", recipient, "ack", ack)
		}
	}
	rec.Report = outcome
	if outcome.Removed {
		rec.HostRemoved = true
		rec.HostRemovedAt = outcome.RemovedAt
		f.Metrics.Takedowns.With("host").Inc()
		if j != nil {
			j.Record(su.URL, obs.EvTakedown, outcome.RemovedAt, "via", "host")
		}
	}
	f.State.AddRecord(rec)
	f.Metrics.Records.Inc()
	if f.Config.MonitorInterval > 0 {
		f.scheduleMonitor(rec)
	}
	return nil
}
