package core

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/blocklist"
	fwbPkg "freephish/internal/fwb"
)

// smallConfig is a fast end-to-end configuration: ~630 FWB + 630
// self-hosted URLs over the six-month virtual window.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = 0.02
	cfg.TrainPerClass = 400
	return cfg
}

// runSmall runs one small study, cached per test binary invocation.
var cachedStudy *analysis.Study
var cachedFP *FreePhish

func runSmall(t *testing.T) (*FreePhish, *analysis.Study) {
	t.Helper()
	if cachedStudy != nil {
		return cachedFP, cachedStudy
	}
	f := New(smallConfig(5))
	study, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	cachedFP, cachedStudy = f, study
	return f, study
}

func TestEndToEndStudyProducesRecords(t *testing.T) {
	f, study := runSmall(t)
	nFWB := len(study.Select(analysis.FWBCohort))
	nSelf := len(study.Select(analysis.SelfHostedCohort))
	t.Logf("records: FWB=%d self=%d stats=%+v", nFWB, nSelf, f.Stats())
	if nFWB < 400 {
		t.Fatalf("FWB records = %d, want most of ~628 flagged", nFWB)
	}
	if nSelf < 400 {
		t.Fatalf("self-hosted records = %d, want most of ~628 flagged", nSelf)
	}
	if f.Stats().Polls < 1000 {
		t.Fatalf("polls = %d, want ~26k 10-minute cycles", f.Stats().Polls)
	}
	// Zero-day classifier quality (paper: 97% accuracy).
	tp, fp, fn := f.Stats().TruePositives, f.Stats().FalsePositives, f.Stats().FalseNegatives
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	if prec < 0.9 || rec < 0.9 {
		t.Errorf("zero-day precision=%.3f recall=%.3f, want >= 0.9", prec, rec)
	}
}

func TestEndToEndCoverageGap(t *testing.T) {
	_, study := runSmall(t)
	week := 7 * 24 * time.Hour
	for _, entity := range []string{"PhishTank", "OpenPhish", "GSB", "eCrimeX", "platform", "host"} {
		fr := study.Coverage(entity, analysis.FWBCohort, week)
		sr := study.Coverage(entity, analysis.SelfHostedCohort, week)
		t.Logf("%-10s FWB %.3f (med %v) | self %.3f (med %v)", entity, fr.Coverage, fr.Median, sr.Coverage, sr.Median)
		if fr.Coverage >= sr.Coverage {
			t.Errorf("%s: FWB coverage %.3f >= self %.3f", entity, fr.Coverage, sr.Coverage)
		}
		// Median ordering holds for blocklists and platforms. For "host"
		// the paper's own tables disagree: Table 3 reports a 9:43 FWB
		// median, but Table 4's per-service medians (Weebly 1:39,
		// 000webhost 0:45 — the services with most removals) imply a fast
		// overall median. We reproduce Table 4, so the host median is not
		// asserted here; see EXPERIMENTS.md.
		if entity != "host" && fr.Covered > 0 && sr.Covered > 0 && fr.Median <= sr.Median {
			t.Errorf("%s: FWB median %v <= self %v", entity, fr.Median, sr.Median)
		}
	}
}

func TestEndToEndVTGap(t *testing.T) {
	_, study := runSmall(t)
	week := 7 * 24 * time.Hour
	fwbMed := analysis.MedianInt(study.DetectionCounts(analysis.FWBCohort, week))
	selfMed := analysis.MedianInt(study.DetectionCounts(analysis.SelfHostedCohort, week))
	t.Logf("VT medians after a week: FWB=%d self=%d (paper: 4 vs 9)", fwbMed, selfMed)
	if fwbMed >= selfMed {
		t.Fatalf("FWB median detections %d >= self-hosted %d", fwbMed, selfMed)
	}
}

func TestEndToEndSection3Stats(t *testing.T) {
	_, study := runSmall(t)
	fwbAge := study.MedianDomainAge(analysis.FWBCohort)
	selfAge := study.MedianDomainAge(analysis.SelfHostedCohort)
	if years := fwbAge.Hours() / 24 / 365; years < 8 || years > 25 {
		t.Errorf("FWB median age = %.1f years, want double digits", years)
	}
	if days := selfAge.Hours() / 24; days < 10 || days > 150 {
		t.Errorf("self-hosted median age = %.0f days, want ≈71", days)
	}
	ctVisible := study.Fraction(analysis.FWBCohort, func(r *analysis.Record) bool { return r.Target.InCTLog })
	if ctVisible != 0 {
		t.Errorf("FWB CT visibility = %.3f, want 0 (the §3 invisibility mechanism)", ctVisible)
	}
	noindex := study.Fraction(analysis.FWBCohort, func(r *analysis.Record) bool { return r.Target.Noindex })
	if noindex < 0.3 || noindex < 0.0 || noindex > 0.6 {
		t.Errorf("noindex fraction = %.3f, want ≈0.45", noindex)
	}
}

func TestEndToEndPostsRemovedOnPlatform(t *testing.T) {
	f, study := runSmall(t)
	removed := 0
	for _, r := range study.Records {
		if r.PlatformRemoved {
			removed++
			post := f.Sim.Networks[r.Target.Platform].Lookup(r.Target.PostID)
			if post == nil {
				t.Fatal("record references unknown post")
			}
			if rm, at := post.Removed(); !rm || !at.Equal(r.PlatformRemovedAt) {
				t.Fatal("platform removal not reflected on the network")
			}
		}
	}
	if removed == 0 {
		t.Fatal("no posts removed by platforms at all")
	}
}

func TestEndToEndTakedownsReflectedOnHost(t *testing.T) {
	_, study := runSmall(t)
	n := 0
	for _, r := range study.Records {
		if r.HostRemoved {
			n++
			down, at, _ := r.Target.Site.TakenDown()
			if !down || !at.Equal(r.HostRemovedAt) {
				t.Fatal("host takedown not reflected on the site")
			}
		}
	}
	if n == 0 {
		t.Fatal("no sites taken down at all")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	f, study := runSmall(t)
	for name, out := range map[string]string{
		"table3":    RenderTable3(study),
		"table4":    RenderTable4(study),
		"figure5":   RenderFigure5(study, 10),
		"figure6":   RenderFigure6(study),
		"figure7":   RenderFigure7(study),
		"figure8":   RenderFigure8(study),
		"figure9":   RenderFigure9(study),
		"section3":  RenderSection3(study),
		"section55": RenderSection55(study),
		"stats":     RenderStats(f.Stats()),
	} {
		if len(out) < 80 || !strings.Contains(out, "\n") {
			t.Errorf("%s renderer output too small:\n%s", name, out)
		}
	}
}

func TestHistoricalStudyShape(t *testing.T) {
	points := HistoricalStudy(7)
	if len(points) != 11 {
		t.Fatalf("quarters = %d, want 11 (2020-Q1 .. 2022-Q3)", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.Total() < 3*first.Total() {
		t.Fatalf("no escalation: first=%d last=%d", first.Total(), last.Total())
	}
	total := 0
	for _, p := range points {
		total += p.Total()
		if p.Twitter < p.Facebook/3 {
			t.Errorf("%s: twitter=%d facebook=%d — platform mix off", p.Quarter, p.Twitter, p.Facebook)
		}
		if len(p.Top80) == 0 {
			t.Errorf("%s: empty top80 set", p.Quarter)
		}
	}
	if total < 23000 || total > 28000 {
		t.Fatalf("historical total = %d, want ≈25.2K (D1)", total)
	}
	// The strategic shift: later quarters use more distinct services.
	if len(last.Top80) <= len(first.Top80) {
		t.Errorf("no adoption shift: first top80=%v last top80=%v", first.Top80, last.Top80)
	}
	// Determinism.
	again := HistoricalStudy(7)
	for i := range again {
		if again[i].Total() != points[i].Total() {
			t.Fatal("historical study not deterministic")
		}
	}
}

func TestRenderFigure1(t *testing.T) {
	out := RenderFigure1(HistoricalStudy(7))
	if !strings.Contains(out, "2020-Q1") || !strings.Contains(out, "2022-Q3") {
		t.Fatalf("figure 1 output missing quarters:\n%s", out)
	}
}

func TestRenderTable1(t *testing.T) {
	out := RenderTable1(42, 6)
	if !strings.Contains(out, "Weebly") || !strings.Contains(out, "github.io") {
		t.Fatalf("table 1 missing rows:\n%s", out)
	}
}

func TestBlocklistFeedsQueryableOverHTTP(t *testing.T) {
	f, study := runSmall(t)
	// Find a GSB-detected URL and verify the lookup API agrees.
	var url string
	var at time.Time
	for _, r := range study.Records {
		if v := r.Blocklist["GSB"]; v.Detected {
			url, at = r.Target.URL, v.At
			break
		}
	}
	if url == "" {
		t.Fatal("no GSB detection in the study")
	}
	srv := httptest.NewServer(f.Sim.Feeds["GSB"])
	defer srv.Close()
	c := blocklist.NewClient(srv.URL)
	listed, err := c.IsListed(url)
	if err != nil {
		t.Fatal(err)
	}
	// The study clock has advanced past every listing time.
	if f.Clock.Now().Before(at) {
		t.Fatalf("clock %v before listing %v", f.Clock.Now(), at)
	}
	if !listed {
		t.Fatalf("detected URL %q not in the GSB feed", url)
	}
	if listed, _ := c.IsListed("https://never-seen.weebly.com/"); listed {
		t.Fatal("unknown URL listed")
	}
}

func TestActiveMonitorObservationsMatchSchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 21
	cfg.Scale = 0.004
	cfg.TrainPerClass = 120
	cfg.MonitorInterval = 4 * time.Hour
	f := New(cfg)
	study, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Observations()) != len(study.Records) {
		t.Fatalf("observations = %d, records = %d", len(f.Observations()), len(study.Records))
	}
	var checkedDown, checkedListed int
	for _, r := range study.Records {
		obs := f.Observations()[r.Target.URL]
		if obs == nil || obs.Probes == 0 {
			t.Fatal("record without monitor probes")
		}
		// Host takedowns within the horizon must be observed within one
		// monitor interval of the scheduled time.
		if r.HostRemoved && r.HostRemovedAt.Sub(r.Target.SharedAt) < MonitorHorizon-cfg.MonitorInterval {
			if obs.HostDownAt.IsZero() {
				t.Errorf("takedown of %s at %v never observed", r.Target.URL, r.HostRemovedAt)
				continue
			}
			lag := obs.HostDownAt.Sub(r.HostRemovedAt)
			if lag < 0 || lag > cfg.MonitorInterval+time.Minute {
				t.Errorf("observed takedown lag = %v, want within one interval", lag)
			}
			checkedDown++
		}
		// Same for blocklist listings.
		for name, v := range r.Blocklist {
			if !v.Detected || v.At.Sub(r.Target.SharedAt) >= MonitorHorizon-cfg.MonitorInterval {
				continue
			}
			at, ok := obs.Listings[name]
			if !ok {
				t.Errorf("%s listing of %s never observed", name, r.Target.URL)
				continue
			}
			lag := at.Sub(v.At)
			if lag < 0 || lag > cfg.MonitorInterval+time.Minute {
				t.Errorf("%s observed listing lag = %v", name, lag)
			}
			checkedListed++
		}
	}
	if checkedDown == 0 || checkedListed == 0 {
		t.Fatalf("monitor verified nothing: down=%d listed=%d", checkedDown, checkedListed)
	}
	t.Logf("monitor verified %d takedowns and %d listings over HTTP", checkedDown, checkedListed)
}

func TestResharesDoNotDuplicateRecords(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 31
	cfg.Scale = 0.004
	cfg.TrainPerClass = 120
	cfg.ReshareRate = 2.0 // heavy amplification
	f := New(cfg)
	study, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats().PostsSeen <= f.Stats().URLsScanned {
		t.Fatalf("posts=%d scanned=%d: reshares should outnumber unique scans",
			f.Stats().PostsSeen, f.Stats().URLsScanned)
	}
	seen := map[string]bool{}
	for _, r := range study.Records {
		if seen[r.Target.URL] {
			t.Fatalf("URL %q recorded twice", r.Target.URL)
		}
		seen[r.Target.URL] = true
	}
}

func TestKitFamiliesInStudy(t *testing.T) {
	_, study := runSmall(t)
	families := study.KitFamilies(0.5, 4)
	if len(families) < 3 {
		t.Fatalf("recovered %d kit families, want the kit market's majors", len(families))
	}
	// ~60% of self-hosted attacks come from 5 kits; the families must
	// cover a substantial share of the cohort.
	nSelf := len(study.Select(analysis.SelfHostedCohort))
	covered := 0
	for _, f := range families {
		covered += f.Size
	}
	if frac := float64(covered) / float64(nSelf); frac < 0.4 || frac > 0.8 {
		t.Fatalf("kit families cover %.2f of self-hosted cohort, want ≈0.6", frac)
	}
	out := RenderKitFamilies(study)
	if !strings.Contains(out, "pages") {
		t.Fatalf("renderer output:\n%s", out)
	}
}

func TestUptimeGapInStudy(t *testing.T) {
	_, study := runSmall(t)
	horizon := 14 * 24 * time.Hour
	fu := study.Uptime(analysis.FWBCohort, horizon)
	su := study.Uptime(analysis.SelfHostedCohort, horizon)
	t.Logf("uptime: FWB survive=%.2f median=%v | self survive=%.2f median=%v",
		fu.SurvivalFraction(), fu.Median, su.SurvivalFraction(), su.Median)
	// The takedown-resistance claim: most FWB attacks outlive the horizon,
	// most self-hosted attacks do not.
	if fu.SurvivalFraction() <= su.SurvivalFraction() {
		t.Fatalf("FWB survival %.2f <= self-hosted %.2f", fu.SurvivalFraction(), su.SurvivalFraction())
	}
	if fu.Median <= su.Median {
		t.Fatalf("FWB median lifetime %v <= self-hosted %v", fu.Median, su.Median)
	}
	out := RenderUptime(study)
	if !strings.Contains(out, "survival") && !strings.Contains(out, "survive") {
		t.Fatalf("uptime renderer:\n%s", out)
	}
}

func TestStudyDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 41
	cfg.Scale = 0.003
	cfg.TrainPerClass = 80
	run := func() (string, int) {
		f := New(cfg)
		study, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return RenderTable3(study) + RenderFigure5(study, 10), len(study.Records)
	}
	out1, n1 := run()
	out2, n2 := run()
	if n1 != n2 || out1 != out2 {
		t.Fatalf("same-seed studies diverged: %d vs %d records", n1, n2)
	}
	// A different seed must actually change the draw.
	cfg.Seed = 42
	f := New(cfg)
	study, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out3 := RenderTable3(study) + RenderFigure5(study, 10); out3 == out1 {
		t.Fatal("different seeds produced identical studies")
	}
}

func TestCrossSeedStability(t *testing.T) {
	// The headline findings must hold for any seed, not just the default.
	week := 7 * 24 * time.Hour
	for _, seed := range []int64{101, 202} {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Scale = 0.004
		cfg.TrainPerClass = 100
		f := New(cfg)
		study, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, entity := range []string{"GSB", "eCrimeX", "platform"} {
			fr := study.Coverage(entity, analysis.FWBCohort, week)
			sr := study.Coverage(entity, analysis.SelfHostedCohort, week)
			if fr.Coverage >= sr.Coverage {
				t.Errorf("seed %d: %s FWB %.3f >= self %.3f", seed, entity, fr.Coverage, sr.Coverage)
			}
		}
	}
}

func TestCategoriesRenderer(t *testing.T) {
	_, study := runSmall(t)
	out := RenderCategories(study)
	if !strings.Contains(out, "social") || !strings.Contains(out, "banking") {
		t.Fatalf("sector breakdown incomplete:\n%s", out)
	}
}

func TestTable3CIRenderer(t *testing.T) {
	_, study := runSmall(t)
	out := RenderTable3CI(study, 5)
	if !strings.Contains(out, "95% CI") || !strings.Contains(out, "GSB") {
		t.Fatalf("CI table incomplete:\n%s", out)
	}
	// Each row must show bracketed intervals.
	if strings.Count(out, "[") < 12 {
		t.Fatalf("expected 12 intervals:\n%s", out)
	}
}

func TestSummaryRenderer(t *testing.T) {
	_, study := runSmall(t)
	out := RenderSummary(study)
	for _, want := range []string{"GSB covered", "Hosting providers removed", "Median browser-protection"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// The never-reached-half claim should hold for the FWB cohort.
	if !strings.Contains(out, "never reached half of the FWB cohort") {
		t.Fatalf("summary lost the headline gap:\n%s", out)
	}
}

func TestAbuseVolumeCoverageCorrelation(t *testing.T) {
	// Table 4's discussion: heavily-abused FWBs get more blocklist
	// scrutiny. Rank-correlate per-service URL volume with GSB coverage
	// over services with enough mass to measure.
	_, study := runSmall(t)
	week := 7 * 24 * time.Hour
	var volumes, coverages []float64
	for _, svc := range fwbPkg.All() {
		cohort := analysis.OnService(svc.Key)
		n := len(study.Select(cohort))
		if n < 15 {
			continue
		}
		volumes = append(volumes, float64(n))
		coverages = append(coverages, study.Coverage("GSB", cohort, week).Coverage)
	}
	if len(volumes) < 6 {
		t.Skip("not enough populated services at this scale")
	}
	rho := analysis.SpearmanRho(volumes, coverages)
	t.Logf("abuse-volume vs GSB coverage: Spearman rho = %.3f over %d services", rho, len(volumes))
	if rho < 0.3 {
		t.Fatalf("rho = %.3f — the volume-scrutiny relationship is missing", rho)
	}
}

func TestStudyVerifyInvariants(t *testing.T) {
	f, _ := runSmall(t)
	if err := f.Verify(); err != nil {
		t.Fatalf("study violates invariants: %v", err)
	}
	// Corrupt a record and confirm Verify catches it.
	r := f.Study().Records[0]
	saved := r.Target.SharedAt
	r.Target.SharedAt = f.Config.Epoch.Add(-time.Hour)
	if err := f.Verify(); err == nil {
		t.Fatal("Verify missed an out-of-window share time")
	}
	r.Target.SharedAt = saved
	if err := f.Verify(); err != nil {
		t.Fatalf("restore failed: %v", err)
	}
}
