package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"freephish/internal/faults"
	"freephish/internal/obs"
)

// cascadeRun executes one cascade-enabled traced study and returns the
// study records JSONL, the canonical journal JSONL, and the run's stats.
func cascadeRun(t *testing.T, workers, depth int, backend string, prof *faults.Profile, cascade *CascadeConfig) (records, journal []byte, stats Stats) {
	t.Helper()
	cfg := streamSweepConfig(workers, depth, backend)
	cfg.Journal = true
	cfg.Faults = prof
	cfg.Cascade = cascade
	f := New(cfg)
	study, err := f.Run()
	if err != nil {
		t.Fatalf("workers=%d depth=%d backend=%s: %v", workers, depth, backend, err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("workers=%d depth=%d backend=%s failed verification: %v", workers, depth, backend, err)
	}
	var rbuf, jbuf bytes.Buffer
	if err := study.WriteJSONL(&rbuf); err != nil {
		t.Fatal(err)
	}
	if err := f.Metrics.Journal.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	return rbuf.Bytes(), jbuf.Bytes(), f.Stats()
}

func diffCascadeRun(t *testing.T, label string, wantRec, gotRec, wantJournal, gotJournal []byte, wantStats, gotStats Stats) {
	t.Helper()
	if gotStats != wantStats {
		t.Fatalf("%s: stats diverge:\nbaseline: %+v\ngot:      %+v", label, wantStats, gotStats)
	}
	diffLines := func(kind string, want, got []byte) {
		if bytes.Equal(want, got) {
			return
		}
		a := strings.Split(string(want), "\n")
		b := strings.Split(string(got), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("%s: %s diverges at line %d:\nbaseline: %s\ngot:      %s", label, kind, i, a[i], b[i])
			}
		}
		t.Fatalf("%s: %s lengths diverge: %d vs %d lines", label, kind, len(a), len(b))
	}
	diffLines("study", wantRec, gotRec)
	diffLines("journal", wantJournal, gotJournal)
}

// TestParseCascade pins the core-level wrapper: off specs map to a nil
// config (cascade disabled), valid specs map to the parsed thresholds,
// and every baselines-level parse failure — malformed pair, inverted
// band, out-of-range threshold — propagates as an error with the core
// prefix rather than a half-built config.
func TestParseCascade(t *testing.T) {
	for _, spec := range []string{"", "off", "none", "false"} {
		c, err := ParseCascade(spec)
		if err != nil || c != nil {
			t.Errorf("ParseCascade(%q) = (%v, %v), want (nil, nil)", spec, c, err)
		}
	}
	c, err := ParseCascade("on")
	if err != nil || c == nil {
		t.Fatalf("ParseCascade(on) = (%v, %v)", c, err)
	}
	if def := DefaultCascade(); *c != *def {
		t.Errorf("ParseCascade(on) = %+v, want defaults %+v", c, def)
	}
	c, err = ParseCascade("0.25,0.75")
	if err != nil || c == nil || c.BenignBelow != 0.25 || c.PhishAbove != 0.75 {
		t.Fatalf("ParseCascade(0.25,0.75) = (%+v, %v)", c, err)
	}
	for _, spec := range []string{
		"0.5",      // missing comma
		"0.9,0.1",  // inverted band
		"-0.1,0.9", // below zero
		"0.1,1.1",  // above one
		"x,0.9",    // unparsable threshold
	} {
		c, err := ParseCascade(spec)
		if err == nil {
			t.Errorf("ParseCascade(%q) = %+v, want error", spec, c)
			continue
		}
		if c != nil {
			t.Errorf("ParseCascade(%q) returned a config alongside the error: %+v", spec, c)
		}
		if !strings.HasPrefix(err.Error(), "core: ") {
			t.Errorf("ParseCascade(%q) error %q lacks the core prefix", spec, err)
		}
	}
}

// TestCascadeDeterminism is the cascade half of the `make verify-cascade`
// gate: with the cascade on at a fixed threshold pair, the study records
// AND the lifecycle journal must stay byte-identical across workers ×
// queue-depth × backend — and under the default chaos profile — exactly
// like the non-cascade study. Short-circuit verdicts are computed in a
// concurrent triage stage, but they are pure functions of the URL string,
// and every stateful effect still lands in the ordered apply phase.
func TestCascadeDeterminism(t *testing.T) {
	cascade := DefaultCascade()
	baseRec, baseJournal, baseStats := cascadeRun(t, 1, 1, BackendInproc, nil, cascade)

	// Non-vacuous: the triage tier actually short-circuited traffic, the
	// fall-through band still produced full classifications, and the
	// journal carries the new lifecycle event.
	if baseStats.LexicalBenign+baseStats.LexicalPhish == 0 {
		t.Fatal("cascade never short-circuited; the sweep is vacuous")
	}
	if baseStats.URLsScanned == 0 {
		t.Fatal("no URL fell through to the fetch path; the sweep is vacuous")
	}
	if !strings.Contains(string(baseJournal), fmt.Sprintf("%q", obs.EvClassifiedLexical)) {
		t.Fatalf("journal has no %s events", obs.EvClassifiedLexical)
	}
	if len(baseRec) == 0 {
		t.Fatal("cascade study produced no records")
	}

	for _, workers := range []int{1, 2, 8} {
		for _, depth := range []int{1, 4, 64} {
			if workers == 1 && depth == 1 {
				continue
			}
			rec, journal, stats := cascadeRun(t, workers, depth, BackendInproc, nil, cascade)
			diffCascadeRun(t, fmt.Sprintf("inproc workers=%d depth=%d", workers, depth),
				baseRec, rec, baseJournal, journal, baseStats, stats)
		}
	}
	// The http backend re-runs the matrix corners.
	for _, c := range [][2]int{{1, 1}, {8, 64}} {
		rec, journal, stats := cascadeRun(t, c[0], c[1], BackendHTTP, nil, cascade)
		diffCascadeRun(t, fmt.Sprintf("http workers=%d depth=%d", c[0], c[1]),
			baseRec, rec, baseJournal, journal, baseStats, stats)
	}
	// And the default chaos profile must be absorbed by the retry layer
	// before it can perturb a lexical verdict or a record.
	prof := faults.DefaultProfile()
	rec, journal, stats := cascadeRun(t, 8, 64, BackendInproc, &prof, cascade)
	diffCascadeRun(t, "inproc workers=8 depth=64 chaos=default",
		baseRec, rec, baseJournal, journal, baseStats, stats)
}

// TestCascadeDegenerateEquivalence is the other half of the gate: the
// degenerate threshold pair (0, 1) can never short-circuit — Triage
// compares strictly, and the logistic score is clamped to [0, 1] — so a
// study run through the degenerate cascade must reproduce the
// cascade-off study byte-for-byte: same records, same journal, same
// stats. This pins the invariant that enabling the cascade machinery
// (including training the extra lexical model) perturbs nothing outside
// the short-circuits themselves.
func TestCascadeDegenerateEquivalence(t *testing.T) {
	offRec, offJournal, offStats := cascadeRun(t, 2, 4, BackendInproc, nil, nil)
	degRec, degJournal, degStats := cascadeRun(t, 2, 4, BackendInproc, nil,
		&CascadeConfig{BenignBelow: 0, PhishAbove: 1})
	if degStats.LexicalBenign+degStats.LexicalPhish != 0 {
		t.Fatalf("degenerate cascade short-circuited %d URLs, want 0",
			degStats.LexicalBenign+degStats.LexicalPhish)
	}
	diffCascadeRun(t, "off vs degenerate(0,1)", offRec, degRec, offJournal, degJournal, offStats, degStats)
	if strings.Contains(string(degJournal), fmt.Sprintf("%q", obs.EvClassifiedLexical)) {
		t.Fatalf("degenerate cascade journal contains %s events", obs.EvClassifiedLexical)
	}
}
