package core

import (
	"reflect"
	"testing"
)

// The pipeline's determinism contract: a study is bit-identical at every
// Config.Workers setting, because probes are side-effect-free and all
// stateful work (including every assessRNG draw) happens in the ordered
// apply phase. This runs the same seeded study at 1 and 8 workers and
// compares the rendered result tables and the raw counters.
func TestStudyDeterminismParallel(t *testing.T) {
	run := func(workers int) (*FreePhish, string) {
		cfg := DefaultConfig()
		cfg.Seed = 7
		cfg.Scale = 0.003
		cfg.TrainPerClass = 80
		cfg.Workers = workers
		f := New(cfg)
		study, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return f, RenderTable3(study) + "\n" + RenderFigure5(study, 10)
	}
	seqF, seqOut := run(1)
	parF, parOut := run(8)

	if len(seqF.Study().Records) == 0 {
		t.Fatal("sequential study produced no records; determinism check is vacuous")
	}
	if len(seqF.Study().Records) != len(parF.Study().Records) {
		t.Fatalf("record counts diverge: workers=1 → %d, workers=8 → %d",
			len(seqF.Study().Records), len(parF.Study().Records))
	}
	if !reflect.DeepEqual(seqF.Stats(), parF.Stats()) {
		t.Fatalf("stats diverge:\nworkers=1: %+v\nworkers=8: %+v", seqF.Stats(), parF.Stats())
	}
	if seqOut != parOut {
		t.Fatalf("rendered study diverges between worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			seqOut, parOut)
	}
	// Per-record spot check beyond the aggregate renders: URL order and
	// classifier scores must match exactly.
	for i := range seqF.Study().Records {
		a, b := seqF.Study().Records[i], parF.Study().Records[i]
		if a.Target.URL != b.Target.URL || a.ClassifierScore != b.ClassifierScore {
			t.Fatalf("record %d diverges: %q score=%v vs %q score=%v",
				i, a.Target.URL, a.ClassifierScore, b.Target.URL, b.ClassifierScore)
		}
	}
}
