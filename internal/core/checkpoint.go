package core

import (
	"fmt"
	"time"

	"freephish/internal/obs"
	"freephish/internal/state"
	"freephish/internal/world"
)

// Checkpoint/resume for long studies. A full-scale run covers six virtual
// months; a killed process that restarts from the epoch re-pays the whole
// window. Instead, the driver loop cuts the study at ordered-apply
// boundaries — instants where every scheduled event at the current time
// has fully applied (Clock.NextAt is after Now), so no pipe stage, poll
// cycle, or monitor tick is in flight — and writes a state.Checkpoint: the
// study Snapshot plus the cursors Restore cannot rebuild (sim instant,
// poller cursors and dedup generations, quota bucket, chaos decision
// cursors).
//
// Resume does NOT deserialize the world — it rebuilds it. Every draw the
// world makes is keyed (posting events by global ordinal, assessments and
// reports by URL), so replaying the posting schedule to the checkpoint
// instant reconstructs the identical posts, sites, and infrastructure;
// the ecosystem's recorded reactions (feed listings, post removals, host
// takedowns, released page bodies) are re-applied from the records; and
// the in-flight §4.4 monitor schedules re-register at their next original
// tick instants. The standing invariant extends: a run killed at any cut
// point and resumed is byte-identical — records, journal, stats — to the
// uninterrupted run, on both backends, under the default fault profile
// (make verify-resume).

// checkpointer owns the cut-point cadence for one run.
type checkpointer struct {
	// every is the minimum virtual time between checkpoints
	// (CheckpointEvery poll intervals).
	every time.Duration
	// lastAt is the instant of the previous checkpoint (the epoch, or the
	// resumed-from instant).
	lastAt time.Time
}

// newCheckpointer returns nil when checkpointing is off.
func (f *FreePhish) newCheckpointer() (*checkpointer, error) {
	if f.Config.CheckpointPath == "" && f.checkpointSink == nil {
		return nil, nil
	}
	stride := f.Config.CheckpointEvery
	if stride <= 0 {
		stride = 1
	}
	last := f.Config.Epoch
	if f.Config.Resume != nil {
		last = f.Config.Resume.SimNow
	}
	return &checkpointer{
		every:  time.Duration(stride) * f.Config.PollInterval,
		lastAt: last,
	}, nil
}

// maybe writes a checkpoint if the stride has elapsed and the current
// instant is a sound cut point. Called by the driver loop after every
// event; a write failure is returned (and fails the run) because an
// operator who asked for resumability must not silently lose it.
func (c *checkpointer) maybe(f *FreePhish) error {
	now := f.Clock.Now()
	if now.Sub(c.lastAt) < c.every {
		return nil
	}
	// Cut-point guard: only cut when no event remains at this instant.
	// Events at one instant fire in scheduling order, and a monitor tick
	// can share an instant with a poll cycle (or another monitor tick) —
	// cutting between them would capture a half-applied instant.
	if next, ok := f.Clock.NextAt(); ok && !next.After(now) {
		return nil
	}
	data, err := state.EncodeCheckpoint(f.buildCheckpoint())
	if err != nil {
		return err
	}
	if f.checkpointSink != nil {
		if err := f.checkpointSink(data); err != nil {
			return fmt.Errorf("core: checkpoint sink: %w", err)
		}
	}
	if f.Config.CheckpointPath != "" {
		if err := state.WriteCheckpointBytes(f.Config.CheckpointPath, data); err != nil {
			return err
		}
	}
	c.lastAt = now
	return nil
}

// buildCheckpoint captures the run at the current (fully applied) instant.
func (f *FreePhish) buildCheckpoint() *state.Checkpoint {
	var events []obs.Event
	if j := f.Metrics.Journal; j != nil {
		events = j.Events()
	}
	chk := &state.Checkpoint{
		Fingerprint: f.fingerprint(),
		SimNow:      f.Clock.Now(),
		Cycles:      f.State.Stats().Polls,
		Snapshot:    f.State.Snapshot(events),
		Poller:      f.poller.State(),
	}
	if f.poller.Limiter != nil {
		chk.Limiter = f.poller.Limiter.State()
	}
	if f.injector != nil {
		chk.Faults = f.injector.Cursors()
	}
	return chk
}

// fingerprint renders the determinism-relevant configuration: everything
// that shapes the study's draws, schedule, or output bytes. Deliberately
// excluded: Backend, Workers, QueueDepth, SnapshotCacheSize, and the
// observability knobs — the study is byte-identical across those, so a
// checkpoint cut on one backend or worker count resumes on another.
func (f *FreePhish) fingerprint() string {
	cfg := f.Config
	cascade := "off"
	if cfg.Cascade != nil {
		cascade = fmt.Sprintf("(%g,%g)", cfg.Cascade.BenignBelow, cfg.Cascade.PhishAbove)
	}
	chaos := "off"
	if cfg.Faults != nil {
		chaos = fmt.Sprintf("%+v", *cfg.Faults)
	}
	fp := fmt.Sprintf(
		"v1 seed=%d epoch=%s dur=%s pop=%d/%d/%d/%d benign=%g scale=%g poll=%s train=%d growth=%g monitor=%s reshare=%g quota=%d@%g cascade=%s journal=%t chaos=%s",
		cfg.Seed, cfg.Epoch.UTC().Format(time.RFC3339), cfg.Duration,
		cfg.FWBTwitter, cfg.FWBFacebook, cfg.SelfTwitter, cfg.SelfFacebook,
		cfg.BenignPerPhish, cfg.Scale, cfg.PollInterval, cfg.TrainPerClass,
		cfg.GrowthExponent, cfg.MonitorInterval, cfg.ReshareRate,
		cfg.PollQuota, cfg.PollQuotaRate, cascade, cfg.Journal, chaos)
	if f.shardCount > 1 {
		// A shard's checkpoint captures one residue class of the posting
		// schedule; adopting it into a different shard position (or into an
		// unsharded run) would silently drop or duplicate sub-streams, so
		// the shard coordinates join the fingerprint. Single-run fingerprints
		// are unchanged — a PR 9 checkpoint still resumes.
		fp += fmt.Sprintf(" shard=%d/%d", f.shardIndex, f.shardCount)
	}
	return fp
}

// restoreRun rebuilds the run at the checkpoint instant. Called from
// runLocal after startServers and SchedulePosts, before the poll
// subscription, so the replayed events are exactly the posting schedule.
func (f *FreePhish) restoreRun(chk *state.Checkpoint) error {
	if got, want := chk.Fingerprint, f.fingerprint(); got != want {
		return fmt.Errorf("core: checkpoint was cut from a different study configuration:\n  checkpoint: %s\n  this run:   %s", got, want)
	}
	// 1. Replay the world to the cut instant. Only posting-schedule events
	// are queued (the poll subscription and monitors do not exist yet), so
	// this publishes every pre-cut post and site exactly as the original
	// run did; reshares scheduled past the cut stay queued for the live
	// phase. No chaos or retry machinery is touched — the replay calls the
	// Sim directly.
	f.Clock.RunUntil(chk.SimNow)
	// 2. Re-apply the recorded ecosystem reactions. All first-wins and
	// keyed per URL/post, so order and repetition are free.
	for _, rec := range chk.Snapshot.Records {
		rep := world.Replay{
			URL:      rec.Target.URL,
			Platform: rec.Target.Platform,
			PostID:   rec.Target.PostID,
			Listings: make(map[string]time.Time, len(rec.Blocklist)),
		}
		for name, v := range rec.Blocklist {
			if v.Detected {
				rep.Listings[name] = v.At
			}
		}
		if rec.PlatformRemoved {
			rep.PostRemovedAt = rec.PlatformRemovedAt
		}
		if rec.HostRemoved {
			rep.HostRemovedAt = rec.HostRemovedAt
		}
		f.Sim.ReplayOutcome(rep)
	}
	// 3. Release every processed URL's page body, as the original run's
	// evaluation did. The original released the hosted subset it actually
	// scanned; releasing the superset is observably identical (nothing
	// re-reads a non-record site's body) and avoids re-deriving which
	// fetches completed.
	for _, u := range chk.Snapshot.Seen {
		_ = f.Sim.Release(u)
	}
	// 4. Study state: counters, records, observations, dedup set.
	f.State.Restore(chk.Snapshot)
	// 5. Journal: rebuild from the checkpoint's events so the canonical
	// JSONL stays a pure function of the event set — pre-cut events keep
	// their recording instants (Ord), post-resume events append, and
	// finishRun's canonical sort interleaves them exactly as the
	// uninterrupted run would have.
	if f.Metrics.Journal != nil {
		f.Metrics.Journal = obs.RebuildJournal(f.Clock.Now, f.Config.JournalRing, chk.Snapshot.Events)
	}
	// 6. Cursors the snapshot cannot rebuild.
	if chk.Poller != nil {
		f.poller.RestoreState(chk.Poller)
	}
	if chk.Limiter != nil && f.poller.Limiter != nil {
		f.poller.Limiter.RestoreState(chk.Limiter)
	}
	if chk.Faults != nil && f.injector != nil {
		f.injector.RestoreCursors(chk.Faults)
	}
	// 7. Re-register the in-flight §4.4 monitor schedules — before the
	// poll subscription (runLocal), preserving the original property that
	// a monitor tick sharing an instant with a poll cycle was scheduled
	// first and therefore fires first.
	if f.Config.MonitorInterval > 0 {
		f.resumeMonitors(chk.SimNow)
	}
	return nil
}

// resumeMonitors re-registers the periodic re-check schedule of every
// record whose observation is still incomplete at the cut instant. The
// original run registered each monitor at its classification instant C
// with ticks at C+i, C+2i, ... — the first tick unconditional, later
// ticks while they stay within the record's horizon. The next original
// tick after the cut at T is C + (floor((T-C)/i)+1)·i; re-registering
// there with the original horizon reproduces the remaining tick sequence
// exactly. Records iterate in canonical order — same-instant monitor
// ticks for different URLs are order-free (all their mutations and fault
// keys are per-URL, and the journal sorts by URL within an instant).
func (f *FreePhish) resumeMonitors(at time.Time) {
	interval := f.Config.MonitorInterval
	feedNames := f.world.Feeds.FeedNames()
	obsMap := f.State.Observations()
	for _, rec := range f.State.Records() {
		ob := obsMap[rec.Target.URL]
		if ob != nil && monitorDone(ob, feedNames) {
			continue // the original monitor already stopped itself
		}
		c := rec.ClassifiedAt
		k := at.Sub(c)/interval + 1
		first := c.Add(time.Duration(k) * interval)
		until := rec.Target.SharedAt.Add(MonitorHorizon)
		if k > 1 && first.After(until) {
			continue // the original schedule had already run out
		}
		f.monitorFrom(rec, first)
	}
}

// monitorDone reports whether an observation has seen everything the
// monitor watches for — the moment the original run's tick stopped itself.
func monitorDone(ob *state.Observation, feedNames []string) bool {
	if ob.HostDownAt.IsZero() {
		return false
	}
	for _, name := range feedNames {
		if _, seen := ob.Listings[name]; !seen {
			return false
		}
	}
	return true
}

// nextPollAfter computes the original poll schedule's next tick after t.
// Poll j fires at epoch + j·interval; the first tick is unconditional
// (Every's contract), later ticks only within the window — mirrored here
// so the resumed subscription is exactly the original's continuation.
func (f *FreePhish) nextPollAfter(t time.Time, until time.Time) (time.Time, bool) {
	interval := f.Config.PollInterval
	k := t.Sub(f.Config.Epoch)/interval + 1
	next := f.Config.Epoch.Add(time.Duration(k) * interval)
	if k > 1 && next.After(until) {
		return time.Time{}, false // the poll window had already closed
	}
	return next, true
}
