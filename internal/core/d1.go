package core

import (
	"fmt"
	"strings"
	"time"

	"freephish/internal/fwb"
	"freephish/internal/simclock"
	"freephish/internal/threat"
	"freephish/internal/vtsim"
	"freephish/internal/webgen"
)

// The Section 2 D1 pipeline: the paper compiled 4.5M URLs with distinct
// second-level domains shared over 2020–2022, scanned them with
// VirusTotal, labeled URLs with ≥2 detections as phishing (34.7K), and
// kept the 25.2K hosted on the 17 FWB services — excluding Dynamic-DNS
// URLs (DuckDNS, Netlify, …), which are outside the study's scope.

// VTLabelThreshold is the ≥2-detections rule from prior literature the
// paper adopts for URL labeling.
const VTLabelThreshold = 2

// dynDNSProviders are the subdomain providers Section 2 explicitly
// excludes from D1.
var dynDNSProviders = []string{
	"duckdns.org", "netlify.app", "ngrok.io", "no-ip.org", "dynv6.net",
	"hopto.org", "ddns.net", "repl.co",
}

// D1Stats summarizes a D1 construction run.
type D1Stats struct {
	CandidateURLs   int            // URLs with second-level domains scanned
	LabeledPhishing int            // ≥2 VT detections
	FWBPhishing     int            // the D1 dataset
	DynDNSExcluded  int            // labeled phishing on Dynamic-DNS providers
	BenignOrBelow   int            // below the detection threshold
	PerService      map[string]int // D1 composition by FWB service
	TwitterShare    float64        // platform mix of D1
}

// BuildD1 runs the Section 2 pipeline at the given scale (1.0 ≈ 34.7K
// labeled URLs; the candidate stream is sampled, not the paper's full
// 4.5M, since sub-threshold URLs carry no further information). The
// candidate mix is FWB phishing, Dynamic-DNS phishing, and benign FWB
// sites; each is scanned by the 76-engine fleet as of its collection age
// and labeled by the ≥2-detections rule.
func BuildD1(seed int64, scale float64) D1Stats {
	if scale <= 0 {
		scale = 1
	}
	rng := simclock.NewRNG(seed, "core.d1")
	g := webgen.NewGenerator(seed, nil, nil)
	scanner := vtsim.NewScanner()
	epoch := time.Date(2022, 8, 31, 0, 0, 0, 0, time.UTC) // collection end

	stats := D1Stats{PerService: map[string]int{}}
	nFWB := int(25200 * scale)
	nDyn := int(9500 * scale)
	nBenign := int(30000 * scale)

	// FWB phishing candidates: generated with the Table 4 service mix and
	// platform split, created up to two years before collection end so
	// engines have had time to accumulate verdicts.
	for i := 0; i < nFWB; i++ {
		created := epoch.AddDate(0, 0, -rng.Intn(720)-7)
		site := g.PhishingFWBSite(g.PickService(), created)
		tgt := threat.Derive(site, created, platformDraw(rng), fmt.Sprintf("d1-%d", i), nil, nil, rng)
		stats.CandidateURLs++
		if detectionsAt(scanner, tgt, epoch, rng) >= VTLabelThreshold {
			stats.LabeledPhishing++
			stats.FWBPhishing++
			stats.PerService[site.Service.Key]++
			if tgt.Platform == threat.Twitter {
				stats.TwitterShare++
			}
		} else {
			stats.BenignOrBelow++
		}
	}
	// Dynamic-DNS phishing: same attack content, hosted under an excluded
	// provider. They label as phishing but are filtered out of D1.
	for i := 0; i < nDyn; i++ {
		created := epoch.AddDate(0, 0, -rng.Intn(720)-7)
		site := g.SelfHostedPhishing(created)
		provider := dynDNSProviders[rng.Intn(len(dynDNSProviders))]
		site.URL = "https://" + randLabel(rng) + "." + provider + "/login"
		tgt := threat.Derive(site, created, platformDraw(rng), fmt.Sprintf("dyn-%d", i), nil, nil, rng)
		stats.CandidateURLs++
		if detectionsAt(scanner, tgt, epoch, rng) >= VTLabelThreshold {
			stats.LabeledPhishing++
			stats.DynDNSExcluded++
		} else {
			stats.BenignOrBelow++
		}
	}
	// Benign FWB candidates: legitimate sites shared on social media; a
	// small false-positive tail crosses the threshold, as with any
	// detection aggregate.
	for i := 0; i < nBenign; i++ {
		created := epoch.AddDate(0, 0, -rng.Intn(720)-7)
		site := g.BenignFWBSite(g.PickServiceUniform(), created)
		stats.CandidateURLs++
		// Benign pages draw engine false positives at a per-engine rate of
		// ~0.1%; two independent hits are rare.
		fp := 0
		for e := 0; e < scanner.NumEngines(); e++ {
			if rng.Bool(0.001) {
				fp++
			}
		}
		if fp >= VTLabelThreshold {
			stats.LabeledPhishing++
			u := site.URL
			if svc := identifyFromURL(u); svc != nil {
				stats.FWBPhishing++
				stats.PerService[svc.Key]++
			}
		} else {
			stats.BenignOrBelow++
		}
	}
	if stats.FWBPhishing > 0 {
		stats.TwitterShare /= float64(stats.FWBPhishing)
	}
	return stats
}

// detectionsAt counts engine verdicts accumulated by the collection date.
func detectionsAt(s *vtsim.Scanner, t *threat.Target, asOf time.Time, rng *simclock.RNG) int {
	return vtsim.CountBy(s.Assess(t, rng), asOf)
}

func platformDraw(rng *simclock.RNG) threat.Platform {
	// Section 2: 3.1M Twitter vs 1.4M Facebook candidates; D1 split 16.3K
	// vs 8.9K ≈ 65/35.
	if rng.Bool(0.647) {
		return threat.Twitter
	}
	return threat.Facebook
}

func randLabel(rng *simclock.RNG) string {
	const alnum = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, 8)
	for i := range b {
		b[i] = alnum[rng.Intn(len(alnum))]
	}
	return string(b)
}

func identifyFromURL(raw string) *fwb.Service {
	rest, ok := strings.CutPrefix(raw, "https://")
	if !ok {
		rest, _ = strings.CutPrefix(raw, "http://")
	}
	host, path, found := strings.Cut(rest, "/")
	if !found {
		path = "/"
	} else {
		path = "/" + path
	}
	return fwb.Identify(host, path)
}

// RenderD1 renders the Section 2 pipeline summary.
func RenderD1(s D1Stats) string {
	var b strings.Builder
	b.WriteString("Section 2: D1 construction (VirusTotal >=2-detections labeling)\n")
	fmt.Fprintf(&b, "  candidates scanned:        %d\n", s.CandidateURLs)
	fmt.Fprintf(&b, "  labeled phishing:          %d\n", s.LabeledPhishing)
	fmt.Fprintf(&b, "  on FWB services (D1):      %d (paper 25.2K)\n", s.FWBPhishing)
	fmt.Fprintf(&b, "  Dynamic-DNS excluded:      %d (outside study scope)\n", s.DynDNSExcluded)
	fmt.Fprintf(&b, "  D1 Twitter share:          %.1f%% (paper ~65%%)\n", 100*s.TwitterShare)
	return b.String()
}
