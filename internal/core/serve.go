package core

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"freephish/internal/crawler"
	"freephish/internal/threat"
)

// webServer is one loopback HTTP server fronting a simulated service.
type webServer struct {
	name string
	base string
	srv  *http.Server
	ln   net.Listener
}

// startServer binds a loopback listener and serves handler on it.
func startServer(name string, handler http.Handler) (*webServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: listen for %s: %w", name, err)
	}
	ws := &webServer{
		name: name,
		base: "http://" + ln.Addr().String(),
		srv:  &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() {
		// ErrServerClosed is the normal shutdown path.
		_ = ws.srv.Serve(ln)
	}()
	return ws, nil
}

func (ws *webServer) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = ws.srv.Shutdown(ctx)
}

// startServers brings up the simulated web (every FWB and self-hosted
// domain behind one virtual-host server) and the two platform APIs, then
// points the crawler at them.
func (f *FreePhish) startServers() error {
	hostSrv, err := startServer("web", f.Host)
	if err != nil {
		return err
	}
	f.servers = append(f.servers, hostSrv)
	endpoints := make(map[threat.Platform]string, len(f.Networks))
	for plat, nw := range f.Networks {
		s, err := startServer(string(plat), nw)
		if err != nil {
			f.stopServers()
			return err
		}
		f.servers = append(f.servers, s)
		endpoints[plat] = s.base
	}
	f.fetcher = crawler.NewFetcher(hostSrv.base)
	if f.Config.SnapshotCacheSize >= 0 {
		f.snapCache = crawler.NewSnapshotCache(f.Config.SnapshotCacheSize)
		f.fetcher.Cache = f.snapCache
	}
	f.poller = crawler.NewPoller(endpoints, http.DefaultClient, f.Config.Epoch)
	if f.Config.PollQuota > 0 {
		// Quota bucket against the simulation clock, so throttling scales
		// with virtual (not wall) time.
		f.poller.Limiter = crawler.NewRateLimiter(f.Config.PollQuota, f.Config.PollQuotaRate, f.Clock.Now)
	}
	f.wireMetrics()
	if f.Config.MonitorInterval > 0 {
		if err := f.startFeedServers(); err != nil {
			f.stopServers()
			return err
		}
	}
	return nil
}

func (f *FreePhish) stopServers() {
	for _, s := range f.servers {
		s.stop()
	}
	f.servers = nil
}
