package core

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"freephish/internal/crawler"
	"freephish/internal/faults"
	"freephish/internal/retry"
	"freephish/internal/threat"
	"freephish/internal/world"
)

// Backends: how the pipeline's world ports are wired.
const (
	// BackendInproc dispatches the crawler through an in-process
	// RoundTripper and binds the remaining ports straight to the Sim.
	// Zero sockets; the default.
	BackendInproc = "inproc"
	// BackendHTTP serves the simulated web, the platform APIs, the
	// blocklist feeds, and the SimAPI on real loopback listeners and
	// makes the pipeline reach everything over HTTP — the deployment
	// shape, producing a bit-identical study.
	BackendHTTP = "http"
)

// listenFunc binds a listener; tests inject failures through it.
type listenFunc func(network, addr string) (net.Listener, error)

func defaultListen(network, addr string) (net.Listener, error) {
	return net.Listen(network, addr)
}

// webServer is one loopback HTTP server fronting a simulated service.
type webServer struct {
	name string
	base string
	srv  *http.Server
	ln   net.Listener

	once    sync.Once
	stopErr error
}

// startServer binds a loopback listener and serves handler on it.
func (f *FreePhish) startServer(name string, handler http.Handler) (*webServer, error) {
	listen := f.listen
	if listen == nil {
		listen = defaultListen
	}
	ln, err := listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: listen for %s: %w", name, err)
	}
	ws := &webServer{
		name: name,
		base: "http://" + ln.Addr().String(),
		srv:  &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() {
		// ErrServerClosed is the normal shutdown path.
		_ = ws.srv.Serve(ln)
	}()
	return ws, nil
}

// stop shuts the server down. It is safe to call more than once — the
// shutdown runs exactly once and later calls return the recorded error.
func (ws *webServer) stop() error {
	ws.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := ws.srv.Shutdown(ctx); err != nil {
			ws.stopErr = fmt.Errorf("core: stop %s: %w", ws.name, err)
		}
	})
	return ws.stopErr
}

// startServers wires the pipeline's world ports according to
// Config.Backend. Both wirings share the Sim substrate; they differ only
// in how the pipeline reaches it.
func (f *FreePhish) startServers() error {
	f.retryPol = f.buildRetry()
	if f.Config.Faults != nil {
		f.injector = faults.NewInjector(f.Config.Seed, *f.Config.Faults)
		f.injector.SetClock(f.Clock.Now, f.Config.Epoch)
		// Injected latency must not consume wall time — chaos is about
		// failure paths, not slowing the study down.
		f.injector.SetSleep(func(time.Duration) {})
	}
	switch f.Config.Backend {
	case "", BackendInproc:
		return f.startInproc()
	case BackendHTTP:
		return f.startHTTP()
	}
	return fmt.Errorf("core: unknown backend %q (want %q or %q)", f.Config.Backend, BackendInproc, BackendHTTP)
}

// buildRetry is the run's single retry policy: enough attempts to ride
// out the default fault profile's burst cap, backoff that never sleeps
// wall-clock (the sim clock is authoritative), and a per-endpoint
// breaker sized so only a genuine outage — not injected chaos — trips it.
func (f *FreePhish) buildRetry() *retry.Policy {
	return &retry.Policy{
		MaxAttempts:      4,
		BaseDelay:        100 * time.Millisecond,
		MaxDelay:         2 * time.Second,
		Multiplier:       2,
		Jitter:           0.25,
		Seed:             f.Config.Seed,
		Sleep:            retry.NoSleep,
		Now:              f.Clock.Now,
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Minute,
	}
}

// chaos wraps h with the fault-injection middleware when chaos is on.
func (f *FreePhish) chaos(endpoint string, jsonBody bool, h http.Handler) http.Handler {
	if f.injector == nil {
		return h
	}
	return f.injector.Middleware(endpoint, jsonBody, h)
}

// startInproc dispatches the crawler's HTTP clients through an in-process
// RoundTripper — same handlers, same bytes, no sockets — and binds every
// other port directly to the Sim.
func (f *FreePhish) startInproc() error {
	rt := world.NewHandlerTransport()
	rt.Handle("web.inproc", f.chaos("web", false, f.Sim.WebHandler()))
	endpoints := make(map[threat.Platform]string, len(f.Sim.Networks))
	for _, plat := range f.Sim.Platforms() {
		h, _ := f.Sim.PlatformHandler(plat)
		host := string(plat) + ".inproc"
		rt.Handle(host, f.chaos(string(plat), true, h))
		endpoints[plat] = "http://" + host
	}
	client := &http.Client{Transport: rt, Timeout: 10 * time.Second}
	f.wirePipeline("http://web.inproc", endpoints, client)
	f.world = world.WithJournal(
		world.WithRetry(faults.WrapWorld(world.Inproc(f.Sim), f.injector), f.retryPol),
		f.Metrics.Journal)
	f.world.Stream = f.wrapStream(f.poller)
	f.world.Snap = f.fetcher
	f.eval = &evaluator{oracle: f.world.Oracle, state: f.State, metrics: f.Metrics}
	f.wireMetrics()
	return nil
}

// startHTTP brings up real loopback servers — the virtual-host web, the
// platform APIs, the SimAPI, and (when the monitor runs) the blocklist
// feeds — and points both the crawler and the world ports at them.
func (f *FreePhish) startHTTP() error {
	hostSrv, err := f.startServer("web", f.chaos("web", false, f.Sim.WebHandler()))
	if err != nil {
		return err
	}
	f.servers = append(f.servers, hostSrv)
	endpoints := make(map[threat.Platform]string, len(f.Sim.Networks))
	for _, plat := range f.Sim.Platforms() {
		h, _ := f.Sim.PlatformHandler(plat)
		s, err := f.startServer(string(plat), f.chaos(string(plat), true, h))
		if err != nil {
			f.stopServers()
			return err
		}
		f.servers = append(f.servers, s)
		endpoints[plat] = s.base
	}
	apiSrv, err := f.startServer("simapi", f.chaos("simapi", true, world.NewSimAPI(f.Sim)))
	if err != nil {
		f.stopServers()
		return err
	}
	f.servers = append(f.servers, apiSrv)
	feedBases := map[string]string{}
	if f.Config.MonitorInterval > 0 {
		if feedBases, err = f.startFeedServers(); err != nil {
			f.stopServers()
			return err
		}
	}
	f.wirePipeline(hostSrv.base, endpoints, nil)
	f.world = world.WithJournal(world.OverHTTP(world.Endpoints{
		API:       apiSrv.base,
		Platforms: endpoints,
		Feeds:     feedBases,
		Retry:     f.retryPol,
	}), f.Metrics.Journal)
	f.world.Stream = f.wrapStream(f.poller)
	f.world.Snap = f.fetcher
	f.eval = &evaluator{oracle: f.world.Oracle, state: f.State, metrics: f.Metrics}
	f.wireMetrics()
	return nil
}

// wrapStream applies the test seam to the backend-wired URL stream.
func (f *FreePhish) wrapStream(s world.URLStream) world.URLStream {
	if f.streamWrap != nil {
		return f.streamWrap(s)
	}
	return s
}

// wirePipeline builds the fetcher and poller against the given web base
// and platform endpoints — identical construction for both backends, so
// retries, caching, and pagination behave the same way everywhere. A nil
// client leaves each component on its own timeout-bearing default.
func (f *FreePhish) wirePipeline(webBase string, endpoints map[threat.Platform]string, client *http.Client) {
	f.fetcher = crawler.NewFetcher(webBase)
	if client != nil {
		f.fetcher.Client = client
	}
	f.fetcher.Retry = f.retryPol
	if f.Config.SnapshotCacheSize >= 0 {
		f.snapCache = crawler.NewSnapshotCache(f.Config.SnapshotCacheSize)
		f.fetcher.Cache = f.snapCache
	}
	f.poller = crawler.NewPoller(endpoints, client, f.Config.Epoch)
	f.poller.Retry = f.retryPol
	if f.Config.PollQuota > 0 {
		// Quota bucket against the simulation clock, so throttling scales
		// with virtual (not wall) time.
		f.poller.Limiter = crawler.NewRateLimiter(f.Config.PollQuota, f.Config.PollQuotaRate, f.Clock.Now)
	}
}

// startFeedServers exposes each blocklist feed's lookup API on its own
// loopback server and returns the per-entity base URLs.
func (f *FreePhish) startFeedServers() (map[string]string, error) {
	bases := make(map[string]string, len(f.Sim.Feeds))
	for _, name := range f.Sim.FeedNames() {
		feed, _ := f.Sim.FeedHandler(name)
		srv, err := f.startServer("feed."+name, f.chaos("feed."+name, true, feed))
		if err != nil {
			return nil, err
		}
		f.servers = append(f.servers, srv)
		bases[name] = srv.base
	}
	return bases, nil
}

// Close releases every live resource this framework holds: the loopback
// servers and the crawler clients' idle connections. Idempotent, and safe
// on a partially started framework (every field it touches is nil-guarded).
// The shard coordinator calls it on each failed attempt so a retry with a
// fresh child never stacks a leaked listener or keep-alive socket on top
// of the dead one, and on the coordinator's own failure path so sibling
// shards are torn down rather than abandoned.
func (f *FreePhish) Close() {
	f.stopServers()
	if f.fetcher != nil && f.fetcher.Client != nil {
		f.fetcher.Client.CloseIdleConnections()
	}
	if f.poller != nil && f.poller.Client != nil {
		f.poller.Client.CloseIdleConnections()
	}
}

// stopServers shuts every server down. Safe under double invocation (the
// per-server stop is once-guarded); shutdown errors are surfaced through
// the run logger instead of being discarded.
func (f *FreePhish) stopServers() {
	logger := f.Config.Logger
	if logger == nil {
		logger = slog.Default()
	}
	for _, s := range f.servers {
		if err := s.stop(); err != nil {
			logger.Error("server shutdown failed", "server", s.name, "err", err)
		}
	}
	f.servers = nil
}
