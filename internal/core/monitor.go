package core

import (
	"net/http"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/blocklist"
)

// The active monitor reproduces §4.4's measurement mechanics: each flagged
// URL is re-checked at a fixed interval — a live HTTP probe of the site
// (404/410 ⇒ taken down) and lookups against every blocklist's HTTP API —
// until the one-week observation horizon. The paper polls every 10
// minutes; the monitor interval is configurable because a full-scale run
// at 10 minutes means ~63M probes. Observed transition times land within
// one interval of the scheduled event times, which the end-to-end tests
// assert — closing the loop between the closed-form assessments and what
// an external measurement would actually see.

// MonitorHorizon is how long each URL stays under observation.
const MonitorHorizon = 7 * 24 * time.Hour

// Observation is what the active monitor saw for one URL.
type Observation struct {
	// HostDownAt is when a probe first returned a non-200 status.
	HostDownAt time.Time
	// Listings maps entity name to when a feed lookup first matched.
	Listings map[string]time.Time
	// Probes counts monitor cycles executed.
	Probes int
}

// scheduleMonitor registers rec for periodic re-checking. Feed clients
// must be initialized (startServers with monitoring enabled).
func (f *FreePhish) scheduleMonitor(rec *analysis.Record) {
	obs := &Observation{Listings: make(map[string]time.Time)}
	f.Observations[rec.Target.URL] = obs

	until := rec.Target.SharedAt.Add(MonitorHorizon)
	var stop func()
	stop = f.Clock.Every(f.Config.MonitorInterval, until, "freephish.monitor", func(now time.Time) {
		sp := f.Metrics.Tracer.Start("monitor")
		obs.Probes++
		f.Metrics.MonitorProbes.Inc()
		done := true
		// Probe the site over HTTP.
		if obs.HostDownAt.IsZero() {
			_, status, err := f.fetcher.Snapshot(rec.Target.URL)
			if err == nil && status != http.StatusOK {
				obs.HostDownAt = now
				f.Metrics.MonitorHostDown.Inc()
			} else {
				done = false
			}
		}
		// Query each blocklist feed's lookup API.
		for name, client := range f.feedClients {
			if _, seen := obs.Listings[name]; seen {
				continue
			}
			listed, err := client.IsListed(rec.Target.URL)
			if err == nil && listed {
				obs.Listings[name] = now
				f.Metrics.MonitorListings.With(name).Inc()
			} else {
				done = false
			}
		}
		sp.End()
		if done && stop != nil {
			stop() // everything observed: no further probes needed
		}
	})
}

// feedClients is populated by startServers when monitoring is enabled.
func (f *FreePhish) startFeedServers() error {
	f.feedClients = make(map[string]*blocklist.Client, len(f.Feeds))
	for name, feed := range f.Feeds {
		srv, err := startServer("feed."+name, feed)
		if err != nil {
			return err
		}
		f.servers = append(f.servers, srv)
		f.feedClients[name] = blocklist.NewClient(srv.base)
	}
	return nil
}
