package core

import (
	"context"
	"net/http"
	"sort"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/obs"
	"freephish/internal/pipe"
)

// The active monitor reproduces §4.4's measurement mechanics: each flagged
// URL is re-checked at a fixed interval — a live HTTP probe of the site
// (404/410 ⇒ taken down) and lookups against every blocklist's API —
// until the one-week observation horizon. The paper polls every 10
// minutes; the monitor interval is configurable because a full-scale run
// at 10 minutes means ~63M probes. Observed transition times land within
// one interval of the scheduled event times, which the end-to-end tests
// assert — closing the loop between the closed-form assessments and what
// an external measurement would actually see.
//
// The monitor consumes only the Snapshotter and ThreatFeeds ports: on the
// inproc backend the feed lookups resolve directly against the feeds, on
// the http backend they go through each feed's lookup server. Either way
// the observations are identical — a lookup is read-only and the feeds'
// visibility rule (future-dated listings are hidden) lives in the feed.

// MonitorHorizon is how long each URL stays under observation.
const MonitorHorizon = 7 * 24 * time.Hour

// skewed applies the chaos injector's clock-skew fault to a timestamp
// the monitor is about to consume: a skewed endpoint reports event times
// shifted by a seeded, bounded offset (see faults.Injector.ClockSkew).
// With chaos off — or with the default profile, whose skew rate is
// zero — the timestamp passes through untouched.
func (f *FreePhish) skewed(endpoint, url string, at time.Time) time.Time {
	if f.injector == nil {
		return at
	}
	return at.Add(f.injector.ClockSkew(endpoint, url))
}

// scheduleMonitor registers rec for periodic re-checking, starting one
// interval after the classification instant.
func (f *FreePhish) scheduleMonitor(rec *analysis.Record) {
	f.monitorFrom(rec, f.Clock.Now().Add(f.Config.MonitorInterval))
}

// monitorFrom registers rec's periodic re-check schedule with its first
// tick at the absolute instant first. scheduleMonitor passes now+interval
// (the historical behavior); checkpoint resume passes the next tick of the
// original schedule (classification instant + k·interval), which is what
// reproduces the uninterrupted run's tick sequence exactly.
func (f *FreePhish) monitorFrom(rec *analysis.Record, first time.Time) {
	ob := f.State.StartObservation(rec.Target.URL)
	// The backends agree on the feed set but not its order (the http
	// client sorts, the sim keeps assessment order). The observations are
	// order-agnostic maps, but the journal's listed events are not — sort
	// so a tick's checks fan out identically on every backend.
	feedNames := append([]string(nil), f.world.Feeds.FeedNames()...)
	sort.Strings(feedNames)
	j := f.Metrics.Journal

	until := rec.Target.SharedAt.Add(MonitorHorizon)
	var stop func()
	stop = f.Clock.EveryAt(first, f.Config.MonitorInterval, until, "freephish.monitor", func(now time.Time) {
		sp := f.Metrics.Tracer.Start("monitor")
		ob.MarkProbe()
		f.Metrics.MonitorProbes.Inc()
		// Fan the tick's still-pending checks — the live HTTP probe (feed
		// "") plus one lookup per unlisted blocklist — through the streaming
		// engine: every check is a read-only port call, so they run
		// concurrently, while the Observation mutations happen in the
		// ordered drain, keeping the record byte-identical to the old
		// sequential loop at every (workers, queue-depth) setting. Monitor
		// ticks fire from the single-threaded clock and the drain is
		// ordered, so lifecycle events here keep the determinism contract.
		type check struct{ feed string }
		checks := make([]check, 0, 1+len(feedNames))
		if ob.HostDownAt.IsZero() {
			checks = append(checks, check{})
		}
		for _, name := range feedNames {
			if _, seen := ob.Listings[name]; !seen {
				checks = append(checks, check{feed: name})
			}
		}
		if j != nil {
			j.Record(rec.Target.URL, obs.EvRecheck, now, "checks", itoa(len(checks)))
		}
		done := true
		p := pipe.New(context.Background(), pipe.Options{
			Name: "monitor", Registry: f.Metrics.Registry,
			OnEmit: journalEmit(j, "monitor"),
		})
		depth := f.queueDepth()
		st := pipe.Stage(pipe.Source(p, depth, checks), "check", f.workers(), depth,
			func(i int, c check) (bool, error) {
				if c.feed == "" {
					_, status, err := f.world.Snap.Snapshot(rec.Target.URL)
					return err == nil && status != http.StatusOK, nil
				}
				listed, err := f.world.Feeds.Listed(c.feed, rec.Target.URL)
				return err == nil && listed, nil
			})
		_ = pipe.Drain(st, func(i int, hit bool) error {
			switch c := checks[i]; {
			case !hit:
				done = false // still up / not yet listed: keep observing
			case c.feed == "":
				at := f.skewed("monitor.probe", rec.Target.URL, now)
				ob.MarkHostDown(at)
				f.Metrics.MonitorHostDown.Inc()
				if j != nil {
					j.Record(rec.Target.URL, obs.EvHostDown, at)
				}
			default:
				at := f.skewed("feed."+c.feed, rec.Target.URL, now)
				ob.MarkListed(c.feed, at)
				f.Metrics.MonitorListings.With(c.feed).Inc()
				if j != nil {
					j.Record(rec.Target.URL, obs.EvListed, at, "entity", c.feed)
				}
			}
			return nil
		})
		sp.End()
		if done && stop != nil {
			stop() // everything observed: no further probes needed
		}
	})
}
