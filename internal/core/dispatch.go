package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"freephish/internal/baselines"
	"freephish/internal/obs"
	"freephish/internal/retry"
	"freephish/internal/shard"
	"freephish/internal/shardrpc"
	"freephish/internal/state"
)

// Shard dispatch (the internal/shard boundary, coordinator side). The
// coordinator no longer runs shards directly: it builds a serializable
// shard.Spec per shard and hands it to a Runner — a local child framework
// (localRunner) or a remote freephish-worker reached through
// shardrpc.Client. Every runner streams periodic checkpoints back; when an
// attempt dies (mid-run failure, local panic, remote blackout, open
// breaker) the next attempt ADOPTS the last streamed checkpoint instead of
// replaying the sub-stream from ordinal zero — the PR 9 replay path proves
// the resumed run byte-identical, so failover costs only the work since
// the last cut. Runner placement (which worker, or local) is the one thing
// that may vary run to run; the shard's output never does.

// dispatcher owns runner selection and the adoption loop for one sharded
// run. Safe for the coordinator's concurrent per-shard goroutines: the
// policy and clients are concurrency-safe, and all per-attempt state lives
// in runShard's frame.
type dispatcher struct {
	f *FreePhish
	// stride is the poll-cycle cadence of the checkpoints every runner
	// streams back (Config.CheckpointEvery, defaulting to one simulated
	// day) — the granularity of failover adoption.
	stride  int
	clients []*shardrpc.Client
	// pol guards remote dispatch: single-attempt Do calls (the adoption
	// loop owns retries) so every transport failure is a give-up the
	// per-endpoint breaker counts; an endpoint that keeps failing opens and
	// pick routes around it.
	pol *retry.Policy
}

// newDispatcher wires the run's dispatcher from Config.ShardWorkers.
func (f *FreePhish) newDispatcher() *dispatcher {
	d := &dispatcher{f: f, stride: f.Config.CheckpointEvery}
	if d.stride <= 0 {
		d.stride = int(24 * time.Hour / f.Config.PollInterval)
		if d.stride < 1 {
			d.stride = 1
		}
	}
	for _, ep := range f.Config.ShardWorkers {
		if ep = strings.TrimSpace(ep); ep != "" {
			d.clients = append(d.clients, shardrpc.NewClient(ep))
		}
	}
	if len(d.clients) > 0 {
		d.pol = &retry.Policy{
			MaxAttempts:      1,
			Seed:             f.Config.Seed,
			BreakerThreshold: 2,
			BreakerCooldown:  30 * time.Second,
			OnBreaker: func(key string, open bool) {
				transition := "close"
				if open {
					transition = "open"
				}
				f.Metrics.BreakerEvents.With("worker|"+key, transition).Inc()
				if j := f.Metrics.Journal; j != nil {
					j.RecordOps("", obs.EvBreaker,
						"key", "worker|"+key, "transition", transition)
				}
			},
		}
	}
	return d
}

// pick selects the runner for one shard attempt: workers first, rotated by
// (shard, attempt) so retries move to a different endpoint and shards
// spread across the fleet, skipping endpoints whose breaker is open; once
// a shard has burned one attempt per worker (or no workers are usable) it
// falls back to a local child, which always exists.
func (d *dispatcher) pick(i, attempt int) *shardrpc.Client {
	n := len(d.clients)
	if n == 0 || attempt >= n {
		return nil
	}
	for k := 0; k < n; k++ {
		c := d.clients[(i+attempt+k)%n]
		if d.pol.BreakerOpen(c.Name()) {
			continue
		}
		return c
	}
	return nil
}

// runShard drives shard i to completion through the dispatch boundary,
// adopting the last streamed checkpoint across attempts. The returned
// child is the completed local framework when the final attempt ran
// in-process (nil for a remote run — its world lived on the worker).
func (d *dispatcher) runShard(i int) (*state.Snapshot, *FreePhish, error) {
	f := d.f
	var lastErr error
	var lastChk []byte
	for attempt := 0; attempt < shardAttempts; attempt++ {
		spec := shard.Spec{ShardSpec: f.shardSpec(i, d.stride), Resume: lastChk}
		adopted := len(lastChk) > 0
		// Both runners deliver checkpoints synchronously from this shard's
		// goroutine (the local child's driver loop, or the RPC client's
		// frame decoder), so lastChk needs no lock.
		onChk := func(data []byte) error {
			lastChk = append(lastChk[:0], data...)
			f.observeShardCheckpoint(i, attempt, data)
			return nil
		}
		client := d.pick(i, attempt)
		runner := "local"
		if client != nil {
			runner = client.Name()
		}
		f.observeShardDispatch(i, attempt, runner, adopted)
		if adopted {
			f.observeShardAdopt(i, attempt, runner, spec.Resume)
		}
		var snap *state.Snapshot
		var child *FreePhish
		var err error
		if client != nil {
			err = d.pol.Do(context.Background(), client.Name(), func() error {
				s, rerr := client.Run(context.Background(), spec, onChk)
				snap = s
				return rerr
			})
			if err != nil {
				f.Metrics.WorkerFailures.With(client.Name()).Inc()
			}
		} else {
			lr := &localRunner{f: f, shard: i, attempt: attempt}
			snap, err = lr.Run(context.Background(), spec, onChk)
			child = lr.child
		}
		if err != nil {
			f.observeShardRetry(i, attempt, err)
			lastErr = err
			continue
		}
		f.observeShardDone(i, attempt, runner)
		return snap, child, nil
	}
	return nil, nil, fmt.Errorf("core: shard %d/%d failed after %d attempts: %w",
		i, f.Config.Shards, shardAttempts, lastErr)
}

// shardSpec serializes shard i's dispatch unit from this coordinator's
// configuration. The fingerprint is the coordinator's own plus the shard
// suffix — exactly what the runner's child framework will compute — so a
// drifted worker refuses the spec instead of running a different study.
func (f *FreePhish) shardSpec(i, stride int) state.ShardSpec {
	cfg := f.Config
	sp := state.ShardSpec{
		Seed:              cfg.Seed,
		Epoch:             cfg.Epoch,
		Duration:          cfg.Duration,
		FWBTwitter:        cfg.FWBTwitter,
		FWBFacebook:       cfg.FWBFacebook,
		SelfTwitter:       cfg.SelfTwitter,
		SelfFacebook:      cfg.SelfFacebook,
		BenignPerPhish:    cfg.BenignPerPhish,
		Scale:             cfg.Scale,
		PollInterval:      cfg.PollInterval,
		TrainPerClass:     cfg.TrainPerClass,
		GrowthExponent:    cfg.GrowthExponent,
		MonitorInterval:   cfg.MonitorInterval,
		ReshareRate:       cfg.ReshareRate,
		PollQuota:         cfg.PollQuota,
		PollQuotaRate:     cfg.PollQuotaRate,
		Workers:           cfg.Workers,
		QueueDepth:        cfg.QueueDepth,
		SnapshotCacheSize: cfg.SnapshotCacheSize,
		Backend:           cfg.Backend,
		Faults:            cfg.Faults,
		Journal:           cfg.Journal,
		JournalRing:       cfg.JournalRing,
		Shard:             i,
		Shards:            cfg.Shards,
		CheckpointEvery:   stride,
		Fingerprint:       f.fingerprint() + fmt.Sprintf(" shard=%d/%d", i, cfg.Shards),
	}
	if cfg.Cascade != nil {
		sp.CascadeOn = true
		sp.CascadeBenignBelow = cfg.Cascade.BenignBelow
		sp.CascadePhishAbove = cfg.Cascade.PhishAbove
	}
	return sp
}

// localRunner is the in-process shard.Runner: today's fresh-child path,
// byte-identical to the pre-boundary coordinator, plus checkpoint
// streaming through the child's sink and resume-from-adopted-checkpoint.
type localRunner struct {
	f       *FreePhish
	shard   int
	attempt int
	// child is the completed framework after a successful Run — retained so
	// the coordinator's Verify can audit its world.
	child *FreePhish
}

// Name implements shard.Runner.
func (r *localRunner) Name() string { return "local" }

// Run implements shard.Runner with a child framework. A panic inside the
// child (the local analogue of a worker crash) is converted to an error so
// the adoption loop can hand the streamed checkpoint to a replacement
// instead of unwinding the whole study.
func (r *localRunner) Run(ctx context.Context, spec shard.Spec, onCheckpoint func(data []byte) error) (snap *state.Snapshot, err error) {
	f := r.f
	child := f.newShard(r.shard)
	child.Config.CheckpointEvery = spec.CheckpointEvery
	child.checkpointSink = onCheckpoint
	if len(spec.Resume) > 0 {
		chk, derr := state.DecodeCheckpoint(spec.Resume)
		if derr != nil {
			child.Close()
			return nil, fmt.Errorf("core: shard %d adopt checkpoint: %w", r.shard, derr)
		}
		child.Config.Resume = chk
	}
	if f.shardPrep != nil {
		f.shardPrep(child, r.shard, r.attempt)
	}
	if f.shardHook != nil {
		if herr := f.shardHook(r.shard, r.attempt); herr != nil {
			// The failed child is done for: close it before its replacement
			// is built, or every retry leaks the previous attempt's
			// listeners and keep-alive sockets for the rest of the study.
			child.Close()
			return nil, herr
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			child.Close()
			snap, err = nil, fmt.Errorf("core: shard %d panicked: %v", r.shard, rec)
		}
	}()
	if _, rerr := child.Run(); rerr != nil {
		child.Close()
		return nil, rerr
	}
	var events []obs.Event
	if j := child.Metrics.Journal; j != nil {
		events = j.Events()
	}
	r.child = child
	return child.State.Snapshot(events), nil
}

// SpecRunner is the worker-daemon shard.Runner: it rebuilds a complete
// framework from each spec and runs it to completion. Trained models are
// cached per study fingerprint — training is bit-identical per seed, so a
// worker retraining from the spec yields byte-for-byte the models the
// coordinator holds, and the second shard of the same study skips the
// cost. cmd/freephish-worker serves one of these behind shardrpc.Server.
type SpecRunner struct {
	// Workers, when > 0, overrides the spec's probe-pool size with the
	// worker machine's own parallelism — byte-identity across Workers is
	// the repo's standing invariant, so the override is free.
	Workers int
	// Logger, when set, narrates training and run lifecycle.
	Logger interface {
		Info(msg string, args ...any)
	}

	mu     sync.Mutex
	models map[string]*workerModels
}

// workerModels is one cached training result.
type workerModels struct {
	model   *baselines.StackDetector
	base    *baselines.StackDetector
	lexical *baselines.LexicalScorer
}

// NewSpecRunner returns a SpecRunner with an empty model cache.
func NewSpecRunner() *SpecRunner {
	return &SpecRunner{models: make(map[string]*workerModels)}
}

// Name implements shard.Runner.
func (r *SpecRunner) Name() string { return "worker" }

// Run implements shard.Runner: rebuild, verify the fingerprint, train (or
// reuse cached models), run, snapshot.
func (r *SpecRunner) Run(ctx context.Context, spec shard.Spec, onCheckpoint func(data []byte) error) (*state.Snapshot, error) {
	cfg := configFromSpec(spec.ShardSpec)
	if r.Workers > 0 {
		cfg.Workers = r.Workers
	}
	child := New(cfg)
	child.shardIndex = spec.Shard
	child.shardCount = spec.Shards
	if spec.Fingerprint != "" {
		if got := child.fingerprint(); got != spec.Fingerprint {
			// Not transient: every retry against this worker build would
			// compute the same different study.
			return nil, fmt.Errorf("core: spec fingerprint mismatch (worker build or spec drift):\n  spec:   %s\n  worker: %s", spec.Fingerprint, got)
		}
	}
	m, err := r.trainedFor(cfg)
	if err != nil {
		return nil, err
	}
	child.Model = m.model
	child.BaseModel = m.base
	child.sharedModels = true
	if cfg.Cascade != nil {
		child.Lexical = m.lexical
		// The cascade pairs the cached scorer with THIS spec's thresholds —
		// never cached, so two studies differing only in thresholds cannot
		// poison each other through the model cache.
		child.cascade = &baselines.Cascade{
			Scorer:      m.lexical,
			BenignBelow: cfg.Cascade.BenignBelow,
			PhishAbove:  cfg.Cascade.PhishAbove,
		}
	}
	child.checkpointSink = onCheckpoint
	if len(spec.Resume) > 0 {
		chk, derr := state.DecodeCheckpoint(spec.Resume)
		if derr != nil {
			return nil, fmt.Errorf("core: shard %d adopt checkpoint: %w", spec.Shard, derr)
		}
		child.Config.Resume = chk
	}
	if r.Logger != nil {
		r.Logger.Info("running shard spec",
			"shard", spec.Shard, "shards", spec.Shards,
			"seed", spec.Seed, "resume", len(spec.Resume) > 0)
	}
	defer child.Close()
	if _, err := child.Run(); err != nil {
		return nil, err
	}
	var events []obs.Event
	if j := child.Metrics.Journal; j != nil {
		events = j.Events()
	}
	return child.State.Snapshot(events), nil
}

// trainedFor returns (training if needed) the models for cfg's study. The
// cache key is the base study fingerprint — every determinism-relevant
// knob — computed on a donor framework that never runs, so the cached
// models carry no per-run observers (the shard children mark them shared,
// exactly like the coordinator's children do).
func (r *SpecRunner) trainedFor(cfg Config) (*workerModels, error) {
	donor := New(cfg)
	key := donor.fingerprint()
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.models[key]; ok {
		return m, nil
	}
	if r.Logger != nil {
		r.Logger.Info("training models", "fingerprint", key)
	}
	if err := donor.Train(); err != nil {
		return nil, err
	}
	m := &workerModels{model: donor.Model, base: donor.BaseModel, lexical: donor.Lexical}
	if r.models == nil {
		r.models = make(map[string]*workerModels)
	}
	r.models[key] = m
	return m, nil
}

// configFromSpec inverts shardSpec: rebuild the runnable Config on the
// worker side. Shards is pinned to 1 (the spec IS one shard; the partition
// rides in shardIndex/shardCount) and the observability hooks stay nil —
// the worker daemon owns its own registry and logging.
func configFromSpec(sp state.ShardSpec) Config {
	cfg := Config{
		Seed:              sp.Seed,
		Epoch:             sp.Epoch,
		Duration:          sp.Duration,
		FWBTwitter:        sp.FWBTwitter,
		FWBFacebook:       sp.FWBFacebook,
		SelfTwitter:       sp.SelfTwitter,
		SelfFacebook:      sp.SelfFacebook,
		BenignPerPhish:    sp.BenignPerPhish,
		Scale:             sp.Scale,
		PollInterval:      sp.PollInterval,
		TrainPerClass:     sp.TrainPerClass,
		GrowthExponent:    sp.GrowthExponent,
		MonitorInterval:   sp.MonitorInterval,
		ReshareRate:       sp.ReshareRate,
		PollQuota:         sp.PollQuota,
		PollQuotaRate:     sp.PollQuotaRate,
		Workers:           sp.Workers,
		QueueDepth:        sp.QueueDepth,
		SnapshotCacheSize: sp.SnapshotCacheSize,
		Backend:           sp.Backend,
		Faults:            sp.Faults,
		Journal:           sp.Journal,
		JournalRing:       sp.JournalRing,
		Shards:            1,
		CheckpointEvery:   sp.CheckpointEvery,
	}
	if cfg.Backend == "" {
		cfg.Backend = BackendInproc
	}
	if sp.CascadeOn {
		cfg.Cascade = &CascadeConfig{
			BenignBelow: sp.CascadeBenignBelow,
			PhishAbove:  sp.CascadePhishAbove,
		}
	}
	return cfg
}

// Shard lifecycle ops events (ring-only — see obs.Journal's class
// contract; none of these can perturb the canonical record).

func (f *FreePhish) observeShardDispatch(shard, attempt int, runner string, adopted bool) {
	f.Metrics.ShardDispatched.With(runner).Inc()
	if j := f.Metrics.Journal; j != nil {
		adoptedStr := "false"
		if adopted {
			adoptedStr = "true"
		}
		j.RecordOps("", obs.EvShardDispatch,
			"shard", itoa(shard), "attempt", itoa(attempt),
			"runner", runner, "adopted", adoptedStr)
	}
}

func (f *FreePhish) observeShardCheckpoint(shard, attempt int, data []byte) {
	if j := f.Metrics.Journal; j != nil {
		at := ""
		if t, err := state.PeekCheckpointInstant(data); err == nil {
			at = t.UTC().Format(time.RFC3339)
		}
		j.RecordOps("", obs.EvShardCheckpoint,
			"shard", itoa(shard), "attempt", itoa(attempt), "at", at)
	}
}

func (f *FreePhish) observeShardAdopt(shard, attempt int, runner string, chk []byte) {
	f.Metrics.ShardAdopted.With(itoa(shard)).Inc()
	if j := f.Metrics.Journal; j != nil {
		from := ""
		if t, err := state.PeekCheckpointInstant(chk); err == nil {
			from = t.UTC().Format(time.RFC3339)
		}
		j.RecordOps("", obs.EvShardAdopt,
			"shard", itoa(shard), "attempt", itoa(attempt),
			"runner", runner, "from", from)
	}
}

func (f *FreePhish) observeShardDone(shard, attempt int, runner string) {
	if j := f.Metrics.Journal; j != nil {
		j.RecordOps("", obs.EvShardDone,
			"shard", itoa(shard), "attempt", itoa(attempt), "runner", runner)
	}
}
