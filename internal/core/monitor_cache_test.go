package core

import (
	"testing"
	"time"
)

// The §4.4 active monitor re-probes every flagged URL on a cadence; once a
// page stops changing, those probes must reuse the cached parse instead of
// re-parsing a byte-identical body. This is the integration-level check of
// the crawler.SnapshotCache wiring (the unit tests live in crawler).
func TestMonitorReprobesHitSnapshotCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 9
	cfg.Scale = 0.003
	cfg.TrainPerClass = 80
	cfg.MonitorInterval = 12 * time.Hour
	f := New(cfg)
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	t.Logf("cache: hits=%d misses=%d entries=%d", f.snapCache.Hits(), f.snapCache.Misses(), f.snapCache.Len())
	if f.snapCache.Hits() == 0 {
		t.Fatal("monitor re-probes produced no snapshot-cache hits")
	}
}
