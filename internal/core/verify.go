package core

import (
	"fmt"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/world"
)

// Verify runs internal-consistency checks over a completed study — the
// invariants every valid run must satisfy regardless of seed, scale,
// backend, or shard count. The end-to-end tests call it, and
// cmd/freephish can surface violations instead of silently printing
// corrupt tables.
//
// Verification is a harness-side audit, so it always inspects the Sim
// through a fresh in-process port view: by the time Verify runs the http
// backend's servers are already down, and the audit must see the world's
// final state directly. A sharded study has one world per shard — each
// record's post and site live in exactly one of them — so the audit
// probes every shard's view until it finds the record's home.
func (f *FreePhish) Verify() error {
	views := []world.World{world.Inproc(f.Sim)}
	for _, sh := range f.shards {
		views = append(views, world.Inproc(sh.Sim))
	}
	seen := map[string]bool{}
	horizonEnd := f.Config.Epoch.Add(f.Config.Duration + 7*24*time.Hour)
	for i, r := range f.State.Records() {
		t := r.Target
		if t == nil {
			return fmt.Errorf("record %d: nil target", i)
		}
		if seen[t.URL] {
			return fmt.Errorf("record %d: duplicate URL %q", i, t.URL)
		}
		seen[t.URL] = true
		if t.SharedAt.Before(f.Config.Epoch) || t.SharedAt.After(horizonEnd) {
			return fmt.Errorf("record %d: share time %v outside the window", i, t.SharedAt)
		}
		// Every record must reference a live post and a hosted site, in
		// whichever shard's world published it. The platform must exist in
		// every view; a post missing from one view just means another
		// shard owns the URL, so the audit probes each in turn.
		var post world.PostStatus
		for _, w := range views {
			p, err := w.Platform.LookupPost(t.Platform, t.PostID)
			if err != nil {
				return fmt.Errorf("record %d: unknown platform %q", i, t.Platform)
			}
			if p.Exists {
				post = p
				break
			}
		}
		// When at least one shard ran on a remote worker its world died with
		// the worker process, so a record absent from every LOCAL view is
		// assumed to be a remote shard's; the record-local invariants below
		// (ordering, CT, noindex, cohort) still apply to it.
		if !post.Exists && !f.remoteShards {
			return fmt.Errorf("record %d: post %q not on %s", i, t.PostID, t.Platform)
		}
		hosted := false
		for _, w := range views {
			if info, err := w.Intel.Resolve(t.URL); err == nil && info.Hosted {
				hosted = true
				break
			}
		}
		if !hosted && !f.remoteShards {
			return fmt.Errorf("record %d: site %q not hosted", i, t.URL)
		}
		// Event ordering: nothing happens before the share.
		for name, v := range r.Blocklist {
			if v.Detected && v.At.Before(t.SharedAt) {
				return fmt.Errorf("record %d: %s listed before share", i, name)
			}
		}
		for j, d := range r.VTDetections {
			if d.Before(t.SharedAt) {
				return fmt.Errorf("record %d: VT detection before share", i)
			}
			if j > 0 && d.Before(r.VTDetections[j-1]) {
				return fmt.Errorf("record %d: VT detections unsorted", i)
			}
		}
		if r.PlatformRemoved {
			if r.PlatformRemovedAt.Before(t.SharedAt) {
				return fmt.Errorf("record %d: platform removal before share", i)
			}
			if post.Exists && (!post.Removed || !post.RemovedAt.Equal(r.PlatformRemovedAt)) {
				return fmt.Errorf("record %d: platform removal not reflected on the post", i)
			}
		}
		if r.HostRemoved && r.HostRemovedAt.Before(t.SharedAt) {
			return fmt.Errorf("record %d: host removal before share", i)
		}
		// FWB/self-hosted exclusivity of certificates (§3).
		if t.IsFWB() && t.InCTLog {
			return fmt.Errorf("record %d: FWB site visible in CT log", i)
		}
		// §3: noindex pages cannot be search-indexed.
		if t.Noindex && t.SearchIndexed {
			return fmt.Errorf("record %d: noindex page marked indexed", i)
		}
	}
	// Cohort sanity: both cohorts must exist for the comparisons to mean
	// anything.
	study := f.State.Study()
	if len(study.Select(analysis.FWBCohort)) == 0 || len(study.Select(analysis.SelfHostedCohort)) == 0 {
		return fmt.Errorf("study missing a cohort: %d records", len(study.Records))
	}
	return nil
}
