package core

import (
	"strconv"
	"strings"

	"freephish/internal/baselines"
	"freephish/internal/obs"
)

// journalTopFeatures is how many feature contributions the classified
// event's explanation carries.
const journalTopFeatures = 3

// journalEmit adapts the journal to pipe's OnEmit hook: each in-order
// stage emission becomes a ring-only ops event. Returns nil when tracing
// is off so the pipeline skips the hook entirely.
func journalEmit(j *obs.Journal, pipeName string) func(stage string, seq int, err error) {
	if j == nil {
		return nil
	}
	return func(stage string, seq int, err error) {
		if err != nil {
			j.RecordOps("", obs.EvStage, "pipe", pipeName, "stage", stage, "seq", itoa(seq), "err", err.Error())
			return
		}
		j.RecordOps("", obs.EvStage, "pipe", pipeName, "stage", stage, "seq", itoa(seq))
	}
}

// topAttr renders feature contributions as the classified event's "top"
// attribute: "name:+0.0312,name:-0.0040,…". A single ordered string —
// not one attr per feature — because JSON objects sort keys, which would
// destroy the ranking.
func topAttr(contrib []baselines.Contribution) string {
	if len(contrib) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range contrib {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.Name)
		b.WriteByte(':')
		if c.Weight >= 0 {
			b.WriteByte('+')
		}
		b.WriteString(strconv.FormatFloat(c.Weight, 'f', 4, 64))
	}
	return b.String()
}
