package core

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// equivalenceConfig is small enough to run the study twice in one test
// while still streaming both cohorts and exercising the monitor.
func equivalenceConfig(backend string) Config {
	cfg := DefaultConfig()
	cfg.Seed = 13
	cfg.Scale = 0.003
	cfg.TrainPerClass = 80
	cfg.Workers = 4
	cfg.MonitorInterval = 24 * time.Hour
	cfg.Backend = backend
	return cfg
}

// TestCrossBackendEquivalence is the tentpole acceptance check: the same
// seed pushed through the in-process port wiring and through real
// loopback HTTP servers must produce byte-identical studies. Everything
// stateful happens in the Sim in stream order, so the access path — direct
// call or wire round-trip — must not be observable in the results.
func TestCrossBackendEquivalence(t *testing.T) {
	type run struct {
		jsonl   []byte
		stats   Stats
		obs     map[string]*Observation
		table3  string
		figure5 string
	}
	runBackend := func(backend string) run {
		t.Helper()
		f := New(equivalenceConfig(backend))
		study, err := f.Run()
		if err != nil {
			t.Fatalf("%s backend: %v", backend, err)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("%s backend failed verification: %v", backend, err)
		}
		if len(study.Records) == 0 {
			t.Fatalf("%s backend produced no records", backend)
		}
		var buf bytes.Buffer
		if err := study.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return run{
			jsonl:   buf.Bytes(),
			stats:   f.Stats(),
			obs:     f.Observations(),
			table3:  RenderTable3(study),
			figure5: RenderFigure5(study, 15),
		}
	}

	inproc := runBackend(BackendInproc)
	overHTTP := runBackend(BackendHTTP)

	if !bytes.Equal(inproc.jsonl, overHTTP.jsonl) {
		a := strings.Split(string(inproc.jsonl), "\n")
		b := strings.Split(string(overHTTP.jsonl), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("study diverges at record %d:\ninproc: %s\nhttp:   %s", i, a[i], b[i])
			}
		}
		t.Fatalf("study lengths diverge: inproc %d records, http %d", len(a), len(b))
	}
	if inproc.stats != overHTTP.stats {
		t.Errorf("stats diverge:\ninproc: %+v\nhttp:   %+v", inproc.stats, overHTTP.stats)
	}
	if !reflect.DeepEqual(inproc.obs, overHTTP.obs) {
		t.Errorf("monitor observations diverge: inproc %d URLs, http %d", len(inproc.obs), len(overHTTP.obs))
	}
	if inproc.table3 != overHTTP.table3 {
		t.Errorf("Table 3 diverges:\n%s\nvs\n%s", inproc.table3, overHTTP.table3)
	}
	if inproc.figure5 != overHTTP.figure5 {
		t.Errorf("Figure 5 diverges")
	}
}

// TestPipelineFilesFreeOfSimulatorImports pins the ports-and-adapters
// boundary: the pipeline sources may speak only to world ports, never to
// the simulator packages behind them. New direct imports of the simulated
// world are architecture regressions even when they compile.
func TestPipelineFilesFreeOfSimulatorImports(t *testing.T) {
	pipelineFiles := []string{"core.go", "serve.go", "monitor.go", "verify.go", "metrics.go", "eval.go", "shard.go", "dispatch.go"}
	banned := []string{
		"freephish/internal/fwb",
		"freephish/internal/social",
		"freephish/internal/vtsim",
		"freephish/internal/webgen",
		"freephish/internal/whois",
		"freephish/internal/ctlog",
	}
	fset := token.NewFileSet()
	for _, name := range pipelineFiles {
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, bad := range banned {
				if path == bad {
					t.Errorf("%s imports %s: the pipeline must reach the simulated world only through internal/world ports", name, path)
				}
			}
		}
	}
}

// TestProductionFilesFreeOfBannedHTTPAndSleep extends the architecture
// lint repo-wide: no production file may reference http.DefaultClient (no
// timeout — a stalled endpoint hangs the pipeline forever) or bare
// time.Sleep (wall-clock waits belong to the unified retry policy or the
// sim clock, never inline in retryable paths). Both bug classes were fixed
// by hand once; this makes the regression impossible. The fault injector's
// default sleep hook is the one legitimate production time.Sleep.
func TestProductionFilesFreeOfBannedHTTPAndSleep(t *testing.T) {
	root := filepath.Join("..", "..")
	allowSleep := map[string]bool{
		// The injector's latency hook defaults to time.Sleep and is replaced
		// with a no-op wherever the sim clock is authoritative.
		filepath.Join("internal", "faults", "faults.go"): true,
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case pkg.Name == "http" && sel.Sel.Name == "DefaultClient":
				t.Errorf("%s:%d references http.DefaultClient: use a client with a timeout",
					rel, fset.Position(sel.Pos()).Line)
			case pkg.Name == "time" && sel.Sel.Name == "Sleep" && !allowSleep[rel]:
				t.Errorf("%s:%d references time.Sleep: route waits through the retry policy or the sim clock",
					rel, fset.Position(sel.Pos()).Line)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// studyStateFields are the field names internal/state owns exclusively:
// Stats counters and Observation findings. The apply points in that
// package are the only legal writers — a direct mutation anywhere else
// bypasses the single-writer discipline that makes shard snapshots
// mergeable.
var studyStateFields = map[string]bool{
	"Polls": true, "PostsSeen": true, "URLsScanned": true,
	"FlaggedFWB": true, "FlaggedSelf": true,
	"TruePositives": true, "FalsePositives": true, "FalseNegatives": true,
	"ReportsSent": true, "LexicalBenign": true, "LexicalPhish": true,
	"HostDownAt": true, "Listings": true, "Probes": true,
}

// TestStudyStateMutationsConfinedToStateLayer lints every production file
// repo-wide: no assignment, compound assignment, or ++/-- may target a
// StudyState-owned field outside internal/state. The field names are
// distinctive enough that a name match is a real violation, and the lint
// is what turns the package-doc ownership rule from a convention into a
// regression test.
func TestStudyStateMutationsConfinedToStateLayer(t *testing.T) {
	root := filepath.Join("..", "..")
	fset := token.NewFileSet()
	flag := func(rel string, pos token.Pos, field string) {
		t.Errorf("%s:%d mutates %s directly: only internal/state's apply points may write StudyState fields",
			rel, fset.Position(pos).Line, field)
	}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if strings.HasPrefix(rel, filepath.Join("internal", "state")+string(filepath.Separator)) {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && studyStateFields[sel.Sel.Name] {
						flag(rel, sel.Pos(), sel.Sel.Name)
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := stmt.X.(*ast.SelectorExpr); ok && studyStateFields[sel.Sel.Name] {
					flag(rel, sel.Pos(), sel.Sel.Name)
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// instrumentConstructors are the obs.Registry methods whose first
// argument is a metric name.
var instrumentConstructors = map[string]bool{
	"Counter": true, "CounterVec": true, "Gauge": true, "GaugeVec": true,
	"GaugeFunc": true, "Histogram": true, "HistogramVec": true,
}

// TestMetricNamesPrefixedAndWellFormed lints every production
// registration call repo-wide: literal metric names must carry the
// `freephish_` namespace and stay within the conservative Prometheus
// charset (lowercase, digits, underscores). One daemon shipped
// `fwbhost_*` names once; a shared prefix is what lets dashboards and
// the /dash sample filter select "everything ours" with one rule.
func TestMetricNamesPrefixedAndWellFormed(t *testing.T) {
	root := filepath.Join("..", "..")
	nameRE := regexp.MustCompile(`^freephish_[a-z0-9_]+$`)
	fset := token.NewFileSet()
	registrations := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !instrumentConstructors[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				// Computed names (e.g. the tracer's <name>_stage_seconds)
				// are namespaced by their callers; only literals are
				// checkable here.
				return true
			}
			name := strings.Trim(lit.Value, "`\"")
			registrations++
			if !nameRE.MatchString(name) {
				t.Errorf("%s:%d registers metric %q: names must match %s",
					rel, fset.Position(lit.Pos()).Line, name, nameRE)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if registrations < 20 {
		t.Fatalf("lint saw only %d literal registrations; the AST walk has gone blind", registrations)
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backend = "carrier-pigeon"
	f := New(cfg)
	err := f.startServers()
	if err == nil || !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Fatalf("startServers = %v, want unknown-backend error", err)
	}
}

func TestWebServerStopIdempotent(t *testing.T) {
	f := New(DefaultConfig())
	ws, err := f.startServer("test", http.NotFoundHandler())
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.stop(); err != nil {
		t.Fatalf("first stop: %v", err)
	}
	if err := ws.stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// countingListener wraps a net.Listener to track Close calls. Closes land
// on the Serve goroutines, hence the atomic.
type countingListener struct {
	net.Listener
	closes *atomic.Int64
}

func (l countingListener) Close() error {
	l.closes.Add(1)
	return l.Listener.Close()
}

// TestStopServersSafeAfterFeedStartupFailure reproduces the satellite-2
// hazard: startFeedServers fails midway on the http backend, startHTTP
// tears down what it already started, and Run's deferred stopServers fires
// again. Nothing may double-close or panic.
func TestStopServersSafeAfterFeedStartupFailure(t *testing.T) {
	cfg := equivalenceConfig(BackendHTTP)
	f := New(cfg)
	// Allow the web, platform, SimAPI, and first feed listeners, then
	// fail on the second feed server.
	okListens := 1 + len(f.Sim.Platforms()) + 1 + 1
	listens := 0
	var closes atomic.Int64
	f.listen = func(network, addr string) (net.Listener, error) {
		if listens >= okListens {
			return nil, fmt.Errorf("injected listen failure")
		}
		listens++
		ln, err := net.Listen(network, addr)
		if err != nil {
			return nil, err
		}
		return countingListener{ln, &closes}, nil
	}
	err := f.startServers()
	if err == nil || !strings.Contains(err.Error(), "injected listen failure") {
		t.Fatalf("startServers = %v, want the injected failure", err)
	}
	if len(f.servers) != 0 {
		t.Fatalf("startServers left %d servers registered after failing", len(f.servers))
	}
	// The deferred stop in Run fires on the error path too: it must be a
	// no-op now, not a second shutdown of the already-stopped servers.
	f.stopServers()
	f.stopServers()
	// Every created listener ends up closed exactly once; the closes land
	// asynchronously when shutdown races a Serve goroutine still starting.
	deadline := time.Now().Add(2 * time.Second)
	for closes.Load() != int64(listens) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := closes.Load(); got != int64(listens) {
		t.Fatalf("%d listeners created but %d closes recorded", listens, got)
	}
}
