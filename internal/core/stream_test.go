package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"freephish/internal/crawler"
	"freephish/internal/world"
)

// failingStream wraps the real URL stream and fails one designated poll —
// the seam TestRunEndsImmediatelyOnPollError injects through streamWrap.
type failingStream struct {
	inner  world.URLStream
	polls  int
	failAt int
	err    error
}

func (s *failingStream) Poll(now time.Time) ([]crawler.StreamedURL, error) {
	s.polls++
	if s.polls == s.failAt {
		return nil, s.err
	}
	return s.inner.Poll(now)
}

// TestRunEndsImmediatelyOnPollError is the regression test for the
// slow-failure bug: a pollOnce error used to only set pollErr while the sim
// clock kept ticking through the entire window plus the 7-day tail before
// the error surfaced. Run must now cancel the poll subscription and stop
// stepping the clock at the failing cycle.
func TestRunEndsImmediatelyOnPollError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.Scale = 0.002
	cfg.TrainPerClass = 60
	const failAt = 5
	fs := &failingStream{failAt: failAt, err: errors.New("injected poll failure")}
	f := New(cfg)
	f.streamWrap = func(s world.URLStream) world.URLStream {
		fs.inner = s
		return fs
	}
	_, err := f.Run()
	if err == nil || !strings.Contains(err.Error(), "injected poll failure") {
		t.Fatalf("Run = %v, want the injected poll failure", err)
	}
	if fs.polls != failAt {
		t.Fatalf("stream polled %d times after the failure at poll %d; the subscription must be cancelled", fs.polls, failAt)
	}
	if f.Stats().Polls != failAt {
		t.Fatalf("Stats.Polls = %d, want %d", f.Stats().Polls, failAt)
	}
	// The clock halted at the failing cycle, not at the end of the window
	// (let alone the 7-day observation tail).
	wantNow := cfg.Epoch.Add(failAt * cfg.PollInterval)
	if got := f.Clock.Now(); !got.Equal(wantNow) {
		t.Fatalf("clock ended at %v, want the failing cycle's time %v", got, wantNow)
	}
}

// streamSweepConfig is lean enough to run the study a dozen times in one
// test while still streaming both cohorts and exercising the monitor's
// pipe fan-out.
func streamSweepConfig(workers, depth int, backend string) Config {
	cfg := DefaultConfig()
	cfg.Seed = 17
	cfg.Scale = 0.002
	cfg.TrainPerClass = 60
	cfg.Duration = 60 * 24 * time.Hour
	cfg.MonitorInterval = 24 * time.Hour
	cfg.Workers = workers
	cfg.QueueDepth = depth
	cfg.Backend = backend
	return cfg
}

// TestStudyDeterminismAcrossQueueDepths is the streaming engine's
// end-to-end contract (the `make verify-stream` gate): the same seeded
// study is bit-identical at every (workers, queue-depth) setting on the
// inproc backend, and across the http backend too. Queue depth, like
// worker count, trades memory and wall-clock — never results.
func TestStudyDeterminismAcrossQueueDepths(t *testing.T) {
	run := func(workers, depth int, backend string) ([]byte, Stats) {
		t.Helper()
		f := New(streamSweepConfig(workers, depth, backend))
		study, err := f.Run()
		if err != nil {
			t.Fatalf("workers=%d depth=%d backend=%s: %v", workers, depth, backend, err)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("workers=%d depth=%d backend=%s failed verification: %v", workers, depth, backend, err)
		}
		if len(study.Records) == 0 {
			t.Fatalf("workers=%d depth=%d backend=%s produced no records; the sweep is vacuous", workers, depth, backend)
		}
		var buf bytes.Buffer
		if err := study.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), f.Stats()
	}
	compare := func(label string, wantJSONL, gotJSONL []byte, wantStats, gotStats Stats) {
		t.Helper()
		if gotStats != wantStats {
			t.Fatalf("%s: stats diverge:\nbaseline: %+v\ngot:      %+v", label, wantStats, gotStats)
		}
		if !bytes.Equal(wantJSONL, gotJSONL) {
			a := strings.Split(string(wantJSONL), "\n")
			b := strings.Split(string(gotJSONL), "\n")
			for i := 0; i < len(a) && i < len(b); i++ {
				if a[i] != b[i] {
					t.Fatalf("%s: study diverges at record %d:\nbaseline: %s\ngot:      %s", label, i, a[i], b[i])
				}
			}
			t.Fatalf("%s: study lengths diverge: %d vs %d records", label, len(a), len(b))
		}
	}

	baseJSONL, baseStats := run(1, 1, BackendInproc)
	for _, workers := range []int{1, 2, 8} {
		for _, depth := range []int{1, 4, 64} {
			if workers == 1 && depth == 1 {
				continue
			}
			jsonl, stats := run(workers, depth, BackendInproc)
			compare(fmt.Sprintf("inproc workers=%d depth=%d", workers, depth), baseJSONL, jsonl, baseStats, stats)
		}
	}
	// The http backend re-runs the matrix corners: the wire path must not
	// interact with streaming either.
	for _, c := range [][2]int{{1, 1}, {8, 64}} {
		jsonl, stats := run(c[0], c[1], BackendHTTP)
		compare(fmt.Sprintf("http workers=%d depth=%d", c[0], c[1]), baseJSONL, jsonl, baseStats, stats)
	}
}
