package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"freephish/internal/fwb"
	"freephish/internal/simclock"
)

// HistoricalPoint is one quarter of the 2020–2022 pervasiveness study
// (Figure 1): FWB phishing URL counts per platform plus the set of FWB
// domains accounting for 80% of that quarter's attacks.
type HistoricalPoint struct {
	Quarter  string // e.g. "2020-Q1"
	Start    time.Time
	Twitter  int
	Facebook int
	// Top80 lists the FWB service keys that cover 80% of the quarter's
	// volume, most-abused first — the paper's per-month domain analysis.
	Top80 []string
}

// Total returns the quarter's combined volume.
func (p HistoricalPoint) Total() int { return p.Twitter + p.Facebook }

// adoptionStart gives the month index (0 = Jan 2020) at which attackers
// began abusing each service, reproducing Figure 1's strategic shift toward
// newer hosting services: the early ecosystem is Weebly/000webhost/Blogspot
// territory; Google properties, Firebase, and the long tail arrive later.
var adoptionStart = map[string]int{
	"weebly":       0,
	"000webhost":   0,
	"blogspot":     0,
	"wix":          0,
	"yolasite":     0,
	"hpage":        2,
	"github":       3,
	"googlesites":  6,
	"wordpress":    4,
	"sharepoint":   12,
	"googleforms":  14,
	"squareup":     16,
	"firebase":     18,
	"zohoforms":    20,
	"glitch":       22,
	"godaddysites": 24,
	"mailchimp":    26,
}

// historicalMonths is Jan 2020 through Aug 2022.
const historicalMonths = 32

// HistoricalTotals are the D1 dataset sizes (Section 2).
const (
	HistoricalTwitterTotal  = 16300
	HistoricalFacebookTotal = 8900
)

// HistoricalStudy generates the Figure 1 series: monthly FWB phishing
// volumes growing over 2020–2022, aggregated per quarter, with the 80%-mass
// service set per quarter. Volumes are Poisson-jittered around the growth
// curve for realism; the totals match D1 (25.2K URLs: 16.3K Twitter, 8.9K
// Facebook) in expectation.
func HistoricalStudy(seed int64) []HistoricalPoint {
	rng := simclock.NewRNG(seed, "core.historical")

	// Monthly growth factor g chosen so the window spans a marked
	// escalation (the paper's quarterly counts roughly sextuple).
	const g = 1.062
	weights := make([]float64, historicalMonths)
	total := 0.0
	for m := range weights {
		weights[m] = math.Pow(g, float64(m))
		total += weights[m]
	}

	// Per-month per-service expected volume.
	type monthData struct {
		tw, fb  int
		perSvc  map[string]int
		started time.Time
	}
	months := make([]monthData, historicalMonths)
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for m := 0; m < historicalMonths; m++ {
		expTW := float64(HistoricalTwitterTotal) * weights[m] / total
		expFB := float64(HistoricalFacebookTotal) * weights[m] / total
		md := monthData{
			tw:      rng.Poisson(expTW),
			fb:      rng.Poisson(expFB),
			perSvc:  map[string]int{},
			started: start.AddDate(0, m, 0),
		}
		// Split the month's volume over the services active by then,
		// weighted by abuse weight with a 6-month adoption ramp.
		var svcKeys []string
		var svcW []float64
		for _, s := range fwb.All() {
			startMonth, ok := adoptionStart[s.Key]
			if !ok || m < startMonth {
				continue
			}
			ramp := float64(m-startMonth+1) / 6
			if ramp > 1 {
				ramp = 1
			}
			svcKeys = append(svcKeys, s.Key)
			svcW = append(svcW, s.AbuseWeight*ramp)
		}
		for i := 0; i < md.tw+md.fb; i++ {
			md.perSvc[svcKeys[rng.WeightedIndex(svcW)]]++
		}
		months[m] = md
	}

	// Aggregate into quarters.
	var out []HistoricalPoint
	for q := 0; q*3 < historicalMonths; q++ {
		lo := q * 3
		hi := lo + 3
		if hi > historicalMonths {
			hi = historicalMonths
		}
		p := HistoricalPoint{
			Quarter: fmt.Sprintf("%d-Q%d", 2020+lo/12, (lo%12)/3+1),
			Start:   months[lo].started,
		}
		perSvc := map[string]int{}
		for m := lo; m < hi; m++ {
			p.Twitter += months[m].tw
			p.Facebook += months[m].fb
			for k, v := range months[m].perSvc {
				perSvc[k] += v
			}
		}
		p.Top80 = top80(perSvc)
		out = append(out, p)
	}
	return out
}

// top80 returns the smallest set of services covering 80% of the counts,
// most-abused first.
func top80(counts map[string]int) []string {
	type kv struct {
		k string
		v int
	}
	var all []kv
	total := 0
	for k, v := range counts {
		all = append(all, kv{k, v})
		total += v
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	var out []string
	acc := 0
	for _, e := range all {
		if total > 0 && float64(acc) >= 0.8*float64(total) {
			break
		}
		out = append(out, e.k)
		acc += e.v
	}
	return out
}
