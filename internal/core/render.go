package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/baselines"
	"freephish/internal/brands"
	"freephish/internal/fwb"
	"freephish/internal/htmlx"
	"freephish/internal/simclock"
	"freephish/internal/textsim"
	"freephish/internal/threat"
	"freephish/internal/webgen"
)

// Renderers turn study results into the paper's tables and figures as
// aligned text. Figures are rendered as labeled series with ASCII bars so
// a terminal run of cmd/freephish reproduces the whole evaluation section.

func hhmm(d time.Duration) string {
	if d <= 0 {
		return "N/A"
	}
	m := int(d.Round(time.Minute) / time.Minute)
	return fmt.Sprintf("%d:%02d", m/60, m%60)
}

func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// RenderTable1 regenerates Table 1: per-FWB median code similarity between
// phishing and benign sites, using the Appendix A algorithm over freshly
// generated site pairs.
func RenderTable1(seed int64, pairs int) string {
	g := webgen.NewGenerator(seed, nil, nil)
	at := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	var b strings.Builder
	b.WriteString("Table 1: Website code similarity between FWB phishing and benign websites\n")
	fmt.Fprintf(&b, "%-14s %-18s %-18s\n", "FWB", "Median similarity", "(paper)")
	paper := map[string]string{
		"weebly": "79.4%", "000webhost": "68.1%", "blogspot": "63.8%",
		"googlesites": "72.4%", "wix": "63.7%", "github": "37.4%",
	}
	for _, key := range []string{"weebly", "000webhost", "blogspot", "googlesites", "wix", "github"} {
		svc, _ := fwb.ByKey(key)
		var sims []float64
		for i := 0; i < pairs; i++ {
			benign := g.BenignFWBSite(svc, at)
			phish := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, at)
			sims = append(sims, textsim.SiteSimilarity(
				htmlx.Parse(benign.HTML).TagStrings(),
				htmlx.Parse(phish.HTML).TagStrings()))
		}
		fmt.Fprintf(&b, "%-14s %-18s %-18s\n", svc.Name,
			fmt.Sprintf("%.1f%%", 100*textsim.Median(sims)), paper[key])
	}
	return b.String()
}

// RenderTable2 renders the model comparison rows.
func RenderTable2(results []baselines.Result) string {
	var b strings.Builder
	b.WriteString("Table 2: Comparison of phishing detection models\n")
	fmt.Fprintf(&b, "%-34s %-9s %-10s %-8s %-9s %-6s %-12s %-14s\n",
		"Model", "Accuracy", "Precision", "Recall", "F1-score", "AUC", "Total Time", "Median Runtime")
	for _, r := range results {
		fmt.Fprintf(&b, "%-34s %-9.2f %-10.2f %-8.2f %-9.2f %-6.3f %-12s %-14s\n",
			r.Model, r.Metrics.Accuracy, r.Metrics.Precision, r.Metrics.Recall, r.Metrics.F1,
			r.AUC, r.TotalTime.Round(time.Millisecond), r.MedianTime.Round(time.Microsecond))
	}
	return b.String()
}

// table3Entities are the Table 3 rows, in paper order.
var table3Entities = []struct{ key, label string }{
	{"PhishTank", "PhishTank"},
	{"OpenPhish", "OpenPhish"},
	{"GSB", "GSB"},
	{"eCrimeX", "eCrimeX"},
	{"platform", "Social media Platform"},
	{"host", "Hosting domain"},
}

// RenderTable3 renders blocklist/platform/host coverage for both cohorts
// at the one-week horizon.
func RenderTable3(s *analysis.Study) string {
	week := 7 * 24 * time.Hour
	var b strings.Builder
	b.WriteString("Table 3: Blocklisting performance and response time against FWB vs self-hosted phishing\n")
	fmt.Fprintf(&b, "%-22s | %-8s %-12s %-8s | %-8s %-12s %-8s\n",
		"Method", "FWB cov", "min/max", "median", "self cov", "min/max", "median")
	for _, ent := range table3Entities {
		fr := s.Coverage(ent.key, analysis.FWBCohort, week)
		sr := s.Coverage(ent.key, analysis.SelfHostedCohort, week)
		fmt.Fprintf(&b, "%-22s | %-8s %-12s %-8s | %-8s %-12s %-8s\n",
			ent.label,
			fmt.Sprintf("%.2f%%", 100*fr.Coverage),
			hhmm(fr.Min)+"/"+hhmm(fr.Max), hhmm(fr.Median),
			fmt.Sprintf("%.2f%%", 100*sr.Coverage),
			hhmm(sr.Min)+"/"+hhmm(sr.Max), hhmm(sr.Median))
	}
	return b.String()
}

// RenderTable4 renders per-FWB countermeasure coverage at the two-week
// horizon (§5.3 measures FWB takedown over two weeks).
func RenderTable4(s *analysis.Study) string {
	horizon := 14 * 24 * time.Hour
	var b strings.Builder
	b.WriteString("Table 4: Coverage and response times of countermeasures per FWB (two-week horizon)\n")
	fmt.Fprintf(&b, "%-14s %6s | %-15s | %-15s | %-15s | %-15s | %-15s | %-15s\n",
		"Domain", "URLs", "Host rm/med", "Platform rm/med", "PhishTank", "OpenPhish", "GSB", "eCrimeX")
	for _, svc := range fwb.All() {
		cohort := analysis.OnService(svc.Key)
		total := len(s.Select(cohort))
		if total == 0 {
			continue
		}
		cell := func(entity string) string {
			r := s.Coverage(entity, cohort, horizon)
			return fmt.Sprintf("%5.2f%% %7s", 100*r.Coverage, hhmm(r.Median))
		}
		fmt.Fprintf(&b, "%-14s %6d | %-15s | %-15s | %-15s | %-15s | %-15s | %-15s\n",
			svc.Name, total, cell("host"), cell("platform"),
			cell("PhishTank"), cell("OpenPhish"), cell("GSB"), cell("eCrimeX"))
	}
	return b.String()
}

// figureMarks are the elapsed-time grid for Figures 6 and 9.
var figureMarks = []time.Duration{
	3 * time.Hour, 8 * time.Hour, 16 * time.Hour, 24 * time.Hour,
	48 * time.Hour, 96 * time.Hour, 168 * time.Hour,
}

// RenderFigure1 renders the historical quarterly series.
func RenderFigure1(points []HistoricalPoint) string {
	var b strings.Builder
	b.WriteString("Figure 1: FWB phishing shared on Twitter and Facebook, Jan 2020 - Aug 2022\n")
	maxTotal := 1
	for _, p := range points {
		if p.Total() > maxTotal {
			maxTotal = p.Total()
		}
	}
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s tw=%-5d fb=%-5d %s  top80: %s\n",
			p.Quarter, p.Twitter, p.Facebook,
			bar(float64(p.Total())/float64(maxTotal), 30),
			strings.Join(p.Top80, ","))
	}
	return b.String()
}

// RenderFigure5 renders the targeted-organization histogram.
func RenderFigure5(s *analysis.Study, topN int) string {
	var b strings.Builder
	h := s.BrandHistogram(analysis.FWBCohort)
	top := s.TopBrands(analysis.FWBCohort, topN)
	fmt.Fprintf(&b, "Figure 5: Targeted organizations (%d unique brands)\n", len(h))
	maxC := 1
	if len(top) > 0 {
		maxC = h[top[0]]
	}
	for _, k := range top {
		name := k
		if br, ok := brands.ByKey(k); ok {
			name = br.Name
		}
		fmt.Fprintf(&b, "%-18s %6d %s\n", name, h[k], bar(float64(h[k])/float64(maxC), 30))
	}
	return b.String()
}

// RenderFigure6 renders blocklist coverage-over-time curves per cohort.
func RenderFigure6(s *analysis.Study) string {
	var b strings.Builder
	b.WriteString("Figure 6: Blocklist coverage over time (fraction of URLs listed by elapsed hours)\n")
	fmt.Fprintf(&b, "%-10s %-12s", "Blocklist", "Cohort")
	for _, m := range figureMarks {
		fmt.Fprintf(&b, " %5.0fh", m.Hours())
	}
	b.WriteString("\n")
	for _, name := range []string{"PhishTank", "OpenPhish", "GSB", "eCrimeX"} {
		for _, c := range []struct {
			label  string
			cohort analysis.Cohort
		}{{"FWB", analysis.FWBCohort}, {"self-hosted", analysis.SelfHostedCohort}} {
			curve := s.CoverageCurve(name, c.cohort, figureMarks)
			fmt.Fprintf(&b, "%-10s %-12s", name, c.label)
			for _, v := range curve {
				fmt.Fprintf(&b, " %5.1f%%", 100*v)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RenderFigure7 renders the detection-count CDF after one week for the
// four cohorts (FWB/self-hosted × Twitter/Facebook).
func RenderFigure7(s *analysis.Study) string {
	week := 7 * 24 * time.Hour
	xs := []int{0, 1, 2, 4, 6, 9, 12, 16, 20, 30}
	var b strings.Builder
	b.WriteString("Figure 7: CDF of anti-phishing engine detections one week after appearance\n")
	fmt.Fprintf(&b, "%-24s %-7s", "Cohort", "median")
	for _, x := range xs {
		fmt.Fprintf(&b, " <=%-3d", x)
	}
	b.WriteString("\n")
	for _, c := range fourCohorts() {
		counts := s.DetectionCounts(c.cohort, week)
		cdf := analysis.CDF(counts, xs)
		fmt.Fprintf(&b, "%-24s %-7d", c.label, analysis.MedianInt(counts))
		for _, v := range cdf {
			fmt.Fprintf(&b, " %4.0f%%", 100*v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure8 renders the share of URLs with at most 4 detections for
// each day of the first week per cohort — the headline statistic of
// Figure 8 (FWB URLs accrue detections far slower).
func RenderFigure8(s *analysis.Study) string {
	var b strings.Builder
	b.WriteString("Figure 8: Fraction of URLs with <=2 and <=4 engine detections per day\n")
	fmt.Fprintf(&b, "%-24s %-6s", "Cohort", "bound")
	for d := 1; d <= 7; d++ {
		fmt.Fprintf(&b, "  day%d", d)
	}
	b.WriteString("\n")
	for _, c := range fourCohorts() {
		for _, bound := range []int{2, 4} {
			fmt.Fprintf(&b, "%-24s <=%-4d", c.label, bound)
			for d := 1; d <= 7; d++ {
				counts := s.DetectionCounts(c.cohort, time.Duration(d)*24*time.Hour)
				cdf := analysis.CDF(counts, []int{bound})
				fmt.Fprintf(&b, " %4.0f%%", 100*cdf[0])
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RenderFigure9 renders platform removal curves per cohort.
func RenderFigure9(s *analysis.Study) string {
	var b strings.Builder
	b.WriteString("Figure 9: Platform post-removal over time\n")
	fmt.Fprintf(&b, "%-10s %-12s", "Platform", "Cohort")
	for _, m := range figureMarks {
		fmt.Fprintf(&b, " %5.0fh", m.Hours())
	}
	b.WriteString("\n")
	for _, plat := range []threat.Platform{threat.Twitter, threat.Facebook} {
		for _, c := range []struct {
			label  string
			cohort analysis.Cohort
		}{
			{"FWB", analysis.OnPlatform(analysis.FWBCohort, plat)},
			{"self-hosted", analysis.OnPlatform(analysis.SelfHostedCohort, plat)},
		} {
			curve := s.CoverageCurve("platform", c.cohort, figureMarks)
			fmt.Fprintf(&b, "%-10s %-12s", plat, c.label)
			for _, v := range curve {
				fmt.Fprintf(&b, " %5.1f%%", 100*v)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RenderSection3 renders the §3 characterization statistics.
func RenderSection3(s *analysis.Study) string {
	var b strings.Builder
	b.WriteString("Section 3: FWB attack characterization\n")
	fwbAge := s.MedianDomainAge(analysis.FWBCohort)
	selfAge := s.MedianDomainAge(analysis.SelfHostedCohort)
	fmt.Fprintf(&b, "  median domain age: FWB %.1f years (paper 13.7y) | self-hosted %.0f days (paper 71d)\n",
		fwbAge.Hours()/24/365.25, selfAge.Hours()/24)
	comShare := s.Fraction(analysis.FWBCohort, func(r *analysis.Record) bool {
		return r.Target.Service != nil && r.Target.Service.ComTLD
	})
	fmt.Fprintf(&b, "  FWB URLs on .com-granting services: %.1f%% (paper ~89%%)\n", 100*comShare)
	noindex := s.Fraction(analysis.FWBCohort, func(r *analysis.Record) bool { return r.Target.Noindex })
	fmt.Fprintf(&b, "  FWB URLs with noindex meta tag: %.1f%% (paper 44.7%%)\n", 100*noindex)
	indexed := s.Fraction(analysis.FWBCohort, func(r *analysis.Record) bool { return r.Target.SearchIndexed })
	fmt.Fprintf(&b, "  FWB URLs indexed by search: %.1f%% (paper 4.1%%)\n", 100*indexed)
	ct := s.Fraction(analysis.FWBCohort, func(r *analysis.Record) bool { return r.Target.InCTLog })
	fmt.Fprintf(&b, "  FWB URLs visible in CT logs: %.1f%% (paper: none)\n", 100*ct)
	return b.String()
}

// RenderSection55 renders the evasive-attack census.
func RenderSection55(s *analysis.Study) string {
	var b strings.Builder
	b.WriteString("Section 5.5: Evasive attack census per FWB\n")
	fmt.Fprintf(&b, "%-14s %6s %9s %8s %9s %10s\n", "FWB", "URLs", "two-step", "iframe", "drive-by", "no-fields")
	census := s.EvasiveByService()
	keys := make([]string, 0, len(census))
	for k := range census {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if census[keys[i]].Total != census[keys[j]].Total {
			return census[keys[i]].Total > census[keys[j]].Total
		}
		return keys[i] < keys[j]
	})
	totalNoFields, total := 0, 0
	for _, k := range keys {
		c := census[k]
		fmt.Fprintf(&b, "%-14s %6d %9d %8d %9d %10d\n", c.Service, c.Total, c.TwoStep, c.IFrame, c.DriveBy, c.NoFields)
		totalNoFields += c.NoFields
		total += c.Total
	}
	if total > 0 {
		fmt.Fprintf(&b, "  URLs without credential fields: %.1f%% (paper 14.2%%)\n", 100*float64(totalNoFields)/float64(total))
	}
	return b.String()
}

// RenderStats renders the framework's operational counters.
func RenderStats(st Stats) string {
	var b strings.Builder
	b.WriteString("FreePhish framework counters\n")
	fmt.Fprintf(&b, "  polls=%d posts=%d scanned=%d flaggedFWB=%d flaggedSelf=%d reports=%d\n",
		st.Polls, st.PostsSeen, st.URLsScanned, st.FlaggedFWB, st.FlaggedSelf, st.ReportsSent)
	if st.LexicalBenign+st.LexicalPhish > 0 {
		short := st.LexicalBenign + st.LexicalPhish
		total := short + st.URLsScanned
		fmt.Fprintf(&b, "  cascade: lexicalBenign=%d lexicalPhish=%d shortCircuit=%.1f%%\n",
			st.LexicalBenign, st.LexicalPhish, 100*float64(short)/float64(total))
	}
	tp, fp, fn := st.TruePositives, st.FalsePositives, st.FalseNegatives
	if tp+fp > 0 && tp+fn > 0 {
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(tp+fn)
		fmt.Fprintf(&b, "  zero-day precision=%.3f recall=%.3f\n", prec, rec)
	}
	return b.String()
}

func fourCohorts() []struct {
	label  string
	cohort analysis.Cohort
} {
	return []struct {
		label  string
		cohort analysis.Cohort
	}{
		{"FWB / Twitter", analysis.OnPlatform(analysis.FWBCohort, threat.Twitter)},
		{"FWB / Facebook", analysis.OnPlatform(analysis.FWBCohort, threat.Facebook)},
		{"self-hosted / Twitter", analysis.OnPlatform(analysis.SelfHostedCohort, threat.Twitter)},
		{"self-hosted / Facebook", analysis.OnPlatform(analysis.SelfHostedCohort, threat.Facebook)},
	}
}

// RenderKitFamilies renders the kit-market view of the self-hosted cohort:
// markup families recovered by signature clustering (§6's kit economy).
func RenderKitFamilies(s *analysis.Study) string {
	var b strings.Builder
	b.WriteString("Self-hosted kit families (markup-signature clustering, Jaccard >= 0.5)\n")
	families := s.KitFamilies(0.5, 4)
	if len(families) == 0 {
		b.WriteString("  no multi-page families found\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-6s %-28s %s\n", "pages", "top spoofed brands", "example URL")
	for _, fam := range families {
		fmt.Fprintf(&b, "%-6d %-28s %s\n", fam.Size, strings.Join(fam.TopBrands, ","), fam.Example)
	}
	return b.String()
}

// RenderUptime renders the attack-lifecycle comparison: how long sites of
// each cohort stay reachable before hosting takedown (censored at two
// weeks) — the quantitative form of the paper's "FWB attacks resist
// takedowns for extended periods".
func RenderUptime(s *analysis.Study) string {
	horizon := 14 * 24 * time.Hour
	marks := []time.Duration{3 * time.Hour, 12 * time.Hour, 24 * time.Hour, 72 * time.Hour, 168 * time.Hour, horizon}
	var b strings.Builder
	b.WriteString("Attack lifecycle: site survival against hosting takedown (two-week horizon)\n")
	fmt.Fprintf(&b, "%-12s %-8s %-9s %-9s %-10s |", "Cohort", "removed", "survive", "median", "mean")
	for _, m := range marks {
		fmt.Fprintf(&b, " %5.0fh", m.Hours())
	}
	b.WriteString("\n")
	for _, c := range []struct {
		label  string
		cohort analysis.Cohort
	}{{"FWB", analysis.FWBCohort}, {"self-hosted", analysis.SelfHostedCohort}} {
		u := s.Uptime(c.cohort, horizon)
		curve := s.SurvivalCurve(c.cohort, marks)
		fmt.Fprintf(&b, "%-12s %-8s %-9s %-9s %-10s |", c.label,
			fmt.Sprintf("%.1f%%", 100*float64(u.Removed)/float64(max(u.Total, 1))),
			fmt.Sprintf("%.1f%%", 100*u.SurvivalFraction()),
			hhmm(u.Median), hhmm(u.Mean))
		for _, v := range curve {
			fmt.Fprintf(&b, " %5.1f%%", 100*v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderExposure renders the victim-exposure comparison: clicks that
// landed before defenses acted, and the engagement removal prevented.
func RenderExposure(s *analysis.Study, seed int64) string {
	horizon := 7 * 24 * time.Hour
	rng := simclock.NewRNG(seed, "render.exposure")
	var b strings.Builder
	b.WriteString("Victim exposure: clicks before removal (one-week horizon)\n")
	fmt.Fprintf(&b, "%-12s %8s %14s %16s %12s\n", "Cohort", "URLs", "clicks/URL", "total clicks", "prevented")
	for _, c := range []struct {
		label  string
		cohort analysis.Cohort
	}{{"FWB", analysis.FWBCohort}, {"self-hosted", analysis.SelfHostedCohort}} {
		sum := s.ExposureStats(c.cohort, horizon, rng)
		fmt.Fprintf(&b, "%-12s %8d %14.1f %16.0f %11.1f%%\n",
			c.label, sum.URLs, sum.MeanClicksPerURL, sum.TotalClicks, 100*sum.PreventedFraction)
	}
	return b.String()
}

// RenderTimeline renders the measurement window's weekly stream volume —
// the zero-day companion to Figure 1.
func RenderTimeline(s *analysis.Study) string {
	points := s.Timeline(14 * 24 * time.Hour)
	var b strings.Builder
	b.WriteString("Measurement-window stream (two-week buckets)\n")
	maxTotal := 1
	for _, p := range points {
		if t := p.FWB + p.Self; t > maxTotal {
			maxTotal = t
		}
	}
	for _, p := range points {
		total := p.FWB + p.Self
		fmt.Fprintf(&b, "%s  fwb=%-5d self=%-5d %s\n",
			p.Start.Format("2006-01-02"), p.FWB, p.Self,
			bar(float64(total)/float64(maxTotal), 30))
	}
	return b.String()
}

// RenderCategories renders the targeted-sector breakdown of Figure 5.
func RenderCategories(s *analysis.Study) string {
	h := s.CategoryHistogram(analysis.FWBCohort, func(key string) string {
		if br, ok := brands.ByKey(key); ok {
			return string(br.Category)
		}
		return ""
	})
	type kv struct {
		k string
		v int
	}
	var rows []kv
	total := 0
	for k, v := range h {
		rows = append(rows, kv{k, v})
		total += v
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	var b strings.Builder
	b.WriteString("Targeted sectors (Figure 5 companion)\n")
	for _, r := range rows {
		frac := float64(r.v) / float64(max(total, 1))
		fmt.Fprintf(&b, "%-12s %6d %5.1f%% %s\n", r.k, r.v, 100*frac, bar(frac, 30))
	}
	return b.String()
}

// RenderTable3CI is Table 3 with bootstrap 95% confidence intervals on the
// coverage cells — the statistical-rigor companion for small-scale runs,
// where per-cohort counts are low enough that interval width matters.
func RenderTable3CI(s *analysis.Study, seed int64) string {
	week := 7 * 24 * time.Hour
	rng := simclock.NewRNG(seed, "render.ci")
	var b strings.Builder
	b.WriteString("Table 3 with bootstrap 95% CIs (coverage, one-week horizon)\n")
	fmt.Fprintf(&b, "%-22s | %-26s | %-26s\n", "Method", "FWB coverage [95% CI]", "self-hosted coverage [95% CI]")
	for _, ent := range table3Entities {
		f := s.CoverageCI(ent.key, analysis.FWBCohort, week, 0.95, 400, rng)
		sh := s.CoverageCI(ent.key, analysis.SelfHostedCohort, week, 0.95, 400, rng)
		fmt.Fprintf(&b, "%-22s | %6.2f%% [%5.2f%%, %5.2f%%]  | %6.2f%% [%5.2f%%, %5.2f%%]\n",
			ent.label,
			100*f.Point, 100*f.Low, 100*f.High,
			100*sh.Point, 100*sh.Low, 100*sh.High)
	}
	return b.String()
}

// RenderSummary condenses the study into the paper's headline claims with
// this run's numbers — the abstract, regenerated.
func RenderSummary(s *analysis.Study) string {
	week := 7 * 24 * time.Hour
	var b strings.Builder
	b.WriteString("Headline findings (this run)\n")
	nF := len(s.Select(analysis.FWBCohort))
	nS := len(s.Select(analysis.SelfHostedCohort))
	fmt.Fprintf(&b, "  %d FWB and %d self-hosted phishing URLs observed for one week each.\n", nF, nS)

	g := s.Coverage("GSB", analysis.FWBCohort, week)
	gs := s.Coverage("GSB", analysis.SelfHostedCohort, week)
	fmt.Fprintf(&b, "  GSB covered %.1f%% of FWB attacks (median %s) vs %.1f%% of self-hosted (median %s).\n",
		100*g.Coverage, hhmm(g.Median), 100*gs.Coverage, hhmm(gs.Median))
	if d, ok := s.TimeToCoverage("GSB", analysis.SelfHostedCohort, 0.5, week); ok {
		fmt.Fprintf(&b, "  GSB reached half of all self-hosted URLs within %s", hhmm(d))
		if _, ever := s.TimeToCoverage("GSB", analysis.FWBCohort, 0.5, week); !ever {
			b.WriteString("; it never reached half of the FWB cohort.\n")
		} else {
			b.WriteString(".\n")
		}
	}
	h := s.Coverage("host", analysis.FWBCohort, 2*week)
	hs := s.Coverage("host", analysis.SelfHostedCohort, 2*week)
	fmt.Fprintf(&b, "  Hosting providers removed %.1f%% of FWB attacks within two weeks vs %.1f%% of self-hosted.\n",
		100*h.Coverage, 100*hs.Coverage)
	fMed := analysis.MedianInt(s.DetectionCounts(analysis.FWBCohort, week))
	sMed := analysis.MedianInt(s.DetectionCounts(analysis.SelfHostedCohort, week))
	fmt.Fprintf(&b, "  Median browser-protection detections after a week: %d (FWB) vs %d (self-hosted).\n", fMed, sMed)
	fmt.Fprintf(&b, "  Evasive (credential-less) share of FWB attacks: %.1f%%.\n",
		100*s.Fraction(analysis.FWBCohort, func(r *analysis.Record) bool { return !r.Target.HasCredentialFields }))
	return b.String()
}
