package core

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"freephish/internal/obs"
	"freephish/internal/world"
)

// Regression tests for the leaky, invisible shard-retry path: a failed
// shard attempt must be fully closed (listeners, keep-alive sockets,
// server goroutines) before the coordinator builds its replacement, and
// every re-run must be observable — a freephish_shard_retries_total
// sample and an ops-class journal event — instead of silently re-paying a
// shard's worth of work.

// countedListener decrements the open-listener gauge exactly once on
// Close (net/http closes listeners redundantly on Shutdown).
type countedListener struct {
	net.Listener
	open *int64
	once sync.Once
}

func (l *countedListener) Close() error {
	l.once.Do(func() { atomic.AddInt64(l.open, -1) })
	return l.Listener.Close()
}

func TestShardRetryDoesNotLeak(t *testing.T) {
	// Baseline for byte-identity: the same sharded study with no failures.
	cleanCfg := streamSweepConfig(1, 0, BackendHTTP)
	cleanCfg.Journal = true
	cleanCfg.Shards = 2
	clean := New(cleanCfg)
	cleanStudy, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	var cleanRec, cleanJournal bytes.Buffer
	if err := cleanStudy.WriteJSONL(&cleanRec); err != nil {
		t.Fatal(err)
	}
	if err := clean.Metrics.Journal.WriteJSONL(&cleanJournal); err != nil {
		t.Fatal(err)
	}

	goBase := runtime.NumGoroutine()

	cfg := streamSweepConfig(1, 0, BackendHTTP)
	cfg.Journal = true
	cfg.Shards = 2
	f := New(cfg)
	var open int64
	f.listen = func(network, addr string) (net.Listener, error) {
		ln, err := net.Listen(network, addr)
		if err != nil {
			return nil, err
		}
		atomic.AddInt64(&open, 1)
		return &countedListener{Listener: ln, open: &open}, nil
	}
	// Shard 1's first two attempts die mid-run — servers up, pipeline
	// flowing, half the poll schedule done — the worst case for cleanup.
	const failedAttempts = 2
	failures := 0
	f.shardPrep = func(child *FreePhish, shard, attempt int) {
		if shard != 1 || attempt >= failedAttempts {
			return
		}
		failures++
		child.streamWrap = func(s world.URLStream) world.URLStream {
			return &failingStream{inner: s, failAt: 20, err: errors.New("injected mid-run shard failure")}
		}
	}
	// The coordinator's live journal receives the retry ops events; hold it
	// before Run because the merge replaces Metrics.Journal at the end.
	liveJournal := f.Metrics.Journal

	study, err := f.Run()
	if err != nil {
		t.Fatalf("sharded run with retried shard failed: %v", err)
	}
	if failures != failedAttempts {
		t.Fatalf("prep hook armed %d failures, want %d", failures, failedAttempts)
	}

	// The retried study is byte-identical to the undisturbed one.
	var rec, journal bytes.Buffer
	if err := study.WriteJSONL(&rec); err != nil {
		t.Fatal(err)
	}
	if err := f.Metrics.Journal.WriteJSONL(&journal); err != nil {
		t.Fatal(err)
	}
	diffCascadeRun(t, "shard 1 failed mid-run twice", cleanRec.Bytes(), rec.Bytes(),
		cleanJournal.Bytes(), journal.Bytes(), clean.Stats(), f.Stats())

	// No leaked listeners: every bind across every attempt — including the
	// two killed children — was closed.
	if n := atomic.LoadInt64(&open); n != 0 {
		t.Fatalf("%d listeners still open after the run; failed shard attempts leak", n)
	}
	// No leaked goroutines: server loops and keep-alive connection loops
	// from the killed attempts must wind down (asynchronously, so poll).
	deadline := time.Now().Add(10 * time.Second)
	slack := goBase + 3
	for runtime.NumGoroutine() > slack && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > slack {
		t.Fatalf("%d goroutines alive after the run, baseline %d; failed shard attempts leak", n, goBase)
	}

	// The retries are visible: one counter sample per re-run shard and one
	// ops event per failed attempt on the live journal.
	if got := f.Metrics.ShardRetries.With("1").Value(); got != failedAttempts {
		t.Fatalf("freephish_shard_retries_total{shard=1} = %v, want %d", got, failedAttempts)
	}
	if got := f.Metrics.ShardRetries.With("0").Value(); got != 0 {
		t.Fatalf("freephish_shard_retries_total{shard=0} = %v, want 0", got)
	}
	if got := liveJournal.Counts()[obs.EvShardRetry]; got != failedAttempts {
		t.Fatalf("journal recorded %d %s ops events, want %d", got, obs.EvShardRetry, failedAttempts)
	}
}

// TestShardCoordinatorFailureClosesSiblings pins the runSharded error
// path: when one shard exhausts its attempts, the siblings that completed
// must still be closed instead of returning with their resources
// abandoned.
func TestShardCoordinatorFailureClosesSiblings(t *testing.T) {
	cfg := streamSweepConfig(1, 0, BackendHTTP)
	cfg.Shards = 2
	f := New(cfg)
	var open int64
	f.listen = func(network, addr string) (net.Listener, error) {
		ln, err := net.Listen(network, addr)
		if err != nil {
			return nil, err
		}
		atomic.AddInt64(&open, 1)
		return &countedListener{Listener: ln, open: &open}, nil
	}
	injected := errors.New("injected permanent failure")
	f.shardHook = func(shard, attempt int) error {
		if shard == 1 {
			return injected
		}
		return nil
	}
	if _, err := f.Run(); !errors.Is(err, injected) {
		t.Fatalf("run = %v, want the injected permanent failure", err)
	}
	if n := atomic.LoadInt64(&open); n != 0 {
		t.Fatalf("%d listeners still open after coordinator failure; siblings leak", n)
	}
}
