package core

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"freephish/internal/faults"
	"freephish/internal/obs"
	"freephish/internal/shardrpc"
	"freephish/internal/state"
	"freephish/internal/world"
)

// remoteRun executes one traced study with every shard dispatched to the
// given worker endpoint(s) and returns the same byte-comparable artifacts
// shardRun does.
func remoteRun(t *testing.T, shards, workers int, backend string, prof *faults.Profile, endpoints ...string) (records, journal []byte, stats Stats, f *FreePhish) {
	t.Helper()
	cfg := streamSweepConfig(workers, 0, backend)
	cfg.Journal = true
	cfg.Faults = prof
	cfg.Shards = shards
	cfg.ShardWorkers = endpoints
	f = New(cfg)
	study, err := f.Run()
	if err != nil {
		t.Fatalf("remote shards=%d backend=%s: %v", shards, backend, err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("remote shards=%d backend=%s failed verification: %v", shards, backend, err)
	}
	var rbuf, jbuf bytes.Buffer
	if err := study.WriteJSONL(&rbuf); err != nil {
		t.Fatal(err)
	}
	if err := f.Metrics.Journal.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	return rbuf.Bytes(), jbuf.Bytes(), f.Stats(), f
}

// TestRemoteShardDeterminism is the `make verify-remote-shards` gate: the
// same seeded study with every shard shipped over shardrpc to a worker
// (core.SpecRunner behind shardrpc.Server — the exact stack
// cmd/freephish-worker serves) must merge into byte-identical records,
// journal, and stats at shards {2, 4}, on both backends, and under the
// default chaos profile. The worker retrains its models from the spec's
// seed, so byte-identity here proves the whole dispatch boundary: spec
// serialization, bit-identical remote training, checkpoint streaming, and
// snapshot wire transport.
func TestRemoteShardDeterminism(t *testing.T) {
	baseRec, baseJournal, baseStats, _ := shardRun(t, 1, 1, BackendInproc, nil)

	srv := httptest.NewServer(&shardrpc.Server{Runner: NewSpecRunner()})
	defer srv.Close()

	defaultProf := faults.DefaultProfile()
	cases := []struct {
		shards  int
		backend string
		prof    *faults.Profile
	}{
		{2, BackendInproc, nil},
		{4, BackendInproc, nil},
		{2, BackendHTTP, nil},
		{4, BackendInproc, &defaultProf},
	}
	for _, tc := range cases {
		label := fmt.Sprintf("remote shards=%d backend=%s chaos=%v", tc.shards, tc.backend, tc.prof != nil)
		rec, journal, stats, f := remoteRun(t, tc.shards, 1, tc.backend, tc.prof, srv.URL)
		diffCascadeRun(t, label, baseRec, rec, baseJournal, journal, baseStats, stats)
		// Every shard really went over the wire: no local children remain,
		// the dispatch counter names the endpoint, and nothing failed over.
		if !f.remoteShards || len(f.shards) != 0 {
			t.Fatalf("%s: %d local children, remoteShards=%v; shards did not dispatch remotely",
				label, len(f.shards), f.remoteShards)
		}
		if got := f.Metrics.ShardDispatched.With(srv.URL).Value(); got != float64(tc.shards) {
			t.Fatalf("%s: freephish_shard_dispatched_total{runner=%s} = %v, want %d",
				label, srv.URL, got, tc.shards)
		}
		if got := f.Metrics.WorkerFailures.With(srv.URL).Value(); got != 0 {
			t.Fatalf("%s: %v worker failures on a healthy worker", label, got)
		}
	}
}

// TestShardAdoptionByteIdentical is half of the `make verify-adoption`
// gate: a local shard that dies mid-run past its first streamed
// checkpoint must NOT be retried from ordinal zero — the replacement
// child adopts the last checkpoint and resumes through the replay path,
// and the merged study is byte-identical to the undisturbed run.
func TestShardAdoptionByteIdentical(t *testing.T) {
	baseRec, baseJournal, baseStats, _ := shardRun(t, 2, 1, BackendInproc, nil)

	cfg := streamSweepConfig(1, 0, BackendInproc)
	cfg.Journal = true
	cfg.Shards = 2
	// A tight adoption stride so the failing attempt has streamed several
	// checkpoints by the time it dies.
	cfg.CheckpointEvery = 500
	f := New(cfg)
	var resumed *state.Checkpoint
	f.shardPrep = func(child *FreePhish, shard, attempt int) {
		if shard != 1 {
			return
		}
		switch attempt {
		case 0:
			// Dies at poll 1200 — after the checkpoints at cycles 500 and 1000.
			child.streamWrap = func(s world.URLStream) world.URLStream {
				return &failingStream{inner: s, failAt: 1200, err: errors.New("injected mid-run shard failure")}
			}
		case 1:
			resumed = child.Config.Resume
		}
	}
	liveJournal := f.Metrics.Journal
	study, err := f.Run()
	if err != nil {
		t.Fatalf("run with adopted shard failed: %v", err)
	}

	// The "never from-scratch" assertion: the replacement attempt started
	// from the dead attempt's checkpoint, not a fresh child.
	if resumed == nil {
		t.Fatal("replacement attempt ran from scratch despite streamed checkpoints")
	}
	if resumed.Cycles < cfg.CheckpointEvery {
		t.Fatalf("adopted checkpoint at cycle %d, want >= one full stride (%d)", resumed.Cycles, cfg.CheckpointEvery)
	}
	if got := f.Metrics.ShardAdopted.With("1").Value(); got != 1 {
		t.Fatalf("freephish_shard_adopted_total{shard=1} = %v, want 1", got)
	}
	if got := liveJournal.Counts()[obs.EvShardAdopt]; got != 1 {
		t.Fatalf("journal recorded %d %s ops events, want 1", got, obs.EvShardAdopt)
	}
	if got := liveJournal.Counts()[obs.EvShardCheckpoint]; got == 0 {
		t.Fatalf("no %s ops events; checkpoint streaming never surfaced", obs.EvShardCheckpoint)
	}

	var rec, journal bytes.Buffer
	if err := study.WriteJSONL(&rec); err != nil {
		t.Fatal(err)
	}
	if err := f.Metrics.Journal.WriteJSONL(&journal); err != nil {
		t.Fatal(err)
	}
	diffCascadeRun(t, "shard 1 adopted mid-run", baseRec, rec.Bytes(),
		baseJournal, journal.Bytes(), baseStats, f.Stats())
}

// TestRemoteShardAdoptionByteIdentical is the other half of the
// `make verify-adoption` gate: a remote worker that crashes mid-shard
// (connection aborted without a terminal frame) fails over to the local
// fallback runner, which adopts the last checkpoint frame the worker
// streamed before dying — byte-identically.
func TestRemoteShardAdoptionByteIdentical(t *testing.T) {
	baseRec, baseJournal, baseStats, _ := shardRun(t, 2, 1, BackendInproc, nil)

	server := &shardrpc.Server{Runner: NewSpecRunner()}
	var killed int32
	server.OnCheckpointFrame = func(shardIndex, frameCount int) error {
		// Shard 1's first dispatch dies after its second checkpoint frame.
		if shardIndex == 1 && frameCount >= 2 && atomic.CompareAndSwapInt32(&killed, 0, 1) {
			return errors.New("injected worker crash")
		}
		return nil
	}
	srv := httptest.NewServer(server)
	defer srv.Close()

	cfg := streamSweepConfig(1, 0, BackendInproc)
	cfg.Journal = true
	cfg.Shards = 2
	cfg.CheckpointEvery = 500
	cfg.ShardWorkers = []string{srv.URL}
	f := New(cfg)
	var resumed *state.Checkpoint
	f.shardPrep = func(child *FreePhish, shard, attempt int) {
		if shard == 1 && attempt == 1 {
			resumed = child.Config.Resume
		}
	}
	study, err := f.Run()
	if err != nil {
		t.Fatalf("run with crashed worker failed: %v", err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("run with crashed worker failed verification: %v", err)
	}

	if atomic.LoadInt32(&killed) != 1 {
		t.Fatal("the kill seam never fired; the test is vacuous")
	}
	if resumed == nil {
		t.Fatal("failover ran from scratch despite checkpoint frames from the dead worker")
	}
	if got := f.Metrics.WorkerFailures.With(srv.URL).Value(); got != 1 {
		t.Fatalf("freephish_shard_worker_failures_total{endpoint=%s} = %v, want 1", srv.URL, got)
	}
	if got := f.Metrics.ShardAdopted.With("1").Value(); got != 1 {
		t.Fatalf("freephish_shard_adopted_total{shard=1} = %v, want 1", got)
	}
	// Shard 0 finished on the worker; shard 1's replacement ran locally.
	if !f.remoteShards || len(f.shards) != 1 {
		t.Fatalf("kept %d local children, remoteShards=%v; want exactly the failed-over shard",
			len(f.shards), f.remoteShards)
	}

	var rec, journal bytes.Buffer
	if err := study.WriteJSONL(&rec); err != nil {
		t.Fatal(err)
	}
	if err := f.Metrics.Journal.WriteJSONL(&journal); err != nil {
		t.Fatal(err)
	}
	diffCascadeRun(t, "worker crashed mid-shard", baseRec, rec.Bytes(),
		baseJournal, journal.Bytes(), baseStats, f.Stats())
}

// TestWorkerBreakerFailover pins the unreachable-fleet path: with every
// configured worker dead, each shard burns one transient dispatch failure
// (counted per endpoint, opening the breaker at the threshold) and falls
// back to a local child — the study still completes byte-identically,
// with no checkpoint to adopt because the workers never streamed one.
func TestWorkerBreakerFailover(t *testing.T) {
	baseRec, baseJournal, baseStats, _ := shardRun(t, 2, 1, BackendInproc, nil)

	// Reserve a real port, then close it: connections are refused instantly.
	dead := httptest.NewServer(nil)
	endpoint := dead.Listener.Addr().String()
	dead.Close()

	rec, journal, stats, f := remoteRun(t, 2, 1, BackendInproc, nil, endpoint)
	diffCascadeRun(t, "all workers dead", baseRec, rec, baseJournal, journal, baseStats, stats)

	if got := f.Metrics.WorkerFailures.With(endpoint).Value(); got != 2 {
		t.Fatalf("freephish_shard_worker_failures_total{endpoint=%s} = %v, want 2 (one per shard)", endpoint, got)
	}
	// Both failures hit the same endpoint; at threshold 2 its breaker opened.
	if got := f.Metrics.BreakerEvents.With("worker|"+endpoint, "open").Value(); got != 1 {
		t.Fatalf("breaker open transitions for %s = %v, want 1", endpoint, got)
	}
	// Nothing was adopted (a refused dispatch streams no checkpoint), and
	// every shard finished on the local fallback.
	if got := f.Metrics.ShardAdopted.With("0").Value() + f.Metrics.ShardAdopted.With("1").Value(); got != 0 {
		t.Fatalf("%v shards adopted checkpoints; refused dispatches have none to adopt", got)
	}
	if f.remoteShards || len(f.shards) != 2 {
		t.Fatalf("kept %d local children, remoteShards=%v; every shard should have fallen back locally",
			len(f.shards), f.remoteShards)
	}
	if got := f.Metrics.ShardDispatched.With("local").Value(); got != 2 {
		t.Fatalf("freephish_shard_dispatched_total{runner=local} = %v, want 2", got)
	}
}
