package core

import (
	"fmt"

	"freephish/internal/baselines"
)

// CascadeConfig enables the tiered classification cascade: a URL-only
// lexical scorer (trained on the same ground-truth corpus as the full
// models, on its own RNG stream) triages every fresh URL ahead of the
// fetch stage. Scores strictly below BenignBelow short-circuit as benign
// and scores strictly above PhishAbove short-circuit as phishing — those
// URLs are never fetched; the uncertain band falls through to the full
// fetch → classify path. The degenerate pair (0, 1) never fires, making
// that cascade byte-identical to running with no cascade at all.
type CascadeConfig struct {
	BenignBelow float64
	PhishAbove  float64
}

// DefaultCascade returns the calibrated default thresholds (see
// EXPERIMENTS.md "Tiered cascade" for the trade-off sweep behind them).
func DefaultCascade() *CascadeConfig {
	return &CascadeConfig{
		BenignBelow: baselines.DefaultBenignBelow,
		PhishAbove:  baselines.DefaultPhishAbove,
	}
}

// ParseCascade parses a -cascade flag spec ("off", "on", or an explicit
// "benignBelow,phishAbove" pair) into a CascadeConfig; nil means the
// cascade is disabled.
func ParseCascade(spec string) (*CascadeConfig, error) {
	lo, hi, on, err := baselines.ParseCascadeThresholds(spec)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if !on {
		return nil, nil
	}
	return &CascadeConfig{BenignBelow: lo, PhishAbove: hi}, nil
}
