package core

import (
	"fmt"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/obs"
	"freephish/internal/par"
	"freephish/internal/state"
)

// Sharded execution. With Config.Shards = N > 1, the coordinator trains
// the models once, then fans the study out over N child frameworks. Each
// child is a complete FreePhish — its own clock, simulated world,
// loopback servers (on the http backend), pipe graphs, retry policy, and
// chaos injector — that runs the full poll schedule over one residue
// class of the posting schedule's global event ordinals. Partitioning is
// sound because every stateful draw in the world is keyed: posting
// events draw from per-ordinal RNG streams, assessments and reporting
// from per-URL streams, so an event produces identical outcomes no
// matter which shard executes it. The coordinator merges the shards'
// state snapshots (internal/state) and rebuilds the canonical journal —
// records, journal, and stats are byte-identical to the 1-shard run.

// shardAttempts is how many times the coordinator re-runs a failed
// shard before giving up. A shard re-run is exact: the sub-stream is a
// pure function of (seed, shard index), so a fresh child replays the
// identical schedule.
const shardAttempts = 3

// runSharded is Run's coordinator path (Config.Shards > 1).
func (f *FreePhish) runSharded() (*analysis.Study, error) {
	f.runStart = time.Now()
	if f.Model == nil || f.BaseModel == nil {
		sp := f.Metrics.Tracer.Start("train")
		err := f.Train()
		sp.EndErr(err)
		if err != nil {
			return nil, err
		}
	}
	n := f.Config.Shards
	shards := make([]*FreePhish, n)
	snaps, err := par.MapOrdered(n, make([]struct{}, n),
		func(i int, _ struct{}) (*state.Snapshot, error) {
			snap, child, err := f.runShard(i)
			shards[i] = child
			return snap, err
		})
	if err != nil {
		// par.MapOrdered continues on error, so by the time it returns every
		// shard attempt has finished — but the siblings that succeeded are
		// still holding their frameworks. Tear them all down instead of
		// returning with their sockets abandoned.
		for _, child := range shards {
			if child != nil {
				child.Close()
			}
		}
		return nil, err
	}
	f.shards = shards
	merged := state.Merge(snaps...)
	f.State.Restore(merged)
	if f.Metrics.Journal != nil {
		f.Metrics.Journal = obs.RebuildJournal(
			f.Clock.Now, f.Config.JournalRing, merged.Events)
	}
	return f.State.Study(), nil
}

// runShard drives shard i to completion, retrying a failed attempt with
// a fresh child (coordinator-level retry: a shard's sub-stream replays
// exactly from its seed, so a transient failure — a lost listener, an
// injected fault that escaped the retry layer — costs one shard re-run,
// not the whole study).
func (f *FreePhish) runShard(i int) (*state.Snapshot, *FreePhish, error) {
	var lastErr error
	for attempt := 0; attempt < shardAttempts; attempt++ {
		child := f.newShard(i)
		if f.shardPrep != nil {
			f.shardPrep(child, i, attempt)
		}
		if f.shardHook != nil {
			if err := f.shardHook(i, attempt); err != nil {
				// The failed child is done for: close it before building its
				// replacement, or every retry leaks the previous attempt's
				// listeners and keep-alive sockets for the rest of the study.
				child.Close()
				f.observeShardRetry(i, attempt, err)
				lastErr = err
				continue
			}
		}
		if _, err := child.Run(); err != nil {
			child.Close()
			f.observeShardRetry(i, attempt, err)
			lastErr = err
			continue
		}
		var events []obs.Event
		if j := child.Metrics.Journal; j != nil {
			events = j.Events()
		}
		return child.State.Snapshot(events), child, nil
	}
	return nil, nil, fmt.Errorf("core: shard %d/%d failed after %d attempts: %w",
		i, f.Config.Shards, shardAttempts, lastErr)
}

// observeShardRetry surfaces a failed shard attempt: a counter on the
// coordinator's registry and an ops-class journal event, so re-runs show
// up on /dash and in the ops stream instead of silently re-paying a
// shard's worth of work. Ops events never enter the canonical record
// (see obs.SortCanonical), so observing a retry cannot perturb the
// byte-identity contract.
func (f *FreePhish) observeShardRetry(shard, attempt int, err error) {
	f.Metrics.ShardRetries.With(itoa(shard)).Inc()
	if j := f.Metrics.Journal; j != nil {
		j.RecordOps("", obs.EvShardRetry,
			"shard", itoa(shard), "attempt", itoa(attempt), "err", err.Error())
	}
}

// newShard builds the child framework for shard i. The child shares the
// coordinator's trained models read-only (sharedModels suppresses
// observer installation — see wireMetrics) and keeps everything else
// private: its own registry (so concurrent shards never collide on
// metric families), no progress or log hooks (the coordinator owns
// narration), and Shards reset to 1 so the child takes the local path.
func (f *FreePhish) newShard(i int) *FreePhish {
	cfg := f.Config
	cfg.Shards = 1
	cfg.Registry = nil
	cfg.Progress = nil
	cfg.Logger = nil
	// Checkpointing is coordinator-level (Run rejects it with Shards > 1);
	// never let a child inherit the flags and clobber the operator's file.
	cfg.CheckpointPath = ""
	cfg.CheckpointEvery = 0
	cfg.Resume = nil
	child := New(cfg)
	child.listen = f.listen
	child.shardIndex = i
	child.shardCount = f.Config.Shards
	child.sharedModels = true
	child.Model = f.Model
	child.BaseModel = f.BaseModel
	child.Lexical = f.Lexical
	child.cascade = f.cascade
	return child
}
