package core

import (
	"time"

	"freephish/internal/analysis"
	"freephish/internal/obs"
	"freephish/internal/par"
	"freephish/internal/state"
)

// Sharded execution. With Config.Shards = N > 1, the coordinator trains
// the models once, then fans the study out over N child frameworks. Each
// child is a complete FreePhish — its own clock, simulated world,
// loopback servers (on the http backend), pipe graphs, retry policy, and
// chaos injector — that runs the full poll schedule over one residue
// class of the posting schedule's global event ordinals. Partitioning is
// sound because every stateful draw in the world is keyed: posting
// events draw from per-ordinal RNG streams, assessments and reporting
// from per-URL streams, so an event produces identical outcomes no
// matter which shard executes it. The coordinator merges the shards'
// state snapshots (internal/state) and rebuilds the canonical journal —
// records, journal, and stats are byte-identical to the 1-shard run.

// shardAttempts is how many times the coordinator dispatches a failed
// shard before giving up. A re-dispatch is exact: the sub-stream is a
// pure function of (seed, shard index), and when the failed attempt
// streamed a checkpoint the replacement runner adopts it, resuming via
// the replay path instead of re-running from ordinal zero (dispatch.go).
const shardAttempts = 3

// runSharded is Run's coordinator path (Config.Shards > 1). Execution
// goes through the shard-dispatch boundary: the dispatcher picks a runner
// (local child, or a Config.ShardWorkers endpoint) per attempt and owns
// failover by checkpoint adoption; this function owns training, fan-out,
// teardown, and the merge.
func (f *FreePhish) runSharded() (*analysis.Study, error) {
	f.runStart = time.Now()
	if f.Model == nil || f.BaseModel == nil {
		sp := f.Metrics.Tracer.Start("train")
		err := f.Train()
		sp.EndErr(err)
		if err != nil {
			return nil, err
		}
	}
	n := f.Config.Shards
	d := f.newDispatcher()
	shards := make([]*FreePhish, n)
	snaps, err := par.MapOrdered(n, make([]struct{}, n),
		func(i int, _ struct{}) (*state.Snapshot, error) {
			snap, child, err := d.runShard(i)
			shards[i] = child
			return snap, err
		})
	if err != nil {
		// par.MapOrdered continues on error, so by the time it returns every
		// shard attempt has finished — but the siblings that succeeded are
		// still holding their frameworks. Tear them all down instead of
		// returning with their sockets abandoned.
		for _, child := range shards {
			if child != nil {
				child.Close()
			}
		}
		return nil, err
	}
	// Remote shards return a snapshot but no local framework; keep the
	// frameworks that do exist for Verify's world audit and flag the rest.
	f.shards = f.shards[:0]
	for _, child := range shards {
		if child != nil {
			f.shards = append(f.shards, child)
		} else {
			f.remoteShards = true
		}
	}
	merged := state.Merge(snaps...)
	f.State.Restore(merged)
	if f.Metrics.Journal != nil {
		f.Metrics.Journal = obs.RebuildJournal(
			f.Clock.Now, f.Config.JournalRing, merged.Events)
	}
	return f.State.Study(), nil
}

// observeShardRetry surfaces a failed shard attempt: a counter on the
// coordinator's registry and an ops-class journal event, so re-runs show
// up on /dash and in the ops stream instead of silently re-paying a
// shard's worth of work. Ops events never enter the canonical record
// (see obs.SortCanonical), so observing a retry cannot perturb the
// byte-identity contract.
func (f *FreePhish) observeShardRetry(shard, attempt int, err error) {
	f.Metrics.ShardRetries.With(itoa(shard)).Inc()
	if j := f.Metrics.Journal; j != nil {
		j.RecordOps("", obs.EvShardRetry,
			"shard", itoa(shard), "attempt", itoa(attempt), "err", err.Error())
	}
}

// newShard builds the child framework for shard i. The child shares the
// coordinator's trained models read-only (sharedModels suppresses
// observer installation — see wireMetrics) and keeps everything else
// private: its own registry (so concurrent shards never collide on
// metric families), no progress or log hooks (the coordinator owns
// narration), and Shards reset to 1 so the child takes the local path.
func (f *FreePhish) newShard(i int) *FreePhish {
	cfg := f.Config
	cfg.Shards = 1
	cfg.Registry = nil
	cfg.Progress = nil
	cfg.Logger = nil
	// Checkpointing is coordinator-level (Run rejects it with Shards > 1);
	// never let a child inherit the flags and clobber the operator's file.
	cfg.CheckpointPath = ""
	cfg.CheckpointEvery = 0
	cfg.Resume = nil
	child := New(cfg)
	child.listen = f.listen
	child.shardIndex = i
	child.shardCount = f.Config.Shards
	child.sharedModels = true
	child.Model = f.Model
	child.BaseModel = f.BaseModel
	child.Lexical = f.Lexical
	child.cascade = f.cascade
	return child
}
