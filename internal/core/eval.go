package core

import (
	"fmt"

	"freephish/internal/state"
	"freephish/internal/world"
)

// evaluator is the harness-side evaluation component: it scores the
// pipeline's classification decisions against ground truth and reclaims
// evaluated page bodies. It is deliberately separate from the pipeline —
// it is the ONLY consumer of the world's oracle port, so the probe/apply
// paths never see a label. A deployment (where no oracle exists) simply
// runs without it.
type evaluator struct {
	oracle  world.Oracle
	state   *state.StudyState
	metrics *Metrics
}

// observe scores one scanned, hosted URL's flag decision against the
// oracle and releases the oracle's retained page body.
func (e *evaluator) observe(url, cohort string, flagged bool) error {
	truth, err := e.oracle.Truth(url)
	if err != nil {
		return fmt.Errorf("core: oracle truth %q: %w", url, err)
	}
	var kind string
	switch {
	case flagged && truth.Malicious:
		kind = "tp"
	case flagged && !truth.Malicious:
		kind = "fp"
	case !flagged && truth.Malicious:
		kind = "fn"
	default:
		kind = "tn"
	}
	e.state.AddDecision(kind)
	e.metrics.Decisions.With(cohort, kind).Inc()
	// Free the page body: nothing re-fetches a processed site, and the
	// full-scale study would otherwise hold ~100k page bodies in memory.
	if err := e.oracle.Release(url); err != nil {
		return fmt.Errorf("core: oracle release %q: %w", url, err)
	}
	return nil
}
