package core

import (
	"fmt"
	"strings"
	"time"

	"freephish/internal/analysis"
	"freephish/internal/fwb"
	"freephish/internal/simclock"
	"freephish/internal/webgen"
)

// The Section 3 qualitative evaluation: two security-trained coders labeled
// a 5K random sample of D1 against the 409 OpenPhish brands, confirming
// 4,656 as phishing with an initial Cohen's kappa of 0.78. Disagreements
// came from four documented causes: brand-spoofing interpretation, evasive
// two-step attacks, the relevance of non-credential text fields, and
// non-English pages. This module simulates that protocol with coder models
// whose blind spots are exactly those causes.

// CoderStudy is the outcome of the simulated qualitative evaluation.
type CoderStudy struct {
	SampleSize        int
	Confirmed         int     // true positives after discussion (paper: 4,656 of 5K)
	Kappa             float64 // initial inter-rater agreement (paper: 0.78)
	InitialAgreement  int
	DisagreementCause map[string]int
}

// coderCase is one sampled URL with the attributes the coders react to.
type coderCase struct {
	phishing   bool
	evasive    bool // two-step / iframe / drive-by (Coder 1's blind spot)
	extraField bool // address/phone-only intent (Coder 1's blind spot)
	nonEnglish bool // Spanish/Chinese pages (Coder 2's blind spot)
	borderline bool // weak brand mimicry (both coders judge differently)
}

// Disagreement causes, matching the paper's list.
const (
	causeBrand      = "brand-spoofing interpretation"
	causeEvasive    = "evasive two-step attacks"
	causeTextFields = "non-credential text fields"
	causeLanguage   = "language representation"
)

// RunCoderStudy simulates the two-coder evaluation over a D1 sample. Error
// profiles are calibrated so kappa lands near the paper's 0.78 and the
// confirmed fraction near 93% (4,656/5,000).
func RunCoderStudy(seed int64, sample int) CoderStudy {
	rng := simclock.NewRNG(seed, "core.coders")
	g := webgen.NewGenerator(seed, nil, nil)
	epoch := time.Date(2022, 8, 31, 0, 0, 0, 0, time.UTC)

	study := CoderStudy{SampleSize: sample, DisagreementCause: map[string]int{}}
	var c1, c2 []int
	for i := 0; i < sample; i++ {
		// ~93% of the VT-labeled sample is truly phishing; the rest are
		// aggregate false positives (the paper's 344 rejected URLs).
		cs := coderCase{phishing: rng.Bool(0.931)}
		if cs.phishing {
			site := g.PhishingFWBSite(g.PickService(), epoch)
			cs.evasive = site.Kind != fwb.KindPhishing
			cs.extraField = !cs.evasive && rng.Bool(0.18)
			cs.nonEnglish = rng.Bool(0.012)
			cs.borderline = rng.Bool(0.055)
		} else {
			cs.borderline = rng.Bool(0.20)
		}
		l1, l2, cause := judge(cs, rng)
		c1 = append(c1, l1)
		c2 = append(c2, l2)
		if l1 == l2 {
			study.InitialAgreement++
		} else if cause != "" {
			study.DisagreementCause[cause]++
		}
		// Disagreements are resolved by discussion and consensus; the
		// consensus recovers the ground truth.
		if cs.phishing {
			study.Confirmed++
		}
	}
	study.Kappa = analysis.CohenKappa(c1, c2)
	return study
}

// judge returns the two coders' labels and, if they disagree, the cause.
func judge(cs coderCase, rng *simclock.RNG) (l1, l2 int, cause string) {
	truth := 0
	if cs.phishing {
		truth = 1
	}
	l1, l2 = truth, truth

	switch {
	case cs.evasive && rng.Bool(0.09):
		// Coder 1 failed to recognize two-step phishing attacks as harmful.
		l1 = 0
		cause = causeEvasive
	case cs.extraField && rng.Bool(0.045):
		// Coder 1 overlooked address/phone fields as phishing intent.
		l1 = 0
		cause = causeTextFields
	case cs.nonEnglish && rng.Bool(0.6):
		// Coder 2 could not identify intent on non-English pages.
		l2 = 0
		cause = causeLanguage
	case cs.borderline:
		// Differing views on how effectively the site mimics the brand:
		// each coder independently judges borderline mimicry.
		if rng.Bool(0.13) {
			if rng.Bool(0.5) {
				l1 = 1 - truth
			} else {
				l2 = 1 - truth
			}
			cause = causeBrand
		}
	}
	if l1 == l2 {
		cause = ""
	}
	return l1, l2, cause
}

// RenderCoderStudy renders the Section 3 protocol summary.
func RenderCoderStudy(s CoderStudy) string {
	var b strings.Builder
	b.WriteString("Section 3: qualitative coder evaluation\n")
	fmt.Fprintf(&b, "  sample size:        %d\n", s.SampleSize)
	fmt.Fprintf(&b, "  confirmed phishing: %d (%.1f%%; paper 4,656/5,000)\n",
		s.Confirmed, 100*float64(s.Confirmed)/float64(s.SampleSize))
	fmt.Fprintf(&b, "  Cohen's kappa:      %.2f (paper 0.78)\n", s.Kappa)
	fmt.Fprintf(&b, "  initial agreement:  %d/%d\n", s.InitialAgreement, s.SampleSize)
	for _, cause := range []string{causeBrand, causeEvasive, causeTextFields, causeLanguage} {
		if n := s.DisagreementCause[cause]; n > 0 {
			fmt.Fprintf(&b, "    disagreement: %-34s %d\n", cause, n)
		}
	}
	return b.String()
}
