package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"freephish/internal/faults"
	"freephish/internal/obs"
)

// chaosRun executes one study and captures everything byte-comparable.
type chaosRun struct {
	jsonl  []byte
	stats  Stats
	obs    map[string]*Observation
	table3 string
	fp     *FreePhish
}

func runChaosStudy(t *testing.T, backend string, prof *faults.Profile) chaosRun {
	t.Helper()
	cfg := equivalenceConfig(backend)
	cfg.Faults = prof
	f := New(cfg)
	study, err := f.Run()
	if err != nil {
		t.Fatalf("%s backend (faults=%v): %v", backend, prof != nil, err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("%s backend (faults=%v) failed verification: %v", backend, prof != nil, err)
	}
	if len(study.Records) == 0 {
		t.Fatalf("%s backend produced no records", backend)
	}
	var buf bytes.Buffer
	if err := study.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return chaosRun{
		jsonl:  buf.Bytes(),
		stats:  f.Stats(),
		obs:    f.Observations(),
		table3: RenderTable3(study),
		fp:     f,
	}
}

// TestStudyUnderFaultsDeterministic is the chaos-soak acceptance check:
// a study run under the default fault profile — injected latency, 5xx
// bursts, connection resets, corrupted bodies, on both backends — must
// be byte-identical to the fault-free run. The unified retry layer has
// to absorb every injected failure without shifting a single record,
// counter, or monitor observation.
func TestStudyUnderFaultsDeterministic(t *testing.T) {
	clean := runChaosStudy(t, BackendInproc, nil)
	prof := faults.DefaultProfile()
	faulted := runChaosStudy(t, BackendInproc, &prof)
	prof2 := faults.DefaultProfile()
	faultedHTTP := runChaosStudy(t, BackendHTTP, &prof2)

	// The chaos actually fired — otherwise this test proves nothing.
	for name, run := range map[string]chaosRun{"inproc": faulted, "http": faultedHTTP} {
		counts := run.fp.injector.Counts()
		total := uint64(0)
		for kind, n := range counts {
			if kind != faults.KindLatency {
				total += n
			}
		}
		if total == 0 {
			t.Fatalf("%s: no failure faults injected (counts=%v)", name, counts)
		}
		t.Logf("%s faults injected: %v", name, counts)
	}

	for name, run := range map[string]chaosRun{"inproc": faulted, "http": faultedHTTP} {
		if !bytes.Equal(clean.jsonl, run.jsonl) {
			a := strings.Split(string(clean.jsonl), "\n")
			b := strings.Split(string(run.jsonl), "\n")
			for i := 0; i < len(a) && i < len(b); i++ {
				if a[i] != b[i] {
					t.Fatalf("%s: study diverges under faults at record %d:\nclean:   %s\nfaulted: %s", name, i, a[i], b[i])
				}
			}
			t.Fatalf("%s: study lengths diverge: clean %d records, faulted %d", name, len(a), len(b))
		}
		if clean.stats != run.stats {
			t.Errorf("%s: stats diverge under faults:\nclean:   %+v\nfaulted: %+v", name, clean.stats, run.stats)
		}
		if !reflect.DeepEqual(clean.obs, run.obs) {
			t.Errorf("%s: monitor observations diverge under faults", name)
		}
		if clean.table3 != run.table3 {
			t.Errorf("%s: Table 3 diverges under faults", name)
		}
	}

	// The retry layer did the absorbing: retries were scheduled, nothing
	// gave up, no breaker opened.
	for name, run := range map[string]chaosRun{"inproc": faulted, "http": faultedHTTP} {
		var retries, giveUps, breaker float64
		for _, s := range run.fp.Metrics.Registry.Snapshot() {
			switch s.Name {
			case "freephish_retries_total":
				retries += s.Value
			case "freephish_retry_giveups_total":
				giveUps += s.Value
			case "freephish_breaker_transitions_total":
				breaker += s.Value
			}
		}
		if retries == 0 {
			t.Errorf("%s: no retries recorded under the default profile", name)
		}
		if giveUps != 0 || breaker != 0 {
			t.Errorf("%s: default profile must stay inside the budget; give-ups=%v breaker transitions=%v", name, giveUps, breaker)
		}
	}
}

// TestDNSFailChaosByteIdentical extends the chaos gate to the dnsfail
// class: resolution failures abort requests at the transport, share the
// per-key burst cap with the other failure faults, and draw from their
// own stream — so a dnsfail-bearing profile must be absorbed by the retry
// budget without shifting a byte, and without perturbing the other
// faults' schedules.
func TestDNSFailChaosByteIdentical(t *testing.T) {
	clean := runChaosStudy(t, BackendInproc, nil)
	prof := faults.DefaultProfile()
	prof.DNSFailP = 0.05
	faulted := runChaosStudy(t, BackendInproc, &prof)

	if n := faulted.fp.injector.Counts()[faults.KindDNSFail]; n == 0 {
		t.Fatal("no dnsfail faults injected; the test is vacuous")
	}
	if !bytes.Equal(clean.jsonl, faulted.jsonl) {
		t.Fatal("study records diverge under dnsfail chaos")
	}
	if clean.stats != faulted.stats {
		t.Fatalf("stats diverge under dnsfail chaos:\nclean:   %+v\nfaulted: %+v", clean.stats, faulted.stats)
	}
	if !reflect.DeepEqual(clean.obs, faulted.obs) {
		t.Fatal("monitor observations diverge under dnsfail chaos")
	}
	// The joint burst cap kept dnsfail inside the retry budget.
	var giveUps float64
	for _, s := range faulted.fp.Metrics.Registry.Snapshot() {
		if s.Name == "freephish_retry_giveups_total" {
			giveUps += s.Value
		}
	}
	if giveUps != 0 {
		t.Fatalf("dnsfail chaos caused %v retry give-ups; the shared cap must keep it absorbable", giveUps)
	}
}

// TestChaosRunsReproducible: two faulted runs with the same seed are
// byte-identical to each other — the injector draws from a pure hash,
// never shared RNG.
func TestChaosRunsReproducible(t *testing.T) {
	prof := faults.DefaultProfile()
	a := runChaosStudy(t, BackendInproc, &prof)
	prof2 := faults.DefaultProfile()
	b := runChaosStudy(t, BackendInproc, &prof2)
	if !bytes.Equal(a.jsonl, b.jsonl) || a.stats != b.stats {
		t.Fatal("two same-seed chaos runs diverged")
	}
	if !reflect.DeepEqual(a.fp.injector.Counts(), b.fp.injector.Counts()) {
		t.Fatalf("injection schedules diverged: %v vs %v", a.fp.injector.Counts(), b.fp.injector.Counts())
	}
}

// TestBlackoutSurvivedAndObserved: a platform blackout longer than the
// retry budget is the fault class chaos cannot hide. The study must
// survive it — failed polls, cursor frozen, catch-up afterwards — and
// the give-up/breaker machinery must leave a visible trace.
func TestBlackoutSurvivedAndObserved(t *testing.T) {
	cfg := equivalenceConfig(BackendInproc)
	cfg.MonitorInterval = 0 // keep the run focused on the streaming path
	cfg.Registry = obs.NewRegistry()
	cfg.Faults = &faults.Profile{
		MaxConsecutive: 2,
		// Twitter's API is dark for two days mid-window.
		Blackouts: []faults.Blackout{{Endpoint: "twitter", Start: 10 * 24 * time.Hour, Length: 48 * time.Hour}},
	}
	f := New(cfg)
	study, err := f.Run()
	if err != nil {
		t.Fatalf("study did not survive the blackout: %v", err)
	}
	if len(study.Records) == 0 {
		t.Fatal("no records despite a bounded blackout")
	}
	if f.poller.Failed == 0 {
		t.Fatal("a two-day platform blackout should fail at least one poll")
	}
	var giveUps float64
	for _, s := range cfg.Registry.Snapshot() {
		if s.Name == "freephish_retry_giveups_total" {
			giveUps += s.Value
		}
	}
	if giveUps == 0 {
		t.Fatal("blackout polls should exhaust the retry budget and be counted")
	}
	if f.injector.Counts()[faults.KindBlackout] == 0 {
		t.Fatal("injector recorded no blackout faults")
	}
}

// TestClockSkewPerturbsObservationsDeterministically exercises the
// clock-skew fault end to end: skew is deliberately NOT absorbed by the
// retry layer (it corrupts the timestamps the monitor records, not the
// transport), so a skewed study must diverge from the clean one in its
// observation times — yet stay deterministic per seed, and stay
// shard-invariant, because skew draws are keyed per URL.
func TestClockSkewPerturbsObservationsDeterministically(t *testing.T) {
	runSkewed := func(shards int) chaosRun {
		cfg := equivalenceConfig(BackendInproc)
		cfg.Faults = &faults.Profile{SkewP: 0.5, SkewMax: 45 * time.Minute}
		cfg.Shards = shards
		f := New(cfg)
		study, err := f.Run()
		if err != nil {
			t.Fatalf("skewed run (shards=%d): %v", shards, err)
		}
		var buf bytes.Buffer
		if err := study.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return chaosRun{jsonl: buf.Bytes(), stats: f.Stats(), obs: f.Observations(), fp: f}
	}

	clean := runChaosStudy(t, BackendInproc, nil)
	skewed := runSkewed(1)

	if n := skewed.fp.injector.Counts()[faults.KindClockSkew]; n == 0 {
		t.Fatal("no clock skew injected; the test is vacuous")
	}
	// Records are untouched — skew lands only on monitor timestamps.
	if !bytes.Equal(clean.jsonl, skewed.jsonl) {
		t.Fatal("clock skew changed the study records; it must only move observation timestamps")
	}
	if reflect.DeepEqual(clean.obs, skewed.obs) {
		t.Fatal("clock skew left every observation timestamp untouched; the fault never landed")
	}
	// Skewed observations stay in the neighborhood of the clean ones.
	for url, ob := range skewed.obs {
		want := clean.obs[url]
		if want == nil {
			t.Fatalf("skewed run observed %s, clean run did not", url)
		}
		if !ob.HostDownAt.IsZero() && !want.HostDownAt.IsZero() {
			if d := ob.HostDownAt.Sub(want.HostDownAt); d < -45*time.Minute || d > 45*time.Minute {
				t.Fatalf("%s: HostDownAt skewed by %v, beyond ±45m", url, d)
			}
		}
	}

	// Deterministic per seed: an identical skewed run reproduces the same
	// skewed observations bit for bit.
	again := runSkewed(1)
	if !reflect.DeepEqual(skewed.obs, again.obs) {
		t.Fatal("skewed observations diverge across identical runs")
	}
	// And shard-invariant: per-URL keying means a 4-shard skewed run
	// lands every skew on the same URL at the same magnitude.
	sharded := runSkewed(4)
	if !bytes.Equal(skewed.jsonl, sharded.jsonl) {
		t.Fatal("skewed records diverge between 1 and 4 shards")
	}
	if !reflect.DeepEqual(skewed.obs, sharded.obs) {
		t.Fatal("skewed observations diverge between 1 and 4 shards")
	}
	if skewed.stats != sharded.stats {
		t.Fatalf("skewed stats diverge between 1 and 4 shards:\n1: %+v\n4: %+v", skewed.stats, sharded.stats)
	}
}
