package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"freephish/internal/faults"
	"freephish/internal/obs"
)

// journalSweepRun executes one traced study and returns the canonical
// journal bytes.
func journalSweepRun(t *testing.T, workers, depth int, backend string, prof *faults.Profile) []byte {
	t.Helper()
	cfg := streamSweepConfig(workers, depth, backend)
	cfg.Journal = true
	cfg.Faults = prof
	f := New(cfg)
	if _, err := f.Run(); err != nil {
		t.Fatalf("workers=%d depth=%d backend=%s faults=%v: %v", workers, depth, backend, prof != nil, err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("workers=%d depth=%d backend=%s failed verification: %v", workers, depth, backend, err)
	}
	var buf bytes.Buffer
	if err := f.Metrics.Journal.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func diffJournals(t *testing.T, label string, want, got []byte) {
	t.Helper()
	if bytes.Equal(want, got) {
		return
	}
	a := strings.Split(string(want), "\n")
	b := strings.Split(string(got), "\n")
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			t.Fatalf("%s: journal diverges at event %d:\nbaseline: %s\ngot:      %s", label, i, a[i], b[i])
		}
	}
	t.Fatalf("%s: journal lengths diverge: %d vs %d events", label, len(a), len(b))
}

// TestJournalDeterminism is the `make verify-journal` gate: the canonical
// lifecycle journal, like the study output itself, must be byte-identical
// across workers × queue-depth × backend — and unchanged under the
// default chaos profile, because the retry layer absorbs every injected
// failure before it can reach a lifecycle event.
func TestJournalDeterminism(t *testing.T) {
	base := journalSweepRun(t, 1, 1, BackendInproc, nil)
	if len(base) == 0 {
		t.Fatal("traced study produced an empty journal; the sweep is vacuous")
	}
	// The journal actually covers the lifecycle, not just one event kind.
	for _, typ := range []string{
		obs.EvPosted, obs.EvPolled, obs.EvFetched, obs.EvClassified,
		obs.EvReported, obs.EvTakedown, obs.EvRecheck,
	} {
		if !strings.Contains(string(base), fmt.Sprintf("%q", typ)) {
			t.Errorf("journal has no %s events", typ)
		}
	}

	for _, workers := range []int{1, 8} {
		for _, depth := range []int{1, 64} {
			if workers == 1 && depth == 1 {
				continue
			}
			got := journalSweepRun(t, workers, depth, BackendInproc, nil)
			diffJournals(t, fmt.Sprintf("inproc workers=%d depth=%d", workers, depth), base, got)
		}
	}
	got := journalSweepRun(t, 8, 64, BackendHTTP, nil)
	diffJournals(t, "http workers=8 depth=64", base, got)

	prof := faults.DefaultProfile()
	got = journalSweepRun(t, 8, 64, BackendInproc, &prof)
	diffJournals(t, "inproc workers=8 depth=64 chaos=default", base, got)
}

// TestJournalMatchesResultAPI: the journal surfaced through the public
// StudyResult is the same one core records, and running without the knob
// returns a clear error instead of an empty file.
func TestJournalMatchesResultAPI(t *testing.T) {
	cfg := streamSweepConfig(1, 1, BackendInproc)
	cfg.Journal = true
	f := New(cfg)
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	j := f.Metrics.Journal
	if j == nil || j.Len() == 0 {
		t.Fatal("Config.Journal did not produce a populated journal")
	}

	// Every traced URL's events arrive in lifecycle order: posted is
	// always first, and nothing precedes the poll that surfaced it.
	for _, url := range j.URLs() {
		trace := j.Trace(url)
		if trace[0].Type != obs.EvPosted {
			t.Fatalf("%s: first event is %s, want %s", url, trace[0].Type, obs.EvPosted)
		}
		seen := map[string]bool{}
		for _, ev := range trace {
			seen[ev.Type] = true
		}
		if seen[obs.EvClassified] && !seen[obs.EvFetched] {
			t.Fatalf("%s: classified without a fetched event", url)
		}
	}

	// Tracing off → nil journal, and the fast path stays nil-safe.
	cfg2 := streamSweepConfig(1, 1, BackendInproc)
	f2 := New(cfg2)
	if f2.Metrics.Journal != nil {
		t.Fatal("journal allocated with Config.Journal=false")
	}
}
