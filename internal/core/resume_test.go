package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"freephish/internal/faults"
	"freephish/internal/state"
)

// Checkpoint/resume contract (the `make verify-resume` gate): a run killed
// at ANY cut point and resumed from its checkpoint must produce
// byte-identical study records, a byte-identical canonical journal, and
// identical stats to the uninterrupted run — at every worker count, on
// both backends, under the default fault profile. Checkpointing itself
// must also be invisible: a run that writes checkpoints produces the same
// bytes as one that doesn't.

// resumeSweepConfig stretches the poll interval so a 30-day window yields
// ~37 cut points (one per virtual day plus the observation tail) — enough
// to sweep every cut without thousands of resumed runs.
func resumeSweepConfig(workers int, backend string) Config {
	cfg := streamSweepConfig(workers, 0, backend)
	cfg.PollInterval = 24 * time.Hour
	cfg.Duration = 30 * 24 * time.Hour
	cfg.Journal = true
	prof := faults.DefaultProfile()
	cfg.Faults = &prof
	return cfg
}

// donateModels lets a resumed run skip training by borrowing the donor's
// trained models (read-only, like shard children do) — training is
// deterministic per seed, so the borrowed models are the ones the run
// would have trained.
func donateModels(f, donor *FreePhish) {
	f.Model = donor.Model
	f.BaseModel = donor.BaseModel
	f.Lexical = donor.Lexical
	f.cascade = donor.cascade
	f.sharedModels = true
}

// runResumeStudy executes one study and returns its records JSONL,
// canonical journal JSONL, stats, and the framework.
func runResumeStudy(t *testing.T, label string, cfg Config, donor *FreePhish, sink func([]byte) error) (rec, journal []byte, stats Stats, f *FreePhish) {
	t.Helper()
	f = New(cfg)
	if donor != nil {
		donateModels(f, donor)
	}
	f.checkpointSink = sink
	study, err := f.Run()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	var rbuf, jbuf bytes.Buffer
	if err := study.WriteJSONL(&rbuf); err != nil {
		t.Fatal(err)
	}
	if err := f.Metrics.Journal.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	return rbuf.Bytes(), jbuf.Bytes(), f.Stats(), f
}

func TestResumeByteIdentical(t *testing.T) {
	baseRec, baseJournal, baseStats, donor := runResumeStudy(t,
		"baseline", resumeSweepConfig(1, BackendInproc), nil, nil)
	if len(donor.State.Records()) == 0 {
		t.Fatal("baseline produced no records; the sweep is vacuous")
	}

	corners := []struct {
		workers int
		backend string
		all     bool // resume from every cut, not just a spread
	}{
		{1, BackendInproc, true},
		{8, BackendInproc, false},
		{1, BackendHTTP, false},
		{8, BackendHTTP, false},
	}
	wantCuts := 0
	var crossCut []byte // an inproc-cut checkpoint, resumed on http below
	for _, c := range corners {
		label := fmt.Sprintf("workers=%d backend=%s", c.workers, c.backend)
		cfg := resumeSweepConfig(c.workers, c.backend)
		cfg.CheckpointEvery = 1
		var cuts [][]byte
		rec, journal, stats, _ := runResumeStudy(t, label+" checkpointed", cfg, donor,
			func(data []byte) error {
				cuts = append(cuts, append([]byte(nil), data...))
				return nil
			})
		// Checkpointing must not perturb the run that writes the checkpoints.
		diffCascadeRun(t, label+" checkpointed", baseRec, rec, baseJournal, journal, baseStats, stats)
		if len(cuts) < 10 {
			t.Fatalf("%s: only %d cut points; the sweep is vacuous", label, len(cuts))
		}
		// Cut instants are a function of the sim schedule alone, so every
		// corner must find the same number of them.
		if wantCuts == 0 {
			wantCuts = len(cuts)
		} else if len(cuts) != wantCuts {
			t.Fatalf("%s: %d cut points, want %d (cut schedule must not depend on workers or backend)", label, len(cuts), wantCuts)
		}
		last, err := state.DecodeCheckpoint(cuts[len(cuts)-1])
		if err != nil {
			t.Fatalf("%s: final checkpoint does not decode: %v", label, err)
		}
		// The observation tail after the poll window must checkpoint too —
		// that is where the long monitor horizons live.
		if !last.SimNow.After(cfg.Epoch.Add(cfg.Duration)) {
			t.Fatalf("%s: final cut at %v, want one inside the post-window tail", label, last.SimNow)
		}
		if c.workers == 1 && c.backend == BackendInproc {
			crossCut = cuts[len(cuts)/2]
		}

		idx := []int{0, len(cuts) / 2, len(cuts) - 1}
		if c.all {
			idx = idx[:0]
			for i := range cuts {
				idx = append(idx, i)
			}
		}
		for _, i := range idx {
			chk, err := state.DecodeCheckpoint(cuts[i])
			if err != nil {
				t.Fatalf("%s: checkpoint %d does not decode: %v", label, i, err)
			}
			rcfg := resumeSweepConfig(c.workers, c.backend)
			rcfg.Resume = chk
			rlabel := fmt.Sprintf("%s resume@%d (%s)", label, i, chk.SimNow.Format("2006-01-02T15:04"))
			rrec, rjournal, rstats, _ := runResumeStudy(t, rlabel, rcfg, donor, nil)
			diffCascadeRun(t, rlabel, baseRec, rrec, baseJournal, rjournal, baseStats, rstats)
		}
	}

	// The fingerprint deliberately excludes Backend and Workers: a
	// checkpoint cut on inproc/1 must resume on http/8 and still land on
	// the same bytes.
	chk, err := state.DecodeCheckpoint(crossCut)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := resumeSweepConfig(8, BackendHTTP)
	rcfg.Resume = chk
	rrec, rjournal, rstats, _ := runResumeStudy(t, "cross-backend resume", rcfg, donor, nil)
	diffCascadeRun(t, "inproc/1 cut resumed on http/8", baseRec, rrec, baseJournal, rjournal, baseStats, rstats)
}

// TestResumeFromCheckpointFile drives the operator path end to end: a run
// that checkpoints to -checkpoint <path> leaves a file whose last
// checkpoint resumes (via ReadCheckpoint, hash verified) into the same
// bytes as the uninterrupted run.
func TestResumeFromCheckpointFile(t *testing.T) {
	short := func(workers int) Config {
		cfg := resumeSweepConfig(workers, BackendInproc)
		cfg.Duration = 8 * 24 * time.Hour
		return cfg
	}
	baseRec, baseJournal, baseStats, donor := runResumeStudy(t, "baseline", short(1), nil, nil)

	path := filepath.Join(t.TempDir(), "study.ckpt")
	cfg := short(1)
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 2
	rec, journal, stats, _ := runResumeStudy(t, "checkpointed-to-file", cfg, donor, nil)
	diffCascadeRun(t, "checkpointed-to-file", baseRec, rec, baseJournal, journal, baseStats, stats)

	chk, err := state.ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("reading the run's checkpoint file: %v", err)
	}
	rcfg := short(1)
	rcfg.Resume = chk
	rrec, rjournal, rstats, rf := runResumeStudy(t, "resume-from-file", rcfg, donor, nil)
	diffCascadeRun(t, "resume-from-file", baseRec, rrec, baseJournal, rjournal, baseStats, rstats)
	if err := rf.Verify(); err != nil {
		t.Fatalf("resumed run failed world verification: %v", err)
	}
}

// TestResumeRejectsFingerprintMismatch pins the guard against resuming a
// checkpoint into a different study: the error must name both
// configurations instead of silently producing a franken-study.
func TestResumeRejectsFingerprintMismatch(t *testing.T) {
	cfg := resumeSweepConfig(1, BackendInproc)
	cfg.Duration = 4 * 24 * time.Hour
	cfg.CheckpointEvery = 1
	var cuts [][]byte
	_, _, _, donor := runResumeStudy(t, "donor", cfg, nil, func(data []byte) error {
		cuts = append(cuts, append([]byte(nil), data...))
		return nil
	})
	if len(cuts) == 0 {
		t.Fatal("no checkpoints captured")
	}
	chk, err := state.DecodeCheckpoint(cuts[0])
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed++
	bad.CheckpointEvery = 0
	bad.Resume = chk
	f := New(bad)
	donateModels(f, donor)
	_, err = f.Run()
	if err == nil || !strings.Contains(err.Error(), "different study configuration") {
		t.Fatalf("mismatched resume = %v, want a fingerprint error", err)
	}
}

// TestCheckpointRejectedWithShards pins the coordinator-level guard: the
// checkpoint flags compose with everything except sharding, which gets a
// clear refusal (shard failover-by-adoption is future work).
func TestCheckpointRejectedWithShards(t *testing.T) {
	cfg := streamSweepConfig(1, 0, BackendInproc)
	cfg.Shards = 2
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "x.ckpt")
	_, err := New(cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "not supported with Shards") {
		t.Fatalf("sharded checkpoint run = %v, want a clear rejection", err)
	}
	cfg.CheckpointPath = ""
	cfg.Resume = &state.Checkpoint{Fingerprint: "x", Snapshot: &state.Snapshot{}}
	_, err = New(cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "not supported with Shards") {
		t.Fatalf("sharded resume run = %v, want a clear rejection", err)
	}
}
