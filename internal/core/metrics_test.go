package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunPopulatesMetrics runs a small monitored study and asserts the
// observability layer saw every pipeline stage: the expected metric
// families are non-zero, the tracer covered the stages, and the progress
// hook fired every poll cycle.
func TestRunPopulatesMetrics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.Scale = 0.003
	cfg.TrainPerClass = 60
	cfg.MonitorInterval = 12 * time.Hour

	var progressCalls int
	var lastFrac float64
	cfg.Progress = func(ev ProgressEvent) {
		progressCalls++
		if ev.Frac < lastFrac {
			t.Errorf("progress fraction went backwards: %v -> %v", lastFrac, ev.Frac)
		}
		lastFrac = ev.Frac
	}

	fp := New(cfg)
	study, err := fp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Records) == 0 {
		t.Fatal("empty study")
	}

	reg := fp.Metrics.Registry
	for _, name := range []string{
		"freephish_polls_total",
		"freephish_urls_streamed_total",
		"freephish_study_records_total",
		"freephish_monitor_probes_total",
	} {
		if v := reg.Value(name); !(v > 0) {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	if got, want := reg.Value("freephish_study_records_total"), float64(len(study.Records)); got != want {
		t.Errorf("records counter = %v, want %v", got, want)
	}
	if got, want := reg.Value("freephish_polls_total"), float64(fp.Stats().Polls); got != want {
		t.Errorf("polls counter = %v, want Stats.Polls = %v", got, want)
	}
	if progressCalls != fp.Stats().Polls {
		t.Errorf("progress fired %d times, want one per poll (%d)", progressCalls, fp.Stats().Polls)
	}

	// The Prometheus exposition must cover every pipeline stage family.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, family := range []string{
		"freephish_polls_total",          // poller
		"freephish_posts_seen_total",     // poller
		"freephish_fetch_seconds",        // fetcher
		"freephish_fetch_total",          // fetcher
		"freephish_extract_seconds",      // feature extraction
		"freephish_classify_seconds",     // classifier
		"freephish_classifier_score",     // classifier
		"freephish_classified_total",     // classifier
		"freephish_reports_total",        // reporter
		"freephish_monitor_probes_total", // active monitor
		"freephish_stage_seconds",        // tracer
		"freephish_sim_time_seconds",     // sim clock
	} {
		if !strings.Contains(out, "# TYPE "+family) {
			t.Errorf("exposition missing family %s", family)
		}
	}

	// Tracer: every instrumented stage ran, wall time is positive, and
	// the sim-time window of the poll stage spans the study.
	stages := make(map[string]bool)
	for _, st := range fp.Metrics.Tracer.Snapshot() {
		stages[st.Stage] = true
		if st.Count == 0 || st.Wall <= 0 {
			t.Errorf("stage %s: count=%d wall=%v", st.Stage, st.Count, st.Wall)
		}
		if st.Stage == "poll" {
			if st.SimSpan < cfg.Duration/2 {
				t.Errorf("poll stage sim span %v implausibly short", st.SimSpan)
			}
			if st.PerSimHour <= 0 {
				t.Errorf("poll stage per-sim-hour rate = %v", st.PerSimHour)
			}
		}
	}
	for _, want := range []string{"train", "poll", "fetch", "classify", "assess", "report", "monitor"} {
		if !stages[want] {
			t.Errorf("tracer never saw stage %q (saw %v)", want, stages)
		}
	}

	// Classifier decision counters reconcile with Stats.
	var decided float64
	for _, s := range reg.Snapshot() {
		if s.Name == "freephish_classified_total" {
			decided += s.Value
		}
	}
	if int(decided) != fp.Stats().URLsScanned {
		// Every scanned URL that resolved to a hosted site is classified;
		// allow for lookups that missed (site == nil).
		if int(decided) > fp.Stats().URLsScanned {
			t.Errorf("decisions %v > scanned %d", decided, fp.Stats().URLsScanned)
		}
	}
}

// normalizeExposition reduces a Prometheus text exposition to its schema:
// HELP/TYPE headers and series identities (name plus label set), with the
// sampled values stripped. Counts are seed-deterministic but wall-clock
// histograms are not, so the schema — which series exist, how they are
// labeled, how they are documented — is the right thing to golden.
func normalizeExposition(exposition string) string {
	var b strings.Builder
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			b.WriteString(line)
			b.WriteByte('\n')
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			line = line[:i]
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMetricsExpositionSchemaGolden locks the full /metrics surface of a
// seeded mini-study against testdata/metrics_schema.golden. A renamed
// metric, a dropped label, or a lost HELP string is an observability
// regression that dashboards and alerts feel immediately — this test makes
// it a diff instead. Regenerate deliberately with:
//
//	METRICS_SCHEMA_GOLDEN=rewrite go test ./internal/core -run TestMetricsExpositionSchemaGolden
func TestMetricsExpositionSchemaGolden(t *testing.T) {
	cfg := streamSweepConfig(1, 1, BackendInproc)
	cfg.Journal = true // include the traced variant of the pipeline
	f := New(cfg)
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f.Metrics.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := normalizeExposition(b.String())

	golden := filepath.Join("testdata", "metrics_schema.golden")
	if os.Getenv("METRICS_SCHEMA_GOLDEN") == "rewrite" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d lines)", golden, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with METRICS_SCHEMA_GOLDEN=rewrite)", err)
	}
	if got == string(want) {
		return
	}
	a := strings.Split(string(want), "\n")
	c := strings.Split(got, "\n")
	for i := 0; i < len(a) && i < len(c); i++ {
		if a[i] != c[i] {
			t.Fatalf("exposition schema diverges from golden at line %d:\ngolden: %s\ngot:    %s\n(regenerate deliberately with METRICS_SCHEMA_GOLDEN=rewrite)", i+1, a[i], c[i])
		}
	}
	t.Fatalf("exposition schema length diverges: golden %d lines, got %d (regenerate with METRICS_SCHEMA_GOLDEN=rewrite)", len(a), len(c))
}

// TestPollQuotaMetrics enables the poller rate limiter and checks the
// quota-pressure gauges are exported.
func TestPollQuotaMetrics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.Scale = 0.002
	cfg.TrainPerClass = 60
	// Two requests per poll cycle are needed (one per platform); a
	// 1-token bucket refilled slowly guarantees throttling.
	cfg.PollQuota = 1
	cfg.PollQuotaRate = 1.0 / (20 * 60) // one token per 20 sim-minutes

	fp := New(cfg)
	if _, err := fp.Run(); err != nil {
		t.Fatal(err)
	}
	if fp.poller.Skipped == 0 {
		t.Fatal("limiter never throttled; quota config ineffective")
	}
	reg := fp.Metrics.Registry
	if v := reg.Value("freephish_poll_skipped_total"); int(v) != fp.poller.Skipped {
		t.Errorf("poll_skipped = %v, want %d", v, fp.poller.Skipped)
	}
	if v := reg.Value("freephish_ratelimit_throttled_total"); !(v > 0) {
		t.Errorf("ratelimit_throttled = %v, want > 0", v)
	}
	if v := reg.Value("freephish_ratelimit_wait_seconds_total"); !(v > 0) {
		t.Errorf("ratelimit_wait_seconds = %v, want > 0", v)
	}
}
