package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"freephish/internal/faults"
)

// shardRun executes one traced study split across the given shard count
// and returns the study records JSONL, the canonical journal JSONL, the
// run's stats, and the framework (for observation comparison).
func shardRun(t *testing.T, shards, workers int, backend string, prof *faults.Profile) (records, journal []byte, stats Stats, f *FreePhish) {
	t.Helper()
	cfg := streamSweepConfig(workers, 0, backend)
	cfg.Journal = true
	cfg.Faults = prof
	cfg.Shards = shards
	f = New(cfg)
	study, err := f.Run()
	if err != nil {
		t.Fatalf("shards=%d workers=%d backend=%s: %v", shards, workers, backend, err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("shards=%d workers=%d backend=%s failed verification: %v", shards, workers, backend, err)
	}
	var rbuf, jbuf bytes.Buffer
	if err := study.WriteJSONL(&rbuf); err != nil {
		t.Fatal(err)
	}
	if err := f.Metrics.Journal.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	return rbuf.Bytes(), jbuf.Bytes(), f.Stats(), f
}

// TestShardDeterminism is the `make verify-shards` gate: the same seeded
// study split across 1, 2, 4, and 8 sub-stream shards — each shard a
// complete framework with its own clock, world, and pipeline — must merge
// into byte-identical study records, a byte-identical canonical journal,
// and identical stats. The posting schedule partitions by global event
// ordinal, and every stateful outcome is drawn from RNG streams keyed by
// ordinal or URL, so which shard executes an event must be unobservable.
func TestShardDeterminism(t *testing.T) {
	baseRec, baseJournal, baseStats, baseF := shardRun(t, 1, 1, BackendInproc, nil)
	if len(baseRec) == 0 {
		t.Fatal("baseline study produced no records")
	}
	if baseStats.PostsSeen < 16 {
		t.Fatalf("PostsSeen = %d; too little traffic to exercise the partition", baseStats.PostsSeen)
	}

	for _, shards := range []int{2, 4, 8} {
		rec, journal, stats, f := shardRun(t, shards, 1, BackendInproc, nil)
		label := fmt.Sprintf("inproc shards=%d", shards)
		if len(f.shards) != shards {
			t.Fatalf("%s: coordinator kept %d children, want %d", label, len(f.shards), shards)
		}
		// Non-vacuous: the partition actually split the traffic — no child
		// saw the whole stream.
		for i, sh := range f.shards {
			if got := sh.Stats().PostsSeen; got == 0 || got >= baseStats.PostsSeen {
				t.Fatalf("%s: shard %d saw %d posts of %d total; partition is vacuous",
					label, i, got, baseStats.PostsSeen)
			}
		}
		diffCascadeRun(t, label, baseRec, rec, baseJournal, journal, baseStats, stats)
		if !reflect.DeepEqual(baseF.Observations(), f.Observations()) {
			t.Fatalf("%s: monitor observations diverge from the 1-shard run", label)
		}
	}

	// Shards compose with pipeline parallelism inside each shard, with the
	// http backend (every shard gets its own loopback servers), and with
	// the default chaos profile (absorbed by the retry layer per shard).
	rec, journal, stats, _ := shardRun(t, 4, 8, BackendInproc, nil)
	diffCascadeRun(t, "inproc shards=4 workers=8", baseRec, rec, baseJournal, journal, baseStats, stats)

	rec, journal, stats, _ = shardRun(t, 2, 4, BackendHTTP, nil)
	diffCascadeRun(t, "http shards=2 workers=4", baseRec, rec, baseJournal, journal, baseStats, stats)

	prof := faults.DefaultProfile()
	rec, journal, stats, _ = shardRun(t, 4, 4, BackendInproc, &prof)
	diffCascadeRun(t, "inproc shards=4 workers=4 chaos=default", baseRec, rec, baseJournal, journal, baseStats, stats)
}

// TestShardRetryReplaysExactly exercises the coordinator-level retry: a
// shard whose first attempts die is re-run from a fresh child, and
// because its sub-stream is a pure function of (seed, shard index) the
// retried run must produce the same bytes as an undisturbed one.
func TestShardRetryReplaysExactly(t *testing.T) {
	baseRec, baseJournal, baseStats, _ := shardRun(t, 2, 1, BackendInproc, nil)

	cfg := streamSweepConfig(1, 0, BackendInproc)
	cfg.Journal = true
	cfg.Shards = 2
	f := New(cfg)
	failures := 0
	f.shardHook = func(shard, attempt int) error {
		// Shard 1 dies on every attempt but its last.
		if shard == 1 && attempt < shardAttempts-1 {
			failures++
			return errors.New("injected shard failure")
		}
		return nil
	}
	study, err := f.Run()
	if err != nil {
		t.Fatalf("retried run failed: %v", err)
	}
	if failures != shardAttempts-1 {
		t.Fatalf("hook injected %d failures, want %d", failures, shardAttempts-1)
	}
	var rbuf, jbuf bytes.Buffer
	if err := study.WriteJSONL(&rbuf); err != nil {
		t.Fatal(err)
	}
	if err := f.Metrics.Journal.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	diffCascadeRun(t, "shard 1 retried", baseRec, rbuf.Bytes(), baseJournal, jbuf.Bytes(), baseStats, f.Stats())
}

// TestShardRetryExhaustionFails pins the failure surface: a shard that
// dies on every attempt fails the whole run with an error naming the
// shard, and no partial merge leaks into the coordinator's state.
func TestShardRetryExhaustionFails(t *testing.T) {
	cfg := streamSweepConfig(1, 0, BackendInproc)
	cfg.Shards = 2
	f := New(cfg)
	injected := errors.New("injected permanent failure")
	f.shardHook = func(shard, attempt int) error {
		if shard == 1 {
			return injected
		}
		return nil
	}
	_, err := f.Run()
	if err == nil {
		t.Fatal("run succeeded despite a permanently failing shard")
	}
	if !errors.Is(err, injected) {
		t.Fatalf("error does not wrap the shard's failure: %v", err)
	}
	if !strings.Contains(err.Error(), "shard 1/2") {
		t.Fatalf("error does not name the failing shard: %v", err)
	}
	if len(f.State.Records()) != 0 {
		t.Fatalf("failed run leaked %d records into the coordinator", len(f.State.Records()))
	}
}
