package core

import (
	"strings"
	"testing"
)

func TestBuildD1Composition(t *testing.T) {
	s := BuildD1(3, 0.05)
	t.Logf("D1: %+v", s)
	if s.CandidateURLs < 3000 {
		t.Fatalf("candidates = %d", s.CandidateURLs)
	}
	// D1 keeps FWB phishing and excludes Dynamic-DNS phishing.
	if s.FWBPhishing == 0 || s.DynDNSExcluded == 0 {
		t.Fatalf("pipeline degenerate: %+v", s)
	}
	// The ≥2-detections rule labels most (old) phishing URLs but only a
	// tiny fraction of benign ones. The benign pool is 30K×scale; FWB
	// phishing found must not be inflated by benign FPs by more than ~2%.
	maxFWBFromBenign := int(0.02 * 30000 * 0.05)
	if s.FWBPhishing > int(25200*0.05)+maxFWBFromBenign {
		t.Fatalf("benign false positives inflate D1: %d", s.FWBPhishing)
	}
	// Most FWB phishing candidates should cross the threshold (they are
	// months old — engines have had time).
	if frac := float64(s.FWBPhishing) / (25200 * 0.05); frac < 0.75 {
		t.Errorf("only %.2f of FWB phishing crossed the VT threshold", frac)
	}
	// Platform mix ≈ 65/35.
	if s.TwitterShare < 0.55 || s.TwitterShare > 0.75 {
		t.Errorf("twitter share = %.2f, want ≈0.65", s.TwitterShare)
	}
	// Per-service mix follows Table 4: Weebly leads.
	if s.PerService["weebly"] <= s.PerService["hpage"] {
		t.Errorf("service mix wrong: %v", s.PerService)
	}
	out := RenderD1(s)
	if !strings.Contains(out, "Dynamic-DNS excluded") {
		t.Fatalf("render output missing exclusion row:\n%s", out)
	}
}

func TestBuildD1Deterministic(t *testing.T) {
	a := BuildD1(9, 0.02)
	b := BuildD1(9, 0.02)
	if a.FWBPhishing != b.FWBPhishing || a.LabeledPhishing != b.LabeledPhishing {
		t.Fatal("D1 pipeline not deterministic")
	}
}

func TestCoderStudyMatchesPaperProtocol(t *testing.T) {
	s := RunCoderStudy(7, 5000)
	t.Logf("coders: kappa=%.3f confirmed=%d causes=%v", s.Kappa, s.Confirmed, s.DisagreementCause)
	if s.Kappa < 0.70 || s.Kappa > 0.88 {
		t.Errorf("kappa = %.3f, want ≈0.78", s.Kappa)
	}
	frac := float64(s.Confirmed) / float64(s.SampleSize)
	if frac < 0.90 || frac > 0.96 {
		t.Errorf("confirmed fraction = %.3f, want ≈0.931 (4,656/5,000)", frac)
	}
	// All four documented disagreement causes must occur.
	for _, cause := range []string{causeBrand, causeEvasive, causeTextFields, causeLanguage} {
		if s.DisagreementCause[cause] == 0 {
			t.Errorf("cause %q never occurred", cause)
		}
	}
	if s.InitialAgreement >= s.SampleSize {
		t.Error("coders agreed on everything — no disagreement to resolve")
	}
	out := RenderCoderStudy(s)
	if !strings.Contains(out, "kappa") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestCoderStudySmallSample(t *testing.T) {
	s := RunCoderStudy(3, 50)
	if s.SampleSize != 50 || s.Confirmed > 50 {
		t.Fatalf("study = %+v", s)
	}
}
