package core

import (
	"context"
	"log/slog"
	"time"

	"freephish/internal/obs"
	"freephish/internal/threat"
)

// Metrics bundles every instrument the pipeline exports, all registered
// on one obs.Registry so a single /metrics scrape covers the whole
// framework: poller, fetcher, classifier, reporter, and the §4.4 active
// monitor. Families are registered up front (and therefore exported at
// zero) so scrapers see the complete schema from the first cycle.
type Metrics struct {
	Registry *obs.Registry
	// Tracer aggregates per-stage spans (poll, fetch, classify, assess,
	// report, monitor) in wall-clock and simulation time.
	Tracer *obs.Tracer
	// Journal is the per-URL lifecycle trace, non-nil only when
	// Config.Journal is set. Lifecycle events are recorded from the
	// ordered apply/monitor points; retry, breaker, fault, and pipe-stage
	// hooks below feed its ops ring for the dashboard.
	Journal *obs.Journal

	// Streaming module (§4.1).
	Polls        *obs.Counter
	PollSkipped  *obs.Counter
	PollFailed   *obs.Counter
	PostsSeen    *obs.CounterVec // platform
	PostsDup     *obs.CounterVec // platform
	URLsStreamed *obs.Counter
	URLsDeduped  *obs.Counter

	// Pre-processing module: the snapshot crawler.
	FetchTotal   *obs.CounterVec // status
	FetchSeconds *obs.Histogram
	FetchErrors  *obs.Counter

	// Classification module (§4.2).
	ClassifySeconds *obs.HistogramVec // cohort
	ExtractSeconds  *obs.Histogram
	InferSeconds    *obs.Histogram
	Scores          *obs.HistogramVec // cohort
	Decisions       *obs.CounterVec   // cohort, decision

	// Reporting module (§4.3).
	Reports    *obs.CounterVec // recipient
	ReportAcks *obs.CounterVec // recipient
	Takedowns  *obs.CounterVec // via

	// Active monitor (§4.4).
	MonitorProbes   *obs.Counter
	MonitorHostDown *obs.Counter
	MonitorListings *obs.CounterVec // entity

	// Resilience: the unified retry policy and the chaos injector.
	Retries        *obs.CounterVec // key
	RetryGiveUps   *obs.CounterVec // key
	RetryBackoff   *obs.Counter
	BreakerEvents  *obs.CounterVec // key, transition
	FaultsInjected *obs.CounterVec // kind

	// Tiered classification cascade (triage stage).
	CascadeTriaged        *obs.CounterVec // tier
	CascadeFetchesAvoided *obs.Counter

	// Sharded execution: coordinator-level failover and dispatch.
	ShardRetries    *obs.CounterVec // shard
	ShardDispatched *obs.CounterVec // runner
	ShardAdopted    *obs.CounterVec // shard
	WorkerFailures  *obs.CounterVec // endpoint

	// Study-level progress.
	Records *obs.Counter
}

// newMetrics registers the full FreePhish metric schema on reg. simNow
// feeds the sim-time gauges and the tracer; epoch anchors the
// sim-progress gauge.
func newMetrics(reg *obs.Registry, simNow func() time.Time, epoch time.Time) *Metrics {
	m := &Metrics{
		Registry: reg,
		Tracer:   obs.NewTracer(reg, "freephish", simNow),

		Polls: reg.Counter("freephish_polls_total",
			"Streaming-module poll cycles executed."),
		PollSkipped: reg.Counter("freephish_poll_skipped_total",
			"Platform polls skipped by the API rate limiter."),
		PollFailed: reg.Counter("freephish_poll_failed_total",
			"Platform polls skipped because the API failed."),
		PostsSeen: reg.CounterVec("freephish_posts_seen_total",
			"Social posts returned by the platform APIs.", "platform"),
		PostsDup: reg.CounterVec("freephish_posts_dup_total",
			"Posts already seen in an earlier poll (post-level dedup hits).", "platform"),
		URLsStreamed: reg.Counter("freephish_urls_streamed_total",
			"URLs extracted from streamed posts."),
		URLsDeduped: reg.Counter("freephish_urls_dedup_total",
			"Streamed URLs dropped as re-shares of an already-processed URL."),

		FetchTotal: reg.CounterVec("freephish_fetch_total",
			"Website snapshots by final HTTP status (0 = transport failure).", "status"),
		FetchSeconds: reg.Histogram("freephish_fetch_seconds",
			"Snapshot latency including retries.", nil),
		FetchErrors: reg.Counter("freephish_fetch_errors_total",
			"Snapshots that failed every attempt."),

		ClassifySeconds: reg.HistogramVec("freephish_classify_seconds",
			"End-to-end classification latency (feature extraction + inference).", nil, "cohort"),
		ExtractSeconds: reg.Histogram("freephish_extract_seconds",
			"Feature-extraction latency per classified page.", nil),
		InferSeconds: reg.Histogram("freephish_infer_seconds",
			"Stacked-model inference latency per classified page.", nil),
		Scores: reg.HistogramVec("freephish_classifier_score",
			"Classifier P(phishing) distribution.", obs.ScoreBuckets, "cohort"),
		Decisions: reg.CounterVec("freephish_classified_total",
			"Classification decisions against ground truth.", "cohort", "decision"),

		Reports: reg.CounterVec("freephish_reports_total",
			"Disclosure reports filed, by recipient.", "recipient"),
		ReportAcks: reg.CounterVec("freephish_report_acks_total",
			"Reports acknowledged by the recipient.", "recipient"),
		Takedowns: reg.CounterVec("freephish_takedowns_total",
			"Site removals recorded by the study, by takedown path.", "via"),

		MonitorProbes: reg.Counter("freephish_monitor_probes_total",
			"Active-monitor HTTP re-probes of flagged URLs (§4.4)."),
		MonitorHostDown: reg.Counter("freephish_monitor_host_down_total",
			"Monitored URLs first observed down by an HTTP probe."),
		MonitorListings: reg.CounterVec("freephish_monitor_listings_total",
			"Blocklist-feed listings first observed by the monitor.", "entity"),

		Retries: reg.CounterVec("freephish_retries_total",
			"Attempts re-issued by the unified retry policy, by endpoint key.", "key"),
		RetryGiveUps: reg.CounterVec("freephish_retry_giveups_total",
			"Operations that exhausted the retry budget, by endpoint key.", "key"),
		RetryBackoff: reg.Counter("freephish_retry_backoff_seconds_total",
			"Cumulative backoff delay scheduled between retry attempts."),
		BreakerEvents: reg.CounterVec("freephish_breaker_transitions_total",
			"Circuit-breaker state transitions, by endpoint key.", "key", "transition"),
		FaultsInjected: reg.CounterVec("freephish_faults_injected_total",
			"Chaos faults injected into the world boundary, by kind.", "kind"),

		CascadeTriaged: reg.CounterVec("freephish_cascade_triaged_total",
			"Fresh URLs triaged by the cascade's lexical tier, by verdict tier "+
				"(benign/phish short-circuit the fetch stage; full falls through).", "tier"),
		CascadeFetchesAvoided: reg.Counter("freephish_cascade_fetches_avoided_total",
			"Page fetches skipped because the lexical tier short-circuited the URL."),

		ShardRetries: reg.CounterVec("freephish_shard_retries_total",
			"Shard attempts the coordinator re-ran with a fresh child after a failure.", "shard"),
		ShardDispatched: reg.CounterVec("freephish_shard_dispatched_total",
			"Shard attempts handed to a runner, by runner name (local or worker endpoint).", "runner"),
		ShardAdopted: reg.CounterVec("freephish_shard_adopted_total",
			"Failover attempts that resumed from a dead runner's last streamed checkpoint.", "shard"),
		WorkerFailures: reg.CounterVec("freephish_shard_worker_failures_total",
			"Remote shard dispatches that failed at the transport, by worker endpoint.", "endpoint"),

		Records: reg.Counter("freephish_study_records_total",
			"URLs admitted to longitudinal observation."),
	}
	reg.GaugeFunc("freephish_cascade_short_circuit_ratio",
		"Fraction of triaged URLs the lexical tier resolved without a fetch.",
		func() float64 {
			short := m.CascadeTriaged.With("benign").Value() + m.CascadeTriaged.With("phish").Value()
			total := short + m.CascadeTriaged.With("full").Value()
			if total == 0 {
				return 0
			}
			return short / total
		})
	reg.GaugeFunc("freephish_sim_time_seconds",
		"Virtual seconds elapsed since the study epoch.", func() float64 {
			if simNow == nil {
				return 0
			}
			return simNow().Sub(epoch).Seconds()
		})
	return m
}

// wire connects the constructed pipeline components (fetcher, poller,
// classifier models) to the instruments. Called from startServers once
// the components exist.
func (f *FreePhish) wireMetrics() {
	m := f.Metrics
	f.fetcher.Observe = func(status, attempts int, wall time.Duration, err error) {
		m.FetchTotal.With(statusLabel(status)).Inc()
		m.FetchSeconds.Observe(wall.Seconds())
		if err != nil {
			m.FetchErrors.Inc()
		}
	}
	f.poller.Observe = func(platform threat.Platform, posts, dupPosts, urls int, skipped bool) {
		if skipped {
			m.PollSkipped.Inc()
			return
		}
		m.PostsSeen.With(string(platform)).Add(float64(posts))
		m.PostsDup.With(string(platform)).Add(float64(dupPosts))
		m.URLsStreamed.Add(float64(urls))
	}
	f.poller.ObserveFailure = func(platform threat.Platform, err error) {
		m.PollFailed.Inc()
	}
	// The ops hooks read f.Metrics.Journal at call time rather than
	// capturing it: a checkpoint resume rebuilds the journal after the
	// hooks are wired, and the retry/fault events must land in the live
	// one, not in the construction-time object.
	if pol := f.retryPol; pol != nil {
		pol.OnRetry = func(key string, attempt int, delay time.Duration, err error) {
			m.Retries.With(key).Inc()
			m.RetryBackoff.Add(delay.Seconds())
			if j := f.Metrics.Journal; j != nil {
				j.RecordOps("", obs.EvRetry,
					"key", key, "attempt", itoa(attempt), "err", err.Error())
			}
		}
		pol.OnGiveUp = func(key string, attempts int, err error) {
			m.RetryGiveUps.With(key).Inc()
			if j := f.Metrics.Journal; j != nil {
				j.RecordOps("", obs.EvGiveUp,
					"key", key, "attempts", itoa(attempts), "err", err.Error())
			}
		}
		pol.OnBreaker = func(key string, open bool) {
			transition := "close"
			if open {
				transition = "open"
			}
			m.BreakerEvents.With(key, transition).Inc()
			if j := f.Metrics.Journal; j != nil {
				j.RecordOps("", obs.EvBreaker, "key", key, "transition", transition)
			}
		}
	}
	if f.injector != nil {
		f.injector.Observe = func(kind, endpoint, key string) {
			m.FaultsInjected.With(kind).Inc()
			if j := f.Metrics.Journal; j != nil {
				j.RecordOps("", obs.EvFault,
					"kind", kind, "endpoint", endpoint, "key", key)
			}
		}
	}
	// Shards borrow the coordinator's trained models read-only; installing
	// this shard's observer on them would race with its siblings (and
	// misattribute timings), so only a framework that owns its models
	// instruments them.
	if !f.sharedModels {
		stageObs := func(stage string, d time.Duration) {
			switch stage {
			case "extract":
				m.ExtractSeconds.Observe(d.Seconds())
			case "infer":
				m.InferSeconds.Observe(d.Seconds())
			}
		}
		f.Model.SetObserver(stageObs)
		f.BaseModel.SetObserver(stageObs)
	}
	if f.snapCache != nil {
		c := f.snapCache
		f.Metrics.Registry.GaugeFunc("freephish_snapshot_cache_hits_total",
			"Snapshot probes that reused a cached parse (unchanged body).", func() float64 {
				return float64(c.Hits())
			})
		f.Metrics.Registry.GaugeFunc("freephish_snapshot_cache_misses_total",
			"Snapshot probes that parsed a new or changed body.", func() float64 {
				return float64(c.Misses())
			})
		f.Metrics.Registry.GaugeFunc("freephish_snapshot_cache_entries",
			"Parsed snapshots currently resident in the LRU.", func() float64 {
				return float64(c.Len())
			})
	}
	if f.poller.Limiter != nil {
		lim := f.poller.Limiter
		f.Metrics.Registry.GaugeFunc("freephish_ratelimit_throttled_total",
			"Poller API calls denied by the quota limiter.", func() float64 {
				return float64(lim.Throttled())
			})
		f.Metrics.Registry.GaugeFunc("freephish_ratelimit_wait_seconds_total",
			"Cumulative estimated wait imposed by quota denials.", func() float64 {
				return lim.WaitTotal().Seconds()
			})
		f.Metrics.Registry.GaugeFunc("freephish_ratelimit_tokens",
			"Tokens currently available in the poller's quota bucket.", func() float64 {
				return lim.Tokens()
			})
	}
}

// statusLabel formats an HTTP status for the fetch counter without
// allocating for the common codes.
func statusLabel(status int) string {
	switch status {
	case 0:
		return "0"
	case 200:
		return "200"
	case 404:
		return "404"
	case 410:
		return "410"
	case 500:
		return "500"
	}
	return itoa(status)
}

func itoa(v int) string {
	if v < 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			return string(buf[i:])
		}
	}
}

// ProgressEvent is one poll-cycle progress report, delivered to
// Config.Progress and (throttled) to Config.Logger.
type ProgressEvent struct {
	// SimTime is the virtual clock at the end of the cycle; Frac is the
	// fraction of the measurement window elapsed, in [0, 1].
	SimTime time.Time
	Frac    float64
	// Wall is real time elapsed since Run started.
	Wall time.Duration
	// Cumulative pipeline counters (mirrors of Stats).
	Polls, PostsSeen, URLsScanned int
	Flagged, Reports, Records     int
}

// observeProgress emits the per-cycle progress event and, every LogEvery
// cycles, a structured slog record.
func (f *FreePhish) observeProgress(now time.Time) {
	if f.Config.Progress == nil && f.Config.Logger == nil {
		return
	}
	st := f.State.Stats()
	ev := ProgressEvent{
		SimTime:     now,
		Wall:        time.Since(f.runStart),
		Polls:       st.Polls,
		PostsSeen:   st.PostsSeen,
		URLsScanned: st.URLsScanned,
		Flagged:     st.FlaggedFWB + st.FlaggedSelf,
		Reports:     st.ReportsSent,
		Records:     len(f.State.Records()),
	}
	if f.Config.Duration > 0 {
		ev.Frac = float64(now.Sub(f.Config.Epoch)) / float64(f.Config.Duration)
		if ev.Frac > 1 {
			ev.Frac = 1
		}
	}
	if f.Config.Progress != nil {
		f.Config.Progress(ev)
	}
	if f.Config.Logger != nil {
		every := f.Config.LogEvery
		if every <= 0 {
			// Default: one event per simulated day.
			every = int(24 * time.Hour / f.Config.PollInterval)
			if every < 1 {
				every = 1
			}
		}
		if st.Polls%every == 0 {
			f.Config.Logger.LogAttrs(context.Background(), slog.LevelInfo, "poll cycle",
				slog.Time("sim_time", now),
				slog.Float64("frac_done", ev.Frac),
				slog.Duration("wall", ev.Wall),
				slog.Int("polls", ev.Polls),
				slog.Int("posts_seen", ev.PostsSeen),
				slog.Int("urls_scanned", ev.URLsScanned),
				slog.Int("flagged", ev.Flagged),
				slog.Int("reports", ev.Reports),
				slog.Int("records", ev.Records),
			)
		}
	}
}
