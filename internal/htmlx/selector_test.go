package htmlx

import "testing"

const selDoc = `<html><body>
<div id="main" class="wrapper dark">
  <form action="/login" method="post">
    <input type="email" name="email" class="field big">
    <input type="password" name="pass" class="field">
    <button type="submit" class="btn primary">Go</button>
  </form>
  <div class="banner" id="weebly-banner">Powered by Weebly</div>
</div>
<input type="text" name="outside">
</body></html>`

func TestSelectByTag(t *testing.T) {
	doc := Parse(selDoc)
	if got := len(doc.Select("input")); got != 3 {
		t.Fatalf("inputs = %d, want 3", got)
	}
	if got := len(doc.Select("form")); got != 1 {
		t.Fatalf("forms = %d", got)
	}
}

func TestSelectByClassAndID(t *testing.T) {
	doc := Parse(selDoc)
	if got := len(doc.Select(".field")); got != 2 {
		t.Fatalf(".field = %d, want 2", got)
	}
	if got := len(doc.Select(".field.big")); got != 1 {
		t.Fatalf(".field.big = %d, want 1", got)
	}
	if n := doc.SelectFirst("#weebly-banner"); n == nil || n.Tag != "div" {
		t.Fatalf("#weebly-banner = %v", n)
	}
	if n := doc.SelectFirst("div#main.wrapper"); n == nil {
		t.Fatal("compound tag#id.class failed")
	}
	if doc.SelectFirst("div#main.missing") != nil {
		t.Fatal("wrong class matched")
	}
}

func TestSelectByAttribute(t *testing.T) {
	doc := Parse(selDoc)
	pw := doc.Select(`input[type=password]`)
	if len(pw) != 1 || pw[0].AttrOr("name", "") != "pass" {
		t.Fatalf("password selector = %v", pw)
	}
	if got := len(doc.Select(`input[type]`)); got != 3 {
		t.Fatalf("presence selector = %d, want 3", got)
	}
	if got := len(doc.Select(`input[type="email"]`)); got != 1 {
		t.Fatalf("quoted value selector = %d", got)
	}
	if got := len(doc.Select(`input[type=submit]`)); got != 0 {
		t.Fatalf("non-matching value = %d", got)
	}
}

func TestSelectDescendant(t *testing.T) {
	doc := Parse(selDoc)
	// Inputs inside the form only — not the stray one outside.
	if got := len(doc.Select("form input")); got != 2 {
		t.Fatalf("form input = %d, want 2", got)
	}
	if got := len(doc.Select("#main form input[type=password]")); got != 1 {
		t.Fatalf("deep descendant = %d, want 1", got)
	}
	if got := len(doc.Select("form div")); got != 0 {
		t.Fatalf("non-descendant = %d, want 0", got)
	}
}

func TestSelectWildcardAndEdge(t *testing.T) {
	doc := Parse(selDoc)
	if got := len(doc.Select("*.banner")); got != 1 {
		t.Fatalf("wildcard = %d", got)
	}
	if got := doc.Select(""); got != nil {
		t.Fatalf("empty selector = %v", got)
	}
	if doc.SelectFirst("video") != nil {
		t.Fatal("absent tag matched")
	}
	// Unterminated attribute selector degrades to no panic.
	_ = doc.Select("input[type=password")
}
