package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func tokens(src string) []Token {
	z := NewTokenizer(src)
	var out []Token
	for {
		t, ok := z.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

func TestTokenizerBasicTags(t *testing.T) {
	toks := tokens(`<div class="a">hi</div>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %+v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "div" {
		t.Fatalf("token 0 = %+v", toks[0])
	}
	if v, _ := toks[0].Attr("class"); v != "a" {
		t.Fatalf("class attr = %q", v)
	}
	if toks[1].Type != TextToken || toks[1].Data != "hi" {
		t.Fatalf("token 1 = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "div" {
		t.Fatalf("token 2 = %+v", toks[2])
	}
}

func TestTokenizerAttributeForms(t *testing.T) {
	toks := tokens(`<input type=text name='user' required value="a b > c">`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	tok := toks[0]
	for _, c := range []struct{ k, v string }{
		{"type", "text"}, {"name", "user"}, {"required", ""}, {"value", "a b > c"},
	} {
		if v, ok := tok.Attr(c.k); !ok || v != c.v {
			t.Errorf("attr %q = %q (present=%v), want %q", c.k, v, ok, c.v)
		}
	}
}

func TestTokenizerUppercaseNormalized(t *testing.T) {
	toks := tokens(`<DIV CLASS="X"></DIV>`)
	if toks[0].Data != "div" {
		t.Fatalf("tag = %q, want div", toks[0].Data)
	}
	if v, ok := toks[0].Attr("class"); !ok || v != "X" {
		t.Fatalf("class = %q, want X (value case preserved)", v)
	}
}

func TestTokenizerSelfClosing(t *testing.T) {
	toks := tokens(`<br/><img src="x.png" />`)
	if toks[0].Type != SelfClosingTagToken || toks[0].Data != "br" {
		t.Fatalf("token 0 = %+v", toks[0])
	}
	if toks[1].Type != SelfClosingTagToken || toks[1].Data != "img" {
		t.Fatalf("token 1 = %+v", toks[1])
	}
	if v, _ := toks[1].Attr("src"); v != "x.png" {
		t.Fatalf("src = %q", v)
	}
}

func TestTokenizerComment(t *testing.T) {
	toks := tokens(`<!-- hidden banner --><p>x</p>`)
	if toks[0].Type != CommentToken || toks[0].Data != " hidden banner " {
		t.Fatalf("comment = %+v", toks[0])
	}
}

func TestTokenizerScriptRawText(t *testing.T) {
	toks := tokens(`<script>if (a < b) { document.write("<div>"); }</script>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, `document.write("<div>")`) {
		t.Fatalf("script body = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("close = %+v", toks[2])
	}
}

func TestTokenizerUnterminatedScript(t *testing.T) {
	toks := tokens(`<script>var x = 1;`)
	if len(toks) != 2 || toks[1].Data != "var x = 1;" {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestTokenizerDoctype(t *testing.T) {
	toks := tokens(`<!DOCTYPE html><html></html>`)
	if toks[0].Type != DoctypeToken {
		t.Fatalf("token 0 = %+v", toks[0])
	}
}

func TestTokenizerStrayLessThan(t *testing.T) {
	toks := tokens(`a < b and <b>bold</b>`)
	var text strings.Builder
	sawBold := false
	for _, tok := range toks {
		if tok.Type == TextToken {
			text.WriteString(tok.Data)
		}
		if tok.Type == StartTagToken && tok.Data == "b" {
			sawBold = true
		}
	}
	if !strings.Contains(text.String(), "a < b and ") || !sawBold {
		t.Fatalf("stray < mishandled: %+v", toks)
	}
}

func TestTokenizerQuotedGreaterThan(t *testing.T) {
	toks := tokens(`<a href="x?a>b">link</a>`)
	if v, _ := toks[0].Attr("href"); v != "x?a>b" {
		t.Fatalf("href = %q", v)
	}
}

func TestParseTreeStructure(t *testing.T) {
	doc := Parse(`<html><body><div id="a"><p>one</p><p>two</p></div></body></html>`)
	body := doc.Find("body")
	if body == nil {
		t.Fatal("no body")
	}
	div := body.Find("div")
	if div == nil || div.AttrOr("id", "") != "a" {
		t.Fatalf("div = %+v", div)
	}
	ps := div.FindAll("p")
	if len(ps) != 2 {
		t.Fatalf("got %d <p>, want 2", len(ps))
	}
	if ps[0].InnerText() != "one" || ps[1].InnerText() != "two" {
		t.Fatalf("p texts = %q, %q", ps[0].InnerText(), ps[1].InnerText())
	}
	if ps[0].Parent != div {
		t.Fatal("parent link broken")
	}
}

func TestParseVoidElementsDoNotNest(t *testing.T) {
	doc := Parse(`<div><img src="a"><input type="text"><p>after</p></div>`)
	div := doc.Find("div")
	if len(div.Children) != 3 {
		t.Fatalf("div has %d children, want 3 (img, input, p siblings)", len(div.Children))
	}
	img := doc.Find("img")
	if len(img.Children) != 0 {
		t.Fatal("void element img has children")
	}
}

func TestParseUnclosedElements(t *testing.T) {
	doc := Parse(`<div><p>unclosed<div>inner`)
	if doc.Find("p") == nil {
		t.Fatal("lost <p>")
	}
	divs := doc.FindAll("div")
	if len(divs) != 2 {
		t.Fatalf("got %d divs, want 2", len(divs))
	}
}

func TestParseStrayCloseTagDropped(t *testing.T) {
	doc := Parse(`<div></span><p>x</p></div>`)
	div := doc.Find("div")
	if div == nil || div.Find("p") == nil {
		t.Fatal("stray </span> corrupted the tree")
	}
}

func TestInnerTextJoins(t *testing.T) {
	doc := Parse(`<div>  Sign   in <b>to</b> <i>continue</i>  </div>`)
	got := doc.InnerText()
	if got != "Sign   in to continue" {
		t.Fatalf("InnerText = %q", got)
	}
}

func TestTagStrings(t *testing.T) {
	doc := Parse(`<div class="x"><p>t</p><img src="i"></div>`)
	tags := doc.TagStrings()
	want := []string{`<div class="x">`, `<p>`, `<img src="i">`}
	if len(tags) != len(want) {
		t.Fatalf("tags = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tag %d = %q, want %q", i, tags[i], want[i])
		}
	}
}

func TestHasHiddenStyle(t *testing.T) {
	cases := []struct {
		html string
		want bool
	}{
		{`<div style="visibility: hidden">`, true},
		{`<div style="display:none">`, true},
		{`<div style="DISPLAY: NONE">`, true},
		{`<div style="color: red">`, false},
		{`<div>`, false},
	}
	for _, c := range cases {
		doc := Parse(c.html)
		div := doc.Find("div")
		if got := div.HasHiddenStyle(); got != c.want {
			t.Errorf("HasHiddenStyle(%q) = %v, want %v", c.html, got, c.want)
		}
	}
}

func TestStyleProperty(t *testing.T) {
	doc := Parse(`<div style="color: Red; margin : 4px">`)
	div := doc.Find("div")
	if got := div.Style("color"); got != "red" {
		t.Errorf("Style(color) = %q", got)
	}
	if got := div.Style("margin"); got != "4px" {
		t.Errorf("Style(margin) = %q", got)
	}
	if got := div.Style("padding"); got != "" {
		t.Errorf("Style(padding) = %q, want empty", got)
	}
}

func TestFindAllFunc(t *testing.T) {
	doc := Parse(`<form><input type="text"><input type="password"><input type="submit"></form>`)
	pw := doc.FindAllFunc(func(n *Node) bool {
		return n.Tag == "input" && n.AttrOr("type", "") == "password"
	})
	if len(pw) != 1 {
		t.Fatalf("got %d password inputs, want 1", len(pw))
	}
}

func TestParseRealisticPhishingPage(t *testing.T) {
	page := `<!DOCTYPE html>
<html><head>
<meta name="robots" content="noindex">
<title>Sign in - PayPal</title>
</head>
<body>
<div class="header"><img src="https://cdn.example.com/pp-logo.png"></div>
<form action="https://evil.example.net/collect" method="post">
<input type="email" name="email" placeholder="Email">
<input type="password" name="pass" placeholder="Password">
<button type="submit">Log In</button>
</form>
<div style="visibility:hidden" class="weebly-banner">Powered by Weebly</div>
<iframe src="https://other.example.org/frame" width="0" height="0"></iframe>
</body></html>`
	doc := Parse(page)
	if doc.Find("form") == nil {
		t.Fatal("no form")
	}
	metas := doc.FindAll("meta")
	found := false
	for _, m := range metas {
		if m.AttrOr("name", "") == "robots" && strings.Contains(m.AttrOr("content", ""), "noindex") {
			found = true
		}
	}
	if !found {
		t.Fatal("noindex meta not found")
	}
	banners := doc.FindAllFunc(func(n *Node) bool { return n.HasHiddenStyle() })
	if len(banners) != 1 {
		t.Fatalf("hidden elements = %d, want 1", len(banners))
	}
	if doc.Find("iframe") == nil {
		t.Fatal("no iframe")
	}
}

// Property: the parser never panics and every element's parent chain reaches
// the document root.
func TestPropertyParseNeverPanicsAndTreeIsSound(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 300 {
			s = s[:300]
		}
		doc := Parse(s)
		sound := true
		doc.Walk(func(n *Node) bool {
			if n == doc {
				return true
			}
			p := n
			for p.Parent != nil {
				p = p.Parent
			}
			if p != doc {
				sound = false
			}
			return true
		})
		return sound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenizer always terminates and consumes all input.
func TestPropertyTokenizerTerminates(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 500 {
			s = s[:500]
		}
		z := NewTokenizer(s)
		for i := 0; ; i++ {
			if _, ok := z.Next(); !ok {
				return true
			}
			if i > len(s)+10 {
				return false // more tokens than bytes: no progress
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseTypicalPage(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><body>")
	for i := 0; i < 100; i++ {
		sb.WriteString(`<div class="row"><a href="/page">link</a><p>some text content here</p></div>`)
	}
	sb.WriteString("</body></html>")
	src := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"l&#111;gin", "login"},
		{"l&#x6F;gin", "login"},
		{"a &amp; b", "a & b"},
		{"&lt;div&gt;", "<div>"},
		{"no entities", "no entities"},
		{"broken &unknown; ref", "broken &unknown; ref"},
		{"trailing &", "trailing &"},
		{"&#0; null", "&#0; null"},                    // invalid codepoint left alone
		{"&#x110000;", "&#x110000;"},                  // out of range
		{"caf&eacute-ish &copy;", "caf&eacute-ish ©"}, // missing semicolon vs valid
	}
	for _, c := range cases {
		if got := DecodeEntities(c.in); got != c.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestInnerTextDecoded(t *testing.T) {
	doc := Parse(`<p>Sign in to your &#80;ayPal &amp; verify</p>`)
	got := doc.InnerTextDecoded()
	if got != "Sign in to your PayPal & verify" {
		t.Fatalf("InnerTextDecoded = %q", got)
	}
}

// Property: decoding is idempotent for entity-free output and never panics.
func TestPropertyDecodeEntitiesTotal(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 200 {
			s = s[:200]
		}
		out := DecodeEntities(s)
		// Output never grows (references only shrink or stay).
		return len(out) <= len(s)+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<html><head><title>T</title></head><body><div class="a"><p>one</p><img src="x"><!-- c --></div></body></html>`
	doc := Parse(src)
	out := doc.Render()
	redoc := Parse(out)
	// Structure is preserved: same tags in same order.
	a := doc.TagStrings()
	b := redoc.TagStrings()
	if len(a) != len(b) {
		t.Fatalf("tag count changed: %d -> %d\n%s", len(a), len(b), out)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tag %d changed: %q -> %q", i, a[i], b[i])
		}
	}
	if doc.InnerText() != redoc.InnerText() {
		t.Fatalf("text changed: %q -> %q", doc.InnerText(), redoc.InnerText())
	}
}

// Property: parse→render→parse is structure-preserving for arbitrary input.
func TestPropertyRenderStable(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 300 {
			s = s[:300]
		}
		doc := Parse(s)
		redoc := Parse(doc.Render())
		a, b := doc.TagStrings(), redoc.TagStrings()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
