package htmlx

import "testing"

// Native fuzz targets: the parser and entity decoder face attacker-supplied
// input on every crawl, so "never panic, always terminate" matters more
// than any single behaviour. Run with: go test -fuzz FuzzParse ./internal/htmlx

func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><p>hi</p></body></html>",
		"<div class='a' style=\"display:none\"><img src=x>",
		"<script>if(a<b){x()}</script>",
		"<!-- comment --><!DOCTYPE html>",
		"<a href='x?a>b'>t</a></span></div>",
		"<<<>>><input type=password>",
		"\x00\xff<weird>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			src = src[:4096]
		}
		doc := Parse(src)
		// The tree must be traversable and every element's raw start tag
		// must be non-empty.
		doc.Walk(func(n *Node) bool {
			if n.Type == ElementNode && n.Tag == "" {
				t.Fatal("element with empty tag")
			}
			return true
		})
		_ = doc.InnerText()
		_ = doc.TagStrings()
		_ = doc.Select("div.x input[type=password]")
	})
}

func FuzzDecodeEntities(f *testing.F) {
	for _, s := range []string{"", "&amp;", "&#65;", "&#x41;", "&broken", "a&b;c", "&#xZZ;"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 {
			src = src[:2048]
		}
		out := DecodeEntities(src)
		if len(out) > len(src)+4 {
			t.Fatalf("decode grew input: %d -> %d", len(src), len(out))
		}
	})
}
