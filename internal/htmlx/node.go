package htmlx

import (
	"strings"
)

// NodeType identifies the kind of a DOM node.
type NodeType int

// Node kinds in the parsed tree.
const (
	ElementNode NodeType = iota
	TextNode
	CommentNode
	DocumentNode
)

// Node is one node of the lightweight DOM. Children are ordered.
type Node struct {
	Type     NodeType
	Tag      string // element tag (lower-cased), empty otherwise
	Text     string // text/comment content, empty for elements
	Attrs    []Attr
	Raw      string // raw source of the start tag (elements) or content
	Parent   *Node
	Children []*Node
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == name {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute value or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// voidTags never have children (HTML void elements).
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// Parse builds a DOM tree from src. It never fails: malformed input
// produces a best-effort tree, matching how browsers treat hostile pages.
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	z := NewTokenizer(src)
	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			n := &Node{Type: TextNode, Text: tok.Data, Raw: tok.Raw, Parent: top()}
			top().Children = append(top().Children, n)
		case CommentToken:
			n := &Node{Type: CommentNode, Text: tok.Data, Raw: tok.Raw, Parent: top()}
			top().Children = append(top().Children, n)
		case StartTagToken, SelfClosingTagToken:
			n := &Node{Type: ElementNode, Tag: tok.Data, Attrs: tok.Attrs, Raw: tok.Raw, Parent: top()}
			top().Children = append(top().Children, n)
			if tok.Type == StartTagToken && !voidTags[tok.Data] {
				stack = append(stack, n)
			}
		case EndTagToken:
			// Pop to the matching open element; drop the close tag if no
			// ancestor matches (stray close).
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.Data {
					stack = stack[:i]
					break
				}
			}
		case DoctypeToken:
			// Ignored: carries no structure.
		}
	}
	return doc
}

// Walk visits every node in depth-first document order, starting at n.
// Returning false from fn prunes the subtree below the current node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// FindAll returns every element beneath n (inclusive) with the given tag.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Find returns the first element with the given tag in document order, or
// nil when absent.
func (n *Node) Find(tag string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if found != nil {
			return false
		}
		if c.Type == ElementNode && c.Tag == tag {
			found = c
			return false
		}
		return true
	})
	return found
}

// FindAllFunc returns every element for which pred is true.
func (n *Node) FindAllFunc(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && pred(c) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// InnerText concatenates all text beneath n, with single spaces between
// fragments and surrounding whitespace trimmed.
func (n *Node) InnerText() string {
	var parts []string
	n.Walk(func(c *Node) bool {
		if c.Type == TextNode {
			if s := strings.TrimSpace(c.Text); s != "" {
				parts = append(parts, s)
			}
		}
		return true
	})
	return strings.Join(parts, " ")
}

// TagStrings returns the raw start-tag source of every element beneath n,
// in document order. This is the "tag elements" input to the Appendix A
// site-similarity computation.
func (n *Node) TagStrings() []string {
	var out []string
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode {
			out = append(out, c.Raw)
		}
		return true
	})
	return out
}

// HasHiddenStyle reports whether the node's inline style hides it:
// visibility:hidden or display:none. The paper's "Obfuscating FWB Footer"
// feature (Section 4.2) looks for exactly this trick applied to the banner
// <div>.
func (n *Node) HasHiddenStyle() bool {
	style, ok := n.Attr("style")
	if !ok {
		return false
	}
	s := strings.ToLower(strings.ReplaceAll(style, " ", ""))
	return strings.Contains(s, "visibility:hidden") || strings.Contains(s, "display:none")
}

// Style returns the value of one property from the node's inline style
// attribute, lower-cased and trimmed, or "" when absent.
func (n *Node) Style(prop string) string {
	style, ok := n.Attr("style")
	if !ok {
		return ""
	}
	for _, decl := range strings.Split(style, ";") {
		k, v, ok := strings.Cut(decl, ":")
		if !ok {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(k), prop) {
			return strings.ToLower(strings.TrimSpace(v))
		}
	}
	return ""
}

// Render serializes the tree back to HTML: elements re-emit their raw
// start tags (preserving original attribute text) with synthesized close
// tags, text and comments verbatim. A parse→Render→parse round trip
// preserves the tree structure, which the property tests assert.
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			c.render(b)
		}
	case TextNode:
		b.WriteString(n.Text)
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Text)
		b.WriteString("-->")
	case ElementNode:
		b.WriteString(n.Raw)
		if voidTags[n.Tag] || strings.HasSuffix(n.Raw, "/>") {
			return
		}
		for _, c := range n.Children {
			c.render(b)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteString(">")
	}
}
