// Package htmlx is a from-scratch HTML tokenizer and lightweight DOM used by
// the FreePhish preprocessing module. The standard library has no HTML
// parser, and the feature extractors (Section 4.2 of the paper) need tag
// structure, attributes, inline styles, forms, links, iframes, and meta tags.
//
// The parser is deliberately forgiving, in the spirit of browsers: unknown
// tags are kept, unclosed elements are closed at end of input, and stray
// close tags are dropped. It is not a full WHATWG tree builder — phishing
// pages are hostile input, so the goal is never to crash and to recover the
// same structure a browser-derived feature pipeline would see.
package htmlx

import (
	"strings"
)

// TokenType identifies the kind of a lexical token.
type TokenType int

// Token kinds produced by the Tokenizer.
const (
	TextToken TokenType = iota
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	}
	return "Unknown"
}

// Attr is a single name="value" attribute. Names are lower-cased; values
// keep their original text with surrounding quotes removed.
type Attr struct {
	Key string
	Val string
}

// Token is one lexical unit of an HTML document.
type Token struct {
	Type  TokenType
	Data  string // tag name (lower-cased) or text/comment content
	Attrs []Attr
	Raw   string // the exact source slice the token was read from
}

// Attr returns the value of the named attribute and whether it was present.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == name {
			return a.Val, true
		}
	}
	return "", false
}

// rawTextTags are elements whose content is raw text up to the matching
// close tag (no nested markup).
var rawTextTags = map[string]bool{
	"script":   true,
	"style":    true,
	"textarea": true,
	"title":    true,
}

// Tokenizer splits HTML source into Tokens. The zero value is not usable;
// construct with NewTokenizer.
type Tokenizer struct {
	src string
	pos int
	// pending raw-text mode: after emitting <script> etc., the next token is
	// everything up to the matching close tag.
	rawTag string
}

// NewTokenizer returns a Tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token, or ok=false at end of input.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.rawTag != "" {
		return z.readRawText(), true
	}
	if z.src[z.pos] == '<' {
		if tok, ok := z.readMarkup(); ok {
			return tok, true
		}
		// A lone '<' that opens nothing: treat as text.
	}
	return z.readText(), true
}

// readText consumes up to the next '<' (or end of input).
func (z *Tokenizer) readText() Token {
	start := z.pos
	if z.src[z.pos] == '<' {
		z.pos++ // consume the stray '<' so we make progress
	}
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	raw := z.src[start:z.pos]
	return Token{Type: TextToken, Data: raw, Raw: raw}
}

// readRawText consumes raw content for script/style/textarea/title up to the
// matching close tag. The close tag itself is left for the next call.
func (z *Tokenizer) readRawText() Token {
	closing := "</" + z.rawTag
	lower := strings.ToLower(z.src[z.pos:])
	idx := strings.Index(lower, closing)
	var raw string
	if idx < 0 {
		raw = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		raw = z.src[z.pos : z.pos+idx]
		z.pos += idx
	}
	z.rawTag = ""
	return Token{Type: TextToken, Data: raw, Raw: raw}
}

// readMarkup consumes a tag, comment, or doctype starting at '<'. It reports
// ok=false when the '<' does not open valid markup.
func (z *Tokenizer) readMarkup() (Token, bool) {
	rest := z.src[z.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return z.readComment(), true
	case strings.HasPrefix(rest, "<!") || strings.HasPrefix(rest, "<?"):
		return z.readDeclaration(), true
	}
	if len(rest) < 2 {
		return Token{}, false
	}
	c := rest[1]
	isEnd := c == '/'
	nameStart := 1
	if isEnd {
		if len(rest) < 3 {
			return Token{}, false
		}
		c = rest[2]
		nameStart = 2
	}
	if !isAlpha(c) {
		return Token{}, false
	}
	// Find the closing '>' while honoring quoted attribute values.
	end := -1
	inQuote := byte(0)
	for i := nameStart; i < len(rest); i++ {
		ch := rest[i]
		if inQuote != 0 {
			if ch == inQuote {
				inQuote = 0
			}
			continue
		}
		switch ch {
		case '"', '\'':
			inQuote = ch
		case '>':
			end = i
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		// Unterminated tag: consume the rest as text.
		raw := rest
		z.pos = len(z.src)
		return Token{Type: TextToken, Data: raw, Raw: raw}, true
	}
	raw := rest[:end+1]
	z.pos += end + 1

	inner := rest[nameStart:end]
	selfClose := false
	if strings.HasSuffix(strings.TrimSpace(inner), "/") {
		selfClose = true
		inner = strings.TrimSpace(inner)
		inner = inner[:len(inner)-1]
	}
	name, attrs := parseTagBody(inner)
	tok := Token{Data: name, Attrs: attrs, Raw: raw}
	switch {
	case isEnd:
		tok.Type = EndTagToken
		tok.Attrs = nil
	case selfClose:
		tok.Type = SelfClosingTagToken
	default:
		tok.Type = StartTagToken
		if rawTextTags[name] {
			z.rawTag = name
		}
	}
	return tok, true
}

func (z *Tokenizer) readComment() Token {
	rest := z.src[z.pos:]
	end := strings.Index(rest[4:], "-->")
	var raw, data string
	if end < 0 {
		raw = rest
		data = rest[4:]
		z.pos = len(z.src)
	} else {
		raw = rest[:4+end+3]
		data = rest[4 : 4+end]
		z.pos += len(raw)
	}
	return Token{Type: CommentToken, Data: data, Raw: raw}
}

func (z *Tokenizer) readDeclaration() Token {
	rest := z.src[z.pos:]
	end := strings.IndexByte(rest, '>')
	var raw string
	if end < 0 {
		raw = rest
		z.pos = len(z.src)
	} else {
		raw = rest[:end+1]
		z.pos += end + 1
	}
	return Token{Type: DoctypeToken, Data: strings.TrimSpace(raw), Raw: raw}
}

// parseTagBody splits "a href='x' id=y" into the tag name and attributes.
func parseTagBody(s string) (string, []Attr) {
	i := 0
	for i < len(s) && !isSpace(s[i]) {
		i++
	}
	name := strings.ToLower(s[:i])
	var attrs []Attr
	for i < len(s) {
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) {
			break
		}
		keyStart := i
		for i < len(s) && s[i] != '=' && !isSpace(s[i]) {
			i++
		}
		key := strings.ToLower(s[keyStart:i])
		if key == "" {
			i++
			continue
		}
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		val := ""
		if i < len(s) && s[i] == '=' {
			i++
			for i < len(s) && isSpace(s[i]) {
				i++
			}
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				q := s[i]
				i++
				valStart := i
				for i < len(s) && s[i] != q {
					i++
				}
				val = s[valStart:i]
				if i < len(s) {
					i++ // closing quote
				}
			} else {
				valStart := i
				for i < len(s) && !isSpace(s[i]) {
					i++
				}
				val = s[valStart:i]
			}
		}
		attrs = append(attrs, Attr{Key: key, Val: val})
	}
	return name, attrs
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isAlpha(c byte) bool {
	return ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}
