package htmlx

import "strings"

// A minimal CSS selector engine covering the grammar feature extractors
// actually use: tag, .class, #id, attribute presence/equality
// ([type=password]), compounds of those (input[type=password].big), and
// descendant combination with spaces ("form input"). It deliberately omits
// child/sibling combinators and pseudo-classes.

// selPart is one compound selector (no combinators).
type selPart struct {
	tag     string
	id      string
	classes []string
	attrs   [][2]string // key, value ("" value = presence test)
}

// parseSelector splits "form input.big" into compound parts.
func parseSelector(sel string) []selPart {
	var parts []selPart
	for _, raw := range strings.Fields(sel) {
		parts = append(parts, parseCompound(raw))
	}
	return parts
}

func parseCompound(s string) selPart {
	var p selPart
	i := 0
	readName := func() string {
		start := i
		for i < len(s) && s[i] != '.' && s[i] != '#' && s[i] != '[' {
			i++
		}
		return s[start:i]
	}
	p.tag = strings.ToLower(readName())
	for i < len(s) {
		switch s[i] {
		case '.':
			i++
			p.classes = append(p.classes, readName())
		case '#':
			i++
			p.id = readName()
		case '[':
			end := strings.IndexByte(s[i:], ']')
			if end < 0 {
				i = len(s)
				continue
			}
			body := s[i+1 : i+end]
			i += end + 1
			k, v, ok := strings.Cut(body, "=")
			v = strings.Trim(v, `"'`)
			if !ok {
				v = ""
			}
			p.attrs = append(p.attrs, [2]string{strings.ToLower(k), v})
		default:
			i++
		}
	}
	return p
}

// matches reports whether the node satisfies one compound part.
func (p selPart) matches(n *Node) bool {
	if n.Type != ElementNode {
		return false
	}
	if p.tag != "" && p.tag != "*" && n.Tag != p.tag {
		return false
	}
	if p.id != "" && n.AttrOr("id", "") != p.id {
		return false
	}
	if len(p.classes) > 0 {
		have := strings.Fields(n.AttrOr("class", ""))
		for _, want := range p.classes {
			found := false
			for _, c := range have {
				if c == want {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	for _, kv := range p.attrs {
		v, ok := n.Attr(kv[0])
		if !ok {
			return false
		}
		if kv[1] != "" && v != kv[1] {
			return false
		}
	}
	return true
}

// Select returns every element beneath n matching the selector, in
// document order. An empty or unparsable selector matches nothing.
func (n *Node) Select(sel string) []*Node {
	parts := parseSelector(sel)
	if len(parts) == 0 {
		return nil
	}
	// Candidates matching the final compound, then verify ancestors for
	// the preceding parts right-to-left.
	last := parts[len(parts)-1]
	var out []*Node
	n.Walk(func(c *Node) bool {
		if !last.matches(c) {
			return true
		}
		anc := c.Parent
		ok := true
		for i := len(parts) - 2; i >= 0; i-- {
			for anc != nil && !parts[i].matches(anc) {
				anc = anc.Parent
			}
			if anc == nil {
				ok = false
				break
			}
			anc = anc.Parent
		}
		if ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// SelectFirst returns the first match in document order, or nil.
func (n *Node) SelectFirst(sel string) *Node {
	matches := n.Select(sel)
	if len(matches) == 0 {
		return nil
	}
	return matches[0]
}
