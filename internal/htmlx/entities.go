package htmlx

import (
	"strconv"
	"strings"
)

// namedEntities are the named character references that matter for feature
// extraction on phishing pages (full WHATWG table not needed: attackers use
// entities to obfuscate keywords like l&#111;gin, not exotic glyphs).
var namedEntities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "copy": '©', "reg": '®', "trade": '™',
	"mdash": '—', "ndash": '–', "hellip": '…', "middot": '·',
	"laquo": '«', "raquo": '»', "bull": '•', "deg": '°',
}

// DecodeEntities resolves HTML character references in s: named entities
// from the table above plus numeric (&#NNN;) and hex (&#xHH;) forms.
// Unknown or malformed references are left verbatim — hostile pages use
// broken entities deliberately, and dropping them would hide content from
// the feature extractors.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	s = s[amp:]
	for len(s) > 0 {
		if s[0] != '&' {
			next := strings.IndexByte(s, '&')
			if next < 0 {
				b.WriteString(s)
				break
			}
			b.WriteString(s[:next])
			s = s[next:]
			continue
		}
		semi := strings.IndexByte(s, ';')
		if semi < 0 || semi > 12 {
			b.WriteByte('&')
			s = s[1:]
			continue
		}
		ref := s[1:semi]
		if r, ok := decodeRef(ref); ok {
			b.WriteRune(r)
			s = s[semi+1:]
			continue
		}
		b.WriteByte('&')
		s = s[1:]
	}
	return b.String()
}

func decodeRef(ref string) (rune, bool) {
	if ref == "" {
		return 0, false
	}
	if ref[0] == '#' {
		num := ref[1:]
		base := 10
		if len(num) > 1 && (num[0] == 'x' || num[0] == 'X') {
			num = num[1:]
			base = 16
		}
		v, err := strconv.ParseUint(num, base, 32)
		if err != nil || v == 0 || v > 0x10FFFF {
			return 0, false
		}
		return rune(v), true
	}
	r, ok := namedEntities[ref]
	return r, ok
}

// InnerTextDecoded is InnerText with character references resolved — what
// a user actually reads, and what keyword heuristics should scan.
func (n *Node) InnerTextDecoded() string {
	return DecodeEntities(n.InnerText())
}
