package webgen

import (
	"fmt"
	"strings"
	"time"

	"freephish/internal/brands"
	"freephish/internal/ctlog"
	"freephish/internal/fwb"
)

// Generation rates that keep the benign and phishing cohorts genuinely
// overlapping — the reason no Table 2 model reaches 1.0. Real benign FWB
// sites have galleries, member-login areas, newsletter forms posting to
// external providers, and occasionally noindex drafts; real phishing pages
// camouflage themselves with benign content.
const (
	benignMemberLoginRate  = 0.08 // benign sites with an email+password member login
	benignNewsletterRate   = 0.12 // benign form posting to an external list provider
	benignNoindexRate      = 0.05 // unlisted drafts
	benignRandomNameRate   = 0.35 // benign sites with non-dictionary names
	benignEmbedRate        = 0.15 // benign sites embedding an external video iframe
	benignPopupRate        = 0.40 // benign sites with a hidden promo/modal div
	benignExtButtonRate    = 0.10 // benign external booking-widget button
	benignTitleBrandRate   = 0.03 // benign titles mentioning a brand ("Facebook tips")
	phishingCamouflageRate = 0.50 // phishing pages carrying benign nav + sections
	phishBrandTitleRate    = 0.60 // regular phishing titles naming the brand
	evasiveBrandTitleRate  = 0.20 // evasive variants rarely advertise the brand
	benignGalleryMaxImages = 5
	phishingExtraImagesMax = 2
)

// BenignFWBSite generates a legitimate website on the given service.
func (g *Generator) BenignFWBSite(svc *fwb.Service, at time.Time) *fwb.Site {
	topic := benignTopics[g.rng.Intn(len(benignTopics))]
	name := g.slug(2)
	if g.rng.Bool(benignRandomNameRate) {
		name = g.randToken(7) + g.seqTag()
	}
	url := svc.SiteURL(name)

	var body strings.Builder
	body.WriteString(g.navLinks(svc, "", topic.Links, nil))
	nSections := 1 + g.rng.Intn(len(topic.Sections))
	for _, s := range topic.Sections[:nSections] {
		body.WriteString(g.contentSection(svc, s))
	}
	if g.rng.Bool(0.8) {
		body.WriteString(g.gallery(svc, 1+g.rng.Intn(benignGalleryMaxImages)))
	}
	if g.rng.Bool(benignEmbedRate) {
		// Legitimate sites embed external media players all the time.
		fmt.Fprintf(&body, `<iframe src="https://video-embeds.example.com/v/%s" width="560" height="315" title="video"></iframe>`+"\n", g.randToken(8))
	}
	if g.rng.Bool(benignPopupRate) {
		// Hidden promo/modal divs are ubiquitous on legitimate sites; they
		// make a raw hidden-element count useless, unlike the targeted
		// obfuscated-banner feature.
		fmt.Fprintf(&body, `<div class="promo-modal" style="display:none"><p>Sign up for 10%%%% off your first order!</p></div>`+"\n")
	}
	if g.rng.Bool(benignExtButtonRate) {
		fmt.Fprintf(&body, `<a href="https://booking-widget.example.net/%s"><button>Book now</button></a>`+"\n", g.randToken(6))
	}
	// Benign sites frequently link out to social profiles.
	body.WriteString(g.navLinks(svc, "", nil, []string{
		"https://www.facebook.com/" + name,
		"https://www.instagram.com/" + name,
	}))
	if g.rng.Bool(BenignContactFormRate) {
		body.WriteString(g.contactForm(svc))
	}
	if g.rng.Bool(benignMemberLoginRate) {
		body.WriteString(g.memberLoginForm(svc))
	}
	if g.rng.Bool(benignNewsletterRate) {
		body.WriteString(g.newsletterForm(svc))
	}
	title := topic.Title
	if g.rng.Bool(benignTitleBrandRate) {
		title = "Tips for growing your Facebook and Instagram audience"
	}
	html := g.buildPage(svc, pageOpts{
		title:    title,
		siteName: name,
		noindex:  g.rng.Bool(benignNoindexRate),
		bodyHTML: body.String(),
	})
	return &fwb.Site{
		URL: url, Name: name, Service: svc, HTML: html,
		Kind: fwb.KindBenign, Created: at,
	}
}

// gallery renders an image block.
func (g *Generator) gallery(svc *fwb.Service, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<div%s>", g.vAttrs(svc, "gallery"))
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<img%s src="https://images-cdn.example/%s.jpg" alt="photo">`, g.vAttrs(svc, "photo"), g.randToken(8))
	}
	b.WriteString("</div>\n")
	return b.String()
}

// memberLoginForm is a legitimate members-area login: email + password,
// posting to the site itself. It is the main source of benign/phishing
// feature overlap for form-based detectors.
func (g *Generator) memberLoginForm(svc *fwb.Service) string {
	return fmt.Sprintf("<div%s>", g.vAttrs(svc, "members-box")) +
		fmt.Sprintf(`<h2%s>Members area</h2>`, g.vAttrs(svc, "members-title")) +
		fmt.Sprintf(`<form%s method="post" action="/members/login">`, g.vAttrs(svc, "form")) +
		fmt.Sprintf(`<input%s type="email" name="email" placeholder="Email">`, g.vAttrs(svc, "field")) +
		fmt.Sprintf(`<input%s type="password" name="password" placeholder="Password">`, g.vAttrs(svc, "field")) +
		fmt.Sprintf(`<button%s type="submit">Log in</button></form></div>`, g.vAttrs(svc, "submit")) + "\n"
}

// newsletterForm posts the visitor's email to an external list provider —
// a benign page with an external form action.
func (g *Generator) newsletterForm(svc *fwb.Service) string {
	return fmt.Sprintf("<div%s>", g.vAttrs(svc, "newsletter")) +
		fmt.Sprintf(`<form%s method="post" action="https://list-manage.example.com/subscribe">`, g.vAttrs(svc, "form")) +
		fmt.Sprintf(`<input%s type="email" name="email" placeholder="Join our newsletter">`, g.vAttrs(svc, "field")) +
		fmt.Sprintf(`<button%s type="submit">Subscribe</button></form></div>`, g.vAttrs(svc, "submit")) + "\n"
}

// PhishingFWBSite generates a phishing attack on the given service. The
// attack variant (regular credential phishing or one of the §5.5 evasive
// kinds) is drawn from the service's evasion profile; the spoofed brand is
// drawn from the Figure 5 skew.
func (g *Generator) PhishingFWBSite(svc *fwb.Service, at time.Time) *fwb.Site {
	kind := g.pickKind(svc)
	return g.PhishingFWBSiteOf(svc, kind, at)
}

func (g *Generator) pickKind(svc *fwb.Service) fwb.SiteKind {
	r := g.rng.Float64()
	e := svc.Evasion
	switch {
	case r < e.TwoStep:
		return fwb.KindTwoStep
	case r < e.TwoStep+e.IFrame:
		return fwb.KindIFrameEmbed
	case r < e.TwoStep+e.IFrame+e.DriveBy:
		return fwb.KindDriveByDL
	default:
		return fwb.KindPhishing
	}
}

// PhishingFWBSiteOf generates a phishing attack of a specific kind.
func (g *Generator) PhishingFWBSiteOf(svc *fwb.Service, kind fwb.SiteKind, at time.Time) *fwb.Site {
	br := g.pickBrand()
	name := g.phishSlug(br)
	url := svc.SiteURL(name)

	var body strings.Builder
	switch kind {
	case fwb.KindTwoStep:
		// Landing page with only a button; the real phishing page is on a
		// different domain (§5.5, Figure 11). No credential fields here.
		target := g.secondStageURL(br, at)
		body.WriteString(g.contentSection(svc, fmt.Sprintf("Your %s account requires verification. Click below to continue to the secure portal.", br.Name)))
		body.WriteString(g.tagOpen("div", buttonClass(svc), richnessOf(svc)))
		fmt.Fprintf(&body, `<a class="btn-continue" href="%s"><button>Continue to %s</button></a></div>`+"\n", target, br.Name)
	case fwb.KindIFrameEmbed:
		// Benign-looking content plus a hidden iframe loading the attack
		// from an external domain (§5.5, Figure 12).
		topic := benignTopics[g.rng.Intn(len(benignTopics))]
		body.WriteString(g.contentSection(svc, topic.Sections[0]))
		target := g.secondStageURL(br, at)
		fmt.Fprintf(&body, `<iframe src="%s" width="100%%" height="620" style="border:none" title="content"></iframe>`+"\n", target)
	case fwb.KindDriveByDL:
		// Malicious download lure hosted on a third-party site (§5.5). No
		// credential fields; an auto-triggering script starts the download.
		file := g.malwareFileURL(br)
		body.WriteString(g.contentSection(svc, fmt.Sprintf("A secure document from %s is ready. Your download will begin automatically.", br.Name)))
		fmt.Fprintf(&body, `<a id="dl" href="%s" download>Download document</a>`+"\n", file)
		fmt.Fprintf(&body, `<script>window.onload=function(){document.getElementById("dl").click();}</script>`+"\n")
	default:
		// Regular credential phishing: spoofed login form posting to an
		// attacker-controlled collector (or the FWB's own form handler —
		// §3 notes FWBs store submitted credentials for the attacker).
		action := "/submit"
		if g.rng.Bool(0.4) {
			action = g.externalPhishURL(br) + "collect"
		}
		extra := g.extraFields()
		body.WriteString(g.credentialForm(svc, br, action, extra))
		body.WriteString(g.contentSection(svc, "For your security, please confirm your details. This page is protected with SSL encryption."))
	}
	// Camouflage: many attacks dress the page with benign template content
	// to blend in with legitimate sites on the same FWB.
	if g.rng.Bool(phishingCamouflageRate) {
		topic := benignTopics[g.rng.Intn(len(benignTopics))]
		body.WriteString(g.navLinks(svc, "", topic.Links, nil))
		body.WriteString(g.contentSection(svc, topic.Sections[g.rng.Intn(len(topic.Sections))]))
	}
	if n := g.rng.Intn(phishingExtraImagesMax + 1); n > 0 {
		body.WriteString(g.gallery(svc, n))
	}

	title := br.Name + " - " + titleFor(kind)
	brandTitleRate := phishBrandTitleRate
	if kind != fwb.KindPhishing {
		brandTitleRate = evasiveBrandTitleRate
	}
	if !g.rng.Bool(brandTitleRate) {
		title = titleFor(kind) + " - Secure Portal"
	}
	html := g.buildPage(svc, pageOpts{
		title:      title,
		siteName:   name,
		noindex:    g.rng.Bool(NoindexRate),
		hideBanner: g.rng.Bool(BannerObfuscationRate),
		bodyHTML:   body.String(),
	})
	return &fwb.Site{
		URL: url, Name: name, Service: svc, HTML: html,
		Kind: kind, Brand: br.Key, Created: at,
	}
}

func titleFor(kind fwb.SiteKind) string {
	switch kind {
	case fwb.KindDriveByDL:
		return "Document Shared"
	case fwb.KindTwoStep:
		return "Account Notice"
	case fwb.KindIFrameEmbed:
		return "Welcome"
	default:
		return "Sign In"
	}
}

func buttonClass(svc *fwb.Service) string {
	if svc == nil {
		return "cta"
	}
	return svc.TemplateClass + "-button-wrap"
}

func richnessOf(svc *fwb.Service) float64 {
	if svc == nil {
		return 0.5
	}
	return svc.TemplateRichness
}

func (g *Generator) pickBrand() brands.Brand {
	idx := g.rng.WeightedIndex(brands.Weights())
	return brands.All()[idx]
}

func (g *Generator) extraFields() []string {
	var out []string
	if g.rng.Bool(0.25) {
		out = append(out, "phone")
	}
	if g.rng.Bool(0.15) {
		out = append(out, "ssn")
	}
	if g.rng.Bool(0.20) {
		out = append(out, "cardnumber")
	}
	return out
}

// phishSlug builds the site name, embedding the brand in a majority of
// cases (the pattern the URL features detect).
func (g *Generator) phishSlug(br brands.Brand) string {
	if g.rng.Bool(BrandInSlugRate) {
		w := slugWords[g.rng.Intn(16)] // the "sensitive" half of the word list
		return fmt.Sprintf("%s-%s-%s", br.Key, w, g.seqTag())
	}
	return g.randToken(8) + g.seqTag()
}

// externalPhishURL fabricates the attacker-controlled page a two-step or
// iframe attack points to: usually a self-hosted cheap domain, sometimes
// another FWB (§5.5).
func (g *Generator) externalPhishURL(br brands.Brand) string {
	if g.rng.Bool(TwoStepOtherFWBRate) {
		all := fwb.All()
		svc := all[g.rng.Intn(len(all))]
		return svc.SiteURL(g.phishSlug(br))
	}
	return fmt.Sprintf("https://%s-%s.%s/login/", br.Key, g.randToken(5), g.cheapTLDDomainSuffix())
}

// secondStageURL builds the linked second-stage attack page. When
// OnSecondary is set the page is actually generated and handed to the
// caller for hosting, so crawlers that follow the chain (PhishIntention's
// dynamic analysis) find a live credential page behind the button or
// iframe.
func (g *Generator) secondStageURL(br brands.Brand, at time.Time) string {
	if g.OnSecondary == nil {
		return g.externalPhishURL(br)
	}
	var site *fwb.Site
	if g.rng.Bool(TwoStepOtherFWBRate) {
		// §5.5: 174 of the 539 Google Sites two-step attacks linked to a
		// page on another FWB.
		all := fwb.All()
		svc := all[g.rng.Intn(len(all))]
		site = g.PhishingFWBSiteOf(svc, fwb.KindPhishing, at)
	} else {
		site = g.SelfHostedPhishing(at)
	}
	g.OnSecondary(site)
	return site.URL
}

// malwareFileURL fabricates the third-party-hosted malicious download.
func (g *Generator) malwareFileURL(br brands.Brand) string {
	exts := []string{"exe", "scr", "apk", "msi", "js"}
	return fmt.Sprintf("https://files-%s.%s/%s_secure_doc.%s",
		g.randToken(6), g.cheapTLDDomainSuffix(), br.Key, exts[g.rng.Intn(len(exts))])
}

var cheapSuffixes = []string{"xyz", "top", "live", "icu", "online", "site", "club", "buzz"}

func (g *Generator) cheapTLDDomainSuffix() string {
	return g.randToken(7) + "." + cheapSuffixes[g.rng.Intn(len(cheapSuffixes))]
}

// SelfHostedPhishing generates a phishing site on a freshly registered
// attacker domain: the baseline cohort of every Section 5 comparison. When
// the generator holds WHOIS/CT handles, the new domain is registered with a
// recent date and (for HTTPS sites) a DV certificate is appended to the CT
// log — the discovery channel FWB attacks starve.
func (g *Generator) SelfHostedPhishing(at time.Time) *fwb.Site {
	br := g.pickBrand()
	host := g.selfHostedHost(br)
	scheme := "http"
	hasTLS := g.rng.Bool(SelfHostedTLSRate)
	if hasTLS {
		scheme = "https"
	}
	url := fmt.Sprintf("%s://%s/%s/", scheme, host, g.selfHostedPath(br))

	if g.whois != nil {
		// Fresh registration: exponential age, median ≈ 40 days.
		days := g.rng.ExpFloat64() * 58
		if days > 400 {
			days = 400
		}
		g.whois.Register(registrableOf(host), at.AddDate(0, 0, -int(days)-1), "NameCheap")
	}
	if g.ct != nil && hasTLS {
		cert := ctlog.NewCertificate(host, "", ctlog.DV, at.Add(-2*time.Hour), 90*24*time.Hour)
		g.ct.Append(cert, at.Add(-2*time.Hour))
	}

	var body strings.Builder
	body.WriteString(g.credentialForm(nil, br, "/gate.php", g.extraFields()))
	body.WriteString(g.contentSection(nil, "Protected by advanced security. Do not share your password with anyone."))
	html := g.buildPage(nil, pageOpts{
		title:       br.Name + " - Sign In",
		noindex:     g.rng.Bool(0.25),
		bodyHTML:    body.String(),
		serviceLess: true,
	})
	return &fwb.Site{
		URL: url, Name: host, Service: nil, HTML: html,
		Kind: fwb.KindSelfHostPhish, Brand: br.Key, Created: at,
		CloakUA: g.rng.Bool(SelfHostedCloakRate),
	}
}

func (g *Generator) selfHostedHost(br brands.Brand) string {
	sub := ""
	if g.rng.Bool(0.45) {
		sub = []string{"secure.", "login.", "account.", "verify.", "www."}[g.rng.Intn(5)]
	}
	// TLD mix: mostly cheap TLDs, some .com (Section 6, Phishing Attack Costs).
	tld := cheapSuffixes[g.rng.Intn(len(cheapSuffixes))]
	if g.rng.Bool(0.25) {
		tld = "com"
	}
	base := fmt.Sprintf("%s-%s%s", br.Key, slugWords[g.rng.Intn(16)], g.seqTag())
	if g.rng.Bool(0.3) {
		base = g.randToken(9) + g.tag
	}
	return fmt.Sprintf("%s%s.%s", sub, base, tld)
}

func (g *Generator) selfHostedPath(br brands.Brand) string {
	paths := []string{"login", "verify", "secure", "account/update", "signin", "webscr"}
	p := paths[g.rng.Intn(len(paths))]
	if g.rng.Bool(0.5) {
		p = br.Key + "/" + p
	}
	return p
}

// IntlLureRate is the share of phishing posts written in a language other
// than English (the §3 coders' language blind spot).
const IntlLureRate = 0.06

// LureText renders a phishing social post sharing url.
func (g *Generator) LureText(url string) string {
	pool := lureTexts
	if g.rng.Bool(IntlLureRate) {
		pool = lureTextsIntl
	}
	t := pool[g.rng.Intn(len(pool))]
	return strings.ReplaceAll(t, "%URL%", url)
}

// BenignPostText renders an innocuous social post sharing url.
func (g *Generator) BenignPostText(url string) string {
	t := benignPostTexts[g.rng.Intn(len(benignPostTexts))]
	return strings.ReplaceAll(t, "%URL%", url)
}

// PickService draws an FWB service proportionally to its abuse weight —
// the Table 4 volume mix.
func (g *Generator) PickService() *fwb.Service {
	all := fwb.All()
	w := make([]float64, len(all))
	for i, s := range all {
		w[i] = s.AbuseWeight
	}
	return all[g.rng.WeightedIndex(w)]
}

// PickServiceUniform draws an FWB service uniformly — the benign-site mix.
func (g *Generator) PickServiceUniform() *fwb.Service {
	all := fwb.All()
	return all[g.rng.Intn(len(all))]
}

// BenignSelfHosted generates a legitimate small-business website on its own
// domain: years-old registration, hand-rolled markup, no FWB chrome. These
// are the benign half of the self-hosted world — without them the base
// StackModel would learn "own domain ⇒ phishing".
func (g *Generator) BenignSelfHosted(at time.Time) *fwb.Site {
	topic := benignTopics[g.rng.Intn(len(benignTopics))]
	base := strings.ToLower(strings.ReplaceAll(strings.Fields(topic.Title)[0], "'", ""))
	tlds := []string{"com", "com", "org", "net", "co.uk", "de"}
	host := fmt.Sprintf("%s%s.%s", base, g.seqTag(), tlds[g.rng.Intn(len(tlds))])
	url := "https://www." + host + "/"

	if g.whois != nil {
		// Established businesses: domains registered one to twelve years ago.
		years := 1 + g.rng.Intn(12)
		g.whois.Register(host, at.AddDate(-years, 0, -g.rng.Intn(300)), "GoDaddy")
	}
	if g.ct != nil {
		// A legitimate cert renewed within the last month appears in CT —
		// benign CT presence keeps the channel from being a phishing oracle.
		cert := ctlog.NewCertificate("www."+host, "", ctlog.DV, at.AddDate(0, 0, -g.rng.Intn(30)-1), 90*24*time.Hour)
		g.ct.Append(cert, cert.Issued)
	}

	var body strings.Builder
	body.WriteString(g.navLinks(nil, "", topic.Links, nil))
	nSections := 1 + g.rng.Intn(len(topic.Sections))
	for _, s := range topic.Sections[:nSections] {
		body.WriteString(g.contentSection(nil, s))
	}
	if g.rng.Bool(0.6) {
		body.WriteString(g.gallery(nil, 1+g.rng.Intn(4)))
	}
	if g.rng.Bool(BenignContactFormRate) {
		body.WriteString(g.contactForm(nil))
	}
	if g.rng.Bool(benignMemberLoginRate) {
		body.WriteString(g.memberLoginForm(nil))
	}
	html := g.buildPage(nil, pageOpts{
		title:       topic.Title,
		bodyHTML:    body.String(),
		serviceLess: true,
	})
	return &fwb.Site{
		URL: url, Name: host, HTML: html,
		Kind: fwb.KindBenign, Created: at,
	}
}
