package webgen

import (
	"strings"
	"testing"
	"time"
	"unicode"

	"freephish/internal/ctlog"
	"freephish/internal/fwb"
	"freephish/internal/htmlx"
	"freephish/internal/textsim"
	"freephish/internal/urlx"
	"freephish/internal/whois"
)

var at = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

func newGen() *Generator { return NewGenerator(42, nil, nil) }

func svcByKey(t *testing.T, key string) *fwb.Service {
	t.Helper()
	s, ok := fwb.ByKey(key)
	if !ok {
		t.Fatalf("no service %q", key)
	}
	return s
}

func TestBenignSiteStructure(t *testing.T) {
	g := newGen()
	svc := svcByKey(t, "weebly")
	site := g.BenignFWBSite(svc, at)
	if site.Kind != fwb.KindBenign || site.Brand != "" {
		t.Fatalf("site = %+v", site)
	}
	doc := htmlx.Parse(site.HTML)
	if doc.Find("form") != nil {
		// A benign site may have a contact form, but never a password field.
		pw := doc.FindAllFunc(func(n *htmlx.Node) bool {
			return n.Tag == "input" && n.AttrOr("type", "") == "password"
		})
		if len(pw) != 0 {
			t.Fatal("benign site has a password field")
		}
	}
	if !strings.Contains(site.HTML, "weebly-banner") {
		t.Fatal("benign site missing service banner")
	}
	p, err := urlx.Parse(site.URL)
	if err != nil || !p.HasSubdomainUnder("weebly.com") {
		t.Fatalf("benign URL %q not under weebly.com", site.URL)
	}
}

func TestPhishingSiteHasCredentialForm(t *testing.T) {
	g := newGen()
	svc := svcByKey(t, "weebly") // no evasion profile ⇒ always regular phishing
	site := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, at)
	if site.Kind != fwb.KindPhishing || site.Brand == "" {
		t.Fatalf("site = %+v", site)
	}
	doc := htmlx.Parse(site.HTML)
	pw := doc.FindAllFunc(func(n *htmlx.Node) bool {
		return n.Tag == "input" && n.AttrOr("type", "") == "password"
	})
	if len(pw) != 1 {
		t.Fatalf("password inputs = %d, want 1", len(pw))
	}
}

func TestPhishingRatesApproximatePaper(t *testing.T) {
	g := newGen()
	svc := svcByKey(t, "weebly")
	const n = 800
	noindex, hidden, brandSlug := 0, 0, 0
	for i := 0; i < n; i++ {
		site := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, at)
		if strings.Contains(site.HTML, `content="noindex`) {
			noindex++
		}
		if strings.Contains(site.HTML, `style="visibility:hidden"`) {
			hidden++
		}
		if strings.Contains(site.Name, site.Brand) {
			brandSlug++
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if frac < want-0.07 || frac > want+0.07 {
			t.Errorf("%s rate = %.3f, want ≈%.3f", name, frac, want)
		}
	}
	check("noindex", noindex, NoindexRate)
	check("banner obfuscation", hidden, BannerObfuscationRate)
	check("brand-in-slug", brandSlug, BrandInSlugRate)
}

func TestEvasiveVariantsLackCredentialFields(t *testing.T) {
	g := newGen()
	svc := svcByKey(t, "googlesites")
	for _, kind := range []fwb.SiteKind{fwb.KindTwoStep, fwb.KindIFrameEmbed, fwb.KindDriveByDL} {
		site := g.PhishingFWBSiteOf(svc, kind, at)
		doc := htmlx.Parse(site.HTML)
		pw := doc.FindAllFunc(func(n *htmlx.Node) bool {
			return n.Tag == "input" && (n.AttrOr("type", "") == "password" || n.AttrOr("type", "") == "email")
		})
		if len(pw) != 0 {
			t.Errorf("%s variant has credential fields", kind)
		}
	}
}

func TestTwoStepHasExternalButtonLink(t *testing.T) {
	g := newGen()
	site := g.PhishingFWBSiteOf(svcByKey(t, "googlesites"), fwb.KindTwoStep, at)
	doc := htmlx.Parse(site.HTML)
	var external bool
	for _, a := range doc.FindAll("a") {
		href := a.AttrOr("href", "")
		if strings.HasPrefix(href, "https://") && !strings.Contains(href, "sites.google.com") &&
			a.Find("button") != nil {
			external = true
		}
	}
	if !external {
		t.Fatalf("two-step page lacks external button link:\n%s", site.HTML)
	}
}

func TestIFrameVariantEmbedsExternalFrame(t *testing.T) {
	g := newGen()
	site := g.PhishingFWBSiteOf(svcByKey(t, "blogspot"), fwb.KindIFrameEmbed, at)
	doc := htmlx.Parse(site.HTML)
	frames := doc.FindAll("iframe")
	if len(frames) != 1 {
		t.Fatalf("iframes = %d, want 1", len(frames))
	}
	src := frames[0].AttrOr("src", "")
	if !strings.HasPrefix(src, "https://") || strings.Contains(src, "blogspot.com") {
		t.Fatalf("iframe src = %q, want external", src)
	}
}

func TestDriveByHasDownloadAndAutoClick(t *testing.T) {
	g := newGen()
	site := g.PhishingFWBSiteOf(svcByKey(t, "sharepoint"), fwb.KindDriveByDL, at)
	if !strings.Contains(site.HTML, "download>") || !strings.Contains(site.HTML, ".click()") {
		t.Fatalf("drive-by page missing download/auto-click:\n%s", site.HTML)
	}
}

func TestEvasionMixFollowsServiceProfile(t *testing.T) {
	g := newGen()
	svc := svcByKey(t, "googlesites") // TwoStep 0.24, IFrame 0.19, DriveBy 0.29
	counts := map[fwb.SiteKind]int{}
	const n = 1500
	for i := 0; i < n; i++ {
		counts[g.pickKind(svc)]++
	}
	frac := func(k fwb.SiteKind) float64 { return float64(counts[k]) / n }
	if f := frac(fwb.KindTwoStep); f < 0.18 || f > 0.30 {
		t.Errorf("two-step frac = %.3f, want ≈0.24", f)
	}
	if f := frac(fwb.KindDriveByDL); f < 0.23 || f > 0.35 {
		t.Errorf("drive-by frac = %.3f, want ≈0.29", f)
	}
	// Weebly has no evasion profile: always regular phishing.
	w := svcByKey(t, "weebly")
	for i := 0; i < 50; i++ {
		if g.pickKind(w) != fwb.KindPhishing {
			t.Fatal("weebly produced an evasive variant with zero profile")
		}
	}
}

func TestSelfHostedPhishingRegistersWhoisAndCT(t *testing.T) {
	var db whois.DB
	var log ctlog.Log
	g := NewGenerator(7, &db, &log)
	nTLS := 0
	const n = 120
	for i := 0; i < n; i++ {
		site := g.SelfHostedPhishing(at)
		if site.Service != nil || site.Kind != fwb.KindSelfHostPhish {
			t.Fatalf("site = %+v", site)
		}
		p, err := urlx.Parse(site.URL)
		if err != nil {
			t.Fatalf("bad URL %q: %v", site.URL, err)
		}
		age, err := db.AgeAt(p.Host, at)
		if err != nil {
			t.Fatalf("self-hosted domain not registered: %v", err)
		}
		if age > 500*24*time.Hour {
			t.Fatalf("self-hosted domain too old: %v", age)
		}
		if strings.HasPrefix(site.URL, "https://") {
			nTLS++
		}
	}
	if f := float64(nTLS) / n; f < 0.45 || f > 0.75 {
		t.Errorf("TLS fraction = %.2f, want ≈0.60", f)
	}
	if log.Len() == 0 {
		t.Fatal("no DV certificates appended to CT log")
	}
	// CT entries must all be DV — the FWB EV/OV certs come from
	// RegisterInfrastructure, not from site creation.
	for _, e := range log.Since(0) {
		if e.Cert.Type != ctlog.DV {
			t.Fatalf("self-hosted cert type = %v, want DV", e.Cert.Type)
		}
	}
}

func TestRegisterInfrastructure(t *testing.T) {
	var db whois.DB
	var log ctlog.Log
	g := NewGenerator(7, &db, &log)
	g.RegisterInfrastructure(at)
	if log.Len() != len(fwb.All()) {
		t.Fatalf("CT entries = %d, want %d", log.Len(), len(fwb.All()))
	}
	age, err := db.AgeAt("anything.weebly.com", at)
	if err != nil {
		t.Fatal(err)
	}
	if age < 10*365*24*time.Hour {
		t.Fatalf("weebly age = %v, want years", age)
	}
	// Path-based services register their registrable parent.
	if _, err := db.AgeAt("sites.google.com", at); err != nil {
		t.Fatal("google.com not registered for sites.google.com")
	}
}

func TestCodeSimilarityOrderingMatchesTable1(t *testing.T) {
	// Table 1: Weebly 79.4% > Google Sites 72.4% > 000webhost 68.1% >
	// Blogspot 63.8% ≈ Wix 63.7% > Github.io 37.4%. Verify the generated
	// sites reproduce the ordering and land within tolerance.
	g := newGen()
	measure := func(key string) float64 {
		svc := svcByKey(t, key)
		var sims []float64
		for i := 0; i < 12; i++ {
			benign := g.BenignFWBSite(svc, at)
			phish := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, at)
			tb := htmlx.Parse(benign.HTML).TagStrings()
			tp := htmlx.Parse(phish.HTML).TagStrings()
			sims = append(sims, textsim.SiteSimilarity(tb, tp))
		}
		return textsim.Median(sims)
	}
	weebly := measure("weebly")
	github := measure("github")
	if weebly <= github {
		t.Fatalf("weebly similarity %.3f <= github %.3f; Table 1 ordering violated", weebly, github)
	}
	if weebly < 0.60 || weebly > 0.95 {
		t.Errorf("weebly similarity = %.3f, want ≈0.79", weebly)
	}
	if github > 0.60 {
		t.Errorf("github similarity = %.3f, want ≈0.37", github)
	}
}

func TestSelfHostedLowSimilarityToFWB(t *testing.T) {
	g := newGen()
	svc := svcByKey(t, "weebly")
	fwbSite := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, at)
	self := g.SelfHostedPhishing(at)
	sim := textsim.SiteSimilarity(
		htmlx.Parse(fwbSite.HTML).TagStrings(),
		htmlx.Parse(self.HTML).TagStrings(),
	)
	if sim > 0.7 {
		t.Fatalf("self-hosted vs FWB similarity = %.3f, want low", sim)
	}
}

func TestLureAndBenignTexts(t *testing.T) {
	g := newGen()
	u := "https://x.weebly.com/"
	if txt := g.LureText(u); !strings.Contains(txt, u) {
		t.Fatalf("lure text %q missing URL", txt)
	}
	if txt := g.BenignPostText(u); !strings.Contains(txt, u) {
		t.Fatalf("benign text %q missing URL", txt)
	}
	// Extracted back by the streaming regex.
	if got := urlx.ExtractURLs(g.LureText(u)); len(got) != 1 || got[0] != u {
		t.Fatalf("lure URL extraction = %v", got)
	}
}

func TestPickServiceFollowsAbuseWeights(t *testing.T) {
	g := newGen()
	counts := map[string]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[g.PickService().Key]++
	}
	if counts["weebly"] < counts["hpage"] {
		t.Fatal("weebly should dominate hpage by abuse weight")
	}
	frac := float64(counts["weebly"]) / n
	want := 7031.0 / fwb.TotalAbuseWeight()
	if frac < want-0.05 || frac > want+0.05 {
		t.Fatalf("weebly frac = %.3f, want ≈%.3f", frac, want)
	}
}

func TestUniqueURLs(t *testing.T) {
	g := newGen()
	seen := map[string]bool{}
	for i := 0; i < 400; i++ {
		s := g.PhishingFWBSite(g.PickService(), at)
		if seen[s.URL] {
			t.Fatalf("duplicate URL %q", s.URL)
		}
		seen[s.URL] = true
	}
}

func TestGeneratedSitesParseAndIdentify(t *testing.T) {
	g := newGen()
	for i := 0; i < 60; i++ {
		svc := g.PickService()
		site := g.PhishingFWBSite(svc, at)
		p, err := urlx.Parse(site.URL)
		if err != nil {
			t.Fatalf("URL %q: %v", site.URL, err)
		}
		if got := fwb.Identify(p.Host, p.Path); got != svc {
			t.Fatalf("Identify(%q) = %v, want %s", site.URL, got, svc.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1 := NewGenerator(99, nil, nil)
	g2 := NewGenerator(99, nil, nil)
	svc := svcByKey(t, "wix")
	for i := 0; i < 10; i++ {
		a := g1.PhishingFWBSite(svc, at)
		b := g2.PhishingFWBSite(svc, at)
		if a.URL != b.URL || a.HTML != b.HTML || a.Brand != b.Brand {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestSecondStageSitesEmitted(t *testing.T) {
	g := NewGenerator(21, nil, nil)
	var secondary []*fwb.Site
	g.OnSecondary = func(s *fwb.Site) { secondary = append(secondary, s) }
	gs := svcByKey(t, "googlesites")
	landing := g.PhishingFWBSiteOf(gs, fwb.KindTwoStep, at)
	if len(secondary) != 1 {
		t.Fatalf("secondary sites = %d, want 1", len(secondary))
	}
	target := secondary[0]
	if !strings.Contains(landing.HTML, target.URL) {
		t.Fatalf("landing page does not link the second stage:\n%s", landing.HTML)
	}
	// The second stage is a live credential page (Figure 11).
	doc := htmlx.Parse(target.HTML)
	pw := doc.FindAllFunc(func(n *htmlx.Node) bool {
		return n.Tag == "input" && n.AttrOr("type", "") == "password"
	})
	if len(pw) == 0 {
		t.Fatal("second stage has no credential form")
	}
	if target.Kind != fwb.KindPhishing && target.Kind != fwb.KindSelfHostPhish {
		t.Fatalf("second stage kind = %v", target.Kind)
	}
}

func TestSecondStageMixOtherFWBVsSelfHosted(t *testing.T) {
	g := NewGenerator(23, nil, nil)
	var onFWB, selfHosted int
	g.OnSecondary = func(s *fwb.Site) {
		if s.Service != nil {
			onFWB++
		} else {
			selfHosted++
		}
	}
	gs := svcByKey(t, "googlesites")
	for i := 0; i < 400; i++ {
		g.PhishingFWBSiteOf(gs, fwb.KindTwoStep, at)
	}
	frac := float64(onFWB) / float64(onFWB+selfHosted)
	// §5.5: 174/539 ≈ 32% of two-step targets are on another FWB.
	if frac < TwoStepOtherFWBRate-0.08 || frac > TwoStepOtherFWBRate+0.08 {
		t.Fatalf("other-FWB second-stage fraction = %.2f, want ≈%.2f", frac, TwoStepOtherFWBRate)
	}
}

func TestBenignSelfHostedSite(t *testing.T) {
	var db whois.DB
	var log ctlog.Log
	g := NewGenerator(31, &db, &log)
	for i := 0; i < 40; i++ {
		site := g.BenignSelfHosted(at)
		if site.Service != nil || site.Kind != fwb.KindBenign {
			t.Fatalf("site = %+v", site)
		}
		p, err := urlx.Parse(site.URL)
		if err != nil {
			t.Fatalf("URL %q: %v", site.URL, err)
		}
		if fwb.Identify(p.Host, p.Path) != nil {
			t.Fatal("benign self-hosted identified as FWB")
		}
		age, err := db.AgeAt(p.Host, at)
		if err != nil {
			t.Fatalf("domain unregistered: %v", err)
		}
		if age < 300*24*time.Hour {
			t.Fatalf("benign domain age = %v, want years", age)
		}
		doc := htmlx.Parse(site.HTML)
		pw := doc.Select(`input[type=password]`)
		form := doc.FindAll("form")
		if len(pw) > 0 && len(form) == 0 {
			t.Fatal("password without form")
		}
	}
	if log.Len() == 0 {
		t.Fatal("benign certs not appended to CT log")
	}
}

func TestMultilingualLures(t *testing.T) {
	g := NewGenerator(37, nil, nil)
	u := "https://x.weebly.com/"
	intl := 0
	const n = 2000
	for i := 0; i < n; i++ {
		txt := g.LureText(u)
		if !strings.Contains(txt, u) {
			t.Fatalf("lure lost the URL: %q", txt)
		}
		// International templates carry non-ASCII letters; English ones may
		// contain non-ASCII punctuation (em-dashes), which must not count.
		foreign := false
		for _, r := range txt {
			if r > 127 && unicode.IsLetter(r) {
				foreign = true
				break
			}
		}
		if foreign {
			intl++
		}
		// The streaming regex must still extract the URL from any language.
		if got := urlx.ExtractURLs(txt); len(got) != 1 || got[0] != u {
			t.Fatalf("extraction failed on %q: %v", txt, got)
		}
	}
	if f := float64(intl) / n; f < IntlLureRate-0.03 || f > IntlLureRate+0.05 {
		t.Fatalf("international lure rate = %.3f, want ≈%.2f", f, IntlLureRate)
	}
}
