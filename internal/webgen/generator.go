package webgen

import (
	"fmt"
	"strings"
	"time"

	"freephish/internal/brands"
	"freephish/internal/ctlog"
	"freephish/internal/fwb"
	"freephish/internal/simclock"
	"freephish/internal/whois"
)

// Rates measured by the paper that parameterize generation.
const (
	// NoindexRate is the fraction of FWB phishing pages carrying a noindex
	// meta tag (Section 3: 44.7%).
	NoindexRate = 0.447
	// BannerObfuscationRate is the fraction of FWB phishing pages that hide
	// the service banner (Section 4.2).
	BannerObfuscationRate = 0.52
	// BrandInSlugRate is the fraction of phishing slugs embedding the brand.
	BrandInSlugRate = 0.45
	// BenignContactFormRate is the fraction of benign sites with a simple
	// contact form (keeps "has a form" from trivially separating classes).
	BenignContactFormRate = 0.30
	// TwoStepOtherFWBRate is the fraction of two-step attacks whose linked
	// page is on another FWB (Section 5.5: 174 of 539 on Google Sites).
	TwoStepOtherFWBRate = 0.32
	// SelfHostedTLSRate is the fraction of self-hosted phishing sites with
	// SSL (Section 3 cites >49% of phishing URLs having certificates).
	SelfHostedTLSRate = 0.60
	// SelfHostedCloakRate is the fraction of self-hosted phishing sites
	// using server-side user-agent cloaking (CrawlPhish measured ~20-25%
	// of phishing sites employing cloaking; §6 related work).
	SelfHostedCloakRate = 0.25
)

// Generator produces simulated websites and the social posts that share
// them. It optionally maintains WHOIS and CT-log side effects so detector
// discovery channels observe the same world. Generator is not safe for
// concurrent use; the simulation drives it from clock callbacks.
type Generator struct {
	rng   *simclock.RNG
	seed  int64
	whois *whois.DB
	ct    *ctlog.Log
	seq   int
	// tag is a per-derivation name infix (see Derive). The root generator's
	// tag is empty, so untagged names keep their historical pure-decimal
	// sequence suffixes.
	tag string

	// OnSecondary, when set, receives the linked second-stage sites that
	// two-step and iframe attacks point to (Figure 11: the landing page on
	// one domain, the credential page on another). The caller typically
	// publishes them to the hosting substrate so crawlers can follow the
	// chain. When nil, second-stage URLs are fabricated but not backed by
	// a live page.
	OnSecondary func(*fwb.Site)
}

// NewGenerator returns a Generator drawing from the run seed. whoisDB and
// ctLog may be nil when registration side effects are not needed.
func NewGenerator(seed int64, whoisDB *whois.DB, ctLog *ctlog.Log) *Generator {
	return &Generator{
		rng:   simclock.NewRNG(seed, "webgen"),
		seed:  seed,
		whois: whoisDB,
		ct:    ctLog,
	}
}

// Derive returns a child generator drawing from its own keyed RNG stream
// ("webgen."+stream of the same run seed) against the same WHOIS and CT
// side-effect stores. tag is stamped into every generated name the child
// produces (see seqTag), which keeps names from different derivations —
// and from the root generator — structurally collision-free no matter how
// the derivations are interleaved. This is what lets a sharded posting
// schedule generate each event's site from a stream keyed by the event
// alone, independent of which shard runs it.
func (g *Generator) Derive(stream, tag string) *Generator {
	return &Generator{
		rng:         simclock.NewRNG(g.seed, "webgen."+stream),
		seed:        g.seed,
		whois:       g.whois,
		ct:          g.ct,
		tag:         tag,
		OnSecondary: g.OnSecondary,
	}
}

// seqTag returns the next per-generator name suffix: the derivation tag (a
// decimal terminated by a non-digit, e.g. "e17x") followed by the local
// sequence number. The root generator's empty tag reproduces the plain
// decimal suffixes names have always had; tagged suffixes contain a letter
// and so can never collide with them, and two derivations' suffixes differ
// in their tag before the first local digit.
func (g *Generator) seqTag() string {
	g.seq++
	return g.tag + fmt.Sprintf("%d", g.seq)
}

// RegisterInfrastructure records the 17 FWB hosting domains in WHOIS with
// their multi-year ages and appends each service's shared certificate to
// the CT log (the service's own cert is public; individual sites never are).
func (g *Generator) RegisterInfrastructure(at time.Time) {
	for _, svc := range fwb.All() {
		if g.whois != nil {
			reg := at.AddDate(0, 0, -int(svc.DomainAgeYears*365.25))
			g.whois.Register(registrableOf(svc.Domain), reg, "Corporate Registrar")
		}
		if g.ct != nil {
			cert := svc.SharedCertificate(at)
			g.ct.Append(cert, cert.Issued)
		}
	}
}

// registrableOf maps a hosting domain to its registrable parent:
// sites.google.com → google.com, docs.google.com → google.com.
func registrableOf(domain string) string {
	parts := strings.Split(domain, ".")
	if len(parts) <= 2 {
		return domain
	}
	return strings.Join(parts[len(parts)-2:], ".")
}

func (g *Generator) slug(words int) string {
	var parts []string
	for i := 0; i < words; i++ {
		parts = append(parts, slugWords[g.rng.Intn(len(slugWords))])
	}
	return fmt.Sprintf("%s-%s", strings.Join(parts, "-"), g.seqTag())
}

func (g *Generator) randToken(n int) string {
	const alnum = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alnum[g.rng.Intn(len(alnum))]
	}
	return string(b)
}

// vAttrs builds the attribute block for a content element. The fixed part
// (the service's template class) is identical across all sites on the FWB;
// the variable part is per-site random data sized so that
// fixed/(fixed+variable) ≈ richness. Because the Appendix A similarity is a
// median over per-tag best Levenshtein matches, this makes the measured
// phishing↔benign similarity track TemplateRichness — the mechanism behind
// Table 1's per-service medians. For self-hosted sites (svc == nil) both
// class and data are random, so cross-site similarity stays low.
func (g *Generator) vAttrs(svc *fwb.Service, role string) string {
	if svc == nil {
		return fmt.Sprintf(` class="x%s" data-sid="%s"`, g.randToken(7), g.randToken(28))
	}
	cls := svc.TemplateClass + "-" + role
	fixed := fmt.Sprintf(` class=%q`, cls)
	fixedLen := float64(len(fixed) + 14) // element name + data-sid scaffolding counts as fixed
	total := fixedLen / svc.TemplateRichness
	varLen := int(total - fixedLen)
	if varLen < 4 {
		varLen = 4
	}
	if varLen > 96 {
		varLen = 96
	}
	return fmt.Sprintf(`%s data-sid="%s"`, fixed, g.randToken(varLen))
}

// tagOpen builds a start tag with richness-controlled variance.
func (g *Generator) tagOpen(elem, class string, richness float64) string {
	fixed := fmt.Sprintf(`<%s class=%q`, elem, class)
	fixedLen := float64(len(fixed) + 1)
	total := fixedLen / richness
	varLen := int(total - fixedLen)
	if varLen < 4 {
		varLen = 4
	}
	if varLen > 96 {
		varLen = 96
	}
	return fmt.Sprintf(`%s data-sid="%s">`, fixed, g.randToken(varLen))
}

// pageOpts controls page assembly.
type pageOpts struct {
	title       string
	noindex     bool
	hideBanner  bool
	siteName    string
	bodyHTML    string // pre-rendered content sections
	extraHead   string
	serviceLess bool // self-hosted: no FWB chrome or banner
}

// buildPage assembles a full HTML document in the service's template.
func (g *Generator) buildPage(svc *fwb.Service, o pageOpts) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	b.WriteString(`<meta charset="utf-8">` + "\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", o.title)
	if o.noindex {
		b.WriteString(`<meta name="robots" content="noindex, nofollow">` + "\n")
	}
	if !o.serviceLess {
		// Service boilerplate head: identical across all sites on the FWB.
		fmt.Fprintf(&b, `<meta name="generator" content="%s Site Builder">`+"\n", svc.Name)
		fmt.Fprintf(&b, `<link rel="stylesheet" href="https://cdn.%s/static/%s-theme.css">`+"\n", svc.Domain, svc.TemplateClass)
		fmt.Fprintf(&b, `<script src="https://cdn.%s/static/%s-runtime.js"></script>`+"\n", svc.Domain, svc.TemplateClass)
	}
	b.WriteString(o.extraHead)
	b.WriteString("</head>\n<body>\n")
	if !o.serviceLess {
		cls := svc.TemplateClass
		b.WriteString(g.tagOpen("div", cls+"-page-wrapper", svc.TemplateRichness))
		b.WriteString("\n")
		b.WriteString(g.tagOpen("div", cls+"-header-nav", svc.TemplateRichness))
		fmt.Fprintf(&b, `<span class="%s-site-title">%s</span></div>`+"\n", cls, o.title)
	}
	b.WriteString(o.bodyHTML)
	if !o.serviceLess {
		banner := svc.Banner(o.siteName)
		if o.hideBanner {
			// The §4.2 obfuscation trick: hide the banner div via style.
			banner = strings.Replace(banner, "<div ", `<div style="visibility:hidden" `, 1)
		}
		b.WriteString(banner)
		b.WriteString("\n</div>\n")
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// contentSection renders one text section inside service chrome.
func (g *Generator) contentSection(svc *fwb.Service, text string) string {
	return fmt.Sprintf("<div%s>\n<p%s>%s</p></div>\n",
		g.vAttrs(svc, "section-content"), g.vAttrs(svc, "paragraph"), text)
}

// navLinks renders the site's internal navigation anchors plus the external
// links the HTML features count.
func (g *Generator) navLinks(svc *fwb.Service, base string, links []string, external []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<div%s>", g.vAttrs(svc, "nav-list"))
	for _, l := range links {
		fmt.Fprintf(&b, `<a%s href="%s%s">%s</a> `, g.vAttrs(svc, "nav-link"), base, l, strings.TrimPrefix(l, "/"))
	}
	for _, e := range external {
		fmt.Fprintf(&b, `<a%s href="%s">%s</a> `, g.vAttrs(svc, "ext-link"), e, e)
	}
	b.WriteString("</div>\n")
	return b.String()
}

// credentialForm renders a credential-harvesting form for the brand. extra
// lists additional sensitive fields (ssn, phone, card...).
func (g *Generator) credentialForm(svc *fwb.Service, br brands.Brand, action string, extra []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<div%s>", g.vAttrs(svc, "form-container"))
	vocab := br.LoginVocab[g.rng.Intn(len(br.LoginVocab))]
	fmt.Fprintf(&b, `<img%s src="https://logo-cdn.example/%s.png" alt="%s"><h2%s>%s</h2>`+"\n",
		g.vAttrs(svc, "brand-logo"), br.Key, br.Name, g.vAttrs(svc, "form-title"), vocab)
	fmt.Fprintf(&b, `<form%s method="post" action="%s">`+"\n", g.vAttrs(svc, "form"), action)
	fmt.Fprintf(&b, `<input%s type="email" name="email" placeholder="Email or phone">`+"\n", g.vAttrs(svc, "field"))
	fmt.Fprintf(&b, `<input%s type="password" name="password" placeholder="Password">`+"\n", g.vAttrs(svc, "field"))
	for _, f := range extra {
		fmt.Fprintf(&b, `<input%s type="text" name=%q placeholder=%q>`+"\n", g.vAttrs(svc, "field"), f, strings.ToUpper(f[:1])+f[1:])
	}
	fmt.Fprintf(&b, `<button%s type="submit">Sign In</button></form></div>`+"\n", g.vAttrs(svc, "submit"))
	return b.String()
}

// contactForm renders the benign contact form some legitimate sites carry.
func (g *Generator) contactForm(svc *fwb.Service) string {
	return fmt.Sprintf("<div%s>", g.vAttrs(svc, "contact-form")) +
		fmt.Sprintf(`<form%s method="post" action="/contact">`, g.vAttrs(svc, "form")) +
		fmt.Sprintf(`<input%s type="text" name="name" placeholder="Your name">`, g.vAttrs(svc, "field")) +
		fmt.Sprintf(`<input%s type="email" name="email" placeholder="Your email">`, g.vAttrs(svc, "field")) +
		fmt.Sprintf(`<textarea name="message"></textarea><button%s type="submit">Send</button></form></div>`, g.vAttrs(svc, "submit")) + "\n"
}
