package webgen

import (
	"fmt"
	"strings"
	"time"

	"freephish/internal/brands"
	"freephish/internal/ctlog"
	"freephish/internal/fwb"
)

// Phishing kits (§6, "Phishing Attack Costs"): much of the self-hosted
// phishing economy runs on off-the-shelf kits, so pages from the same kit
// share markup fingerprints across unrelated attacker domains — the signal
// kit-detection work (Bijmans et al., Oest et al.) clusters on. A fraction
// of generated self-hosted attacks are built from one of these kit
// templates; the rest stay hand-rolled.

// KitRate is the fraction of self-hosted phishing built from a kit.
const KitRate = 0.6

// kit is one off-the-shelf phishing kit's markup fingerprint.
type kit struct {
	Name  string
	class string   // CSS class prefix stamped on every element
	extra []string // fixed resource includes, a strong fingerprint
}

// kits is the simulated kit market; popularity is Zipf-skewed via drawKit.
var kits = []kit{
	{"xbalti", "xb", []string{`<link rel="stylesheet" href="assets/xb-style.css">`, `<script src="assets/xb-anti.js"></script>`}},
	{"16shop", "sx", []string{`<link rel="stylesheet" href="css/sx-main.css">`, `<script src="js/sx-detect.js"></script>`}},
	{"kr3pto", "kr", []string{`<link rel="stylesheet" href="static/kr-theme.css">`}},
	{"chalbhai", "cb", []string{`<link rel="stylesheet" href="cb/style.css">`, `<script src="cb/fingerprint.js"></script>`}},
	{"rainbow", "rb", []string{`<link rel="stylesheet" href="inc/rb.css">`}},
}

func (g *Generator) drawKit() kit {
	return kits[g.rng.Zipf(len(kits), 1.1)]
}

// kitAttrs is vAttrs with the kit's class prefix: same-kit pages share the
// fixed part, so their signatures cluster.
func (g *Generator) kitAttrs(k kit, role string) string {
	return fmt.Sprintf(` class="%s-%s" data-kid="%s"`, k.class, role, g.randToken(10))
}

// kitPage renders a credential page from the kit template.
func (g *Generator) kitPage(k kit, br brands.Brand) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	b.WriteString(`<meta charset="utf-8">` + "\n")
	fmt.Fprintf(&b, "<title>%s - Account Verification</title>\n", br.Name)
	for _, inc := range k.extra {
		b.WriteString(inc + "\n")
	}
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<div%s>\n", g.kitAttrs(k, "wrapper"))
	fmt.Fprintf(&b, `<img%s src="images/%s_logo.png" alt="%s">`+"\n", g.kitAttrs(k, "logo"), br.Key, br.Name)
	vocab := br.LoginVocab[g.rng.Intn(len(br.LoginVocab))]
	fmt.Fprintf(&b, "<h2%s>%s</h2>\n", g.kitAttrs(k, "title"), vocab)
	fmt.Fprintf(&b, `<form%s method="post" action="next.php">`+"\n", g.kitAttrs(k, "form"))
	fmt.Fprintf(&b, `<input%s type="email" name="email" placeholder="Email">`+"\n", g.kitAttrs(k, "field"))
	fmt.Fprintf(&b, `<input%s type="password" name="password" placeholder="Password">`+"\n", g.kitAttrs(k, "field"))
	fmt.Fprintf(&b, `<button%s type="submit">Continue</button></form>`+"\n", g.kitAttrs(k, "btn"))
	fmt.Fprintf(&b, "<div%s><p>Protected by %s security.</p></div>\n", g.kitAttrs(k, "footer"), br.Name)
	b.WriteString("</div>\n</body>\n</html>\n")
	return b.String()
}

// SelfHostedKitPhishing generates a self-hosted phishing site built from a
// named kit. It returns the site and the kit's name (the ground-truth
// family label for clustering evaluations).
func (g *Generator) SelfHostedKitPhishing(at time.Time) (*fwb.Site, string) {
	k := g.drawKit()
	br := g.pickBrand()
	host := g.selfHostedHost(br)
	scheme := "http"
	hasTLS := g.rng.Bool(SelfHostedTLSRate)
	if hasTLS {
		scheme = "https"
	}
	url := fmt.Sprintf("%s://%s/%s/", scheme, host, g.selfHostedPath(br))
	if g.whois != nil {
		days := g.rng.ExpFloat64() * 58
		if days > 400 {
			days = 400
		}
		g.whois.Register(registrableOf(host), at.AddDate(0, 0, -int(days)-1), "NameCheap")
	}
	if g.ct != nil && hasTLS {
		cert := ctlog.NewCertificate(host, "", ctlog.DV, at.Add(-2*time.Hour), 90*24*time.Hour)
		g.ct.Append(cert, at.Add(-2*time.Hour))
	}
	return &fwb.Site{
		URL: url, Name: host, HTML: g.kitPage(k, br),
		Kind: fwb.KindSelfHostPhish, Brand: br.Key, Created: at,
		CloakUA: g.rng.Bool(SelfHostedCloakRate),
	}, k.Name
}

// SelfHostedAttack generates a self-hosted phishing site, drawn from the
// kit market with probability KitRate and hand-rolled otherwise. The
// second return value is the kit family name, or "hand-rolled".
func (g *Generator) SelfHostedAttack(at time.Time) (*fwb.Site, string) {
	if g.rng.Bool(KitRate) {
		return g.SelfHostedKitPhishing(at)
	}
	return g.SelfHostedPhishing(at), "hand-rolled"
}

// KitNames returns the simulated kit market's family names.
func KitNames() []string {
	out := make([]string, len(kits))
	for i, k := range kits {
		out[i] = k.Name
	}
	return out
}
