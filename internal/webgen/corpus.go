// Package webgen generates the simulated web: benign FWB websites, FWB
// phishing attacks (with the Section 3 evasion properties), the Section 5.5
// evasive variants, and self-hosted phishing sites. Generated pages are
// real HTML served over HTTP to the FreePhish crawler; their feature
// statistics are parameterized by the distributions the paper measured.
package webgen

// benignTopic is one template for an innocuous small-business/personal site.
type benignTopic struct {
	Title    string
	Sections []string
	Links    []string
}

// benignTopics is the content corpus for benign FWB sites: the small
// businesses, portfolios, clubs, and blogs that make up legitimate free
// websites. The variety matters — benign ground truth (4,656 URLs in the
// paper) must not be trivially separable by content length alone.
var benignTopics = []benignTopic{
	{
		Title: "Rosewood Bakery — Fresh Bread Daily",
		Sections: []string{
			"Welcome to Rosewood Bakery, a family-owned bakery serving the neighbourhood since 2009.",
			"Our sourdough is fermented for 36 hours and baked fresh every morning in our stone oven.",
			"Visit us at 12 Main Street, open Tuesday through Sunday from 7am to 3pm.",
			"We cater weddings, birthdays and office events. Ask about our seasonal pie menu.",
		},
		Links: []string{"/menu", "/about", "/contact", "/catering"},
	},
	{
		Title: "Sarah Chen Photography",
		Sections: []string{
			"Portrait and landscape photography based in the Pacific Northwest.",
			"I shoot weddings, graduations, and corporate headshots with natural light.",
			"Browse my latest gallery from the Olympic Peninsula coastal series.",
			"Prints available in multiple sizes, shipped framed or unframed worldwide.",
		},
		Links: []string{"/gallery", "/pricing", "/book", "/blog"},
	},
	{
		Title: "Maple Grove Community Garden",
		Sections: []string{
			"A volunteer-run community garden with 48 plots available to local residents.",
			"Plots are assigned each spring; the waiting list opens in February.",
			"Join our monthly work parties — tools and coffee provided.",
			"Read our composting guide and seasonal planting calendar.",
		},
		Links: []string{"/plots", "/calendar", "/volunteer", "/rules"},
	},
	{
		Title: "Hill Valley Chess Club",
		Sections: []string{
			"We meet every Thursday evening at the public library, all skill levels welcome.",
			"Annual club championship runs October through December with rated games.",
			"Beginner lessons start at 6pm before the main session.",
			"Membership is free for students and seniors.",
		},
		Links: []string{"/schedule", "/results", "/join", "/lessons"},
	},
	{
		Title: "Tidy Paws Dog Grooming",
		Sections: []string{
			"Professional grooming for dogs of all breeds and temperaments.",
			"Full groom includes bath, cut, nail trim, and ear cleaning.",
			"We use hypoallergenic shampoos and never cage-dry.",
			"Book online or call us — weekend slots fill fast.",
		},
		Links: []string{"/services", "/prices", "/book", "/faq"},
	},
	{
		Title: "Ramirez Home Renovations",
		Sections: []string{
			"Licensed and insured general contractor with 15 years of experience.",
			"Kitchens, bathrooms, decks, and full home remodels done on time and on budget.",
			"See before-and-after photos from our recent projects.",
			"Free estimates within the metro area.",
		},
		Links: []string{"/projects", "/testimonials", "/estimate", "/contact"},
	},
	{
		Title: "The Daily Crumb — A Baking Blog",
		Sections: []string{
			"Recipes, experiments, and occasional disasters from my home kitchen.",
			"This week: laminated dough for beginners, with step-by-step photos.",
			"My no-knead bread recipe has been made by over a thousand readers.",
			"Subscribe to get one new recipe in your inbox each Sunday.",
		},
		Links: []string{"/recipes", "/archive", "/about", "/subscribe"},
	},
	{
		Title: "Lakeside Yoga Studio",
		Sections: []string{
			"Vinyasa, yin, and restorative classes in a light-filled studio by the lake.",
			"New students: your first week of unlimited classes is free.",
			"Our teachers are certified with a minimum of 200 training hours.",
			"Private sessions and corporate wellness packages available.",
		},
		Links: []string{"/classes", "/teachers", "/pricing", "/workshops"},
	},
	{
		Title: "Northfield Robotics Team 4412",
		Sections: []string{
			"High-school robotics team competing in the regional engineering league.",
			"Our 2022 robot features a custom swerve drive and vision-guided intake.",
			"We mentor two middle-school teams and run summer coding camps.",
			"Sponsor us — your logo goes on the robot and the team shirts.",
		},
		Links: []string{"/robot", "/sponsors", "/outreach", "/media"},
	},
	{
		Title: "Casa Verde Plant Shop",
		Sections: []string{
			"Houseplants, pots, and soil mixes chosen for low-light apartments.",
			"New arrivals every Friday — follow us for restock announcements.",
			"Free repotting with any pot purchase.",
			"Plant care workshops on the first Saturday of each month.",
		},
		Links: []string{"/shop", "/care-guides", "/workshops", "/visit"},
	},
	{
		Title: "Overlook Trail Runners",
		Sections: []string{
			"A friendly trail running group covering the ridge network every weekend.",
			"Saturday long runs range from 10 to 30 kilometres with aid stops.",
			"We maintain a public map of trail conditions updated after storms.",
			"Annual relay fundraiser supports the park conservation fund.",
		},
		Links: []string{"/routes", "/calendar", "/join", "/relay"},
	},
	{
		Title: "Bluebird Music Lessons",
		Sections: []string{
			"Piano, guitar, and voice lessons for ages six and up.",
			"Recitals twice a year at the community hall — families welcome.",
			"Online lessons available with flexible scheduling.",
			"First trial lesson is half price.",
		},
		Links: []string{"/instruments", "/teachers", "/schedule", "/signup"},
	},
	{
		Title: "Harbor Lane Coffee Roasters",
		Sections: []string{
			"Small-batch coffee roasted twice weekly in our harbor-side shed.",
			"Single-origin beans from farms we visit ourselves every other year.",
			"Wholesale accounts welcome — ask about our café training program.",
			"Subscriptions ship on Mondays; first bag includes a brew guide.",
		},
		Links: []string{"/beans", "/subscribe", "/wholesale", "/visit"},
	},
	{
		Title: "Eastside Little League",
		Sections: []string{
			"Spring registration is open for players aged five through twelve.",
			"All coaches are background-checked volunteers certified this winter.",
			"Game schedules and rainout notices post here every Friday.",
			"Sponsor a team and get your banner on the outfield fence.",
		},
		Links: []string{"/register", "/schedule", "/fields", "/sponsors"},
	},
	{
		Title: "Miller & Sons Plumbing",
		Sections: []string{
			"Family plumbing business serving the county since 1987.",
			"Emergency call-outs answered around the clock, every day.",
			"Fixed-price water heater replacement with same-week installation.",
			"Ask about our annual maintenance plan for older homes.",
		},
		Links: []string{"/services", "/emergency", "/reviews", "/quote"},
	},
	{
		Title: "The Paper Crane Stationery",
		Sections: []string{
			"Hand-letterpressed cards and wedding invitation suites.",
			"Custom orders open the first week of each month.",
			"Visit our studio shop Thursday through Saturday.",
			"Workshops on bookbinding and calligraphy most weekends.",
		},
		Links: []string{"/shop", "/custom", "/workshops", "/studio"},
	},
	{
		Title: "Cedar Ridge Animal Rescue",
		Sections: []string{
			"We rehome around two hundred dogs and cats every year.",
			"All animals are vaccinated, chipped, and health-checked.",
			"Fosters urgently needed for large-breed dogs this season.",
			"Every donation goes directly to veterinary care and food.",
		},
		Links: []string{"/adopt", "/foster", "/donate", "/events"},
	},
	{
		Title: "Luna's Taquería",
		Sections: []string{
			"Tacos al pastor carved fresh from the trompo every evening.",
			"Tortillas pressed to order from locally milled masa.",
			"Catering trailer available for weddings and office parties.",
			"Tuesday special: three tacos and an agua fresca.",
		},
		Links: []string{"/menu", "/catering", "/hours", "/find-us"},
	},
	{
		Title: "Summit Peak Cycling Club",
		Sections: []string{
			"Weekly road and gravel rides for all paces, no-drop guaranteed.",
			"Our winter maintenance clinics teach you to true your own wheels.",
			"Club kit orders open twice a year — members only.",
			"The annual century ride raises funds for trail maintenance.",
		},
		Links: []string{"/rides", "/join", "/kit", "/century"},
	},
	{
		Title: "Willow Creek Pottery Studio",
		Sections: []string{
			"Open studio memberships with wheel and kiln access.",
			"Eight-week beginner courses start every season.",
			"Seconds sale each spring — imperfect pots at friendly prices.",
			"Commissions welcome for dinnerware sets and planters.",
		},
		Links: []string{"/classes", "/membership", "/gallery", "/commissions"},
	},
	{
		Title: "Bright Start Tutoring",
		Sections: []string{
			"One-on-one math and reading support for grades two through nine.",
			"All tutors are certified teachers or graduate students.",
			"Progress reports shared with families every four weeks.",
			"Scholarship places funded by our community partners.",
		},
		Links: []string{"/subjects", "/tutors", "/pricing", "/enroll"},
	},
	{
		Title: "Old Town Barbershop",
		Sections: []string{
			"Classic cuts, hot towel shaves, and a proper cup of coffee.",
			"Walk-ins welcome weekdays before noon.",
			"Loyalty card: the tenth cut is on the house.",
			"We sponsor the neighborhood clean-up every first Sunday.",
		},
		Links: []string{"/services", "/book", "/team", "/shop"},
	},
	{
		Title: "Fernwood Community Theater",
		Sections: []string{
			"Three productions a year, cast entirely from local volunteers.",
			"Auditions for the spring musical run the last week of January.",
			"Season tickets include priority seating and a program credit.",
			"Our youth workshop stages its own one-act festival in June.",
		},
		Links: []string{"/season", "/auditions", "/tickets", "/youth"},
	},
	{
		Title: "Kite & Anchor Guesthouse",
		Sections: []string{
			"Four quiet rooms above the bay, breakfast included.",
			"Bicycles and sea kayaks free for guests.",
			"Two-night minimum on summer weekends.",
			"Check our seasonal offers before booking elsewhere.",
		},
		Links: []string{"/rooms", "/rates", "/things-to-do", "/book"},
	},
}

// lureTexts are the social-media post templates that share phishing links.
var lureTexts = []string{
	"Your account has been limited. Verify now to avoid suspension: %URL%",
	"FINAL NOTICE: unusual sign-in detected on your account. Secure it here %URL%",
	"You have (1) package pending. Confirm delivery details: %URL%",
	"Claim your reward before it expires today! %URL%",
	"Payment declined — update your billing information at %URL%",
	"Security alert: confirm your identity within 24 hours %URL%",
	"Your subscription could not be renewed. Fix it now: %URL%",
	"Congratulations! You were selected for a gift card: %URL%",
	"Action required: your mailbox is almost full %URL%",
	"We noticed a login from a new device. Review activity: %URL%",
}

// benignPostTexts are innocuous posts that share benign FWB links.
var benignPostTexts = []string{
	"Check out my new website! %URL%",
	"Our schedule for next month is up: %URL%",
	"Proud to launch our little shop online %URL%",
	"New blog post is live — would love your feedback %URL%",
	"We moved our booking page here: %URL%",
	"Photos from the weekend are up! %URL%",
	"Sign-ups for the spring season are open %URL%",
	"Our menu got a refresh, have a look: %URL%",
}

// lureTextsIntl are non-English lure templates; a small share of phishing
// posts use them (the coders' language blind spot, §3).
var lureTextsIntl = []string{
	"Su cuenta ha sido limitada. Verifique ahora: %URL%",     // es
	"Confirme sus datos para evitar la suspensión: %URL%",    // es
	"Sua conta será bloqueada. Regularize agora: %URL%",      // pt
	"Votre compte a été suspendu. Vérifiez ici : %URL%",      // fr
	"Ihr Konto wurde eingeschränkt. Jetzt bestätigen: %URL%", // de
	"您的账户存在异常，请立即验证：%URL%",                                   // zh
	"アカウントが制限されました。今すぐ確認してください：%URL%",                        // ja
}

// slugWords builds random site slugs.
var slugWords = []string{
	"account", "verify", "secure", "support", "service", "update", "billing",
	"portal", "login", "auth", "center", "help", "online", "official", "app",
	"team", "info", "alert", "notice", "confirm", "id", "access", "client",
	"sunny", "blue", "green", "happy", "little", "grand", "fresh", "prime",
	"shop", "studio", "garden", "bakery", "craft", "photo", "music", "trail",
}
