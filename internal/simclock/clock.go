// Package simclock provides the discrete-event simulation substrate used by
// every FreePhish subsystem: a virtual clock, an event queue, and
// deterministic per-stream random number generators.
//
// The paper's measurement runs for six wall-clock months; with simclock the
// same study runs in seconds. All components take a *Clock instead of
// reading time.Now, so pipeline code is testable at any speed and the whole
// run is reproducible bit-for-bit from a single seed.
package simclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock driven by an event queue. The zero value is not
// usable; construct with New. Clock is safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	now    time.Time
	queue  eventQueue
	seq    uint64 // tie-breaker so equal-time events pop FIFO
	frozen bool
}

// New returns a Clock positioned at epoch.
func New(epoch time.Time) *Clock {
	return &Clock{now: epoch}
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Event is a scheduled callback. The callback runs with the clock set to the
// event's fire time and may schedule further events.
type Event struct {
	at   time.Time
	seq  uint64
	name string
	fn   func(now time.Time)
	idx  int
}

// At reports the event's scheduled fire time.
func (e *Event) At() time.Time { return e.at }

// Name reports the label the event was scheduled with.
func (e *Event) Name() string { return e.name }

// Schedule enqueues fn to run at t. Scheduling in the past (before Now)
// clamps to Now: the event fires on the next Run/Step without time going
// backwards. The returned Event can be used with Cancel.
func (c *Clock) Schedule(t time.Time, name string, fn func(now time.Time)) *Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		t = c.now
	}
	e := &Event{at: t, seq: c.seq, name: name, fn: fn}
	c.seq++
	heap.Push(&c.queue, e)
	return e
}

// After enqueues fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, name string, fn func(now time.Time)) *Event {
	return c.Schedule(c.Now().Add(d), name, fn)
}

// Every schedules fn to run at a fixed period, starting one period from now,
// until the returned stop function is called or the clock advances past
// until (if until is non-zero).
func (c *Clock) Every(period time.Duration, until time.Time, name string, fn func(now time.Time)) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive period %v for %q", period, name))
	}
	return c.EveryAt(c.Now().Add(period), period, until, name, fn)
}

// EveryAt is Every with an explicit first fire time: fn runs at the absolute
// instant first, then every period after that. Like Every's initial tick,
// the first tick fires unconditionally; only subsequent ticks are gated by
// until. Checkpoint resume uses this to re-enter a periodic schedule
// mid-flight — re-registering a monitor at its next original tick instant
// reproduces the uninterrupted run's tick sequence exactly.
func (c *Clock) EveryAt(first time.Time, period time.Duration, until time.Time, name string, fn func(now time.Time)) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive period %v for %q", period, name))
	}
	var (
		mu      sync.Mutex
		stopped bool
		pending *Event
	)
	var tick func(now time.Time)
	tick = func(now time.Time) {
		mu.Lock()
		if stopped {
			mu.Unlock()
			return
		}
		mu.Unlock()
		fn(now)
		next := now.Add(period)
		if !until.IsZero() && next.After(until) {
			return
		}
		mu.Lock()
		if !stopped {
			pending = c.Schedule(next, name, tick)
		}
		mu.Unlock()
	}
	mu.Lock()
	pending = c.Schedule(first, name, tick)
	mu.Unlock()
	return func() {
		mu.Lock()
		defer mu.Unlock()
		stopped = true
		if pending != nil {
			c.Cancel(pending)
		}
	}
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (c *Clock) Cancel(e *Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e == nil || e.idx < 0 || e.idx >= len(c.queue) || c.queue[e.idx] != e {
		return
	}
	heap.Remove(&c.queue, e.idx)
}

// Step fires the next pending event, advancing the clock to its time.
// It reports false when the queue is empty.
func (c *Clock) Step() bool {
	c.mu.Lock()
	if len(c.queue) == 0 {
		c.mu.Unlock()
		return false
	}
	e := heap.Pop(&c.queue).(*Event)
	c.now = e.at
	c.mu.Unlock()
	e.fn(e.at)
	return true
}

// StepUntil fires the next pending event if it is scheduled at or before t,
// advancing the clock to its time, and reports true. When the queue is
// empty or the next event is after t, it instead advances the clock to t
// (never backwards) and reports false. It is the single-step form of
// RunUntil, for drivers that need to re-check a condition between events —
// e.g. aborting a study the moment a poll cycle fails instead of ticking
// out the rest of the window.
func (c *Clock) StepUntil(t time.Time) bool {
	c.mu.Lock()
	if len(c.queue) == 0 || c.queue[0].at.After(t) {
		if t.After(c.now) {
			c.now = t
		}
		c.mu.Unlock()
		return false
	}
	e := heap.Pop(&c.queue).(*Event)
	c.now = e.at
	c.mu.Unlock()
	e.fn(e.at)
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// is after t, then sets the clock to t. It returns the number of events run.
func (c *Clock) RunUntil(t time.Time) int {
	n := 0
	for c.StepUntil(t) {
		n++
	}
	return n
}

// Run drains the entire event queue, returning the number of events run.
// Use RunUntil for workloads with self-perpetuating periodic events.
func (c *Clock) Run() int {
	n := 0
	for c.Step() {
		n++
	}
	return n
}

// NextAt reports the fire time of the earliest pending event, or false when
// the queue is empty. Checkpoint writers use it to confirm an instant is
// fully applied — no event still pending at the current time — before
// cutting, which makes every cut point an ordered-apply boundary.
func (c *Clock) NextAt() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return time.Time{}, false
	}
	return c.queue[0].at, true
}

// Pending reports the number of events currently queued.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}
