package simclock

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

func TestNowStartsAtEpoch(t *testing.T) {
	c := New(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), epoch)
	}
}

func TestScheduleFiresInTimeOrder(t *testing.T) {
	c := New(epoch)
	var got []int
	c.Schedule(epoch.Add(3*time.Hour), "c", func(time.Time) { got = append(got, 3) })
	c.Schedule(epoch.Add(1*time.Hour), "a", func(time.Time) { got = append(got, 1) })
	c.Schedule(epoch.Add(2*time.Hour), "b", func(time.Time) { got = append(got, 2) })
	if n := c.Run(); n != 3 {
		t.Fatalf("Run() = %d events, want 3", n)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("fire order %v, want [1 2 3]", got)
		}
	}
}

func TestEqualTimeEventsFireFIFO(t *testing.T) {
	c := New(epoch)
	at := epoch.Add(time.Hour)
	var got []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		c.Schedule(at, name, func(time.Time) { got = append(got, name) })
	}
	c.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	c := New(epoch)
	c.RunUntil(epoch.Add(time.Hour))
	fired := time.Time{}
	c.Schedule(epoch, "late", func(now time.Time) { fired = now })
	c.Run()
	if !fired.Equal(epoch.Add(time.Hour)) {
		t.Fatalf("past event fired at %v, want clamped to %v", fired, epoch.Add(time.Hour))
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	c := New(epoch)
	c.Schedule(epoch.Add(42*time.Minute), "x", func(now time.Time) {
		if !now.Equal(epoch.Add(42 * time.Minute)) {
			t.Errorf("callback now = %v", now)
		}
	})
	c.Step()
	if got := c.Now(); !got.Equal(epoch.Add(42 * time.Minute)) {
		t.Fatalf("Now() after Step = %v", got)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	c := New(epoch)
	var fired int
	for h := 1; h <= 10; h++ {
		c.Schedule(epoch.Add(time.Duration(h)*time.Hour), "e", func(time.Time) { fired++ })
	}
	n := c.RunUntil(epoch.Add(5 * time.Hour))
	if n != 5 || fired != 5 {
		t.Fatalf("RunUntil ran %d (fired %d), want 5", n, fired)
	}
	if !c.Now().Equal(epoch.Add(5 * time.Hour)) {
		t.Fatalf("Now() = %v, want boundary", c.Now())
	}
	if c.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", c.Pending())
	}
}

func TestRunUntilAdvancesPastEmptyQueue(t *testing.T) {
	c := New(epoch)
	end := epoch.Add(24 * time.Hour)
	c.RunUntil(end)
	if !c.Now().Equal(end) {
		t.Fatalf("Now() = %v, want %v", c.Now(), end)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New(epoch)
	fired := false
	e := c.Schedule(epoch.Add(time.Hour), "x", func(time.Time) { fired = true })
	c.Cancel(e)
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	c.Cancel(e) // double-cancel must be a no-op
}

func TestCancelMiddleOfHeap(t *testing.T) {
	c := New(epoch)
	var got []int
	events := make([]*Event, 5)
	for i := range events {
		i := i
		events[i] = c.Schedule(epoch.Add(time.Duration(i+1)*time.Hour), "e", func(time.Time) { got = append(got, i) })
	}
	c.Cancel(events[2])
	c.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestEveryTicksAtPeriod(t *testing.T) {
	c := New(epoch)
	var ticks []time.Time
	c.Every(10*time.Minute, epoch.Add(time.Hour), "tick", func(now time.Time) {
		ticks = append(ticks, now)
	})
	c.RunUntil(epoch.Add(2 * time.Hour))
	if len(ticks) != 6 {
		t.Fatalf("got %d ticks, want 6", len(ticks))
	}
	for i, tk := range ticks {
		want := epoch.Add(time.Duration(i+1) * 10 * time.Minute)
		if !tk.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestEveryStop(t *testing.T) {
	c := New(epoch)
	count := 0
	var stop func()
	stop = c.Every(10*time.Minute, time.Time{}, "tick", func(now time.Time) {
		count++
		if count == 3 {
			stop()
		}
	})
	c.RunUntil(epoch.Add(3 * time.Hour))
	if count != 3 {
		t.Fatalf("ticked %d times after stop, want 3", count)
	}
}

func TestEveryNonPositivePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(epoch).Every(0, time.Time{}, "bad", func(time.Time) {})
}

func TestEveryAtSeedsFirstTick(t *testing.T) {
	c := New(epoch)
	var ticks []time.Time
	// A schedule resumed mid-stream: first tick at an absolute instant,
	// later ticks at the period, bounded by until.
	first := epoch.Add(45 * time.Minute)
	c.EveryAt(first, 10*time.Minute, epoch.Add(time.Hour+5*time.Minute), "tick", func(now time.Time) {
		ticks = append(ticks, now)
	})
	c.RunUntil(epoch.Add(2 * time.Hour))
	want := []time.Time{first, first.Add(10 * time.Minute), first.Add(20 * time.Minute)}
	if len(ticks) != len(want) {
		t.Fatalf("got %d ticks %v, want %d", len(ticks), ticks, len(want))
	}
	for i := range want {
		if !ticks[i].Equal(want[i]) {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEveryAtFirstTickUnconditional(t *testing.T) {
	// Every's contract: the first tick fires even past until. EveryAt must
	// honor the same rule so a resumed schedule matches the original.
	c := New(epoch)
	var ticks int
	c.EveryAt(epoch.Add(2*time.Hour), time.Hour, epoch.Add(time.Hour), "tick", func(time.Time) {
		ticks++
	})
	c.RunUntil(epoch.Add(10 * time.Hour))
	if ticks != 1 {
		t.Fatalf("first tick past until fired %d times, want exactly 1", ticks)
	}
}

func TestEveryAtStopAndPanics(t *testing.T) {
	c := New(epoch)
	count := 0
	var stop func()
	stop = c.EveryAt(epoch.Add(time.Minute), time.Minute, time.Time{}, "tick", func(time.Time) {
		count++
		if count == 2 {
			stop()
		}
	})
	c.RunUntil(epoch.Add(time.Hour))
	if count != 2 {
		t.Fatalf("ticked %d times after stop, want 2", count)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive period")
		}
	}()
	c.EveryAt(epoch, 0, time.Time{}, "bad", func(time.Time) {})
}

func TestEveryMatchesEveryAtFromNow(t *testing.T) {
	// Every(period, ...) must be exactly EveryAt(now+period, ...): the
	// checkpoint/resume math relies on the two constructions producing the
	// same tick sequence.
	a, b := New(epoch), New(epoch)
	var ta, tb []time.Time
	until := epoch.Add(3 * time.Hour)
	a.Every(20*time.Minute, until, "tick", func(now time.Time) { ta = append(ta, now) })
	b.EveryAt(epoch.Add(20*time.Minute), 20*time.Minute, until, "tick", func(now time.Time) { tb = append(tb, now) })
	a.RunUntil(epoch.Add(4 * time.Hour))
	b.RunUntil(epoch.Add(4 * time.Hour))
	if len(ta) != len(tb) {
		t.Fatalf("Every fired %d, EveryAt fired %d", len(ta), len(tb))
	}
	for i := range ta {
		if !ta[i].Equal(tb[i]) {
			t.Fatalf("tick %d: Every at %v, EveryAt at %v", i, ta[i], tb[i])
		}
	}
}

func TestNextAt(t *testing.T) {
	c := New(epoch)
	if _, ok := c.NextAt(); ok {
		t.Fatal("NextAt reported an event on an empty queue")
	}
	c.Schedule(epoch.Add(2*time.Hour), "b", func(time.Time) {})
	c.Schedule(epoch.Add(1*time.Hour), "a", func(time.Time) {})
	at, ok := c.NextAt()
	if !ok || !at.Equal(epoch.Add(1*time.Hour)) {
		t.Fatalf("NextAt = %v, %v; want head of queue at +1h", at, ok)
	}
	c.Step()
	at, ok = c.NextAt()
	if !ok || !at.Equal(epoch.Add(2*time.Hour)) {
		t.Fatalf("NextAt after step = %v, %v; want +2h", at, ok)
	}
	c.Step()
	if _, ok := c.NextAt(); ok {
		t.Fatal("NextAt reported an event after draining")
	}
}

func TestRNGDeterministicPerName(t *testing.T) {
	a1 := NewRNG(7, "blocklist.gsb")
	a2 := NewRNG(7, "blocklist.gsb")
	b := NewRNG(7, "blocklist.phishtank")
	for i := 0; i < 100; i++ {
		x, y := a1.Float64(), a2.Float64()
		if x != y {
			t.Fatalf("same-name streams diverged at draw %d: %v != %v", i, x, y)
		}
		if x == b.Float64() && i > 10 {
			// a few collisions are possible but a long run of equality is not;
			// the check below handles the real assertion.
			continue
		}
	}
	// Distinct names must produce distinct streams.
	c1, c2 := NewRNG(7, "x"), NewRNG(7, "y")
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Int63() == c2.Int63() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("distinct-name streams are identical")
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1, "bool")
	for i := 0; i < 32; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestLogNormalMedianApprox(t *testing.T) {
	g := NewRNG(42, "lognorm")
	const n = 20001
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = g.LogNormal(6, 1.2)
	}
	sort.Float64s(draws)
	med := draws[n/2]
	if med < 5 || med > 7.2 {
		t.Fatalf("empirical median %v, want ≈6", med)
	}
	for _, d := range draws {
		if d <= 0 {
			t.Fatal("log-normal draw not positive")
		}
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(9, "poisson")
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		sum := 0
		const n = 5000
		for i := 0; i < n; i++ {
			sum += g.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.15*lambda+0.2 {
			t.Fatalf("Poisson(%v) empirical mean %v", lambda, mean)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(3, "zipf")
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[g.Zipf(10, 1.2)]++
	}
	if counts[0] <= counts[5] || counts[1] <= counts[9] {
		t.Fatalf("Zipf counts not skewed: %v", counts)
	}
}

func TestWeightedIndexRespectsWeights(t *testing.T) {
	g := NewRNG(5, "weighted")
	counts := make([]int, 3)
	for i := 0; i < 9000; i++ {
		counts[g.WeightedIndex([]float64{1, 0, 8})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	if counts[2] < 6*counts[0] {
		t.Fatalf("weights not respected: %v", counts)
	}
}

func TestWeightedIndexAllNonPositive(t *testing.T) {
	g := NewRNG(5, "weighted2")
	if got := g.WeightedIndex([]float64{0, -1, 0}); got != 0 {
		t.Fatalf("WeightedIndex with no mass = %d, want 0", got)
	}
}

// Property: for any batch of scheduled offsets, events fire in sorted order
// and the clock never moves backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		if len(offsets) > 200 {
			offsets = offsets[:200]
		}
		c := New(epoch)
		var fired []time.Time
		for _, off := range offsets {
			at := epoch.Add(time.Duration(off) * time.Second)
			c.Schedule(at, "p", func(now time.Time) { fired = append(fired, now) })
		}
		c.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Zipf and WeightedIndex always return in-range indices.
func TestPropertyDrawsInRange(t *testing.T) {
	g := NewRNG(11, "prop")
	f := func(n uint8, s uint8) bool {
		size := int(n%50) + 1
		idx := g.Zipf(size, float64(s%30)/10+0.1)
		if idx < 0 || idx >= size {
			return false
		}
		w := make([]float64, size)
		for i := range w {
			w[i] = g.Float64()
		}
		idx = g.WeightedIndex(w)
		return idx >= 0 && idx < size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEventAccessors(t *testing.T) {
	c := New(epoch)
	e := c.Schedule(epoch.Add(time.Hour), "my-event", func(time.Time) {})
	if !e.At().Equal(epoch.Add(time.Hour)) || e.Name() != "my-event" {
		t.Fatalf("accessors: %v %q", e.At(), e.Name())
	}
}

func TestRNGIntnAndExp(t *testing.T) {
	g := NewRNG(5, "intn")
	for i := 0; i < 100; i++ {
		if v := g.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := g.ExpFloat64(); v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
	}
}

func TestRNGShuffleAndPerm(t *testing.T) {
	g := NewRNG(5, "shuffle")
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatal("shuffle lost elements")
	}
	p := g.Perm(6)
	if len(p) != 6 {
		t.Fatalf("perm len = %d", len(p))
	}
	seenP := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= 6 || seenP[v] {
			t.Fatalf("perm invalid: %v", p)
		}
		seenP[v] = true
	}
}

func TestStepUntil(t *testing.T) {
	c := New(epoch)
	var fired []string
	c.Schedule(epoch.Add(1*time.Hour), "a", func(time.Time) { fired = append(fired, "a") })
	c.Schedule(epoch.Add(3*time.Hour), "b", func(time.Time) { fired = append(fired, "b") })

	// The first event is within the horizon: it fires and the clock lands
	// on its time.
	if !c.StepUntil(epoch.Add(2 * time.Hour)) {
		t.Fatal("StepUntil skipped an in-horizon event")
	}
	if len(fired) != 1 || fired[0] != "a" || !c.Now().Equal(epoch.Add(1*time.Hour)) {
		t.Fatalf("after first step: fired=%v now=%v", fired, c.Now())
	}
	// The next event is beyond the horizon: nothing fires, the clock
	// advances to the horizon, and the event stays queued.
	if c.StepUntil(epoch.Add(2 * time.Hour)) {
		t.Fatal("StepUntil fired an event beyond the horizon")
	}
	if len(fired) != 1 || !c.Now().Equal(epoch.Add(2*time.Hour)) || c.Pending() != 1 {
		t.Fatalf("after horizon step: fired=%v now=%v pending=%d", fired, c.Now(), c.Pending())
	}
	// A horizon in the past never rewinds the clock.
	if c.StepUntil(epoch) {
		t.Fatal("StepUntil fired with a past horizon")
	}
	if !c.Now().Equal(epoch.Add(2 * time.Hour)) {
		t.Fatalf("clock rewound to %v", c.Now())
	}
	// Raising the horizon drains the rest.
	if !c.StepUntil(epoch.Add(4*time.Hour)) || len(fired) != 2 || fired[1] != "b" {
		t.Fatalf("final step: fired=%v", fired)
	}
	if c.StepUntil(epoch.Add(4 * time.Hour)) {
		t.Fatal("StepUntil reported an event on an empty queue")
	}
	if !c.Now().Equal(epoch.Add(4 * time.Hour)) {
		t.Fatalf("empty-queue step left clock at %v", c.Now())
	}
}
