package simclock

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
)

// RNG is a named, deterministic random stream. Every stochastic component
// derives its stream from the run seed plus a stable name, so adding a new
// component never perturbs the draws of existing ones.
type RNG struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewRNG derives a stream from seed and a stable name.
func NewRNG(seed int64, name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &RNG{r: rand.New(rand.NewSource(seed ^ int64(h.Sum64())))}
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64()
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Intn(n)
}

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Int63()
}

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.NormFloat64()
}

// ExpFloat64 returns an exponential draw with rate 1.
func (g *RNG) ExpFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.ExpFloat64()
}

// Bool returns true with probability p (clamped to [0, 1]).
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.Float64() < p
}

// LogNormal returns a draw from a log-normal distribution parameterized by
// the median of the distribution and sigma of the underlying normal. This is
// the canonical response-time model for anti-phishing entities: long right
// tail, strictly positive.
func (g *RNG) LogNormal(median, sigma float64) float64 {
	return median * math.Exp(sigma*g.NormFloat64())
}

// Poisson returns a draw from a Poisson distribution with mean lambda,
// using Knuth's method for small lambda and a normal approximation above 30.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*g.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws an index in [0, n) with probability proportional to
// 1/(i+1)^s. It is used for brand-targeting and FWB-adoption skew: a few
// brands/services absorb most attacks, matching Figure 5 and Table 4.
func (g *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("simclock: Zipf with n <= 0")
	}
	// Inverse-CDF over the normalized harmonic weights. n is small (tens to
	// hundreds) everywhere this is used, so the linear scan is fine.
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
	}
	u := g.Float64() * total
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += math.Pow(float64(i+1), -s)
		if u < acc {
			return i
		}
	}
	return n - 1
}

// WeightedIndex draws an index with probability proportional to weights[i].
// Zero or negative weights contribute nothing; if all weights are
// non-positive it returns 0.
func (g *RNG) WeightedIndex(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	u := g.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n indices, calling swap as rand.Shuffle does.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.r.Shuffle(n, swap)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Perm(n)
}
