// Package ctlog models SSL certificates and the Certificate Transparency
// log network. Section 3 of the paper identifies CT-log invisibility as a
// core FWB evasion property: every site created on an FWB inherits the
// service's own (wildcard, EV/OV) certificate, so no new certificate is
// ever issued and the site never appears in CT logs — starving the
// CT-based discovery channel that several anti-phishing crawlers rely on.
// Self-hosted phishing sites, by contrast, obtain fresh DV certificates
// (Let's Encrypt / ZeroSSL) that do appear.
package ctlog

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// ValidationType is the certificate validation class.
type ValidationType string

// Validation classes, in increasing order of perceived trust.
const (
	DV ValidationType = "DV" // domain validation: free, instant, 90-day
	OV ValidationType = "OV" // organization validation
	EV ValidationType = "EV" // extended validation
)

// Certificate is a simplified X.509 certificate.
type Certificate struct {
	CommonName   string // e.g. *.weebly.com
	Organization string
	Type         ValidationType
	Issued       time.Time
	Expires      time.Time
	Fingerprint  string // SHA-256 over the identifying fields
}

// NewCertificate constructs a certificate with a deterministic fingerprint.
func NewCertificate(commonName, org string, typ ValidationType, issued time.Time, validity time.Duration) Certificate {
	c := Certificate{
		CommonName:   strings.ToLower(commonName),
		Organization: org,
		Type:         typ,
		Issued:       issued,
		Expires:      issued.Add(validity),
	}
	sum := sha256.Sum256([]byte(c.CommonName + "|" + c.Organization + "|" + string(c.Type) + "|" + issued.UTC().Format(time.RFC3339)))
	c.Fingerprint = hex.EncodeToString(sum[:])
	return c
}

// Covers reports whether the certificate is valid for host: exact match or
// a single-level wildcard (*.example.com covers a.example.com but not
// a.b.example.com), matching real TLS hostname verification.
func (c Certificate) Covers(host string) bool {
	host = strings.ToLower(host)
	if c.CommonName == host {
		return true
	}
	if rest, ok := strings.CutPrefix(c.CommonName, "*."); ok {
		if label, remainder, found := strings.Cut(host, "."); found && label != "" && remainder == rest {
			return true
		}
	}
	return false
}

// Entry is one CT-log entry: a newly issued certificate and its log time.
type Entry struct {
	Cert     Certificate
	LoggedAt time.Time
	Index    int
}

// Log is an append-only certificate transparency log. The zero value is
// ready to use. Log is safe for concurrent use.
type Log struct {
	mu      sync.RWMutex
	entries []Entry
}

// Append records a newly issued certificate. FWB-hosted sites never call
// this (they inherit the service certificate); self-hosted sites do.
func (l *Log) Append(cert Certificate, at time.Time) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{Cert: cert, LoggedAt: at, Index: len(l.entries)}
	l.entries = append(l.entries, e)
	return e
}

// Since returns entries with index >= fromIndex, the primitive CT-watching
// crawlers poll with.
func (l *Log) Since(fromIndex int) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if fromIndex < 0 {
		fromIndex = 0
	}
	if fromIndex >= len(l.entries) {
		return nil
	}
	out := make([]Entry, len(l.entries)-fromIndex)
	copy(out, l.entries[fromIndex:])
	return out
}

// Len reports the number of log entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// ContainsHost reports whether any logged certificate covers host — the
// question a CT-based phishing hunter effectively asks.
func (l *Log) ContainsHost(host string) bool {
	return l.ContainsHostSince(host, time.Time{})
}

// ContainsHostSince reports whether a certificate covering host was LOGGED
// at or after since. This is the question a CT *watcher* asks: it streams
// new entries, so a years-old wildcard certificate (the FWB shared cert)
// never surfaces a newly created subdomain site — the Section 3
// CT-invisibility mechanism.
func (l *Log) ContainsHostSince(host string, since time.Time) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, e := range l.entries {
		if !e.LoggedAt.Before(since) && e.Cert.Covers(host) {
			return true
		}
	}
	return false
}
