package ctlog

import (
	"testing"
	"time"
)

var now = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

func TestCertificateFingerprintDeterministic(t *testing.T) {
	a := NewCertificate("*.weebly.com", "Weebly Inc", OV, now, 365*24*time.Hour)
	b := NewCertificate("*.weebly.com", "Weebly Inc", OV, now, 365*24*time.Hour)
	if a.Fingerprint != b.Fingerprint || a.Fingerprint == "" {
		t.Fatalf("fingerprints differ or empty: %q vs %q", a.Fingerprint, b.Fingerprint)
	}
	c := NewCertificate("*.wix.com", "Wix", OV, now, 365*24*time.Hour)
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("distinct certs share a fingerprint")
	}
}

func TestCoversWildcard(t *testing.T) {
	cert := NewCertificate("*.weebly.com", "Weebly", OV, now, time.Hour)
	cases := []struct {
		host string
		want bool
	}{
		{"shop.weebly.com", true},
		{"SHOP.weebly.com", true},
		{"weebly.com", false},         // wildcard does not cover the apex
		{"a.b.weebly.com", false},     // single level only
		{"shop.wix.com", false},       // different domain
		{"evilweebly.com", false},     // suffix trick
		{"shop.notweebly.com", false}, // suffix trick with subdomain
	}
	for _, c := range cases {
		if got := cert.Covers(c.host); got != c.want {
			t.Errorf("Covers(%q) = %v, want %v", c.host, got, c.want)
		}
	}
}

func TestCoversExact(t *testing.T) {
	cert := NewCertificate("login.example.com", "Ex", DV, now, time.Hour)
	if !cert.Covers("login.example.com") {
		t.Fatal("exact host not covered")
	}
	if cert.Covers("other.example.com") {
		t.Fatal("non-matching host covered")
	}
}

func TestSharedFWBCertMatchesPaperExample(t *testing.T) {
	// Figure 3: a phishing site on Google Sites shares its certificate with
	// YouTube — one Google cert covering many properties. Model: one cert,
	// identical fingerprint for both hosts.
	cert := NewCertificate("*.google.com", "Google LLC", OV, now, 365*24*time.Hour)
	if !cert.Covers("sites.google.com") {
		t.Fatal("cert should cover sites.google.com")
	}
	// Same certificate object ⇒ same fingerprint, issue and expiry dates,
	// the exact invariant the paper screenshots.
}

func TestLogAppendAndSince(t *testing.T) {
	var l Log
	for i := 0; i < 5; i++ {
		cert := NewCertificate("phish"+string(rune('a'+i))+".xyz", "", DV, now, time.Hour)
		e := l.Append(cert, now.Add(time.Duration(i)*time.Minute))
		if e.Index != i {
			t.Fatalf("entry index = %d, want %d", e.Index, i)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	tail := l.Since(3)
	if len(tail) != 2 || tail[0].Index != 3 {
		t.Fatalf("Since(3) = %+v", tail)
	}
	if got := l.Since(99); got != nil {
		t.Fatalf("Since beyond end = %v, want nil", got)
	}
	if got := l.Since(-4); len(got) != 5 {
		t.Fatalf("Since(-4) = %d entries, want all 5", len(got))
	}
}

func TestContainsHost(t *testing.T) {
	var l Log
	l.Append(NewCertificate("evil-login.xyz", "", DV, now, time.Hour), now)
	if !l.ContainsHost("evil-login.xyz") {
		t.Fatal("logged host not found")
	}
	// The FWB evasion property: a site on weebly.com was never individually
	// logged, so a CT-watching hunter cannot discover it.
	if l.ContainsHost("phish.weebly.com") {
		t.Fatal("unlogged FWB site should be invisible")
	}
}
