package textsim

import "sort"

// SiteSimilarity implements the Appendix A algorithm for computing the code
// similarity between two websites, given their extracted tag elements.
//
// For every tag T in site A, the best match in site B is the tag with the
// lowest Levenshtein distance; that distance is normalized into a similarity
// against T. simAtoB is the median of those per-tag best similarities, and
// the final score is mean(simAtoB, simBtoA). The paper reports this score as
// a percentage (Table 1); this function returns it in [0, 1].
//
// Both sides empty yields 1 (identical emptiness); exactly one side empty
// yields 0.
func SiteSimilarity(tagsA, tagsB []string) float64 {
	switch {
	case len(tagsA) == 0 && len(tagsB) == 0:
		return 1
	case len(tagsA) == 0 || len(tagsB) == 0:
		return 0
	}
	ab := directionalSimilarity(tagsA, tagsB)
	ba := directionalSimilarity(tagsB, tagsA)
	return (ab + ba) / 2
}

// directionalSimilarity returns the median over tags t in from of the best
// normalized similarity of t to any tag in to.
func directionalSimilarity(from, to []string) float64 {
	best := make([]float64, len(from))
	toRunes := make([][]rune, len(to))
	for i, t := range to {
		toRunes[i] = []rune(t)
	}
	for i, t := range from {
		rt := []rune(t)
		bestSim := 0.0
		for _, rb := range toRunes {
			maxLen := len(rt)
			if len(rb) > maxLen {
				maxLen = len(rb)
			}
			var sim float64
			if maxLen == 0 {
				sim = 1
			} else {
				sim = 1 - float64(levenshteinRunes(rt, rb))/float64(maxLen)
			}
			if sim > bestSim {
				bestSim = sim
				if bestSim == 1 {
					break
				}
			}
		}
		best[i] = bestSim
	}
	return Median(best)
}

// Median returns the median of xs, interpolating between the two middle
// values for even lengths. It returns 0 for an empty slice and does not
// modify its argument.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
