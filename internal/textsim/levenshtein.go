// Package textsim implements the text-similarity primitives FreePhish uses
// to characterize FWB websites: Levenshtein edit distance and the paper's
// Appendix A tag-wise website-similarity measure (Table 1).
package textsim

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions, and substitutions that transform a
// into b. It runs in O(len(a)*len(b)) time and O(min) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	return levenshteinRunes(ra, rb)
}

func levenshteinRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the shorter string on the row axis for O(min(m,n)) memory.
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			ins := cur[j-1] + 1
			del := prev[j] + 1
			sub := prev[j-1] + cost
			m := ins
			if del < m {
				m = del
			}
			if sub < m {
				m = sub
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Similarity returns a normalized similarity in [0, 1]:
// 1 - Levenshtein(a, b) / max(len(a), len(b)). Two empty strings are
// perfectly similar.
func Similarity(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	maxLen := len(ra)
	if len(rb) > maxLen {
		maxLen = len(rb)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(levenshteinRunes(ra, rb))/float64(maxLen)
}
