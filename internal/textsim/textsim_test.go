package textsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"saturday", "sunday", 3},
		{"a", "b", 1},
		{"login", "log1n", 1},
		{"paypal", "paypa1", 1},
		{"héllo", "hello", 1}, // multi-byte rune counts as one edit
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilarityKnownValues(t *testing.T) {
	if got := Similarity("", ""); got != 1 {
		t.Errorf("Similarity of empties = %v, want 1", got)
	}
	if got := Similarity("abcd", "abcd"); got != 1 {
		t.Errorf("identical Similarity = %v, want 1", got)
	}
	if got := Similarity("abcd", "wxyz"); got != 0 {
		t.Errorf("disjoint Similarity = %v, want 0", got)
	}
	if got := Similarity("abcd", "abce"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Similarity = %v, want 0.75", got)
	}
}

func TestPropertyLevenshteinMetricAxioms(t *testing.T) {
	trim := func(s string) string {
		if len(s) > 40 {
			return s[:40]
		}
		return s
	}
	symmetry := func(a, b string) bool {
		a, b = trim(a), trim(b)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	identity := func(a string) bool {
		a = trim(a)
		return Levenshtein(a, a) == 0
	}
	triangle := func(a, b, c string) bool {
		a, b, c = trim(a), trim(b), trim(c)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	bound := func(a, b string) bool {
		a, b = trim(a), trim(b)
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		maxLen, diff := la, la-lb
		if lb > maxLen {
			maxLen = lb
		}
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= maxLen
	}
	for name, f := range map[string]any{
		"symmetry": symmetry, "identity": identity, "triangle": triangle, "bound": bound,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPropertySimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 60 {
			a = a[:60]
		}
		if len(b) > 60 {
			b = b[:60]
		}
		s := Similarity(a, b)
		return s >= 0 && s <= 1 && Similarity(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSiteSimilarityIdenticalSites(t *testing.T) {
	tags := []string{"<div class=\"hero\">", "<input type=\"password\">", "<footer>"}
	if got := SiteSimilarity(tags, tags); got != 1 {
		t.Fatalf("identical sites similarity = %v, want 1", got)
	}
}

func TestSiteSimilarityEmptySides(t *testing.T) {
	if got := SiteSimilarity(nil, nil); got != 1 {
		t.Fatalf("both empty = %v, want 1", got)
	}
	if got := SiteSimilarity([]string{"<div>"}, nil); got != 0 {
		t.Fatalf("one empty = %v, want 0", got)
	}
}

func TestSiteSimilaritySharedTemplateScoresHigh(t *testing.T) {
	// Two sites built on the same template differ only in content strings —
	// the situation Table 1 measures for Weebly (79.4% median similarity).
	siteA := []string{
		`<div class="wsite-header">`,
		`<div class="wsite-section-content">Welcome to my bakery</div>`,
		`<form class="wsite-form" action="/submit">`,
		`<input type="text" name="email">`,
		`<div class="weebly-footer">Powered by Weebly</div>`,
	}
	siteB := []string{
		`<div class="wsite-header">`,
		`<div class="wsite-section-content">Sign in to your account</div>`,
		`<form class="wsite-form" action="/login">`,
		`<input type="password" name="pass">`,
		`<div class="weebly-footer">Powered by Weebly</div>`,
	}
	siteC := []string{ // hand-coded site, unrelated structure
		`<table border="1"><tr><td>`,
		`<marquee>WELCOME</marquee>`,
		`<font size="7">click here</font>`,
	}
	same := SiteSimilarity(siteA, siteB)
	diff := SiteSimilarity(siteA, siteC)
	if same < 0.6 {
		t.Fatalf("shared-template similarity = %v, want > 0.6", same)
	}
	if diff >= same {
		t.Fatalf("unrelated similarity %v >= template similarity %v", diff, same)
	}
}

func TestPropertySiteSimilaritySymmetricAndBounded(t *testing.T) {
	f := func(a, b []string) bool {
		if len(a) > 8 {
			a = a[:8]
		}
		if len(b) > 8 {
			b = b[:8]
		}
		for i := range a {
			if len(a[i]) > 30 {
				a[i] = a[i][:30]
			}
		}
		for i := range b {
			if len(b[i]) > 30 {
				b[i] = b[i][:30]
			}
		}
		ab := SiteSimilarity(a, b)
		ba := SiteSimilarity(b, a)
		return math.Abs(ab-ba) < 1e-12 && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func BenchmarkLevenshteinHTMLTags(b *testing.B) {
	a := `<div class="wsite-section-content" style="padding:12px">Welcome to our online store front</div>`
	c := `<div class="wsite-section-content" style="padding:16px">Sign in to continue to your account</div>`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein(a, c)
	}
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1 := Percentile(raw, p1)
		v2 := Percentile(raw, p2)
		lo := Percentile(raw, 0)
		hi := Percentile(raw, 100)
		return v1 <= v2+1e-9 && v1 >= lo-1e-9 && v2 <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
