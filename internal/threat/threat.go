// Package threat defines the Target type: everything the anti-phishing
// ecosystem can observe about one shared URL. The blocklist, browser-tool,
// platform, and hosting-response simulations all assess Targets; the
// FreePhish analysis module aggregates their verdicts into the paper's
// tables and figures.
package threat

import (
	"strings"
	"time"

	"freephish/internal/ctlog"
	"freephish/internal/fwb"
	"freephish/internal/htmlx"
	"freephish/internal/simclock"
	"freephish/internal/urlx"
	"freephish/internal/whois"
)

// Platform identifies the social network a URL was shared on.
type Platform string

// The two platforms the paper streams from.
const (
	Twitter  Platform = "twitter"
	Facebook Platform = "facebook"
)

// FWBIndexedRate is the fraction of FWB URLs indexed by search engines
// (Section 3: only 4.1% of the 25.2K historical FWB URLs were indexed).
const FWBIndexedRate = 0.041

// SelfHostedIndexedRate is the corresponding rate for self-hosted phishing
// sites, which acquire incoming links from spam campaigns.
const SelfHostedIndexedRate = 0.45

// Target is one URL under longitudinal observation.
type Target struct {
	URL      string
	Site     *fwb.Site
	Service  *fwb.Service // nil for self-hosted
	Kind     fwb.SiteKind
	Brand    string
	SharedAt time.Time
	Platform Platform
	PostID   string

	// Signals visible to detectors, derived from the crawled page and the
	// registrar/CT infrastructure — the Section 3 evasion properties.
	HasCredentialFields bool
	Noindex             bool
	BannerObfuscated    bool
	HiddenIFrame        bool
	DriveByDownload     bool
	TwoStepLink         bool
	DomainAge           time.Duration
	CertType            ctlog.ValidationType
	InCTLog             bool
	SearchIndexed       bool
	TLS                 bool
}

// IsFWB reports whether the target is hosted on a free website builder.
func (t *Target) IsFWB() bool { return t.Service != nil }

// Evasive reports whether the target is one of the §5.5 credential-less
// variants.
func (t *Target) Evasive() bool {
	return t.TwoStepLink || t.HiddenIFrame || t.DriveByDownload
}

// Derive builds a Target from a hosted site and its share event, consulting
// WHOIS and the CT log exactly as an external observer would. rng decides
// the search-indexing lottery (incoming links are outside the page's
// control).
func Derive(site *fwb.Site, sharedAt time.Time, platform Platform, postID string,
	db *whois.DB, ct *ctlog.Log, rng *simclock.RNG) *Target {
	return DeriveFromPage(site, site.HTML, sharedAt, platform, postID, db, ct, rng)
}

// DeriveFromPage is Derive with the page content supplied explicitly — the
// crawler path, where the analyzed HTML is the crawled snapshot rather than
// the site's stored body.
func DeriveFromPage(site *fwb.Site, html string, sharedAt time.Time, platform Platform, postID string,
	db *whois.DB, ct *ctlog.Log, rng *simclock.RNG) *Target {

	t := &Target{
		URL:      site.URL,
		Site:     site,
		Service:  site.Service,
		Kind:     site.Kind,
		Brand:    site.Brand,
		SharedAt: sharedAt,
		Platform: platform,
		PostID:   postID,
		TLS:      strings.HasPrefix(site.URL, "https://"),
	}
	analyzePage(t, html)

	if u, err := urlx.Parse(site.URL); err == nil {
		if db != nil {
			if age, err := db.AgeAt(u.Host, sharedAt); err == nil {
				t.DomainAge = age
			}
		}
		if ct != nil {
			// A CT watcher streams new entries, so only certificates logged
			// around site creation make the site discoverable. FWB sites
			// inherit the service's old wildcard cert — no new entry, no
			// discovery (§3).
			t.InCTLog = ct.ContainsHostSince(u.Host, site.Created.Add(-48*time.Hour))
		}
	}
	if site.Service != nil {
		t.CertType = site.Service.CertType
	} else if t.TLS {
		t.CertType = ctlog.DV
	}
	if rng != nil {
		rate := SelfHostedIndexedRate
		if t.IsFWB() {
			rate = FWBIndexedRate
		}
		t.SearchIndexed = !t.Noindex && rng.Bool(rate)
	}
	return t
}

// analyzePage derives the page-content signals by parsing the HTML — the
// same heuristics the FreePhish qualitative analysis automated (§5.5).
func analyzePage(t *Target, html string) {
	doc := htmlx.Parse(html)
	for _, in := range doc.FindAll("input") {
		switch in.AttrOr("type", "text") {
		case "password", "email":
			t.HasCredentialFields = true
		}
	}
	for _, m := range doc.FindAll("meta") {
		if strings.EqualFold(m.AttrOr("name", ""), "robots") &&
			strings.Contains(strings.ToLower(m.AttrOr("content", "")), "noindex") {
			t.Noindex = true
		}
	}
	host := ""
	if u, err := urlx.Parse(t.URL); err == nil {
		host = u.Host
	}
	for _, f := range doc.FindAll("iframe") {
		src := f.AttrOr("src", "")
		if isExternal(src, host) {
			t.HiddenIFrame = true
		}
	}
	for _, a := range doc.FindAll("a") {
		href := a.AttrOr("href", "")
		if _, dl := a.Attr("download"); dl || hasDangerousExt(href) {
			t.DriveByDownload = true
		}
		if a.Find("button") != nil && isExternal(href, host) {
			t.TwoStepLink = true
		}
	}
	for _, n := range doc.FindAllFunc(func(n *htmlx.Node) bool { return n.HasHiddenStyle() }) {
		idc := strings.ToLower(n.AttrOr("id", "") + " " + n.AttrOr("class", ""))
		for _, marker := range []string{"banner", "footer", "badge", "branding", "attribution"} {
			if strings.Contains(idc, marker) {
				t.BannerObfuscated = true
			}
		}
	}
}

func isExternal(href, host string) bool {
	if !strings.HasPrefix(href, "http://") && !strings.HasPrefix(href, "https://") {
		return false
	}
	hp, err := urlx.Parse(href)
	return err == nil && hp.Host != host && hp.Host != ""
}

func hasDangerousExt(href string) bool {
	h := strings.ToLower(href)
	for _, ext := range []string{".exe", ".scr", ".apk", ".msi", ".bat"} {
		if strings.HasSuffix(h, ext) {
			return true
		}
	}
	return false
}
