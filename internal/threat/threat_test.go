package threat

import (
	"fmt"
	"testing"
	"time"

	"freephish/internal/ctlog"
	"freephish/internal/fwb"
	"freephish/internal/simclock"
	"freephish/internal/webgen"
	"freephish/internal/whois"
)

var epoch = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

func world(seed int64) (*webgen.Generator, *whois.DB, *ctlog.Log, *simclock.RNG) {
	var db whois.DB
	var ct ctlog.Log
	g := webgen.NewGenerator(seed, &db, &ct)
	g.RegisterInfrastructure(epoch)
	return g, &db, &ct, simclock.NewRNG(seed, "threat.test")
}

func TestDeriveFWBTarget(t *testing.T) {
	g, db, ct, rng := world(3)
	svc, _ := fwb.ByKey("weebly")
	site := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, epoch)
	tg := Derive(site, epoch, Twitter, "p1", db, ct, rng)

	if !tg.IsFWB() || tg.Service != svc {
		t.Fatalf("target service = %v", tg.Service)
	}
	if !tg.HasCredentialFields {
		t.Error("credential fields not detected")
	}
	if tg.Evasive() {
		t.Error("regular phishing flagged evasive")
	}
	if tg.InCTLog {
		t.Error("FWB site visible in CT log — §3 invisibility broken")
	}
	if tg.CertType != svc.CertType {
		t.Errorf("cert type = %v, want service's %v", tg.CertType, svc.CertType)
	}
	if years := tg.DomainAge.Hours() / 24 / 365; years < 10 {
		t.Errorf("domain age = %.1f years, want Weebly's 16", years)
	}
	if !tg.TLS {
		t.Error("FWB site must be https")
	}
}

func TestDeriveSelfHostedTarget(t *testing.T) {
	g, db, ct, rng := world(5)
	nCT, nTLS := 0, 0
	for i := 0; i < 120; i++ {
		site := g.SelfHostedPhishing(epoch)
		tg := Derive(site, epoch, Facebook, fmt.Sprintf("p%d", i), db, ct, rng)
		if tg.IsFWB() {
			t.Fatal("self-hosted target identified as FWB")
		}
		if days := tg.DomainAge.Hours() / 24; days > 500 {
			t.Errorf("self-hosted domain age = %.0f days", days)
		}
		if tg.TLS {
			nTLS++
			if tg.CertType != ctlog.DV {
				t.Errorf("self-hosted TLS cert = %v, want DV", tg.CertType)
			}
		}
		if tg.InCTLog {
			nCT++
			if !tg.TLS {
				t.Error("non-TLS site in CT log")
			}
		}
	}
	if nCT == 0 {
		t.Fatal("no self-hosted site visible in CT — discovery channel dead")
	}
	if nTLS < 40 {
		t.Fatalf("TLS count = %d", nTLS)
	}
}

func TestDeriveEvasiveVariants(t *testing.T) {
	g, db, ct, rng := world(7)
	gs, _ := fwb.ByKey("googlesites")
	cases := []struct {
		kind  fwb.SiteKind
		check func(*Target) bool
		name  string
	}{
		{fwb.KindTwoStep, func(tg *Target) bool { return tg.TwoStepLink }, "two-step"},
		{fwb.KindIFrameEmbed, func(tg *Target) bool { return tg.HiddenIFrame }, "iframe"},
		{fwb.KindDriveByDL, func(tg *Target) bool { return tg.DriveByDownload }, "drive-by"},
	}
	for _, c := range cases {
		site := g.PhishingFWBSiteOf(gs, c.kind, epoch)
		tg := Derive(site, epoch, Twitter, "p", db, ct, rng)
		if !c.check(tg) {
			t.Errorf("%s signal not derived from page content", c.name)
		}
		if !tg.Evasive() {
			t.Errorf("%s target not Evasive()", c.name)
		}
		if tg.HasCredentialFields {
			t.Errorf("%s target has credential fields", c.name)
		}
	}
}

func TestDeriveNoindexAndBannerRates(t *testing.T) {
	g, db, ct, rng := world(9)
	svc, _ := fwb.ByKey("wix")
	noindex, banner, indexed := 0, 0, 0
	const n = 500
	for i := 0; i < n; i++ {
		site := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, epoch)
		tg := Derive(site, epoch, Twitter, "p", db, ct, rng)
		if tg.Noindex {
			noindex++
			if tg.SearchIndexed {
				t.Fatal("noindex page marked search-indexed")
			}
		}
		if tg.BannerObfuscated {
			banner++
		}
		if tg.SearchIndexed {
			indexed++
		}
	}
	if f := float64(noindex) / n; f < 0.35 || f > 0.55 {
		t.Errorf("noindex rate = %.2f, want ≈0.447", f)
	}
	if f := float64(banner) / n; f < 0.42 || f > 0.62 {
		t.Errorf("banner obfuscation rate = %.2f, want ≈0.52", f)
	}
	if f := float64(indexed) / n; f > 0.08 {
		t.Errorf("FWB indexed rate = %.2f, want ≈0.041 x (1-noindex)", f)
	}
}

func TestDeriveBenignSiteMostlyCleanSignals(t *testing.T) {
	g, db, ct, rng := world(11)
	site := g.BenignFWBSite(g.PickServiceUniform(), epoch)
	tg := Derive(site, epoch, Twitter, "p", db, ct, rng)
	if tg.TwoStepLink || tg.DriveByDownload || tg.BannerObfuscated {
		t.Errorf("benign site carries attack signals: %+v", tg)
	}
	if tg.Kind != fwb.KindBenign {
		t.Errorf("kind = %v", tg.Kind)
	}
}

func TestDeriveNilInfra(t *testing.T) {
	g, _, _, _ := world(13)
	site := g.PhishingFWBSite(g.PickService(), epoch)
	// nil whois/ct/rng must not panic; signals degrade gracefully.
	tg := Derive(site, epoch, Twitter, "p", nil, nil, nil)
	if tg.DomainAge != 0 || tg.InCTLog || tg.SearchIndexed {
		t.Fatalf("nil-infra target has infra signals: %+v", tg)
	}
}
