// Package ablation quantifies the design choices and evasion mechanisms
// the paper argues for, by toggling one factor at a time:
//
//   - FeatureAblation: how much of the FreePhish model's accuracy comes
//     from the two FWB-specific features added in §4.2.
//   - StackingAblation: the two-layer stack vs its individual base models.
//   - CTCounterfactual: how much blocklist coverage FWB attacks would lose
//     if they DID appear in certificate-transparency logs (§3's
//     invisibility mechanism, inverted).
//   - NoindexCounterfactual: the same question for the noindex tag.
//   - ResponsivenessCounterfactual: how much faster FWB takedown would be
//     if every service behaved like the responsive ones (§5.3).
package ablation

import (
	"fmt"
	"time"

	"freephish/internal/baselines"
	"freephish/internal/blocklist"
	"freephish/internal/features"
	"freephish/internal/fwb"
	"freephish/internal/ml"
	"freephish/internal/report"
	"freephish/internal/simclock"
	"freephish/internal/threat"
	"freephish/internal/webgen"
)

var epoch = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

// Variant is one ablation arm's outcome.
type Variant struct {
	Name    string
	Metrics ml.Metrics
}

// corpus builds a balanced labeled FWB corpus. evasiveFocus draws the
// phishing side from the §5.5-heavy services (Google Sites, Blogspot,
// Sharepoint, Google Forms), where credential-less variants dominate and
// the FWB-specific features earn their keep; otherwise the Table 4 mix is
// used.
func corpus(seed int64, n int, evasiveFocus bool) (train, test []baselines.LabeledPage) {
	g := webgen.NewGenerator(seed, nil, nil)
	evasiveKeys := []string{"googlesites", "blogspot", "sharepoint", "googleforms"}
	rng := simclock.NewRNG(seed, "ablation.split")
	var all []baselines.LabeledPage
	for i := 0; i < n/2; i++ {
		var p *fwb.Site
		if evasiveFocus {
			svc, _ := fwb.ByKey(evasiveKeys[rng.Intn(len(evasiveKeys))])
			p = g.PhishingFWBSite(svc, epoch)
		} else {
			p = g.PhishingFWBSite(g.PickService(), epoch)
		}
		all = append(all, baselines.LabeledPage{Page: features.Page{URL: p.URL, HTML: p.HTML}, Label: 1})
		b := g.BenignFWBSite(g.PickServiceUniform(), epoch)
		all = append(all, baselines.LabeledPage{Page: features.Page{URL: b.URL, HTML: b.HTML}})
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	cut := int(float64(len(all)) * 0.7)
	return all[:cut], all[cut:]
}

// featureDataset extracts the named feature view for every sample.
func featureDataset(names []string, samples []baselines.LabeledPage) (*ml.Dataset, error) {
	d := &ml.Dataset{Names: names}
	for _, s := range samples {
		m, err := features.Extract(s.Page)
		if err != nil {
			return nil, err
		}
		d.X = append(d.X, features.Vector(names, m))
		d.Y = append(d.Y, s.Label)
	}
	return d, nil
}

// withoutFWBFeatures is the FreePhish feature set minus the two §4.2
// additions — isolating their contribution.
func withoutFWBFeatures() []string {
	var out []string
	for _, n := range features.FreePhishNames {
		if n == features.FObfuscatedBanner || n == features.FNoindex {
			continue
		}
		out = append(out, n)
	}
	return out
}

// FeatureAblation trains the stacking model on three feature views over
// the same split and returns their test metrics.
func FeatureAblation(seed int64, n int) ([]Variant, error) {
	train, test := corpus(seed, n, true)
	views := []struct {
		name  string
		names []string
	}{
		{"FreePhish (22 features)", features.FreePhishNames},
		{"minus FWB features (20)", withoutFWBFeatures()},
		{"original StackModel (20)", features.BaseStackNames},
	}
	var out []Variant
	for _, v := range views {
		trainSet, err := featureDataset(v.names, train)
		if err != nil {
			return nil, err
		}
		testSet, err := featureDataset(v.names, test)
		if err != nil {
			return nil, err
		}
		m := ml.NewStackModel(seed)
		if err := m.Fit(trainSet); err != nil {
			return nil, err
		}
		out = append(out, Variant{Name: v.name, Metrics: ml.Evaluate(m, testSet)})
	}
	return out, nil
}

// StackingAblation compares the two-layer stack against its base learners
// and a random forest on the FreePhish feature view.
func StackingAblation(seed int64, n int) ([]Variant, error) {
	train, test := corpus(seed, n, false)
	trainSet, err := featureDataset(features.FreePhishNames, train)
	if err != nil {
		return nil, err
	}
	testSet, err := featureDataset(features.FreePhishNames, test)
	if err != nil {
		return nil, err
	}
	models := []struct {
		name string
		c    ml.Classifier
	}{
		{"GBDT", ml.NewGBDT()},
		{"XGBoost-style", ml.NewXGBoost()},
		{"LightGBM-style", ml.NewLightGBM()},
		{"RandomForest", ml.NewRandomForest(seed)},
		{"2-layer stack", ml.NewStackModel(seed)},
	}
	var out []Variant
	for _, m := range models {
		if err := m.c.Fit(trainSet); err != nil {
			return nil, err
		}
		out = append(out, Variant{Name: m.name, Metrics: ml.Evaluate(m.c, testSet)})
	}
	return out, nil
}

// CounterfactualResult is a coverage delta from toggling one mechanism.
type CounterfactualResult struct {
	Mechanism      string
	BaselineCov    float64 // actual FWB coverage
	Counterfactual float64 // coverage with the mechanism disabled
}

// fwbTargets builds n FWB phishing targets through the standard pipeline.
func fwbTargets(seed int64, n int) []*threat.Target {
	g := webgen.NewGenerator(seed, nil, nil)
	rng := simclock.NewRNG(seed, "ablation.targets")
	var out []*threat.Target
	for i := 0; i < n; i++ {
		site := g.PhishingFWBSite(g.PickService(), epoch)
		out = append(out, threat.Derive(site, epoch, threat.Twitter, fmt.Sprintf("a%d", i), nil, nil, rng))
	}
	return out
}

func gsbCoverage(targets []*threat.Target, rng *simclock.RNG) float64 {
	gsb := blocklist.Standard()[2]
	week := 7 * 24 * time.Hour
	hit := 0
	for _, t := range targets {
		if v := gsb.Assess(t, rng); v.Detected && v.At.Sub(t.SharedAt) <= week {
			hit++
		}
	}
	return float64(hit) / float64(len(targets))
}

// CTCounterfactual measures GSB's one-week FWB coverage as-is versus a
// world where every FWB site received its own logged certificate — the
// inverse of the §3 CT-invisibility mechanism.
func CTCounterfactual(seed int64, n int) CounterfactualResult {
	targets := fwbTargets(seed, n)
	rng := simclock.NewRNG(seed, "ablation.ct")
	baseline := gsbCoverage(targets, rng)

	visible := make([]*threat.Target, len(targets))
	for i, t := range targets {
		c := *t
		c.InCTLog = true
		visible[i] = &c
	}
	return CounterfactualResult{
		Mechanism:      "CT-log invisibility",
		BaselineCov:    baseline,
		Counterfactual: gsbCoverage(visible, rng),
	}
}

// NoindexCounterfactual measures coverage as-is versus a world where no
// FWB phishing page uses noindex and pages index at the self-hosted rate.
func NoindexCounterfactual(seed int64, n int) CounterfactualResult {
	targets := fwbTargets(seed, n)
	rng := simclock.NewRNG(seed, "ablation.noindex")
	baseline := gsbCoverage(targets, rng)

	indexed := make([]*threat.Target, len(targets))
	for i, t := range targets {
		c := *t
		c.Noindex = false
		c.SearchIndexed = rng.Bool(threat.SelfHostedIndexedRate)
		indexed[i] = &c
	}
	return CounterfactualResult{
		Mechanism:      "noindex + link-less subdomains",
		BaselineCov:    baseline,
		Counterfactual: gsbCoverage(indexed, rng),
	}
}

// ResponsivenessResult summarizes the takedown counterfactual.
type ResponsivenessResult struct {
	BaselineRemoval      float64
	AllResponsiveRemoval float64
	BaselineMedian       time.Duration
	AllResponsiveMedian  time.Duration
}

// ResponsivenessCounterfactual measures two-week FWB takedown as-is versus
// a world where every FWB handles reports like Weebly does (§5.3's gap
// between responsive and unresponsive services).
func ResponsivenessCounterfactual(seed int64, n int) ResponsivenessResult {
	targets := fwbTargets(seed, n)
	rep := report.NewReporter(seed)
	weebly, _ := fwb.ByKey("weebly")

	measure := func(override bool) (float64, time.Duration) {
		removed := 0
		var total time.Duration
		var delays []time.Duration
		for _, t := range targets {
			tt := t
			if override {
				c := *t
				svc := *t.Service
				svc.RemovalRate = weebly.RemovalRate
				svc.MedianResponse = weebly.MedianResponse
				svc.ResponseClass = fwb.Responsive
				c.Service = &svc
				tt = &c
			}
			o := rep.ReportToFWB(tt, tt.SharedAt.Add(10*time.Minute))
			if o.Removed && o.RemovedAt.Sub(tt.SharedAt) <= 14*24*time.Hour {
				removed++
				delays = append(delays, o.RemovedAt.Sub(tt.SharedAt))
			}
		}
		_ = total
		med := time.Duration(0)
		if len(delays) > 0 {
			// median
			for i := 1; i < len(delays); i++ {
				for j := i; j > 0 && delays[j] < delays[j-1]; j-- {
					delays[j], delays[j-1] = delays[j-1], delays[j]
				}
			}
			med = delays[len(delays)/2]
		}
		return float64(removed) / float64(len(targets)), med
	}
	bCov, bMed := measure(false)
	cCov, cMed := measure(true)
	return ResponsivenessResult{
		BaselineRemoval:      bCov,
		AllResponsiveRemoval: cCov,
		BaselineMedian:       bMed,
		AllResponsiveMedian:  cMed,
	}
}

// FamiliaritySweep measures the dose-response between blocklist attention
// to FWB-hosted URLs and achieved coverage: GSB's one-week FWB coverage as
// its FWBAttention multiplier scales by each factor. The curve shows how
// much of the Table 3 gap is triage policy rather than hard invisibility —
// coverage saturates well below self-hosted levels because the CT and
// search channels stay closed no matter how attentive triage gets.
func FamiliaritySweep(seed int64, n int, factors []float64) []float64 {
	targets := fwbTargets(seed, n)
	rng := simclock.NewRNG(seed, "ablation.famsweep")
	out := make([]float64, len(factors))
	base := blocklist.Standard()[2]
	for i, f := range factors {
		e := *base
		e.FWBAttention = base.FWBAttention * f
		week := 7 * 24 * time.Hour
		hit := 0
		for _, t := range targets {
			if v := e.Assess(t, rng); v.Detected && v.At.Sub(t.SharedAt) <= week {
				hit++
			}
		}
		out[i] = float64(hit) / float64(len(targets))
	}
	return out
}
