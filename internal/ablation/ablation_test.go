package ablation

import (
	"testing"
)

func TestFeatureAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("stacking ablation is slow")
	}
	vs, err := FeatureAblation(3, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("variants = %d", len(vs))
	}
	for _, v := range vs {
		t.Logf("%-26s %s", v.Name, v.Metrics)
		if v.Metrics.Accuracy < 0.8 {
			t.Errorf("%s accuracy = %.3f — every variant should still learn", v.Name, v.Metrics.Accuracy)
		}
	}
	// The full feature set must not be materially worse than either
	// reduced view (it strictly adds information).
	full, reduced := vs[0].Metrics, vs[1].Metrics
	if full.F1+0.03 < reduced.F1 {
		t.Errorf("full set F1 %.3f materially below reduced %.3f", full.F1, reduced.F1)
	}
}

func TestStackingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("stacking ablation is slow")
	}
	vs, err := StackingAblation(5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 5 {
		t.Fatalf("variants = %d", len(vs))
	}
	var stack, worst float64 = 0, 1
	for _, v := range vs {
		t.Logf("%-16s %s", v.Name, v.Metrics)
		if v.Name == "2-layer stack" {
			stack = v.Metrics.F1
		}
		if v.Metrics.F1 < worst {
			worst = v.Metrics.F1
		}
	}
	if stack+0.05 < worst {
		t.Errorf("stack F1 %.3f far below the weakest base model %.3f", stack, worst)
	}
}

func TestCTCounterfactual(t *testing.T) {
	r := CTCounterfactual(7, 2000)
	t.Logf("CT: baseline=%.3f counterfactual=%.3f", r.BaselineCov, r.Counterfactual)
	// Making FWB sites CT-visible must raise GSB coverage substantially —
	// quantifying the §3 invisibility mechanism.
	if r.Counterfactual <= r.BaselineCov+0.1 {
		t.Fatalf("CT visibility adds only %.3f coverage — mechanism not load-bearing",
			r.Counterfactual-r.BaselineCov)
	}
	if r.BaselineCov < 0.10 || r.BaselineCov > 0.30 {
		t.Errorf("baseline GSB FWB coverage = %.3f, want ≈0.18", r.BaselineCov)
	}
}

func TestNoindexCounterfactual(t *testing.T) {
	r := NoindexCounterfactual(9, 2000)
	t.Logf("noindex: baseline=%.3f counterfactual=%.3f", r.BaselineCov, r.Counterfactual)
	if r.Counterfactual <= r.BaselineCov {
		t.Fatal("indexing FWB pages must not reduce coverage")
	}
}

func TestResponsivenessCounterfactual(t *testing.T) {
	r := ResponsivenessCounterfactual(11, 2000)
	t.Logf("responsiveness: removal %.3f -> %.3f, median %v -> %v",
		r.BaselineRemoval, r.AllResponsiveRemoval, r.BaselineMedian, r.AllResponsiveMedian)
	// §5.3: if every FWB behaved like Weebly, removal would jump to ≈59%.
	if r.AllResponsiveRemoval < r.BaselineRemoval+0.15 {
		t.Fatalf("all-responsive removal %.3f not materially above baseline %.3f",
			r.AllResponsiveRemoval, r.BaselineRemoval)
	}
	if r.AllResponsiveRemoval < 0.5 || r.AllResponsiveRemoval > 0.68 {
		t.Errorf("all-responsive removal = %.3f, want ≈0.59 (Weebly's rate)", r.AllResponsiveRemoval)
	}
}

func TestFamiliaritySweepMonotoneButSaturating(t *testing.T) {
	factors := []float64{0.25, 0.5, 1, 2, 4, 100}
	cov := FamiliaritySweep(13, 1500, factors)
	t.Logf("familiarity sweep: %v -> %v", factors, cov)
	for i := 1; i < len(cov); i++ {
		if cov[i]+0.02 < cov[i-1] {
			t.Fatalf("coverage not monotone: %v", cov)
		}
	}
	// Even unbounded triage attention cannot reach self-hosted levels
	// (≈0.72): the CT/search channels stay structurally closed.
	if last := cov[len(cov)-1]; last > 0.60 {
		t.Fatalf("saturated coverage = %.3f — invisibility mechanisms leaked", last)
	}
	if cov[len(cov)-1] <= cov[0] {
		t.Fatal("attention had no effect at all")
	}
}
