// Package brands holds the brand database FreePhish uses in two roles:
// (1) the detection side — the coders and the URL features check whether a
// site spoofs one of the brands reported by OpenPhish's monthly brand list
// (409 brands in August 2022), and (2) the generation side — the website
// generators produce spoof pages whose brand mix matches Figure 5 (109
// unique organizations, heavily skewed toward a handful of leaders).
package brands

import (
	"sort"
	"strings"
)

// Category groups brands by sector; the attack mix differs per sector
// (banks get credential pages, couriers get payment-detail pages, etc.).
type Category string

// Brand sectors used by the generators.
const (
	Social    Category = "social"
	Payment   Category = "payment"
	Banking   Category = "banking"
	Telecom   Category = "telecom"
	Streaming Category = "streaming"
	Ecommerce Category = "ecommerce"
	Tech      Category = "tech"
	Courier   Category = "courier"
	Crypto    Category = "crypto"
	Gaming    Category = "gaming"
	Travel    Category = "travel"
	Email     Category = "email"
)

// Brand is one impersonation target.
type Brand struct {
	Name     string // display name, e.g. "PayPal"
	Key      string // lower-case token that appears in URLs, e.g. "paypal"
	Domain   string // legitimate domain, e.g. paypal.com
	Category Category
	// Weight is the relative targeting frequency. Figure 5's histogram is
	// heavily skewed: the generators draw brands proportionally to Weight.
	Weight float64
	// LoginVocab are phrases spoof pages for this brand use.
	LoginVocab []string
}

// db is the embedded brand list. Weights approximate the Figure 5 skew: the
// top brands (Facebook, Microsoft, AT&T, Netflix, PayPal, WhatsApp …)
// absorb most attacks, with a long tail of ~100 organizations.
var db = []Brand{
	{"Facebook", "facebook", "facebook.com", Social, 130, []string{"Log in to Facebook", "Connect with friends"}},
	{"Microsoft", "microsoft", "microsoft.com", Tech, 110, []string{"Sign in to your Microsoft account", "One account for all things Microsoft"}},
	{"AT&T", "att", "att.com", Telecom, 95, []string{"myAT&T Sign in", "Manage your AT&T account"}},
	{"Netflix", "netflix", "netflix.com", Streaming, 85, []string{"Sign In", "Update your payment information"}},
	{"PayPal", "paypal", "paypal.com", Payment, 78, []string{"Log in to your PayPal account", "Confirm your identity"}},
	{"WhatsApp", "whatsapp", "whatsapp.com", Social, 66, []string{"Verify your number", "WhatsApp Web"}},
	{"Instagram", "instagram", "instagram.com", Social, 60, []string{"Log in to Instagram", "Get the full experience"}},
	{"Office 365", "office365", "office.com", Tech, 56, []string{"Sign in to Office 365", "Work account sign in"}},
	{"OneDrive", "onedrive", "onedrive.com", Tech, 50, []string{"A document has been shared with you", "Sign in to view document"}},
	{"Amazon", "amazon", "amazon.com", Ecommerce, 46, []string{"Sign-In", "There is a problem with your order"}},
	{"Apple", "apple", "apple.com", Tech, 42, []string{"Sign in with your Apple ID", "Your Apple ID has been locked"}},
	{"Google", "google", "google.com", Tech, 40, []string{"Sign in with Google", "Verify it's you"}},
	{"Chase", "chase", "chase.com", Banking, 34, []string{"Chase Online Sign in", "Unusual activity detected"}},
	{"Wells Fargo", "wellsfargo", "wellsfargo.com", Banking, 30, []string{"Sign on to Wells Fargo Online", "Account verification required"}},
	{"DHL", "dhl", "dhl.com", Courier, 28, []string{"Track your shipment", "Pay customs fee to release parcel"}},
	{"USPS", "usps", "usps.com", Courier, 26, []string{"Your package could not be delivered", "Schedule redelivery"}},
	{"Coinbase", "coinbase", "coinbase.com", Crypto, 24, []string{"Sign in to Coinbase", "Unusual sign-in attempt"}},
	{"LinkedIn", "linkedin", "linkedin.com", Social, 22, []string{"Sign in to LinkedIn", "You appeared in searches"}},
	{"Adobe", "adobe", "adobe.com", Tech, 20, []string{"A PDF file has been shared", "Sign in to view"}},
	{"Twitter", "twitter", "twitter.com", Social, 19, []string{"Log in to Twitter", "Your account has been limited"}},
	{"Spotify", "spotify", "spotify.com", Streaming, 18, []string{"Log in to Spotify", "Your premium payment failed"}},
	{"Bank of America", "bankofamerica", "bankofamerica.com", Banking, 17, []string{"Online Banking Sign In", "Verify your information"}},
	{"Steam", "steam", "steampowered.com", Gaming, 16, []string{"Sign in to Steam", "Claim your free skin"}},
	{"Credit Agricole", "credit-agricole", "credit-agricole.fr", Banking, 15, []string{"Accéder à mes comptes"}},
	{"Banco do Brasil", "bancodobrasil", "bb.com.br", Banking, 14, []string{"Acesse sua conta"}},
	{"Yahoo", "yahoo", "yahoo.com", Email, 13, []string{"Sign in to Yahoo Mail", "Mailbox storage full"}},
	{"Binance", "binance", "binance.com", Crypto, 13, []string{"Log In to Binance", "Withdrawal confirmation"}},
	{"Verizon", "verizon", "verizon.com", Telecom, 12, []string{"Sign in to My Verizon", "Bill payment issue"}},
	{"T-Mobile", "tmobile", "t-mobile.com", Telecom, 12, []string{"T-Mobile ID Login"}},
	{"eBay", "ebay", "ebay.com", Ecommerce, 11, []string{"Sign in to eBay", "Action required on your listing"}},
	{"Dropbox", "dropbox", "dropbox.com", Tech, 11, []string{"A file has been shared with you", "Sign in to Dropbox"}},
	{"DocuSign", "docusign", "docusign.com", Tech, 10, []string{"Review and sign document", "Completed: signature requested"}},
	{"FedEx", "fedex", "fedex.com", Courier, 10, []string{"Delivery exception", "Confirm delivery address"}},
	{"HSBC", "hsbc", "hsbc.com", Banking, 9, []string{"Log on to online banking"}},
	{"Citibank", "citibank", "citi.com", Banking, 9, []string{"Sign On", "Your card has been suspended"}},
	{"Santander", "santander", "santander.com", Banking, 9, []string{"Acceso clientes"}},
	{"Capital One", "capitalone", "capitalone.com", Banking, 8, []string{"Sign In to Capital One"}},
	{"Walmart", "walmart", "walmart.com", Ecommerce, 8, []string{"Sign in to your Walmart account"}},
	{"Costco", "costco", "costco.com", Ecommerce, 8, []string{"Member sign in", "You have a reward waiting"}},
	{"MetaMask", "metamask", "metamask.io", Crypto, 8, []string{"Restore your wallet", "Enter your secret recovery phrase"}},
	{"Trust Wallet", "trustwallet", "trustwallet.com", Crypto, 7, []string{"Verify your wallet"}},
	{"Outlook", "outlook", "outlook.com", Email, 7, []string{"Sign in to Outlook", "Your mailbox is almost full"}},
	{"Comcast Xfinity", "xfinity", "xfinity.com", Telecom, 7, []string{"Sign in to Xfinity"}},
	{"Orange", "orange", "orange.fr", Telecom, 7, []string{"Identifiez-vous"}},
	{"Vodafone", "vodafone", "vodafone.com", Telecom, 6, []string{"Log in to My Vodafone"}},
	{"Disney+", "disneyplus", "disneyplus.com", Streaming, 6, []string{"Log in to Disney+", "Update payment details"}},
	{"Hulu", "hulu", "hulu.com", Streaming, 6, []string{"Log in to Hulu"}},
	{"Roblox", "roblox", "roblox.com", Gaming, 6, []string{"Get free Robux", "Login to claim"}},
	{"Fortnite", "fortnite", "epicgames.com", Gaming, 6, []string{"Free V-Bucks", "Epic Games login"}},
	{"Airbnb", "airbnb", "airbnb.com", Travel, 5, []string{"Log in to Airbnb", "Confirm your booking"}},
	{"Booking.com", "booking", "booking.com", Travel, 5, []string{"Sign in to manage reservation"}},
	{"American Express", "americanexpress", "americanexpress.com", Banking, 5, []string{"Log In to Amex", "Card verification needed"}},
	{"Discover", "discover", "discover.com", Banking, 5, []string{"Log In to Discover"}},
	{"PNC Bank", "pnc", "pnc.com", Banking, 5, []string{"PNC Online Banking"}},
	{"US Bank", "usbank", "usbank.com", Banking, 5, []string{"Log in to usbank.com"}},
	{"TD Bank", "tdbank", "td.com", Banking, 4, []string{"EasyWeb Login"}},
	{"Barclays", "barclays", "barclays.co.uk", Banking, 4, []string{"Log in to Online Banking"}},
	{"Lloyds", "lloyds", "lloydsbank.com", Banking, 4, []string{"Internet Banking log on"}},
	{"NatWest", "natwest", "natwest.com", Banking, 4, []string{"Log in to Online Banking"}},
	{"ING", "ing", "ing.com", Banking, 4, []string{"Inloggen Mijn ING"}},
	{"BBVA", "bbva", "bbva.com", Banking, 4, []string{"Acceso a banca online"}},
	{"Itau", "itau", "itau.com.br", Banking, 4, []string{"Acesse sua conta Itaú"}},
	{"Bradesco", "bradesco", "bradesco.com.br", Banking, 4, []string{"Acesso à conta"}},
	{"Caixa", "caixa", "caixa.gov.br", Banking, 4, []string{"Internet Banking Caixa"}},
	{"Zelle", "zelle", "zellepay.com", Payment, 4, []string{"Payment pending confirmation"}},
	{"Venmo", "venmo", "venmo.com", Payment, 4, []string{"Sign in to Venmo"}},
	{"Cash App", "cashapp", "cash.app", Payment, 4, []string{"Verify your Cash App account"}},
	{"Western Union", "westernunion", "westernunion.com", Payment, 3, []string{"Track your transfer"}},
	{"MoneyGram", "moneygram", "moneygram.com", Payment, 3, []string{"Receive your funds"}},
	{"Stripe", "stripe", "stripe.com", Payment, 3, []string{"Sign in to Stripe dashboard"}},
	{"Skrill", "skrill", "skrill.com", Payment, 3, []string{"Log in to your wallet"}},
	{"Mercado Libre", "mercadolibre", "mercadolibre.com", Ecommerce, 3, []string{"Ingresa tu contraseña"}},
	{"Shopee", "shopee", "shopee.com", Ecommerce, 3, []string{"Log in to Shopee"}},
	{"AliExpress", "aliexpress", "aliexpress.com", Ecommerce, 3, []string{"Sign in with your account"}},
	{"Rakuten", "rakuten", "rakuten.co.jp", Ecommerce, 3, []string{"ログイン"}},
	{"Etsy", "etsy", "etsy.com", Ecommerce, 3, []string{"Sign in to Etsy"}},
	{"Target", "target", "target.com", Ecommerce, 3, []string{"Sign into your Target account"}},
	{"Home Depot", "homedepot", "homedepot.com", Ecommerce, 3, []string{"Sign In", "You've earned a reward"}},
	{"UPS", "ups", "ups.com", Courier, 3, []string{"Delivery attempt failed", "Pay outstanding fee"}},
	{"Royal Mail", "royalmail", "royalmail.com", Courier, 3, []string{"Your parcel is waiting", "Pay the shipping fee"}},
	{"Canada Post", "canadapost", "canadapost.ca", Courier, 3, []string{"Delivery notice"}},
	{"La Poste", "laposte", "laposte.fr", Courier, 3, []string{"Suivre mon colis"}},
	{"Correos", "correos", "correos.es", Courier, 3, []string{"Su paquete está en camino"}},
	{"Hermes", "hermes", "myhermes.co.uk", Courier, 2, []string{"Reschedule your delivery"}},
	{"Kraken", "kraken", "kraken.com", Crypto, 2, []string{"Sign in to Kraken"}},
	{"Crypto.com", "cryptocom", "crypto.com", Crypto, 2, []string{"Verify your account"}},
	{"Blockchain.com", "blockchain", "blockchain.com", Crypto, 2, []string{"Log in to your wallet"}},
	{"OpenSea", "opensea", "opensea.io", Crypto, 2, []string{"Claim your NFT drop"}},
	{"Uniswap", "uniswap", "uniswap.org", Crypto, 2, []string{"Connect wallet"}},
	{"Gmail", "gmail", "gmail.com", Email, 2, []string{"Sign in to Gmail", "Storage quota exceeded"}},
	{"AOL", "aol", "aol.com", Email, 2, []string{"Login - AOL Mail"}},
	{"Zoho", "zoho", "zoho.com", Email, 2, []string{"Sign in to Zoho Mail"}},
	{"ProtonMail", "protonmail", "proton.me", Email, 2, []string{"Sign in to Proton"}},
	{"GoDaddy", "godaddy", "godaddy.com", Tech, 2, []string{"Sign in to GoDaddy", "Your domain is expiring"}},
	{"Namecheap", "namecheap", "namecheap.com", Tech, 2, []string{"Renew your domain now"}},
	{"cPanel", "cpanel", "cpanel.net", Tech, 2, []string{"cPanel Login", "Webmail access"}},
	{"Zoom", "zoom", "zoom.us", Tech, 2, []string{"Sign in to Zoom", "You missed a meeting"}},
	{"Slack", "slack", "slack.com", Tech, 2, []string{"Sign in to your workspace"}},
	{"GitHub", "github", "github.com", Tech, 2, []string{"Sign in to GitHub", "Security alert on your repository"}},
	{"Telegram", "telegram", "telegram.org", Social, 2, []string{"Log in to Telegram", "Premium gift waiting"}},
	{"Snapchat", "snapchat", "snapchat.com", Social, 2, []string{"Log in to Snapchat"}},
	{"TikTok", "tiktok", "tiktok.com", Social, 2, []string{"Log in to TikTok", "Creator fund payment"}},
	{"Pinterest", "pinterest", "pinterest.com", Social, 2, []string{"Log in to Pinterest"}},
	{"Reddit", "reddit", "reddit.com", Social, 2, []string{"Log in to Reddit"}},
	{"Discord", "discord", "discord.com", Social, 2, []string{"Claim free Nitro", "Login to Discord"}},
	{"IRS", "irs", "irs.gov", Banking, 2, []string{"Your tax refund is ready", "Verify your identity"}},
	{"HMRC", "hmrc", "gov.uk", Banking, 2, []string{"You have a tax rebate pending"}},
	{"SSA", "ssa", "ssa.gov", Banking, 1, []string{"Your benefits require verification"}},
	{"Delta", "delta", "delta.com", Travel, 1, []string{"Claim your free flight voucher"}},
	{"Emirates", "emirates", "emirates.com", Travel, 1, []string{"Your booking needs attention"}},
	{"Marriott", "marriott", "marriott.com", Travel, 1, []string{"Bonvoy points expiring"}},
	{"PlayStation", "playstation", "playstation.com", Gaming, 1, []string{"Sign in to PSN", "Free PSN card"}},
	{"Xbox", "xbox", "xbox.com", Gaming, 1, []string{"Xbox Live Gold giveaway"}},
	{"Nintendo", "nintendo", "nintendo.com", Gaming, 1, []string{"Sign in to your Nintendo Account"}},
	{"Twitch", "twitch", "twitch.tv", Gaming, 1, []string{"Log in to Twitch", "Your channel was selected"}},
	{"Uber", "uber", "uber.com", Travel, 1, []string{"Your account needs verification"}},
	{"Lyft", "lyft", "lyft.com", Travel, 1, []string{"Sign in to Lyft"}},
	{"Shopify", "shopify", "shopify.com", Ecommerce, 1, []string{"Log in to your store"}},
	{"Intuit", "intuit", "intuit.com", Tech, 1, []string{"Sign in to QuickBooks", "Your invoice is ready"}},
	{"ADP", "adp", "adp.com", Tech, 1, []string{"Payroll notification: sign in"}},
}

// All returns every brand, ordered by descending weight then name. The
// returned slice is shared; callers must not modify it.
func All() []Brand { return sortedDB }

// Keys returns the lower-case brand keys, in the same order as All. The
// returned slice is shared; callers must not modify it.
func Keys() []string { return sortedKeys }

// Weights returns the targeting weights aligned with All. The returned
// slice is shared; callers must not modify it.
func Weights() []float64 { return sortedWeights }

// ByKey looks a brand up by its lower-case key.
func ByKey(key string) (Brand, bool) {
	b, ok := byKey[strings.ToLower(key)]
	return b, ok
}

// Count reports the number of brands in the database.
func Count() int { return len(db) }

var (
	sortedDB      []Brand
	sortedKeys    []string
	sortedWeights []float64
	byKey         map[string]Brand
)

func init() { rebuild() }

// rebuild regenerates the sorted views and index after db mutations (the
// extended brand file appends in its own init).
func rebuild() {
	sortedKeys = nil
	sortedWeights = nil
	sortedDB = make([]Brand, len(db))
	copy(sortedDB, db)
	sort.SliceStable(sortedDB, func(i, j int) bool {
		if sortedDB[i].Weight != sortedDB[j].Weight {
			return sortedDB[i].Weight > sortedDB[j].Weight
		}
		return sortedDB[i].Name < sortedDB[j].Name
	})
	byKey = make(map[string]Brand, len(sortedDB))
	for _, b := range sortedDB {
		sortedKeys = append(sortedKeys, b.Key)
		sortedWeights = append(sortedWeights, b.Weight)
		byKey[b.Key] = b
	}
}
