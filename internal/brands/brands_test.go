package brands

import (
	"strings"
	"testing"
)

func TestAllOrderedByWeight(t *testing.T) {
	all := All()
	if len(all) < 200 {
		t.Fatalf("brand DB has %d entries, want >= 200 (OpenPhish list: 409; observed: 109)", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Weight > all[i-1].Weight {
			t.Fatalf("weights not descending at %d: %v after %v", i, all[i], all[i-1])
		}
	}
	if all[0].Name != "Facebook" {
		t.Errorf("top brand = %q, want Facebook (Figure 5)", all[0].Name)
	}
}

func TestKeysAreLowerAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Keys() {
		if k != strings.ToLower(k) {
			t.Errorf("key %q not lower-case", k)
		}
		if seen[k] {
			t.Errorf("duplicate key %q", k)
		}
		seen[k] = true
	}
}

func TestByKey(t *testing.T) {
	b, ok := ByKey("paypal")
	if !ok || b.Name != "PayPal" || b.Category != Payment {
		t.Fatalf("ByKey(paypal) = %+v, %v", b, ok)
	}
	b, ok = ByKey("PAYPAL")
	if !ok {
		t.Fatal("ByKey should be case-insensitive")
	}
	if _, ok := ByKey("nonexistent-brand"); ok {
		t.Fatal("ByKey returned a hit for an unknown key")
	}
}

func TestEveryBrandComplete(t *testing.T) {
	for _, b := range All() {
		if b.Name == "" || b.Key == "" || b.Domain == "" || b.Category == "" {
			t.Errorf("incomplete brand: %+v", b)
		}
		if b.Weight <= 0 {
			t.Errorf("brand %q has non-positive weight", b.Name)
		}
		if len(b.LoginVocab) == 0 {
			t.Errorf("brand %q has no login vocabulary", b.Name)
		}
	}
}

func TestWeightsAlignWithAll(t *testing.T) {
	all, w := All(), Weights()
	if len(all) != len(w) {
		t.Fatalf("len mismatch: %d vs %d", len(all), len(w))
	}
	for i := range all {
		if all[i].Weight != w[i] {
			t.Fatalf("weight %d misaligned", i)
		}
	}
}

func TestSkewCoversFigure5(t *testing.T) {
	// Figure 5's histogram: the top handful of brands dominate. With the
	// full 200+ brand detection list carrying a long tail of unit weights,
	// the top 10 still hold ~45% of generation mass.
	w := Weights()
	var top, total float64
	for i, x := range w {
		total += x
		if i < 10 {
			top += x
		}
	}
	if top/total < 0.44 {
		t.Fatalf("top-10 mass = %.2f of total, want > 0.44", top/total)
	}
}
