// Package par provides the small deterministic-concurrency primitives the
// pipeline and the ML trainers share: a bounded worker pool with ordered
// fan-in. The design contract, relied on throughout the repository, is that
// parallel execution never changes results — workers receive their inputs
// by index, write their outputs by index, and any error reported is the one
// the equivalent sequential loop would have hit first. Panics inside
// workers are recovered, the pool is drained (no goroutine leaks), and the
// panic is re-raised on the caller's goroutine.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// N resolves a Parallelism knob: n itself when positive, otherwise
// runtime.GOMAXPROCS(0). Every Parallelism/Workers option in the
// repository routes through this, so "0 = use all cores" is uniform.
func N(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a value recovered from a worker panic so it can be
// re-raised on the caller's goroutine with the worker's stack attached.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", p.Value, p.Stack)
}

// MapOrdered applies fn to every item using at most workers goroutines and
// returns the results in input order. All items are attempted even when
// some fail; the returned error is the one with the lowest input index —
// exactly the error a sequential loop over items would return first — so
// error selection is independent of goroutine scheduling. If a worker
// panics, remaining in-flight work drains, queued work is skipped, and the
// lowest-index panic is re-raised here wrapped in *PanicError.
func MapOrdered[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	errs := make([]error, n)
	w := N(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i, item := range items {
			results[i], errs[i] = fn(i, item)
		}
		return results, firstErr(errs)
	}

	var next atomic.Int64
	var panicked atomic.Bool
	panics := make([]*PanicError, n)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 4096)
							buf = buf[:runtime.Stack(buf, false)]
							panics[i] = &PanicError{Value: r, Stack: buf}
							panicked.Store(true)
						}
					}()
					results[i], errs[i] = fn(i, items[i])
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
	return results, firstErr(errs)
}

// Do runs fn(i) for every i in [0, n) using at most workers goroutines and
// returns once all calls complete. It is MapOrdered without results or
// errors: the caller writes outputs into pre-sized slices by index, which
// keeps the fan-in trivially ordered. Worker panics are re-raised on the
// caller's goroutine after the pool drains.
func Do(workers, n int, fn func(i int)) {
	w := N(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Bool
	panics := make([]*PanicError, n)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 4096)
							buf = buf[:runtime.Stack(buf, false)]
							panics[i] = &PanicError{Value: r, Stack: buf}
							panicked.Store(true)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
}

// firstErr returns the non-nil error with the lowest index.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
