// Package par provides the small deterministic-concurrency primitives the
// pipeline and the ML trainers share: a bounded worker pool with ordered
// fan-in. The design contract, relied on throughout the repository, is that
// parallel execution never changes results — workers receive their inputs
// by index, write their outputs by index, and any error reported is the one
// the equivalent sequential loop would have hit first. Panics inside
// workers are recovered, the pool is drained (no goroutine leaks), and the
// panic is re-raised on the caller's goroutine.
//
// Since the streaming refactor, par is the single-stage degenerate case of
// internal/pipe: MapOrdered is a one-stage pipeline in ContinueOnError mode
// whose ordered drain fills a result slice, and Do is the same over an
// index range. There is one concurrency substrate in the repository, not
// two — par keeps only the slice-shaped convenience API and the sequential
// fast path for w <= 1.
package par

import (
	"context"

	"freephish/internal/pipe"
)

// N resolves a Parallelism knob: n itself when positive, otherwise
// runtime.GOMAXPROCS(0). Every Parallelism/Workers option in the
// repository routes through this (delegating to pipe.Workers), so
// "0 = use all cores" is uniform.
func N(n int) int {
	return pipe.Workers(n)
}

// PanicError wraps a value recovered from a worker panic so it can be
// re-raised on the caller's goroutine with the worker's stack attached.
// It is the same type the pipe engine raises.
type PanicError = pipe.PanicError

// MapOrdered applies fn to every item using at most workers goroutines and
// returns the results in input order. All items are attempted even when
// some fail; the returned error is the one with the lowest input index —
// exactly the error a sequential loop over items would return first — so
// error selection is independent of goroutine scheduling. If a worker
// panics, remaining in-flight work drains, queued work is skipped, and the
// lowest-index panic is re-raised here wrapped in *PanicError.
func MapOrdered[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	w := N(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		var firstErr error
		for i, item := range items {
			var err error
			results[i], err = fn(i, item)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return results, firstErr
	}
	p := pipe.New(context.Background(), pipe.Options{Name: "par", ContinueOnError: true})
	st := pipe.Stage(pipe.Source(p, w, items), "map", w, w, fn)
	err := pipe.Drain(st, func(i int, v R) error {
		results[i] = v
		return nil
	})
	return results, err
}

// Do runs fn(i) for every i in [0, n) using at most workers goroutines and
// returns once all calls complete. It is MapOrdered without results or
// errors: the caller writes outputs into pre-sized slices by index, which
// keeps the fan-in trivially ordered. Worker panics are re-raised on the
// caller's goroutine after the pool drains.
func Do(workers, n int, fn func(i int)) {
	w := N(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p := pipe.New(context.Background(), pipe.Options{Name: "par"})
	st := pipe.Stage(pipe.Range(p, w, n), "do", w, w, func(i, _ int) (struct{}, error) {
		fn(i)
		return struct{}{}, nil
	})
	_ = pipe.Drain(st, func(int, struct{}) error { return nil })
}
