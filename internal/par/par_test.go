package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedPreservesInputOrder(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	// Stagger completion so later items routinely finish first.
	out, err := MapOrdered(8, items, func(i, v int) (int, error) {
		if i%7 == 0 {
			time.Sleep(time.Duration(i%3) * time.Millisecond)
		}
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapOrderedLowestIndexError(t *testing.T) {
	items := make([]int, 64)
	errAt := func(i int) error { return fmt.Errorf("item %d failed", i) }
	for _, workers := range []int{1, 4, 16} {
		out, err := MapOrdered(workers, items, func(i, _ int) (int, error) {
			if i == 9 || i == 41 {
				return 0, errAt(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "item 9 failed" {
			t.Fatalf("workers=%d: err = %v, want the lowest-index error", workers, err)
		}
		// Non-failing items still produced their results.
		if out[40] != 40 || out[63] != 63 {
			t.Fatalf("workers=%d: successful results lost: %v", workers, out[40])
		}
	}
}

func TestMapOrderedWorkerPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Value != "boom" {
			t.Fatalf("panic value = %v, want boom", pe.Value)
		}
	}()
	items := make([]int, 32)
	_, _ = MapOrdered(4, items, func(i, _ int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
}

func TestDoBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	Do(workers, 100, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, cap is %d", p, workers)
	}
}

func TestDoCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 9} {
		hit := make([]atomic.Bool, 57)
		Do(workers, len(hit), func(i int) { hit[i].Store(true) })
		for i := range hit {
			if !hit[i].Load() {
				t.Fatalf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

func TestNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		items := make([]int, 50)
		_, err := MapOrdered(8, items, func(i, _ int) (int, error) {
			if i%13 == 0 {
				return 0, errors.New("planned failure")
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		Do(6, 50, func(int) {})
	}
	// Give exiting workers a moment to be reaped before counting.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: started with %d, now %d", base, runtime.NumGoroutine())
}

func TestNResolvesDefault(t *testing.T) {
	if N(0) != runtime.GOMAXPROCS(0) {
		t.Fatalf("N(0) = %d, want GOMAXPROCS", N(0))
	}
	if N(-3) != runtime.GOMAXPROCS(0) {
		t.Fatalf("N(-3) = %d, want GOMAXPROCS", N(-3))
	}
	if N(5) != 5 {
		t.Fatalf("N(5) = %d", N(5))
	}
}
