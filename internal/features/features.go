// Package features implements the FreePhish pre-processing module's
// feature extraction (Section 4.2). The feature set builds on the Li et
// al. StackModel: 8 URL-based and 12 HTML-based features. Two StackModel
// features — "uses https" and "multiple TLDs in host" — do not discriminate
// on FWB sites (all FWB sites are https with a single TLD), so the
// augmented FreePhish set drops them and adds two FWB-specific features:
// an obfuscated service banner and a noindex meta tag.
package features

import (
	"strings"

	"freephish/internal/brands"
	"freephish/internal/htmlx"
	"freephish/internal/urlx"
)

// Page is the crawler snapshot a feature vector is extracted from. Doc,
// when non-nil, is the pre-parsed DOM of HTML — the crawler's snapshot
// cache populates it so repeated extractions of an unchanged body share
// one parse. The tree must correspond to HTML and is treated as
// read-only, so a shared Doc is safe under concurrent extraction.
type Page struct {
	URL  string
	HTML string
	Doc  *htmlx.Node
}

// Feature names, in canonical vector order.
const (
	// URL-based (StackModel).
	FURLLength         = "url_length"
	FSuspiciousSymbols = "suspicious_symbols"
	FSensitiveWords    = "sensitive_words"
	FBrandInURL        = "brand_in_url"
	FNumDots           = "num_dots"
	FNumDigits         = "num_digits"
	FIPHost            = "ip_host"
	FCheapTLD          = "cheap_tld"
	// URL-based (StackModel only; inapplicable to FWB sites).
	FHasHTTPS     = "has_https"
	FMultipleTLDs = "multiple_tlds"
	// HTML-based (StackModel).
	FInternalLinks  = "internal_links"
	FExternalLinks  = "external_links"
	FEmptyLinks     = "empty_links"
	FHasLoginForm   = "has_login_form"
	FPasswordFields = "password_fields"
	FHTMLLength     = "html_length"
	FNumIFrames     = "num_iframes"
	FHiddenElements = "hidden_elements"
	FNumScripts     = "num_scripts"
	FNumImages      = "num_images"
	FExternalAction = "external_form_action"
	FTitleBrand     = "title_brand_match"
	// FWB-specific (FreePhish additions, Section 4.2).
	FObfuscatedBanner = "obfuscated_banner"
	FNoindex          = "noindex"
	// URL-obfuscation extensions (beyond the paper's set): scanner-evasion
	// tricks — percent-encoded letters, punycode hosts, and unicode
	// homoglyphs — are phishing signals in their own right.
	FPercentEncoded = "percent_encoded_letters"
	FPunycodeHost   = "punycode_host"
	FHomoglyphs     = "homoglyph_chars"
)

// BaseStackNames is the 20-feature set of the original StackModel
// (8 URL + 12 HTML).
var BaseStackNames = []string{
	FURLLength, FSuspiciousSymbols, FSensitiveWords, FBrandInURL,
	FNumDots, FNumDigits, FHasHTTPS, FMultipleTLDs,
	FInternalLinks, FExternalLinks, FEmptyLinks, FHasLoginForm,
	FPasswordFields, FHTMLLength, FNumIFrames, FHiddenElements,
	FNumScripts, FNumImages, FExternalAction, FTitleBrand,
}

// FreePhishNames is the augmented 22-feature set: the StackModel set with
// has_https and multiple_tlds removed and ip_host, cheap_tld,
// obfuscated_banner, and noindex present.
var FreePhishNames = []string{
	FURLLength, FSuspiciousSymbols, FSensitiveWords, FBrandInURL,
	FNumDots, FNumDigits, FIPHost, FCheapTLD,
	FInternalLinks, FExternalLinks, FEmptyLinks, FHasLoginForm,
	FPasswordFields, FHTMLLength, FNumIFrames, FHiddenElements,
	FNumScripts, FNumImages, FExternalAction, FTitleBrand,
	FObfuscatedBanner, FNoindex,
}

// ExtendedNames adds the three URL-obfuscation features to the FreePhish
// set — the repository's extension beyond the paper's model.
var ExtendedNames = append(append([]string(nil), FreePhishNames...),
	FPercentEncoded, FPunycodeHost, FHomoglyphs)

// Extract computes every feature for the page, returning a name→value map.
// Vector selections (BaseStackNames / FreePhishNames) project it into model
// input order.
func Extract(p Page) (map[string]float64, error) {
	out := make(map[string]float64, 24)
	u, err := urlx.Parse(p.URL)
	if err != nil {
		return nil, err
	}
	keys := brands.Keys()

	// URL features.
	out[FURLLength] = float64(len(p.URL))
	out[FSuspiciousSymbols] = float64(urlx.CountSuspiciousSymbols(p.URL))
	// Vocabulary and brand scans run over the normalized URL (percent-
	// decoded, homoglyphs folded) so obfuscation does not hide keywords.
	normalized := urlx.NormalizeForMatching(p.URL)
	out[FSensitiveWords] = float64(urlx.CountSensitiveWords(normalized))
	brand := u.BrandInHost(keys)
	if brand == "" {
		brand = u.BrandInPath(keys)
	}
	if brand == "" && normalized != strings.ToLower(p.URL) {
		if nu, err := urlx.Parse(normalized); err == nil {
			if brand = nu.BrandInHost(keys); brand == "" {
				brand = nu.BrandInPath(keys)
			}
		}
	}
	out[FBrandInURL] = b2f(brand != "")
	out[FPercentEncoded] = b2f(urlx.HasPercentEncodedLetters(p.URL))
	out[FPunycodeHost] = b2f(u.IsPunycodeHost())
	out[FHomoglyphs] = b2f(urlx.HasHomoglyphs(p.URL))
	out[FNumDots] = float64(u.CountDots())
	out[FNumDigits] = float64(urlx.CountDigits(p.URL))
	out[FIPHost] = b2f(u.LooksLikeIPHost())
	out[FCheapTLD] = b2f(u.IsCheapTLD())
	out[FHasHTTPS] = b2f(u.Scheme == "https")
	out[FMultipleTLDs] = b2f(multipleTLDs(u))

	// HTML features.
	doc := p.Doc
	if doc == nil {
		doc = htmlx.Parse(p.HTML)
	}
	var internal, external, empty int
	for _, a := range doc.FindAll("a") {
		href := a.AttrOr("href", "")
		switch {
		case href == "" || href == "#" || strings.HasPrefix(href, "javascript:"):
			empty++
		case strings.HasPrefix(href, "http://") || strings.HasPrefix(href, "https://"):
			if hp, err := urlx.Parse(href); err == nil && hp.Host == u.Host {
				internal++
			} else {
				external++
			}
		default:
			internal++
		}
	}
	out[FInternalLinks] = float64(internal)
	out[FExternalLinks] = float64(external)
	out[FEmptyLinks] = float64(empty)

	var pwFields, emailFields int
	for _, in := range doc.FindAll("input") {
		switch in.AttrOr("type", "text") {
		case "password":
			pwFields++
		case "email":
			emailFields++
		}
	}
	out[FPasswordFields] = float64(pwFields)
	hasLogin := pwFields > 0 || (emailFields > 0 && len(doc.FindAll("form")) > 0)
	out[FHasLoginForm] = b2f(hasLogin)

	out[FHTMLLength] = float64(len(p.HTML))
	out[FNumIFrames] = float64(len(doc.FindAll("iframe")))
	hidden := doc.FindAllFunc(func(n *htmlx.Node) bool { return n.HasHiddenStyle() })
	out[FHiddenElements] = float64(len(hidden))
	out[FNumScripts] = float64(len(doc.FindAll("script")))
	out[FNumImages] = float64(len(doc.FindAll("img")))

	extAction := false
	for _, f := range doc.FindAll("form") {
		action := f.AttrOr("action", "")
		if strings.HasPrefix(action, "http://") || strings.HasPrefix(action, "https://") {
			if ap, err := urlx.Parse(action); err == nil && ap.Host != u.Host {
				extAction = true
			}
		}
	}
	out[FExternalAction] = b2f(extAction)

	title := ""
	if t := doc.Find("title"); t != nil {
		title = strings.ToLower(t.InnerText())
	}
	titleBrand := false
	for _, k := range keys {
		if strings.Contains(title, k) {
			titleBrand = true
			break
		}
	}
	out[FTitleBrand] = b2f(titleBrand)

	// FWB-specific features.
	out[FObfuscatedBanner] = b2f(hasObfuscatedBanner(hidden))
	out[FNoindex] = b2f(hasNoindex(doc))
	return out, nil
}

// Vector projects the feature map into the named order.
func Vector(names []string, m map[string]float64) []float64 {
	out := make([]float64, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// multipleTLDs reports whether TLD-looking tokens appear in non-final host
// labels (the paypal.com.evil.xyz trick).
func multipleTLDs(u urlx.Parts) bool {
	tldish := map[string]bool{"com": true, "net": true, "org": true, "edu": true, "gov": true}
	for _, l := range u.Labels[:max(0, len(u.Labels)-1)] {
		if tldish[l] {
			return true
		}
	}
	return false
}

// hasObfuscatedBanner reports whether any hidden element looks like a
// service banner: its id or class mentions "banner", "footer", "badge",
// "branding", or "attribution" — the §4.2 obfuscated-footer feature.
func hasObfuscatedBanner(hidden []*htmlx.Node) bool {
	for _, n := range hidden {
		idc := strings.ToLower(n.AttrOr("id", "") + " " + n.AttrOr("class", ""))
		for _, marker := range []string{"banner", "footer", "badge", "branding", "attribution"} {
			if strings.Contains(idc, marker) {
				return true
			}
		}
	}
	return false
}

// hasNoindex reports whether a robots meta tag requests no indexing.
func hasNoindex(doc *htmlx.Node) bool {
	for _, m := range doc.FindAll("meta") {
		if strings.EqualFold(m.AttrOr("name", ""), "robots") &&
			strings.Contains(strings.ToLower(m.AttrOr("content", "")), "noindex") {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
