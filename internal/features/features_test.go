package features

import (
	"testing"
	"testing/quick"
	"time"

	"freephish/internal/fwb"
	"freephish/internal/webgen"
)

var at = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

const phishHTML = `<!DOCTYPE html>
<html><head>
<title>PayPal - Sign In</title>
<meta name="robots" content="noindex, nofollow">
</head><body>
<div class="weebly-footer" id="weebly-banner" style="visibility:hidden">Powered by Weebly</div>
<form method="post" action="https://evil-collect.xyz/gate">
<input type="email" name="email">
<input type="password" name="password">
<button type="submit">Sign In</button>
</form>
<a href="#">skip</a>
<a href="/help">help</a>
<a href="https://other.example.org/x">terms</a>
<iframe src="https://frame.example.net/f"></iframe>
<script>var x=1;</script>
<img src="logo.png">
</body></html>`

func TestExtractPhishingPage(t *testing.T) {
	m, err := Extract(Page{URL: "https://paypal-verify-3.weebly.com/login", HTML: phishHTML})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		FBrandInURL:       1,
		FHasLoginForm:     1,
		FPasswordFields:   1,
		FNumIFrames:       1,
		FHiddenElements:   1,
		FNumScripts:       1,
		FNumImages:        1,
		FExternalAction:   1,
		FTitleBrand:       1,
		FObfuscatedBanner: 1,
		FNoindex:          1,
		FEmptyLinks:       1,
		FInternalLinks:    1,
		FExternalLinks:    1,
		FHasHTTPS:         1,
		FIPHost:           0,
		FCheapTLD:         0,
		FMultipleTLDs:     0,
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
	if m[FSensitiveWords] < 2 { // "verify", "login"
		t.Errorf("sensitive words = %v, want >= 2", m[FSensitiveWords])
	}
	if m[FURLLength] != float64(len("https://paypal-verify-3.weebly.com/login")) {
		t.Errorf("url length = %v", m[FURLLength])
	}
}

const benignHTML = `<!DOCTYPE html>
<html><head><title>Rosewood Bakery</title></head>
<body>
<div class="weebly-footer" id="weebly-banner">Powered by Weebly</div>
<a href="/menu">menu</a><a href="/about">about</a>
<p>Fresh bread daily since 2009.</p>
</body></html>`

func TestExtractBenignPage(t *testing.T) {
	m, err := Extract(Page{URL: "https://rosewood-bakery.weebly.com/", HTML: benignHTML})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{FHasLoginForm, FPasswordFields, FObfuscatedBanner, FNoindex, FBrandInURL, FTitleBrand, FNumIFrames, FExternalAction} {
		if m[k] != 0 {
			t.Errorf("%s = %v, want 0 on benign page", k, m[k])
		}
	}
	if m[FInternalLinks] != 2 {
		t.Errorf("internal links = %v, want 2", m[FInternalLinks])
	}
}

func TestVisibleBannerIsNotObfuscated(t *testing.T) {
	// The banner div is present but NOT hidden — the feature must stay 0.
	m, err := Extract(Page{URL: "https://x.weebly.com/", HTML: benignHTML})
	if err != nil {
		t.Fatal(err)
	}
	if m[FObfuscatedBanner] != 0 {
		t.Fatal("visible banner flagged as obfuscated")
	}
}

func TestHiddenNonBannerNotObfuscatedBanner(t *testing.T) {
	html := `<html><body><div class="popup" style="display:none">promo</div></body></html>`
	m, err := Extract(Page{URL: "https://x.weebly.com/", HTML: html})
	if err != nil {
		t.Fatal(err)
	}
	if m[FObfuscatedBanner] != 0 {
		t.Fatal("hidden non-banner element flagged as obfuscated banner")
	}
	if m[FHiddenElements] != 1 {
		t.Fatalf("hidden elements = %v, want 1", m[FHiddenElements])
	}
}

func TestMultipleTLDsFeature(t *testing.T) {
	m, err := Extract(Page{URL: "https://paypal.com.secure-login.xyz/x", HTML: "<html></html>"})
	if err != nil {
		t.Fatal(err)
	}
	if m[FMultipleTLDs] != 1 {
		t.Fatal("com-in-subdomain not detected")
	}
	if m[FCheapTLD] != 1 {
		t.Fatal("xyz not flagged cheap")
	}
}

func TestVectorProjection(t *testing.T) {
	m := map[string]float64{FURLLength: 42, FNoindex: 1}
	v := Vector([]string{FURLLength, FNoindex, FIPHost}, m)
	if v[0] != 42 || v[1] != 1 || v[2] != 0 {
		t.Fatalf("vector = %v", v)
	}
}

func TestNameSetsConsistent(t *testing.T) {
	if len(BaseStackNames) != 20 {
		t.Fatalf("base set = %d features, want 20 (8 URL + 12 HTML)", len(BaseStackNames))
	}
	if len(FreePhishNames) != 22 {
		t.Fatalf("freephish set = %d features, want 22", len(FreePhishNames))
	}
	inFree := map[string]bool{}
	for _, n := range FreePhishNames {
		inFree[n] = true
	}
	// The two inapplicable features are dropped; the two FWB ones added.
	if inFree[FHasHTTPS] || inFree[FMultipleTLDs] {
		t.Fatal("FreePhish set must drop https/multi-TLD (Section 4.2)")
	}
	if !inFree[FObfuscatedBanner] || !inFree[FNoindex] {
		t.Fatal("FreePhish set must add the FWB features")
	}
}

func TestExtractOnGeneratedSites(t *testing.T) {
	g := webgen.NewGenerator(5, nil, nil)
	svc, _ := fwb.ByKey("weebly")
	nObf, nNoidx, nLogin := 0, 0, 0
	const n = 200
	for i := 0; i < n; i++ {
		site := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, at)
		m, err := Extract(Page{URL: site.URL, HTML: site.HTML})
		if err != nil {
			t.Fatal(err)
		}
		if m[FObfuscatedBanner] == 1 {
			nObf++
		}
		if m[FNoindex] == 1 {
			nNoidx++
		}
		if m[FHasLoginForm] == 1 {
			nLogin++
		}
	}
	if nLogin != n {
		t.Errorf("login form detected on %d/%d credential-phishing pages", nLogin, n)
	}
	if f := float64(nObf) / n; f < webgen.BannerObfuscationRate-0.1 || f > webgen.BannerObfuscationRate+0.1 {
		t.Errorf("obfuscated banner rate = %.2f, want ≈%.2f", f, webgen.BannerObfuscationRate)
	}
	if f := float64(nNoidx) / n; f < webgen.NoindexRate-0.1 || f > webgen.NoindexRate+0.1 {
		t.Errorf("noindex rate = %.2f, want ≈%.2f", f, webgen.NoindexRate)
	}
}

func TestExtractBadURL(t *testing.T) {
	if _, err := Extract(Page{URL: "http://bad url with space", HTML: ""}); err == nil {
		t.Fatal("bad URL must error")
	}
}

// Property: extraction never panics on arbitrary HTML and always returns
// every named feature with a finite value.
func TestPropertyExtractTotal(t *testing.T) {
	f := func(html string) bool {
		if len(html) > 400 {
			html = html[:400]
		}
		m, err := Extract(Page{URL: "https://site-1.weebly.com/", HTML: html})
		if err != nil {
			return false
		}
		for _, n := range FreePhishNames {
			v, ok := m[n]
			if !ok || v != v /* NaN check */ || v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExtract(b *testing.B) {
	g := webgen.NewGenerator(5, nil, nil)
	svc, _ := fwb.ByKey("weebly")
	site := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, at)
	p := Page{URL: site.URL, HTML: site.HTML}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestObfuscationFeaturesAndNormalizedBrandMatch(t *testing.T) {
	// Percent-encoded brand: the plain scan misses "paypal", the
	// normalized scan catches it, and the obfuscation itself is flagged.
	m, err := Extract(Page{URL: "https://x.evil-site.xyz/p%61ypal/login", HTML: "<html></html>"})
	if err != nil {
		t.Fatal(err)
	}
	if m[FBrandInURL] != 1 {
		t.Error("percent-encoded brand not matched after normalization")
	}
	if m[FPercentEncoded] != 1 {
		t.Error("percent-encoded letters not flagged")
	}

	// Homoglyph brand in host (Cyrillic а).
	m, err = Extract(Page{URL: "https://pаypal-secure.example.xyz/login", HTML: "<html></html>"})
	if err != nil {
		t.Fatal(err)
	}
	if m[FHomoglyphs] != 1 {
		t.Error("homoglyphs not flagged")
	}
	if m[FBrandInURL] != 1 {
		t.Error("homoglyph brand not matched after folding")
	}

	// Punycode host.
	m, err = Extract(Page{URL: "https://xn--pypal-4ve.com/login", HTML: "<html></html>"})
	if err != nil {
		t.Fatal(err)
	}
	if m[FPunycodeHost] != 1 {
		t.Error("punycode host not flagged")
	}

	// Clean URL: none of the obfuscation features fire.
	m, err = Extract(Page{URL: "https://rose-bakery.weebly.com/", HTML: "<html></html>"})
	if err != nil {
		t.Fatal(err)
	}
	if m[FPercentEncoded] != 0 || m[FPunycodeHost] != 0 || m[FHomoglyphs] != 0 {
		t.Errorf("clean URL flagged: %v %v %v", m[FPercentEncoded], m[FPunycodeHost], m[FHomoglyphs])
	}
}

func TestExtendedNamesSuperset(t *testing.T) {
	if len(ExtendedNames) != len(FreePhishNames)+3 {
		t.Fatalf("extended = %d features, want FreePhish+3", len(ExtendedNames))
	}
	inExt := map[string]bool{}
	for _, n := range ExtendedNames {
		inExt[n] = true
	}
	for _, n := range FreePhishNames {
		if !inExt[n] {
			t.Fatalf("extended set missing %q", n)
		}
	}
}
