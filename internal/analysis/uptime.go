package analysis

import (
	"sort"
	"time"
)

// Attack lifecycle analysis: how long does a phishing site stay reachable?
// The paper's core qualitative claim — FWB attacks "resist takedowns for
// extended periods" — becomes quantitative here: per-URL uptime is the
// interval from first share to hosting takedown, right-censored at the
// observation horizon for sites that were never removed.

// UptimeStats summarizes a cohort's site lifetimes.
type UptimeStats struct {
	Total    int
	Removed  int           // takedowns within the horizon
	Censored int           // still alive at the horizon
	Median   time.Duration // median lifetime, counting censored sites at the horizon
	Mean     time.Duration // mean lifetime with the same convention
}

// SurvivalFraction reports the share of sites still alive at the horizon.
func (u UptimeStats) SurvivalFraction() float64 {
	if u.Total == 0 {
		return 0
	}
	return float64(u.Censored) / float64(u.Total)
}

// Uptime computes lifecycle statistics for the cohort over the horizon.
func (s *Study) Uptime(c Cohort, horizon time.Duration) UptimeStats {
	var stats UptimeStats
	var lifetimes []time.Duration
	// Accumulate in float64: a cohort of tens of thousands of two-week
	// lifetimes overflows int64 nanoseconds (found by the full-scale run).
	var sum float64
	for _, r := range s.Select(c) {
		stats.Total++
		life := horizon
		if r.HostRemoved {
			if d := r.Delay(r.HostRemovedAt); d >= 0 && d < horizon {
				life = d
				stats.Removed++
			} else {
				stats.Censored++
			}
		} else {
			stats.Censored++
		}
		lifetimes = append(lifetimes, life)
		sum += float64(life)
	}
	if len(lifetimes) > 0 {
		sort.Slice(lifetimes, func(i, j int) bool { return lifetimes[i] < lifetimes[j] })
		stats.Median = lifetimes[len(lifetimes)/2]
		stats.Mean = time.Duration(sum / float64(len(lifetimes)))
	}
	return stats
}

// SurvivalCurve returns the fraction of cohort sites still alive at each
// elapsed mark — a Kaplan-Meier-style step series (no competing risks:
// takedown is the only death event recorded).
func (s *Study) SurvivalCurve(c Cohort, marks []time.Duration) []float64 {
	recs := s.Select(c)
	out := make([]float64, len(marks))
	if len(recs) == 0 {
		return out
	}
	for i, m := range marks {
		alive := 0
		for _, r := range recs {
			dead := r.HostRemoved && r.Delay(r.HostRemovedAt) <= m
			if !dead {
				alive++
			}
		}
		out[i] = float64(alive) / float64(len(recs))
	}
	return out
}
