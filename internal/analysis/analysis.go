// Package analysis implements the FreePhish analysis module (§4.4): it
// aggregates per-URL longitudinal observations into the paper's evaluation
// artifacts — blocklist coverage and response times (Table 3, Figure 6),
// browser-tool detection distributions (Figures 7–8), per-FWB
// countermeasure performance (Table 4), platform effectiveness (Figure 9),
// targeted-brand histograms (Figure 5), and the §5.5 evasive-attack census.
package analysis

import (
	"sort"
	"time"

	"freephish/internal/blocklist"
	"freephish/internal/report"
	"freephish/internal/threat"
)

// Record is the full longitudinal observation of one URL.
type Record struct {
	Target *threat.Target
	// ClassifierScore is the FreePhish model's P(phishing).
	ClassifierScore float64
	// Classified reports whether FreePhish flagged the URL.
	Classified   bool
	ClassifiedAt time.Time
	// Blocklist verdicts by entity name.
	Blocklist map[string]blocklist.Verdict
	// VTDetections are sorted engine detection times.
	VTDetections []time.Time
	// Platform post removal.
	PlatformRemoved   bool
	PlatformRemovedAt time.Time
	// Hosting takedown (FWB service or hosting provider).
	HostRemoved   bool
	HostRemovedAt time.Time
	// FWB report response (§5.3).
	Report report.Outcome
	// Tier names the cascade tier that admitted the record: "" for the
	// full fetch+classify path, "lexical" for a URL-only short-circuit
	// (such records were never fetched, so their Signature is empty).
	Tier string
	// Signature is the page's markup fingerprint (classes + resource
	// includes), captured at crawl time for kit-family clustering.
	Signature map[string]bool
}

// Delay returns the share→event delay.
func (r *Record) Delay(at time.Time) time.Duration { return at.Sub(r.Target.SharedAt) }

// Cohort selects records.
type Cohort func(*Record) bool

// Cohort selectors for the paper's comparisons.
var (
	FWBCohort        Cohort = func(r *Record) bool { return r.Target.IsFWB() }
	SelfHostedCohort Cohort = func(r *Record) bool { return !r.Target.IsFWB() }
)

// OnPlatform restricts a cohort to one platform.
func OnPlatform(c Cohort, p threat.Platform) Cohort {
	return func(r *Record) bool { return c(r) && r.Target.Platform == p }
}

// OnService restricts to one FWB service key.
func OnService(key string) Cohort {
	return func(r *Record) bool { return r.Target.IsFWB() && r.Target.Service.Key == key }
}

// Study accumulates records.
type Study struct {
	Records []*Record
}

// Add appends a record.
func (s *Study) Add(r *Record) { s.Records = append(s.Records, r) }

// Select returns the records matching the cohort.
func (s *Study) Select(c Cohort) []*Record {
	var out []*Record
	for _, r := range s.Records {
		if c(r) {
			out = append(out, r)
		}
	}
	return out
}

// CoverageRow is one cell group of Table 3/4: coverage within the horizon
// plus min/max/median response times over covered URLs.
type CoverageRow struct {
	Covered  int
	Total    int
	Coverage float64
	Min      time.Duration
	Max      time.Duration
	Median   time.Duration
}

// eventTime extracts the observation instant for an entity from a record:
// a blocklist name, "platform", or "host".
func eventTime(r *Record, entity string) (time.Time, bool) {
	switch entity {
	case "platform":
		return r.PlatformRemovedAt, r.PlatformRemoved
	case "host":
		return r.HostRemovedAt, r.HostRemoved
	default:
		v, ok := r.Blocklist[entity]
		if !ok {
			return time.Time{}, false
		}
		return v.At, v.Detected
	}
}

// Coverage computes a CoverageRow for the entity over the cohort within
// the horizon.
func (s *Study) Coverage(entity string, c Cohort, horizon time.Duration) CoverageRow {
	var row CoverageRow
	var delays []time.Duration
	for _, r := range s.Select(c) {
		row.Total++
		at, ok := eventTime(r, entity)
		if !ok {
			continue
		}
		d := r.Delay(at)
		if d < 0 || d > horizon {
			continue
		}
		delays = append(delays, d)
	}
	row.Covered = len(delays)
	if row.Total > 0 {
		row.Coverage = float64(row.Covered) / float64(row.Total)
	}
	if len(delays) > 0 {
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		row.Min = delays[0]
		row.Max = delays[len(delays)-1]
		row.Median = delays[len(delays)/2]
	}
	return row
}

// CoverageCurve returns the cumulative coverage fraction at each elapsed
// mark — the Figure 6/9 time series.
func (s *Study) CoverageCurve(entity string, c Cohort, marks []time.Duration) []float64 {
	recs := s.Select(c)
	out := make([]float64, len(marks))
	if len(recs) == 0 {
		return out
	}
	for i, m := range marks {
		n := 0
		for _, r := range recs {
			if at, ok := eventTime(r, entity); ok {
				if d := r.Delay(at); d >= 0 && d <= m {
					n++
				}
			}
		}
		out[i] = float64(n) / float64(len(recs))
	}
	return out
}

// DetectionCounts returns, per record in the cohort, the number of VT
// engine detections accrued by elapsed — the Figure 7 CDF input.
func (s *Study) DetectionCounts(c Cohort, elapsed time.Duration) []int {
	var out []int
	for _, r := range s.Select(c) {
		n := 0
		for _, d := range r.VTDetections {
			if r.Delay(d) <= elapsed {
				n++
			}
		}
		out = append(out, n)
	}
	return out
}

// CDF returns P(X <= x) over the integer samples for each x in xs.
func CDF(samples []int, xs []int) []float64 {
	out := make([]float64, len(xs))
	if len(samples) == 0 {
		return out
	}
	for i, x := range xs {
		n := 0
		for _, s := range samples {
			if s <= x {
				n++
			}
		}
		out[i] = float64(n) / float64(len(samples))
	}
	return out
}

// MedianInt returns the median of integer samples (0 when empty).
func MedianInt(samples []int) int {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int(nil), samples...)
	sort.Ints(s)
	return s[len(s)/2]
}

// BrandHistogram counts targeted brands over the cohort (Figure 5).
func (s *Study) BrandHistogram(c Cohort) map[string]int {
	out := map[string]int{}
	for _, r := range s.Select(c) {
		if r.Target.Brand != "" {
			out[r.Target.Brand]++
		}
	}
	return out
}

// TopBrands returns the n most-targeted brand keys in descending order.
func (s *Study) TopBrands(c Cohort, n int) []string {
	h := s.BrandHistogram(c)
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if h[keys[i]] != h[keys[j]] {
			return h[keys[i]] > h[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if n > len(keys) {
		n = len(keys)
	}
	return keys[:n]
}

// EvasiveCensus is the §5.5 breakdown for one FWB service.
type EvasiveCensus struct {
	Service  string
	Total    int
	TwoStep  int
	IFrame   int
	DriveBy  int
	NoFields int // URLs without credential fields
}

// EvasiveByService computes the §5.5 census over FWB records.
func (s *Study) EvasiveByService() map[string]*EvasiveCensus {
	out := map[string]*EvasiveCensus{}
	for _, r := range s.Select(FWBCohort) {
		key := r.Target.Service.Key
		c, ok := out[key]
		if !ok {
			c = &EvasiveCensus{Service: r.Target.Service.Name}
			out[key] = c
		}
		c.Total++
		if r.Target.TwoStepLink {
			c.TwoStep++
		}
		if r.Target.HiddenIFrame {
			c.IFrame++
		}
		if r.Target.DriveByDownload {
			c.DriveBy++
		}
		if !r.Target.HasCredentialFields {
			c.NoFields++
		}
	}
	return out
}

// MedianDomainAge returns the cohort's median WHOIS domain age — the §3
// contrast (13.7 years FWB vs 71 days self-hosted).
func (s *Study) MedianDomainAge(c Cohort) time.Duration {
	var ages []time.Duration
	for _, r := range s.Select(c) {
		ages = append(ages, r.Target.DomainAge)
	}
	if len(ages) == 0 {
		return 0
	}
	sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
	return ages[len(ages)/2]
}

// Fraction reports the share of cohort records satisfying pred.
func (s *Study) Fraction(c Cohort, pred func(*Record) bool) float64 {
	recs := s.Select(c)
	if len(recs) == 0 {
		return 0
	}
	n := 0
	for _, r := range recs {
		if pred(r) {
			n++
		}
	}
	return float64(n) / float64(len(recs))
}

// TimelinePoint is one interval of the measurement window.
type TimelinePoint struct {
	Start    time.Time
	FWB      int
	Self     int
	Detected int // URLs any blocklist listed within the interval of sharing
}

// Timeline buckets the study's URLs by share time — the measurement-window
// companion to Figure 1's historical series, showing the rising zero-day
// volume FreePhish streamed week over week.
func (s *Study) Timeline(bucket time.Duration) []TimelinePoint {
	if len(s.Records) == 0 || bucket <= 0 {
		return nil
	}
	start := s.Records[0].Target.SharedAt
	end := start
	for _, r := range s.Records {
		if r.Target.SharedAt.Before(start) {
			start = r.Target.SharedAt
		}
		if r.Target.SharedAt.After(end) {
			end = r.Target.SharedAt
		}
	}
	start = start.Truncate(bucket)
	n := int(end.Sub(start)/bucket) + 1
	points := make([]TimelinePoint, n)
	for i := range points {
		points[i].Start = start.Add(time.Duration(i) * bucket)
	}
	for _, r := range s.Records {
		i := int(r.Target.SharedAt.Sub(start) / bucket)
		if i < 0 || i >= n {
			continue
		}
		if r.Target.IsFWB() {
			points[i].FWB++
		} else {
			points[i].Self++
		}
		for _, v := range r.Blocklist {
			if v.Detected {
				points[i].Detected++
				break
			}
		}
	}
	return points
}

// CategoryHistogram counts targeted-brand sectors over the cohort — the
// sector view of Figure 5 (banks vs social vs couriers …).
func (s *Study) CategoryHistogram(c Cohort, categoryOf func(brandKey string) string) map[string]int {
	out := map[string]int{}
	for _, r := range s.Select(c) {
		if r.Target.Brand == "" {
			continue
		}
		if cat := categoryOf(r.Target.Brand); cat != "" {
			out[cat]++
		}
	}
	return out
}

// TimeToCoverage returns how long after first share the entity needs to
// cover the given fraction of the cohort, and whether it ever does within
// the horizon — the "GSB reaches 50% of self-hosted URLs in under an hour"
// style of statement Figures 6 and 9 support.
func (s *Study) TimeToCoverage(entity string, c Cohort, frac float64, horizon time.Duration) (time.Duration, bool) {
	recs := s.Select(c)
	if len(recs) == 0 || frac <= 0 {
		return 0, false
	}
	var delays []time.Duration
	for _, r := range recs {
		if at, ok := eventTime(r, entity); ok {
			if d := r.Delay(at); d >= 0 && d <= horizon {
				delays = append(delays, d)
			}
		}
	}
	need := int(frac * float64(len(recs)))
	if need < 1 {
		need = 1
	}
	if len(delays) < need {
		return 0, false
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	return delays[need-1], true
}

// SpearmanRho computes Spearman's rank correlation between two equal-length
// vectors (ties get average ranks). It returns 0 for degenerate input.
// Used to test the paper's observation that heavily-abused FWBs receive
// more blocklist scrutiny: rank-correlate per-service abuse volume with
// per-service coverage.
func SpearmanRho(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return 0
	}
	rx := ranks(xs)
	ry := ranks(ys)
	// Pearson over ranks.
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += rx[i]
		my += ry[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var num, dx, dy float64
	for i := 0; i < n; i++ {
		a, b := rx[i]-mx, ry[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / (sqrt(dx) * sqrt(dy))
}

func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method is plenty here; avoids importing math for one call.
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}
