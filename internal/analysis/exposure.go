package analysis

import (
	"math"
	"time"

	"freephish/internal/simclock"
)

// Victim-exposure analysis, in the spirit of Golden Hour (Oest et al.,
// cited as the paper's measurement lineage): how many users click a
// phishing link before the defenses act? Clicks on a post arrive with
// exponentially decaying engagement; removal (whichever comes first of the
// platform deleting the post or the host taking the site down) cuts the
// exposure off. The FWB cohort's longer lifetimes translate directly into
// more victims per URL — the user-impact form of the paper's takedown
// findings.

// clickDecay is the engagement half-life driver: expected clicks in the
// first t hours ∝ 1 − exp(−t/τ) with τ = 12h (most engagement happens on
// the first day).
const clickDecayTau = 12 * time.Hour

// Exposure is one URL's victim-click accounting.
type Exposure struct {
	// Clicks that landed before any removal (the victims).
	Clicks float64
	// Prevented clicks: engagement the removal cut off.
	Prevented float64
}

// ExposureSummary aggregates a cohort.
type ExposureSummary struct {
	URLs              int
	TotalClicks       float64
	TotalPrevented    float64
	MeanClicksPerURL  float64
	PreventedFraction float64 // prevented / (clicks + prevented)
}

// exposureOf computes one record's exposure. potential is the URL's total
// engagement had nothing been removed within the horizon.
func exposureOf(r *Record, potential float64, horizon time.Duration) Exposure {
	// The exposure window ends at the earliest removal.
	end := horizon
	if r.PlatformRemoved {
		if d := r.Delay(r.PlatformRemovedAt); d >= 0 && d < end {
			end = d
		}
	}
	if r.HostRemoved {
		if d := r.Delay(r.HostRemovedAt); d >= 0 && d < end {
			end = d
		}
	}
	frac := 1 - math.Exp(-float64(end)/float64(clickDecayTau))
	full := 1 - math.Exp(-float64(horizon)/float64(clickDecayTau))
	clicks := potential * frac
	return Exposure{Clicks: clicks, Prevented: potential*full - clicks}
}

// ExposureStats simulates victim clicks over the cohort. Per-URL total
// engagement is drawn log-normally (median ≈ 9 clicks, matching the
// heavy-tailed engagement of social phishing lures); rng keeps the draw
// reproducible per study seed.
func (s *Study) ExposureStats(c Cohort, horizon time.Duration, rng *simclock.RNG) ExposureSummary {
	var sum ExposureSummary
	for _, r := range s.Select(c) {
		potential := rng.LogNormal(9, 1.1)
		e := exposureOf(r, potential, horizon)
		sum.URLs++
		sum.TotalClicks += e.Clicks
		sum.TotalPrevented += e.Prevented
	}
	if sum.URLs > 0 {
		sum.MeanClicksPerURL = sum.TotalClicks / float64(sum.URLs)
	}
	if t := sum.TotalClicks + sum.TotalPrevented; t > 0 {
		sum.PreventedFraction = sum.TotalPrevented / t
	}
	return sum
}
