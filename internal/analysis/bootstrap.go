package analysis

import (
	"sort"
	"time"

	"freephish/internal/simclock"
)

// Bootstrap confidence intervals: measurement papers report point
// estimates; a reproduction should know how wide they are. CoverageCI
// resamples the cohort with replacement and returns the percentile
// interval for the coverage fraction — cheap, distribution-free, and
// honest about small per-FWB cell sizes in Table 4.

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point float64
	Low   float64
	High  float64
}

// Width returns High - Low.
func (c CI) Width() float64 { return c.High - c.Low }

// CoverageCI bootstraps the entity's coverage over the cohort. level is
// the confidence level (e.g. 0.95); nBoot the number of resamples.
func (s *Study) CoverageCI(entity string, c Cohort, horizon time.Duration, level float64, nBoot int, rng *simclock.RNG) CI {
	recs := s.Select(c)
	n := len(recs)
	point := s.Coverage(entity, c, horizon).Coverage
	if n == 0 || nBoot <= 0 {
		return CI{Point: point}
	}
	// Precompute per-record hit indicators once.
	hits := make([]bool, n)
	for i, r := range recs {
		if at, ok := eventTime(r, entity); ok {
			if d := r.Delay(at); d >= 0 && d <= horizon {
				hits[i] = true
			}
		}
	}
	samples := make([]float64, nBoot)
	for b := 0; b < nBoot; b++ {
		hit := 0
		for i := 0; i < n; i++ {
			if hits[rng.Intn(n)] {
				hit++
			}
		}
		samples[b] = float64(hit) / float64(n)
	}
	sort.Float64s(samples)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(nBoot))
	hi := int((1 - alpha) * float64(nBoot))
	if hi >= nBoot {
		hi = nBoot - 1
	}
	return CI{Point: point, Low: samples[lo], High: samples[hi]}
}
