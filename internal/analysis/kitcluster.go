package analysis

import (
	"sort"
	"strings"

	"freephish/internal/htmlx"
)

// Kit-family clustering: pages generated from the same phishing kit share
// markup fingerprints (CSS class vocabularies, fixed resource includes)
// across unrelated domains. Clustering page signatures recovers kit
// families — the analysis behind kit-detection studies the paper builds on
// (§6) and a natural extension of FreePhish's self-hosted pipeline.

// PageSignature extracts a page's markup fingerprint: the set of CSS class
// tokens plus the static resource paths it includes. Per-page random
// attributes (ids, data blobs) are excluded by construction.
func PageSignature(html string) map[string]bool {
	sig := make(map[string]bool)
	doc := htmlx.Parse(html)
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Type != htmlx.ElementNode {
			return true
		}
		if cls, ok := n.Attr("class"); ok {
			for _, tok := range strings.Fields(cls) {
				sig["c:"+tok] = true
			}
		}
		switch n.Tag {
		case "link":
			if href, ok := n.Attr("href"); ok {
				sig["r:"+href] = true
			}
		case "script":
			if src, ok := n.Attr("src"); ok {
				sig["r:"+src] = true
			}
		}
		return true
	})
	return sig
}

// Jaccard returns |a∩b| / |a∪b|; two empty signatures count as identical.
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ClusterSignatures groups page signatures into families with greedy
// leader clustering: each page joins the first existing cluster whose
// leader it matches at or above threshold, else founds a new cluster.
// Returned clusters are sorted by descending size; indices refer to the
// input order.
func ClusterSignatures(sigs []map[string]bool, threshold float64) [][]int {
	var leaders []int
	var clusters [][]int
	for i, sig := range sigs {
		placed := false
		for c, leader := range leaders {
			if Jaccard(sig, sigs[leader]) >= threshold {
				clusters[c] = append(clusters[c], i)
				placed = true
				break
			}
		}
		if !placed {
			leaders = append(leaders, i)
			clusters = append(clusters, []int{i})
		}
	}
	sort.SliceStable(clusters, func(a, b int) bool { return len(clusters[a]) > len(clusters[b]) })
	return clusters
}

// ClusterPurity scores a clustering against ground-truth labels: the
// fraction of pages whose cluster's majority label matches their own.
func ClusterPurity(clusters [][]int, labels []string) float64 {
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for _, cluster := range clusters {
		counts := map[string]int{}
		for _, i := range cluster {
			counts[labels[i]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(labels))
}

// KitFamily is one recovered markup family over the self-hosted cohort.
type KitFamily struct {
	Size      int
	TopBrands []string
	Example   string // one member URL
}

// KitFamilies clusters the self-hosted cohort's page signatures and
// returns families of at least minSize, largest first — the kit-market
// view of the study's self-hosted attacks.
func (s *Study) KitFamilies(threshold float64, minSize int) []KitFamily {
	var recs []*Record
	for _, r := range s.Select(SelfHostedCohort) {
		// Records without a captured signature (e.g. loaded from a stream
		// written by an older tool) cannot cluster meaningfully.
		if len(r.Signature) > 0 {
			recs = append(recs, r)
		}
	}
	sigs := make([]map[string]bool, len(recs))
	for i, r := range recs {
		sigs[i] = r.Signature
	}
	clusters := ClusterSignatures(sigs, threshold)
	var out []KitFamily
	for _, c := range clusters {
		if len(c) < minSize {
			continue
		}
		brandCount := map[string]int{}
		for _, i := range c {
			if b := recs[i].Target.Brand; b != "" {
				brandCount[b]++
			}
		}
		var brands []string
		for b := range brandCount {
			brands = append(brands, b)
		}
		sort.Slice(brands, func(i, j int) bool {
			if brandCount[brands[i]] != brandCount[brands[j]] {
				return brandCount[brands[i]] > brandCount[brands[j]]
			}
			return brands[i] < brands[j]
		})
		if len(brands) > 3 {
			brands = brands[:3]
		}
		out = append(out, KitFamily{Size: len(c), TopBrands: brands, Example: recs[c[0]].Target.URL})
	}
	return out
}
