package analysis

// CohenKappa computes Cohen's kappa inter-rater agreement between two
// binary label vectors — the statistic the paper reports (0.78) for its
// two qualitative coders (Section 3). Inputs must be equal-length vectors
// of 0/1 labels. Returns 1 for perfect agreement when expected agreement
// is also perfect (degenerate single-class case).
func CohenKappa(a, b []int) float64 {
	n := len(a)
	if n == 0 || len(b) != n {
		return 0
	}
	var agree int
	var aPos, bPos int
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			agree++
		}
		aPos += a[i]
		bPos += b[i]
	}
	po := float64(agree) / float64(n)
	pa := float64(aPos) / float64(n)
	pb := float64(bPos) / float64(n)
	pe := pa*pb + (1-pa)*(1-pb)
	if pe >= 1 {
		if po >= 1 {
			return 1
		}
		return 0
	}
	return (po - pe) / (1 - pe)
}
