package analysis

import (
	"testing"
	"time"

	"freephish/internal/webgen"
)

func TestPageSignatureExtractsClassesAndResources(t *testing.T) {
	html := `<html><head><link rel="stylesheet" href="assets/xb-style.css"></head>
<body><div class="xb-wrapper main" data-kid="r4nd0m"><p class="xb-text">x</p></div>
<script src="assets/xb-anti.js"></script></body></html>`
	sig := PageSignature(html)
	for _, want := range []string{"c:xb-wrapper", "c:main", "c:xb-text", "r:assets/xb-style.css", "r:assets/xb-anti.js"} {
		if !sig[want] {
			t.Errorf("signature missing %q: %v", want, sig)
		}
	}
	if sig["c:r4nd0m"] {
		t.Error("random data attribute leaked into signature")
	}
}

func TestJaccard(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if got := Jaccard(a, b); got != 1.0/3.0 {
		t.Fatalf("jaccard = %v", got)
	}
	if Jaccard(a, a) != 1 {
		t.Fatal("self-jaccard != 1")
	}
	if Jaccard(nil, nil) != 1 {
		t.Fatal("empty-empty != 1")
	}
	if Jaccard(a, nil) != 0 {
		t.Fatal("a vs empty != 0")
	}
}

func TestClusterSignaturesGreedy(t *testing.T) {
	sigs := []map[string]bool{
		{"a": true, "b": true},
		{"a": true, "b": true, "c": true}, // joins cluster 0 (jaccard 2/3)
		{"x": true, "y": true},            // new cluster
		{"a": true, "b": true},            // joins cluster 0
	}
	clusters := ClusterSignatures(sigs, 0.5)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	if len(clusters[0]) != 3 || len(clusters[1]) != 1 {
		t.Fatalf("cluster sizes = %v", clusters)
	}
}

func TestKitFamiliesRecoveredFromGeneratedPages(t *testing.T) {
	// Generate a mixed self-hosted corpus: kit-built pages plus hand-rolled
	// ones, then recover the kit families from markup signatures alone.
	g := webgen.NewGenerator(17, nil, nil)
	at := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	var sigs []map[string]bool
	var labels []string
	for i := 0; i < 80; i++ {
		site, kitName := g.SelfHostedKitPhishing(at)
		sigs = append(sigs, PageSignature(site.HTML))
		labels = append(labels, kitName)
	}
	for i := 0; i < 20; i++ {
		site := g.SelfHostedPhishing(at)
		sigs = append(sigs, PageSignature(site.HTML))
		labels = append(labels, "hand-rolled")
	}
	clusters := ClusterSignatures(sigs, 0.5)
	purity := ClusterPurity(clusters, labels)
	t.Logf("clusters=%d purity=%.3f (kit market: %v)", len(clusters), purity, webgen.KitNames())
	if purity < 0.95 {
		t.Fatalf("kit-family purity = %.3f, want >= 0.95", purity)
	}
	// The kit families should dominate: the largest clusters must be
	// multi-page kit families, not singletons.
	if len(clusters[0]) < 15 {
		t.Fatalf("largest family has %d pages, want a dominant kit", len(clusters[0]))
	}
	// Hand-rolled pages (fully random classes) must not glue together.
	for _, c := range clusters {
		if labels[c[0]] == "hand-rolled" && len(c) > 3 {
			t.Fatalf("hand-rolled pages formed a %d-page cluster", len(c))
		}
	}
}

func TestClusterPurityDegenerate(t *testing.T) {
	if ClusterPurity(nil, nil) != 0 {
		t.Fatal("empty purity should be 0")
	}
	if p := ClusterPurity([][]int{{0, 1}}, []string{"a", "b"}); p != 0.5 {
		t.Fatalf("purity = %v, want 0.5", p)
	}
}
