package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"freephish/internal/blocklist"
	"freephish/internal/ctlog"
	"freephish/internal/fwb"
	"freephish/internal/threat"
)

// JSONL persistence: a study's records serialize to one JSON object per
// line, the interchange format the paper's dataset release would use
// ("our initial dataset will be available upon request", §8). Reloaded
// studies support every aggregation; the live *fwb.Site handle is not
// persisted (site state is simulation-internal).

// recordDTO is the flat wire form of a Record.
type recordDTO struct {
	URL        string          `json:"url"`
	ServiceKey string          `json:"service,omitempty"`
	Kind       fwb.SiteKind    `json:"kind"`
	Brand      string          `json:"brand,omitempty"`
	SharedAt   time.Time       `json:"shared_at"`
	Platform   threat.Platform `json:"platform"`
	PostID     string          `json:"post_id"`

	HasCredentialFields bool                 `json:"credential_fields"`
	Noindex             bool                 `json:"noindex"`
	BannerObfuscated    bool                 `json:"banner_obfuscated"`
	HiddenIFrame        bool                 `json:"hidden_iframe"`
	DriveByDownload     bool                 `json:"drive_by"`
	TwoStepLink         bool                 `json:"two_step"`
	DomainAgeDays       float64              `json:"domain_age_days"`
	CertType            ctlog.ValidationType `json:"cert_type,omitempty"`
	InCTLog             bool                 `json:"in_ct_log"`
	SearchIndexed       bool                 `json:"search_indexed"`
	TLS                 bool                 `json:"tls"`

	Signature []string `json:"signature,omitempty"`

	// Tier is empty for full-path records, so cascade-off studies
	// serialize byte-identically to every prior version.
	Tier string `json:"tier,omitempty"`

	ClassifierScore float64              `json:"score"`
	ClassifiedAt    time.Time            `json:"classified_at"`
	Blocklist       map[string]time.Time `json:"blocklist,omitempty"` // entity -> listing time
	VTDetections    []time.Time          `json:"vt_detections,omitempty"`
	PlatformRemoved *time.Time           `json:"platform_removed_at,omitempty"`
	HostRemoved     *time.Time           `json:"host_removed_at,omitempty"`
}

func toDTO(r *Record) recordDTO {
	t := r.Target
	d := recordDTO{
		URL: t.URL, Kind: t.Kind, Brand: t.Brand,
		SharedAt: t.SharedAt, Platform: t.Platform, PostID: t.PostID,
		HasCredentialFields: t.HasCredentialFields, Noindex: t.Noindex,
		BannerObfuscated: t.BannerObfuscated, HiddenIFrame: t.HiddenIFrame,
		DriveByDownload: t.DriveByDownload, TwoStepLink: t.TwoStepLink,
		DomainAgeDays: t.DomainAge.Hours() / 24, CertType: t.CertType,
		InCTLog: t.InCTLog, SearchIndexed: t.SearchIndexed, TLS: t.TLS,
		Tier:            r.Tier,
		ClassifierScore: r.ClassifierScore, ClassifiedAt: r.ClassifiedAt,
		VTDetections: r.VTDetections,
	}
	if t.Service != nil {
		d.ServiceKey = t.Service.Key
	}
	if len(r.Signature) > 0 {
		d.Signature = make([]string, 0, len(r.Signature))
		for k := range r.Signature {
			d.Signature = append(d.Signature, k)
		}
		sort.Strings(d.Signature)
	}
	if len(r.Blocklist) > 0 {
		d.Blocklist = make(map[string]time.Time)
		for name, v := range r.Blocklist {
			if v.Detected {
				d.Blocklist[name] = v.At
			}
		}
	}
	if r.PlatformRemoved {
		at := r.PlatformRemovedAt
		d.PlatformRemoved = &at
	}
	if r.HostRemoved {
		at := r.HostRemovedAt
		d.HostRemoved = &at
	}
	return d
}

func fromDTO(d recordDTO) (*Record, error) {
	t := &threat.Target{
		URL: d.URL, Kind: d.Kind, Brand: d.Brand,
		SharedAt: d.SharedAt, Platform: d.Platform, PostID: d.PostID,
		HasCredentialFields: d.HasCredentialFields, Noindex: d.Noindex,
		BannerObfuscated: d.BannerObfuscated, HiddenIFrame: d.HiddenIFrame,
		DriveByDownload: d.DriveByDownload, TwoStepLink: d.TwoStepLink,
		DomainAge: time.Duration(d.DomainAgeDays * 24 * float64(time.Hour)),
		CertType:  d.CertType, InCTLog: d.InCTLog,
		SearchIndexed: d.SearchIndexed, TLS: d.TLS,
	}
	if d.ServiceKey != "" {
		svc, ok := fwb.ByKey(d.ServiceKey)
		if !ok {
			return nil, fmt.Errorf("analysis: unknown FWB service %q", d.ServiceKey)
		}
		t.Service = svc
	}
	r := &Record{
		Target:          t,
		ClassifierScore: d.ClassifierScore,
		Classified:      true,
		ClassifiedAt:    d.ClassifiedAt,
		Tier:            d.Tier,
		Blocklist:       make(map[string]blocklist.Verdict, len(d.Blocklist)),
		VTDetections:    d.VTDetections,
	}
	for name, at := range d.Blocklist {
		r.Blocklist[name] = blocklist.Verdict{Detected: true, At: at}
	}
	if len(d.Signature) > 0 {
		r.Signature = make(map[string]bool, len(d.Signature))
		for _, k := range d.Signature {
			r.Signature[k] = true
		}
	}
	if d.PlatformRemoved != nil {
		r.PlatformRemoved = true
		r.PlatformRemovedAt = *d.PlatformRemoved
	}
	if d.HostRemoved != nil {
		r.HostRemoved = true
		r.HostRemovedAt = *d.HostRemoved
	}
	return r, nil
}

// WriteJSONL streams the study's records to w, one JSON object per line.
func (s *Study) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range s.Records {
		if err := enc.Encode(toDTO(r)); err != nil {
			return fmt.Errorf("analysis: encode record: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a study from JSONL. Live site handles are not restored.
func ReadJSONL(r io.Reader) (*Study, error) {
	s := &Study{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var d recordDTO
		if err := dec.Decode(&d); err == io.EOF {
			return s, nil
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode record %d: %w", len(s.Records), err)
		}
		rec, err := fromDTO(d)
		if err != nil {
			return nil, err
		}
		s.Add(rec)
	}
}
