package analysis

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"freephish/internal/blocklist"
	"freephish/internal/fwb"
	"freephish/internal/simclock"
	"freephish/internal/threat"
)

var epoch = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

func rec(isFWB bool, platform threat.Platform, brand string) *Record {
	tg := &threat.Target{SharedAt: epoch, Platform: platform, Brand: brand}
	if isFWB {
		svc, _ := fwb.ByKey("weebly")
		tg.Service = svc
	}
	return &Record{Target: tg, Blocklist: map[string]blocklist.Verdict{}}
}

func TestCoverageRow(t *testing.T) {
	s := &Study{}
	for i := 0; i < 10; i++ {
		r := rec(true, threat.Twitter, "paypal")
		if i < 4 {
			r.Blocklist["GSB"] = blocklist.Verdict{Detected: true, At: epoch.Add(time.Duration(i+1) * time.Hour)}
		}
		if i == 5 {
			// Detected but outside the horizon: must not count.
			r.Blocklist["GSB"] = blocklist.Verdict{Detected: true, At: epoch.Add(10 * 24 * time.Hour)}
		}
		s.Add(r)
	}
	row := s.Coverage("GSB", FWBCohort, 7*24*time.Hour)
	if row.Total != 10 || row.Covered != 4 {
		t.Fatalf("row = %+v", row)
	}
	if row.Coverage != 0.4 {
		t.Fatalf("coverage = %v", row.Coverage)
	}
	if row.Min != time.Hour || row.Max != 4*time.Hour {
		t.Fatalf("min/max = %v/%v", row.Min, row.Max)
	}
	if row.Median != 3*time.Hour {
		t.Fatalf("median = %v", row.Median)
	}
}

func TestCoverageHostAndPlatformEntities(t *testing.T) {
	s := &Study{}
	r := rec(true, threat.Twitter, "")
	r.HostRemoved = true
	r.HostRemovedAt = epoch.Add(2 * time.Hour)
	r.PlatformRemoved = true
	r.PlatformRemovedAt = epoch.Add(5 * time.Hour)
	s.Add(r)
	if row := s.Coverage("host", FWBCohort, time.Hour*24); row.Covered != 1 || row.Median != 2*time.Hour {
		t.Fatalf("host row = %+v", row)
	}
	if row := s.Coverage("platform", FWBCohort, time.Hour*24); row.Covered != 1 || row.Median != 5*time.Hour {
		t.Fatalf("platform row = %+v", row)
	}
}

func TestCoverageCurveMonotone(t *testing.T) {
	s := &Study{}
	for i := 0; i < 20; i++ {
		r := rec(false, threat.Facebook, "")
		r.Blocklist["GSB"] = blocklist.Verdict{Detected: true, At: epoch.Add(time.Duration(i) * 6 * time.Hour)}
		s.Add(r)
	}
	marks := []time.Duration{3 * time.Hour, 24 * time.Hour, 72 * time.Hour, 168 * time.Hour}
	curve := s.CoverageCurve("GSB", SelfHostedCohort, marks)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("curve not monotone: %v", curve)
		}
	}
	if curve[len(curve)-1] != 1.0 {
		t.Fatalf("final coverage = %v, want 1.0", curve[len(curve)-1])
	}
}

func TestDetectionCountsAndCDF(t *testing.T) {
	s := &Study{}
	r := rec(true, threat.Twitter, "")
	r.VTDetections = []time.Time{epoch.Add(time.Hour), epoch.Add(30 * time.Hour), epoch.Add(100 * time.Hour)}
	s.Add(r)
	day1 := s.DetectionCounts(FWBCohort, 24*time.Hour)
	if len(day1) != 1 || day1[0] != 1 {
		t.Fatalf("day1 counts = %v", day1)
	}
	week := s.DetectionCounts(FWBCohort, 168*time.Hour)
	if week[0] != 3 {
		t.Fatalf("week counts = %v", week)
	}
	cdf := CDF([]int{1, 2, 2, 4, 9}, []int{0, 2, 4, 10})
	want := []float64{0, 0.6, 0.8, 1.0}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("cdf = %v, want %v", cdf, want)
		}
	}
	if got := CDF(nil, []int{1}); got[0] != 0 {
		t.Fatal("empty CDF should be zero")
	}
}

func TestMedianInt(t *testing.T) {
	if MedianInt(nil) != 0 {
		t.Fatal("empty median")
	}
	if MedianInt([]int{3, 1, 9}) != 3 {
		t.Fatal("odd median")
	}
}

func TestBrandHistogramAndTop(t *testing.T) {
	s := &Study{}
	for i := 0; i < 5; i++ {
		s.Add(rec(true, threat.Twitter, "facebook"))
	}
	for i := 0; i < 3; i++ {
		s.Add(rec(true, threat.Twitter, "netflix"))
	}
	s.Add(rec(true, threat.Twitter, ""))
	h := s.BrandHistogram(FWBCohort)
	if h["facebook"] != 5 || h["netflix"] != 3 || len(h) != 2 {
		t.Fatalf("histogram = %v", h)
	}
	top := s.TopBrands(FWBCohort, 1)
	if len(top) != 1 || top[0] != "facebook" {
		t.Fatalf("top = %v", top)
	}
}

func TestCohortSelectors(t *testing.T) {
	s := &Study{}
	s.Add(rec(true, threat.Twitter, ""))
	s.Add(rec(false, threat.Facebook, ""))
	if len(s.Select(FWBCohort)) != 1 || len(s.Select(SelfHostedCohort)) != 1 {
		t.Fatal("cohort selection broken")
	}
	if len(s.Select(OnPlatform(FWBCohort, threat.Facebook))) != 0 {
		t.Fatal("platform restriction broken")
	}
	if len(s.Select(OnService("weebly"))) != 1 {
		t.Fatal("service restriction broken")
	}
}

func TestEvasiveByService(t *testing.T) {
	s := &Study{}
	r := rec(true, threat.Twitter, "paypal")
	r.Target.TwoStepLink = true
	s.Add(r)
	r2 := rec(true, threat.Twitter, "paypal")
	r2.Target.HasCredentialFields = true
	s.Add(r2)
	census := s.EvasiveByService()
	c := census["weebly"]
	if c == nil || c.Total != 2 || c.TwoStep != 1 || c.NoFields != 1 {
		t.Fatalf("census = %+v", c)
	}
}

func TestMedianDomainAgeAndFraction(t *testing.T) {
	s := &Study{}
	for i, age := range []time.Duration{24 * time.Hour, 100 * 24 * time.Hour, 13 * 365 * 24 * time.Hour} {
		r := rec(true, threat.Twitter, "")
		r.Target.DomainAge = age
		if i == 0 {
			r.Target.Noindex = true
		}
		s.Add(r)
	}
	if got := s.MedianDomainAge(FWBCohort); got != 100*24*time.Hour {
		t.Fatalf("median age = %v", got)
	}
	f := s.Fraction(FWBCohort, func(r *Record) bool { return r.Target.Noindex })
	if f < 0.32 || f > 0.34 {
		t.Fatalf("fraction = %v", f)
	}
	if s.MedianDomainAge(SelfHostedCohort) != 0 {
		t.Fatal("empty cohort median should be 0")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := &Study{}
	r1 := rec(true, threat.Twitter, "paypal")
	r1.Target.Noindex = true
	r1.Target.DomainAge = 13 * 365 * 24 * time.Hour
	r1.ClassifierScore = 0.93
	r1.Blocklist["GSB"] = blocklist.Verdict{Detected: true, At: epoch.Add(3 * time.Hour)}
	r1.VTDetections = []time.Time{epoch.Add(time.Hour), epoch.Add(5 * time.Hour)}
	r1.PlatformRemoved = true
	r1.PlatformRemovedAt = epoch.Add(9 * time.Hour)
	s.Add(r1)
	r2 := rec(false, threat.Facebook, "netflix")
	r2.HostRemoved = true
	r2.HostRemovedAt = epoch.Add(2 * time.Hour)
	s.Add(r2)

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("JSONL lines = %d, want 2", lines)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 {
		t.Fatalf("records = %d", len(got.Records))
	}
	g1 := got.Records[0]
	if g1.Target.URL != r1.Target.URL || !g1.Target.Noindex || g1.Target.Service.Key != "weebly" {
		t.Fatalf("record 0 = %+v", g1.Target)
	}
	if v := g1.Blocklist["GSB"]; !v.Detected || !v.At.Equal(epoch.Add(3*time.Hour)) {
		t.Fatalf("blocklist verdict lost: %+v", v)
	}
	if len(g1.VTDetections) != 2 || !g1.PlatformRemoved {
		t.Fatalf("detections/removal lost: %+v", g1)
	}
	// Aggregations work identically on the reloaded study.
	week := 7 * 24 * time.Hour
	if a, b := s.Coverage("GSB", FWBCohort, week), got.Coverage("GSB", FWBCohort, week); a != b {
		t.Fatalf("coverage differs after round trip: %+v vs %+v", a, b)
	}
	g2 := got.Records[1]
	if g2.Target.IsFWB() || !g2.HostRemoved {
		t.Fatalf("record 1 = %+v", g2)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSONL accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"url":"x","service":"not-a-service"}` + "\n")); err == nil {
		t.Fatal("unknown service accepted")
	}
	s, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(s.Records) != 0 {
		t.Fatalf("empty stream: %v %v", s, err)
	}
}

func TestUptimeStats(t *testing.T) {
	s := &Study{}
	horizon := 14 * 24 * time.Hour
	// Three removed at 2h, 10h, 20h; two never removed.
	for _, d := range []time.Duration{2 * time.Hour, 10 * time.Hour, 20 * time.Hour} {
		r := rec(true, threat.Twitter, "")
		r.HostRemoved = true
		r.HostRemovedAt = epoch.Add(d)
		s.Add(r)
	}
	s.Add(rec(true, threat.Twitter, ""))
	s.Add(rec(true, threat.Twitter, ""))

	u := s.Uptime(FWBCohort, horizon)
	if u.Total != 5 || u.Removed != 3 || u.Censored != 2 {
		t.Fatalf("uptime = %+v", u)
	}
	if u.Median != 20*time.Hour {
		t.Fatalf("median lifetime = %v, want 20h (censored counted at horizon)", u.Median)
	}
	if u.SurvivalFraction() != 0.4 {
		t.Fatalf("survival = %v", u.SurvivalFraction())
	}
	curve := s.SurvivalCurve(FWBCohort, []time.Duration{time.Hour, 12 * time.Hour, 48 * time.Hour})
	want := []float64{1.0, 0.6, 0.4}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("survival curve = %v, want %v", curve, want)
		}
	}
}

func TestUptimeEmptyCohort(t *testing.T) {
	s := &Study{}
	u := s.Uptime(FWBCohort, time.Hour)
	if u.Total != 0 || u.Median != 0 || u.SurvivalFraction() != 0 {
		t.Fatalf("empty uptime = %+v", u)
	}
	if c := s.SurvivalCurve(FWBCohort, []time.Duration{time.Hour}); c[0] != 0 {
		t.Fatalf("empty survival curve = %v", c)
	}
}

func TestExposureCutOffByRemoval(t *testing.T) {
	horizon := 7 * 24 * time.Hour
	// Removed after one decay constant: 1-1/e ≈ 63% of potential lands.
	r := rec(true, threat.Twitter, "")
	r.PlatformRemoved = true
	r.PlatformRemovedAt = epoch.Add(12 * time.Hour)
	e := exposureOf(r, 100, horizon)
	if e.Clicks < 60 || e.Clicks > 66 {
		t.Fatalf("clicks = %.1f, want ≈63", e.Clicks)
	}
	if e.Prevented < 30 || e.Prevented > 40 {
		t.Fatalf("prevented = %.1f, want ≈37", e.Prevented)
	}
	// Never removed: everything lands, nothing prevented.
	r2 := rec(true, threat.Twitter, "")
	e2 := exposureOf(r2, 100, horizon)
	if e2.Prevented > 0.01 || e2.Clicks < 99 {
		t.Fatalf("unremoved exposure = %+v", e2)
	}
	// Earliest removal wins: host at 1h beats platform at 24h.
	r3 := rec(true, threat.Twitter, "")
	r3.PlatformRemoved, r3.PlatformRemovedAt = true, epoch.Add(24*time.Hour)
	r3.HostRemoved, r3.HostRemovedAt = true, epoch.Add(time.Hour)
	e3 := exposureOf(r3, 100, horizon)
	if e3.Clicks > 10 {
		t.Fatalf("early host takedown should cap clicks: %+v", e3)
	}
}

func TestExposureStatsCohorts(t *testing.T) {
	s := &Study{}
	// FWB cohort: never removed. Self-hosted: removed fast.
	for i := 0; i < 50; i++ {
		s.Add(rec(true, threat.Twitter, ""))
		r := rec(false, threat.Twitter, "")
		r.HostRemoved = true
		r.HostRemovedAt = epoch.Add(2 * time.Hour)
		s.Add(r)
	}
	rng := simclock.NewRNG(3, "exposure")
	horizon := 7 * 24 * time.Hour
	fwbSum := s.ExposureStats(FWBCohort, horizon, rng)
	selfSum := s.ExposureStats(SelfHostedCohort, horizon, rng)
	if fwbSum.MeanClicksPerURL <= selfSum.MeanClicksPerURL {
		t.Fatalf("FWB mean clicks %.1f <= self %.1f", fwbSum.MeanClicksPerURL, selfSum.MeanClicksPerURL)
	}
	if fwbSum.PreventedFraction >= selfSum.PreventedFraction {
		t.Fatalf("FWB prevented %.2f >= self %.2f", fwbSum.PreventedFraction, selfSum.PreventedFraction)
	}
	if fwbSum.URLs != 50 || selfSum.URLs != 50 {
		t.Fatalf("cohort sizes %d/%d", fwbSum.URLs, selfSum.URLs)
	}
}

func TestTimelineBuckets(t *testing.T) {
	s := &Study{}
	for i := 0; i < 6; i++ {
		r := rec(i%2 == 0, threat.Twitter, "")
		r.Target.SharedAt = epoch.Add(time.Duration(i) * 10 * 24 * time.Hour)
		if i == 0 {
			r.Blocklist["GSB"] = blocklist.Verdict{Detected: true, At: r.Target.SharedAt.Add(time.Hour)}
		}
		s.Add(r)
	}
	points := s.Timeline(14 * 24 * time.Hour)
	if len(points) < 3 {
		t.Fatalf("timeline = %d points", len(points))
	}
	var fwb, self, detected int
	for _, p := range points {
		fwb += p.FWB
		self += p.Self
		detected += p.Detected
	}
	if fwb != 3 || self != 3 || detected != 1 {
		t.Fatalf("timeline totals fwb=%d self=%d det=%d", fwb, self, detected)
	}
	if got := s.Timeline(0); got != nil {
		t.Fatal("zero bucket should return nil")
	}
	empty := &Study{}
	if got := empty.Timeline(time.Hour); got != nil {
		t.Fatal("empty study timeline should be nil")
	}
}

func TestCoverageCI(t *testing.T) {
	s := &Study{}
	for i := 0; i < 200; i++ {
		r := rec(true, threat.Twitter, "")
		if i < 60 { // true coverage 0.30
			r.Blocklist["GSB"] = blocklist.Verdict{Detected: true, At: epoch.Add(time.Hour)}
		}
		s.Add(r)
	}
	rng := simclock.NewRNG(3, "ci")
	ci := s.CoverageCI("GSB", FWBCohort, 7*24*time.Hour, 0.95, 500, rng)
	if ci.Point != 0.30 {
		t.Fatalf("point = %v", ci.Point)
	}
	if ci.Low >= ci.Point || ci.High <= ci.Point {
		t.Fatalf("interval %v does not bracket the point", ci)
	}
	// For n=200, p=0.3 the 95% CI is roughly ±0.06.
	if ci.Width() < 0.05 || ci.Width() > 0.2 {
		t.Fatalf("CI width = %v, implausible", ci.Width())
	}
	// More data narrows the interval.
	big := &Study{}
	for i := 0; i < 2000; i++ {
		r := rec(true, threat.Twitter, "")
		if i < 600 {
			r.Blocklist["GSB"] = blocklist.Verdict{Detected: true, At: epoch.Add(time.Hour)}
		}
		big.Add(r)
	}
	bigCI := big.CoverageCI("GSB", FWBCohort, 7*24*time.Hour, 0.95, 500, rng)
	if bigCI.Width() >= ci.Width() {
		t.Fatalf("10x data did not narrow CI: %v vs %v", bigCI.Width(), ci.Width())
	}
	// Degenerate cohort.
	empty := &Study{}
	if got := empty.CoverageCI("GSB", FWBCohort, time.Hour, 0.95, 100, rng); got.Point != 0 || got.Low != 0 {
		t.Fatalf("empty CI = %+v", got)
	}
}

func TestUptimeMeanNoOverflowOnLargeCohorts(t *testing.T) {
	// Regression: 30k+ two-week lifetimes overflow int64 nanoseconds if
	// summed as time.Duration (found by the full-scale run).
	s := &Study{}
	for i := 0; i < 35000; i++ {
		s.Add(rec(true, threat.Twitter, ""))
	}
	horizon := 14 * 24 * time.Hour
	u := s.Uptime(FWBCohort, horizon)
	if u.Mean != horizon {
		t.Fatalf("mean = %v, want exactly the horizon for an all-censored cohort", u.Mean)
	}
	if u.Mean < 0 {
		t.Fatal("mean overflowed")
	}
}

func TestTimeToCoverage(t *testing.T) {
	s := &Study{}
	for i := 0; i < 10; i++ {
		r := rec(false, threat.Twitter, "")
		if i < 6 {
			r.Blocklist["GSB"] = blocklist.Verdict{Detected: true, At: epoch.Add(time.Duration(i+1) * time.Hour)}
		}
		s.Add(r)
	}
	horizon := 7 * 24 * time.Hour
	// 50% of 10 = 5th detection at +5h.
	d, ok := s.TimeToCoverage("GSB", SelfHostedCohort, 0.5, horizon)
	if !ok || d != 5*time.Hour {
		t.Fatalf("TimeToCoverage(0.5) = %v, %v", d, ok)
	}
	// 60% reached exactly at the 6th detection.
	d, ok = s.TimeToCoverage("GSB", SelfHostedCohort, 0.6, horizon)
	if !ok || d != 6*time.Hour {
		t.Fatalf("TimeToCoverage(0.6) = %v, %v", d, ok)
	}
	// 70% never reached.
	if _, ok := s.TimeToCoverage("GSB", SelfHostedCohort, 0.7, horizon); ok {
		t.Fatal("unreachable coverage reported reached")
	}
	if _, ok := (&Study{}).TimeToCoverage("GSB", SelfHostedCohort, 0.5, horizon); ok {
		t.Fatal("empty study reported coverage")
	}
}

func TestSpearmanRho(t *testing.T) {
	// Perfect monotone relation.
	if rho := SpearmanRho([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); rho < 0.999 {
		t.Fatalf("monotone rho = %v", rho)
	}
	// Perfect inverse.
	if rho := SpearmanRho([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1}); rho > -0.999 {
		t.Fatalf("inverse rho = %v", rho)
	}
	// Monotone but nonlinear: rank correlation stays 1.
	if rho := SpearmanRho([]float64{1, 2, 3, 4}, []float64{1, 8, 27, 300}); rho < 0.999 {
		t.Fatalf("nonlinear monotone rho = %v", rho)
	}
	// Degenerate.
	if rho := SpearmanRho([]float64{1}, []float64{2}); rho != 0 {
		t.Fatalf("degenerate rho = %v", rho)
	}
	if rho := SpearmanRho([]float64{1, 1, 1}, []float64{1, 2, 3}); rho != 0 {
		t.Fatalf("constant-x rho = %v", rho)
	}
}
