package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCohenKappaPerfectAgreement(t *testing.T) {
	a := []int{1, 0, 1, 1, 0}
	if k := CohenKappa(a, a); k != 1 {
		t.Fatalf("kappa of identical raters = %v, want 1", k)
	}
}

func TestCohenKappaChanceAgreement(t *testing.T) {
	// Independent raters with 50/50 marginals: kappa ≈ 0.
	a := []int{1, 1, 0, 0}
	b := []int{1, 0, 1, 0}
	if k := CohenKappa(a, b); math.Abs(k) > 1e-9 {
		t.Fatalf("kappa at chance = %v, want 0", k)
	}
}

func TestCohenKappaKnownValue(t *testing.T) {
	// 2x2 table: both-pos 20, both-neg 15, a-only 5, b-only 10 (n=50).
	var a, b []int
	push := func(n, la, lb int) {
		for i := 0; i < n; i++ {
			a = append(a, la)
			b = append(b, lb)
		}
	}
	push(20, 1, 1)
	push(15, 0, 0)
	push(5, 1, 0)
	push(10, 0, 1)
	// po = 35/50 = 0.7; pa = 0.5, pb = 0.6; pe = 0.3+0.2 = 0.5; k = 0.4.
	if k := CohenKappa(a, b); math.Abs(k-0.4) > 1e-9 {
		t.Fatalf("kappa = %v, want 0.4", k)
	}
}

func TestCohenKappaDegenerate(t *testing.T) {
	if k := CohenKappa(nil, nil); k != 0 {
		t.Fatalf("empty kappa = %v", k)
	}
	if k := CohenKappa([]int{1}, []int{1, 0}); k != 0 {
		t.Fatalf("length-mismatch kappa = %v", k)
	}
	// Single-class, full agreement.
	a := []int{1, 1, 1}
	if k := CohenKappa(a, a); k != 1 {
		t.Fatalf("single-class identical kappa = %v, want 1", k)
	}
	// Single-class marginals but disagreement.
	if k := CohenKappa([]int{1, 1}, []int{1, 0}); k > 0.01 {
		t.Fatalf("disagreeing kappa = %v, want <= 0", k)
	}
}

// Property: kappa is symmetric and bounded above by 1.
func TestPropertyKappaSymmetricBounded(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) < 4 {
			return true
		}
		n := len(bits) / 2
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			if bits[i] {
				a[i] = 1
			}
			if bits[n+i] {
				b[i] = 1
			}
		}
		k1, k2 := CohenKappa(a, b), CohenKappa(b, a)
		return math.Abs(k1-k2) < 1e-12 && k1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
