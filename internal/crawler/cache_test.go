package crawler

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"freephish/internal/par"
)

// Regression: Snapshot used to build a fresh htmlx parse per probe even
// when the body was byte-identical to the last probe of the same URL. With
// the cache attached, the second probe must return the same parsed Doc.
func TestSnapshotReusesParseForUnchangedBody(t *testing.T) {
	const body = `<html><head><title>Verify PayPal</title></head>` +
		`<body><form><input type="password"></form></body></html>`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	}))
	defer srv.Close()

	f := NewFetcher(srv.URL)
	f.Cache = NewSnapshotCache(0)

	p1, status, err := f.Snapshot("https://victim.weebly.com/login")
	if err != nil || status != 200 {
		t.Fatalf("first snapshot: status=%d err=%v", status, err)
	}
	if p1.Doc == nil {
		t.Fatal("cached snapshot did not carry a parsed Doc")
	}
	p2, _, err := f.Snapshot("https://victim.weebly.com/login")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Doc != p1.Doc {
		t.Fatal("byte-identical re-probe re-parsed the body instead of sharing the cached Doc")
	}
	if p2.HTML != body {
		t.Fatalf("cached HTML corrupted: %q", p2.HTML)
	}
	if h, m := f.Cache.Hits(), f.Cache.Misses(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestSnapshotCacheInvalidatesOnChangedBody(t *testing.T) {
	var mu sync.Mutex
	body := "<html><body>v1</body></html>"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprint(w, body)
	}))
	defer srv.Close()

	f := NewFetcher(srv.URL)
	f.Cache = NewSnapshotCache(0)

	p1, _, err := f.Snapshot("https://site.wixsite.com/")
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	body = "<html><body>v2 changed</body></html>"
	mu.Unlock()
	p2, _, err := f.Snapshot("https://site.wixsite.com/")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Doc == p1.Doc {
		t.Fatal("changed body must not reuse the stale parse")
	}
	if p2.HTML == p1.HTML {
		t.Fatal("changed body returned stale HTML")
	}
	if h, m := f.Cache.Hits(), f.Cache.Misses(); h != 0 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", h, m)
	}
}

func TestSnapshotCacheSkipsNon200(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()

	f := NewFetcher(srv.URL)
	f.Cache = NewSnapshotCache(0)
	_, status, err := f.Snapshot("https://gone.weebly.com/")
	if err != nil {
		t.Fatal(err)
	}
	if status != 404 {
		t.Fatalf("status = %d, want 404", status)
	}
	if f.Cache.Len() != 0 {
		t.Fatal("takedown (404) response must not enter the snapshot cache")
	}
}

func TestSnapshotCacheEvictsLRU(t *testing.T) {
	c := NewSnapshotCache(2)
	c.Page("https://a.weebly.com/", "<html>a</html>")
	c.Page("https://b.weebly.com/", "<html>b</html>")
	c.Page("https://a.weebly.com/", "<html>a</html>") // a now most recent
	c.Page("https://c.weebly.com/", "<html>c</html>") // evicts b
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	c.Page("https://b.weebly.com/", "<html>b</html>")
	if got := c.Misses(); got != 4 {
		t.Fatalf("misses = %d, want 4 (b was evicted and re-parsed)", got)
	}
	c.Page("https://c.weebly.com/", "<html>c</html>")
	if got := c.Hits(); got != 2 {
		t.Fatalf("hits = %d, want 2 (c stayed resident across b's re-insert)", got)
	}
}

func TestSnapshotCacheConcurrentAccess(t *testing.T) {
	c := NewSnapshotCache(64)
	par.Do(8, 200, func(i int) {
		url := fmt.Sprintf("https://site-%d.weebly.com/", i%16)
		c.Page(url, "<html><body>page "+url+"</body></html>")
	})
	if c.Len() != 16 {
		t.Fatalf("len = %d, want 16 distinct URLs", c.Len())
	}
	if c.Hits()+c.Misses() != 200 {
		t.Fatalf("hits+misses = %d, want 200", c.Hits()+c.Misses())
	}
}
