package crawler

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"freephish/internal/features"
	"freephish/internal/htmlx"
)

// SnapshotCache is a bounded LRU of parsed page snapshots, keyed by URL and
// validated by a content hash of the body. Its job is to make re-probes
// cheap: the §4.4 active monitor re-fetches every flagged URL on a cadence
// and the proxy re-checks pages users revisit, and without the cache each
// of those probes re-parses a byte-identical body. A hit returns the
// previously parsed DOM; a changed body (different hash) replaces the
// entry. The cache never suppresses the HTTP fetch itself — takedown
// detection requires observing the live status — it only removes the
// redundant parse behind it.
//
// SnapshotCache is safe for concurrent use by the pipeline's probe workers.
type SnapshotCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits   atomic.Uint64
	misses atomic.Uint64
}

type snapEntry struct {
	url  string
	hash uint64
	page features.Page // HTML plus the shared parsed Doc
}

// DefaultSnapshotCacheSize bounds the cache when callers pass 0.
const DefaultSnapshotCacheSize = 2048

// NewSnapshotCache returns a cache holding at most capacity entries
// (DefaultSnapshotCacheSize when capacity <= 0).
func NewSnapshotCache(capacity int) *SnapshotCache {
	if capacity <= 0 {
		capacity = DefaultSnapshotCacheSize
	}
	return &SnapshotCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// hashBody fingerprints a snapshot body for change detection.
func hashBody(body string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(body))
	return h.Sum64()
}

// Page resolves a fetched body against the cache. An unchanged body (same
// URL, same hash) returns the cached page with its shared parsed Doc; a
// new or changed body is parsed once, stored, and returned. The returned
// Page always carries a non-nil Doc.
func (c *SnapshotCache) Page(url, body string) features.Page {
	h := hashBody(body)
	c.mu.Lock()
	if el, ok := c.entries[url]; ok {
		e := el.Value.(*snapEntry)
		if e.hash == h && len(e.page.HTML) == len(body) {
			c.lru.MoveToFront(el)
			page := e.page
			c.mu.Unlock()
			c.hits.Add(1)
			return page
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)

	// Parse outside the lock: it is the expensive step the cache exists to
	// dedupe, and a rare duplicate parse under contention beats serializing
	// every worker behind one parser.
	page := features.Page{URL: url, HTML: body, Doc: htmlx.Parse(body)}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[url]; ok {
		e := el.Value.(*snapEntry)
		if e.hash == h && len(e.page.HTML) == len(body) {
			// Another worker stored the same body first; share its parse.
			c.lru.MoveToFront(el)
			return e.page
		}
		e.hash = h
		e.page = page
		c.lru.MoveToFront(el)
		return page
	}
	c.entries[url] = c.lru.PushFront(&snapEntry{url: url, hash: h, page: page})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*snapEntry).url)
	}
	return page
}

// Hits reports how many lookups reused a cached parse.
func (c *SnapshotCache) Hits() uint64 { return c.hits.Load() }

// Misses reports how many lookups had to parse.
func (c *SnapshotCache) Misses() uint64 { return c.misses.Load() }

// Len reports the number of cached snapshots.
func (c *SnapshotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
