package crawler

import (
	"sort"
	"time"

	"freephish/internal/threat"
)

// This file is the crawler's contribution to checkpoint/resume: the poller's
// cursor state is exactly what a state.Snapshot cannot rebuild — the
// per-platform poll cursors, the bounded post-ID dedup set, the failure
// counters, and the rate limiter's bucket. Capturing and restoring them
// makes a resumed run issue byte-for-byte the same platform API requests
// (same since= windows, same dedup decisions, same throttle outcomes) as
// the uninterrupted run.

// PollerState is the serializable cursor state of a Poller.
type PollerState struct {
	// Cursors is the last advanced poll time per platform.
	Cursors map[threat.Platform]time.Time `json:"cursors"`
	// Seen is the cross-poll post-ID dedup set.
	Seen SeenState `json:"seen"`
	// Skipped and Failed carry the poller's cumulative counters.
	Skipped int `json:"skipped"`
	Failed  int `json:"failed"`
}

// SeenState is the serializable form of the two-generation dedup set. The
// generations are emitted sorted so the encoding is deterministic.
type SeenState struct {
	Cap    int      `json:"cap"`
	Cur    []string `json:"cur"`
	Prev   []string `json:"prev"`
	Recent []int    `json:"recent"`
	RI     int      `json:"ri"`
}

// State captures the poller's resumable cursor state.
func (p *Poller) State() *PollerState {
	cur := make(map[threat.Platform]time.Time, len(p.cursor))
	for plat, t := range p.cursor {
		cur[plat] = t
	}
	return &PollerState{
		Cursors: cur,
		Seen:    p.seen.state(),
		Skipped: p.Skipped,
		Failed:  p.Failed,
	}
}

// RestoreState rewinds the poller to a captured cursor state.
func (p *Poller) RestoreState(st *PollerState) {
	p.cursor = make(map[threat.Platform]time.Time, len(st.Cursors))
	for plat, t := range st.Cursors {
		p.cursor[plat] = t
	}
	p.seen.restore(st.Seen)
	p.Skipped = st.Skipped
	p.Failed = st.Failed
}

// state captures the dedup set with sorted generations.
func (s *seenSet) state() SeenState {
	st := SeenState{
		Cap:    s.cap,
		Cur:    sortedKeys(s.cur),
		Prev:   sortedKeys(s.prev),
		Recent: append([]int(nil), s.recent[:]...),
		RI:     s.ri,
	}
	return st
}

// restore rebuilds the dedup set from a captured state.
func (s *seenSet) restore(st SeenState) {
	s.cap = st.Cap
	if s.cap < minSeenCap {
		s.cap = minSeenCap
	}
	s.cur = make(map[string]bool, len(st.Cur))
	for _, id := range st.Cur {
		s.cur[id] = true
	}
	s.prev = make(map[string]bool, len(st.Prev))
	for _, id := range st.Prev {
		s.prev[id] = true
	}
	s.recent = [seenCycleWindow]int{}
	copy(s.recent[:], st.Recent)
	s.ri = st.RI % seenCycleWindow
	if s.ri < 0 {
		s.ri = 0
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LimiterState is the serializable state of a RateLimiter bucket.
type LimiterState struct {
	Tokens    float64       `json:"tokens"`
	Last      time.Time     `json:"last"`
	Throttled uint64        `json:"throttled"`
	WaitTotal time.Duration `json:"wait_total"`
}

// State captures the limiter's bucket state.
func (r *RateLimiter) State() *LimiterState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &LimiterState{
		Tokens:    r.tokens,
		Last:      r.last,
		Throttled: r.throttled,
		WaitTotal: r.waitTotal,
	}
}

// RestoreState rewinds the limiter's bucket to a captured state.
func (r *RateLimiter) RestoreState(st *LimiterState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tokens = st.Tokens
	r.last = st.Last
	r.throttled = st.Throttled
	r.waitTotal = st.WaitTotal
}
