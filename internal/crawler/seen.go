package crawler

// seenSet is the poller's cross-poll post-ID dedup store. The naive map
// grows for the whole measurement window — six months of streaming pins
// every post ID ever seen. This version keeps two generations: adds go to
// the current generation, membership checks consult both, and when the
// current generation reaches capacity it becomes the previous one (whose
// old contents are dropped). An entry therefore survives at least cap
// further adds after its own — and because re-deliveries only reach back
// a few poll cycles (the inclusive-cursor boundary and failure catch-up),
// a capacity of a few cycles' volume dedups them all while memory stays
// bounded at two generations.

// minSeenCap is the floor on a generation's capacity.
const minSeenCap = 1024

// seenCycleWindow is how many recent poll cycles inform the sizing.
const seenCycleWindow = 16

// seenCapFactor multiplies the recent per-cycle maximum: an entry must
// outlive the cycle that added it by at least the catch-up horizon.
const seenCapFactor = 4

type seenSet struct {
	cap       int
	cur, prev map[string]bool
	recent    [seenCycleWindow]int
	ri        int
}

func newSeenSet() *seenSet {
	return &seenSet{
		cap:  minSeenCap,
		cur:  make(map[string]bool),
		prev: make(map[string]bool),
	}
}

// Has reports whether the ID is in either generation.
func (s *seenSet) Has(id string) bool { return s.cur[id] || s.prev[id] }

// Add records the ID, rotating generations when the current one is full.
func (s *seenSet) Add(id string) {
	if len(s.cur) >= s.cap {
		s.prev = s.cur
		s.cur = make(map[string]bool, s.cap)
	}
	s.cur[id] = true
}

// EndCycle notes one poll cycle's post volume and adapts the generation
// capacity to seenCapFactor times the recent per-cycle maximum.
func (s *seenSet) EndCycle(posts int) {
	s.recent[s.ri] = posts
	s.ri = (s.ri + 1) % seenCycleWindow
	peak := 0
	for _, v := range s.recent {
		if v > peak {
			peak = v
		}
	}
	c := seenCapFactor * peak
	if c < minSeenCap {
		c = minSeenCap
	}
	s.cap = c
}

// Len reports the total retained IDs across both generations.
func (s *seenSet) Len() int { return len(s.cur) + len(s.prev) }
