package crawler

import (
	"fmt"
	"testing"
	"time"

	"freephish/internal/threat"
)

// The resume contract: a poller (or limiter) restored from its captured
// state must behave byte-for-byte like the original from that point on —
// same cursors, same dedup verdicts, same generation rotations, same
// throttle outcomes.

func TestPollerStateRoundTrip(t *testing.T) {
	start := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	p := NewPoller(map[threat.Platform]string{
		threat.Twitter:  "http://t",
		threat.Facebook: "http://f",
	}, nil, start)

	// Drive the poller into a non-trivial state: advanced cursors, both
	// dedup generations populated (force a rotation), cycle history, and
	// failure counters.
	p.cursor[threat.Twitter] = start.Add(3 * time.Hour)
	p.cursor[threat.Facebook] = start.Add(2 * time.Hour)
	p.Skipped, p.Failed = 4, 2
	p.seen.cap = minSeenCap
	for i := 0; i < minSeenCap+100; i++ {
		p.seen.Add(id(i))
	}
	p.seen.EndCycle(700)
	p.seen.EndCycle(300)

	q := NewPoller(map[threat.Platform]string{
		threat.Twitter:  "http://t",
		threat.Facebook: "http://f",
	}, nil, start)
	q.RestoreState(p.State())

	if got, want := q.cursor[threat.Twitter], p.cursor[threat.Twitter]; !got.Equal(want) {
		t.Fatalf("twitter cursor = %v, want %v", got, want)
	}
	if got, want := q.cursor[threat.Facebook], p.cursor[threat.Facebook]; !got.Equal(want) {
		t.Fatalf("facebook cursor = %v, want %v", got, want)
	}
	if q.Skipped != p.Skipped || q.Failed != p.Failed {
		t.Fatalf("counters = %d/%d, want %d/%d", q.Skipped, q.Failed, p.Skipped, p.Failed)
	}
	if q.seen.cap != p.seen.cap || q.seen.ri != p.seen.ri || q.seen.recent != p.seen.recent {
		t.Fatalf("seen sizing state diverged: cap=%d/%d ri=%d/%d", q.seen.cap, p.seen.cap, q.seen.ri, p.seen.ri)
	}
	if q.SeenLen() != p.SeenLen() {
		t.Fatalf("SeenLen = %d, want %d", q.SeenLen(), p.SeenLen())
	}
	// Membership must agree across both generations.
	for i := 0; i < minSeenCap+100; i++ {
		if q.seen.Has(id(i)) != p.seen.Has(id(i)) {
			t.Fatalf("dedup verdict for %s diverged after restore", id(i))
		}
	}
	// Continuation equivalence: the same subsequent adds must rotate the
	// generations identically and keep verdicts in lockstep.
	for i := minSeenCap + 100; i < 2*minSeenCap; i++ {
		p.seen.Add(id(i))
		q.seen.Add(id(i))
	}
	for i := 0; i < 2*minSeenCap; i++ {
		if q.seen.Has(id(i)) != p.seen.Has(id(i)) {
			t.Fatalf("post-restore dedup verdict for %s diverged", id(i))
		}
	}
}

func TestSeenRestoreGuardsDegenerateState(t *testing.T) {
	s := newSeenSet()
	s.restore(SeenState{Cap: 3, RI: -5, Recent: []int{1, 2}})
	if s.cap != minSeenCap {
		t.Fatalf("cap = %d, want clamped to %d", s.cap, minSeenCap)
	}
	if s.ri != 0 {
		t.Fatalf("ri = %d, want clamped to 0", s.ri)
	}
	s.restore(SeenState{Cap: minSeenCap, RI: seenCycleWindow + 3})
	if s.ri != 3 {
		t.Fatalf("ri = %d, want wrapped to 3", s.ri)
	}
}

func TestLimiterStateRoundTrip(t *testing.T) {
	clock := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }
	r := NewRateLimiter(3, 1.0/60, now)
	for i := 0; i < 5; i++ {
		r.Allow() // drain the bucket, then rack up two throttles
	}
	clock = clock.Add(30 * time.Second) // half a token refilled

	s := NewRateLimiter(3, 1.0/60, now)
	s.RestoreState(r.State())
	if s.Tokens() != r.Tokens() {
		t.Fatalf("tokens = %v, want %v", s.Tokens(), r.Tokens())
	}
	if s.Throttled() != r.Throttled() || s.WaitTotal() != r.WaitTotal() {
		t.Fatalf("counters = %d/%v, want %d/%v", s.Throttled(), s.WaitTotal(), r.Throttled(), r.WaitTotal())
	}
	// Continuation equivalence: both buckets must grant and deny in
	// lockstep as virtual time advances.
	for i := 0; i < 10; i++ {
		clock = clock.Add(45 * time.Second)
		if got, want := s.Allow(), r.Allow(); got != want {
			t.Fatalf("Allow diverged at step %d: restored=%v original=%v", i, got, want)
		}
	}
}

func id(i int) string { return fmt.Sprintf("post-%06d", i) }
