package crawler

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"freephish/internal/retry"
	"freephish/internal/social"
	"freephish/internal/threat"
)

// TestPollerNoProgressPageFailsPoll is the livelock regression test: an
// API that answers an empty page while still claiming X-More pending
// used to spin the pagination loop forever (offset never advanced). Such
// a page must fail the platform's cycle — promptly, with the cursor
// untouched so the next poll re-fetches the window.
func TestPollerNoProgressPageFailsPoll(t *testing.T) {
	var since atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		since.Store(r.URL.Query().Get("since"))
		w.Header().Set("X-More", "1")
		io.WriteString(w, `[]`)
	}))
	defer srv.Close()

	p := NewPoller(map[threat.Platform]string{threat.Twitter: srv.URL}, nil, epoch)
	var failed []error
	p.ObserveFailure = func(plat threat.Platform, err error) { failed = append(failed, err) }

	done := make(chan struct{})
	var out []StreamedURL
	var err error
	go func() {
		out, err = p.Poll(epoch.Add(10 * time.Minute))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Poll livelocked on a no-progress page")
	}
	if err != nil {
		t.Fatalf("Poll: %v (a failed platform is skipped, not a cycle error)", err)
	}
	if len(out) != 0 {
		t.Fatalf("streamed %d URLs from an empty feed", len(out))
	}
	if p.Failed != 1 || len(failed) != 1 {
		t.Fatalf("Failed = %d, ObserveFailure calls = %d; want 1 and 1", p.Failed, len(failed))
	}
	first, _ := since.Load().(string)

	// The cursor did not advance: the next poll re-asks from the same
	// since mark.
	if _, err := p.Poll(epoch.Add(20 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	second, _ := since.Load().(string)
	if first != second {
		t.Fatalf("cursor advanced across a failed poll: since %q -> %q", first, second)
	}
}

// TestPollerRetryAbsorbsFlakyAPI: with the unified policy wired, a 5xx
// burst shorter than the retry budget costs nothing — the cycle still
// delivers its posts and counts no failure.
func TestPollerRetryAbsorbsFlakyAPI(t *testing.T) {
	now := epoch
	tw := social.NewNetwork(threat.Twitter, func() time.Time { return now })
	tw.Publish("verify https://paypal-alert.weebly.com/ now", epoch.Add(time.Minute))
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%3 != 0 {
			// Two failures, then one clean answer — repeat.
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		tw.ServeHTTP(w, r)
	}))
	defer srv.Close()

	p := NewPoller(map[threat.Platform]string{threat.Twitter: srv.URL}, nil, epoch)
	p.Retry = &retry.Policy{MaxAttempts: 4, Sleep: retry.NoSleep}

	now = epoch.Add(10 * time.Minute)
	out, err := p.Poll(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].URL != "https://paypal-alert.weebly.com/" {
		t.Fatalf("poll through flaky API = %+v", out)
	}
	if p.Failed != 0 {
		t.Fatalf("Failed = %d, want 0 (retry should absorb the burst)", p.Failed)
	}
}

// TestFetcherRetries5xxUnderPolicy: a 5xx burst is retried and the
// eventual healthy body wins.
func TestFetcherRetries5xxUnderPolicy(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "<html>ok</html>")
	}))
	defer srv.Close()

	f := NewFetcher(srv.URL)
	f.Retry = &retry.Policy{MaxAttempts: 4, Sleep: retry.NoSleep}
	var attempts int
	f.Observe = func(status, a int, wall time.Duration, err error) { attempts = a }

	page, status, err := f.Snapshot("http://victim.weebly.com/login")
	if err != nil || status != http.StatusOK {
		t.Fatalf("Snapshot = status %d, err %v", status, err)
	}
	if page.HTML != "<html>ok</html>" {
		t.Fatalf("HTML = %q", page.HTML)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two 503s then a 200)", attempts)
	}
}

// TestFetcherExhausted5xxReturnsStatus: when the host 5xxes through the
// whole budget, the final response is still data — the Snapshot contract
// says a non-200 status is an observation, not an error.
func TestFetcherExhausted5xxReturnsStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()

	f := NewFetcher(srv.URL)
	f.Retry = &retry.Policy{MaxAttempts: 3, Sleep: retry.NoSleep}
	_, status, err := f.Snapshot("http://victim.weebly.com/login")
	if err != nil {
		t.Fatalf("exhausted 5xx should not be an error: %v", err)
	}
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", status)
	}
}

// TestSnapshotContextCancelInterruptsBackoff: the old fetcher slept out
// its backoff with a bare time.Sleep no caller could interrupt. Now a
// canceled context aborts the wait immediately.
func TestSnapshotContextCancelInterruptsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	f := NewFetcher(srv.URL)
	f.Retry = &retry.Policy{MaxAttempts: 5, BaseDelay: time.Hour} // WallSleep by default
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := f.SnapshotContext(ctx, "http://victim.weebly.com/login")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SnapshotContext kept sleeping after cancellation")
	}
}

// TestFetcherConcurrentSnapshots drives one shared Fetcher (with a
// shared retry policy) from many goroutines — the shape the pipeline's
// probe pool uses — so `go test -race` can vet the whole path.
func TestFetcherConcurrentSnapshots(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%5 == 0 {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "<html>"+r.Host+"</html>")
	}))
	defer srv.Close()

	f := NewFetcher(srv.URL)
	f.Retry = &retry.Policy{MaxAttempts: 4, Sleep: retry.NoSleep, BreakerThreshold: 3}
	var mu sync.Mutex
	f.Observe = func(status, attempts int, wall time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, status, err := f.Snapshot("http://site-" + string(rune('a'+g)) + ".weebly.com/p")
				if err != nil || status != http.StatusOK {
					t.Errorf("goroutine %d: status %d err %v", g, status, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
