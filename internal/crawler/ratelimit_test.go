package crawler

import (
	"sync"
	"testing"
	"time"
)

// TestRateLimiterCountersConcurrent hammers Allow from many goroutines
// against a frozen clock (no refill happens), so the arithmetic is exact:
// capacity grants, everything else throttles, and the cumulative wait
// estimate grows with the deficit. Run with -race.
func TestRateLimiterCountersConcurrent(t *testing.T) {
	frozen := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	rl := NewRateLimiter(100, 0.5, func() time.Time { return frozen })

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	allowed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < perWorker; i++ {
				if rl.Allow() {
					n++
				}
			}
			mu.Lock()
			allowed += n
			mu.Unlock()
		}()
	}
	wg.Wait()

	const attempts = workers * perWorker
	if allowed != 100 {
		t.Errorf("allowed = %d, want exactly the capacity 100", allowed)
	}
	if got := rl.Throttled(); got != attempts-100 {
		t.Errorf("Throttled = %d, want %d", got, attempts-100)
	}
	// Each denial sees a deficit of at least one full token at 0.5/s,
	// i.e. >= 2s of estimated wait.
	if wt := rl.WaitTotal(); wt < time.Duration(attempts-100)*2*time.Second {
		t.Errorf("WaitTotal = %v, implausibly small", wt)
	}
	if rl.Tokens() != 0 {
		t.Errorf("Tokens = %v, want 0", rl.Tokens())
	}
}

// TestRateLimiterNoRefillWait checks that a refill-less bucket counts
// throttles but does not accumulate an unbounded wait backlog.
func TestRateLimiterNoRefillWait(t *testing.T) {
	frozen := time.Unix(0, 0)
	rl := NewRateLimiter(1, 0, func() time.Time { return frozen })
	if !rl.Allow() {
		t.Fatal("first Allow should pass")
	}
	if rl.Allow() {
		t.Fatal("second Allow should be throttled")
	}
	if rl.Throttled() != 1 {
		t.Errorf("Throttled = %d, want 1", rl.Throttled())
	}
	if rl.WaitTotal() != 0 {
		t.Errorf("WaitTotal = %v, want 0 for a refill-less bucket", rl.WaitTotal())
	}
}
