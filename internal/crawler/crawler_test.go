package crawler

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"freephish/internal/fwb"
	"freephish/internal/social"
	"freephish/internal/threat"
	"freephish/internal/webgen"
)

var epoch = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

func TestPollerExtractsNewURLs(t *testing.T) {
	now := epoch
	tw := social.NewNetwork(threat.Twitter, func() time.Time { return now })
	fb := social.NewNetwork(threat.Facebook, func() time.Time { return now })
	twSrv := httptest.NewServer(tw)
	defer twSrv.Close()
	fbSrv := httptest.NewServer(fb)
	defer fbSrv.Close()

	tw.Publish("verify your account https://paypal-alert.weebly.com/ now", epoch.Add(time.Minute))
	fb.Publish("my new shop https://rose-bakery.wixsite.com/", epoch.Add(2*time.Minute))
	fb.Publish("no links here", epoch.Add(3*time.Minute))

	p := NewPoller(map[threat.Platform]string{
		threat.Twitter:  twSrv.URL,
		threat.Facebook: fbSrv.URL,
	}, nil, epoch)

	now = epoch.Add(10 * time.Minute)
	got, err := p.Poll(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("streamed %d URLs, want 2: %+v", len(got), got)
	}
	// Second poll must not re-deliver.
	got2, err := p.Poll(now.Add(10 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 0 {
		t.Fatalf("re-delivered %d URLs", len(got2))
	}
	// New post arrives; only it is delivered.
	tw.Publish("another https://new-site.weebly.com/x", now.Add(15*time.Minute))
	got3, err := p.Poll(now.Add(20 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(got3) != 1 || got3[0].URL != "https://new-site.weebly.com/x" {
		t.Fatalf("incremental poll = %+v", got3)
	}
	if got3[0].Platform != threat.Twitter || got3[0].PostID == "" {
		t.Fatalf("metadata missing: %+v", got3[0])
	}
}

func TestPollerUnreachableEndpointSkipsCycle(t *testing.T) {
	p := NewPoller(map[threat.Platform]string{threat.Twitter: "http://127.0.0.1:1"}, nil, epoch)
	var failures []threat.Platform
	p.ObserveFailure = func(plat threat.Platform, err error) {
		if err == nil {
			t.Fatal("failure hook called without an error")
		}
		failures = append(failures, plat)
	}
	got, err := p.Poll(epoch.Add(10 * time.Minute))
	if err != nil {
		t.Fatalf("a failed platform poll must not error the cycle: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("unreachable endpoint streamed %d URLs", len(got))
	}
	if p.Failed != 1 || len(failures) != 1 || failures[0] != threat.Twitter {
		t.Fatalf("failed = %d, hook = %v", p.Failed, failures)
	}
}

func TestPollerFailureFreezesCursorThenCatchesUp(t *testing.T) {
	virtual := epoch
	tw := social.NewNetwork(threat.Twitter, func() time.Time { return virtual })
	failing := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing {
			http.Error(w, "upstream overloaded", http.StatusBadGateway)
			return
		}
		tw.ServeHTTP(w, r)
	}))
	defer srv.Close()
	tw.Publish("x https://a.weebly.com/", epoch.Add(time.Minute))

	p := NewPoller(map[threat.Platform]string{threat.Twitter: srv.URL}, nil, epoch)
	virtual = epoch.Add(10 * time.Minute)
	if got, err := p.Poll(virtual); err != nil || len(got) != 1 {
		t.Fatalf("first poll: %v %v", got, err)
	}
	// The API starts 502ing: the cycle is skipped, the cursor stays put.
	tw.Publish("y https://b.weebly.com/", virtual.Add(time.Minute))
	failing = true
	virtual = virtual.Add(10 * time.Minute)
	got, err := p.Poll(virtual)
	if err != nil || len(got) != 0 {
		t.Fatalf("failed poll: %v %v", got, err)
	}
	if p.Failed != 1 {
		t.Fatalf("failed = %d", p.Failed)
	}
	// Recovery: the frozen cursor re-fetches the window and catches the
	// post published during the outage.
	failing = false
	got, err = p.Poll(virtual.Add(10 * time.Minute))
	if err != nil || len(got) != 1 || got[0].URL != "https://b.weebly.com/" {
		t.Fatalf("catch-up poll: %+v %v", got, err)
	}
}

func TestPollerMidPaginationFailureKeepsFetchedPosts(t *testing.T) {
	virtual := epoch
	tw := social.NewNetwork(threat.Twitter, func() time.Time { return virtual })
	// More than one page of posts, and the API dies after the first page.
	n := social.MaxPageSize + 40
	for i := 0; i < n; i++ {
		tw.Publish(fmt.Sprintf("x https://s%d.weebly.com/", i), epoch.Add(time.Duration(i)*time.Second))
	}
	requests := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		if requests > 1 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		tw.ServeHTTP(w, r)
	}))
	defer srv.Close()

	p := NewPoller(map[threat.Platform]string{threat.Twitter: srv.URL}, nil, epoch)
	virtual = epoch.Add(time.Hour)
	got, err := p.Poll(virtual)
	if err != nil {
		t.Fatal(err)
	}
	// Page one was genuinely observed: its URLs stream out even though the
	// cycle failed afterwards.
	if len(got) != social.MaxPageSize {
		t.Fatalf("streamed %d URLs, want the %d fetched before the failure", len(got), social.MaxPageSize)
	}
	if p.Failed != 1 {
		t.Fatalf("failed = %d", p.Failed)
	}
	// Recovery re-fetches the frozen window; only the tail is new.
	requests = -1000 // never fail again
	got, err = p.Poll(virtual.Add(10 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n-social.MaxPageSize {
		t.Fatalf("catch-up streamed %d URLs, want %d", len(got), n-social.MaxPageSize)
	}
}

func TestPollerSeenSetStaysBounded(t *testing.T) {
	virtual := epoch
	tw := social.NewNetwork(threat.Twitter, func() time.Time { return virtual })
	srv := httptest.NewServer(tw)
	defer srv.Close()

	p := NewPoller(map[threat.Platform]string{threat.Twitter: srv.URL}, nil, epoch)
	const cycles = 40
	const perCycle = 150
	total := 0
	for c := 0; c < cycles; c++ {
		for i := 0; i < perCycle; i++ {
			tw.Publish(fmt.Sprintf("x https://c%d-p%d.weebly.com/", c, i), virtual.Add(time.Duration(i)*time.Second))
		}
		virtual = virtual.Add(10 * time.Minute)
		got, err := p.Poll(virtual)
		if err != nil {
			t.Fatal(err)
		}
		// Boundary re-deliveries (the since query is inclusive) must all be
		// absorbed by the dedup set: every streamed URL is new.
		total += len(got)
		if total != (c+1)*perCycle {
			t.Fatalf("cycle %d: %d URLs total, want %d (dupes leaked)", c, total, (c+1)*perCycle)
		}
	}
	// 6000 posts went through, but the two-generation set retains at most
	// two generations of max(minSeenCap, 4×peak-cycle-volume) IDs.
	if bound := 2 * minSeenCap; p.SeenLen() > bound {
		t.Fatalf("seen set retains %d IDs after %d posts, want ≤ %d", p.SeenLen(), cycles*perCycle, bound)
	}
}

func TestSeenSetGenerations(t *testing.T) {
	s := newSeenSet()
	// Adapts capacity to recent volume, never below the floor.
	s.EndCycle(10)
	if s.cap != minSeenCap {
		t.Fatalf("cap = %d, want floor %d", s.cap, minSeenCap)
	}
	s.EndCycle(5000)
	if s.cap != 4*5000 {
		t.Fatalf("cap = %d, want %d", s.cap, 4*5000)
	}
	// Once the peak cycle leaves the window, the capacity shrinks back.
	for i := 0; i < seenCycleWindow; i++ {
		s.EndCycle(10)
	}
	if s.cap != minSeenCap {
		t.Fatalf("cap after window = %d, want %d", s.cap, minSeenCap)
	}
	// An entry survives at least cap subsequent adds, and memory is
	// bounded by two generations.
	s.Add("first")
	for i := 0; i < 5*minSeenCap; i++ {
		s.Add(fmt.Sprintf("id-%d", i))
	}
	if s.Len() > 2*minSeenCap {
		t.Fatalf("len = %d, want ≤ %d", s.Len(), 2*minSeenCap)
	}
	if s.Has("first") {
		t.Fatal("entry older than two generations must be evicted")
	}
	if !s.Has(fmt.Sprintf("id-%d", 5*minSeenCap-1)) {
		t.Fatal("fresh entry missing")
	}
}

func TestFetcherSnapshotsVirtualHosts(t *testing.T) {
	now := epoch
	host := fwb.NewHost(func() time.Time { return now })
	g := webgen.NewGenerator(3, nil, nil)
	svc, _ := fwb.ByKey("weebly")
	site := g.PhishingFWBSiteOf(svc, fwb.KindPhishing, epoch)
	if err := host.Publish(site); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(host)
	defer srv.Close()

	f := NewFetcher(srv.URL)
	page, status, err := f.Snapshot(site.URL)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if page.URL != site.URL {
		t.Fatalf("page URL = %q, want original %q", page.URL, site.URL)
	}
	if !strings.Contains(page.HTML, "password") {
		t.Fatal("snapshot HTML incomplete")
	}

	// Takedown surfaces as 410 — the analysis module's removal signal.
	site.TakeDown(epoch.Add(time.Hour), "weebly")
	now = epoch.Add(2 * time.Hour)
	_, status, err = f.Snapshot(site.URL)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusGone {
		t.Fatalf("taken-down status = %d, want 410", status)
	}

	// Unknown site: 404, no error.
	_, status, err = f.Snapshot("https://missing.weebly.com/")
	if err != nil || status != http.StatusNotFound {
		t.Fatalf("missing site = %d err %v", status, err)
	}
}

func TestFetcherBadURL(t *testing.T) {
	f := NewFetcher("http://127.0.0.1:1")
	if _, _, err := f.Snapshot("http://bad url"); err == nil {
		t.Fatal("bad URL must error")
	}
}

func TestFetcherRetriesTransientFailures(t *testing.T) {
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts < 3 {
			// Kill the connection mid-response: a transport error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.Write([]byte("<html>recovered</html>"))
	}))
	defer srv.Close()
	f := NewFetcher(srv.URL)
	f.Backoff = time.Millisecond
	page, status, err := f.Snapshot("https://flaky.weebly.com/")
	if err != nil || status != 200 {
		t.Fatalf("snapshot after retries: %v %d", err, status)
	}
	if !strings.Contains(page.HTML, "recovered") {
		t.Fatalf("body = %q", page.HTML)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestFetcherGivesUpAfterRetries(t *testing.T) {
	f := NewFetcher("http://127.0.0.1:1")
	f.Retries = 1
	f.Backoff = time.Millisecond
	if _, _, err := f.Snapshot("https://x.weebly.com/"); err == nil {
		t.Fatal("unreachable backend must error after retries")
	}
}

func TestFetcherSeesThroughUACloaking(t *testing.T) {
	// A cloaking self-hosted phishing site serves a decoy to bot UAs but
	// the real attack to the Chromium UA the crawler presents.
	now := epoch
	host := fwb.NewHost(func() time.Time { return now })
	site := &fwb.Site{
		URL:     "https://paypal-verify.evil-host.xyz/login/",
		HTML:    `<html><body><form><input type="password" name="p"></form></body></html>`,
		Kind:    fwb.KindSelfHostPhish,
		CloakUA: true,
		Created: epoch,
	}
	if err := host.Publish(site); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(host)
	defer srv.Close()

	// The FreePhish crawler (Chromium UA) sees the attack.
	f := NewFetcher(srv.URL)
	page, status, err := f.Snapshot(site.URL)
	if err != nil || status != 200 {
		t.Fatal(err, status)
	}
	if !strings.Contains(page.HTML, "password") {
		t.Fatalf("crawler was cloaked: %q", page.HTML)
	}

	// A naive bot UA gets the decoy.
	naive := NewFetcher(srv.URL)
	naive.UserAgent = "curl/8.0"
	page, status, err = naive.Snapshot(site.URL)
	if err != nil || status != 200 {
		t.Fatal(err, status)
	}
	if strings.Contains(page.HTML, "password") || !strings.Contains(page.HTML, "Under construction") {
		t.Fatalf("bot UA saw the attack: %q", page.HTML)
	}
}

func TestRateLimiterTokenBucket(t *testing.T) {
	now := epoch
	rl := NewRateLimiter(2, 1, func() time.Time { return now })
	if !rl.Allow() || !rl.Allow() {
		t.Fatal("full bucket must allow twice")
	}
	if rl.Allow() {
		t.Fatal("empty bucket allowed")
	}
	if w := rl.Wait(); w <= 0 || w > time.Second {
		t.Fatalf("wait = %v, want within one second", w)
	}
	// One second later, one token refilled.
	now = now.Add(time.Second)
	if !rl.Allow() {
		t.Fatal("refilled token not granted")
	}
	if rl.Allow() {
		t.Fatal("double-spent refill")
	}
	// Refill never exceeds capacity.
	now = now.Add(time.Hour)
	if got := rl.Tokens(); got != 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
}

func TestRateLimiterZeroRefillNeverRecovers(t *testing.T) {
	now := epoch
	rl := NewRateLimiter(1, 0, func() time.Time { return now })
	rl.Allow()
	now = now.Add(24 * time.Hour)
	if rl.Allow() {
		t.Fatal("zero-refill bucket recovered")
	}
	if rl.Wait() < 365*24*time.Hour {
		t.Fatal("zero-refill wait should be effectively forever")
	}
}

func TestPollerRespectsRateLimit(t *testing.T) {
	virtual := epoch
	tw := social.NewNetwork(threat.Twitter, func() time.Time { return virtual })
	srv := httptest.NewServer(tw)
	defer srv.Close()
	tw.Publish("x https://a.weebly.com/", epoch.Add(time.Minute))

	p := NewPoller(map[threat.Platform]string{threat.Twitter: srv.URL}, nil, epoch)
	p.Limiter = NewRateLimiter(1, 0, func() time.Time { return virtual }) // one request, ever

	virtual = epoch.Add(10 * time.Minute)
	got, err := p.Poll(virtual)
	if err != nil || len(got) != 1 {
		t.Fatalf("first poll: %v %v", got, err)
	}
	// Second poll is rate-limited: skipped without error, cursor frozen.
	tw.Publish("y https://b.weebly.com/", virtual.Add(time.Minute))
	virtual = virtual.Add(10 * time.Minute)
	got, err = p.Poll(virtual)
	if err != nil || len(got) != 0 {
		t.Fatalf("limited poll: %v %v", got, err)
	}
	if p.Skipped != 1 {
		t.Fatalf("skipped = %d", p.Skipped)
	}
	// Relax the limit: the frozen cursor catches the missed post.
	p.Limiter = nil
	got, err = p.Poll(virtual.Add(10 * time.Minute))
	if err != nil || len(got) != 1 || got[0].URL != "https://b.weebly.com/" {
		t.Fatalf("catch-up poll: %+v %v", got, err)
	}
}

func TestPollerPagesThroughBursts(t *testing.T) {
	virtual := epoch
	tw := social.NewNetwork(threat.Twitter, func() time.Time { return virtual })
	srv := httptest.NewServer(tw)
	defer srv.Close()
	// A burst larger than one API page.
	n := social.MaxPageSize + 57
	for i := 0; i < n; i++ {
		tw.Publish(fmt.Sprintf("x https://s%d.weebly.com/", i), epoch.Add(time.Duration(i)*time.Second))
	}
	p := NewPoller(map[threat.Platform]string{threat.Twitter: srv.URL}, nil, epoch)
	virtual = epoch.Add(time.Hour)
	got, err := p.Poll(virtual)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("streamed %d URLs across pages, want %d", len(got), n)
	}
	seen := map[string]bool{}
	for _, u := range got {
		if seen[u.URL] {
			t.Fatalf("duplicate across pages: %s", u.URL)
		}
		seen[u.URL] = true
	}
}
