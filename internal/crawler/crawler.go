// Package crawler implements the FreePhish streaming and pre-processing
// modules (§4.1): polling the Twitter/CrowdTangle-style APIs every 10
// minutes for new posts, extracting URLs with the streaming regex, and
// capturing full website snapshots over HTTP for feature extraction.
//
// All network access is real net/http. Because the simulated web serves
// every domain from one listener, the Fetcher rewrites the dial target to
// the simulation endpoint while preserving the original URL in the Host
// header — the same pattern used to point a crawler at a staging mirror.
package crawler

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"

	"freephish/internal/features"
	"freephish/internal/threat"
	"freephish/internal/urlx"
)

// StreamedURL is one URL extracted from a social post.
type StreamedURL struct {
	URL      string
	Platform threat.Platform
	PostID   string
	Text     string
	At       time.Time
}

// Poller streams posts from the platform APIs.
type Poller struct {
	// Endpoints maps each platform to the base URL of its posts API.
	Endpoints map[threat.Platform]string
	Client    *http.Client
	// Limiter, when set, gates API requests (platform quota regimes). A
	// denied platform is skipped for the cycle; its cursor does not
	// advance, so the next permitted poll catches up with no data loss.
	Limiter *RateLimiter
	// cursor tracks the last poll time per platform.
	cursor map[threat.Platform]time.Time
	// seen dedups post IDs across polls. It is a bounded two-generation
	// set sized off recent poll volume — a six-month stream must not pin
	// every post ID it ever saw in memory.
	seen *seenSet
	// Skipped counts rate-limited platform polls.
	Skipped int
	// Failed counts platform polls skipped because the API failed
	// (transport error, non-200 status, or an undecodable body). Like a
	// rate-limited poll, a failed poll leaves the platform's cursor
	// untouched, so the next healthy poll catches up with no data loss.
	Failed int
	// Observe, when set, receives one event per platform per Poll cycle:
	// how many posts the API returned, how many were duplicates of
	// earlier polls, how many URLs were extracted, and whether the
	// platform was skipped by the rate limiter. Must be cheap; it runs on
	// the polling hot path.
	Observe func(platform threat.Platform, posts, dupPosts, urls int, skipped bool)
	// ObserveFailure, when set, receives each failed platform poll.
	ObserveFailure func(platform threat.Platform, err error)
}

// NewPoller returns a Poller starting its cursors at start.
func NewPoller(endpoints map[threat.Platform]string, client *http.Client, start time.Time) *Poller {
	if client == nil {
		client = http.DefaultClient
	}
	cur := make(map[threat.Platform]time.Time, len(endpoints))
	for p := range endpoints {
		cur[p] = start
	}
	return &Poller{Endpoints: endpoints, Client: client, cursor: cur, seen: newSeenSet()}
}

// SeenLen reports how many post IDs the dedup set currently retains.
func (p *Poller) SeenLen() int { return p.seen.Len() }

// apiPost mirrors the social API's JSON shape.
type apiPost struct {
	ID       string          `json:"id"`
	Platform threat.Platform `json:"platform"`
	Text     string          `json:"text"`
	At       time.Time       `json:"created_at"`
}

// Poll fetches posts newer than each platform cursor, extracts their URLs,
// deduplicates across polls, and advances the cursors to now. Platforms are
// polled in name order so downstream randomness stays reproducible.
//
// A platform whose API fails mid-cycle (transport error, 5xx, bad body) is
// skipped for the cycle exactly like a rate-limited one: its cursor does
// not advance, so the next healthy poll re-fetches the window and the
// dedup set absorbs the re-delivery. Posts from pages that arrived before
// the failure are still emitted — they were genuinely observed.
func (p *Poller) Poll(now time.Time) ([]StreamedURL, error) {
	plats := make([]threat.Platform, 0, len(p.Endpoints))
	for plat := range p.Endpoints {
		plats = append(plats, plat)
	}
	sort.Slice(plats, func(i, j int) bool { return plats[i] < plats[j] })
	var out []StreamedURL
	cyclePosts := 0
	for _, plat := range plats {
		base := p.Endpoints[plat]
		if p.Limiter != nil && !p.Limiter.Allow() {
			p.Skipped++
			if p.Observe != nil {
				p.Observe(plat, 0, 0, 0, true)
			}
			continue // cursor untouched: the next allowed poll catches up
		}
		var nPosts, nDup, nURLs int
		var failure error
		// Page through the window: the platform API caps one response, so a
		// burst of posts spans multiple requests.
		for offset := 0; ; {
			u := fmt.Sprintf("%s/posts?since=%s&offset=%d", base,
				url.QueryEscape(p.cursor[plat].Format(time.RFC3339)), offset)
			resp, err := p.Client.Get(u)
			if err != nil {
				failure = fmt.Errorf("crawler: poll %s: %w", plat, err)
				break
			}
			if resp.StatusCode != http.StatusOK {
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				failure = fmt.Errorf("crawler: poll %s: status %d", plat, resp.StatusCode)
				break
			}
			var posts []apiPost
			err = json.NewDecoder(resp.Body).Decode(&posts)
			more := resp.Header.Get("X-More") == "1"
			resp.Body.Close()
			if err != nil {
				failure = fmt.Errorf("crawler: decode %s feed: %w", plat, err)
				break
			}
			for _, post := range posts {
				nPosts++
				if p.seen.Has(post.ID) {
					nDup++
					continue
				}
				p.seen.Add(post.ID)
				for _, raw := range urlx.ExtractURLs(post.Text) {
					nURLs++
					out = append(out, StreamedURL{
						URL: raw, Platform: plat, PostID: post.ID, Text: post.Text, At: post.At,
					})
				}
			}
			if !more {
				break
			}
			offset += len(posts)
		}
		cyclePosts += nPosts
		if p.Observe != nil {
			p.Observe(plat, nPosts, nDup, nURLs, false)
		}
		if failure != nil {
			// Cursor untouched: the next healthy poll catches up.
			p.Failed++
			if p.ObserveFailure != nil {
				p.ObserveFailure(plat, failure)
			}
			continue
		}
		p.cursor[plat] = now
	}
	p.seen.EndCycle(cyclePosts)
	return out, nil
}

// ChromiumUA is the User-Agent the snapshotter presents. The paper's
// pre-processing module drives a real Chromium via Selenium, which is what
// lets it see through the server-side UA cloaking some phishing sites use
// against crawlers (§6); a bot-like UA would be served a decoy page.
const ChromiumUA = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/107.0.0.0 Safari/537.36"

// Fetcher captures website snapshots. Base, when set, redirects all dials
// to the simulation endpoint while keeping the target URL's host in the
// Host header.
type Fetcher struct {
	Base   string // e.g. the httptest server URL fronting the simulated web
	Client *http.Client
	// Retries is the number of extra attempts on transport errors, with
	// linear backoff (real crawls see transient resets constantly).
	Retries int
	// Backoff between attempts; the default is 250ms.
	Backoff time.Duration
	// UserAgent presented to the site; defaults to ChromiumUA.
	UserAgent string
	// Observe, when set, receives one event per Snapshot: the final HTTP
	// status (0 on transport failure), how many attempts were made, the
	// total wall-clock latency including retries, and the terminal error
	// if every attempt failed. Must be cheap; it runs per fetched URL.
	Observe func(status, attempts int, wall time.Duration, err error)
	// Cache, when set, resolves 200 responses through the snapshot LRU so
	// byte-identical re-probes of a URL (monitor re-checks, proxy repeat
	// visits) reuse one parsed DOM instead of re-parsing per probe. The
	// fetch itself always happens — only the parse is deduplicated.
	Cache *SnapshotCache
}

// NewFetcher returns a Fetcher pointed at the simulation endpoint.
func NewFetcher(base string) *Fetcher {
	return &Fetcher{
		Base:    base,
		Client:  &http.Client{Timeout: 10 * time.Second},
		Retries: 2,
		Backoff: 250 * time.Millisecond,
	}
}

// Snapshot fetches the page at rawURL and returns it with the HTTP status.
// A non-200 status is not an error: the analysis module uses 404/410 as the
// "site taken down" signal.
func (f *Fetcher) Snapshot(rawURL string) (features.Page, int, error) {
	target, err := url.Parse(rawURL)
	if err != nil {
		return features.Page{}, 0, fmt.Errorf("crawler: bad URL %q: %w", rawURL, err)
	}
	reqURL := rawURL
	if f.Base != "" {
		base, err := url.Parse(f.Base)
		if err != nil {
			return features.Page{}, 0, fmt.Errorf("crawler: bad base %q: %w", f.Base, err)
		}
		rewritten := *target
		rewritten.Scheme = base.Scheme
		rewritten.Host = base.Host
		reqURL = rewritten.String()
	}
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	ua := f.UserAgent
	if ua == "" {
		ua = ChromiumUA
	}
	backoff := f.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= f.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff * time.Duration(attempt))
		}
		req, err := http.NewRequest(http.MethodGet, reqURL, nil)
		if err != nil {
			return features.Page{}, 0, err
		}
		req.Host = target.Host // original virtual host
		req.Header.Set("User-Agent", ua)
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue // transient transport error: retry
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if f.Observe != nil {
			f.Observe(resp.StatusCode, attempt+1, time.Since(start), nil)
		}
		if f.Cache != nil && resp.StatusCode == http.StatusOK {
			return f.Cache.Page(rawURL, string(body)), resp.StatusCode, nil
		}
		return features.Page{URL: rawURL, HTML: string(body)}, resp.StatusCode, nil
	}
	err = fmt.Errorf("crawler: fetch %q failed after %d attempts: %w", rawURL, f.Retries+1, lastErr)
	if f.Observe != nil {
		f.Observe(0, f.Retries+1, time.Since(start), err)
	}
	return features.Page{}, 0, err
}
