// Package crawler implements the FreePhish streaming and pre-processing
// modules (§4.1): polling the Twitter/CrowdTangle-style APIs every 10
// minutes for new posts, extracting URLs with the streaming regex, and
// capturing full website snapshots over HTTP for feature extraction.
//
// All network access is real net/http. Because the simulated web serves
// every domain from one listener, the Fetcher rewrites the dial target to
// the simulation endpoint while preserving the original URL in the Host
// header — the same pattern used to point a crawler at a staging mirror.
package crawler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"

	"freephish/internal/features"
	"freephish/internal/retry"
	"freephish/internal/threat"
	"freephish/internal/urlx"
)

// StreamedURL is one URL extracted from a social post.
type StreamedURL struct {
	URL      string
	Platform threat.Platform
	PostID   string
	Text     string
	At       time.Time
}

// Poller streams posts from the platform APIs.
type Poller struct {
	// Endpoints maps each platform to the base URL of its posts API.
	Endpoints map[threat.Platform]string
	Client    *http.Client
	// Limiter, when set, gates API requests (platform quota regimes). A
	// denied platform is skipped for the cycle; its cursor does not
	// advance, so the next permitted poll catches up with no data loss.
	Limiter *RateLimiter
	// cursor tracks the last poll time per platform.
	cursor map[threat.Platform]time.Time
	// seen dedups post IDs across polls. It is a bounded two-generation
	// set sized off recent poll volume — a six-month stream must not pin
	// every post ID it ever saw in memory.
	seen *seenSet
	// Skipped counts rate-limited platform polls.
	Skipped int
	// Failed counts platform polls skipped because the API failed
	// (transport error, non-200 status, or an undecodable body). Like a
	// rate-limited poll, a failed poll leaves the platform's cursor
	// untouched, so the next healthy poll catches up with no data loss.
	Failed int
	// Observe, when set, receives one event per platform per Poll cycle:
	// how many posts the API returned, how many were duplicates of
	// earlier polls, how many URLs were extracted, and whether the
	// platform was skipped by the rate limiter. Must be cheap; it runs on
	// the polling hot path.
	Observe func(platform threat.Platform, posts, dupPosts, urls int, skipped bool)
	// ObserveFailure, when set, receives each failed platform poll.
	ObserveFailure func(platform threat.Platform, err error)
	// Retry, when set, is the unified retry policy for page fetches: a
	// transport error, 5xx answer, or undecodable body gets the policy's
	// backoff before the platform's cycle is declared failed. nil means
	// one attempt per page.
	Retry *retry.Policy
}

// NewPoller returns a Poller starting its cursors at start. A nil client
// gets a private client with a timeout — never http.DefaultClient, whose
// missing timeout would let one stuck platform API hang the poll loop
// forever.
func NewPoller(endpoints map[threat.Platform]string, client *http.Client, start time.Time) *Poller {
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Second}
	}
	cur := make(map[threat.Platform]time.Time, len(endpoints))
	for p := range endpoints {
		cur[p] = start
	}
	return &Poller{Endpoints: endpoints, Client: client, cursor: cur, seen: newSeenSet()}
}

// SeenLen reports how many post IDs the dedup set currently retains.
func (p *Poller) SeenLen() int { return p.seen.Len() }

// apiPost mirrors the social API's JSON shape.
type apiPost struct {
	ID       string          `json:"id"`
	Platform threat.Platform `json:"platform"`
	Text     string          `json:"text"`
	At       time.Time       `json:"created_at"`
}

// Poll fetches posts newer than each platform cursor, extracts their URLs,
// deduplicates across polls, and advances the cursors to now. Platforms are
// polled in name order so downstream randomness stays reproducible.
//
// A platform whose API fails mid-cycle (transport error, 5xx, bad body) is
// skipped for the cycle exactly like a rate-limited one: its cursor does
// not advance, so the next healthy poll re-fetches the window and the
// dedup set absorbs the re-delivery. Posts from pages that arrived before
// the failure are still emitted — they were genuinely observed.
func (p *Poller) Poll(now time.Time) ([]StreamedURL, error) {
	plats := make([]threat.Platform, 0, len(p.Endpoints))
	for plat := range p.Endpoints {
		plats = append(plats, plat)
	}
	sort.Slice(plats, func(i, j int) bool { return plats[i] < plats[j] })
	var out []StreamedURL
	cyclePosts := 0
	for _, plat := range plats {
		base := p.Endpoints[plat]
		if p.Limiter != nil && !p.Limiter.Allow() {
			p.Skipped++
			if p.Observe != nil {
				p.Observe(plat, 0, 0, 0, true)
			}
			continue // cursor untouched: the next allowed poll catches up
		}
		var nPosts, nDup, nURLs int
		var failure error
		// Page through the window: the platform API caps one response, so a
		// burst of posts spans multiple requests.
		for offset := 0; ; {
			u := fmt.Sprintf("%s/posts?since=%s&offset=%d", base,
				url.QueryEscape(p.cursor[plat].Format(time.RFC3339)), offset)
			posts, more, err := p.fetchPage(plat, u)
			if err != nil {
				failure = err
				break
			}
			if more && len(posts) == 0 {
				// A no-progress page: the API claims more results but
				// returned none, so offset would never advance. Spinning
				// here livelocked the poller; treat it like any other
				// failed poll — cursor untouched, re-fetched next cycle.
				failure = fmt.Errorf("crawler: poll %s: no-progress page at offset %d (empty body with more pending)", plat, offset)
				break
			}
			for _, post := range posts {
				nPosts++
				if p.seen.Has(post.ID) {
					nDup++
					continue
				}
				p.seen.Add(post.ID)
				for _, raw := range urlx.ExtractURLs(post.Text) {
					nURLs++
					out = append(out, StreamedURL{
						URL: raw, Platform: plat, PostID: post.ID, Text: post.Text, At: post.At,
					})
				}
			}
			if !more {
				break
			}
			offset += len(posts)
		}
		cyclePosts += nPosts
		if p.Observe != nil {
			p.Observe(plat, nPosts, nDup, nURLs, false)
		}
		if failure != nil {
			// Cursor untouched: the next healthy poll catches up.
			p.Failed++
			if p.ObserveFailure != nil {
				p.ObserveFailure(plat, failure)
			}
			continue
		}
		p.cursor[plat] = now
	}
	p.seen.EndCycle(cyclePosts)
	return out, nil
}

// fetchPage fetches and decodes one page of a platform's posts API,
// retrying transient failures — transport errors, 5xx answers, and
// undecodable bodies — under the unified policy before the cycle gives
// up on the platform.
func (p *Poller) fetchPage(plat threat.Platform, u string) (posts []apiPost, more bool, err error) {
	op := func() error {
		resp, err := p.Client.Get(u)
		if err != nil {
			return retry.Transient(fmt.Errorf("crawler: poll %s: %w", plat, err))
		}
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			err := fmt.Errorf("crawler: poll %s: status %d", plat, resp.StatusCode)
			if resp.StatusCode >= 500 {
				return retry.Transient(err)
			}
			return err
		}
		posts = nil
		derr := json.NewDecoder(resp.Body).Decode(&posts)
		more = resp.Header.Get("X-More") == "1"
		resp.Body.Close()
		if derr != nil {
			return retry.Transient(fmt.Errorf("crawler: decode %s feed: %w", plat, derr))
		}
		return nil
	}
	if p.Retry == nil {
		err = op()
		return posts, more, err
	}
	err = p.Retry.Do(context.Background(), "poll."+string(plat), op)
	return posts, more, err
}

// ChromiumUA is the User-Agent the snapshotter presents. The paper's
// pre-processing module drives a real Chromium via Selenium, which is what
// lets it see through the server-side UA cloaking some phishing sites use
// against crawlers (§6); a bot-like UA would be served a decoy page.
const ChromiumUA = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/107.0.0.0 Safari/537.36"

// Fetcher captures website snapshots. Base, when set, redirects all dials
// to the simulation endpoint while keeping the target URL's host in the
// Host header.
type Fetcher struct {
	Base   string // e.g. the httptest server URL fronting the simulated web
	Client *http.Client
	// Retry, when set, is the unified retry policy governing attempts,
	// backoff, and circuit breaking (keyed per target host). When nil, a
	// policy is derived from Retries/Backoff per call.
	Retry *retry.Policy
	// Retries is the number of extra attempts when Retry is nil (real
	// crawls see transient resets constantly).
	Retries int
	// Backoff is the base delay between attempts when Retry is nil; the
	// default is 250ms.
	Backoff time.Duration
	// UserAgent presented to the site; defaults to ChromiumUA.
	UserAgent string
	// Observe, when set, receives one event per Snapshot: the final HTTP
	// status (0 on transport failure), how many attempts were made, the
	// total wall-clock latency including retries, and the terminal error
	// if every attempt failed. Must be cheap; it runs per fetched URL.
	Observe func(status, attempts int, wall time.Duration, err error)
	// Cache, when set, resolves 200 responses through the snapshot LRU so
	// byte-identical re-probes of a URL (monitor re-checks, proxy repeat
	// visits) reuse one parsed DOM instead of re-parsing per probe. The
	// fetch itself always happens — only the parse is deduplicated.
	Cache *SnapshotCache
}

// defaultFetchClient backs a Fetcher whose Client was left nil — with a
// timeout, so a stalled site cannot hang a snapshot forever.
var defaultFetchClient = &http.Client{Timeout: 15 * time.Second}

// NewFetcher returns a Fetcher pointed at the simulation endpoint.
func NewFetcher(base string) *Fetcher {
	return &Fetcher{
		Base:    base,
		Client:  &http.Client{Timeout: 10 * time.Second},
		Retries: 2,
		Backoff: 250 * time.Millisecond,
	}
}

// Snapshot fetches the page at rawURL and returns it with the HTTP status.
// A non-200 status is not an error: the analysis module uses 404/410 as the
// "site taken down" signal.
func (f *Fetcher) Snapshot(rawURL string) (features.Page, int, error) {
	return f.SnapshotContext(context.Background(), rawURL)
}

// SnapshotContext is Snapshot with cancellation: ctx aborts both
// in-flight requests and backoff waits, so a shutdown is never blocked
// behind a retry loop.
//
// Transport errors, short reads, and 5xx answers are all retried under
// the policy; when every attempt 5xxes, the final response is still
// returned with its status (an overloaded host is data, not a crash).
func (f *Fetcher) SnapshotContext(ctx context.Context, rawURL string) (features.Page, int, error) {
	target, err := url.Parse(rawURL)
	if err != nil {
		return features.Page{}, 0, fmt.Errorf("crawler: bad URL %q: %w", rawURL, err)
	}
	reqURL := rawURL
	if f.Base != "" {
		base, err := url.Parse(f.Base)
		if err != nil {
			return features.Page{}, 0, fmt.Errorf("crawler: bad base %q: %w", f.Base, err)
		}
		rewritten := *target
		rewritten.Scheme = base.Scheme
		rewritten.Host = base.Host
		reqURL = rewritten.String()
	}
	client := f.Client
	if client == nil {
		client = defaultFetchClient
	}
	ua := f.UserAgent
	if ua == "" {
		ua = ChromiumUA
	}
	pol := f.Retry
	if pol == nil {
		backoff := f.Backoff
		if backoff <= 0 {
			backoff = 250 * time.Millisecond
		}
		pol = &retry.Policy{
			MaxAttempts: f.Retries + 1,
			BaseDelay:   backoff,
			Multiplier:  2,
		}
	}
	start := time.Now()
	var (
		page     features.Page
		status   int
		attempts int
	)
	doErr := pol.Do(ctx, "fetch."+target.Host, func() error {
		attempts++
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil)
		if err != nil {
			return err
		}
		req.Host = target.Host // original virtual host
		req.Header.Set("User-Agent", ua)
		resp, err := client.Do(req)
		if err != nil {
			return retry.Transient(err)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			return retry.Transient(fmt.Errorf("read %q: %w", rawURL, err))
		}
		page = features.Page{URL: rawURL, HTML: string(body)}
		status = resp.StatusCode
		if resp.StatusCode >= 500 {
			return retry.Transient(&retry.StatusError{Code: resp.StatusCode})
		}
		return nil
	})
	if doErr != nil {
		var se *retry.StatusError
		if errors.As(doErr, &se) && status != 0 {
			// Retries exhausted on 5xx: surface the final page like any
			// other non-200, per the Snapshot contract.
			doErr = nil
		}
	}
	if doErr != nil {
		err := fmt.Errorf("crawler: fetch %q failed after %d attempts: %w", rawURL, attempts, doErr)
		if f.Observe != nil {
			f.Observe(0, attempts, time.Since(start), err)
		}
		return features.Page{}, 0, err
	}
	if f.Observe != nil {
		f.Observe(status, attempts, time.Since(start), nil)
	}
	if f.Cache != nil && status == http.StatusOK {
		return f.Cache.Page(rawURL, page.HTML), status, nil
	}
	return page, status, nil
}
