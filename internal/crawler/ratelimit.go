package crawler

import (
	"sync"
	"time"
)

// RateLimiter is a token-bucket limiter for the platform APIs. The paper's
// streaming module lives under real quota regimes (the Twitter Academic
// API caps requests per window); the limiter makes the poller a good
// citizen and testable without wall-clock sleeps, since it consults an
// injectable clock.
type RateLimiter struct {
	capacity float64
	refill   float64 // tokens per second
	now      func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
	// Quota-pressure counters, exported for the crawler metrics:
	// throttled counts denied Allow calls; waitTotal accumulates the
	// estimated time-to-next-token at each denial.
	throttled uint64
	waitTotal time.Duration
}

// NewRateLimiter returns a limiter holding at most capacity tokens,
// refilled at ratePerSec. The bucket starts full. now defaults to
// time.Now when nil.
func NewRateLimiter(capacity int, ratePerSec float64, now func() time.Time) *RateLimiter {
	if now == nil {
		now = time.Now
	}
	return &RateLimiter{
		capacity: float64(capacity),
		refill:   ratePerSec,
		now:      now,
		tokens:   float64(capacity),
		last:     now(),
	}
}

// Allow consumes one token if available, reporting whether the caller may
// proceed.
func (r *RateLimiter) Allow() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance()
	if r.tokens < 1 {
		r.throttled++
		if r.refill > 0 {
			r.waitTotal += r.waitLocked()
		}
		return false
	}
	r.tokens--
	return true
}

// Wait reports how long the caller must wait until a token will be
// available (0 when Allow would succeed now). It does not consume a token.
func (r *RateLimiter) Wait() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance()
	return r.waitLocked()
}

// waitLocked computes the time until the next token. Callers must hold mu
// and have called advance.
func (r *RateLimiter) waitLocked() time.Duration {
	if r.tokens >= 1 {
		return 0
	}
	if r.refill <= 0 {
		return time.Duration(1<<62 - 1) // never
	}
	deficit := 1 - r.tokens
	return time.Duration(deficit / r.refill * float64(time.Second))
}

// advance refills the bucket for the time elapsed since the last update.
// Callers must hold mu.
func (r *RateLimiter) advance() {
	now := r.now()
	elapsed := now.Sub(r.last).Seconds()
	if elapsed <= 0 {
		return
	}
	r.last = now
	r.tokens += elapsed * r.refill
	if r.tokens > r.capacity {
		r.tokens = r.capacity
	}
}

// Tokens reports the current token count (after refill), for tests and
// metrics.
func (r *RateLimiter) Tokens() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance()
	return r.tokens
}

// Throttled reports how many Allow calls have been denied — the quota
// pressure the crawler metrics export.
func (r *RateLimiter) Throttled() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.throttled
}

// WaitTotal reports the cumulative estimated wait imposed by denials: the
// sum, over every denied Allow, of the then-current time-to-next-token.
// A bucket with no refill contributes nothing (the wait is unbounded, not
// a backlog).
func (r *RateLimiter) WaitTotal() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.waitTotal
}
