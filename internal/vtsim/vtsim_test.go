package vtsim

import (
	"testing"
	"time"

	"freephish/internal/fwb"
	"freephish/internal/simclock"
	"freephish/internal/threat"
)

var epoch = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

func target(isFWB, evasive bool) *threat.Target {
	tg := &threat.Target{SharedAt: epoch, HasCredentialFields: !evasive, TwoStepLink: evasive, TLS: true}
	if isFWB {
		svc, _ := fwb.ByKey("weebly")
		tg.Service = svc
	}
	return tg
}

func TestSeventySixEngines(t *testing.T) {
	if n := NewScanner().NumEngines(); n != 76 {
		t.Fatalf("engines = %d, want 76 (paper)", n)
	}
}

func medianDetections(t *testing.T, s *Scanner, tg func() *threat.Target, rng *simclock.RNG) int {
	t.Helper()
	week := epoch.Add(7 * 24 * time.Hour)
	var counts []int
	for i := 0; i < 1200; i++ {
		counts = append(counts, CountBy(s.Assess(tg(), rng), week))
	}
	// median
	sum := append([]int(nil), counts...)
	for i := 1; i < len(sum); i++ {
		for j := i; j > 0 && sum[j] < sum[j-1]; j-- {
			sum[j], sum[j-1] = sum[j-1], sum[j]
		}
	}
	return sum[len(sum)/2]
}

func TestFigure7MedianDetections(t *testing.T) {
	s := NewScanner()
	rng := simclock.NewRNG(7, "vt")
	selfMed := medianDetections(t, s, func() *threat.Target { return target(false, false) }, rng)
	fwbMed := medianDetections(t, s, func() *threat.Target { return target(true, false) }, rng)
	t.Logf("median detections after 1 week: self-hosted=%d (paper 9), FWB=%d (paper 4)", selfMed, fwbMed)
	if selfMed < 7 || selfMed > 12 {
		t.Errorf("self-hosted median = %d, want ≈9", selfMed)
	}
	if fwbMed < 2 || fwbMed > 6 {
		t.Errorf("FWB median = %d, want ≈4", fwbMed)
	}
	if fwbMed >= selfMed {
		t.Errorf("FWB median %d >= self-hosted %d", fwbMed, selfMed)
	}
}

func TestDetectionsAccrueOverTime(t *testing.T) {
	s := NewScanner()
	rng := simclock.NewRNG(9, "vt2")
	var day1, day7 int
	for i := 0; i < 500; i++ {
		det := s.Assess(target(false, false), rng)
		day1 += CountBy(det, epoch.Add(24*time.Hour))
		day7 += CountBy(det, epoch.Add(7*24*time.Hour))
	}
	if day1 >= day7 {
		t.Fatalf("day1 detections %d >= day7 %d", day1, day7)
	}
	if day1 == 0 {
		t.Fatal("no detections on day 1 at all")
	}
}

func TestEvasivePenalty(t *testing.T) {
	s := NewScanner()
	rng := simclock.NewRNG(11, "vt3")
	week := epoch.Add(7 * 24 * time.Hour)
	var ev, reg int
	for i := 0; i < 800; i++ {
		ev += CountBy(s.Assess(target(true, true), rng), week)
		reg += CountBy(s.Assess(target(true, false), rng), week)
	}
	if ev >= reg {
		t.Fatalf("evasive detections %d >= regular %d", ev, reg)
	}
}

func TestAssessSortedAndAfterShare(t *testing.T) {
	s := NewScanner()
	rng := simclock.NewRNG(13, "vt4")
	for i := 0; i < 50; i++ {
		det := s.Assess(target(false, false), rng)
		for j, d := range det {
			if d.Before(epoch) {
				t.Fatal("detection before share")
			}
			if j > 0 && d.Before(det[j-1]) {
				t.Fatal("detections not sorted")
			}
		}
	}
}

func TestCountBy(t *testing.T) {
	det := []time.Time{epoch.Add(time.Hour), epoch.Add(3 * time.Hour)}
	if got := CountBy(det, epoch); got != 0 {
		t.Fatalf("CountBy at share = %d", got)
	}
	if got := CountBy(det, epoch.Add(time.Hour)); got != 1 {
		t.Fatalf("CountBy inclusive = %d, want 1", got)
	}
	if got := CountBy(det, epoch.Add(24*time.Hour)); got != 2 {
		t.Fatalf("CountBy day = %d", got)
	}
}

func TestTierComposition(t *testing.T) {
	tiers := NewScanner().TierCounts()
	if tiers["aggressive"] != 8 || tiers["moderate"] != 26 || tiers["weak"] != 42 {
		t.Fatalf("tiers = %v", tiers)
	}
}
