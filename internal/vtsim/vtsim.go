// Package vtsim simulates the VirusTotal-style aggregation of 76 browser
// protection tools and anti-phishing engines (§5.2). Engines are
// heterogeneous: a few aggressive vendors with fast crawler fleets, a
// moderate middle tier, and a long tail of weak engines that mostly import
// feeds late. Figures 7 and 8 are distributions over how many engines have
// flagged a URL by a given day; the FWB/self-hosted gap emerges from the
// same mechanisms as the blocklists (no CT entries, benign-looking domain
// features, credential-less evasive variants).
package vtsim

import (
	"fmt"
	"sort"
	"time"

	"freephish/internal/simclock"
	"freephish/internal/threat"
)

// Engine is one anti-phishing engine's detection model.
type Engine struct {
	Name string
	// Detect is the probability the engine ever flags a typical
	// self-hosted phishing URL within the observation horizon.
	Detect float64
	// FWBFactor scales Detect for FWB-hosted targets.
	FWBFactor float64
	// DelayMedian is the log-normal median of the detection delay.
	DelayMedian time.Duration
	// FWBSlowdown multiplies the delay for FWB targets.
	FWBSlowdown float64
}

// Scanner aggregates the engine fleet, like the VirusTotal API the paper
// polls every 10 minutes.
type Scanner struct {
	Engines []*Engine
	// ProminenceSigma is the spread of the per-URL visibility factor that
	// correlates engine verdicts (a widely shared URL is seen by many
	// engines; an obscure one by few).
	ProminenceSigma float64
}

// NewScanner builds the 76-engine fleet: 8 aggressive, 26 moderate, 42
// weak — calibrated so the median self-hosted URL accrues ≈9 detections in
// a week and the median FWB URL ≈4 (Figure 7).
func NewScanner() *Scanner {
	s := &Scanner{ProminenceSigma: 0.45}
	add := func(n int, tier string, detect, fwbFactor float64, delay time.Duration, slow float64) {
		for i := 0; i < n; i++ {
			s.Engines = append(s.Engines, &Engine{
				Name:        fmt.Sprintf("%s-%02d", tier, i+1),
				Detect:      detect,
				FWBFactor:   fwbFactor,
				DelayMedian: delay,
				FWBSlowdown: slow,
			})
		}
	}
	add(8, "aggressive", 0.36, 0.50, 6*time.Hour, 2.2)
	add(26, "moderate", 0.155, 0.45, 20*time.Hour, 2.0)
	add(42, "weak", 0.042, 0.40, 48*time.Hour, 1.8)
	return s
}

// NumEngines reports the fleet size (the paper's 76).
func (s *Scanner) NumEngines() int { return len(s.Engines) }

// Assess returns the sorted times at which engines flag the target. The
// caller truncates to its observation horizon.
func (s *Scanner) Assess(t *threat.Target, rng *simclock.RNG) []time.Time {
	// Per-URL prominence correlates engines: log-normal around 1.
	prominence := rng.LogNormal(1, s.ProminenceSigma)
	evasive := 1.0
	if t.Evasive() {
		evasive = 0.5
	}
	var out []time.Time
	for _, e := range s.Engines {
		p := e.Detect * prominence * evasive
		slow := 1.0
		if t.IsFWB() {
			p *= e.FWBFactor
			slow = e.FWBSlowdown
			// Familiar, heavily-abused services get marginally more
			// attention, mirroring the blocklist pattern.
			p *= 0.6 + 0.8*t.Service.BlocklistFamiliarity
		}
		if p > 0.97 {
			p = 0.97
		}
		if !rng.Bool(p) {
			continue
		}
		d := rng.LogNormal(float64(e.DelayMedian)*slow, 1.2)
		out = append(out, t.SharedAt.Add(time.Duration(d)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// CountBy reports how many detections happened at or before the instant.
func CountBy(detections []time.Time, at time.Time) int {
	n := 0
	for _, d := range detections {
		if !d.After(at) {
			n++
		}
	}
	return n
}

// TierCounts reports the engine fleet's composition by tier prefix — the
// aggressive/moderate/weak mix behind the Figure 7 detection distribution.
func (s *Scanner) TierCounts() map[string]int {
	out := map[string]int{}
	for _, e := range s.Engines {
		for i, c := range e.Name {
			if c == '-' {
				out[e.Name[:i]]++
				break
			}
		}
	}
	return out
}
