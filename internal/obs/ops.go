package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// OpsOptions configures the optional parts of the operational surface.
type OpsOptions struct {
	// Healthz reports readiness; nil means always healthy.
	Healthz func() error
	// Dash, when non-nil, mounts the live dashboard at /dash.
	Dash *Dash
	// Info is the /version body — typically the map RegisterBuildInfo
	// returned. nil serves an empty object.
	Info map[string]string
}

// NewOpsMux assembles the standard operational surface every FreePhish
// daemon exposes:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       200 "ok", or 503 with the error from healthz
//	/version       build identity JSON
//	/debug/vars    expvar JSON (process-wide)
//	/debug/pprof/  the net/http/pprof profile suite
//
// healthz may be nil (always healthy). Mount the mux on a loopback
// listener, or merge selected routes into an existing daemon mux. Use
// NewOps to also mount the /dash dashboard and /version payload.
func NewOpsMux(reg *Registry, healthz func() error) *http.ServeMux {
	return NewOps(reg, OpsOptions{Healthz: healthz})
}

// NewOps is NewOpsMux with the full option set: dashboard and build info.
func NewOps(reg *Registry, opts OpsOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Healthz != nil {
			if err := opts.Healthz(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		info := opts.Info
		if info == nil {
			info = map[string]string{}
		}
		json.NewEncoder(w).Encode(info)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if opts.Dash != nil {
		opts.Dash.Register(mux)
	}
	return mux
}

// OpsPaths reports whether path belongs to the operational surface —
// daemons that multiplex ops routes onto an application listener use it
// to split traffic.
func OpsPaths(path string) bool {
	switch path {
	case "/metrics", "/healthz", "/version", "/debug/vars", "/dash":
		return true
	}
	if len(path) >= len("/dash/") && path[:len("/dash/")] == "/dash/" {
		return true
	}
	return len(path) >= len("/debug/pprof/") && path[:len("/debug/pprof/")] == "/debug/pprof/"
}
