package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// NewOpsMux assembles the standard operational surface every FreePhish
// daemon exposes:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       200 "ok", or 503 with the error from healthz
//	/debug/vars    expvar JSON (process-wide)
//	/debug/pprof/  the net/http/pprof profile suite
//
// healthz may be nil (always healthy). Mount the mux on a loopback
// listener, or merge selected routes into an existing daemon mux.
func NewOpsMux(reg *Registry, healthz func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsPaths reports whether path belongs to the operational surface —
// daemons that multiplex ops routes onto an application listener use it
// to split traffic.
func OpsPaths(path string) bool {
	switch path {
	case "/metrics", "/healthz", "/debug/vars":
		return true
	}
	return len(path) >= len("/debug/pprof/") && path[:len("/debug/pprof/")] == "/debug/pprof/"
}
