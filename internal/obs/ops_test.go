package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func opsGet(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestOpsHealthzFailure: a failing readiness check must flip /healthz to
// 503 while /metrics keeps serving.
func TestOpsHealthzFailure(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("freephish_ops_test_total", "t").Inc()
	healthErr := error(nil)
	mux := NewOps(reg, OpsOptions{Healthz: func() error { return healthErr }})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code, _ := opsGet(t, srv, "/healthz"); code != 200 {
		t.Errorf("healthy /healthz = %d", code)
	}
	healthErr = io.ErrUnexpectedEOF
	code, body := opsGet(t, srv, "/healthz")
	if code != 503 || !strings.Contains(body, "unexpected EOF") {
		t.Errorf("failing /healthz = %d %q, want 503 with the error", code, body)
	}
	if code, _ := opsGet(t, srv, "/metrics"); code != 200 {
		t.Errorf("/metrics = %d while unhealthy, want 200", code)
	}
}

// TestOpsVersion: /version serves the build-info JSON, and the
// freephish_build_info gauge is exported with matching labels.
func TestOpsVersion(t *testing.T) {
	reg := NewRegistry()
	info := RegisterBuildInfo(reg, 42)
	mux := NewOps(reg, OpsOptions{Info: info})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body := opsGet(t, srv, "/version")
	if code != 200 {
		t.Fatalf("/version = %d", code)
	}
	var got map[string]string
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/version body is not JSON: %v\n%s", err, body)
	}
	if got["seed"] != "42" {
		t.Errorf("/version seed = %q, want 42", got["seed"])
	}
	if got["version"] == "" || got["goversion"] == "" {
		t.Errorf("/version missing identity fields: %v", got)
	}

	_, metrics := opsGet(t, srv, "/metrics")
	if !strings.Contains(metrics, "freephish_build_info{") ||
		!strings.Contains(metrics, `seed="42"`) {
		t.Errorf("freephish_build_info gauge missing or unlabeled:\n%s", metrics)
	}
}

// TestDash smoke-tests the three dashboard routes over a seeded journal.
func TestDash(t *testing.T) {
	sim := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	reg := NewRegistry()
	reg.GaugeVec("freephish_pipe_occupancy", "t", "pipe", "stage").With("poll", "fetch").Set(3)
	reg.Counter("unprefixed_total", "t").Inc() // must be filtered out of /dash/data

	j := NewJournal(func() time.Time { return sim }, 0)
	const url = "http://paypal-login-3.weebly.com/"
	j.Record(url, EvPosted, sim, "platform", "twitter")
	j.Record(url, EvFetched, sim.Add(2*time.Hour), "status", "200")
	j.Record(url, EvClassified, sim.Add(2*time.Hour),
		"score", "0.93", "verdict", "phishing", "top", "form_count:+0.0312,has_login:+0.0041")
	j.Record(url, EvReported, sim.Add(3*time.Hour), "recipient", "weebly", "ack", "true")
	j.Record(url, EvTakedown, sim.Add(26*time.Hour), "via", "host")
	j.RecordOps("", EvStage, "pipe", "poll", "stage", "fetch", "seq", "0")

	d := &Dash{Reg: reg, Journal: j, Title: "test", Info: map[string]string{"seed": "1"}}
	mux := NewOps(reg, OpsOptions{Dash: d})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// /dash: the HTML shell renders.
	code, body := opsGet(t, srv, "/dash")
	if code != 200 || !strings.Contains(body, "test · live ops") {
		t.Errorf("/dash = %d (title missing)", code)
	}

	// /dash/data: JSON with filtered samples, counts, tail, and timelines.
	code, body = opsGet(t, srv, "/dash/data")
	if code != 200 {
		t.Fatalf("/dash/data = %d", code)
	}
	var data struct {
		Title     string            `json:"title"`
		Counts    map[string]uint64 `json:"counts"`
		Samples   []dashSample      `json:"samples"`
		Tail      []dashEvent       `json:"tail"`
		Timelines []struct {
			URL       string `json:"url"`
			Takedowns []struct {
				Via string `json:"via"`
			} `json:"takedowns"`
		} `json:"timelines"`
		Journal bool `json:"journal"`
	}
	if err := json.Unmarshal([]byte(body), &data); err != nil {
		t.Fatalf("/dash/data is not JSON: %v", err)
	}
	if !data.Journal || data.Title != "test" {
		t.Errorf("journal=%v title=%q", data.Journal, data.Title)
	}
	for _, s := range data.Samples {
		if !strings.HasPrefix(s.Name, "freephish_") {
			t.Errorf("unprefixed sample %q leaked into /dash/data", s.Name)
		}
	}
	if data.Counts[EvTakedown] != 1 || data.Counts[EvStage] != 1 {
		t.Errorf("counts = %v", data.Counts)
	}
	if len(data.Tail) != 6 {
		t.Errorf("tail = %d events, want 6", len(data.Tail))
	}
	if len(data.Timelines) != 1 || data.Timelines[0].URL != url ||
		len(data.Timelines[0].Takedowns) != 1 || data.Timelines[0].Takedowns[0].Via != "host" {
		t.Errorf("timelines = %+v", data.Timelines)
	}

	// /dash/trace: verdict, contributions, and lifecycle render.
	code, body = opsGet(t, srv, "/dash/trace?url="+url)
	if code != 200 {
		t.Fatalf("/dash/trace = %d", code)
	}
	// html/template renders "+" as &#43;, so match on the digits.
	for _, want := range []string{"phishing", "0.93", "form_count", "0.0312", "takedown"} {
		if !strings.Contains(body, want) {
			t.Errorf("/dash/trace missing %q", want)
		}
	}
	// Unknown URL: friendly empty state, not a 500.
	code, body = opsGet(t, srv, "/dash/trace?url=http://nope/")
	if code != 200 || !strings.Contains(body, "No lifecycle events") {
		t.Errorf("/dash/trace for unknown URL = %d %q", code, body)
	}

	// The split helper must claim the new routes.
	for _, p := range []string{"/version", "/dash", "/dash/data", "/dash/trace"} {
		if !OpsPaths(p) {
			t.Errorf("OpsPaths(%q) = false", p)
		}
	}
	if OpsPaths("/dashboard") {
		t.Error(`OpsPaths("/dashboard") = true; must not shadow application paths`)
	}
}

// TestDashShardPanel: the /dash shard panel folds the shard dispatch ops
// events into one row per shard — status, attempt count, owning runner,
// and the newest streamed checkpoint's sim instant — sorted numerically.
func TestDashShardPanel(t *testing.T) {
	sim := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	reg := NewRegistry()
	j := NewJournal(func() time.Time { return sim }, 0)

	// Shard 0: clean remote run.
	j.RecordOps("", EvShardDispatch, "shard", "0", "attempt", "0", "runner", "10.0.0.7:7001", "adopted", "false")
	j.RecordOps("", EvShardCheckpoint, "shard", "0", "attempt", "0", "at", "2022-11-02T00:00:00Z")
	j.RecordOps("", EvShardDone, "shard", "0", "attempt", "0", "runner", "10.0.0.7:7001")
	// Shard 1: first attempt dies after a checkpoint, replacement adopts.
	j.RecordOps("", EvShardDispatch, "shard", "1", "attempt", "0", "runner", "10.0.0.8:7001", "adopted", "false")
	j.RecordOps("", EvShardCheckpoint, "shard", "1", "attempt", "0", "at", "2022-11-03T00:00:00Z")
	j.RecordOps("", EvShardRetry, "shard", "1", "attempt", "0", "err", "worker crashed")
	j.RecordOps("", EvShardDispatch, "shard", "1", "attempt", "1", "runner", "local", "adopted", "true")
	j.RecordOps("", EvShardAdopt, "shard", "1", "attempt", "1", "runner", "local", "from", "2022-11-03T00:00:00Z")
	// Shard 10: still running (also exercises numeric, not lexical, sort).
	j.RecordOps("", EvShardDispatch, "shard", "10", "attempt", "0", "runner", "local", "adopted", "false")

	d := &Dash{Reg: reg, Journal: j}
	mux := NewOps(reg, OpsOptions{Dash: d})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body := opsGet(t, srv, "/dash/data")
	if code != 200 {
		t.Fatalf("/dash/data = %d", code)
	}
	var data struct {
		Shards []dashShard `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &data); err != nil {
		t.Fatalf("/dash/data is not JSON: %v", err)
	}
	want := []dashShard{
		{Shard: "0", Status: "done", Attempts: 1, Runner: "10.0.0.7:7001", LastCheckpoint: "2022-11-02T00:00:00Z"},
		{Shard: "1", Status: "adopted", Attempts: 2, Runner: "local", LastCheckpoint: "2022-11-03T00:00:00Z"},
		{Shard: "10", Status: "running", Attempts: 1, Runner: "local"},
	}
	if len(data.Shards) != len(want) {
		t.Fatalf("shard panel rows = %+v, want %+v", data.Shards, want)
	}
	for i := range want {
		if data.Shards[i] != want[i] {
			t.Errorf("shard row %d = %+v, want %+v", i, data.Shards[i], want[i])
		}
	}
}

// TestDashNilJournal: the dashboard must serve with tracing disabled.
func TestDashNilJournal(t *testing.T) {
	reg := NewRegistry()
	d := &Dash{Reg: reg}
	mux := NewOps(reg, OpsOptions{Dash: d})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body := opsGet(t, srv, "/dash/data")
	if code != 200 {
		t.Fatalf("/dash/data = %d", code)
	}
	var data map[string]any
	if err := json.Unmarshal([]byte(body), &data); err != nil {
		t.Fatal(err)
	}
	if data["journal"] != false {
		t.Errorf("journal flag = %v, want false", data["journal"])
	}
	if code, _ := opsGet(t, srv, "/dash"); code != 200 {
		t.Errorf("/dash = %d with nil journal", code)
	}
	if code, _ := opsGet(t, srv, "/dash/trace?url=x"); code != 200 {
		t.Errorf("/dash/trace = %d with nil journal", code)
	}
}
