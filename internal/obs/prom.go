package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus encodes every registered family in the Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` headers, then
// one line per series, families sorted by name and series by label
// signature so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		if f.kind == kindGaugeFunc {
			writeSample(bw, f.name, "", nil, nil, f.fn())
			continue
		}
		for _, s := range f.sortedSeries() {
			switch inst := s.inst.(type) {
			case *Counter:
				writeSample(bw, f.name, "", f.labels, s.values, inst.Value())
			case *Gauge:
				writeSample(bw, f.name, "", f.labels, s.values, inst.Value())
			case *Histogram:
				writeHistogram(bw, f, s, inst)
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, f *family, s *series, h *Histogram) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		writeSample(bw, f.name, "_bucket", append(f.labels, "le"), append(s.values, le), float64(cum))
	}
	writeSample(bw, f.name, "_sum", f.labels, s.values, h.Sum())
	writeSample(bw, f.name, "_count", f.labels, s.values, float64(h.Count()))
}

func writeSample(bw *bufio.Writer, name, suffix string, labels, values []string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
