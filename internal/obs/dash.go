package obs

import (
	"encoding/json"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Dash is the zero-dependency live ops dashboard served from the ops mux:
//
//	/dash        HTML shell — stat tiles, per-stage sparklines fed by the
//	             freephish_pipe_* gauges, a takedown-timeline view, and a
//	             recent-event feed, refreshed by a small inline script
//	/dash/data   the JSON snapshot the shell polls (~2 s cadence)
//	/dash/trace  per-URL lifecycle drill-down with verdict explanation
//
// Reg is required; Journal may be nil (the dashboard then shows metrics
// only). Everything is rendered from html/template and vanilla JS — no
// non-stdlib dependency, per the repo's standing constraint.
type Dash struct {
	Reg     *Registry
	Journal *Journal
	Title   string
	Info    map[string]string
}

// Register mounts the dashboard routes on mux.
func (d *Dash) Register(mux *http.ServeMux) {
	mux.HandleFunc("/dash", d.serveIndex)
	mux.HandleFunc("/dash/data", d.serveData)
	mux.HandleFunc("/dash/trace", d.serveTrace)
}

// dashSample is one exported series in the /dash/data payload.
type dashSample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Count  uint64            `json:"count,omitempty"`
}

// dashEvent is one journal event in the /dash/data payload.
type dashEvent struct {
	Seq   uint64            `json:"seq"`
	Class string            `json:"class"`
	Type  string            `json:"type"`
	URL   string            `json:"url,omitempty"`
	Sim   time.Time         `json:"sim"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// dashTimeline is one URL's lifecycle milestones for the timeline view.
type dashTimeline struct {
	URL       string     `json:"url"`
	Posted    *time.Time `json:"posted,omitempty"`
	Fetched   *time.Time `json:"fetched,omitempty"`
	Reported  *time.Time `json:"reported,omitempty"`
	Takedowns []struct {
		Via string    `json:"via"`
		At  time.Time `json:"at"`
	} `json:"takedowns,omitempty"`
}

// dashShard is one shard's dispatch status for the shard panel, folded
// from the shard lifecycle ops events (EvShardDispatch and friends) in
// the journal's ring.
type dashShard struct {
	Shard          string `json:"shard"`
	Status         string `json:"status"` // running | retrying | adopted | done
	Attempts       int    `json:"attempts"`
	Runner         string `json:"runner,omitempty"`
	LastCheckpoint string `json:"last_checkpoint,omitempty"` // sim instant of the newest streamed checkpoint
}

type dashData struct {
	Title     string            `json:"title"`
	Info      map[string]string `json:"info,omitempty"`
	Counts    map[string]uint64 `json:"counts,omitempty"`
	Samples   []dashSample      `json:"samples"`
	Tail      []dashEvent       `json:"tail,omitempty"`
	Shards    []dashShard       `json:"shards,omitempty"`
	Timelines []dashTimeline    `json:"timelines,omitempty"`
	Journal   bool              `json:"journal"`
}

const dashTimelineLimit = 40

func (d *Dash) serveData(w http.ResponseWriter, _ *http.Request) {
	data := dashData{
		Title:   d.title(),
		Info:    d.Info,
		Counts:  d.Journal.Counts(),
		Journal: d.Journal != nil,
	}
	for _, s := range d.Reg.Snapshot() {
		if !strings.HasPrefix(s.Name, "freephish_") {
			continue
		}
		data.Samples = append(data.Samples, dashSample{
			Name: s.Name, Labels: s.Labels, Value: s.Value, Count: s.Count,
		})
	}
	for _, ev := range d.Journal.Tail(100) {
		data.Tail = append(data.Tail, dashEvent{
			Seq: ev.Seq, Class: ev.Class, Type: ev.Type, URL: ev.URL,
			Sim: ev.Sim, Attrs: ev.Attrs,
		})
	}
	data.Shards = d.shardPanel()
	data.Timelines = d.timelines()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(data)
}

// shardPanel folds the shard dispatch ops events still in the ring into
// one row per shard: current status, attempt count, the runner that owns
// (or finished) it, and the sim instant of its newest streamed checkpoint
// — the live view of failover-by-adoption. Empty on unsharded runs, which
// hides the panel.
func (d *Dash) shardPanel() []dashShard {
	byShard := map[string]*dashShard{}
	for _, ev := range d.Journal.Tail(DefaultJournalRing) {
		key := ev.Attrs["shard"]
		if key == "" {
			continue
		}
		var row *dashShard
		track := func() *dashShard {
			if row = byShard[key]; row == nil {
				row = &dashShard{Shard: key}
				byShard[key] = row
			}
			if a, err := strconv.Atoi(ev.Attrs["attempt"]); err == nil && a+1 > row.Attempts {
				row.Attempts = a + 1
			}
			return row
		}
		// Events arrive in recording order, so the last status stands.
		switch ev.Type {
		case EvShardDispatch:
			track().Status = "running"
			row.Runner = ev.Attrs["runner"]
		case EvShardAdopt:
			track().Status = "adopted"
			row.Runner = ev.Attrs["runner"]
		case EvShardRetry:
			track().Status = "retrying"
		case EvShardCheckpoint:
			track().LastCheckpoint = ev.Attrs["at"]
		case EvShardDone:
			track().Status = "done"
			row.Runner = ev.Attrs["runner"]
		}
	}
	out := make([]dashShard, 0, len(byShard))
	for _, row := range byShard {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := strconv.Atoi(out[i].Shard)
		b, _ := strconv.Atoi(out[j].Shard)
		if a != b {
			return a < b
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// timelines extracts the most recent URLs that progressed far enough to
// draw: reported or taken down. Milestones are first occurrences.
func (d *Dash) timelines() []dashTimeline {
	urls := d.Journal.URLs()
	var out []dashTimeline
	for i := len(urls) - 1; i >= 0 && len(out) < dashTimelineLimit; i-- {
		events := d.Journal.Trace(urls[i])
		tl := dashTimeline{URL: urls[i]}
		interesting := false
		for _, ev := range events {
			sim := ev.Sim
			switch ev.Type {
			case EvPosted:
				if tl.Posted == nil {
					tl.Posted = &sim
				}
			case EvFetched:
				if tl.Fetched == nil {
					tl.Fetched = &sim
				}
			case EvReported:
				if tl.Reported == nil {
					tl.Reported = &sim
				}
				interesting = true
			case EvTakedown:
				tl.Takedowns = append(tl.Takedowns, struct {
					Via string    `json:"via"`
					At  time.Time `json:"at"`
				}{Via: ev.Attrs["via"], At: sim})
				interesting = true
			}
		}
		if interesting {
			out = append(out, tl)
		}
	}
	// Reverse to oldest-first for a stable top-to-bottom reading order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func (d *Dash) title() string {
	if d.Title != "" {
		return d.Title
	}
	return "freephish"
}

func (d *Dash) serveIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	dashIndexTmpl.Execute(w, map[string]any{"Title": d.title()})
}

// traceView is the data handed to the trace template.
type traceView struct {
	Title   string
	URL     string
	Events  []Event
	Verdict string
	Score   string
	Contrib []traceContrib
	Missing bool
}

type traceContrib struct {
	Name   string
	Weight string
}

func (d *Dash) serveTrace(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	view := traceView{Title: d.title(), URL: url}
	view.Events = d.Journal.Trace(url)
	view.Missing = len(view.Events) == 0
	for _, ev := range view.Events {
		// A URL is scored exactly once: by the full model on its fetched
		// page, or lexically from the URL string when the cascade
		// short-circuited it (no feature contributions in that case).
		if ev.Type != EvClassified && ev.Type != EvClassifiedLexical {
			continue
		}
		view.Score = ev.Attrs["score"]
		view.Verdict = ev.Attrs["verdict"]
		// top is "name:+weight,name:-weight,..." — split for display.
		for _, part := range strings.Split(ev.Attrs["top"], ",") {
			if name, weight, ok := strings.Cut(part, ":"); ok {
				view.Contrib = append(view.Contrib, traceContrib{Name: name, Weight: weight})
			}
		}
		break
	}
	sort.SliceStable(view.Events, func(i, j int) bool {
		if !view.Events[i].Sim.Equal(view.Events[j].Sim) {
			return view.Events[i].Sim.Before(view.Events[j].Sim)
		}
		return view.Events[i].Seq < view.Events[j].Seq
	})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	dashTraceTmpl.Execute(w, view)
}

var dashIndexTmpl = template.Must(template.New("dash").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><title>{{.Title}} · ops</title>
<style>
body{font:13px/1.45 system-ui,sans-serif;margin:0;background:#0b1020;color:#dce3f0}
header{padding:10px 16px;background:#141b33;display:flex;gap:16px;align-items:baseline}
header h1{font-size:15px;margin:0}
header .info{color:#8a93ad;font-size:11px}
main{padding:12px 16px;display:grid;gap:14px}
section h2{font-size:12px;text-transform:uppercase;letter-spacing:.08em;color:#8a93ad;margin:0 0 6px}
.tiles{display:flex;flex-wrap:wrap;gap:8px}
.tile{background:#141b33;border-radius:6px;padding:8px 12px;min-width:96px}
.tile .v{font-size:19px;font-weight:600}
.tile .k{font-size:10px;color:#8a93ad;text-transform:uppercase;letter-spacing:.06em}
.stages{display:flex;flex-wrap:wrap;gap:8px}
.stage{background:#141b33;border-radius:6px;padding:8px 12px}
.stage .k{font-size:11px;color:#8a93ad}
.stage svg{display:block;margin-top:4px}
table{border-collapse:collapse;width:100%;background:#141b33;border-radius:6px;overflow:hidden}
th,td{text-align:left;padding:4px 10px;font-size:12px;border-bottom:1px solid #1d2747}
th{color:#8a93ad;font-weight:500}
.bar{position:relative;height:10px;background:#1d2747;border-radius:5px}
.bar span{position:absolute;top:0;bottom:0;border-radius:5px}
.posted{background:#3d6fd8}.fetched{background:#46a46c}.reported{background:#d8a23d}.takedown{background:#d85050}
a{color:#7aa2ff;text-decoration:none}
form input{background:#141b33;border:1px solid #2a365c;color:#dce3f0;border-radius:4px;padding:4px 8px;width:360px}
form button{background:#2a365c;border:0;color:#dce3f0;border-radius:4px;padding:4px 10px;cursor:pointer}
.muted{color:#8a93ad}
</style></head><body>
<header><h1>{{.Title}} · live ops</h1><span class="info" id="info"></span></header>
<main>
<section><h2>Study progress</h2><div class="tiles" id="tiles"><span class="muted">waiting for data…</span></div></section>
<section><h2>Pipeline stages</h2><div class="stages" id="stages"><span class="muted">no pipe activity yet</span></div></section>
<section id="cascadeSec" style="display:none"><h2>Cascade tiers</h2><div class="tiles" id="cascade"></div></section>
<section id="shardSec" style="display:none"><h2>Shards</h2><div id="shards"></div></section>
<section><h2>Takedown timeline</h2><div id="timeline"><span class="muted">no takedowns yet</span></div></section>
<section><h2>Trace a URL</h2>
<form action="/dash/trace" method="get"><input name="url" placeholder="http://…"> <button>trace</button></form></section>
<section><h2>Recent events</h2><div id="events"><span class="muted">journal disabled or empty</span></div></section>
</main>
<script>
const hist = {};          // series key -> recent values for sparklines
const HIST_N = 60;
function esc(s){return String(s).replace(/[&<>"]/g,c=>({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));}
function spark(vals,w,h){
  if(!vals.length) return "";
  const max=Math.max(...vals,1e-9), step=w/Math.max(vals.length-1,1);
  const pts=vals.map((v,i)=>(i*step).toFixed(1)+","+(h-(v/max)*(h-2)).toFixed(1)).join(" ");
  return '<svg width="'+w+'" height="'+h+'"><polyline fill="none" stroke="#7aa2ff" stroke-width="1.5" points="'+pts+'"/></svg>';
}
function tile(k,v){return '<div class="tile"><div class="v">'+esc(v)+'</div><div class="k">'+esc(k)+'</div></div>';}
function render(d){
  document.getElementById("info").textContent = d.info ? Object.entries(d.info).map(([k,v])=>k+"="+v).join("  ") : "";
  // ---- stat tiles: journal counts first, core study counters as fallback
  let tiles="";
  const order=["posted","polled","fetched","classified","classified_lexical","reported","takedown","recheck","listed","host_down","retry","fault"];
  if(d.counts){for(const k of order){if(d.counts[k]!==undefined) tiles+=tile(k,d.counts[k]);}}
  for(const s of d.samples){
    if(s.name==="freephish_urls_observed_total"||s.name==="freephish_urls_flagged_total")
      tiles+=tile(s.name.replace("freephish_","").replace("_total",""),s.value);
  }
  if(tiles) document.getElementById("tiles").innerHTML=tiles;
  // ---- per-stage occupancy + latency sparklines from freephish_pipe_*
  const stages={};
  for(const s of d.samples){
    if(!s.name.startsWith("freephish_pipe_")) continue;
    const key=(s.labels&&s.labels.pipe?s.labels.pipe+"/":"")+(s.labels&&s.labels.stage?s.labels.stage:"");
    if(!key) continue;
    stages[key]=stages[key]||{};
    if(s.name==="freephish_pipe_occupancy") stages[key].occ=s.value;
    if(s.name==="freephish_pipe_queue_depth") stages[key].depth=s.value;
    if(s.name==="freephish_pipe_stage_seconds"&&s.count>0) stages[key].lat=s.value/s.count;
    if(s.name==="freephish_pipe_items_total") stages[key].items=s.value;
  }
  let sh="";
  for(const key of Object.keys(stages).sort()){
    const st=stages[key], hk="occ:"+key;
    hist[hk]=(hist[hk]||[]).concat([st.occ||0]).slice(-HIST_N);
    sh+='<div class="stage"><div class="k">'+esc(key)+' · occ '+(st.occ||0)
      +(st.lat!==undefined?' · avg '+(st.lat*1000).toFixed(2)+'ms':'')
      +(st.items!==undefined?' · '+st.items+' items':'')+'</div>'+spark(hist[hk],140,28)+'</div>';
  }
  if(sh) document.getElementById("stages").innerHTML=sh;
  // ---- cascade tier panel from freephish_cascade_* (hidden when cascade is off)
  let ct="",ratio=null;
  for(const s of d.samples){
    if(s.name==="freephish_cascade_triaged_total"&&s.labels&&s.labels.tier) ct+=tile("tier "+s.labels.tier,s.value);
    if(s.name==="freephish_cascade_fetches_avoided_total"&&s.value>0) ct+=tile("fetches avoided",s.value);
    if(s.name==="freephish_cascade_short_circuit_ratio") ratio=s.value;
  }
  if(ct){
    if(ratio!==null) ct+=tile("short-circuit",(ratio*100).toFixed(1)+"%");
    document.getElementById("cascadeSec").style.display="";
    document.getElementById("cascade").innerHTML=ct;
  }
  // ---- shard dispatch panel (hidden on unsharded runs)
  if(d.shards&&d.shards.length){
    let rows="";
    for(const s of d.shards){
      rows+='<tr><td>'+esc(s.shard)+'</td><td>'+esc(s.status)+'</td><td>'+s.attempts
        +'</td><td>'+esc(s.runner||"")+'</td><td class="muted">'+esc(s.last_checkpoint||"—")+'</td></tr>';
    }
    document.getElementById("shardSec").style.display="";
    document.getElementById("shards").innerHTML=
      '<table><tr><th>shard</th><th>status</th><th>attempts</th><th>runner</th><th>last checkpoint (sim)</th></tr>'+rows+'</table>';
  }
  // ---- takedown timeline
  if(d.timelines&&d.timelines.length){
    const all=[];
    for(const t of d.timelines){
      if(t.posted) all.push(+new Date(t.posted));
      for(const td of (t.takedowns||[])) all.push(+new Date(td.at));
      if(t.reported) all.push(+new Date(t.reported));
    }
    const lo=Math.min(...all), hi=Math.max(...all), span=Math.max(hi-lo,1);
    const pos=t=>((+new Date(t)-lo)/span*100).toFixed(1);
    let rows="";
    for(const t of d.timelines){
      let bar="";
      if(t.posted&&t.fetched) bar+='<span class="posted" style="left:'+pos(t.posted)+'%;width:2px"></span>';
      if(t.fetched) bar+='<span class="fetched" style="left:'+pos(t.fetched)+'%;width:2px"></span>';
      if(t.reported) bar+='<span class="reported" style="left:'+pos(t.reported)+'%;width:2px"></span>';
      for(const td of (t.takedowns||[])) bar+='<span class="takedown" style="left:'+pos(td.at)+'%;width:3px" title="'+esc(td.via)+'"></span>';
      rows+='<tr><td><a href="/dash/trace?url='+encodeURIComponent(t.url)+'">'+esc(t.url)+'</a></td><td style="width:45%"><div class="bar">'+bar+'</div></td></tr>';
    }
    document.getElementById("timeline").innerHTML=
      '<table><tr><th>url</th><th>posted → <span class="muted">fetched · reported · takedown</span></th></tr>'+rows+'</table>';
  }
  // ---- recent events
  if(d.tail&&d.tail.length){
    let rows="";
    for(const ev of d.tail.slice().reverse()){
      rows+='<tr><td>'+esc(ev.type)+'</td><td>'+(ev.url?'<a href="/dash/trace?url='+encodeURIComponent(ev.url)+'">'+esc(ev.url)+'</a>':'')+'</td><td class="muted">'+esc(ev.sim)+'</td><td class="muted">'+esc(ev.attrs?Object.entries(ev.attrs).map(([k,v])=>k+"="+v).join(" "):"")+'</td></tr>';
    }
    document.getElementById("events").innerHTML='<table><tr><th>type</th><th>url</th><th>sim</th><th>attrs</th></tr>'+rows+'</table>';
  }
}
async function tick(){
  try{const r=await fetch("/dash/data");render(await r.json());}catch(e){}
  setTimeout(tick,2000);
}
tick();
</script>
</body></html>`))

var dashTraceTmpl = template.Must(template.New("trace").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><title>{{.Title}} · trace</title>
<style>
body{font:13px/1.5 system-ui,sans-serif;margin:0;background:#0b1020;color:#dce3f0}
header{padding:10px 16px;background:#141b33}
header h1{font-size:14px;margin:0;word-break:break-all}
main{padding:12px 16px;display:grid;gap:14px}
h2{font-size:12px;text-transform:uppercase;letter-spacing:.08em;color:#8a93ad;margin:0 0 6px}
table{border-collapse:collapse;background:#141b33;border-radius:6px;overflow:hidden}
th,td{text-align:left;padding:4px 10px;font-size:12px;border-bottom:1px solid #1d2747}
th{color:#8a93ad;font-weight:500}
.verdict{font-size:16px;font-weight:600}
.phishing{color:#ff7a7a}.benign{color:#6fd89a}
a{color:#7aa2ff;text-decoration:none}
.muted{color:#8a93ad}
</style></head><body>
<header><h1>trace · {{.URL}}</h1><a href="/dash">← dashboard</a></header>
<main>
{{if .Missing}}<p class="muted">No lifecycle events recorded for this URL. The journal traces
URLs the study actually observed; check /dash for recent activity.</p>{{else}}
{{if .Verdict}}<section><h2>Verdict</h2>
<div class="verdict {{.Verdict}}">{{.Verdict}} · score {{.Score}}</div>
{{if .Contrib}}<table><tr><th>feature</th><th>contribution</th></tr>
{{range .Contrib}}<tr><td>{{.Name}}</td><td>{{.Weight}}</td></tr>{{end}}</table>{{end}}
</section>{{end}}
<section><h2>Lifecycle</h2>
<table><tr><th>seq</th><th>sim time</th><th>event</th><th>attrs</th></tr>
{{range .Events}}<tr><td>{{.Seq}}</td><td>{{.Sim.Format "2006-01-02 15:04:05"}}</td><td>{{.Type}}</td><td class="muted">{{range $k, $v := .Attrs}}{{$k}}={{$v}} {{end}}</td></tr>{{end}}
</table></section>
{{end}}
</main></body></html>`))
