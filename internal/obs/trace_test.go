package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClocks builds deterministic wall and sim clocks: every wall read
// advances 10ms, every sim read advances 1h.
func fakeClocks() (wall, sim func() time.Time) {
	var mu sync.Mutex
	w := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	s := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	wall = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		w = w.Add(10 * time.Millisecond)
		return w
	}
	sim = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		s = s.Add(time.Hour)
		return s
	}
	return wall, sim
}

func TestTracerAggregation(t *testing.T) {
	reg := NewRegistry()
	wall, sim := fakeClocks()
	tr := NewTracer(reg, "test", sim)
	tr.wall = wall

	for i := 0; i < 5; i++ {
		sp := tr.Start("fetch")
		sp.End()
	}
	sp := tr.Start("classify")
	sp.EndErr(errors.New("boom"))

	stats := tr.Snapshot()
	if len(stats) != 2 {
		t.Fatalf("got %d stages, want 2", len(stats))
	}
	if stats[0].Stage != "classify" || stats[1].Stage != "fetch" {
		t.Fatalf("stage order: %v, %v", stats[0].Stage, stats[1].Stage)
	}
	fetch := stats[1]
	if fetch.Count != 5 || fetch.Errors != 0 {
		t.Errorf("fetch count/errors = %d/%d", fetch.Count, fetch.Errors)
	}
	// Each span is one 10ms wall tick.
	if fetch.Wall != 50*time.Millisecond || fetch.AvgWall != 10*time.Millisecond {
		t.Errorf("fetch wall = %v avg %v", fetch.Wall, fetch.AvgWall)
	}
	// Sim reads: spans started at sim hours 1..5, so the window spans 4h.
	if fetch.SimSpan != 4*time.Hour {
		t.Errorf("fetch sim span = %v, want 4h", fetch.SimSpan)
	}
	if fetch.PerSimHour != 5.0/4.0 {
		t.Errorf("fetch per-sim-hour = %v", fetch.PerSimHour)
	}
	if stats[0].Errors != 1 {
		t.Errorf("classify errors = %d, want 1", stats[0].Errors)
	}

	// Registry-side: the histogram and error counter exist and agree.
	var b strings.Builder
	_ = reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `test_stage_seconds_count{stage="fetch"} 5`) {
		t.Errorf("missing stage histogram:\n%s", out)
	}
	if !strings.Contains(out, `test_stage_errors_total{stage="classify"} 1`) {
		t.Errorf("missing stage error counter:\n%s", out)
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines (-race).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(NewRegistry(), "conc", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stage := []string{"a", "b", "c"}[w%3]
			for i := 0; i < 2000; i++ {
				tr.Start(stage).End()
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, st := range tr.Snapshot() {
		total += st.Count
	}
	if total != 8*2000 {
		t.Errorf("total spans = %d, want %d", total, 8*2000)
	}
}

func TestTracerWithoutRegistryOrSim(t *testing.T) {
	tr := NewTracer(nil, "bare", nil)
	tr.Start("x").End()
	st := tr.Snapshot()
	if len(st) != 1 || st[0].Count != 1 {
		t.Fatalf("snapshot = %+v", st)
	}
	if !st[0].SimFirst.IsZero() || st[0].PerSimHour != 0 {
		t.Error("sim fields should be zero without a sim clock")
	}
}
