package obs

import (
	"sort"
	"sync"
	"time"
)

// Tracer aggregates per-stage spans in two time domains at once: the
// wall clock (what the hardware spent) and the simulation clock (where
// in the 182-day virtual window the work happened). Pipeline code wraps
// each stage in Start/End; a scrape or Snapshot then answers both "which
// stage is slow" and "what is the per-sim-day throughput".
//
// Spans are cheap: two time.Now calls and one short mutex hold per span,
// plus one histogram observation when a registry is attached.
type Tracer struct {
	simNow func() time.Time
	wall   func() time.Time // injectable for tests

	hist *HistogramVec // <name>_stage_seconds{stage}
	errs *CounterVec   // <name>_stage_errors_total{stage}

	mu     sync.Mutex
	stages map[string]*stageAgg
}

type stageAgg struct {
	count    uint64
	errors   uint64
	wall     time.Duration
	maxWall  time.Duration
	simFirst time.Time
	simLast  time.Time
}

// NewTracer returns a tracer whose span histograms are registered on reg
// under <name>_stage_seconds / <name>_stage_errors_total. reg may be nil
// (aggregation only); simNow may be nil when there is no simulation
// clock (spans then carry only wall time).
func NewTracer(reg *Registry, name string, simNow func() time.Time) *Tracer {
	t := &Tracer{simNow: simNow, wall: time.Now, stages: make(map[string]*stageAgg)}
	if reg != nil {
		t.hist = reg.HistogramVec(name+"_stage_seconds",
			"Wall-clock time spent in each pipeline stage.", DefBuckets, "stage")
		t.errs = reg.CounterVec(name+"_stage_errors_total",
			"Spans that ended in error, by pipeline stage.", "stage")
	}
	return t
}

// Span is one in-flight stage measurement. End (or EndErr) must be
// called exactly once.
type Span struct {
	t     *Tracer
	stage string
	start time.Time
	sim   time.Time
}

// Start opens a span for the named stage.
func (t *Tracer) Start(stage string) Span {
	sp := Span{t: t, stage: stage, start: t.wall()}
	if t.simNow != nil {
		sp.sim = t.simNow()
	}
	return sp
}

// End closes the span successfully.
func (s Span) End() { s.t.observe(s.stage, s.t.wall().Sub(s.start), s.sim, false) }

// EndErr closes the span, recording an error when err is non-nil.
func (s Span) EndErr(err error) { s.t.observe(s.stage, s.t.wall().Sub(s.start), s.sim, err != nil) }

func (t *Tracer) observe(stage string, d time.Duration, sim time.Time, failed bool) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	agg := t.stages[stage]
	if agg == nil {
		agg = &stageAgg{}
		t.stages[stage] = agg
	}
	agg.count++
	agg.wall += d
	if d > agg.maxWall {
		agg.maxWall = d
	}
	if failed {
		agg.errors++
	}
	if !sim.IsZero() {
		if agg.simFirst.IsZero() || sim.Before(agg.simFirst) {
			agg.simFirst = sim
		}
		if sim.After(agg.simLast) {
			agg.simLast = sim
		}
	}
	t.mu.Unlock()
	if t.hist != nil {
		t.hist.With(stage).Observe(d.Seconds())
	}
	if failed && t.errs != nil {
		t.errs.With(stage).Inc()
	}
}

// StageStats summarizes one stage across the run so far.
type StageStats struct {
	Stage  string
	Count  uint64
	Errors uint64
	// Wall-clock totals.
	Wall    time.Duration
	AvgWall time.Duration
	MaxWall time.Duration
	// Simulation-clock placement: the virtual-time window the stage's
	// spans covered, and the resulting per-virtual-hour rate.
	SimFirst   time.Time
	SimLast    time.Time
	SimSpan    time.Duration
	PerSimHour float64
}

// Snapshot returns the per-stage aggregates, sorted by stage name.
func (t *Tracer) Snapshot() []StageStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageStats, 0, len(t.stages))
	for name, agg := range t.stages {
		st := StageStats{
			Stage: name, Count: agg.count, Errors: agg.errors,
			Wall: agg.wall, MaxWall: agg.maxWall,
			SimFirst: agg.simFirst, SimLast: agg.simLast,
		}
		if agg.count > 0 {
			st.AvgWall = agg.wall / time.Duration(agg.count)
		}
		if !agg.simFirst.IsZero() {
			st.SimSpan = agg.simLast.Sub(agg.simFirst)
			if hours := st.SimSpan.Hours(); hours > 0 {
				st.PerSimHour = float64(agg.count) / hours
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}
