// Package obs is the FreePhish observability layer: a dependency-free,
// concurrency-safe metrics registry (counters, gauges, histograms, and
// their labeled variants), a Prometheus text-exposition encoder, a stage
// tracer keyed to the simulation clock, and the operational HTTP surface
// (/metrics, /healthz, /debug/vars, /debug/pprof) the daemons mount.
//
// Every instrument is lock-free on the hot path (atomic CAS on float64
// bits), so a full-scale study — tens of millions of monitor probes —
// can be instrumented with negligible overhead. Instruments registered
// on a Registry are always exported, even at zero, so scrapers see the
// complete family set from the first poll cycle.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nxt) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative deltas panic (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(v)
}

// Value reports the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add adjusts the value by v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// DefBuckets are the default latency buckets (seconds), spanning sub-ms
// in-process stages through multi-second network fetches.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ScoreBuckets suit values in [0, 1] such as classifier probabilities.
var ScoreBuckets = []float64{.1, .2, .3, .4, .5, .6, .7, .8, .9, 1}

// ExpBuckets returns n buckets starting at start, each factor× the last.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: invalid exponential bucket spec")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram observes a distribution into fixed buckets. The +Inf bucket
// is implicit.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last = +Inf overflow
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	for i := 1; i < len(upper); i++ {
		if upper[i] == upper[i-1] {
			panic(fmt.Sprintf("obs: duplicate histogram bucket %v", upper[i]))
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count reports how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the owning bucket — the standard Prometheus estimation.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			if i < len(h.upper) {
				lower = h.upper[i]
			}
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.upper) { // +Inf bucket: no upper bound to interpolate to
				return lower
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + frac*(h.upper[i]-lower)
		}
		cum += n
		lower = h.upper[i]
	}
	return lower
}

// metricKind discriminates the instrument families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its type, help, label schema, and series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	fn func() float64 // kindGaugeFunc only

	mu     sync.RWMutex
	series map[string]*series // keyed by joined label values
}

// series is one labeled instrument within a family.
type series struct {
	values []string
	inst   any // *Counter, *Gauge, or *Histogram
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := joinKey(values)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.inst = &Counter{}
	case kindGauge:
		s.inst = &Gauge{}
	case kindHistogram:
		s.inst = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

// joinKey builds the series map key. 0x1f (unit separator) cannot appear
// in reasonable label values; values containing it still round-trip
// because the series stores its own copy of the value slice.
func joinKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, v...)
	}
	return string(b)
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry. All methods are safe for concurrent use, and
// registration is idempotent: re-registering a name with the same type
// returns the existing instrument, so package-level wiring can be lazy.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// familyFor is the registration core shared by every constructor.
func (r *Registry) familyFor(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.familyFor(name, help, kindCounter, nil, nil).get(nil).inst.(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.familyFor(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.familyFor(name, help, kindGauge, nil, nil).get(nil).inst.(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{f: r.familyFor(name, help, kindGauge, labels, nil)}
}

// GaugeFunc registers a gauge whose value is computed at export time. fn
// must be safe for concurrent use: scrapes run on the HTTP serving
// goroutine while the pipeline is mid-cycle.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.familyFor(name, help, kindGaugeFunc, nil, nil)
	f.fn = fn
}

// Histogram registers (or fetches) an unlabeled histogram. nil buckets
// selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.familyFor(name, help, kindHistogram, nil, buckets).get(nil).inst.(*Histogram)
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	return &HistogramVec{f: r.familyFor(name, help, kindHistogram, labels, buckets)}
}

// CounterVec is a counter family addressed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). The result may be cached by callers on hot paths.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).inst.(*Counter) }

// GaugeVec is a gauge family addressed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).inst.(*Gauge) }

// HistogramVec is a histogram family addressed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).inst.(*Histogram) }

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	Upper      float64 // upper bound; math.Inf(1) for the overflow bucket
	Cumulative uint64  // observations <= Upper
}

// Sample is one exported series in a Snapshot.
type Sample struct {
	Name   string
	Type   string // "counter", "gauge", or "histogram"
	Labels map[string]string
	// Value is the counter/gauge value; for histograms it is the sum.
	Value float64
	// Count and Buckets are set for histograms only.
	Count   uint64
	Buckets []Bucket
}

// Snapshot returns every registered series, sorted by name then label
// signature — the stable flat view dashboards consume.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, f := range r.sortedFamilies() {
		if f.kind == kindGaugeFunc {
			out = append(out, Sample{Name: f.name, Type: "gauge", Value: f.fn()})
			continue
		}
		for _, s := range f.sortedSeries() {
			smp := Sample{Name: f.name, Type: f.kind.String()}
			if len(f.labels) > 0 {
				smp.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					smp.Labels[l] = s.values[i]
				}
			}
			switch inst := s.inst.(type) {
			case *Counter:
				smp.Value = inst.Value()
			case *Gauge:
				smp.Value = inst.Value()
			case *Histogram:
				smp.Value = inst.Sum()
				smp.Count = inst.Count()
				var cum uint64
				for i := range inst.counts {
					cum += inst.counts[i].Load()
					upper := math.Inf(1)
					if i < len(inst.upper) {
						upper = inst.upper[i]
					}
					smp.Buckets = append(smp.Buckets, Bucket{Upper: upper, Cumulative: cum})
				}
			}
			out = append(out, smp)
		}
	}
	return out
}

// Value is a convenience lookup: the current value of an unlabeled
// counter or gauge, or NaN when the name is unknown.
func (r *Registry) Value(name string) float64 {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return math.NaN()
	}
	if f.kind == kindGaugeFunc {
		return f.fn()
	}
	f.mu.RLock()
	s := f.series[""]
	f.mu.RUnlock()
	if s == nil {
		return math.NaN()
	}
	switch inst := s.inst.(type) {
	case *Counter:
		return inst.Value()
	case *Gauge:
		return inst.Value()
	case *Histogram:
		return inst.Sum()
	}
	return math.NaN()
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	f.mu.RLock()
	out := make([]*series, 0, len(f.series))
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	f.mu.RUnlock()
	return out
}
