package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func testClock(start time.Time) func() time.Time {
	t := start
	return func() time.Time { return t }
}

// TestJournalLifecycle covers the canonical record path: sequence
// numbering, per-URL traces, counts, and first-seen URL ordering.
func TestJournalLifecycle(t *testing.T) {
	sim := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	j := NewJournal(testClock(sim), 0)

	j.Record("http://a.weebly.com/", EvPosted, sim, "platform", "twitter")
	j.Record("http://b.weebly.com/", EvPosted, sim.Add(time.Hour))
	j.Record("http://a.weebly.com/", EvFetched, sim.Add(2*time.Hour), "status", "200")

	if j.Len() != 3 {
		t.Fatalf("Len = %d, want 3", j.Len())
	}
	events := j.Events()
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Class != ClassLifecycle {
			t.Errorf("event %d class = %q", i, ev.Class)
		}
	}
	trace := j.Trace("http://a.weebly.com/")
	if len(trace) != 2 || trace[0].Type != EvPosted || trace[1].Type != EvFetched {
		t.Fatalf("Trace = %+v", trace)
	}
	if trace[0].Attrs["platform"] != "twitter" {
		t.Errorf("attrs not retained: %v", trace[0].Attrs)
	}
	urls := j.URLs()
	want := []string{"http://a.weebly.com/", "http://b.weebly.com/"}
	if len(urls) != 2 || urls[0] != want[0] || urls[1] != want[1] {
		t.Errorf("URLs = %v, want %v (first-seen order)", urls, want)
	}
	counts := j.Counts()
	if counts[EvPosted] != 2 || counts[EvFetched] != 1 {
		t.Errorf("Counts = %v", counts)
	}
}

// TestJournalOpsClassSeparation verifies ops events never reach the
// canonical lifecycle sequence — only the ring — and carry their own
// sequence space.
func TestJournalOpsClassSeparation(t *testing.T) {
	sim := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	j := NewJournal(testClock(sim), 0)

	j.RecordOps("", EvStage, "pipe", "poll", "stage", "fetch")
	j.Record("http://a.weebly.com/", EvPolled, sim)
	j.RecordOps("", EvRetry, "key", "intel.resolve")

	if j.Len() != 1 {
		t.Fatalf("ops events leaked into the lifecycle: Len = %d", j.Len())
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), EvStage) || strings.Contains(buf.String(), EvRetry) {
		t.Fatalf("ops events leaked into the canonical JSONL:\n%s", buf.String())
	}
	tail := j.Tail(10)
	if len(tail) != 3 {
		t.Fatalf("Tail = %d events, want all 3", len(tail))
	}
	if tail[0].Type != EvStage || tail[1].Type != EvPolled || tail[2].Type != EvRetry {
		t.Errorf("tail order = %s,%s,%s", tail[0].Type, tail[1].Type, tail[2].Type)
	}
	// Each class numbers independently.
	if tail[0].Seq != 0 || tail[2].Seq != 1 {
		t.Errorf("ops seqs = %d,%d, want 0,1", tail[0].Seq, tail[2].Seq)
	}
	if tail[1].Seq != 0 {
		t.Errorf("lifecycle seq = %d, want 0", tail[1].Seq)
	}
}

// TestJournalRingEviction fills a small ring past capacity and checks the
// tail holds only the newest events.
func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(testClock(time.Unix(0, 0)), 4)
	for i := 0; i < 10; i++ {
		j.RecordOps("", EvStage, "n", string(rune('0'+i)))
	}
	tail := j.Tail(100)
	if len(tail) != 4 {
		t.Fatalf("Tail = %d events, want ring cap 4", len(tail))
	}
	if tail[0].Attrs["n"] != "6" || tail[3].Attrs["n"] != "9" {
		t.Errorf("ring kept %v..%v, want 6..9", tail[0].Attrs["n"], tail[3].Attrs["n"])
	}
}

// TestJournalJSONLRoundTrip writes the canonical journal and reads it
// back; the bytes must be stable across repeated writes (the property the
// verify-journal sweep depends on) and survive a round trip.
func TestJournalJSONLRoundTrip(t *testing.T) {
	sim := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	j := NewJournal(testClock(sim), 0)
	j.Record("http://a.weebly.com/", EvPosted, sim, "platform", "twitter", "post", "tw-1")
	j.Record("http://a.weebly.com/", EvClassified, sim.Add(time.Minute),
		"score", "0.91", "verdict", "phishing", "top", "form_count:+0.0312")

	var one, two bytes.Buffer
	if err := j.WriteJSONL(&one); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteJSONL(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("WriteJSONL is not deterministic for the same journal")
	}
	// Wall time must never appear — it would break byte-identity.
	if strings.Contains(one.String(), "wall") {
		t.Fatalf("canonical JSONL contains wall time:\n%s", one.String())
	}

	events, err := ReadJournal(&one)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("round trip lost events: %d", len(events))
	}
	orig := j.Events()
	for i, ev := range events {
		if ev.Seq != orig[i].Seq || ev.Type != orig[i].Type || ev.URL != orig[i].URL || !ev.Sim.Equal(orig[i].Sim) {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, ev, orig[i])
		}
		for k, v := range orig[i].Attrs {
			if ev.Attrs[k] != v {
				t.Errorf("event %d attr %s = %q, want %q", i, k, ev.Attrs[k], v)
			}
		}
	}
}

// TestJournalSink verifies streamed lines equal the batch WriteJSONL
// output, and that sink errors are retained.
func TestJournalSink(t *testing.T) {
	sim := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	j := NewJournal(testClock(sim), 0)
	var streamed bytes.Buffer
	j.SetSink(&streamed)
	j.Record("http://a.weebly.com/", EvPosted, sim)
	j.RecordOps("", EvStage, "pipe", "poll") // ops events never stream
	j.Record("http://a.weebly.com/", EvTakedown, sim.Add(time.Hour), "via", "host")

	var batch bytes.Buffer
	if err := j.WriteJSONL(&batch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
		t.Errorf("sink stream diverges from WriteJSONL:\n--- sink ---\n%s--- batch ---\n%s",
			streamed.String(), batch.String())
	}
	if j.SinkErr() != nil {
		t.Errorf("SinkErr = %v", j.SinkErr())
	}
}

// TestJournalNilSafe: every method must be a no-op on a nil journal — the
// disabled-tracing fast path.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record("u", EvPosted, time.Time{})
	j.RecordOps("u", EvStage)
	j.SetSink(&bytes.Buffer{})
	if j.Len() != 0 || j.Events() != nil || j.Trace("u") != nil || j.URLs() != nil ||
		j.Tail(5) != nil || j.Counts() != nil || j.SinkErr() != nil {
		t.Error("nil journal methods must return zero values")
	}
	if err := j.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL = %v", err)
	}
}

// TestJournalConcurrentOps hammers RecordOps from many goroutines (run
// with -race); the ring and counters must stay consistent.
func TestJournalConcurrentOps(t *testing.T) {
	j := NewJournal(nil, 64)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.RecordOps("", EvStage, "pipe", "poll")
			}
		}()
	}
	wg.Wait()
	if got := j.Counts()[EvStage]; got != workers*per {
		t.Errorf("counts = %d, want %d", got, workers*per)
	}
	if got := len(j.Tail(1000)); got != 64 {
		t.Errorf("tail = %d, want ring cap 64", got)
	}
}
