package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// The journal is the per-URL lifecycle tracing layer: where the metrics
// registry answers "how many, how fast", the journal answers "what
// happened to THIS URL, and when". It records two classes of events:
//
//   - Lifecycle events are the canonical record: posted → observed-in-CT →
//     polled → fetched → classified → reported → takedown/re-check. They
//     are recorded ONLY from deterministic, single-threaded points of the
//     pipeline (the ordered apply phase and the monitor's ordered drain),
//     so the sequence — and the JSONL file WriteJSONL emits — is
//     byte-identical across workers × queue-depth × backend × chaos
//     profile, exactly like the study output itself.
//   - Ops events (pipe stage emissions, retries, breaker transitions,
//     injected faults, world port calls) come from concurrent hooks whose
//     interleaving is scheduler-dependent. They land only in the bounded
//     in-memory ring that feeds the live dashboard, never in the canonical
//     file, so chaos stays explainable without breaking byte-identity.
//
// Every method is a no-op on a nil *Journal, so call sites can hold a nil
// journal when tracing is off and pay only a pointer test (guard hot
// paths with `if j != nil` to also skip argument construction).

// Lifecycle event types, in the order a URL typically experiences them.
const (
	EvPosted     = "posted"      // the URL appeared in a social post
	EvObservedCT = "observed_ct" // its certificate is visible in the CT log
	EvPolled     = "polled"      // the streaming module picked it up
	EvFetched    = "fetched"     // the snapshotter crawled it
	EvClassified = "classified"  // the full model scored its fetched page
	// EvClassifiedLexical marks a cascade short-circuit: the URL-only
	// tier resolved the URL with a confident verdict and it never
	// entered the fetch stage (so a trace has either fetched+classified
	// or classified_lexical, never both).
	EvClassifiedLexical = "classified_lexical"
	EvReported          = "reported"  // the reporting module disclosed it
	EvTakedown          = "takedown"  // the platform or host removed it
	EvRecheck           = "recheck"   // the §4.4 monitor re-probed it
	EvHostDown          = "host_down" // a monitor probe first saw the site gone
	EvListed            = "listed"    // a blocklist feed first listed it
)

// Ops event types (ring-only; see the class discussion above).
const (
	EvStage   = "stage"   // a pipe stage emitted an item in order
	EvRetry   = "retry"   // the retry policy re-issued an attempt
	EvGiveUp  = "giveup"  // the retry policy exhausted its budget
	EvBreaker = "breaker" // a circuit breaker opened or closed
	EvFault   = "fault"   // the chaos injector fired
	EvPort    = "port"    // a world port call completed
	// EvShardRetry marks a coordinator-level failover: a shard attempt
	// failed and the coordinator re-ran the sub-stream with a fresh child.
	EvShardRetry = "shard_retry"
	// EvShardDispatch marks the coordinator handing a shard spec to a
	// runner (local child or remote worker) for one attempt.
	EvShardDispatch = "shard_dispatch"
	// EvShardCheckpoint marks the coordinator receiving a streamed shard
	// checkpoint — the current adoption point for that shard.
	EvShardCheckpoint = "shard_checkpoint"
	// EvShardAdopt marks a failover attempt that resumed from the dead
	// runner's last streamed checkpoint instead of replaying from scratch.
	EvShardAdopt = "shard_adopt"
	// EvShardDone marks a shard returning its final snapshot.
	EvShardDone = "shard_done"
)

// Event classes.
const (
	ClassLifecycle = "lifecycle"
	ClassOps       = "ops"
)

// Event is one journal entry. Seq orders events within their class; Sim
// is the virtual-clock timestamp the event describes (for EvPosted that
// is the share time, which may precede the observation instant); Ord is
// the virtual-clock instant the event was RECORDED (the poll cycle or
// monitor tick it belongs to) — the primary key of the canonical order
// (see SortCanonical); Wall is the wall-clock instant the event was
// recorded. Ord and Wall are both excluded from the canonical JSONL:
// Ord is recoverable only in-process (events read back through
// ReadJournal carry a zero Ord and are already in canonical order),
// and two runs of the same seed never share wall timestamps.
type Event struct {
	Seq   uint64
	Class string
	Type  string
	URL   string
	Sim   time.Time
	Ord   time.Time
	Wall  time.Time
	Attrs map[string]string
}

// eventDTO is the canonical JSONL shape. Attrs marshal with sorted keys
// (encoding/json's map order), so a line's bytes are a pure function of
// the event.
type eventDTO struct {
	Seq   uint64            `json:"seq"`
	Sim   time.Time         `json:"sim"`
	Type  string            `json:"type"`
	URL   string            `json:"url,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// DefaultJournalRing is the ops/tail ring capacity when the knob is zero.
const DefaultJournalRing = 4096

// Journal records lifecycle and ops events. Construct with NewJournal;
// all methods are safe for concurrent use and are no-ops on a nil
// receiver.
type Journal struct {
	simNow  func() time.Time
	wallNow func() time.Time

	mu        sync.Mutex
	seq       uint64 // lifecycle sequence
	opsSeq    uint64
	lifecycle []Event
	byURL     map[string][]int // URL → indices into lifecycle
	ring      []Event          // bounded tail of ALL events, for the dashboard
	ringCap   int
	ringN     uint64 // total events ever pushed to the ring
	counts    map[string]uint64
	sink      io.Writer // optional stream of canonical lines
	sinkErr   error
}

// NewJournal returns an empty journal. simNow supplies the default event
// timestamp for ops events (nil falls back to wall time); ringCap bounds
// the dashboard ring (0 = DefaultJournalRing).
func NewJournal(simNow func() time.Time, ringCap int) *Journal {
	if ringCap <= 0 {
		ringCap = DefaultJournalRing
	}
	j := &Journal{
		simNow:  simNow,
		wallNow: time.Now,
		byURL:   make(map[string][]int),
		ring:    make([]Event, 0, ringCap),
		ringCap: ringCap,
		counts:  make(map[string]uint64),
	}
	if j.simNow == nil {
		j.simNow = j.wallNow
	}
	return j
}

// SetSink streams each canonical lifecycle event to w as it is recorded,
// in addition to retaining it in memory. Callers own buffering and
// closing; the first write error is retained and reported by SinkErr.
// The sink sees events in live recording order; a run that rebuilds its
// journal into canonical order at the end (see RebuildJournal) may emit
// an end-of-run file whose line order differs from the live stream.
func (j *Journal) SetSink(w io.Writer) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.sink = w
	j.mu.Unlock()
}

// SinkErr reports the first error a streaming sink write hit, if any.
func (j *Journal) SinkErr() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinkErr
}

// Record appends one canonical lifecycle event. sim is the virtual time
// the event describes; attrs are alternating key, value pairs. Record
// must be called only from deterministic, single-threaded pipeline points
// — that discipline, not anything the journal enforces, is what keeps the
// canonical sequence byte-identical across runs.
func (j *Journal) Record(url, typ string, sim time.Time, attrs ...string) {
	if j == nil {
		return
	}
	ev := Event{Class: ClassLifecycle, Type: typ, URL: url, Sim: sim, Ord: j.simNow(), Attrs: attrMap(attrs)}
	j.mu.Lock()
	ev.Seq = j.seq
	j.seq++
	ev.Wall = j.wallNow()
	j.counts[typ]++
	j.byURL[url] = append(j.byURL[url], len(j.lifecycle))
	j.lifecycle = append(j.lifecycle, ev)
	j.push(ev)
	if j.sink != nil && j.sinkErr == nil {
		line, err := marshalCanonical(ev)
		if err == nil {
			_, err = j.sink.Write(line)
		}
		j.sinkErr = err
	}
	j.mu.Unlock()
}

// RecordOps appends one ops event to the dashboard ring. Ops events carry
// their own sequence space so concurrent hooks can never perturb the
// canonical lifecycle ordering; sim defaults to the journal's clock.
func (j *Journal) RecordOps(url, typ string, attrs ...string) {
	if j == nil {
		return
	}
	ev := Event{Class: ClassOps, Type: typ, URL: url, Sim: j.simNow(), Attrs: attrMap(attrs)}
	j.mu.Lock()
	ev.Seq = j.opsSeq
	j.opsSeq++
	ev.Wall = j.wallNow()
	j.counts[typ]++
	j.push(ev)
	j.mu.Unlock()
}

// push appends ev to the ring, evicting the oldest entry once full.
// Caller holds j.mu.
func (j *Journal) push(ev Event) {
	if len(j.ring) < j.ringCap {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[j.ringN%uint64(j.ringCap)] = ev
	}
	j.ringN++
}

// attrMap folds alternating key, value pairs into a map; an odd trailing
// key gets an empty value rather than being dropped.
func attrMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		if i+1 < len(kv) {
			m[kv[i]] = kv[i+1]
		} else {
			m[kv[i]] = ""
		}
	}
	return m
}

// Len reports how many lifecycle events have been recorded.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.lifecycle)
}

// Events returns a copy of the canonical lifecycle sequence.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.lifecycle...)
}

// Trace returns the lifecycle events recorded for one URL, in order.
func (j *Journal) Trace(url string) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	idx := j.byURL[url]
	out := make([]Event, len(idx))
	for i, k := range idx {
		out[i] = j.lifecycle[k]
	}
	return out
}

// URLs returns every traced URL in first-seen order.
func (j *Journal) URLs() []string {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	type first struct {
		url string
		at  int
	}
	firsts := make([]first, 0, len(j.byURL))
	for u, idx := range j.byURL {
		if u == "" || len(idx) == 0 {
			continue
		}
		firsts = append(firsts, first{u, idx[0]})
	}
	// byURL iterates in map order; sort by first lifecycle index.
	for i := 1; i < len(firsts); i++ {
		for k := i; k > 0 && firsts[k].at < firsts[k-1].at; k-- {
			firsts[k], firsts[k-1] = firsts[k-1], firsts[k]
		}
	}
	out := make([]string, len(firsts))
	for i, f := range firsts {
		out[i] = f.url
	}
	return out
}

// Tail returns up to n most recent events (both classes), oldest first —
// the dashboard's recent-activity feed.
func (j *Journal) Tail(n int) []Event {
	if j == nil || n <= 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	size := len(j.ring)
	if n > size {
		n = size
	}
	out := make([]Event, 0, n)
	start := j.ringN - uint64(n)
	for i := start; i < j.ringN; i++ {
		out = append(out, j.ring[i%uint64(j.ringCap)])
	}
	return out
}

// Counts returns a copy of the per-type event counters.
func (j *Journal) Counts() map[string]uint64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]uint64, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// WriteJSONL writes the canonical lifecycle journal: one JSON object per
// event, in sequence order, with sim timestamps only. The bytes are a
// pure function of the recorded sequence — the property `make
// verify-journal` sweeps across workers × queue-depth × backends.
func (j *Journal) WriteJSONL(w io.Writer) error {
	if j == nil {
		return nil
	}
	events := j.Events()
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		line, err := marshalCanonical(ev)
		if err != nil {
			return fmt.Errorf("obs: encode journal event %d: %w", ev.Seq, err)
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func marshalCanonical(ev Event) ([]byte, error) {
	b, err := json.Marshal(eventDTO{
		Seq: ev.Seq, Sim: ev.Sim, Type: ev.Type, URL: ev.URL, Attrs: ev.Attrs,
	})
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ReadJournal parses a canonical JSONL journal written by WriteJSONL (or
// streamed through SetSink) back into events.
func ReadJournal(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var dto eventDTO
		if err := json.Unmarshal(sc.Bytes(), &dto); err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, Event{
			Seq: dto.Seq, Class: ClassLifecycle, Type: dto.Type,
			URL: dto.URL, Sim: dto.Sim, Attrs: dto.Attrs,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read journal: %w", err)
	}
	return out, nil
}

// SortCanonical puts lifecycle events into the canonical study order —
// (Ord, URL, Seq) — and renumbers Seq 0..n-1. Ord groups events by the
// poll cycle or monitor tick that recorded them; URL orders the cycle's
// work; Seq (stable sort) preserves each URL's intra-frame order. The
// result is partition-invariant: a URL's events are recorded by exactly
// one shard (the posting schedule partitions URLs), so merging shard
// journals and sorting yields the same sequence a 1-shard run sorts
// into. The input is not modified.
func SortCanonical(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Ord.Equal(out[j].Ord) {
			return out[i].Ord.Before(out[j].Ord)
		}
		if out[i].URL != out[j].URL {
			return out[i].URL < out[j].URL
		}
		return out[i].Seq < out[j].Seq
	})
	for i := range out {
		out[i].Seq = uint64(i)
	}
	return out
}

// RebuildJournal constructs a journal whose lifecycle sequence is
// exactly events (typically a SortCanonical result, or a merge of
// several shards' journals). The per-type counts, per-URL indices, and
// the dashboard ring are rebuilt from the events; ops events are not
// carried over (they are scheduler-dependent noise, bounded to the ring
// of the live run that produced them).
func RebuildJournal(simNow func() time.Time, ringCap int, events []Event) *Journal {
	j := NewJournal(simNow, ringCap)
	for _, ev := range events {
		j.mu.Lock()
		ev.Seq = j.seq
		j.seq++
		j.counts[ev.Type]++
		j.byURL[ev.URL] = append(j.byURL[ev.URL], len(j.lifecycle))
		j.lifecycle = append(j.lifecycle, ev)
		j.push(ev)
		j.mu.Unlock()
	}
	return j
}
