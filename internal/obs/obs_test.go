package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammer drives every instrument kind from many goroutines
// at once; run with -race. The totals must be exact — atomic float adds
// lose nothing under contention.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "t")
	g := reg.Gauge("hammer_gauge", "t")
	h := reg.Histogram("hammer_seconds", "t", []float64{0.5, 1, 2})
	cv := reg.CounterVec("hammer_labeled_total", "t", "worker")
	hv := reg.HistogramVec("hammer_labeled_seconds", "t", []float64{1}, "worker")

	const workers = 16
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) * 0.75)
				cv.With(name).Add(2)
				hv.With(name).Observe(0.5)
			}
		}(w)
	}
	wg.Wait()

	const n = workers * perWorker
	if got := c.Value(); got != n {
		t.Errorf("counter = %v, want %v", got, n)
	}
	if got := g.Value(); got != n {
		t.Errorf("gauge = %v, want %v", got, n)
	}
	if got := h.Count(); got != n {
		t.Errorf("histogram count = %v, want %v", got, n)
	}
	var labeledTotal float64
	for _, s := range reg.Snapshot() {
		if s.Name == "hammer_labeled_total" {
			labeledTotal += s.Value
		}
	}
	if labeledTotal != 2*n {
		t.Errorf("labeled counter sum = %v, want %v", labeledTotal, 2*n)
	}
}

// TestHistogramBuckets checks the bucket boundary convention (le is
// inclusive) and the quantile estimator.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 1} // <=1, (1,2], (2,4], +Inf
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Sum() != 13 {
		t.Errorf("sum = %v, want 13", h.Sum())
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("median estimate %v outside [1,2]", q)
	}
	var empty Histogram
	if !math.IsNaN((&empty).Quantile(0.5)) {
		t.Error("quantile of empty histogram should be NaN")
	}
}

// TestWritePrometheusGolden locks the exact text-exposition output for a
// small registry: HELP/TYPE headers, label escaping, histogram buckets
// with cumulative counts, sorted family and series order.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("study_urls_total", "URLs observed.")
	c.Add(42)
	g := reg.Gauge("sim_time_seconds", "Virtual seconds elapsed.")
	g.Set(86400)
	cv := reg.CounterVec("fetch_total", "Fetches by status.", "status")
	cv.With("200").Add(7)
	cv.With("404").Inc()
	h := reg.Histogram("fetch_seconds", "Fetch latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	reg.CounterVec("escaped_total", "Escaping.", "v").With("a\"b\\c\nd").Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP escaped_total Escaping.
# TYPE escaped_total counter
escaped_total{v="a\"b\\c\nd"} 1
# HELP fetch_seconds Fetch latency.
# TYPE fetch_seconds histogram
fetch_seconds_bucket{le="0.1"} 1
fetch_seconds_bucket{le="1"} 2
fetch_seconds_bucket{le="+Inf"} 3
fetch_seconds_sum 3.55
fetch_seconds_count 3
# HELP fetch_total Fetches by status.
# TYPE fetch_total counter
fetch_total{status="200"} 7
fetch_total{status="404"} 1
# HELP sim_time_seconds Virtual seconds elapsed.
# TYPE sim_time_seconds gauge
sim_time_seconds 86400
# HELP study_urls_total URLs observed.
# TYPE study_urls_total counter
study_urls_total 42
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistrationIdempotent verifies re-registration returns the same
// instrument, and schema changes panic.
func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x")
	b := reg.Counter("x_total", "x")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("instruments not shared")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on type mismatch")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestValidNames(t *testing.T) {
	for _, bad := range []string{"", "1abc", "a-b", "a b", "a{b}"} {
		func() {
			defer func() { recover() }()
			NewRegistry().Counter(bad, "")
			t.Errorf("name %q should have panicked", bad)
		}()
	}
	NewRegistry().Counter("ok_name:v2", "") // must not panic
}

// TestGaugeFunc covers export-time computed gauges.
func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := 3.5
	reg.GaugeFunc("live_value", "Computed.", func() float64 { return v })
	if got := reg.Value("live_value"); got != 3.5 {
		t.Errorf("Value = %v, want 3.5", got)
	}
	v = 7
	var b strings.Builder
	_ = reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "live_value 7\n") {
		t.Errorf("gauge func not re-evaluated at export:\n%s", b.String())
	}
}

// TestOpsMux exercises the full operational surface over HTTP.
func TestOpsMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total", "t").Inc()
	healthErr := error(nil)
	mux := NewOpsMux(reg, func() error { return healthErr })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "ops_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d (len %d)", code, len(body))
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if !OpsPaths("/metrics") || !OpsPaths("/debug/pprof/heap") || OpsPaths("/index.html") {
		t.Error("OpsPaths misclassifies")
	}
}
