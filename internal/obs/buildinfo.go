package obs

import (
	"runtime"
	"runtime/debug"
	"strconv"
)

// BuildInfo collects the identifying facts every daemon exports: the
// module version (or VCS revision when built from a checkout), the Go
// toolchain version, and the study seed. It is both the label set of the
// freephish_build_info gauge and the /version endpoint's JSON body.
func BuildInfo(seed int64) map[string]string {
	version := "dev"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		} else {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && len(s.Value) >= 12 {
					version = s.Value[:12]
				}
			}
		}
	}
	return map[string]string{
		"version":   version,
		"goversion": runtime.Version(),
		"seed":      strconv.FormatInt(seed, 10),
	}
}

// RegisterBuildInfo exports the standard freephish_build_info gauge — the
// Prometheus idiom of a constant-1 series whose labels carry the build
// identity — and returns the info map for the /version endpoint.
func RegisterBuildInfo(reg *Registry, seed int64) map[string]string {
	info := BuildInfo(seed)
	reg.GaugeVec("freephish_build_info",
		"Build identity: constant 1 labeled with version, Go version, and study seed.",
		"version", "goversion", "seed").
		With(info["version"], info["goversion"], info["seed"]).Set(1)
	return info
}
