package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestDoRetriesTransientUntilSuccess checks the basic shape: transient
// failures are retried, the first success wins, and the backoff schedule
// is the deterministic exponential the policy promises.
func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	var delays []time.Duration
	p := &Policy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		Multiplier:  2,
		Sleep:       NoSleep,
		OnRetry: func(key string, attempt int, d time.Duration, err error) {
			delays = append(delays, d)
		},
	}
	calls := 0
	err := p.Do(context.Background(), "k", func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("boom"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (no jitter configured)", i, delays[i], want[i])
		}
	}
}

// TestDoGivesUpAfterMaxAttempts checks exhaustion: the wrapped error
// survives, OnGiveUp fires once with the attempt count.
func TestDoGivesUpAfterMaxAttempts(t *testing.T) {
	var gaveUp int
	p := &Policy{
		MaxAttempts: 3,
		Sleep:       NoSleep,
		OnGiveUp:    func(key string, attempts int, err error) { gaveUp = attempts },
	}
	calls := 0
	inner := errors.New("down")
	err := p.Do(context.Background(), "k", func() error {
		calls++
		return Transient(inner)
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if err == nil || !errors.Is(err, inner) {
		t.Fatalf("err = %v, want wrap of %v", err, inner)
	}
	if gaveUp != 3 {
		t.Fatalf("OnGiveUp attempts = %d, want 3", gaveUp)
	}
}

// TestDoStopsOnApplicationError checks that a non-transient error returns
// on the first attempt, untouched.
func TestDoStopsOnApplicationError(t *testing.T) {
	p := &Policy{MaxAttempts: 5, Sleep: NoSleep}
	calls := 0
	inner := errors.New("bad request")
	err := p.Do(context.Background(), "k", func() error {
		calls++
		return inner
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if err != inner {
		t.Fatalf("err = %v, want %v untouched", err, inner)
	}
}

// TestStatusErrorTransience: 5xx is retryable, 4xx is an answer.
func TestStatusErrorTransience(t *testing.T) {
	if !IsTransient(&StatusError{Code: 503}) {
		t.Fatal("503 should be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", &StatusError{Code: 500})) {
		t.Fatal("wrapped 500 should be transient")
	}
	if IsTransient(&StatusError{Code: 404}) {
		t.Fatal("404 should not be transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error should not be transient")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) should stay nil")
	}
}

// TestJitterDeterministicAndBounded: same (seed, key, attempt) gives the
// same delay; the spread stays within ±Jitter of the base schedule.
func TestJitterDeterministicAndBounded(t *testing.T) {
	mk := func() *Policy {
		return &Policy{BaseDelay: time.Second, Multiplier: 2, MaxDelay: time.Hour, Jitter: 0.25, Seed: 7}
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 6; attempt++ {
		da := a.delay("feeds.assess", attempt)
		db := b.delay("feeds.assess", attempt)
		if da != db {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, da, db)
		}
		base := float64(time.Second) * float64(int(1)<<(attempt-1))
		if base > float64(time.Hour) {
			base = float64(time.Hour)
		}
		lo, hi := 0.75*base, 1.25*base
		if float64(da) < lo || float64(da) > hi {
			t.Fatalf("attempt %d: delay %v outside ±25%% of %v", attempt, da, time.Duration(base))
		}
	}
	if a.delay("feeds.assess", 1) == a.delay("intel.resolve", 1) {
		t.Fatal("different keys should jitter differently")
	}
}

// TestWallSleepCancellation: a canceled context interrupts the backoff
// wait promptly instead of sleeping it out.
func TestWallSleepCancellation(t *testing.T) {
	p := &Policy{MaxAttempts: 3, BaseDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, "k", func() error { return Transient(errors.New("down")) })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
}

// TestBreakerOpensAndRecovers drives the circuit through its whole
// lifecycle on an injected clock: closed → open after threshold give-ups
// → refusing calls → half-open probe after cooldown → closed on success.
func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	var transitions []bool
	p := &Policy{
		MaxAttempts:      2,
		Sleep:            NoSleep,
		Now:              func() time.Time { return now },
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		OnBreaker:        func(key string, open bool) { transitions = append(transitions, open) },
	}
	fail := func() error { return Transient(errors.New("down")) }

	for i := 0; i < 2; i++ {
		if err := p.Do(context.Background(), "k", fail); err == nil {
			t.Fatal("want give-up error")
		}
	}
	if !p.BreakerOpen("k") {
		t.Fatal("breaker should be open after 2 give-ups")
	}
	calls := 0
	err := p.Do(context.Background(), "k", func() error { calls++; return nil })
	if !errors.Is(err, ErrCircuitOpen) || calls != 0 {
		t.Fatalf("open circuit should refuse without running op; err=%v calls=%d", err, calls)
	}

	now = now.Add(2 * time.Minute) // cooldown elapses: half-open
	if err := p.Do(context.Background(), "k", func() error { return nil }); err != nil {
		t.Fatalf("half-open probe should run and succeed: %v", err)
	}
	if p.BreakerOpen("k") {
		t.Fatal("breaker should close after a successful probe")
	}
	if len(transitions) != 2 || transitions[0] != true || transitions[1] != false {
		t.Fatalf("transitions = %v, want [open close]", transitions)
	}

	// Other keys were never affected.
	if p.BreakerOpen("other") {
		t.Fatal("unrelated key should not share breaker state")
	}
}

// TestBreakerIgnoresApplicationErrors: non-transient failures are
// answers, not endpoint health, and never trip the circuit.
func TestBreakerIgnoresApplicationErrors(t *testing.T) {
	p := &Policy{MaxAttempts: 2, Sleep: NoSleep, BreakerThreshold: 1}
	for i := 0; i < 5; i++ {
		_ = p.Do(context.Background(), "k", func() error { return errors.New("no") })
	}
	if p.BreakerOpen("k") {
		t.Fatal("application errors must not open the breaker")
	}
}
