// Package retry is the pipeline's one retry/backoff policy. Every
// network client in FreePhish — the streaming poller, the snapshot
// fetcher, the world HTTP adapters, the reporter, and the §4.4 monitor —
// shares a single Policy, so backoff shape, jitter, circuit breaking,
// and cancellation behave identically everywhere instead of each call
// site growing its own ad-hoc sleep loop.
//
// Determinism: the backoff jitter is a pure hash of (seed, key, attempt)
// rather than a draw from shared RNG state, so concurrent retries on
// different keys cannot perturb each other and a retried run schedules
// exactly the same delays as the previous one. Inside the simulation the
// policy is wired with NoSleep — virtual time is frozen while a poll
// cycle executes, so waiting wall-clock would add latency without
// advancing anything — while daemons use WallSleep, which honors context
// cancellation mid-backoff.
package retry

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"
)

// Defaults used when the corresponding Policy field is zero.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
	DefaultMultiplier  = 2.0
)

// ErrCircuitOpen is returned (wrapped, with the key) when a key's
// breaker is open and the call is refused without running the operation.
var ErrCircuitOpen = errors.New("retry: circuit open")

// SleepFunc waits out one backoff delay. It returns early with ctx.Err()
// when the context is canceled — the hook that makes shutdown interrupt
// a retry loop instead of blocking behind it.
type SleepFunc func(ctx context.Context, d time.Duration) error

// WallSleep waits d of wall-clock time or until ctx is done.
func WallSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// NoSleep skips the wait entirely but still honors cancellation. It is
// the right Sleep for code driven by a virtual clock: during a simulated
// poll cycle the clock is frozen, so there is nothing to wait for.
func NoSleep(ctx context.Context, d time.Duration) error {
	return ctx.Err()
}

// StatusError marks an HTTP status worth reasoning about at the retry
// layer; 5xx statuses are transient (the endpoint may recover), anything
// else is an application answer.
type StatusError struct {
	Code int
}

func (e *StatusError) Error() string { return fmt.Sprintf("status %d", e.Code) }

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as retryable: transport failures, short reads,
// undecodable bodies — anything where trying again may get a different
// answer. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	var t *transientError
	if errors.As(err, &t) {
		return err
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is worth retrying: it was marked with
// Transient, or it carries a 5xx StatusError.
func IsTransient(err error) bool {
	var t *transientError
	if errors.As(err, &t) {
		return true
	}
	var s *StatusError
	if errors.As(err, &s) {
		return s.Code >= 500
	}
	return false
}

// Policy is one retry discipline: exponential backoff with deterministic
// jitter, a per-key circuit breaker, and observer hooks for the metrics
// layer. The zero value is usable; fields left zero take the Default*
// constants. A Policy is safe for concurrent use and must not be copied
// after first use.
type Policy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	MaxAttempts int
	// BaseDelay is the wait after the first failure; each further wait is
	// multiplied by Multiplier and capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter spreads each delay by ±Jitter (a fraction, e.g. 0.25). The
	// spread is a pure hash of (Seed, key, attempt) — deterministic, and
	// free of shared RNG state.
	Jitter float64
	Seed   int64
	// Sleep waits out one backoff delay; nil means WallSleep. Simulation
	// wiring passes NoSleep.
	Sleep SleepFunc
	// Now is the breaker's clock; nil means time.Now. Simulation wiring
	// passes the virtual clock so breaker cooldowns elapse in sim time.
	Now func() time.Time

	// BreakerThreshold opens a key's circuit after that many consecutive
	// give-ups (whole Do calls that exhausted their attempts — individual
	// failed attempts do not count, so interleaved concurrent bursts
	// cannot trip it spuriously). Zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses calls before
	// letting a probe through (half-open). Zero means 30s.
	BreakerCooldown time.Duration

	// OnRetry fires before each backoff wait; OnGiveUp fires when a Do
	// exhausts its attempts; OnBreaker fires on each open/close
	// transition. All must be cheap and concurrency-safe.
	OnRetry   func(key string, attempt int, delay time.Duration, err error)
	OnGiveUp  func(key string, attempts int, err error)
	OnBreaker func(key string, open bool)

	mu       sync.Mutex
	breakers map[string]*breakerState
}

type breakerState struct {
	giveUps   int
	openUntil time.Time
}

// Do runs op under the policy, keyed for backoff jitter and circuit
// breaking (use one key per endpoint). Only errors marked transient (see
// Transient and StatusError) are retried; an application error returns
// immediately. Cancellation of ctx aborts both in-flight waits and
// further attempts.
func (p *Policy) Do(ctx context.Context, key string, op func() error) error {
	if err := p.breakerAllow(key); err != nil {
		return err
	}
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = WallSleep
	}
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = op()
		if err == nil {
			p.breakerSuccess(key)
			return nil
		}
		if !IsTransient(err) {
			// An application answer, not endpoint health: surface it
			// untouched and leave the breaker alone.
			return err
		}
		if attempt >= attempts {
			break
		}
		d := p.delay(key, attempt)
		if p.OnRetry != nil {
			p.OnRetry(key, attempt, d, err)
		}
		if serr := sleep(ctx, d); serr != nil {
			return serr
		}
	}
	p.breakerGiveUp(key)
	if p.OnGiveUp != nil {
		p.OnGiveUp(key, attempts, err)
	}
	return fmt.Errorf("retry: %s: gave up after %d attempts: %w", key, attempts, err)
}

// delay computes the backoff before attempt+1.
func (p *Policy) delay(key string, attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	max := p.MaxDelay
	if max <= 0 {
		max = DefaultMaxDelay
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = DefaultMultiplier
	}
	d := float64(base) * math.Pow(mult, float64(attempt-1))
	if d > float64(max) {
		d = float64(max)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*unit(p.Seed, key, attempt)-1)
	}
	return time.Duration(d)
}

// unit derives a uniform [0,1) value from (seed, key, attempt) — the
// deterministic jitter source.
func unit(seed int64, key string, attempt int) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(attempt))
	h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func (p *Policy) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

// breakerAllow refuses the call while the key's circuit is open. Once
// the cooldown has elapsed the next call is let through as a half-open
// probe: success closes the circuit, another give-up re-opens it.
func (p *Policy) breakerAllow(key string) error {
	if p.BreakerThreshold <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.breakers[key]
	if st == nil || st.openUntil.IsZero() {
		return nil
	}
	if p.now().Before(st.openUntil) {
		return fmt.Errorf("retry: %s: %w", key, ErrCircuitOpen)
	}
	return nil
}

func (p *Policy) breakerSuccess(key string) {
	if p.BreakerThreshold <= 0 {
		return
	}
	p.mu.Lock()
	st := p.breakers[key]
	closed := st != nil && !st.openUntil.IsZero()
	if st != nil {
		st.giveUps = 0
		st.openUntil = time.Time{}
	}
	hook := p.OnBreaker
	p.mu.Unlock()
	if closed && hook != nil {
		hook(key, false)
	}
}

func (p *Policy) breakerGiveUp(key string) {
	if p.BreakerThreshold <= 0 {
		return
	}
	p.mu.Lock()
	if p.breakers == nil {
		p.breakers = make(map[string]*breakerState)
	}
	st := p.breakers[key]
	if st == nil {
		st = &breakerState{}
		p.breakers[key] = st
	}
	st.giveUps++
	opened := false
	if st.giveUps >= p.BreakerThreshold {
		now := p.now()
		// Only a closed or expired circuit transitions to open; while
		// already open we just keep it open (half-open probe failed).
		opened = st.openUntil.IsZero() || !now.Before(st.openUntil)
		cool := p.BreakerCooldown
		if cool <= 0 {
			cool = 30 * time.Second
		}
		st.openUntil = now.Add(cool)
	}
	hook := p.OnBreaker
	p.mu.Unlock()
	if opened && hook != nil {
		hook(key, true)
	}
}

// BreakerOpen reports whether the key's circuit is currently open.
func (p *Policy) BreakerOpen(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.breakers[key]
	return st != nil && !st.openUntil.IsZero() && p.now().Before(st.openUntil)
}
