// Package report implements the FreePhish reporting module (§4.3) and the
// response models of the entities it reports to. Reports carry the URL, a
// screenshot reference, and the targeted brand — the evidence-based format
// prior work found to expedite takedown. The per-FWB response behaviour
// reproduces §5.3: responsive services acknowledge, follow up, and remove;
// ticket-only services open tickets that go nowhere; unresponsive services
// never answer. Blocklists are deliberately NOT reported to (§4.3 —
// community blocklists list submissions unverified, which would contaminate
// the longitudinal measurement).
package report

import (
	"fmt"
	"time"

	"freephish/internal/fwb"
	"freephish/internal/simclock"
	"freephish/internal/threat"
)

// Report is one disclosure sent to a hosting service or platform.
type Report struct {
	URL        string
	Brand      string
	Screenshot string // path/identifier of the captured evidence
	SentAt     time.Time
	Recipient  string
}

// Outcome is the recipient's response to a report.
type Outcome struct {
	Acknowledged bool
	AckAt        time.Time
	FollowedUp   bool // additional information + account removal (§5.3)
	Removed      bool
	RemovedAt    time.Time
	// Error records a delivery failure (e.g. the report API was
	// unreachable). A failed submission is an outcome, not a crash: the
	// study records it and the attack simply goes unreported.
	Error string
}

// Reporter sends disclosures and models recipient responses. Construct
// with NewReporter. Each disclosure draws from an RNG stream keyed by the
// reported URL, so a recipient's response to a given attack is the same no
// matter how many — or in what order — other attacks were reported first
// (the property that lets a sharded study report each shard's attacks
// independently and still match the single-process run).
type Reporter struct {
	seed  int64
	sent  []Report
	stats map[string]RecipientStats
}

// urlRNG derives the per-disclosure RNG stream.
func (r *Reporter) urlRNG(url string) *simclock.RNG {
	return simclock.NewRNG(r.seed, "report|"+url)
}

// RecipientStats aggregates one recipient's disposition of our reports —
// the per-entity reports-filed/acknowledged counts the observability
// layer exports.
type RecipientStats struct {
	Sent         int
	Acknowledged int
	FollowedUp   int
	Removed      int
}

// NewReporter returns a Reporter drawing from the run seed.
func NewReporter(seed int64) *Reporter {
	return &Reporter{seed: seed, stats: make(map[string]RecipientStats)}
}

// Stats returns a copy of the per-recipient aggregates. Self-hosted
// takedowns are attributed to the pseudo-recipient "hosting-provider".
func (r *Reporter) Stats() map[string]RecipientStats {
	out := make(map[string]RecipientStats, len(r.stats))
	for k, v := range r.stats {
		out[k] = v
	}
	return out
}

// record folds one outcome into the per-recipient aggregates.
func (r *Reporter) record(recipient string, o Outcome) {
	if r.stats == nil {
		r.stats = make(map[string]RecipientStats)
	}
	s := r.stats[recipient]
	s.Sent++
	if o.Acknowledged {
		s.Acknowledged++
	}
	if o.FollowedUp {
		s.FollowedUp++
	}
	if o.Removed {
		s.Removed++
	}
	r.stats[recipient] = s
}

// Sent returns a copy of every report sent so far.
func (r *Reporter) Sent() []Report {
	out := make([]Report, len(r.sent))
	copy(out, r.sent)
	return out
}

// ackRates are the §5.3 initial-response rates per response class;
// followRates the rate of follow-up-plus-account-removal.
var ackRates = map[fwb.ResponseClass]float64{
	fwb.Responsive:   0.73, // Weebly 71.6%, Wix 65.3%, 000webhost 82.7%, Zoho 70.4%
	fwb.TicketOnly:   0.26, // Squareup 23.7%, Github 37.4%, Google Sites 15.2%, Blogspot 28.3%
	fwb.Unresponsive: 0,
}

var followRates = map[fwb.ResponseClass]float64{
	fwb.Responsive:   0.9,
	fwb.TicketOnly:   0,
	fwb.Unresponsive: 0,
}

// ReportToFWB discloses an FWB-hosted attack to its service and returns
// the service's response. The removal decision uses the service's
// calibrated Table 4 removal rate and median latency, measured from the
// report time.
func (r *Reporter) ReportToFWB(t *threat.Target, at time.Time) Outcome {
	if t.Service == nil {
		return Outcome{}
	}
	svc := t.Service
	r.sent = append(r.sent, Report{
		URL: t.URL, Brand: t.Brand,
		Screenshot: fmt.Sprintf("snapshots/%s.png", t.PostID),
		SentAt:     at, Recipient: svc.Name,
	})
	rng := r.urlRNG(t.URL)
	var o Outcome
	if rng.Bool(ackRates[svc.ResponseClass]) {
		o.Acknowledged = true
		o.AckAt = at.Add(time.Duration(rng.LogNormal(float64(2*time.Hour), 1.0)))
		o.FollowedUp = rng.Bool(followRates[svc.ResponseClass])
	}
	if rng.Bool(svc.RemovalRate) {
		o.Removed = true
		o.RemovedAt = at.Add(time.Duration(rng.LogNormal(float64(svc.MedianResponse), 1.2)))
	}
	r.record(svc.Name, o)
	return o
}

// SelfHostedTakedown models hosting-provider removal of a self-hosted
// phishing site (Table 3 "Hosting domain": 77.5% coverage, 3:47 median).
// Providers act on abuse reports from the whole ecosystem, so the clock
// runs from first share.
func (r *Reporter) SelfHostedTakedown(t *threat.Target) Outcome {
	const coverage = 0.775
	median := 3*time.Hour + 47*time.Minute
	rng := r.urlRNG(t.URL)
	var o Outcome
	if rng.Bool(coverage) {
		o = Outcome{
			Removed:   true,
			RemovedAt: t.SharedAt.Add(time.Duration(rng.LogNormal(float64(median), 1.3))),
		}
	}
	r.record("hosting-provider", o)
	return o
}
