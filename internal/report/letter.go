package report

import (
	"fmt"
	"strings"
	"time"

	"freephish/internal/brands"
	"freephish/internal/threat"
)

// Report letters: the paper's reporting module submits web abuse forms
// with evidence attached — "the full URL, a screenshot of the site, and
// the targeted organization's name" (§4.3), since evidence-based reports
// expedite takedown. RenderLetter produces the disclosure text the module
// would paste into an FWB's abuse form or send to a platform.

// LetterKind selects the recipient template.
type LetterKind int

// Recipient templates.
const (
	ToFWB LetterKind = iota
	ToPlatform
)

// RenderLetter renders the disclosure for one target.
func RenderLetter(kind LetterKind, t *threat.Target, at time.Time) string {
	brandName := t.Brand
	if br, ok := brands.ByKey(t.Brand); ok {
		brandName = br.Name
	}
	var b strings.Builder
	switch kind {
	case ToFWB:
		service := "your service"
		if t.Service != nil {
			service = t.Service.Name
		}
		fmt.Fprintf(&b, "Subject: Phishing website hosted on %s\n\n", service)
		fmt.Fprintf(&b, "To the %s abuse team,\n\n", service)
		fmt.Fprintf(&b, "We have identified a phishing website created on your platform:\n\n")
		fmt.Fprintf(&b, "  URL:              %s\n", t.URL)
		fmt.Fprintf(&b, "  Impersonates:     %s\n", orUnknown(brandName))
		fmt.Fprintf(&b, "  First observed:   %s\n", at.UTC().Format(time.RFC3339))
		fmt.Fprintf(&b, "  Attack type:      %s\n", describeAttack(t))
		fmt.Fprintf(&b, "  Evidence:         screenshot attached (snapshots/%s.png)\n\n", t.PostID)
		b.WriteString("The page was detected by the FreePhish framework and verified ")
		b.WriteString("automatically. We request removal of the website and review of ")
		b.WriteString("the account that created it.\n\nFreePhish automated disclosure\n")
	case ToPlatform:
		fmt.Fprintf(&b, "Subject: Post distributing a phishing link\n\n")
		fmt.Fprintf(&b, "Post %s on %s links to an active phishing website:\n\n", t.PostID, t.Platform)
		fmt.Fprintf(&b, "  URL:            %s\n", t.URL)
		fmt.Fprintf(&b, "  Impersonates:   %s\n", orUnknown(brandName))
		fmt.Fprintf(&b, "  Attack type:    %s\n", describeAttack(t))
		fmt.Fprintf(&b, "  Evidence:       screenshot attached (snapshots/%s.png)\n\n", t.PostID)
		b.WriteString("We request removal of the post under your malicious-links policy.\n")
	}
	return b.String()
}

func orUnknown(s string) string {
	if s == "" {
		return "(brand not identified)"
	}
	return s
}

// describeAttack summarizes the attack vector for the abuse team.
func describeAttack(t *threat.Target) string {
	switch {
	case t.DriveByDownload:
		return "malicious drive-by download lure"
	case t.TwoStepLink:
		return "two-step landing page linking to an external credential harvester"
	case t.HiddenIFrame:
		return "hidden iframe embedding an external attack"
	case t.HasCredentialFields:
		return "credential-harvesting login form"
	default:
		return "phishing content"
	}
}
