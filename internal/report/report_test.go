package report

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"freephish/internal/fwb"
	"freephish/internal/threat"
)

var epoch = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

func targetOn(key string) *threat.Target {
	svc, ok := fwb.ByKey(key)
	if !ok {
		panic("no service " + key)
	}
	return &threat.Target{
		URL: svc.SiteURL("test"), Service: svc, Brand: "paypal",
		SharedAt: epoch, PostID: "p1",
	}
}

// targetN is targetOn with a distinct URL per i. The Reporter keys its
// RNG stream by URL — the same attack always gets the same response —
// so sampling a response *distribution* means reporting distinct
// attacks, exactly as the study does.
func targetN(key string, i int) *threat.Target {
	tg := targetOn(key)
	tg.URL = tg.Service.SiteURL(fmt.Sprintf("t%04d", i))
	return tg
}

func TestResponsiveServiceRemovesAtCalibratedRate(t *testing.T) {
	r := NewReporter(3)
	svc, _ := fwb.ByKey("weebly")
	const n = 3000
	removed, acked, followed := 0, 0, 0
	var delays []time.Duration
	for i := 0; i < n; i++ {
		o := r.ReportToFWB(targetN("weebly", i), epoch)
		if o.Removed {
			removed++
			delays = append(delays, o.RemovedAt.Sub(epoch))
		}
		if o.Acknowledged {
			acked++
			if o.AckAt.Before(epoch) {
				t.Fatal("ack before report")
			}
		}
		if o.FollowedUp {
			followed++
		}
	}
	rate := float64(removed) / n
	if rate < svc.RemovalRate-0.04 || rate > svc.RemovalRate+0.04 {
		t.Errorf("weebly removal rate = %.3f, want ≈%.3f", rate, svc.RemovalRate)
	}
	ackRate := float64(acked) / n
	if ackRate < 0.65 || ackRate > 0.82 {
		t.Errorf("weebly ack rate = %.3f, want ≈0.73 (§5.3)", ackRate)
	}
	if followed == 0 {
		t.Error("responsive service never followed up")
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	med := delays[len(delays)/2]
	if med < svc.MedianResponse/2 || med > svc.MedianResponse*2 {
		t.Errorf("weebly removal median = %v, want ≈%v", med, svc.MedianResponse)
	}
}

func TestUnresponsiveServiceNeverAcks(t *testing.T) {
	r := NewReporter(5)
	for i := 0; i < 500; i++ {
		o := r.ReportToFWB(targetN("wordpress", i), epoch)
		if o.Acknowledged || o.FollowedUp {
			t.Fatal("unresponsive service acknowledged a report (§5.3 violation)")
		}
	}
}

func TestTicketOnlyAcksWithoutFollowUp(t *testing.T) {
	r := NewReporter(7)
	acked := 0
	for i := 0; i < 2000; i++ {
		o := r.ReportToFWB(targetN("googlesites", i), epoch)
		if o.FollowedUp {
			t.Fatal("ticket-only service followed up")
		}
		if o.Acknowledged {
			acked++
		}
	}
	rate := float64(acked) / 2000
	if rate < 0.18 || rate > 0.34 {
		t.Errorf("ticket-only ack rate = %.3f, want ≈0.26", rate)
	}
}

func TestRemovalRateOrderingAcrossServices(t *testing.T) {
	r := NewReporter(9)
	count := func(key string) int {
		n := 0
		for i := 0; i < 1500; i++ {
			if o := r.ReportToFWB(targetN(key, i), epoch); o.Removed {
				n++
			}
		}
		return n
	}
	weebly, wordpress := count("weebly"), count("wordpress")
	if weebly <= wordpress {
		t.Fatalf("weebly removals %d <= wordpress %d (Table 4 ordering)", weebly, wordpress)
	}
}

func TestSelfHostedTakedown(t *testing.T) {
	r := NewReporter(11)
	const n = 3000
	removed := 0
	var delays []time.Duration
	for i := 0; i < n; i++ {
		tg := &threat.Target{URL: fmt.Sprintf("https://evil%04d.xyz/login", i), SharedAt: epoch}
		o := r.SelfHostedTakedown(tg)
		if o.Removed {
			removed++
			delays = append(delays, o.RemovedAt.Sub(epoch))
		}
	}
	rate := float64(removed) / n
	if rate < 0.73 || rate > 0.82 {
		t.Errorf("self-hosted takedown rate = %.3f, want ≈0.775 (Table 3)", rate)
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	med := delays[len(delays)/2]
	want := 3*time.Hour + 47*time.Minute
	if med < want/2 || med > want*2 {
		t.Errorf("self-hosted takedown median = %v, want ≈%v", med, want)
	}
}

func TestReportToFWBOnSelfHostedIsNoop(t *testing.T) {
	r := NewReporter(13)
	tg := &threat.Target{URL: "https://evil.xyz/", SharedAt: epoch}
	if o := r.ReportToFWB(tg, epoch); o.Removed || o.Acknowledged {
		t.Fatal("self-hosted target got an FWB response")
	}
	if len(r.Sent()) != 0 {
		t.Fatal("report recorded for self-hosted target")
	}
}

func TestSentLogIncludesEvidence(t *testing.T) {
	r := NewReporter(15)
	r.ReportToFWB(targetOn("wix"), epoch)
	sent := r.Sent()
	if len(sent) != 1 {
		t.Fatalf("sent = %d", len(sent))
	}
	rep := sent[0]
	if rep.Recipient != "Wix.com" || rep.Brand != "paypal" || rep.Screenshot == "" {
		t.Fatalf("report missing evidence fields: %+v", rep)
	}
}

func TestRenderLetterToFWB(t *testing.T) {
	tg := targetOn("weebly")
	tg.HasCredentialFields = true
	letter := RenderLetter(ToFWB, tg, epoch)
	for _, want := range []string{"Weebly abuse team", tg.URL, "PayPal", "credential-harvesting", "snapshots/p1.png"} {
		if !strings.Contains(letter, want) {
			t.Errorf("FWB letter missing %q:\n%s", want, letter)
		}
	}
}

func TestRenderLetterToPlatform(t *testing.T) {
	tg := targetOn("googlesites")
	tg.TwoStepLink = true
	tg.Platform = threat.Twitter
	letter := RenderLetter(ToPlatform, tg, epoch)
	for _, want := range []string{"Post p1 on twitter", "two-step landing page", "malicious-links policy"} {
		if !strings.Contains(letter, want) {
			t.Errorf("platform letter missing %q:\n%s", want, letter)
		}
	}
}

func TestRenderLetterAttackDescriptions(t *testing.T) {
	cases := []struct {
		mutate func(*threat.Target)
		want   string
	}{
		{func(t *threat.Target) { t.DriveByDownload = true }, "drive-by download"},
		{func(t *threat.Target) { t.HiddenIFrame = true }, "hidden iframe"},
		{func(t *threat.Target) {}, "phishing content"},
	}
	for _, c := range cases {
		tg := targetOn("wix")
		tg.Brand = ""
		c.mutate(tg)
		letter := RenderLetter(ToFWB, tg, epoch)
		if !strings.Contains(letter, c.want) {
			t.Errorf("letter missing %q", c.want)
		}
		if !strings.Contains(letter, "brand not identified") {
			t.Errorf("unbranded letter should note missing brand")
		}
	}
}

func TestReporterStats(t *testing.T) {
	r := NewReporter(7)
	acked, removed := 0, 0
	const n = 200
	for i := 0; i < n; i++ {
		o := r.ReportToFWB(targetOn("weebly"), epoch)
		if o.Acknowledged {
			acked++
		}
		if o.Removed {
			removed++
		}
	}
	selfRemoved := 0
	for i := 0; i < 50; i++ {
		if r.SelfHostedTakedown(targetOn("wix")).Removed {
			selfRemoved++
		}
	}
	stats := r.Stats()
	w := stats["Weebly"]
	if w.Sent != n || w.Acknowledged != acked || w.Removed != removed {
		t.Errorf("Weebly stats = %+v, want sent=%d acked=%d removed=%d", w, n, acked, removed)
	}
	h := stats["hosting-provider"]
	if h.Sent != 50 || h.Removed != selfRemoved {
		t.Errorf("hosting-provider stats = %+v, want sent=50 removed=%d", h, selfRemoved)
	}
	// Stats returns a copy: mutating it must not leak back.
	stats["Weebly"] = RecipientStats{}
	if r.Stats()["Weebly"].Sent != n {
		t.Error("Stats() exposed internal map")
	}
}
