// Package shard defines the shard-dispatch boundary: the port through which
// the study coordinator hands one shard of the posting schedule to
// *something that can run it* — an in-process child framework or a remote
// freephish-worker — and gets back the shard's final state.Snapshot plus a
// stream of periodic checkpoints it can adopt if the runner dies.
//
// The port mirrors the world boundary from internal/world: internal/core
// owns the coordinator and the local adapter, internal/shardrpc owns the
// HTTP adapter, and both must be byte-identical — a shard's output depends
// only on its Spec, never on where it ran.
package shard

import (
	"context"

	"freephish/internal/state"
)

// Spec is one dispatchable unit of work: the serializable study
// configuration plus this shard's position in it, and optionally an encoded
// state.Checkpoint to resume from instead of starting at the epoch —
// failover by checkpoint adoption hands a dead runner's last streamed
// checkpoint to its replacement through this field.
type Spec struct {
	state.ShardSpec
	// Resume, when non-empty, is an encoded checkpoint (the
	// state.EncodeCheckpoint envelope) the runner must resume from via the
	// replay path rather than running the shard from ordinal zero.
	Resume []byte `json:"resume,omitempty"`
}

// Runner executes one shard to completion.
//
// onCheckpoint is invoked with each encoded checkpoint the running shard
// cuts at its ordered-apply boundaries, in order, before the final snapshot
// is returned; the coordinator keeps the last one as the adoption point. If
// onCheckpoint returns an error the run must fail — a coordinator that can
// no longer receive checkpoints has lost its failover guarantee for this
// attempt, so the runner surfaces that instead of running on silently.
// onCheckpoint may be nil when the dispatcher wants no stream.
//
// Run returns the shard's final snapshot (including its journal events) on
// success. Errors wrapped with retry.Transient mark transport-level
// failures the dispatcher may fail over; a plain error means the spec
// itself is unrunnable everywhere (fingerprint mismatch, invalid resume
// data) and retrying elsewhere would only repeat it.
type Runner interface {
	// Name identifies the runner for metrics, ops events, and the /dash
	// shard panel — "local" for the in-process adapter, the endpoint for a
	// remote worker.
	Name() string
	Run(ctx context.Context, spec Spec, onCheckpoint func(data []byte) error) (*state.Snapshot, error)
}
