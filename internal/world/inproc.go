package world

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
)

// Inproc returns the in-process adapter set: every port is the Sim
// itself. Stream and Snap are left nil — the caller wires its poller and
// fetcher (typically over a HandlerTransport from Transport) into those
// slots, so the HTTP-shaped components run unchanged with zero sockets.
func Inproc(s *Sim) World {
	return World{
		Intel:    s,
		Feeds:    s,
		Platform: s,
		Reports:  s,
		Oracle:   s,
	}
}

// HandlerTransport is an http.RoundTripper that dispatches requests to
// in-process handlers keyed on the request's URL host — the same bytes a
// loopback server would produce, without sockets. It lets the crawler's
// fetcher and poller (real net/http clients) run against the simulation
// with no listeners, which is what keeps the inproc backend byte-for-byte
// identical to serving the handlers over TCP.
type HandlerTransport struct {
	hosts map[string]http.Handler
	// Default, when set, handles any host without an explicit entry.
	Default http.Handler
}

// NewHandlerTransport returns an empty transport.
func NewHandlerTransport() *HandlerTransport {
	return &HandlerTransport{hosts: make(map[string]http.Handler)}
}

// Handle routes requests for the given URL host to h.
func (t *HandlerTransport) Handle(host string, h http.Handler) {
	t.hosts[host] = h
}

// RoundTrip serves the request with the matching handler. It mirrors two
// behaviors of a real transport so injected faults look the same on both
// backends: a handler panicking with http.ErrAbortHandler becomes a
// transport error (the "connection reset" a net/http client would see),
// and a body shorter than its declared Content-Length fails the read
// with io.ErrUnexpectedEOF instead of silently delivering fewer bytes.
func (t *HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t.hosts[req.URL.Host]
	if !ok {
		h = t.Default
	}
	if h == nil {
		return nil, fmt.Errorf("world: no handler for host %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	if err := serveAborting(h, rec, req); err != nil {
		return nil, err
	}
	resp := rec.Result()
	if resp.ContentLength > int64(rec.Body.Len()) {
		resp.Body = io.NopCloser(&shortBody{r: bytes.NewReader(rec.Body.Bytes())})
	}
	resp.Request = req
	return resp, nil
}

// serveAborting runs the handler, converting http.ErrAbortHandler panics
// (the standard "drop this connection" signal) into a returned error;
// any other panic propagates.
func serveAborting(h http.Handler, rec *httptest.ResponseRecorder, req *http.Request) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if r == http.ErrAbortHandler {
				err = fmt.Errorf("world: %s http://%s%s: connection reset", req.Method, req.URL.Host, req.URL.Path)
				return
			}
			panic(r)
		}
	}()
	h.ServeHTTP(rec, req)
	return nil
}

// shortBody yields its bytes and then fails with io.ErrUnexpectedEOF —
// what a fixed-length client body does when the peer closes early.
type shortBody struct{ r *bytes.Reader }

func (s *shortBody) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
