package world

import (
	"fmt"
	"net/http"
	"net/http/httptest"
)

// Inproc returns the in-process adapter set: every port is the Sim
// itself. Stream and Snap are left nil — the caller wires its poller and
// fetcher (typically over a HandlerTransport from Transport) into those
// slots, so the HTTP-shaped components run unchanged with zero sockets.
func Inproc(s *Sim) World {
	return World{
		Intel:    s,
		Feeds:    s,
		Platform: s,
		Reports:  s,
		Oracle:   s,
	}
}

// HandlerTransport is an http.RoundTripper that dispatches requests to
// in-process handlers keyed on the request's URL host — the same bytes a
// loopback server would produce, without sockets. It lets the crawler's
// fetcher and poller (real net/http clients) run against the simulation
// with no listeners, which is what keeps the inproc backend byte-for-byte
// identical to serving the handlers over TCP.
type HandlerTransport struct {
	hosts map[string]http.Handler
	// Default, when set, handles any host without an explicit entry.
	Default http.Handler
}

// NewHandlerTransport returns an empty transport.
func NewHandlerTransport() *HandlerTransport {
	return &HandlerTransport{hosts: make(map[string]http.Handler)}
}

// Handle routes requests for the given URL host to h.
func (t *HandlerTransport) Handle(host string, h http.Handler) {
	t.hosts[host] = h
}

// RoundTrip serves the request with the matching handler.
func (t *HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t.hosts[req.URL.Host]
	if !ok {
		h = t.Default
	}
	if h == nil {
		return nil, fmt.Errorf("world: no handler for host %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}
