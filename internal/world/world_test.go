package world

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"freephish/internal/fwb"
	"freephish/internal/simclock"
	"freephish/internal/social"
	"freephish/internal/threat"
)

var epoch = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

func TestTargetDTORoundTrip(t *testing.T) {
	svc, ok := fwb.ByKey("weebly")
	if !ok {
		t.Fatal("weebly service missing")
	}
	orig := &threat.Target{
		URL: "https://paypal-alert.weebly.com/", Service: svc,
		Kind: fwb.KindPhishing, Brand: "PayPal",
		SharedAt: epoch.Add(90 * time.Minute), Platform: threat.Twitter, PostID: "twitter-7",
		HasCredentialFields: true, Noindex: true, BannerObfuscated: true,
		HiddenIFrame: true, DriveByDownload: true, TwoStepLink: true,
		DomainAge: 13*365*24*time.Hour + 12345*time.Nanosecond,
		InCTLog:   false, SearchIndexed: true, TLS: true,
	}
	// Through the full wire path: struct → JSON → struct → Target.
	raw, err := json.Marshal(TargetToDTO(orig))
	if err != nil {
		t.Fatal(err)
	}
	var dto TargetDTO
	if err := json.Unmarshal(raw, &dto); err != nil {
		t.Fatal(err)
	}
	got := dto.Target()
	if got.Service == nil || got.Service.Key != "weebly" {
		t.Fatalf("service not reconstructed: %+v", got.Service)
	}
	// Every field except the live Site handle must survive exactly —
	// DomainAge to the nanosecond, times without drift.
	want := *orig
	if *got != want {
		t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", *got, want)
	}
}

func TestHandlerTransportRoutesByHost(t *testing.T) {
	rt := NewHandlerTransport()
	rt.Handle("a.inproc", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("handler A"))
	}))
	rt.Handle("b.inproc", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("handler B"))
	}))
	client := &http.Client{Transport: rt}

	for host, want := range map[string]string{"a.inproc": "handler A", "b.inproc": "handler B"} {
		resp, err := client.Get("http://" + host + "/x")
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 32)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if string(body[:n]) != want {
			t.Fatalf("host %s routed to %q", host, body[:n])
		}
	}
	if _, err := client.Get("http://unknown.inproc/"); err == nil {
		t.Fatal("unknown host must error without a default handler")
	}
}

func TestPlatformOpsOverHTTP(t *testing.T) {
	now := epoch
	tw := social.NewNetwork(threat.Twitter, func() time.Time { return now })
	srv := httptest.NewServer(tw)
	defer srv.Close()
	id := tw.Publish("x https://a.weebly.com/", epoch.Add(time.Minute)).ID

	w := OverHTTP(Endpoints{Platforms: map[threat.Platform]string{threat.Twitter: srv.URL}})

	post, err := w.Platform.LookupPost(threat.Twitter, id)
	if err != nil || !post.Exists || post.Removed {
		t.Fatalf("lookup live post = %+v, %v", post, err)
	}
	at := epoch.Add(2 * time.Hour)
	if err := w.Platform.RemovePost(threat.Twitter, id, at); err != nil {
		t.Fatal(err)
	}
	post, err = w.Platform.LookupPost(threat.Twitter, id)
	if err != nil || !post.Removed || !post.RemovedAt.Equal(at) {
		t.Fatalf("lookup removed post = %+v, %v", post, err)
	}
	// Removing a post the platform no longer knows is idempotent: the 404
	// means "already gone", not a failure.
	if err := w.Platform.RemovePost(threat.Twitter, "twitter-999", at); err != nil {
		t.Fatalf("remove of unknown post must be a no-op, got %v", err)
	}
	post, err = w.Platform.LookupPost(threat.Twitter, "twitter-999")
	if err != nil || post.Exists {
		t.Fatalf("unknown post lookup = %+v, %v", post, err)
	}
}

func TestReportFailureSurfacesInOutcome(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "report intake offline", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	for name, base := range map[string]string{"5xx": srv.URL, "unreachable": "http://127.0.0.1:1"} {
		w := OverHTTP(Endpoints{API: base})
		outcome, err := w.Reports.Disclose(&threat.Target{URL: "https://x.weebly.com/"}, epoch)
		if err != nil {
			t.Fatalf("%s: a failed report submission is an outcome, not an error: %v", name, err)
		}
		if outcome.Error == "" || outcome.Acknowledged || outcome.Removed {
			t.Fatalf("%s: outcome = %+v, want only Error set", name, outcome)
		}
	}
}

func TestSimAPIRejectsUnprofiledAssessment(t *testing.T) {
	sim := NewSim(1, epoch, simclock.New(epoch))
	srv := httptest.NewServer(NewSimAPI(sim))
	defer srv.Close()
	w := OverHTTP(Endpoints{API: srv.URL})
	_, _, err := w.Feeds.Assess(&threat.Target{URL: "https://never-profiled.weebly.com/"})
	if err == nil || !strings.Contains(err.Error(), "no profile") {
		t.Fatalf("assess without profile = %v, want a no-profile error", err)
	}
}
