package world

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"freephish/internal/blocklist"
	"freephish/internal/ctlog"
	"freephish/internal/fwb"
	"freephish/internal/report"
	"freephish/internal/simclock"
	"freephish/internal/social"
	"freephish/internal/threat"
	"freephish/internal/vtsim"
	"freephish/internal/webgen"
	"freephish/internal/whois"
)

// Sim is the simulated world substrate: the registrar/CA infrastructure,
// the virtual-host web, the two social platforms, the anti-phishing
// ecosystem, and the disclosure recipients. Both backends run against the
// same Sim — the inproc adapters call its methods directly, the http
// adapters reach the same methods through SimAPI and the component
// servers — which is why the two backends produce bit-identical studies:
// every stateful call arrives in the same order and draws from the same
// RNG streams.
type Sim struct {
	Seed  int64
	Epoch time.Time
	Clock *simclock.Clock

	Whois      *whois.DB
	CT         *ctlog.Log
	Host       *fwb.Host
	Gen        *webgen.Generator
	Networks   map[threat.Platform]*social.Network
	Entities   []*blocklist.Entity
	Scanner    *vtsim.Scanner
	Moderation map[threat.Platform]*social.Moderation
	Reporter   *report.Reporter
	// Feeds are the blocklists' queryable lookup APIs, populated as
	// entities detect URLs during the run.
	Feeds map[string]*blocklist.Feed

	// mu serializes the assessment paths' side effects (feed listings,
	// takedowns) so the same Sim can sit behind concurrent HTTP handlers.
	// Every assessment draw comes from an RNG stream keyed by the assessed
	// URL (see urlRNG), so the outcome for a URL is independent of how many
	// other URLs were assessed first — the property sharding relies on.
	mu sync.Mutex
}

// urlRNG derives the RNG stream for one assessment of one URL. Each URL is
// assessed at most once per path (the pipeline dedups before classifying),
// so keying by (stream, URL) pins every verdict, profile jitter, and
// moderation outcome to the URL itself rather than to the global order of
// assessments — which is what makes an N-shard study's draws identical to
// the 1-shard run's.
func (s *Sim) urlRNG(stream, url string) *simclock.RNG {
	return simclock.NewRNG(s.Seed, stream+"|"+url)
}

// NewSim assembles the simulated world. The construction order is
// load-bearing: it fixes the generator sequences every seed's study is
// defined by. Assessment and posting draws come from keyed streams
// (urlRNG, the per-event streams in SchedulePosts), not from construction
// order, so they survive partitioning.
func NewSim(seed int64, epoch time.Time, clock *simclock.Clock) *Sim {
	s := &Sim{
		Seed:       seed,
		Epoch:      epoch,
		Clock:      clock,
		Whois:      &whois.DB{},
		CT:         &ctlog.Log{},
		Entities:   blocklist.Standard(),
		Scanner:    vtsim.NewScanner(),
		Moderation: social.StandardModeration(),
		Reporter:   report.NewReporter(seed),
	}
	s.Feeds = make(map[string]*blocklist.Feed, len(s.Entities))
	for _, e := range s.Entities {
		s.Feeds[e.Name] = blocklist.NewFeed(e.Name, clock.Now)
	}
	s.Host = fwb.NewHost(clock.Now)
	s.Gen = webgen.NewGenerator(seed, s.Whois, s.CT)
	s.Gen.RegisterInfrastructure(epoch)
	// Host the second-stage pages behind two-step/iframe attacks so the
	// full Figure 11 chain is crawlable (name collisions are impossible —
	// slugs carry a generation sequence number).
	s.Gen.OnSecondary = func(site *fwb.Site) { _ = s.Host.Publish(site) }
	s.Networks = map[threat.Platform]*social.Network{
		threat.Twitter:  social.NewNetwork(threat.Twitter, clock.Now),
		threat.Facebook: social.NewNetwork(threat.Facebook, clock.Now),
	}
	return s
}

// --- SiteIntel ---

// Resolve attributes a URL to its hosting via the registry.
func (s *Sim) Resolve(url string) (SiteInfo, error) {
	site := s.Host.Lookup(url)
	if site == nil {
		return SiteInfo{}, nil
	}
	info := SiteInfo{Hosted: true, IsFWB: site.Service != nil}
	if site.Service != nil {
		info.ServiceKey = site.Service.Key
	}
	return info, nil
}

// Profile derives the threat profile of a crawled page, consulting WHOIS
// and the CT log exactly as an external observer would.
func (s *Sim) Profile(req ProfileRequest) (*threat.Target, error) {
	site := s.Host.Lookup(req.URL)
	if site == nil {
		return nil, fmt.Errorf("world: profile %q: not hosted", req.URL)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return threat.DeriveFromPage(site, req.HTML, req.SharedAt, req.Platform, req.PostID,
		s.Whois, s.CT, s.urlRNG("assess.profile", req.URL)), nil
}

// --- ThreatFeeds ---

// Assess runs the blocklist entities (in their fixed slice order) and the
// VT scanner against the target; detections become visible on the feeds.
func (s *Sim) Assess(t *threat.Target) (map[string]blocklist.Verdict, []time.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rng := s.urlRNG("assess.feeds", t.URL)
	verdicts := make(map[string]blocklist.Verdict, len(s.Entities))
	for _, e := range s.Entities {
		v := e.Assess(t, rng)
		verdicts[e.Name] = v
		if v.Detected {
			s.Feeds[e.Name].List(t.URL, v.At)
		}
	}
	return verdicts, s.Scanner.Assess(t, rng), nil
}

// Listed reports whether the entity's feed currently lists the URL.
func (s *Sim) Listed(entity, url string) (bool, error) {
	feed, ok := s.Feeds[entity]
	if !ok {
		return false, fmt.Errorf("world: unknown feed %q", entity)
	}
	_, listed := feed.Lookup(url)
	return listed, nil
}

// FeedNames returns the entities in their fixed assessment order.
func (s *Sim) FeedNames() []string {
	names := make([]string, len(s.Entities))
	for i, e := range s.Entities {
		names[i] = e.Name
	}
	return names
}

// --- PlatformOps ---

// AssessModeration decides if and when the platform removes the post.
func (s *Sim) AssessModeration(t *threat.Target) (bool, time.Time, error) {
	m, ok := s.Moderation[t.Platform]
	if !ok {
		return false, time.Time{}, fmt.Errorf("world: no moderation model for %q", t.Platform)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	removed, at := m.Assess(t, s.urlRNG("assess.mod", t.URL))
	return removed, at, nil
}

// RemovePost deletes the post; a post that no longer exists is a no-op.
func (s *Sim) RemovePost(platform threat.Platform, postID string, at time.Time) error {
	nw, ok := s.Networks[platform]
	if !ok {
		return fmt.Errorf("world: unknown platform %q", platform)
	}
	if post := nw.Lookup(postID); post != nil {
		post.Remove(at)
	}
	return nil
}

// LookupPost reports a post's existence and removal state.
func (s *Sim) LookupPost(platform threat.Platform, postID string) (PostStatus, error) {
	nw, ok := s.Networks[platform]
	if !ok {
		return PostStatus{}, fmt.Errorf("world: unknown platform %q", platform)
	}
	post := nw.Lookup(postID)
	if post == nil {
		return PostStatus{}, nil
	}
	rm, rmAt := post.Removed()
	return PostStatus{Exists: true, Removed: rm, RemovedAt: rmAt}, nil
}

// --- ReportChannel ---

// Disclose files the §4.3 report: FWB attacks go to the hosting service,
// self-hosted ones to the hosting provider. A granted removal takes the
// site down at the reported time.
func (s *Sim) Disclose(t *threat.Target, at time.Time) (report.Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var o report.Outcome
	if t.IsFWB() {
		o = s.Reporter.ReportToFWB(t, at)
	} else {
		o = s.Reporter.SelfHostedTakedown(t)
	}
	if o.Removed {
		if site := s.Host.Lookup(t.URL); site != nil {
			site.TakeDown(o.RemovedAt, "host")
		}
	}
	return o, nil
}

// --- Oracle ---

// Truth returns the ground-truth label for a hosted URL.
func (s *Sim) Truth(url string) (GroundTruth, error) {
	site := s.Host.Lookup(url)
	if site == nil {
		return GroundTruth{}, nil
	}
	return GroundTruth{Known: true, Malicious: site.Kind.IsMalicious()}, nil
}

// Release frees the site's retained page body: nothing re-fetches a
// processed site's stored HTML, and the full-scale study would otherwise
// hold ~100k page bodies in memory.
func (s *Sim) Release(url string) error {
	if site := s.Host.Lookup(url); site != nil {
		site.HTML = ""
	}
	return nil
}

// --- checkpoint resume ---

// Replay is one study record's externally-visible outcome, re-applied to a
// freshly reconstructed world on checkpoint resume. Replaying the posting
// schedule (SchedulePosts + Clock.RunUntil) rebuilds the posts and sites
// deterministically, but the ecosystem's *reactions* — feed listings from
// Assess, post removals from moderation, host takedowns from disclosure —
// happened through assessment calls the resumed run never makes again.
// They are all recorded on the record, and all idempotent first-wins
// mutations, so re-applying them restores the world to the cut instant.
type Replay struct {
	URL      string
	Platform threat.Platform
	PostID   string
	// Listings maps entity name to the recorded listing time (possibly
	// after the cut instant — feeds hide future-dated listings until then,
	// exactly as the uninterrupted run would).
	Listings map[string]time.Time
	// PostRemovedAt / HostRemovedAt, when non-zero, re-apply the platform
	// moderation and hosting takedown outcomes.
	PostRemovedAt time.Time
	HostRemovedAt time.Time
}

// ReplayOutcome re-applies one record's recorded outcome. Every mutation
// is first-wins and keyed by URL or post ID, so replay order is free and
// re-applying an already-present outcome is a no-op.
func (s *Sim) ReplayOutcome(r Replay) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, at := range r.Listings {
		if feed := s.Feeds[name]; feed != nil {
			feed.List(r.URL, at)
		}
	}
	if !r.PostRemovedAt.IsZero() {
		if nw := s.Networks[r.Platform]; nw != nil {
			if post := nw.Lookup(r.PostID); post != nil {
				post.Remove(r.PostRemovedAt)
			}
		}
	}
	if !r.HostRemovedAt.IsZero() {
		if site := s.Host.Lookup(r.URL); site != nil {
			site.TakeDown(r.HostRemovedAt, "host")
		}
	}
}

// --- posting schedule ---

// PostingPlan lays out the six posting populations (already scaled) over
// the measurement window.
type PostingPlan struct {
	FWBTwitter     int
	FWBFacebook    int
	SelfTwitter    int
	SelfFacebook   int
	BenignTwitter  int
	BenignFacebook int
	// Duration of the window; the posting rate rises as t^GrowthExponent.
	Duration       time.Duration
	GrowthExponent float64
	// ReshareRate is the expected number of additional posts re-sharing
	// each phishing URL.
	ReshareRate float64
	// Shard/Shards partition the schedule: only events whose global
	// ordinal falls in this shard's residue class are scheduled. Shards of
	// 0 or 1 schedules everything. Because every event's draws — its
	// schedule time, its generated site, its post text, its reshares —
	// come from streams keyed by the event's global ordinal, the union of
	// the N shards' worlds is exactly the 1-shard world.
	Shard, Shards int
}

// postEvent is one scheduled posting event: the event's global ordinal
// across the six populations, and its private RNG/generator streams.
type postEvent struct {
	ordinal  int
	platform threat.Platform
	kind     string // "fwb", "self", "benign"
	rng      *simclock.RNG
	gen      *webgen.Generator
}

// SchedulePosts lays out every attacker and benign posting event across
// the window, with the posting rate rising as t^GrowthExponent. Events are
// numbered globally across the six populations in fixed order; every draw
// an event makes comes from streams keyed by that ordinal alone, so any
// subset of the events can be scheduled (PostingPlan.Shard/Shards) without
// perturbing the rest.
func (s *Sim) SchedulePosts(plan PostingPlan) {
	type spec struct {
		platform threat.Platform
		kind     string // "fwb", "self", "benign"
		count    int
	}
	specs := []spec{
		{threat.Twitter, "fwb", plan.FWBTwitter},
		{threat.Facebook, "fwb", plan.FWBFacebook},
		{threat.Twitter, "self", plan.SelfTwitter},
		{threat.Facebook, "self", plan.SelfFacebook},
		{threat.Twitter, "benign", plan.BenignTwitter},
		{threat.Facebook, "benign", plan.BenignFacebook},
	}
	ordinal := 0
	for _, sp := range specs {
		for i := 0; i < sp.count; i++ {
			ord := ordinal
			ordinal++
			if plan.Shards > 1 && ord%plan.Shards != plan.Shard {
				continue
			}
			key := "post.event." + strconv.Itoa(ord)
			ev := postEvent{
				ordinal:  ord,
				platform: sp.platform,
				kind:     sp.kind,
				rng:      simclock.NewRNG(s.Seed, key),
				// The tag is a decimal ordinal closed by a non-digit, so a
				// tagged name suffix can never collide with another event's
				// or with the untagged corpus names (pure digits).
				gen: s.Gen.Derive(key, "e"+strconv.Itoa(ord)+"x"),
			}
			// Inverse-CDF of a rising rate: density ∝ t^(g-1).
			u := (float64(i) + ev.rng.Float64()) / float64(sp.count)
			frac := math.Pow(u, 1/plan.GrowthExponent)
			at := s.Epoch.Add(time.Duration(frac * float64(plan.Duration)))
			s.Clock.Schedule(at, "post."+sp.kind, func(now time.Time) {
				s.createAndPost(ev, plan.ReshareRate, now)
			})
		}
	}
}

// createAndPost generates a site, publishes it, and shares it. All draws
// come from the event's private streams, and every draw — including the
// reshare texts — happens in this frame, so the event's effects depend
// only on its ordinal and fire time, never on what other events ran.
func (s *Sim) createAndPost(ev postEvent, reshareRate float64, now time.Time) {
	var site *fwb.Site
	var text string
	switch ev.kind {
	case "fwb":
		site = ev.gen.PhishingFWBSite(ev.gen.PickService(), now)
		text = ev.gen.LureText(site.URL)
	case "self":
		site, _ = ev.gen.SelfHostedAttack(now)
		text = ev.gen.LureText(site.URL)
	default:
		// Benign background noise: mostly FWB sites, with a slice of
		// ordinary self-hosted small-business sites so "own domain" is not
		// a phishing oracle for the base model.
		if ev.rng.Bool(0.3) {
			site = ev.gen.BenignSelfHosted(now)
		} else {
			site = ev.gen.BenignFWBSite(ev.gen.PickServiceUniform(), now)
		}
		text = ev.gen.BenignPostText(site.URL)
	}
	if err := s.Host.Publish(site); err != nil {
		// Name collision: drop the event (vanishingly rare).
		return
	}
	// Post IDs derive from the event ordinal ("-e<ordinal>"), disjoint from
	// the plain sequential IDs Publish hands out, so the same post carries
	// the same ID on every shard layout.
	s.Networks[ev.platform].PublishID(fmt.Sprintf("%s-e%d", ev.platform, ev.ordinal), text, now)
	// Reshares: additional posts spread the same URL over the following
	// hours. Only malicious URLs get amplified (lure campaigns repost).
	// Their delays and texts are drawn here, eagerly, so the scheduled
	// closures perform no draws of their own.
	if ev.kind != "benign" && reshareRate > 0 {
		n := ev.rng.Poisson(reshareRate)
		for k := 0; k < n; k++ {
			delay := time.Duration(ev.rng.ExpFloat64() * float64(6*time.Hour))
			id := fmt.Sprintf("%s-e%d-r%d", ev.platform, ev.ordinal, k)
			txt := ev.gen.LureText(site.URL)
			nw := s.Networks[ev.platform]
			s.Clock.Schedule(now.Add(delay), "post.reshare", func(at time.Time) {
				nw.PublishID(id, txt, at)
			})
		}
	}
}

// GroundTruthCorpus generates the §4.2 labeled corpora: n pairs per class
// for the FWB model, plus the matched self-hosted corpus for the base
// StackModel. The generator call order is fixed — it defines the corpus
// every seed's classifiers are trained on.
func (s *Sim) GroundTruthCorpus(n int) (fwbSamples, selfSamples []Sample) {
	for i := 0; i < n; i++ {
		p := s.Gen.PhishingFWBSite(s.Gen.PickService(), s.Epoch)
		fwbSamples = append(fwbSamples, Sample{URL: p.URL, HTML: p.HTML, Label: 1})
		b := s.Gen.BenignFWBSite(s.Gen.PickServiceUniform(), s.Epoch)
		benign := Sample{URL: b.URL, HTML: b.HTML}
		fwbSamples = append(fwbSamples, benign)

		sh, _ := s.Gen.SelfHostedAttack(s.Epoch)
		selfSamples = append(selfSamples, Sample{URL: sh.URL, HTML: sh.HTML, Label: 1}, benign)
		// Every other benign self-hosted sample keeps the base model from
		// equating own-domain hosting with phishing.
		if i%2 == 0 {
			bs := s.Gen.BenignSelfHosted(s.Epoch)
			selfSamples = append(selfSamples, Sample{URL: bs.URL, HTML: bs.HTML})
		}
	}
	return fwbSamples, selfSamples
}

// --- HTTP handler accessors (for both backends' servers/transports) ---

// WebHandler serves every simulated domain by virtual host.
func (s *Sim) WebHandler() http.Handler { return s.Host }

// PlatformHandler serves one platform's API: the streaming feed plus the
// removal and status endpoints PlatformOps needs.
func (s *Sim) PlatformHandler(p threat.Platform) (http.Handler, bool) {
	nw, ok := s.Networks[p]
	return nw, ok
}

// Platforms returns the simulated platforms in a stable order.
func (s *Sim) Platforms() []threat.Platform {
	plats := make([]threat.Platform, 0, len(s.Networks))
	for p := range s.Networks {
		plats = append(plats, p)
	}
	sort.Slice(plats, func(i, j int) bool { return plats[i] < plats[j] })
	return plats
}

// FeedHandler serves one blocklist feed's lookup API.
func (s *Sim) FeedHandler(name string) (http.Handler, bool) {
	feed, ok := s.Feeds[name]
	return feed, ok
}
