package world

import (
	"context"
	"time"

	"freephish/internal/blocklist"
	"freephish/internal/report"
	"freephish/internal/retry"
	"freephish/internal/threat"
)

// WithRetry decorates every stateful port of w with the unified retry
// policy: failures marked retry.Transient (injected chaos faults,
// adapter transport errors, 5xx answers) are retried under the policy's
// backoff and per-port circuit breaker, while application errors pass
// through on the first attempt. Stream and Snap are left untouched —
// the poller and fetcher carry the policy themselves. A nil policy
// returns w unchanged.
func WithRetry(w World, p *retry.Policy) World {
	if p == nil {
		return w
	}
	out := w
	if w.Intel != nil {
		out.Intel = &retryIntel{w, p}
	}
	if w.Feeds != nil {
		out.Feeds = &retryFeeds{w, p}
	}
	if w.Platform != nil {
		out.Platform = &retryPlatform{w, p}
	}
	if w.Reports != nil {
		out.Reports = &retryReports{w, p}
	}
	if w.Oracle != nil {
		out.Oracle = &retryOracle{w, p}
	}
	return out
}

type retryIntel struct {
	w World
	p *retry.Policy
}

func (r *retryIntel) Resolve(url string) (SiteInfo, error) {
	var info SiteInfo
	err := r.p.Do(context.Background(), "intel.resolve", func() error {
		var e error
		info, e = r.w.Intel.Resolve(url)
		return e
	})
	return info, err
}

func (r *retryIntel) Profile(req ProfileRequest) (*threat.Target, error) {
	var t *threat.Target
	err := r.p.Do(context.Background(), "intel.profile", func() error {
		var e error
		t, e = r.w.Intel.Profile(req)
		return e
	})
	return t, err
}

type retryFeeds struct {
	w World
	p *retry.Policy
}

func (r *retryFeeds) Assess(t *threat.Target) (map[string]blocklist.Verdict, []time.Time, error) {
	var verdicts map[string]blocklist.Verdict
	var vt []time.Time
	err := r.p.Do(context.Background(), "feeds.assess", func() error {
		var e error
		verdicts, vt, e = r.w.Feeds.Assess(t)
		return e
	})
	return verdicts, vt, err
}

func (r *retryFeeds) Listed(entity, url string) (bool, error) {
	var listed bool
	err := r.p.Do(context.Background(), "feeds.listed."+entity, func() error {
		var e error
		listed, e = r.w.Feeds.Listed(entity, url)
		return e
	})
	return listed, err
}

func (r *retryFeeds) FeedNames() []string { return r.w.Feeds.FeedNames() }

type retryPlatform struct {
	w World
	p *retry.Policy
}

func (r *retryPlatform) AssessModeration(t *threat.Target) (bool, time.Time, error) {
	var removed bool
	var at time.Time
	err := r.p.Do(context.Background(), "platform.moderation", func() error {
		var e error
		removed, at, e = r.w.Platform.AssessModeration(t)
		return e
	})
	return removed, at, err
}

func (r *retryPlatform) RemovePost(platform threat.Platform, postID string, at time.Time) error {
	return r.p.Do(context.Background(), "platform.remove."+string(platform), func() error {
		return r.w.Platform.RemovePost(platform, postID, at)
	})
}

func (r *retryPlatform) LookupPost(platform threat.Platform, postID string) (PostStatus, error) {
	var st PostStatus
	err := r.p.Do(context.Background(), "platform.lookup."+string(platform), func() error {
		var e error
		st, e = r.w.Platform.LookupPost(platform, postID)
		return e
	})
	return st, err
}

type retryReports struct {
	w World
	p *retry.Policy
}

func (r *retryReports) Disclose(t *threat.Target, at time.Time) (report.Outcome, error) {
	var out report.Outcome
	err := r.p.Do(context.Background(), "reports.disclose", func() error {
		var e error
		out, e = r.w.Reports.Disclose(t, at)
		return e
	})
	return out, err
}

type retryOracle struct {
	w World
	p *retry.Policy
}

func (r *retryOracle) Truth(url string) (GroundTruth, error) {
	var truth GroundTruth
	err := r.p.Do(context.Background(), "oracle.truth", func() error {
		var e error
		truth, e = r.w.Oracle.Truth(url)
		return e
	})
	return truth, err
}

func (r *retryOracle) Release(url string) error {
	return r.p.Do(context.Background(), "oracle.release", func() error {
		return r.w.Oracle.Release(url)
	})
}
