package world

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"

	"freephish/internal/blocklist"
	"freephish/internal/report"
	"freephish/internal/retry"
	"freephish/internal/threat"
)

// defaultClient is the fallback for Endpoints.Client. Unlike
// http.DefaultClient it carries a timeout, so one stalled endpoint fails
// the call (and the retry layer gets its turn) instead of hanging the
// study forever.
var defaultClient = &http.Client{Timeout: 15 * time.Second}

// Endpoints locates the http backend's servers.
type Endpoints struct {
	// API is the SimAPI base URL (intelligence, assessments, reports,
	// oracle).
	API string
	// Platforms maps each platform to its API base URL (removal/status).
	Platforms map[threat.Platform]string
	// Feeds maps each blocklist entity to its lookup-API base URL. May be
	// empty when the monitor is disabled.
	Feeds map[string]string
	// Client issues every request; nil means a shared client with a
	// 15-second timeout (never the timeout-less http.DefaultClient).
	Client *http.Client
	// Retry, when set, is the unified policy every adapter call runs
	// under: transport errors, 5xx answers, and undecodable bodies are
	// retried with per-endpoint backoff and circuit breaking.
	Retry *retry.Policy
}

// OverHTTP returns the adapter set that reaches the world through real
// HTTP endpoints. Stream and Snap are left nil — the caller wires its
// poller and fetcher (already HTTP clients) into those slots.
func OverHTTP(ep Endpoints) World {
	c := &apiClient{base: ep.API, client: ep.Client, pol: ep.Retry}
	feeds := &feedsClient{api: c, clients: make(map[string]*blocklist.Client, len(ep.Feeds))}
	for name, base := range ep.Feeds {
		fc := blocklist.NewClient(base)
		if ep.Client != nil {
			fc.Client = ep.Client
		}
		feeds.clients[name] = fc
	}
	return World{
		Intel:    c,
		Feeds:    feeds,
		Platform: &platformClient{api: c, bases: ep.Platforms, client: ep.Client},
		Reports:  &reportClient{api: c},
		Oracle:   c,
	}
}

// apiClient speaks to the SimAPI server.
type apiClient struct {
	base   string
	client *http.Client
	pol    *retry.Policy
}

func (c *apiClient) httpClient() *http.Client {
	if c.client != nil {
		return c.client
	}
	return defaultClient
}

// do runs op under the unified retry policy when one is configured.
func (c *apiClient) do(key string, op func() error) error {
	if c.pol == nil {
		return op()
	}
	return c.pol.Do(context.Background(), key, op)
}

// get issues a GET with a url query parameter and decodes the JSON reply.
// Transport errors, 5xx answers, and undecodable bodies are transient —
// retried when a policy is wired, surfaced as errors otherwise.
func (c *apiClient) get(path, target string, out any) error {
	u := fmt.Sprintf("%s%s?url=%s", c.base, path, url.QueryEscape(target))
	return c.do("simapi"+path, func() error {
		resp, err := c.httpClient().Get(u)
		if err != nil {
			return retry.Transient(fmt.Errorf("world: GET %s: %w", path, err))
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("world: GET %s: status %d", path, resp.StatusCode)
			if resp.StatusCode >= 500 {
				return retry.Transient(err)
			}
			return err
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return retry.Transient(fmt.Errorf("world: GET %s: decode: %w", path, err))
		}
		return nil
	})
}

// post issues a JSON POST and decodes the JSON reply into out (nil out
// accepts any 2xx with no body). The request body is marshaled once and
// replayed per attempt.
func (c *apiClient) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do("simapi"+path, func() error {
		resp, err := c.httpClient().Post(c.base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return retry.Transient(fmt.Errorf("world: POST %s: %w", path, err))
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			err := fmt.Errorf("world: POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
			if resp.StatusCode >= 500 {
				return retry.Transient(err)
			}
			return err
		}
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return retry.Transient(fmt.Errorf("world: POST %s: decode: %w", path, err))
		}
		return nil
	})
}

// --- SiteIntel over HTTP ---

func (c *apiClient) Resolve(target string) (SiteInfo, error) {
	var info SiteInfo
	err := c.get("/v1/site/resolve", target, &info)
	return info, err
}

func (c *apiClient) Profile(req ProfileRequest) (*threat.Target, error) {
	var dto TargetDTO
	err := c.post("/v1/site/profile", profileRequestDTO{
		URL: req.URL, HTML: req.HTML, SharedAt: req.SharedAt,
		Platform: req.Platform, PostID: req.PostID,
	}, &dto)
	if err != nil {
		return nil, err
	}
	return dto.Target(), nil
}

// --- Oracle over HTTP ---

func (c *apiClient) Truth(target string) (GroundTruth, error) {
	var truth GroundTruth
	err := c.get("/v1/oracle/truth", target, &truth)
	return truth, err
}

func (c *apiClient) Release(target string) error {
	return c.post("/v1/oracle/release", urlRequest{URL: target}, nil)
}

// --- ThreatFeeds over HTTP ---

type feedsClient struct {
	api     *apiClient
	clients map[string]*blocklist.Client
}

func (f *feedsClient) Assess(t *threat.Target) (map[string]blocklist.Verdict, []time.Time, error) {
	var resp assessResponse
	if err := f.api.post("/v1/threat/assess", urlRequest{URL: t.URL}, &resp); err != nil {
		return nil, nil, err
	}
	return resp.Blocklist, resp.VT, nil
}

func (f *feedsClient) Listed(entity, target string) (bool, error) {
	c, ok := f.clients[entity]
	if !ok {
		return false, fmt.Errorf("world: no feed endpoint for %q", entity)
	}
	var listed bool
	err := f.api.do("feed."+entity, func() error {
		l, err := c.IsListed(target)
		if err != nil {
			// The lookup API is an external service: any failure —
			// transport, status, or decode — is worth another try.
			return retry.Transient(err)
		}
		listed = l
		return nil
	})
	return listed, err
}

func (f *feedsClient) FeedNames() []string {
	names := make([]string, 0, len(f.clients))
	for name := range f.clients {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// --- PlatformOps over HTTP ---

type platformClient struct {
	api    *apiClient
	bases  map[threat.Platform]string
	client *http.Client
}

func (p *platformClient) httpClient() *http.Client {
	if p.client != nil {
		return p.client
	}
	return defaultClient
}

func (p *platformClient) AssessModeration(t *threat.Target) (bool, time.Time, error) {
	var resp moderationResponse
	if err := p.api.post("/v1/moderation/assess", urlRequest{URL: t.URL}, &resp); err != nil {
		return false, time.Time{}, err
	}
	return resp.Removed, resp.At, nil
}

func (p *platformClient) RemovePost(platform threat.Platform, postID string, at time.Time) error {
	base, ok := p.bases[platform]
	if !ok {
		return fmt.Errorf("world: unknown platform %q", platform)
	}
	body, err := json.Marshal(struct {
		At time.Time `json:"at"`
	}{At: at})
	if err != nil {
		return err
	}
	return p.api.do("platform.remove."+string(platform), func() error {
		resp, err := p.httpClient().Post(
			fmt.Sprintf("%s/posts/%s/remove", base, url.PathEscape(postID)),
			"application/json", bytes.NewReader(body))
		if err != nil {
			return retry.Transient(fmt.Errorf("world: remove post %s: %w", postID, err))
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotFound:
			// The post is already gone; removal is idempotent.
			return nil
		case resp.StatusCode >= 500:
			return retry.Transient(fmt.Errorf("world: remove post %s: status %d", postID, resp.StatusCode))
		case resp.StatusCode < 200 || resp.StatusCode > 299:
			return fmt.Errorf("world: remove post %s: status %d", postID, resp.StatusCode)
		}
		return nil
	})
}

func (p *platformClient) LookupPost(platform threat.Platform, postID string) (PostStatus, error) {
	base, ok := p.bases[platform]
	if !ok {
		return PostStatus{}, fmt.Errorf("world: unknown platform %q", platform)
	}
	var out PostStatus
	err := p.api.do("platform.lookup."+string(platform), func() error {
		resp, err := p.httpClient().Get(fmt.Sprintf("%s/posts/%s/status", base, url.PathEscape(postID)))
		if err != nil {
			return retry.Transient(fmt.Errorf("world: post status %s: %w", postID, err))
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("world: post status %s: status %d", postID, resp.StatusCode)
			if resp.StatusCode >= 500 {
				return retry.Transient(err)
			}
			return err
		}
		var st struct {
			Exists    bool      `json:"exists"`
			Removed   bool      `json:"removed"`
			RemovedAt time.Time `json:"removed_at"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return retry.Transient(fmt.Errorf("world: post status %s: decode: %w", postID, err))
		}
		out = PostStatus{Exists: st.Exists, Removed: st.Removed, RemovedAt: st.RemovedAt}
		return nil
	})
	return out, err
}

// --- ReportChannel over HTTP ---

type reportClient struct {
	api *apiClient
}

// Disclose submits the report. A transport or server failure is folded
// into the outcome — a report that never arrived is a study observation
// (the attack goes unreported), not a pipeline crash.
func (r *reportClient) Disclose(t *threat.Target, at time.Time) (report.Outcome, error) {
	var outcome report.Outcome
	if err := r.api.post("/v1/report", urlRequest{URL: t.URL, At: at}, &outcome); err != nil {
		return report.Outcome{Error: err.Error()}, nil
	}
	return outcome, nil
}
