package world

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"freephish/internal/blocklist"
	"freephish/internal/ctlog"
	"freephish/internal/fwb"
	"freephish/internal/threat"
)

// TargetDTO is the wire form of a threat.Target. Every field is carried
// exactly — DomainAge as integer nanoseconds, times in RFC3339Nano — so a
// Target round-tripped through the API is indistinguishable from the
// server's original in every serialized study artifact. The live
// *fwb.Site handle does not travel; the server keeps it.
type TargetDTO struct {
	URL        string          `json:"url"`
	ServiceKey string          `json:"service,omitempty"`
	Kind       fwb.SiteKind    `json:"kind"`
	Brand      string          `json:"brand,omitempty"`
	SharedAt   time.Time       `json:"shared_at"`
	Platform   threat.Platform `json:"platform"`
	PostID     string          `json:"post_id"`

	HasCredentialFields bool                 `json:"credential_fields"`
	Noindex             bool                 `json:"noindex"`
	BannerObfuscated    bool                 `json:"banner_obfuscated"`
	HiddenIFrame        bool                 `json:"hidden_iframe"`
	DriveByDownload     bool                 `json:"drive_by"`
	TwoStepLink         bool                 `json:"two_step"`
	DomainAge           time.Duration        `json:"domain_age_ns"`
	CertType            ctlog.ValidationType `json:"cert_type,omitempty"`
	InCTLog             bool                 `json:"in_ct_log"`
	SearchIndexed       bool                 `json:"search_indexed"`
	TLS                 bool                 `json:"tls"`
}

// TargetToDTO flattens a Target for the wire.
func TargetToDTO(t *threat.Target) TargetDTO {
	d := TargetDTO{
		URL: t.URL, Kind: t.Kind, Brand: t.Brand,
		SharedAt: t.SharedAt, Platform: t.Platform, PostID: t.PostID,
		HasCredentialFields: t.HasCredentialFields, Noindex: t.Noindex,
		BannerObfuscated: t.BannerObfuscated, HiddenIFrame: t.HiddenIFrame,
		DriveByDownload: t.DriveByDownload, TwoStepLink: t.TwoStepLink,
		DomainAge: t.DomainAge, CertType: t.CertType,
		InCTLog: t.InCTLog, SearchIndexed: t.SearchIndexed, TLS: t.TLS,
	}
	if t.Service != nil {
		d.ServiceKey = t.Service.Key
	}
	return d
}

// Target reconstructs the Target. Site is nil on the client side — no
// consumer of a study record dereferences it, and the server-side state
// it guards stays behind the API.
func (d TargetDTO) Target() *threat.Target {
	t := &threat.Target{
		URL: d.URL, Kind: d.Kind, Brand: d.Brand,
		SharedAt: d.SharedAt, Platform: d.Platform, PostID: d.PostID,
		HasCredentialFields: d.HasCredentialFields, Noindex: d.Noindex,
		BannerObfuscated: d.BannerObfuscated, HiddenIFrame: d.HiddenIFrame,
		DriveByDownload: d.DriveByDownload, TwoStepLink: d.TwoStepLink,
		DomainAge: d.DomainAge, CertType: d.CertType,
		InCTLog: d.InCTLog, SearchIndexed: d.SearchIndexed, TLS: d.TLS,
	}
	if d.ServiceKey != "" {
		if svc, ok := fwb.ByKey(d.ServiceKey); ok {
			t.Service = svc
		}
	}
	return t
}

// profileRequestDTO is the /v1/site/profile body.
type profileRequestDTO struct {
	URL      string          `json:"url"`
	HTML     string          `json:"html"`
	SharedAt time.Time       `json:"shared_at"`
	Platform threat.Platform `json:"platform"`
	PostID   string          `json:"post_id"`
}

// urlRequest is the body of the URL-keyed assessment endpoints.
type urlRequest struct {
	URL string    `json:"url"`
	At  time.Time `json:"at,omitempty"`
}

// assessResponse is the /v1/threat/assess answer.
type assessResponse struct {
	Blocklist map[string]blocklist.Verdict `json:"blocklist"`
	VT        []time.Time                  `json:"vt,omitempty"`
}

// moderationResponse is the /v1/moderation/assess answer.
type moderationResponse struct {
	Removed bool      `json:"removed"`
	At      time.Time `json:"at"`
}

// SimAPI exposes the Sim's intelligence, assessment, disclosure, and
// oracle surfaces over HTTP — the server half of the http backend:
//
//	GET  /v1/site/resolve?url=U      → SiteInfo
//	POST /v1/site/profile            → TargetDTO (profiles are cached by
//	      URL so later URL-keyed assessments reuse the identical Target)
//	POST /v1/threat/assess   {url}   → assessResponse
//	POST /v1/moderation/assess {url} → moderationResponse
//	POST /v1/report       {url, at}  → report.Outcome
//	GET  /v1/oracle/truth?url=U      → GroundTruth
//	POST /v1/oracle/release  {url}   → 204
//
// Assessments are keyed by URL rather than re-shipping the profile: the
// server applies them to the exact Target it derived, so wire fidelity
// can never skew an assessment input.
type SimAPI struct {
	sim *Sim

	mu       sync.Mutex
	profiles map[string]*threat.Target
}

// NewSimAPI returns the HTTP server surface over sim.
func NewSimAPI(sim *Sim) *SimAPI {
	return &SimAPI{sim: sim, profiles: make(map[string]*threat.Target)}
}

func (a *SimAPI) profile(url string) (*threat.Target, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.profiles[url]
	return t, ok
}

// ServeHTTP routes the SimAPI endpoints.
func (a *SimAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/v1/site/resolve":
		info, err := a.sim.Resolve(r.URL.Query().Get("url"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, info)
	case r.Method == http.MethodPost && r.URL.Path == "/v1/site/profile":
		var req profileRequestDTO
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body", http.StatusBadRequest)
			return
		}
		t, err := a.sim.Profile(ProfileRequest{
			URL: req.URL, HTML: req.HTML, SharedAt: req.SharedAt,
			Platform: req.Platform, PostID: req.PostID,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		a.mu.Lock()
		a.profiles[req.URL] = t
		a.mu.Unlock()
		writeJSON(w, TargetToDTO(t))
	case r.Method == http.MethodPost && r.URL.Path == "/v1/threat/assess":
		t, _, ok := a.profiledTarget(w, r)
		if !ok {
			return
		}
		verdicts, vt, err := a.sim.Assess(t)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, assessResponse{Blocklist: verdicts, VT: vt})
	case r.Method == http.MethodPost && r.URL.Path == "/v1/moderation/assess":
		t, _, ok := a.profiledTarget(w, r)
		if !ok {
			return
		}
		removed, at, err := a.sim.AssessModeration(t)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, moderationResponse{Removed: removed, At: at})
	case r.Method == http.MethodPost && r.URL.Path == "/v1/report":
		t, req, ok := a.profiledTarget(w, r)
		if !ok {
			return
		}
		outcome, err := a.sim.Disclose(t, req.At)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, outcome)
	case r.Method == http.MethodGet && r.URL.Path == "/v1/oracle/truth":
		truth, err := a.sim.Truth(r.URL.Query().Get("url"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, truth)
	case r.Method == http.MethodPost && r.URL.Path == "/v1/oracle/release":
		var req urlRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body", http.StatusBadRequest)
			return
		}
		if err := a.sim.Release(req.URL); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.NotFound(w, r)
	}
}

// profiledTarget decodes a URL-keyed request and resolves the cached
// profile, writing the HTTP error itself when either step fails.
func (a *SimAPI) profiledTarget(w http.ResponseWriter, r *http.Request) (*threat.Target, urlRequest, bool) {
	var req urlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return nil, req, false
	}
	t, ok := a.profile(req.URL)
	if !ok {
		http.Error(w, fmt.Sprintf("no profile for %q", req.URL), http.StatusNotFound)
		return nil, req, false
	}
	return t, req, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
