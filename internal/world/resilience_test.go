package world

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"freephish/internal/retry"
	"freephish/internal/simclock"
	"freephish/internal/threat"
)

// TestDefaultClientHasTimeout guards the regression where nil-client
// adapters fell back to http.DefaultClient, whose missing timeout let
// one stalled endpoint hang the study forever.
func TestDefaultClientHasTimeout(t *testing.T) {
	if defaultClient.Timeout <= 0 {
		t.Fatal("world fallback client must carry a timeout")
	}
	if http.DefaultClient.Timeout != 0 {
		t.Fatal("test premise broken: http.DefaultClient grew a timeout")
	}
}

// TestStalledServerFailsInsteadOfHanging: an endpoint that accepts the
// connection and then never answers must fail the adapter call once the
// client timeout elapses — not block it indefinitely.
func TestStalledServerFailsInsteadOfHanging(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open, say nothing.
			defer conn.Close()
		}
	}()

	w := OverHTTP(Endpoints{
		API:    "http://" + ln.Addr().String(),
		Client: &http.Client{Timeout: 200 * time.Millisecond},
	})
	done := make(chan error, 1)
	go func() {
		_, err := w.Intel.Resolve("https://x.weebly.com/")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled server should produce an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("adapter call hung on a stalled server")
	}
}

// TestAdapterRetries5xxUnderPolicy: with Endpoints.Retry wired, a 5xx
// burst on the SimAPI is absorbed and the call returns the real answer.
func TestAdapterRetries5xxUnderPolicy(t *testing.T) {
	sim := NewSim(1, epoch, simclock.New(epoch))
	api := NewSimAPI(sim)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		api.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var retried int
	pol := &retry.Policy{
		MaxAttempts: 4,
		Sleep:       retry.NoSleep,
		OnRetry:     func(key string, attempt int, d time.Duration, err error) { retried++ },
	}
	w := OverHTTP(Endpoints{API: srv.URL, Retry: pol})
	info, err := w.Intel.Resolve("https://x.weebly.com/")
	if err != nil {
		t.Fatalf("Resolve through a 5xx burst: %v", err)
	}
	if info.Hosted {
		t.Fatalf("unknown URL resolved as hosted: %+v", info)
	}
	if retried != 2 {
		t.Fatalf("retried = %d, want 2", retried)
	}
}

// TestAdapterNoRetryWithoutPolicy: a nil policy keeps the old
// single-attempt behavior — the 5xx surfaces as an error.
func TestAdapterNoRetryWithoutPolicy(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "unavailable", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	w := OverHTTP(Endpoints{API: srv.URL})
	if _, err := w.Intel.Resolve("https://x.weebly.com/"); err == nil {
		t.Fatal("5xx without a retry policy should surface as an error")
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want exactly 1", calls.Load())
	}
}

// TestHandlerTransportAbortBecomesTransportError: a handler panicking
// with http.ErrAbortHandler (how the fault injector models a connection
// reset) must surface as a client-side transport error, not crash the
// process or deliver a half-response.
func TestHandlerTransportAbortBecomesTransportError(t *testing.T) {
	rt := NewHandlerTransport()
	rt.Handle("a.inproc", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	_, err := (&http.Client{Transport: rt}).Get("http://a.inproc/x")
	if err == nil {
		t.Fatal("aborted handler should be a transport error")
	}
}

// TestHandlerTransportShortBodyFailsRead: a response shorter than its
// declared Content-Length must fail the body read with unexpected EOF —
// the same thing a real net/http client reports — instead of silently
// delivering fewer bytes.
func TestHandlerTransportShortBodyFailsRead(t *testing.T) {
	rt := NewHandlerTransport()
	rt.Handle("a.inproc", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "100")
		w.Write([]byte("only ten b"))
	}))
	resp, err := (&http.Client{Transport: rt}).Get("http://a.inproc/x")
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short-body read error = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestWithRetryPassesApplicationErrors: the decorator retries only
// transient failures; a domain error (unknown platform) comes back on
// the first attempt, unwrapped.
func TestWithRetryPassesApplicationErrors(t *testing.T) {
	attempts := 0
	pol := &retry.Policy{
		MaxAttempts: 4,
		Sleep:       retry.NoSleep,
		OnRetry:     func(string, int, time.Duration, error) { attempts++ },
	}
	w := WithRetry(OverHTTP(Endpoints{}), pol)
	if _, err := w.Platform.LookupPost(threat.Platform("nope"), "id"); err == nil {
		t.Fatal("unknown platform should error")
	}
	if attempts != 0 {
		t.Fatalf("application error was retried %d times", attempts)
	}
}
